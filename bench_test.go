// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark regenerates its artifact end-to-end and
// attaches the reproduced headline numbers as custom metrics, so
// `go test -bench=. -benchmem` doubles as the reproduction record.
package gsf_test

import (
	"io"
	"testing"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/cluster"
	"github.com/greensku/gsf/internal/experiments"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/maintenance"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/stats"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

func BenchmarkFig1CarbonBreakdown(b *testing.B) {
	var r experiments.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Standard.OpShare*100, "op-share-%")
	b.ReportMetric(r.Standard.ComputeShare*100, "compute-share-%")
	b.ReportMetric(r.FullyRenewable.OpShare*100, "op-share-renewable-%")
}

func BenchmarkFig2DRAMFailureRates(b *testing.B) {
	var r experiments.Fig2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Stability, "plateau-stability")
}

func BenchmarkTable1CPUCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Table1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSec5WorkedExample(b *testing.B) {
	var e experiments.Sec5Example
	var err error
	for i := 0; i < b.N; i++ {
		e, err = experiments.Sec5WorkedExample()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(e.PerCore), "kgCO2e/core")
	b.ReportMetric(float64(e.PowerServer), "Ps-watts")
}

func BenchmarkSec5Maintenance(b *testing.B) {
	var rows []maintenance.Overhead
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Sec5Maintenance()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].COOS, "COOS-baseline")
	b.ReportMetric(rows[1].COOS, "COOS-greensku-full")
}

func BenchmarkFig7TailLatencyCurves(b *testing.B) {
	var curves []experiments.AppCurves
	var err error
	for i := 0; i < b.N; i++ {
		curves, err = experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(curves)), "apps")
}

func BenchmarkTable2DevOpsSlowdown(b *testing.B) {
	var r experiments.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r["Build-PHP"][3], "php-efficient-slowdown")
}

func BenchmarkTable3ScalingFactors(b *testing.B) {
	var factors map[string]map[int]perf.Factor
	var err error
	for i := 0; i < b.N; i++ {
		factors, err = experiments.Table3(hw.GreenSKUEfficient())
		if err != nil {
			b.Fatal(err)
		}
	}
	adoptable := 0
	for _, byGen := range factors {
		for _, f := range byGen {
			if f.Adoptable {
				adoptable++
			}
		}
	}
	b.ReportMetric(float64(adoptable), "adoptable-cells")
}

func BenchmarkFig8CXLImpact(b *testing.B) {
	var r experiments.Fig8Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.PeakReduction["HAProxy"]*100, "haproxy-peak-loss-%")
	b.ReportMetric(r.PeakReduction["Moses"]*100, "moses-peak-loss-%")
}

func BenchmarkFig9PackingDensity(b *testing.B) {
	opt := experiments.DefaultPackingOptions()
	opt.Traces = 12 // full 35-trace study via cmd/gsf; trimmed here for bench time
	var r experiments.PackingResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Packing(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Mean(r.BaseCore), "base-core-packing")
	b.ReportMetric(stats.Mean(r.GreenCore), "green-core-packing")
	b.ReportMetric(stats.Mean(r.BaseMem), "base-mem-packing")
	b.ReportMetric(stats.Mean(r.GreenMem), "green-mem-packing")
}

func BenchmarkFig10MemoryUtilization(b *testing.B) {
	opt := experiments.DefaultPackingOptions()
	opt.Traces = 12
	opt.Green = hw.GreenSKUCXL()
	var r experiments.PackingResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Packing(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.Median(r.GreenMaxMem), "green-median-maxmem")
	b.ReportMetric(r.LocalFit*100, "local-ddr5-fit-%")
}

func benchSavings(b *testing.B, dataset string) []carbon.Savings {
	b.Helper()
	var rows []carbon.Savings
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.SavingsTable(dataset)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rows
}

func BenchmarkTable4PerCoreSavings(b *testing.B) {
	rows := benchSavings(b, "paper-calibrated")
	b.ReportMetric(rows[3].Total*100, "greensku-full-total-%")
}

func BenchmarkTable8OpenSavings(b *testing.B) {
	rows := benchSavings(b, "open-source")
	b.ReportMetric(rows[3].Total*100, "greensku-full-total-%")
}

func benchSweep(b *testing.B, dataset string) experiments.CISweepResult {
	b.Helper()
	opt := experiments.DefaultCISweepOptions(dataset)
	var r experiments.CISweepResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.CISweep(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkFig11ClusterSavings(b *testing.B) {
	r := benchSweep(b, "paper-calibrated")
	b.ReportMetric(r.AvgClusterSavings*100, "avg-cluster-savings-%")
	b.ReportMetric(r.DCSavings*100, "dc-savings-%")
}

func BenchmarkFig12OpenClusterSavings(b *testing.B) {
	r := benchSweep(b, "open-source")
	b.ReportMetric(r.AvgClusterSavings*100, "avg-cluster-savings-%")
	b.ReportMetric(r.DCSavings*100, "dc-savings-%")
}

func BenchmarkSec7Alternatives(b *testing.B) {
	var r experiments.Sec7Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Sec7()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.RenewableIncrease*100, "renewable-pp")
	b.ReportMetric(r.EfficiencyGain*100, "efficiency-%")
	b.ReportMetric(r.Lifetime.YearsValue(), "lifetime-years")
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationGlobalVRLoss applies the voltage-regulator loss to
// every component instead of the CPU only, quantifying how much the
// worked example's P_s shifts.
func BenchmarkAblationGlobalVRLoss(b *testing.B) {
	perComponent := carbondata.WorkedExample()
	global := carbondata.WorkedExample()
	global.DRAMPerGB.VRLoss = 0.05
	global.ReusedDRAMPerGB.VRLoss = 0.05
	global.SSDPerTB.VRLoss = 0.05
	global.CXLSubsystem.VRLoss = 0.05
	var pcW, gcW float64
	for i := 0; i < b.N; i++ {
		m1, err := carbon.New(perComponent)
		if err != nil {
			b.Fatal(err)
		}
		m2, err := carbon.New(global)
		if err != nil {
			b.Fatal(err)
		}
		s1, err := m1.Server(hw.GreenSKUCXL())
		if err != nil {
			b.Fatal(err)
		}
		s2, err := m2.Server(hw.GreenSKUCXL())
		if err != nil {
			b.Fatal(err)
		}
		pcW, gcW = float64(s1.Power), float64(s2.Power)
	}
	b.ReportMetric(pcW, "Ps-cpu-only-loss")
	b.ReportMetric(gcW, "Ps-global-loss")
}

// BenchmarkAblationRackPowerCap sweeps the rack power cap to find where
// GreenSKU racks flip from space- to power-constrained.
func BenchmarkAblationRackPowerCap(b *testing.B) {
	var flip float64
	for i := 0; i < b.N; i++ {
		flip = 0
		for cap := units.Watts(16000); cap >= 2000; cap -= 500 {
			d := carbondata.OpenSource()
			d.RackPowerCap = cap
			m, err := carbon.New(d)
			if err != nil {
				b.Fatal(err)
			}
			r, err := m.Rack(hw.GreenSKUFull())
			if err != nil {
				b.Fatal(err)
			}
			if r.PowerConstrained {
				flip = float64(cap)
				break
			}
		}
	}
	b.ReportMetric(flip, "flip-watts")
}

// BenchmarkAblationPlacementPolicy compares best-fit against first- and
// worst-fit on right-sized cluster size.
func BenchmarkAblationPlacementPolicy(b *testing.B) {
	p := trace.DefaultParams("ablation-policy", 555)
	p.HorizonHours = 24 * 5
	tr, err := trace.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	base := alloc.ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768}
	sizes := map[alloc.Policy]int{}
	for i := 0; i < b.N; i++ {
		for _, pol := range []alloc.Policy{alloc.BestFit, alloc.FirstFit, alloc.WorstFit} {
			s := &cluster.Sizer{Base: base, Policy: pol, Decide: alloc.AdoptNone}
			n, err := s.RightSizeBaseline(tr)
			if err != nil {
				b.Fatal(err)
			}
			sizes[pol] = n
		}
	}
	b.ReportMetric(float64(sizes[alloc.BestFit]), "bestfit-servers")
	b.ReportMetric(float64(sizes[alloc.FirstFit]), "firstfit-servers")
	b.ReportMetric(float64(sizes[alloc.WorstFit]), "worstfit-servers")
}

// BenchmarkAblationFIPEffectiveness sweeps Fail-In-Place effectiveness
// and reports GreenSKU-Full's repair rate at 0%, 75%, and 100%.
func BenchmarkAblationFIPEffectiveness(b *testing.B) {
	afrs := maintenance.DefaultAFRs()
	sku := hw.GreenSKUFull()
	var at0, at75, at100 float64
	for i := 0; i < b.N; i++ {
		at0 = maintenance.FIP{Effectiveness: 0}.RepairRate(sku, afrs)
		at75 = maintenance.FIP{Effectiveness: 0.75}.RepairRate(sku, afrs)
		at100 = maintenance.FIP{Effectiveness: 1}.RepairRate(sku, afrs)
	}
	b.ReportMetric(at0, "repair-rate-fip0")
	b.ReportMetric(at75, "repair-rate-fip75")
	b.ReportMetric(at100, "repair-rate-fip100")
}

// BenchmarkAblationAdoptionPolicy compares carbon-aware adoption
// against naive always-adopt on cluster-level savings: always-adopt
// forces carbon-negative scaling onto GreenSKUs.
func BenchmarkAblationAdoptionPolicy(b *testing.B) {
	d := carbondata.OpenSource()
	m, err := carbon.New(d)
	if err != nil {
		b.Fatal(err)
	}
	p := trace.DefaultParams("ablation-adoption", 777)
	p.HorizonHours = 24 * 5
	tr, err := trace.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	green := hw.GreenSKUFull()
	basePC, err := m.PerCore(hw.BaselineGen3(), d.DefaultCI)
	if err != nil {
		b.Fatal(err)
	}
	greenPC, err := m.PerCore(green, d.DefaultCI)
	if err != nil {
		b.Fatal(err)
	}
	carbonAware, err := experiments.NewSizer("open-source", green)
	if err != nil {
		b.Fatal(err)
	}
	naive := *carbonAware
	naive.Decide = func(vm trace.VM) alloc.Decision {
		// Always adopt, always pay the worst-case 1.5x scaling.
		return alloc.Decision{Adopt: true, Scale: 1.5}
	}
	var aware, always float64
	for i := 0; i < b.N; i++ {
		baseIn := cluster.SavingsInput{Class: carbonAware.Base, PerCore: basePC}
		greenIn := cluster.SavingsInput{Class: carbonAware.Green, PerCore: greenPC}
		mixA, err := carbonAware.MixedSize(tr)
		if err != nil {
			b.Fatal(err)
		}
		aware = cluster.Savings(mixA, baseIn, greenIn)
		mixN, err := naive.MixedSize(tr)
		if err != nil {
			b.Fatal(err)
		}
		always = cluster.Savings(mixN, baseIn, greenIn)
	}
	b.ReportMetric(aware*100, "carbon-aware-savings-%")
	b.ReportMetric(always*100, "always-adopt-savings-%")
}
