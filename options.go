package gsf

// Functional construction options. gsf.New is the preferred
// constructor: it validates the dataset and applies options in order,
// replacing post-hoc mutation of Framework fields.
//
//	fw, err := gsf.New(gsf.OpenSourceData(),
//		gsf.WithWorkers(8),
//		gsf.WithProfileCache(128))
//
// The Framework it returns also carries the context-aware evaluation
// API — EvaluateContext, SweepContext, EvaluateAll — with Evaluate and
// SweepCI retained as context.Background wrappers.

// Option configures a Framework at construction time.
type Option func(*Framework)

// WithWorkers bounds the evaluation engine's parallelism for sweeps
// and batches. n <= 0 (the default) selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(f *Framework) { f.Workers = n }
}

// WithProfileCache sizes the per-SKU performance-profile memoization
// cache (default 64 entries). entries <= 0 disables memoization, so
// every evaluation profiles its SKU from scratch.
func WithProfileCache(entries int) Option {
	return func(f *Framework) { f.SetProfileCacheSize(entries) }
}

// WithAudit threads a runtime invariant checker through every
// component the framework runs: resource conservation in the
// allocation simulator, event ordering in the queueing simulator,
// carbon-mass balance in the carbon model, and capacity coverage in
// cluster sizing. Violations accumulate in the checker (use
// NewAuditRecorder) without altering any result. A nil checker leaves
// auditing at the process default.
func WithAudit(c AuditChecker) Option {
	return func(f *Framework) { f.SetAudit(c) }
}

// New builds a GSF instance over a carbon dataset with the paper's
// default component settings, then applies the options in order.
func New(d Dataset, opts ...Option) (*Framework, error) {
	fw, err := NewFramework(d)
	if err != nil {
		return nil, err
	}
	for _, opt := range opts {
		opt(fw)
	}
	return fw, nil
}
