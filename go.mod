module github.com/greensku/gsf

go 1.22
