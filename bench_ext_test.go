package gsf_test

// Benchmarks for the extension substrates: memory tiering, SSD stripe
// planning, power oversubscription, growth buffering, and the §VIII
// design-space search.

import (
	"testing"

	"github.com/greensku/gsf/internal/experiments"
)

func BenchmarkExtMemoryTiering(b *testing.B) {
	var under, untouched float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.MemTier()
		if err != nil {
			b.Fatal(err)
		}
		under = res.UnderFivePct
		untouched = res.MeanUntouched
	}
	b.ReportMetric(under*100, "under-5pct-slowdown-%")
	b.ReportMetric(untouched*100, "untouched-mem-%")
}

func BenchmarkExtStoragePlan(b *testing.B) {
	var sets, leftover int
	for i := 0; i < b.N; i++ {
		plan, err := experiments.StoragePlan()
		if err != nil {
			b.Fatal(err)
		}
		sets = len(plan.Sets)
		leftover = plan.Leftover
	}
	b.ReportMetric(float64(sets), "stripe-sets")
	b.ReportMetric(float64(leftover), "leftover-drives")
}

func BenchmarkExtPowerOversubscription(b *testing.B) {
	var breach float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.PowerStudy()
		if err != nil {
			b.Fatal(err)
		}
		breach = r.RackOver.BreachProb
	}
	b.ReportMetric(breach*100, "rack-breach-%")
}

func BenchmarkExtGrowthBuffer(b *testing.B) {
	var min float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.GrowthStudy()
		if err != nil {
			b.Fatal(err)
		}
		min = r.Minimal
	}
	b.ReportMetric(min*100, "minimal-buffer-%")
}

func BenchmarkExtDesignSearch(b *testing.B) {
	var savings float64
	var evals int
	for i := 0; i < b.N; i++ {
		r, err := experiments.DesignSearch()
		if err != nil {
			b.Fatal(err)
		}
		savings = r.Exhaustive.Savings
		evals = r.Exhaustive.Evaluated
	}
	b.ReportMetric(savings*100, "optimal-savings-%")
	b.ReportMetric(float64(evals), "designs-evaluated")
}

func BenchmarkExtSKUDiversity(b *testing.B) {
	var extra float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Diversity()
		if err != nil {
			b.Fatal(err)
		}
		extra = r.ExtraSavings
	}
	b.ReportMetric(extra*100, "second-sku-extra-pp")
}
