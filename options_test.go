package gsf_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	gsf "github.com/greensku/gsf"
)

func smallTrace(t *testing.T, seed uint64) gsf.Trace {
	t.Helper()
	tr, err := gsf.SyntheticWorkload("opt-test", seed)
	if err != nil {
		t.Fatal(err)
	}
	tr.VMs = tr.VMs[:400]
	tr.Horizon = 48
	for i := range tr.VMs {
		if tr.VMs[i].Depart > tr.Horizon {
			tr.VMs[i].Depart = tr.Horizon
		}
	}
	return tr
}

func TestNewWithOptions(t *testing.T) {
	fw, err := gsf.New(gsf.OpenSourceData(), gsf.WithWorkers(2), gsf.WithProfileCache(16))
	if err != nil {
		t.Fatal(err)
	}
	if fw.Workers != 2 {
		t.Fatalf("Workers = %d, want 2", fw.Workers)
	}
	in := gsf.Input{
		Green:    gsf.GreenSKUEfficient(),
		Baseline: gsf.BaselineGen3(),
		Workload: smallTrace(t, 11),
	}
	ev, err := fw.EvaluateContext(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.EvaluateContext(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	hits, misses := fw.ProfileCacheStats()
	if misses != 1 || hits != 1 {
		t.Fatalf("profile cache stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}

	// Same construction through the legacy path must agree.
	legacy, err := gsf.NewFramework(gsf.OpenSourceData())
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := legacy.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev, ev2) {
		t.Fatal("gsf.New evaluation differs from gsf.NewFramework")
	}
}

func TestNewRejectsBadDataset(t *testing.T) {
	if _, err := gsf.New(gsf.Dataset{}); err == nil {
		t.Fatal("gsf.New accepted an empty dataset")
	}
}

func TestModelFrameworkOptions(t *testing.T) {
	m, err := gsf.NewModel(gsf.OpenSourceData())
	if err != nil {
		t.Fatal(err)
	}
	fw := m.Framework(gsf.WithWorkers(3))
	if fw.Workers != 3 {
		t.Fatalf("Workers = %d, want 3", fw.Workers)
	}
}

func TestSweepContextCancelled(t *testing.T) {
	fw, err := gsf.New(gsf.OpenSourceData(), gsf.WithProfileCache(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = fw.SweepContext(ctx, gsf.Input{
		Green:    gsf.GreenSKUFull(),
		Baseline: gsf.BaselineGen3(),
		Workload: smallTrace(t, 12),
	}, []gsf.CarbonIntensity{0.02, 0.1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sweep with cancelled ctx returned %v, want context.Canceled", err)
	}
}
