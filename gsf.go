// Package gsf is the public API of the GreenSKU Framework (GSF), a
// reproduction of "Designing Cloud Servers for Lower Carbon" (ISCA
// 2024). GSF estimates the datacenter-scale carbon savings of deploying
// a carbon-efficient server SKU — a GreenSKU — by composing seven
// components: a carbon model, application performance profiling,
// maintenance overheads, adoption decisions, VM allocation, cluster
// sizing, and growth buffering.
//
// Quick start:
//
//	fw, err := gsf.NewFramework(gsf.OpenSourceData())
//	tr, err := gsf.SyntheticWorkload("demo", 42)
//	ev, err := fw.Evaluate(gsf.Input{
//		Green:    gsf.GreenSKUFull(),
//		Baseline: gsf.BaselineGen3(),
//		Workload: tr,
//	})
//	fmt.Println("cluster savings:", ev.ClusterSavings)
//
// The deeper component packages under internal/ are reachable through
// the aliases below; everything needed to reproduce the paper's tables
// and figures is exported here.
package gsf

import (
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/core"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// Core quantities.
type (
	// Watts is electrical power.
	Watts = units.Watts
	// KgCO2e is carbon-dioxide-equivalent mass.
	KgCO2e = units.KgCO2e
	// CarbonIntensity is kgCO2e per kWh of consumed energy.
	CarbonIntensity = units.CarbonIntensity
	// GB is memory/storage capacity.
	GB = units.GB
)

// Hardware and data.
type (
	// SKU is a complete server configuration.
	SKU = hw.SKU
	// CPUSpec describes a CPU socket (Table I).
	CPUSpec = hw.CPUSpec
	// DIMMGroup is a homogeneous set of DIMMs in a SKU.
	DIMMGroup = hw.DIMMGroup
	// SSDGroup is a homogeneous set of SSDs in a SKU.
	SSDGroup = hw.SSDGroup
	// Dataset carries per-component carbon data and datacenter
	// parameters (Appendix A).
	Dataset = carbondata.Dataset
)

// Memory attachment kinds for DIMMGroup.
const (
	MemLocal = hw.MemLocal
	MemCXL   = hw.MemCXL
)

// Table I CPUs, for custom SKU designs.
var (
	CPUBergamo = hw.Bergamo
	CPURome    = hw.Rome
	CPUMilan   = hw.Milan
	CPUGenoa   = hw.Genoa
)

// Framework types.
type (
	// Framework wires GSF's components (Fig. 6).
	Framework = core.Framework
	// Input is one GreenSKU evaluation request.
	Input = core.Input
	// Evaluation is the framework's full output.
	Evaluation = core.Evaluation
	// Trace is a VM workload.
	Trace = trace.Trace
	// VM is one deployment record in a trace.
	VM = trace.VM
	// PerCore is amortised lifetime emissions per core.
	PerCore = carbon.PerCore
	// Savings is a per-core savings row (Tables IV/VIII).
	Savings = carbon.Savings
)

// The paper's SKU configurations.
var (
	// BaselineGen3 is the deployed Genoa baseline.
	BaselineGen3 = hw.BaselineGen3
	// BaselineResized is the baseline at the carbon-optimal 8 GB/core.
	BaselineResized = hw.BaselineResized
	// GreenSKUEfficient uses the efficient Bergamo CPU.
	GreenSKUEfficient = hw.GreenSKUEfficient
	// GreenSKUCXL adds reused DDR4 behind CXL.
	GreenSKUCXL = hw.GreenSKUCXL
	// GreenSKUFull adds reused SSDs.
	GreenSKUFull = hw.GreenSKUFull
)

// OpenSourceData returns the Appendix A open dataset (Table V/VI plus
// fitted fill-ins); it reproduces Table VIII and Fig. 12.
func OpenSourceData() Dataset { return carbondata.OpenSource() }

// PaperCalibratedData returns the dataset fitted to the paper's
// internal results (Table IV, Fig. 11).
func PaperCalibratedData() Dataset { return carbondata.PaperCalibrated() }

// WorkedExampleData returns exactly §V's worked-example inputs.
func WorkedExampleData() Dataset { return carbondata.WorkedExample() }

// NewFramework builds a GSF instance over a carbon dataset with the
// paper's default component settings.
func NewFramework(d Dataset) (*Framework, error) {
	m, err := carbon.New(d)
	if err != nil {
		return nil, err
	}
	return core.New(m), nil
}

// SyntheticWorkload generates an Azure-like VM trace (the stand-in for
// the paper's production traces).
func SyntheticWorkload(name string, seed uint64) (Trace, error) {
	return trace.Generate(trace.DefaultParams(name, seed))
}

// PerCoreEmissions evaluates a SKU's rack-amortised lifetime emissions
// per core under a dataset at the given carbon intensity (zero uses the
// dataset default). This is the carbon-model component on its own,
// without the full framework.
func PerCoreEmissions(d Dataset, sku SKU, ci CarbonIntensity) (PerCore, error) {
	m, err := carbon.New(d)
	if err != nil {
		return PerCore{}, err
	}
	if ci == 0 {
		ci = d.DefaultCI
	}
	return m.PerCore(sku, ci)
}

// PerCoreSavings compares a SKU's per-core emissions against a baseline
// (a Table IV/VIII row).
func PerCoreSavings(d Dataset, sku, baseline SKU, ci CarbonIntensity) (Savings, error) {
	m, err := carbon.New(d)
	if err != nil {
		return Savings{}, err
	}
	if ci == 0 {
		ci = d.DefaultCI
	}
	return m.SavingsVs(sku, baseline, ci)
}
