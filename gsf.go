// Package gsf is the public API of the GreenSKU Framework (GSF), a
// reproduction of "Designing Cloud Servers for Lower Carbon" (ISCA
// 2024). GSF estimates the datacenter-scale carbon savings of deploying
// a carbon-efficient server SKU — a GreenSKU — by composing seven
// components: a carbon model, application performance profiling,
// maintenance overheads, adoption decisions, VM allocation, cluster
// sizing, and growth buffering.
//
// Quick start:
//
//	fw, err := gsf.NewFramework(gsf.OpenSourceData())
//	tr, err := gsf.SyntheticWorkload("demo", 42)
//	ev, err := fw.Evaluate(gsf.Input{
//		Green:    gsf.GreenSKUFull(),
//		Baseline: gsf.BaselineGen3(),
//		Workload: tr,
//	})
//	fmt.Println("cluster savings:", ev.ClusterSavings)
//
// The deeper component packages under internal/ are reachable through
// the aliases below; everything needed to reproduce the paper's tables
// and figures is exported here.
package gsf

import (
	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/core"
	"github.com/greensku/gsf/internal/gridci"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// Core quantities.
type (
	// Watts is electrical power.
	Watts = units.Watts
	// KgCO2e is carbon-dioxide-equivalent mass.
	KgCO2e = units.KgCO2e
	// CarbonIntensity is kgCO2e per kWh of consumed energy.
	CarbonIntensity = units.CarbonIntensity
	// GB is memory/storage capacity.
	GB = units.GB
)

// Hardware and data.
type (
	// SKU is a complete server configuration.
	SKU = hw.SKU
	// CPUSpec describes a CPU socket (Table I).
	CPUSpec = hw.CPUSpec
	// DIMMGroup is a homogeneous set of DIMMs in a SKU.
	DIMMGroup = hw.DIMMGroup
	// SSDGroup is a homogeneous set of SSDs in a SKU.
	SSDGroup = hw.SSDGroup
	// Dataset carries per-component carbon data and datacenter
	// parameters (Appendix A).
	Dataset = carbondata.Dataset
)

// Memory attachment kinds for DIMMGroup.
const (
	MemLocal = hw.MemLocal
	MemCXL   = hw.MemCXL
)

// Table I CPUs, for custom SKU designs.
var (
	CPUBergamo = hw.Bergamo
	CPURome    = hw.Rome
	CPUMilan   = hw.Milan
	CPUGenoa   = hw.Genoa
)

// Framework types.
type (
	// Framework wires GSF's components (Fig. 6).
	Framework = core.Framework
	// Input is one GreenSKU evaluation request.
	Input = core.Input
	// Evaluation is the framework's full output.
	Evaluation = core.Evaluation
	// Trace is a VM workload.
	Trace = trace.Trace
	// VM is one deployment record in a trace.
	VM = trace.VM
	// PerCore is amortised lifetime emissions per core.
	PerCore = carbon.PerCore
	// Savings is a per-core savings row (Tables IV/VIII).
	Savings = carbon.Savings
)

// Time-varying grid carbon intensity (internal/gridci).
type (
	// CISignal is a piecewise-linear carbon-intensity timeseries; set
	// Input.CISignal to evaluate under a time-varying grid.
	CISignal = gridci.Signal
	// CISample is one (time, intensity) knot of a CISignal.
	CISample = gridci.Sample
)

// ConstantCI returns a flat signal — the bridge between the scalar and
// time-varying APIs; evaluating under it is bit-identical to passing
// the scalar intensity.
func ConstantCI(name string, ci CarbonIntensity) *CISignal {
	return gridci.Constant(name, ci)
}

// DiurnalCI returns a 24h-periodic sinusoidal signal with the given
// mean intensity and relative swing (0..1, peak-to-mean).
func DiurnalCI(name string, mean CarbonIntensity, swing float64) *CISignal {
	return gridci.Diurnal(gridci.DiurnalOptions{Name: name, Mean: mean, Swing: swing})
}

// Invariant auditing (see WithAudit).
type (
	// AuditChecker receives invariant violations; implementations must
	// be safe for concurrent use.
	AuditChecker = audit.Checker
	// AuditViolation is one observed invariant breach.
	AuditViolation = audit.Violation
	// AuditRecorder is the standard AuditChecker: it counts violations
	// and retains the first records for diagnosis.
	AuditRecorder = audit.Recorder
)

// NewAuditRecorder returns an empty recorder for WithAudit.
func NewAuditRecorder() *AuditRecorder { return audit.NewRecorder() }

// The paper's SKU configurations.
var (
	// BaselineGen3 is the deployed Genoa baseline.
	BaselineGen3 = hw.BaselineGen3
	// BaselineResized is the baseline at the carbon-optimal 8 GB/core.
	BaselineResized = hw.BaselineResized
	// GreenSKUEfficient uses the efficient Bergamo CPU.
	GreenSKUEfficient = hw.GreenSKUEfficient
	// GreenSKUCXL adds reused DDR4 behind CXL.
	GreenSKUCXL = hw.GreenSKUCXL
	// GreenSKUFull adds reused SSDs.
	GreenSKUFull = hw.GreenSKUFull
	// BaselineGen1 is the oldest deployed baseline generation (Rome).
	BaselineGen1 = hw.BaselineGen1
	// BaselineGen2 is the second deployed generation (Milan).
	BaselineGen2 = hw.BaselineGen2
)

// SKUCatalog returns every named SKU the framework ships: the five
// Table IV/VIII configurations followed by the Gen1/Gen2 baselines.
// Services use it for catalog discovery (gsfd's GET /v1/skus).
func SKUCatalog() []SKU {
	return append(hw.TableIVConfigs(), hw.BaselineGen1(), hw.BaselineGen2())
}

// DatasetCatalog returns the three shipped carbon datasets:
// open-source, paper-calibrated, and worked-example.
func DatasetCatalog() []Dataset {
	return []Dataset{OpenSourceData(), PaperCalibratedData(), WorkedExampleData()}
}

// OpenSourceData returns the Appendix A open dataset (Table V/VI plus
// fitted fill-ins); it reproduces Table VIII and Fig. 12.
func OpenSourceData() Dataset { return carbondata.OpenSource() }

// PaperCalibratedData returns the dataset fitted to the paper's
// internal results (Table IV, Fig. 11).
func PaperCalibratedData() Dataset { return carbondata.PaperCalibrated() }

// WorkedExampleData returns exactly §V's worked-example inputs.
func WorkedExampleData() Dataset { return carbondata.WorkedExample() }

// NewFramework builds a GSF instance over a carbon dataset with the
// paper's default component settings.
func NewFramework(d Dataset) (*Framework, error) {
	m, err := NewModel(d)
	if err != nil {
		return nil, err
	}
	return m.Framework(), nil
}

// SyntheticWorkload generates an Azure-like VM trace (the stand-in for
// the paper's production traces).
func SyntheticWorkload(name string, seed uint64) (Trace, error) {
	return trace.Generate(trace.DefaultParams(name, seed))
}

// Model is a validated carbon model over one dataset: construct it once
// with NewModel, then query it many times. Long-running callers (such
// as cmd/gsfd) should hold a Model per dataset instead of paying dataset
// validation on every query via PerCoreEmissions/PerCoreSavings.
// A Model is immutable after construction and safe for concurrent use.
type Model struct {
	m *carbon.Model
}

// NewModel validates the dataset and returns a reusable carbon model.
func NewModel(d Dataset) (*Model, error) {
	m, err := carbon.New(d)
	if err != nil {
		return nil, err
	}
	return &Model{m: m}, nil
}

// Data returns the dataset the model was built over.
func (m *Model) Data() Dataset { return m.m.Data }

// defaultCI substitutes the dataset default for a zero carbon intensity.
func (m *Model) defaultCI(ci CarbonIntensity) CarbonIntensity {
	if ci == 0 {
		return m.m.Data.DefaultCI
	}
	return ci
}

// PerCore evaluates a SKU's rack-amortised lifetime emissions per core
// at the given carbon intensity (zero uses the dataset default).
func (m *Model) PerCore(sku SKU, ci CarbonIntensity) (PerCore, error) {
	return m.m.PerCore(sku, m.defaultCI(ci))
}

// Savings compares a SKU's per-core emissions against a baseline
// (a Table IV/VIII row) at the given carbon intensity.
func (m *Model) Savings(sku, baseline SKU, ci CarbonIntensity) (Savings, error) {
	return m.m.SavingsVs(sku, baseline, m.defaultCI(ci))
}

// EffectiveCI collapses a time-varying signal to the scalar intensity
// that yields identical lifetime-integrated operational emissions: the
// signal's time average over one server lifetime starting at hour 0.
// For a constant signal it returns the constant bit-for-bit.
func (m *Model) EffectiveCI(sig *CISignal) (CarbonIntensity, error) {
	return m.m.EffectiveCI(sig, 0)
}

// Framework builds a GSF instance over this model with the paper's
// default component settings, then applies the options in order.
// Frameworks from the same Model share the underlying carbon model.
func (m *Model) Framework(opts ...Option) *Framework {
	fw := core.New(m.m)
	for _, opt := range opts {
		opt(fw)
	}
	return fw
}

// PerCoreEmissions evaluates a SKU's rack-amortised lifetime emissions
// per core under a dataset at the given carbon intensity (zero uses the
// dataset default). This is the carbon-model component on its own,
// without the full framework. One-shot convenience over NewModel:
// it revalidates the dataset on every call.
func PerCoreEmissions(d Dataset, sku SKU, ci CarbonIntensity) (PerCore, error) {
	m, err := NewModel(d)
	if err != nil {
		return PerCore{}, err
	}
	return m.PerCore(sku, ci)
}

// PerCoreSavings compares a SKU's per-core emissions against a baseline
// (a Table IV/VIII row). One-shot convenience over NewModel.
func PerCoreSavings(d Dataset, sku, baseline SKU, ci CarbonIntensity) (Savings, error) {
	m, err := NewModel(d)
	if err != nil {
		return Savings{}, err
	}
	return m.Savings(sku, baseline, ci)
}
