// Quickstart: evaluate a GreenSKU's carbon savings with the public API.
//
// This is the 30-line path through GSF: build a framework over the open
// dataset, generate a synthetic workload, and evaluate GreenSKU-Full
// against the Gen3 baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	gsf "github.com/greensku/gsf"
)

func main() {
	fw, err := gsf.NewFramework(gsf.OpenSourceData())
	if err != nil {
		log.Fatal(err)
	}
	workload, err := gsf.SyntheticWorkload("quickstart", 42)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := fw.Evaluate(gsf.Input{
		Green:    gsf.GreenSKUFull(),
		Baseline: gsf.BaselineGen3(),
		Workload: workload,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("GreenSKU-Full vs Gen3 baseline (open dataset, CI=0.1 kgCO2e/kWh)\n")
	fmt.Printf("  per-core savings:      %.1f%% operational, %.1f%% embodied, %.1f%% total\n",
		ev.PerCoreSavings.Operational*100, ev.PerCoreSavings.Embodied*100, ev.PerCoreSavings.Total*100)
	fmt.Printf("  right-sized cluster:   %d all-baseline -> %d baseline + %d GreenSKU (+%d buffer)\n",
		ev.Mix.BaselineOnly, ev.Mix.NBase, ev.Mix.NGreen, ev.Buffered.BufferServers)
	fmt.Printf("  cluster-level savings: %.1f%%\n", ev.ClusterSavings*100)
	fmt.Printf("  datacenter savings:    %.1f%%\n", ev.DCSavings*100)
	fmt.Printf("  adoption rate:         %.0f%% of (app, generation) pairs\n",
		ev.Adoption.AdoptionRate()*100)
}
