// Packing study: run the VM allocation simulator on synthetic
// production-like traces and report what Figs. 9 and 10 report — VM
// packing densities of right-sized baseline vs GreenSKU clusters, and
// per-server maximum memory utilisation (the headroom that lets reused
// CXL memory back untouched pages).
//
//	go run ./examples/packingstudy
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/greensku/gsf/internal/experiments"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/stats"
)

func main() {
	opt := experiments.PackingOptions{
		Traces:  6, // subset of the 35-trace suite; raise for the full study
		Dataset: "open-source",
		Green:   hw.GreenSKUFull(),
	}
	r, err := experiments.Packing(opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Packing study: %d traces, GreenSKU-Full vs all-baseline clusters\n\n", len(r.PerTrace))
	fmt.Printf("%-10s %18s %22s %14s\n", "trace", "cluster (all->mix)", "core packing (b/g)", "mem packing (b/g)")
	for i, pc := range r.PerTrace {
		fmt.Printf("%-10s %8d -> %2d+%-3d %10.2f / %.2f %10.2f / %.2f\n",
			pc.Trace, pc.Mix.BaselineOnly, pc.Mix.NBase, pc.Mix.NGreen,
			r.BaseCore[i], r.GreenCore[i], r.BaseMem[i], r.GreenMem[i])
	}

	fmt.Printf("\nmeans: baseline core %.2f vs green %.2f; baseline mem %.2f vs green %.2f\n",
		stats.Mean(r.BaseCore), stats.Mean(r.GreenCore),
		stats.Mean(r.BaseMem), stats.Mean(r.GreenMem))
	fmt.Printf("per-server max memory utilisation: baseline median %.2f, green median %.2f\n",
		stats.Median(r.BaseMaxMem), stats.Median(r.GreenMaxMem))
	fmt.Printf("green servers whose touched memory fits local DDR5: %.1f%% (paper: nearly all)\n\n",
		r.LocalFit*100)

	if err := r.RenderFig10(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
