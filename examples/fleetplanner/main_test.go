package main

import (
	"context"
	"reflect"
	"testing"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/core"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

func testWorkload(t *testing.T) trace.Trace {
	t.Helper()
	p := trace.DefaultParams("fleetplanner-test", 42)
	p.ArrivalsPerHour = 3
	p.HorizonHours = 48
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestEvaluateFleetMatchesSerial asserts the engine fan-out returns
// exactly what one-at-a-time Evaluate calls return, regardless of
// worker count.
func TestEvaluateFleetMatchesSerial(t *testing.T) {
	const ci = units.CarbonIntensity(0.095)
	m, err := carbon.New(carbondata.OpenSource())
	if err != nil {
		t.Fatal(err)
	}
	workload := testWorkload(t)
	skus := []hw.SKU{hw.GreenSKUFull(), hw.GreenSKUEfficient(), hw.GreenSKUCXL()}

	parallel := core.New(m)
	parallel.Workers = 4
	evs, err := evaluateFleet(context.Background(), parallel, skus, workload, ci)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(skus) {
		t.Fatalf("got %d evaluations, want %d", len(evs), len(skus))
	}

	// Serial reference on a fresh framework (separate profile cache).
	serial := core.New(m)
	serial.Workers = 1
	for i, sku := range skus {
		want, err := serial.Evaluate(core.Input{
			Green:    sku,
			Baseline: hw.BaselineGen3(),
			Workload: workload,
			CI:       ci,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(evs[i], want) {
			t.Errorf("%s: engine evaluation differs from serial Evaluate", sku.Name)
		}
	}
}
