// Fleet planner: the end-to-end deployment workflow a capacity team
// would run with GSF. It chains the repository's subsystems:
//
//  1. search the SKU design space for the carbon-optimal feasible
//     design at the region's carbon intensity (§VIII),
//  2. right-size a mixed cluster for a production-like workload —
//     evaluating the optimal design and the catalog GreenSKUs in one
//     fan-out on the evaluation engine,
//  3. plan the donor harvest that supplies the reused components (§III),
//  4. size the growth buffer (§IV-D),
//
// and report the resulting carbon position.
//
//	go run ./examples/fleetplanner
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/buffer"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/cluster"
	"github.com/greensku/gsf/internal/core"
	"github.com/greensku/gsf/internal/growth"
	"github.com/greensku/gsf/internal/harvest"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/search"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

func main() {
	const region = "Azure-us-east"
	const regionCI = units.CarbonIntensity(0.095)
	data := carbondata.OpenSource()

	// 1. Design: carbon-optimal SKU for this grid.
	best, err := search.Exhaustive(search.DefaultSpace(), search.DefaultConstraints(), data.Name, regionCI)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[design]  %s: optimal SKU %s (%.1f kgCO2e/core, %.1f%% savings over %d candidates)\n",
		region, best.SKU.Name, float64(best.PerCore), best.Savings*100, best.Evaluated)

	// 2. Cluster: size a mixed fleet for a two-week workload. The
	// optimal design and the catalog GreenSKUs are evaluated in one
	// engine fan-out; each SKU's performance profile is computed once.
	m, err := carbon.New(data)
	if err != nil {
		log.Fatal(err)
	}
	fw := core.New(m)
	workload, err := trace.Generate(trace.DefaultParams("fleetplanner", 20240407))
	if err != nil {
		log.Fatal(err)
	}
	candidates := []hw.SKU{best.SKU, hw.GreenSKUEfficient(), hw.GreenSKUCXL()}
	evs, err := evaluateFleet(context.Background(), fw, candidates, workload, regionCI)
	if err != nil {
		log.Fatal(err)
	}
	ev := evs[0] // the optimal design drives the rest of the plan
	fmt.Printf("[cluster] %d all-baseline servers -> %d baseline + %d green\n",
		ev.Mix.BaselineOnly, ev.Mix.NBase, ev.Mix.NGreen)
	fmt.Printf("[cluster] savings %.1f%% cluster-level, %.1f%% datacenter-level\n",
		ev.ClusterSavings*100, ev.DCSavings*100)
	for i, sku := range candidates[1:] {
		alt := evs[i+1]
		fmt.Printf("[cluster] alternative %-18s would save %.1f%% cluster-level\n",
			sku.Name, alt.ClusterSavings*100)
	}

	// 3. Supply: harvest donors for the reused components.
	demand := harvest.DemandFor(best.SKU)
	if demand.DIMMs == 0 && demand.SSDs == 0 {
		fmt.Println("[harvest] design reuses no components; no donors needed")
	} else {
		plan, err := harvest.PlanFleet(best.SKU, ev.Mix.NGreen, harvest.Donor2018(),
			harvest.DefaultYield(), data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[harvest] %d donor servers supply %d GreenSKUs (bottleneck: %s; avoids %.1f tCO2e embodied)\n",
			plan.Donors, plan.SKUs, plan.Bottleneck, float64(plan.AvoidedEmbodied)/1000)
	}

	// 4. Buffer: validate the growth buffer against simulated demand.
	minBuf, err := growth.MinimalBuffer(growth.DefaultParams(),
		[]float64{0.05, 0.10, 0.15, 0.20, 0.30}, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	policy := buffer.Params{Fraction: minBuf}
	buf, err := policy.Apply(ev.Mix)
	if err != nil {
		log.Fatal(err)
	}
	baseIn := cluster.SavingsInput{Class: classOf(hw.BaselineGen3(), false), PerCore: ev.PerCoreBase}
	greenIn := cluster.SavingsInput{Class: classOf(best.SKU, true), PerCore: ev.PerCoreGreen}
	fmt.Printf("[buffer]  %.0f%% buffer (%d baseline servers) keeps stockouts <2%%; buffered savings %.1f%%\n",
		minBuf*100, buf.BufferServers, policy.Savings(buf, baseIn, greenIn)*100)
}

// evaluateFleet evaluates every candidate against the same baseline
// and workload in one engine fan-out, returning evaluations in
// candidate order.
func evaluateFleet(ctx context.Context, fw *core.Framework, skus []hw.SKU, workload trace.Trace, ci units.CarbonIntensity) ([]core.Evaluation, error) {
	inputs := make([]core.Input, len(skus))
	for i, sku := range skus {
		inputs[i] = core.Input{
			Green:    sku,
			Baseline: hw.BaselineGen3(),
			Workload: workload,
			CI:       ci,
		}
	}
	results := fw.EvaluateAll(ctx, inputs)
	evs := make([]core.Evaluation, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("evaluate %s: %w", skus[i].Name, r.Err)
		}
		evs[i] = r.Eval
	}
	return evs, nil
}

func classOf(sku hw.SKU, green bool) alloc.ServerClass {
	return alloc.ServerClass{
		Name:        sku.Name,
		Cores:       sku.Cores(),
		Memory:      sku.TotalDRAMGB(),
		LocalMemory: sku.LocalDRAMGB(),
		Green:       green,
	}
}
