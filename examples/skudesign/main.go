// SKU design-space exploration (§VIII "Navigating component search
// space"): sweep memory:core ratios and reuse choices on a Bergamo
// platform and rank the designs by per-core carbon — the inner loop the
// paper describes running "through hundreds of configurations".
//
//	go run ./examples/skudesign
package main

import (
	"fmt"
	"log"
	"sort"

	gsf "github.com/greensku/gsf"
)

type design struct {
	sku     gsf.SKU
	savings gsf.Savings
}

func main() {
	data := gsf.OpenSourceData()
	baseline := gsf.BaselineGen3()

	var designs []design
	skipped := 0
	// Sweep: DDR5 DIMM capacity x CXL reuse share x SSD reuse share.
	// The workload constraint from the paper's trace analysis: at
	// least 8 GB of DRAM per core (the carbon-optimal ratio), else
	// memory, not cores, limits VM packing.
	const minMemPerCore = 8
	for _, dimmGB := range []gsf.GB{48, 64, 96} {
		for _, cxlDIMMs := range []int{0, 4, 8, 12} {
			for _, reusedSSDs := range []int{0, 6, 12} {
				sku := build(dimmGB, cxlDIMMs, reusedSSDs)
				if sku.MemoryCoreRatio() < minMemPerCore {
					skipped++
					continue
				}
				s, err := gsf.PerCoreSavings(data, sku, baseline, 0)
				if err != nil {
					log.Fatal(err)
				}
				designs = append(designs, design{sku: sku, savings: s})
			}
		}
	}
	fmt.Printf("(%d designs below the %d GB/core workload floor skipped)\n", skipped, minMemPerCore)

	sort.Slice(designs, func(i, j int) bool {
		return designs[i].savings.Total > designs[j].savings.Total
	})

	fmt.Println("Bergamo design space, ranked by per-core carbon savings vs Gen3 baseline:")
	fmt.Printf("%-34s %10s %8s %8s %8s\n", "design", "mem:core", "op", "emb", "total")
	for i, d := range designs {
		if i >= 10 {
			fmt.Printf("... (%d more designs)\n", len(designs)-10)
			break
		}
		fmt.Printf("%-34s %10.1f %7.1f%% %7.1f%% %7.1f%%\n",
			d.sku.Name, d.sku.MemoryCoreRatio(),
			d.savings.Operational*100, d.savings.Embodied*100, d.savings.Total*100)
	}

	best := designs[0].sku
	fmt.Printf("\ncarbon-optimal design: %s (%.0f GB local + %.0f GB CXL, %.0f TB SSD of which %.0f TB reused)\n",
		best.Name, float64(best.LocalDRAMGB()), float64(best.CXLDRAMGB()),
		best.TotalSSDTB(), best.ReusedSSDTB())
}

func build(dimmGB gsf.GB, cxlDIMMs, reusedSSDs int) gsf.SKU {
	sku := gsf.SKU{
		Name:        fmt.Sprintf("bergamo-%.0fg-%dcxl-%drssd", float64(dimmGB), cxlDIMMs, reusedSSDs),
		CPU:         gsf.CPUBergamo,
		Sockets:     1,
		FormFactorU: 2,
		DIMMs:       []gsf.DIMMGroup{{Count: 12, CapacityGB: dimmGB, Kind: gsf.MemLocal}},
	}
	if cxlDIMMs > 0 {
		sku.DIMMs = append(sku.DIMMs, gsf.DIMMGroup{Count: cxlDIMMs, CapacityGB: 32, Kind: gsf.MemCXL, Reused: true})
		sku.CXLControllers = (cxlDIMMs + 3) / 4
		sku.CXLBWGBs = 100
	}
	newSSDs := 5 - reusedSSDs/3 // keep total capacity near 20 TB
	sku.SSDs = []gsf.SSDGroup{{Count: newSSDs, CapacityTB: 4}}
	if reusedSSDs > 0 {
		sku.SSDs = append(sku.SSDs, gsf.SSDGroup{Count: reusedSSDs, CapacityTB: 1, Reused: true})
	}
	return sku
}
