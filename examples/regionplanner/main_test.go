package main

import (
	"context"
	"reflect"
	"testing"

	gsf "github.com/greensku/gsf"
)

var testRegions = []region{
	{"hydro", 0.035},
	{"mixed", 0.095},
	{"coal", 0.7},
}

var testCIs = []gsf.CarbonIntensity{0.01, 0.1, 0.35, 0.7}

// TestEngineMatchesSerial asserts the planner's engine fan-out
// produces exactly what the pre-engine serial loops produced.
func TestEngineMatchesSerial(t *testing.T) {
	ctx := context.Background()
	data := gsf.PaperCalibratedData()
	baseline := gsf.BaselineGen3()
	candidates := []gsf.SKU{gsf.GreenSKUEfficient(), gsf.GreenSKUCXL(), gsf.GreenSKUFull()}

	picks, err := pickBest(ctx, 4, data, baseline, candidates, testRegions)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference: the loop the example ran before the engine.
	for i, r := range testRegions {
		var want gsf.Savings
		for _, sku := range candidates {
			s, err := gsf.PerCoreSavings(data, sku, baseline, r.ci)
			if err != nil {
				t.Fatal(err)
			}
			if s.Total > want.Total {
				want = s
			}
		}
		if !reflect.DeepEqual(picks[i].Best, want) {
			t.Errorf("region %s: engine pick %+v, serial pick %+v", r.name, picks[i].Best, want)
		}
	}

	rows, err := crossover(ctx, 4, data, baseline, testCIs)
	if err != nil {
		t.Fatal(err)
	}
	for i, ci := range testCIs {
		eff, err := gsf.PerCoreSavings(data, gsf.GreenSKUEfficient(), baseline, ci)
		if err != nil {
			t.Fatal(err)
		}
		full, err := gsf.PerCoreSavings(data, gsf.GreenSKUFull(), baseline, ci)
		if err != nil {
			t.Fatal(err)
		}
		want := crossoverRow{CI: ci, Efficient: eff, Full: full}
		if !reflect.DeepEqual(rows[i], want) {
			t.Errorf("ci %v: engine row %+v, serial row %+v", ci, rows[i], want)
		}
	}
}

// TestWorkerCountInvariance asserts one worker and many workers give
// identical results.
func TestWorkerCountInvariance(t *testing.T) {
	ctx := context.Background()
	data := gsf.PaperCalibratedData()
	baseline := gsf.BaselineGen3()
	candidates := []gsf.SKU{gsf.GreenSKUEfficient(), gsf.GreenSKUFull()}

	serialPicks, err := pickBest(ctx, 1, data, baseline, candidates, testRegions)
	if err != nil {
		t.Fatal(err)
	}
	parallelPicks, err := pickBest(ctx, 8, data, baseline, candidates, testRegions)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialPicks, parallelPicks) {
		t.Error("picks differ between 1 and 8 workers")
	}

	serialRows, err := crossover(ctx, 1, data, baseline, testCIs)
	if err != nil {
		t.Fatal(err)
	}
	parallelRows, err := crossover(ctx, 8, data, baseline, testCIs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serialRows, parallelRows) {
		t.Error("crossover rows differ between 1 and 8 workers")
	}
}
