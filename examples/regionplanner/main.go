// Region planner: pick the best GreenSKU per datacenter region by grid
// carbon intensity — the decision Fig. 11 supports ("the best GreenSKU
// design depends on the data center's operating conditions").
//
// High-carbon grids favour GreenSKU-Efficient (operational savings);
// low-carbon grids favour GreenSKU-Full (embodied savings from reuse).
//
//	go run ./examples/regionplanner
package main

import (
	"fmt"
	"log"

	gsf "github.com/greensku/gsf"
)

func main() {
	data := gsf.PaperCalibratedData()
	baseline := gsf.BaselineGen3()
	candidates := []gsf.SKU{
		gsf.GreenSKUEfficient(),
		gsf.GreenSKUCXL(),
		gsf.GreenSKUFull(),
	}
	regions := []struct {
		name string
		ci   gsf.CarbonIntensity
	}{
		{"Azure-us-south (hydro-heavy)", 0.035},
		{"Azure-us-east", 0.095},
		{"Azure-europe-north", 0.35},
		{"coal-heavy grid", 0.7},
	}

	fmt.Println("Best GreenSKU per region (per-core savings vs Gen3 baseline):")
	for _, region := range regions {
		var best gsf.Savings
		for _, sku := range candidates {
			s, err := gsf.PerCoreSavings(data, sku, baseline, region.ci)
			if err != nil {
				log.Fatal(err)
			}
			if s.Total > best.Total {
				best = s
			}
		}
		fmt.Printf("  %-30s CI %.3f -> %-20s %.1f%% total (%.1f%% op, %.1f%% emb)\n",
			region.name, float64(region.ci), best.SKU,
			best.Total*100, best.Operational*100, best.Embodied*100)
	}

	// Show the crossover explicitly.
	fmt.Println("\nSavings vs carbon intensity (per-core, paper-calibrated data):")
	fmt.Printf("  %8s %20s %20s\n", "CI", "GreenSKU-Efficient", "GreenSKU-Full")
	for _, ci := range []gsf.CarbonIntensity{0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7} {
		eff, err := gsf.PerCoreSavings(data, gsf.GreenSKUEfficient(), baseline, ci)
		if err != nil {
			log.Fatal(err)
		}
		full, err := gsf.PerCoreSavings(data, gsf.GreenSKUFull(), baseline, ci)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if full.Total > eff.Total {
			marker = "  <- reuse wins"
		}
		fmt.Printf("  %8.3f %19.1f%% %19.1f%%%s\n", float64(ci), eff.Total*100, full.Total*100, marker)
	}
}
