// Region planner: pick the best GreenSKU per datacenter region by grid
// carbon intensity — the decision Fig. 11 supports ("the best GreenSKU
// design depends on the data center's operating conditions").
//
// High-carbon grids favour GreenSKU-Efficient (operational savings);
// low-carbon grids favour GreenSKU-Full (embodied savings from reuse).
// The per-region picks and the crossover table fan out on the
// evaluation engine, one job per region or intensity, with results in
// deterministic input order.
//
//	go run ./examples/regionplanner
package main

import (
	"context"
	"fmt"
	"log"

	gsf "github.com/greensku/gsf"
	"github.com/greensku/gsf/internal/engine"
)

type region struct {
	name string
	ci   gsf.CarbonIntensity
}

// regionPick is one region's winning candidate.
type regionPick struct {
	Region string
	CI     gsf.CarbonIntensity
	Best   gsf.Savings
}

// pickBest evaluates every candidate in every region, one engine job
// per region, and returns the winners in region order.
func pickBest(ctx context.Context, workers int, data gsf.Dataset, baseline gsf.SKU, candidates []gsf.SKU, regions []region) ([]regionPick, error) {
	return engine.Collect(engine.Map(ctx, workers, len(regions),
		func(ctx context.Context, i int) (regionPick, error) {
			var best gsf.Savings
			for _, sku := range candidates {
				s, err := gsf.PerCoreSavings(data, sku, baseline, regions[i].ci)
				if err != nil {
					return regionPick{}, err
				}
				if s.Total > best.Total {
					best = s
				}
			}
			return regionPick{Region: regions[i].name, CI: regions[i].ci, Best: best}, nil
		}))
}

// crossoverRow compares the efficiency-first and reuse-first designs
// at one carbon intensity.
type crossoverRow struct {
	CI        gsf.CarbonIntensity
	Efficient gsf.Savings
	Full      gsf.Savings
}

// crossover computes the Efficient-vs-Full comparison for every
// intensity, one engine job per point.
func crossover(ctx context.Context, workers int, data gsf.Dataset, baseline gsf.SKU, cis []gsf.CarbonIntensity) ([]crossoverRow, error) {
	return engine.Collect(engine.Map(ctx, workers, len(cis),
		func(ctx context.Context, i int) (crossoverRow, error) {
			eff, err := gsf.PerCoreSavings(data, gsf.GreenSKUEfficient(), baseline, cis[i])
			if err != nil {
				return crossoverRow{}, err
			}
			full, err := gsf.PerCoreSavings(data, gsf.GreenSKUFull(), baseline, cis[i])
			if err != nil {
				return crossoverRow{}, err
			}
			return crossoverRow{CI: cis[i], Efficient: eff, Full: full}, nil
		}))
}

func main() {
	ctx := context.Background()
	data := gsf.PaperCalibratedData()
	baseline := gsf.BaselineGen3()
	candidates := []gsf.SKU{
		gsf.GreenSKUEfficient(),
		gsf.GreenSKUCXL(),
		gsf.GreenSKUFull(),
	}
	regions := []region{
		{"Azure-us-south (hydro-heavy)", 0.035},
		{"Azure-us-east", 0.095},
		{"Azure-europe-north", 0.35},
		{"coal-heavy grid", 0.7},
	}

	picks, err := pickBest(ctx, 0, data, baseline, candidates, regions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Best GreenSKU per region (per-core savings vs Gen3 baseline):")
	for _, p := range picks {
		fmt.Printf("  %-30s CI %.3f -> %-20s %.1f%% total (%.1f%% op, %.1f%% emb)\n",
			p.Region, float64(p.CI), p.Best.SKU,
			p.Best.Total*100, p.Best.Operational*100, p.Best.Embodied*100)
	}

	// Show the crossover explicitly.
	rows, err := crossover(ctx, 0, data, baseline,
		[]gsf.CarbonIntensity{0.01, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSavings vs carbon intensity (per-core, paper-calibrated data):")
	fmt.Printf("  %8s %20s %20s\n", "CI", "GreenSKU-Efficient", "GreenSKU-Full")
	for _, row := range rows {
		marker := ""
		if row.Full.Total > row.Efficient.Total {
			marker = "  <- reuse wins"
		}
		fmt.Printf("  %8.3f %19.1f%% %19.1f%%%s\n",
			float64(row.CI), row.Efficient.Total*100, row.Full.Total*100, marker)
	}
}
