// Package perf implements GSF's performance component (§IV-B, §V): it
// profiles a GreenSKU's per-application performance relative to the
// baseline SKUs and produces scaling factors — how many GreenSKU cores
// are needed per baseline core to meet the application's SLO.
//
// The measurement protocol follows the paper:
//
//  1. Run the app on the baseline SKU with an 8-core VM; set the SLO to
//     the p95 latency at 90% of the baseline's peak saturation
//     throughput.
//  2. Re-run on the GreenSKU with 8, 10, and 12 cores at the same
//     offered load; the scaling factor is cores/8 for the smallest core
//     count that meets the SLO.
//  3. If 12 cores do not suffice, the factor is reported as ">1.5" and
//     the app cannot adopt the GreenSKU.
package perf

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/queueing"
)

// Memory latencies in nanoseconds (§III): local DDR5 vs CXL-attached
// DDR4 at medium load.
const (
	LocalMemLatencyNs = 140
	CXLMemLatencyNs   = 280
)

// Profile is the per-core performance feature vector of a SKU as seen
// by one VM.
type Profile struct {
	SKU           string
	CPUScore      float64
	LLCPerCoreMiB float64
	BWPerCoreGBs  float64
	MemLatencyNs  float64
}

// refProfile is the Gen3 baseline, the normalisation point for the
// application sensitivity vectors.
var refProfile = Profile{
	CPUScore:      1.0,
	LLCPerCoreMiB: 4.8,
	BWPerCoreGBs:  5.75,
	MemLatencyNs:  LocalMemLatencyNs,
}

// ProfileOf derives the performance profile of a SKU. cxlBacked marks a
// VM whose memory is served from CXL-attached DRAM (doubling effective
// memory latency); VMs on CXL SKUs whose footprint fits local DDR5 use
// cxlBacked=false.
func ProfileOf(sku hw.SKU, cxlBacked bool) Profile {
	p := Profile{
		SKU:           sku.Name,
		CPUScore:      sku.CPU.CPUScore,
		LLCPerCoreMiB: sku.CPU.LLCPerCoreMiB(),
		BWPerCoreGBs:  sku.MemBWPerCoreGBs(),
		MemLatencyNs:  LocalMemLatencyNs,
	}
	if cxlBacked {
		p.MemLatencyNs = CXLMemLatencyNs
	}
	return p
}

// ServiceTime returns the app's mean per-request service time on the
// given profile, in seconds.
func ServiceTime(a apps.App, p Profile) float64 {
	s := a.BaseServiceMS / 1000
	s *= math.Pow(refProfile.CPUScore/p.CPUScore, a.FreqSens)
	s *= math.Pow(refProfile.LLCPerCoreMiB/p.LLCPerCoreMiB, a.LLCSens)
	if p.BWPerCoreGBs < a.BWDemandGBs {
		s *= a.BWDemandGBs / p.BWPerCoreGBs
	}
	s *= 1 + a.MemLatSens*(p.MemLatencyNs/LocalMemLatencyNs-1)
	return s
}

// Slowdown returns the app's service-time ratio on profile p relative
// to profile base (>1 means slower).
func Slowdown(a apps.App, p, base Profile) float64 {
	return ServiceTime(a, p) / ServiceTime(a, base)
}

// Factor is a scaling factor: GreenSKU cores per baseline core.
type Factor struct {
	App       string
	Baseline  string
	Value     float64 // 1, 1.25, or 1.5
	Adoptable bool    // false means "> 1.5": scaling defeats the savings
}

// String renders the factor as in Table III.
func (f Factor) String() string {
	if !f.Adoptable {
		return ">1.5"
	}
	if f.Value == math.Trunc(f.Value) {
		return fmt.Sprintf("%.0f", f.Value)
	}
	return fmt.Sprintf("%.2f", f.Value)
}

// Options tunes the SLO measurement.
type Options struct {
	BaselineCores int     // VM size on the baseline (paper: 8)
	CoreSteps     []int   // candidate GreenSKU VM sizes (paper: 8, 10, 12)
	LoadFraction  float64 // SLO load as a fraction of baseline peak (paper: 0.9)
	// CapacityBand is the tolerated shortfall in peak saturation
	// throughput versus the baseline: a core count qualifies when the
	// VM's peak is within this factor of the baseline's (the paper
	// selects "the minimum number of cores ... that achieves a peak
	// saturation throughput closest to" the baseline's).
	CapacityBand float64
	// SLOSlack bounds how far past the SLO knee the simulated p95 may
	// land before the configuration is rejected outright.
	SLOSlack float64
	Requests int
	Seed     uint64
	// Workers bounds TableIIIContext's parallel fan-out over
	// (app, generation) cells; <= 0 selects GOMAXPROCS, 1 forces the
	// serial order. Results are index-slotted and deterministic either
	// way, so Workers never changes an answer (and is excluded from
	// ProfileKey and the SLO memo key).
	Workers int
	// ReferenceSampling forces the queueing simulator's bit-exact
	// reference samplers (see queueing.Config.ReferenceSampling). It
	// changes simulated latencies at the last few significant digits,
	// so it is part of every memo key.
	ReferenceSampling bool
	// ReferenceEventLoop forces the queueing simulator's retained
	// scalar event loop (see queueing.Config.ReferenceEventLoop). The
	// batched loop is bit-identical, so this is a differential-testing
	// knob — but it is still part of every memo key, because a memo
	// must never launder one kernel's answer as the other's.
	ReferenceEventLoop bool
	// FluidApprox lets far-from-saturation simulations be answered by
	// the closed-form fluid model (see queueing.Config.FluidApprox).
	// Fluid answers are approximations, so the knob and its threshold
	// are part of every memo key.
	FluidApprox bool
	// FluidThreshold is the utilization cutoff for FluidApprox; zero
	// selects queueing.DefaultFluidThreshold.
	FluidThreshold float64
	// DisableSLOMemo bypasses the process-wide SLO memoization, forcing
	// every ScalingFactor call to re-simulate its baseline SLO point.
	// Benchmarks use it to measure the unmemoized kernel; results are
	// identical either way.
	DisableSLOMemo bool
}

// DefaultOptions returns the paper's measurement protocol.
func DefaultOptions() Options {
	return Options{
		BaselineCores: 8,
		CoreSteps:     []int{8, 10, 12},
		LoadFraction:  0.9,
		CapacityBand:  1.05,
		SLOSlack:      2.0,
		Requests:      30000,
		Seed:          20240400,
	}
}

// DefaultSLOCacheEntries sizes the process-wide SLO memo: every
// latency-critical app against every baseline generation and option
// variant a sweep plausibly touches.
const DefaultSLOCacheEntries = 512

// sloPoint is one memoized SLO measurement.
type sloPoint struct {
	P95  float64
	Load float64
}

// sloCache memoizes SLO runs process-wide (LRU + singleflight): a sweep
// that profiles N green SKUs against the same baselines simulates each
// (app, baseline, seed) SLO point once, not N times. The simulators are
// seeded, so a cached point is bit-identical to a recomputed one.
var sloCache atomic.Pointer[engine.Cache[sloPoint]]

func init() { sloCache.Store(engine.NewCache[sloPoint](DefaultSLOCacheEntries)) }

// ResetSLOCache drops every memoized SLO point. Benchmarks use it to
// measure cold-start behaviour; production code never needs it.
func ResetSLOCache() { sloCache.Store(engine.NewCache[sloPoint](DefaultSLOCacheEntries)) }

// SLOCacheStats reports cumulative SLO-memo hits and misses.
func SLOCacheStats() (hits, misses int64) { return sloCache.Load().Stats() }

// sloKey fingerprints one SLO measurement: the app's full sensitivity
// vector, the baseline SKU, and exactly the options that influence the
// simulated run. Sweep-shape knobs (CoreSteps, CapacityBand, SLOSlack,
// Workers, DisableSLOMemo) are excluded so option variants that differ
// only in the green-side search share the same baseline point.
func sloKey(a apps.App, baseline hw.SKU, opt Options) string {
	k := Options{
		BaselineCores:      opt.BaselineCores,
		LoadFraction:       opt.LoadFraction,
		Requests:           opt.Requests,
		Seed:               opt.Seed,
		ReferenceSampling:  opt.ReferenceSampling,
		ReferenceEventLoop: opt.ReferenceEventLoop,
		FluidApprox:        opt.FluidApprox,
		FluidThreshold:     opt.FluidThreshold,
	}
	return fmt.Sprintf("%#v|%#v|%#v", a, baseline, k)
}

// SLO computes the baseline SKU's service-level objective for the app:
// the p95 latency at LoadFraction of the baseline's peak throughput,
// plus the offered load it was measured at.
func SLO(a apps.App, baseline hw.SKU, opt Options) (p95 float64, load float64, err error) {
	return SLOContext(context.Background(), a, baseline, opt)
}

// SLOContext is SLO with cancellation. Measurements are memoized
// process-wide unless opt.DisableSLOMemo is set; concurrent callers for
// the same point share one simulation (singleflight), and errors are
// never cached.
func SLOContext(ctx context.Context, a apps.App, baseline hw.SKU, opt Options) (p95 float64, load float64, err error) {
	if !a.LatencyCritical {
		return 0, 0, fmt.Errorf("perf: %s is not latency-critical; use ThroughputSlowdown", a.Name)
	}
	if opt.DisableSLOMemo {
		return sloRun(ctx, a, baseline, opt)
	}
	pt, err := sloCache.Load().Do(sloKey(a, baseline, opt), func() (sloPoint, error) {
		p95, load, err := sloRun(ctx, a, baseline, opt)
		return sloPoint{P95: p95, Load: load}, err
	})
	if err != nil {
		return 0, 0, err
	}
	return pt.P95, pt.Load, nil
}

// sloRun performs the actual baseline SLO simulation.
func sloRun(ctx context.Context, a apps.App, baseline hw.SKU, opt Options) (p95 float64, load float64, err error) {
	s := queueing.LogNormal{MeanSeconds: ServiceTime(a, ProfileOf(baseline, false)), CV: a.CV}
	load = opt.LoadFraction * queueing.Capacity(opt.BaselineCores, s)
	res, err := queueing.RunContext(ctx, queueing.Config{
		Servers:            opt.BaselineCores,
		ArrivalRate:        load,
		Service:            s,
		Requests:           opt.Requests,
		Seed:               opt.Seed,
		ReferenceSampling:  opt.ReferenceSampling,
		ReferenceEventLoop: opt.ReferenceEventLoop,
		FluidApprox:        opt.FluidApprox,
		FluidThreshold:     opt.FluidThreshold,
	})
	if err != nil {
		return 0, 0, err
	}
	return res.P95, load, nil
}

// ScalingFactor runs the paper's scaling search for one app: the
// smallest GreenSKU VM size in opt.CoreSteps whose p95 at the
// baseline's SLO load stays within the SLO.
func ScalingFactor(a apps.App, green, baseline hw.SKU, cxlBacked bool, opt Options) (Factor, error) {
	return ScalingFactorContext(context.Background(), a, green, baseline, cxlBacked, opt)
}

// ScalingFactorContext is ScalingFactor with cancellation.
func ScalingFactorContext(ctx context.Context, a apps.App, green, baseline hw.SKU, cxlBacked bool, opt Options) (Factor, error) {
	f := Factor{App: a.Name, Baseline: baseline.Name}
	if !a.LatencyCritical {
		// Throughput apps scale linearly with cores: bin the
		// slowdown directly.
		slow := Slowdown(a, ProfileOf(green, cxlBacked), ProfileOf(baseline, false))
		return binSlowdown(f, slow, opt), nil
	}
	slo, load, err := SLOContext(ctx, a, baseline, opt)
	if err != nil {
		return Factor{}, err
	}
	slow := Slowdown(a, ProfileOf(green, cxlBacked), ProfileOf(baseline, false))
	s := queueing.LogNormal{MeanSeconds: ServiceTime(a, ProfileOf(green, cxlBacked)), CV: a.CV}
	for _, cores := range opt.CoreSteps {
		// Peak-throughput criterion: the scaled VM's saturation
		// throughput (cores/S) must be within CapacityBand of the
		// baseline's (baselineCores/S_base), i.e. slow <= band*scale.
		scale := float64(cores) / float64(opt.BaselineCores)
		if slow > opt.CapacityBand*scale {
			continue
		}
		// Latency criterion: the simulated p95 at the SLO load must
		// not blow past the knee.
		res, err := queueing.RunContext(ctx, queueing.Config{
			Servers:            cores,
			ArrivalRate:        load,
			Service:            s,
			Requests:           opt.Requests,
			Seed:               opt.Seed,
			ReferenceSampling:  opt.ReferenceSampling,
			ReferenceEventLoop: opt.ReferenceEventLoop,
			FluidApprox:        opt.FluidApprox,
			FluidThreshold:     opt.FluidThreshold,
		})
		if err != nil {
			return Factor{}, err
		}
		if !res.Saturated && res.P95 <= slo*opt.SLOSlack {
			f.Value = scale
			f.Adoptable = true
			return f, nil
		}
	}
	f.Value = math.Inf(1)
	return f, nil
}

func binSlowdown(f Factor, slow float64, opt Options) Factor {
	for _, cores := range opt.CoreSteps {
		scale := float64(cores) / float64(opt.BaselineCores)
		// A throughput app meets the baseline's rate when
		// cores/serviceTime matches: scale >= slow (with the same
		// 5% tolerance the latency path gets from SLO slack).
		if scale*1.05 >= slow {
			f.Value = scale
			f.Adoptable = true
			return f
		}
	}
	f.Value = math.Inf(1)
	return f
}

// TableIII computes the full scaling-factor matrix: every app against
// every baseline generation (Gen1, Gen2, Gen3), as in Table III.
func TableIII(green hw.SKU, opt Options) (map[string]map[int]Factor, error) {
	return TableIIIContext(context.Background(), green, opt)
}

// TableIIIContext is TableIII with cancellation. The (app, generation)
// cells are independent seeded simulations, so they fan out across the
// evaluation engine (opt.Workers bounds the pool); results are slotted
// by cell index, making the parallel table identical to the serial one.
func TableIIIContext(ctx context.Context, green hw.SKU, opt Options) (map[string]map[int]Factor, error) {
	all := apps.All()
	cells := engine.Map(ctx, opt.Workers, len(all)*3, func(ctx context.Context, i int) (Factor, error) {
		a := all[i/3]
		gen := i%3 + 1
		return ScalingFactorContext(ctx, a, green, hw.BaselineForGeneration(gen), false, opt)
	})
	factors, err := engine.Collect(cells)
	if err != nil {
		return nil, err
	}
	out := map[string]map[int]Factor{}
	for i, f := range factors {
		a := all[i/3]
		if out[a.Name] == nil {
			out[a.Name] = map[int]Factor{}
		}
		out[a.Name][i%3+1] = f
	}
	return out, nil
}

// ProfileKey fingerprints a TableIII computation: the green SKU's full
// hardware description, the measurement options, and the app set. Two
// identical keys are guaranteed to produce identical factor matrices
// (the simulators are seeded), which is what makes profiling safe to
// memoize across a sweep. Execution knobs that cannot change the
// answer (Workers, DisableSLOMemo) are normalised out of the key.
func ProfileKey(green hw.SKU, opt Options) string {
	opt.Workers = 0
	opt.DisableSLOMemo = false
	names := make([]string, 0, len(apps.All()))
	for _, a := range apps.All() {
		names = append(names, a.Name)
	}
	return fmt.Sprintf("%#v|%#v|%v", green, opt, names)
}

// ThroughputSlowdown returns the normalised completion-time ratio of a
// DevOps app on the given SKU relative to Gen3, the metric of Table II.
func ThroughputSlowdown(a apps.App, sku hw.SKU, cxlBacked bool) float64 {
	return Slowdown(a, ProfileOf(sku, cxlBacked), ProfileOf(hw.BaselineGen3(), false))
}

// LowLoadLatency returns the p95 latency at "low" load (30% of the
// SKU's own peak, per §VI) for the app on the SKU with the given VM
// core count.
func LowLoadLatency(a apps.App, sku hw.SKU, cores int, cxlBacked bool, opt Options) (float64, error) {
	s := queueing.LogNormal{MeanSeconds: ServiceTime(a, ProfileOf(sku, cxlBacked)), CV: a.CV}
	res, err := queueing.Run(queueing.Config{
		Servers:            cores,
		ArrivalRate:        0.3 * queueing.Capacity(cores, s),
		Service:            s,
		Requests:           opt.Requests,
		Seed:               opt.Seed,
		ReferenceSampling:  opt.ReferenceSampling,
		ReferenceEventLoop: opt.ReferenceEventLoop,
		FluidApprox:        opt.FluidApprox,
		FluidThreshold:     opt.FluidThreshold,
	})
	if err != nil {
		return 0, err
	}
	return res.P95, nil
}
