package perf

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/hw"
)

// GreenSKU-CXL adds ~100 GB/s of CXL bandwidth on top of local DDR5
// (§III), raising bandwidth per core from 3.6 to 4.4 GB/s. For
// bandwidth-bound applications this changes the scaling story relative
// to GreenSKU-Efficient, even before any latency effects.

func TestCXLBandwidthRescuesMasstree(t *testing.T) {
	a, err := apps.ByName("Masstree")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	// On GreenSKU-Efficient, Masstree cannot reach Gen3's peak even
	// at 12 cores (Table III: ">1.5").
	eff, err := ScalingFactor(a, hw.GreenSKUEfficient(), hw.BaselineGen3(), false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if eff.Adoptable {
		t.Fatalf("Masstree on Efficient = %v, want not adoptable", eff.Value)
	}
	// GreenSKU-CXL's extra bandwidth brings it within the 12-core
	// band (VM memory still local DDR5: cxlBacked=false).
	cxl, err := ScalingFactor(a, hw.GreenSKUCXL(), hw.BaselineGen3(), false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cxl.Adoptable || cxl.Value != 1.5 {
		t.Fatalf("Masstree on CXL SKU = %v (adoptable=%v), want 1.5", cxl.Value, cxl.Adoptable)
	}
}

func TestCXLBandwidthImprovesXapian(t *testing.T) {
	a, err := apps.ByName("Xapian")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	eff, err := ScalingFactor(a, hw.GreenSKUEfficient(), hw.BaselineGen3(), false, opt)
	if err != nil {
		t.Fatal(err)
	}
	cxl, err := ScalingFactor(a, hw.GreenSKUCXL(), hw.BaselineGen3(), false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !(cxl.Adoptable && eff.Adoptable && cxl.Value < eff.Value) {
		t.Fatalf("Xapian: CXL SKU factor %v should beat Efficient's %v", cxl.Value, eff.Value)
	}
}

func TestCXLFactorsNeverWorseWhenLocal(t *testing.T) {
	// With VM memory kept on local DDR5, the CXL SKU strictly adds
	// bandwidth: no app's scaling factor may get worse.
	opt := DefaultOptions()
	effFactors, err := TableIII(hw.GreenSKUEfficient(), opt)
	if err != nil {
		t.Fatal(err)
	}
	cxlFactors, err := TableIII(hw.GreenSKUCXL(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for app, byGen := range effFactors {
		for gen, eff := range byGen {
			cxl := cxlFactors[app][gen]
			effV := eff.Value
			if !eff.Adoptable {
				effV = math.Inf(1)
			}
			cxlV := cxl.Value
			if !cxl.Adoptable {
				cxlV = math.Inf(1)
			}
			if cxlV > effV {
				t.Errorf("%s vs Gen%d: CXL factor %v worse than Efficient %v", app, gen, cxlV, effV)
			}
		}
	}
}
