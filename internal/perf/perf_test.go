package perf

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/hw"
)

// tableIII is the paper's Table III: scaling factors of
// GreenSKU-Efficient relative to Gen1/Gen2/Gen3 per application.
// Inf marks ">1.5" (cannot adopt).
var tableIII = map[string][3]float64{
	"Redis":        {1, 1, 1},
	"Masstree":     {1, 1, math.Inf(1)},
	"Silo":         {math.Inf(1), math.Inf(1), math.Inf(1)},
	"Shore":        {1, 1, 1},
	"Xapian":       {1, 1, 1.5},
	"WebF-Dynamic": {1, 1.25, 1.25},
	"WebF-Hot":     {1, 1.25, 1.5},
	"WebF-Cold":    {1, 1, 1},
	"Moses":        {1, 1, 1.25},
	"Sphinx":       {1, 1.25, 1.25},
	"Img-DNN":      {1, 1, 1},
	"Nginx":        {1, 1, 1.25},
	"Caddy":        {1, 1, 1},
	"Envoy":        {1, 1, 1},
	"HAProxy":      {1, 1, 1.25},
	"Traefik":      {1, 1, 1.25},
	"Build-Python": {1, 1, 1.25},
	"Build-Wasm":   {1, 1, 1.25},
	"Build-PHP":    {1, 1, 1.25},
}

// TestTableIII verifies that the fitted application models reproduce
// every cell of the paper's Table III via the full SLO measurement
// protocol (simulated latency curves, not just analytic slowdowns).
func TestTableIII(t *testing.T) {
	got, err := TableIII(hw.GreenSKUEfficient(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for app, want := range tableIII {
		for gen := 1; gen <= 3; gen++ {
			f, ok := got[app][gen]
			if !ok {
				t.Fatalf("no factor for %s gen %d", app, gen)
			}
			w := want[gen-1]
			if math.IsInf(w, 1) {
				if f.Adoptable {
					t.Errorf("%s vs Gen%d: got %v, want >1.5 (not adoptable)", app, gen, f.Value)
				}
				continue
			}
			if !f.Adoptable || f.Value != w {
				t.Errorf("%s vs Gen%d: got %v (adoptable=%v), want %v", app, gen, f.Value, f.Adoptable, w)
			}
		}
	}
	if len(got) != 20 {
		t.Errorf("TableIII computed %d apps, want 20 (19 Table III rows + WebF-Mix)", len(got))
	}
}

// TestTableII verifies the DevOps slowdowns against Table II within
// ±0.05 on every cell.
func TestTableII(t *testing.T) {
	want := map[string][3]float64{ // Gen1, Gen2, GreenSKU-Efficient (Gen3 = 1.0)
		"Build-PHP":    {1.27, 1.11, 1.17},
		"Build-Python": {1.28, 1.13, 1.15},
		"Build-Wasm":   {1.34, 1.19, 1.15},
	}
	for name, w := range want {
		a, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := [3]float64{
			ThroughputSlowdown(a, hw.BaselineGen1(), false),
			ThroughputSlowdown(a, hw.BaselineGen2(), false),
			ThroughputSlowdown(a, hw.GreenSKUEfficient(), false),
		}
		for i := range got {
			if math.Abs(got[i]-w[i]) > 0.05 {
				t.Errorf("%s column %d: slowdown = %.3f, want %.2f ±0.05", name, i, got[i], w[i])
			}
		}
		if gen3 := ThroughputSlowdown(a, hw.BaselineGen3(), false); math.Abs(gen3-1) > 1e-9 {
			t.Errorf("%s vs Gen3 = %v, want exactly 1", name, gen3)
		}
	}
}

func TestServiceTimeReference(t *testing.T) {
	// On the Gen3 reference profile the service time equals the base,
	// except for apps whose bandwidth demand exceeds even Gen3's
	// 5.75 GB/s per core (Masstree), which pay a small penalty there
	// too.
	for _, a := range apps.All() {
		got := ServiceTime(a, ProfileOf(hw.BaselineGen3(), false))
		want := a.BaseServiceMS / 1000
		if a.BWDemandGBs > 5.75 {
			if got <= want || got > want*1.05 {
				t.Errorf("%s: service time on Gen3 = %v, want slightly above base %v", a.Name, got, want)
			}
			continue
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: service time on Gen3 = %v, want base %v", a.Name, got, want)
		}
	}
}

func TestCXLDoublesLatencyPenalty(t *testing.T) {
	moses, err := apps.ByName("Moses")
	if err != nil {
		t.Fatal(err)
	}
	sku := hw.GreenSKUCXL()
	local := ServiceTime(moses, ProfileOf(sku, false))
	cxl := ServiceTime(moses, ProfileOf(sku, true))
	// Multiplier is 1 + MemLatSens*(280/140 - 1) = 1 + 0.5 = 1.5.
	if math.Abs(cxl/local-1.5) > 1e-9 {
		t.Errorf("Moses CXL multiplier = %v, want 1.5", cxl/local)
	}

	hap, err := apps.ByName("HAProxy")
	if err != nil {
		t.Fatal(err)
	}
	hl := ServiceTime(hap, ProfileOf(sku, false))
	hc := ServiceTime(hap, ProfileOf(sku, true))
	// HAProxy: 1.12 multiplier -> ~11% peak-throughput reduction (Fig 8).
	if math.Abs(hc/hl-1.12) > 1e-9 {
		t.Errorf("HAProxy CXL multiplier = %v, want 1.12", hc/hl)
	}
}

func TestSLOErrorsForThroughputApp(t *testing.T) {
	a, err := apps.ByName("Build-PHP")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SLO(a, hw.BaselineGen3(), DefaultOptions()); err == nil {
		t.Fatal("SLO should reject a non-latency-critical app")
	}
}

func TestFactorString(t *testing.T) {
	cases := []struct {
		f    Factor
		want string
	}{
		{Factor{Value: 1, Adoptable: true}, "1"},
		{Factor{Value: 1.25, Adoptable: true}, "1.25"},
		{Factor{Value: 1.5, Adoptable: true}, "1.50"},
		{Factor{Value: math.Inf(1)}, ">1.5"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestLowLoadLatencyOrdering(t *testing.T) {
	// §VI: GreenSKU-Efficient's low-load latency is lower than Gen1's
	// (median across apps, -8.3%) and higher than Gen3's (+16%).
	var green, gen1, gen3 []float64
	opt := DefaultOptions()
	for _, a := range apps.All() {
		if !a.LatencyCritical {
			continue
		}
		g, err := LowLoadLatency(a, hw.GreenSKUEfficient(), 10, false, opt)
		if err != nil {
			t.Fatal(err)
		}
		b1, err := LowLoadLatency(a, hw.BaselineGen1(), 8, false, opt)
		if err != nil {
			t.Fatal(err)
		}
		b3, err := LowLoadLatency(a, hw.BaselineGen3(), 8, false, opt)
		if err != nil {
			t.Fatal(err)
		}
		green = append(green, g)
		gen1 = append(gen1, b1)
		gen3 = append(gen3, b3)
	}
	var vsGen1, vsGen3 []float64
	for i := range green {
		vsGen1 = append(vsGen1, green[i]/gen1[i])
		vsGen3 = append(vsGen3, green[i]/gen3[i])
	}
	medianOf := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		for i := range s {
			for j := i + 1; j < len(s); j++ {
				if s[j] < s[i] {
					s[i], s[j] = s[j], s[i]
				}
			}
		}
		return s[len(s)/2]
	}
	if m := medianOf(vsGen1); m >= 1.0 {
		t.Errorf("median low-load latency vs Gen1 = %v, want < 1 (paper: -8.3%%)", m)
	}
	if m := medianOf(vsGen3); m <= 1.0 || m > 1.4 {
		t.Errorf("median low-load latency vs Gen3 = %v, want moderately above 1 (paper: +16%%)", m)
	}
}

func TestScalingFactorMonotoneInCores(t *testing.T) {
	// If an app meets the SLO at 8 cores it must also meet it at 10
	// and 12 (sanity of the search's early return).
	a, err := apps.ByName("Xapian")
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.CoreSteps = []int{12}
	f, err := ScalingFactor(a, hw.GreenSKUEfficient(), hw.BaselineGen3(), false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Adoptable {
		t.Error("Xapian should meet Gen3 SLO at 12 cores")
	}
}
