package perf

// Regression tests for the SLO memo key's coverage of the queueing
// kernel knobs. sloKey reduces Options to the fields that influence the
// simulated point, and that reduction is rebuilt by hand — so a new
// simulator knob that is threaded into queueing.Config but forgotten in
// the reduced literal silently collides memo entries across kernel
// modes. That is exactly what happened when ReferenceEventLoop and the
// fluid knobs landed; these tests pin the fix and the failure shape.

import (
	"fmt"
	"testing"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/hw"
)

// kernelKnobVariants are the Options mutations that change what the
// queueing simulator computes and therefore must change the memo key.
func kernelKnobVariants() map[string]func(*Options) {
	return map[string]func(*Options){
		"ReferenceSampling":  func(o *Options) { o.ReferenceSampling = true },
		"ReferenceEventLoop": func(o *Options) { o.ReferenceEventLoop = true },
		"FluidApprox":        func(o *Options) { o.FluidApprox = true },
		"FluidThreshold":     func(o *Options) { o.FluidApprox = true; o.FluidThreshold = 0.5 },
		"Requests":           func(o *Options) { o.Requests += 1000 },
		"Seed":               func(o *Options) { o.Seed++ },
	}
}

// TestSLOKeyDistinguishesKernelKnobs pins that every simulator knob
// produces a distinct memo key, while sweep-shape knobs that cannot
// change the baseline point share one.
func TestSLOKeyDistinguishesKernelKnobs(t *testing.T) {
	a := apps.All()[0]
	base := hw.BaselineGen3()
	def := DefaultOptions()
	k0 := sloKey(a, base, def)

	for name, mut := range kernelKnobVariants() {
		opt := def
		mut(&opt)
		if sloKey(a, base, opt) == k0 {
			t.Errorf("%s: memo key unchanged by a knob that changes the simulation", name)
		}
	}
	for name, mut := range map[string]func(*Options){
		"Workers":        func(o *Options) { o.Workers = 7 },
		"DisableSLOMemo": func(o *Options) { o.DisableSLOMemo = true },
		"CoreSteps":      func(o *Options) { o.CoreSteps = []int{8} },
		"CapacityBand":   func(o *Options) { o.CapacityBand = 2 },
		"SLOSlack":       func(o *Options) { o.SLOSlack = 3 },
	} {
		opt := def
		mut(&opt)
		if sloKey(a, base, opt) != k0 {
			t.Errorf("%s: memo key changed by a green-side sweep knob", name)
		}
	}
}

// TestSLOKeyLegacyShapeCollides documents the bug the fix removed: the
// pre-fix reduced literal (BaselineCores, LoadFraction, Requests, Seed,
// ReferenceSampling only) maps different kernel modes to one key, so a
// fluid approximation could have been served from a discrete run's memo
// entry. The current sloKey keeps them apart.
func TestSLOKeyLegacyShapeCollides(t *testing.T) {
	legacyKey := func(a apps.App, baseline hw.SKU, opt Options) string {
		k := Options{
			BaselineCores:     opt.BaselineCores,
			LoadFraction:      opt.LoadFraction,
			Requests:          opt.Requests,
			Seed:              opt.Seed,
			ReferenceSampling: opt.ReferenceSampling,
		}
		return fmt.Sprintf("%#v|%#v|%#v", a, baseline, k)
	}
	a := apps.All()[0]
	base := hw.BaselineGen3()
	discrete := DefaultOptions()
	fluid := discrete
	fluid.FluidApprox = true

	if legacyKey(a, base, discrete) != legacyKey(a, base, fluid) {
		t.Fatal("legacy key shape no longer collides; this regression demo is stale")
	}
	if sloKey(a, base, discrete) == sloKey(a, base, fluid) {
		t.Fatal("sloKey collides across FluidApprox modes: a fluid answer could be served from a discrete memo entry")
	}
}

// TestSLOMemoMissesAcrossKernelModes is the behavioral form: flipping a
// kernel knob after a memoized run must miss the cache, not serve the
// other mode's point.
func TestSLOMemoMissesAcrossKernelModes(t *testing.T) {
	opt := DefaultOptions()
	opt.Requests = 8000
	a := apps.All()[0]
	base := hw.BaselineGen3()

	ResetSLOCache()
	if _, _, err := SLO(a, base, opt); err != nil {
		t.Fatal(err)
	}
	ref := opt
	ref.ReferenceEventLoop = true
	if _, _, err := SLO(a, base, ref); err != nil {
		t.Fatal(err)
	}
	if h, m := SLOCacheStats(); h != 0 || m != 2 {
		t.Fatalf("ReferenceEventLoop run reused the batched memo entry: hits=%d misses=%d, want 0/2", h, m)
	}
}
