package perf

import (
	"testing"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/hw"
)

// Metamorphic properties of the sensitivity model behind ServiceTime:
// every profile-dependent term multiplies the app's base service time,
// so scaling the base scales the result, ratios cancel it entirely,
// and each sensitivity moves latency in its documented direction.

func TestServiceTimeLinearInBaseService(t *testing.T) {
	profiles := []Profile{
		ProfileOf(hw.BaselineGen3(), false),
		ProfileOf(hw.GreenSKUCXL(), true),
		ProfileOf(hw.GreenSKUEfficient(), false),
	}
	for _, a := range apps.All() {
		for _, p := range profiles {
			ref := ServiceTime(a, p)
			for _, alpha := range []float64{0.5, 2, 3.5, 10} {
				scaled := a
				scaled.BaseServiceMS = a.BaseServiceMS * alpha
				if got, want := ServiceTime(scaled, p), ref*alpha; !audit.Close(got, want, 1e-12) {
					t.Errorf("%s on %s: ServiceTime(%g*base) = %g, want exactly %g",
						a.Name, p.SKU, alpha, got, want)
				}
			}
		}
	}
}

func TestSlowdownInvariantUnderBaseServiceScaling(t *testing.T) {
	green := ProfileOf(hw.GreenSKUCXL(), true)
	base := ProfileOf(hw.BaselineGen3(), false)
	for _, a := range apps.All() {
		ref := Slowdown(a, green, base)
		scaled := a
		scaled.BaseServiceMS = a.BaseServiceMS * 7.5
		if got := Slowdown(scaled, green, base); !audit.Close(got, ref, 1e-12) {
			t.Errorf("%s: slowdown moved with base service time: %g -> %g", a.Name, ref, got)
		}
	}
}

func TestServiceTimeMonotoneInCPUScore(t *testing.T) {
	// A strictly faster CPU (all else equal) never increases service
	// time; with positive frequency sensitivity it strictly decreases.
	base := ProfileOf(hw.BaselineGen3(), false)
	faster := base
	faster.CPUScore = base.CPUScore * 1.3
	for _, a := range apps.All() {
		s0, s1 := ServiceTime(a, base), ServiceTime(a, faster)
		if s1 > s0 {
			t.Errorf("%s: faster CPU increased service time: %g -> %g", a.Name, s0, s1)
		}
		if a.FreqSens > 0 && s1 >= s0 {
			t.Errorf("%s (FreqSens=%g): faster CPU did not decrease service time", a.Name, a.FreqSens)
		}
	}
}

func TestCXLLatencyPenaltyMatchesSensitivity(t *testing.T) {
	// CXL doubles memory latency, so the slowdown on an otherwise
	// identical profile is exactly 1 + MemLatSens.
	local := ProfileOf(hw.GreenSKUCXL(), false)
	cxl := ProfileOf(hw.GreenSKUCXL(), true)
	for _, a := range apps.All() {
		got := ServiceTime(a, cxl) / ServiceTime(a, local)
		if want := 1 + a.MemLatSens; !audit.Close(got, want, 1e-12) {
			t.Errorf("%s: CXL slowdown = %g, want 1+MemLatSens = %g", a.Name, got, want)
		}
	}
}
