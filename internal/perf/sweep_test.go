package perf

// Determinism and memoization tests for the sweep machinery: the
// parallel TableIII must be indistinguishable from the serial one, and
// the SLO memo must change cost, never answers.

import (
	"context"
	"reflect"
	"testing"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/hw"
)

func TestTableIIIParallelMatchesSerial(t *testing.T) {
	green := hw.GreenSKUFull()

	serial := DefaultOptions()
	serial.Workers = 1
	serial.Requests = 8000
	ResetSLOCache()
	want, err := TableIII(green, serial)
	if err != nil {
		t.Fatal(err)
	}

	par := serial
	par.Workers = 8
	ResetSLOCache()
	got, err := TableIII(green, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("parallel TableIII differs from serial:\nserial:   %v\nparallel: %v", want, got)
	}
}

func TestSLOMemoHitsOnRepeat(t *testing.T) {
	opt := DefaultOptions()
	opt.Requests = 8000
	a := apps.All()[0]
	base := hw.BaselineGen3()

	ResetSLOCache()
	p1, l1, err := SLO(a, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	h0, m0 := SLOCacheStats()
	if h0 != 0 || m0 != 1 {
		t.Fatalf("after first SLO call: hits=%d misses=%d, want 0/1", h0, m0)
	}
	p2, l2, err := SLO(a, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	if h1, m1 := SLOCacheStats(); h1 != 1 || m1 != 1 {
		t.Fatalf("after repeat SLO call: hits=%d misses=%d, want 1/1", h1, m1)
	}
	if p1 != p2 || l1 != l2 {
		t.Fatalf("memoized SLO point differs: (%v,%v) vs (%v,%v)", p1, l1, p2, l2)
	}
}

func TestSLOMemoDisabledMatchesEnabled(t *testing.T) {
	opt := DefaultOptions()
	opt.Requests = 8000
	a := apps.All()[0]
	base := hw.BaselineGen2()

	ResetSLOCache()
	p1, l1, err := SLO(a, base, opt)
	if err != nil {
		t.Fatal(err)
	}
	raw := opt
	raw.DisableSLOMemo = true
	p2, l2, err := SLO(a, base, raw)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || l1 != l2 {
		t.Fatalf("memoized (%v,%v) vs unmemoized (%v,%v) SLO differ", p1, l1, p2, l2)
	}
	if _, m := SLOCacheStats(); m != 1 {
		t.Fatalf("DisableSLOMemo run touched the cache: misses=%d, want 1", m)
	}
}

func TestSLOKeySeparatesSamplingModes(t *testing.T) {
	opt := DefaultOptions()
	a := apps.All()[0]
	base := hw.BaselineGen3()
	ref := opt
	ref.ReferenceSampling = true
	if sloKey(a, base, opt) == sloKey(a, base, ref) {
		t.Fatal("fast and reference sampling share an SLO memo key")
	}
	// Execution knobs must not split the key.
	w := opt
	w.Workers = 7
	w.DisableSLOMemo = false
	if sloKey(a, base, opt) != sloKey(a, base, w) {
		t.Fatal("Workers changed the SLO memo key")
	}
}

func TestTableIIICancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ResetSLOCache()
	if _, err := TableIIIContext(ctx, hw.GreenSKUFull(), DefaultOptions()); err == nil {
		t.Fatal("TableIIIContext ignored a cancelled context")
	}
}

func BenchmarkTableIII(b *testing.B) {
	opt := DefaultOptions()
	green := hw.GreenSKUFull()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ResetSLOCache()
		if _, err := TableIII(green, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIIIUnmemoized(b *testing.B) {
	opt := DefaultOptions()
	opt.DisableSLOMemo = true
	opt.Workers = 1
	green := hw.GreenSKUFull()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := TableIII(green, opt); err != nil {
			b.Fatal(err)
		}
	}
}
