package perf

import (
	"os"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// TestMain runs the package under a process-default audit.Recorder, so
// every audited code path any test exercises doubles as an invariant
// sweep; any recorded violation fails the run.
func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }
