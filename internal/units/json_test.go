package units

import (
	"encoding/json"
	"testing"
)

func TestMarshalWithUnits(t *testing.T) {
	cases := []struct {
		v    any
		want string
	}{
		{Watts(403.2), `{"value":403.2,"unit":"W"}`},
		{KilowattHours(12), `{"value":12,"unit":"kWh"}`},
		{KgCO2e(1644), `{"value":1644,"unit":"kgCO2e"}`},
		{CarbonIntensity(0.1), `{"value":0.1,"unit":"kgCO2e/kWh"}`},
		{GB(768), `{"value":768,"unit":"GB"}`},
		{Hours(52560), `{"value":52560,"unit":"h"}`},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%T: %v", tc.v, err)
		}
		if string(got) != tc.want {
			t.Errorf("%T: got %s, want %s", tc.v, got, tc.want)
		}
	}
}

func TestMarshalKeepsFullPrecision(t *testing.T) {
	v := KgCO2e(31.415926535897932)
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if KgCO2e(back.Value) != v {
		t.Errorf("round trip lost precision: %v != %v", back.Value, v)
	}
}

func TestUnmarshalObjectAndBareNumber(t *testing.T) {
	var w Watts
	if err := json.Unmarshal([]byte(`{"value":350,"unit":"W"}`), &w); err != nil || w != 350 {
		t.Errorf("object form: %v %v", w, err)
	}
	var ci CarbonIntensity
	if err := json.Unmarshal([]byte(`0.25`), &ci); err != nil || ci != 0.25 {
		t.Errorf("bare number: %v %v", ci, err)
	}
	var g GB
	if err := json.Unmarshal([]byte(`"not a number"`), &g); err == nil {
		t.Error("string should not unmarshal into GB")
	}
}

func TestMarshalInsideStruct(t *testing.T) {
	type row struct {
		Power    Watts  `json:"power"`
		Embodied KgCO2e `json:"embodied"`
	}
	b, err := json.Marshal(row{Power: 403, Embodied: 1644})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"power":{"value":403,"unit":"W"},"embodied":{"value":1644,"unit":"kgCO2e"}}`
	if string(b) != want {
		t.Errorf("got %s, want %s", b, want)
	}
	var back row
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Power != 403 || back.Embodied != 1644 {
		t.Errorf("round trip: %+v", back)
	}
}
