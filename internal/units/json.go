package units

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// JSON encoding for the typed quantities. Each marshals as an object
// carrying both the numeric value and its unit symbol, e.g.
//
//	{"value":403.2,"unit":"W"}
//
// so API responses and structured logs are self-describing instead of
// bare floats. The value keeps full float64 precision (strconv 'g' with
// precision -1), unlike the display-oriented String methods which round.

func marshalUnit(v float64, unit string) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"value":%s,"unit":%q}`,
		strconv.FormatFloat(v, 'g', -1, 64), unit)), nil
}

// unmarshalUnit accepts either the {"value":...,"unit":"..."} object
// form or a bare number, so clients can round-trip API responses and
// hand-written configs alike.
func unmarshalUnit(b []byte, dst *float64) error {
	var obj struct {
		Value float64 `json:"value"`
	}
	if err := json.Unmarshal(b, &obj); err == nil && len(b) > 0 && b[0] == '{' {
		*dst = obj.Value
		return nil
	}
	return json.Unmarshal(b, dst)
}

// MarshalJSON encodes the power as {"value":...,"unit":"W"}.
func (w Watts) MarshalJSON() ([]byte, error) { return marshalUnit(float64(w), "W") }

// MarshalJSON encodes the energy as {"value":...,"unit":"kWh"}.
func (e KilowattHours) MarshalJSON() ([]byte, error) { return marshalUnit(float64(e), "kWh") }

// MarshalJSON encodes the carbon mass as {"value":...,"unit":"kgCO2e"}.
func (c KgCO2e) MarshalJSON() ([]byte, error) { return marshalUnit(float64(c), "kgCO2e") }

// MarshalJSON encodes the intensity as {"value":...,"unit":"kgCO2e/kWh"}.
func (ci CarbonIntensity) MarshalJSON() ([]byte, error) {
	return marshalUnit(float64(ci), "kgCO2e/kWh")
}

// MarshalJSON encodes the capacity as {"value":...,"unit":"GB"}.
func (g GB) MarshalJSON() ([]byte, error) { return marshalUnit(float64(g), "GB") }

// MarshalJSON encodes the duration as {"value":...,"unit":"h"}.
func (h Hours) MarshalJSON() ([]byte, error) { return marshalUnit(float64(h), "h") }

// UnmarshalJSON accepts the object form or a bare number.
func (w *Watts) UnmarshalJSON(b []byte) error { return unmarshalUnit(b, (*float64)(w)) }

// UnmarshalJSON accepts the object form or a bare number.
func (e *KilowattHours) UnmarshalJSON(b []byte) error { return unmarshalUnit(b, (*float64)(e)) }

// UnmarshalJSON accepts the object form or a bare number.
func (c *KgCO2e) UnmarshalJSON(b []byte) error { return unmarshalUnit(b, (*float64)(c)) }

// UnmarshalJSON accepts the object form or a bare number.
func (ci *CarbonIntensity) UnmarshalJSON(b []byte) error { return unmarshalUnit(b, (*float64)(ci)) }

// UnmarshalJSON accepts the object form or a bare number.
func (g *GB) UnmarshalJSON(b []byte) error { return unmarshalUnit(b, (*float64)(g)) }

// UnmarshalJSON accepts the object form or a bare number.
func (h *Hours) UnmarshalJSON(b []byte) error { return unmarshalUnit(b, (*float64)(h)) }
