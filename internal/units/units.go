// Package units defines the typed physical quantities used throughout GSF:
// power, energy, carbon mass, carbon intensity, and storage capacity.
//
// All quantities are float64 wrappers. The wrappers exist to keep unit
// mistakes (watts vs kilowatts, GB vs GiB, kg vs g of CO2e) out of the
// carbon model, where such mistakes silently corrupt results.
package units

import "fmt"

// Watts is electrical power.
type Watts float64

// Kilowatts converts to kW.
func (w Watts) Kilowatts() float64 { return float64(w) / 1000 }

func (w Watts) String() string { return fmt.Sprintf("%.1f W", float64(w)) }

// KilowattHours is electrical energy.
type KilowattHours float64

func (e KilowattHours) String() string { return fmt.Sprintf("%.1f kWh", float64(e)) }

// KgCO2e is a mass of carbon-dioxide equivalent, the common unit for
// global-warming potential used by the paper's carbon model.
type KgCO2e float64

func (c KgCO2e) String() string { return fmt.Sprintf("%.1f kgCO2e", float64(c)) }

// CarbonIntensity is the carbon intensity of consumed energy in
// kgCO2e per kWh. Azure's large-region average in the paper is 0.1.
type CarbonIntensity float64

// Emissions returns the carbon emitted by consuming the given energy.
func (ci CarbonIntensity) Emissions(e KilowattHours) KgCO2e {
	return KgCO2e(float64(ci) * float64(e))
}

func (ci CarbonIntensity) String() string {
	return fmt.Sprintf("%.3f kgCO2e/kWh", float64(ci))
}

// GB is storage or memory capacity in gigabytes. The paper's carbon data
// is expressed per GB (DRAM) and per TB (SSD); both map onto GB here.
type GB float64

// TB returns the capacity in terabytes.
func (g GB) TB() float64 { return float64(g) / 1000 }

// TBToGB converts a terabyte quantity to GB.
func TBToGB(tb float64) GB { return GB(tb * 1000) }

func (g GB) String() string {
	if g >= 1000 {
		return fmt.Sprintf("%.1f TB", g.TB())
	}
	return fmt.Sprintf("%.0f GB", float64(g))
}

// Hours is a duration in hours. Server lifetimes are long enough that
// time.Duration (max ~292 years in ns) would work, but every formula in
// the paper is written in hours, so we keep that unit.
type Hours float64

// HoursPerYear is the paper's year length: 365 days.
const HoursPerYear Hours = 8760

// HoursPerDay is the period of a diurnal carbon-intensity cycle.
const HoursPerDay Hours = 24

// Years converts a year count to Hours.
func Years(y float64) Hours { return Hours(y) * HoursPerYear }

// YearsValue reports the duration in years.
func (h Hours) YearsValue() float64 { return float64(h) / float64(HoursPerYear) }

func (h Hours) String() string { return fmt.Sprintf("%.0f h", float64(h)) }

// Energy returns the energy consumed by drawing p for the duration h.
func (h Hours) Energy(p Watts) KilowattHours {
	return KilowattHours(p.Kilowatts() * float64(h))
}
