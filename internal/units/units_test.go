package units

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWattsKilowatts(t *testing.T) {
	if got := Watts(1500).Kilowatts(); got != 1.5 {
		t.Fatalf("Kilowatts = %v, want 1.5", got)
	}
}

func TestCarbonIntensityEmissions(t *testing.T) {
	// 0.1 kgCO2e/kWh * 52560 kWh = 5256 kgCO2e.
	got := CarbonIntensity(0.1).Emissions(52560)
	if !almost(float64(got), 5256, 1e-9) {
		t.Fatalf("Emissions = %v, want 5256", got)
	}
}

func TestHoursEnergy(t *testing.T) {
	// 403 W over 6 years: 0.403 kW * 52560 h = 21181.68 kWh.
	e := Years(6).Energy(Watts(403))
	if !almost(float64(e), 21181.68, 1e-6) {
		t.Fatalf("Energy = %v, want 21181.68", e)
	}
}

func TestYearsRoundTrip(t *testing.T) {
	if got := Years(6); got != 52560 {
		t.Fatalf("Years(6) = %v, want 52560", got)
	}
	if got := Hours(52560).YearsValue(); !almost(got, 6, 1e-12) {
		t.Fatalf("YearsValue = %v, want 6", got)
	}
}

func TestGBConversions(t *testing.T) {
	if got := TBToGB(2); got != 2000 {
		t.Fatalf("TBToGB(2) = %v, want 2000", got)
	}
	if got := GB(768).TB(); !almost(got, 0.768, 1e-12) {
		t.Fatalf("TB = %v, want 0.768", got)
	}
}

func TestStrings(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(403.4).String(), "403.4 W"},
		{KgCO2e(1644).String(), "1644.0 kgCO2e"},
		{GB(500).String(), "500 GB"},
		{GB(2000).String(), "2.0 TB"},
		{CarbonIntensity(0.1).String(), "0.100 kgCO2e/kWh"},
		{Hours(52560).String(), "52560 h"},
		{KilowattHours(12.34).String(), "12.3 kWh"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestPropertyEnergyLinearity(t *testing.T) {
	// Energy is linear in both power and duration.
	f := func(p, h float64) bool {
		p = math.Mod(math.Abs(p), 1e6)
		h = math.Mod(math.Abs(h), 1e6)
		e1 := Hours(h).Energy(Watts(p))
		e2 := Hours(2 * h).Energy(Watts(p))
		e3 := Hours(h).Energy(Watts(2 * p))
		return almost(float64(e2), 2*float64(e1), 1e-6*math.Max(1, float64(e2))) &&
			almost(float64(e3), 2*float64(e1), 1e-6*math.Max(1, float64(e3)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyYearsInverse(t *testing.T) {
	f := func(y float64) bool {
		y = math.Mod(math.Abs(y), 1e4)
		return almost(Years(y).YearsValue(), y, 1e-9*math.Max(1, y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
