package hw

import (
	"math"
	"testing"
)

func TestTableICatalog(t *testing.T) {
	cases := []struct {
		cpu   CPUSpec
		cores int
		freq  float64
		llc   int
	}{
		{Bergamo, 128, 3.0, 256},
		{Rome, 64, 3.0, 256},
		{Milan, 64, 3.7, 256},
		{Genoa, 80, 3.7, 384},
	}
	for _, c := range cases {
		if c.cpu.Cores != c.cores || c.cpu.MaxFreqGHz != c.freq || c.cpu.LLCMiB != c.llc {
			t.Errorf("%s = %+v, want cores=%d freq=%v llc=%d", c.cpu.Name, c.cpu, c.cores, c.freq, c.llc)
		}
	}
	if len(CPUCatalog()) != 4 {
		t.Fatalf("CPUCatalog has %d entries, want 4", len(CPUCatalog()))
	}
}

func TestLLCPerCore(t *testing.T) {
	// Genoa: 384/80 = 4.8 MiB/core; Bergamo: 256/128 = 2 MiB/core.
	if got := Genoa.LLCPerCoreMiB(); math.Abs(got-4.8) > 1e-9 {
		t.Fatalf("Genoa LLC/core = %v, want 4.8", got)
	}
	if got := Bergamo.LLCPerCoreMiB(); got != 2 {
		t.Fatalf("Bergamo LLC/core = %v, want 2", got)
	}
}

func TestBaselineConfig(t *testing.T) {
	b := BaselineGen3()
	if b.Cores() != 80 {
		t.Fatalf("baseline cores = %d, want 80", b.Cores())
	}
	if got := b.TotalDRAMGB(); got != 768 {
		t.Fatalf("baseline DRAM = %v, want 768", got)
	}
	if got := b.TotalSSDTB(); got != 12 {
		t.Fatalf("baseline SSD = %v, want 12", got)
	}
	// Paper: baseline memory:core ratio is 9.6.
	if got := b.MemoryCoreRatio(); math.Abs(got-9.6) > 1e-9 {
		t.Fatalf("baseline mem:core = %v, want 9.6", got)
	}
	if b.DIMMCount() != 12 || b.SSDCount() != 6 {
		t.Fatalf("baseline DIMMs/SSDs = %d/%d, want 12/6", b.DIMMCount(), b.SSDCount())
	}
}

func TestGreenSKUCXLConfig(t *testing.T) {
	s := GreenSKUCXL()
	if s.Cores() != 128 {
		t.Fatalf("cores = %d, want 128", s.Cores())
	}
	if got := s.LocalDRAMGB(); got != 768 {
		t.Fatalf("local DRAM = %v, want 768", got)
	}
	if got := s.CXLDRAMGB(); got != 256 {
		t.Fatalf("CXL DRAM = %v, want 256", got)
	}
	// Paper: GreenSKU memory:core ratio is 8.
	if got := s.MemoryCoreRatio(); got != 8 {
		t.Fatalf("mem:core = %v, want 8", got)
	}
	// §III: Bergamo with CXL offers (460+100)/128 = 4.375 GB/s per core.
	if got := s.MemBWPerCoreGBs(); math.Abs(got-4.375) > 1e-9 {
		t.Fatalf("mem BW per core = %v, want 4.375", got)
	}
	if !s.HasCXL() {
		t.Fatal("GreenSKU-CXL should report HasCXL")
	}
}

func TestGreenSKUFullConfig(t *testing.T) {
	s := GreenSKUFull()
	if got := s.TotalSSDTB(); got != 20 {
		t.Fatalf("total SSD = %v, want 20", got)
	}
	if got := s.NewSSDTB(); got != 8 {
		t.Fatalf("new SSD = %v, want 8", got)
	}
	if got := s.ReusedSSDTB(); got != 12 {
		t.Fatalf("reused SSD = %v, want 12", got)
	}
	// §V maintenance example: GreenSKU-Full has 20 DIMMs and 14 SSDs.
	if s.DIMMCount() != 20 || s.SSDCount() != 14 {
		t.Fatalf("DIMMs/SSDs = %d/%d, want 20/14", s.DIMMCount(), s.SSDCount())
	}
}

func TestGenoaVsBaselineBandwidth(t *testing.T) {
	// §III: Genoa offers 5.8 GB/s per core.
	if got := BaselineGen3().MemBWPerCoreGBs(); math.Abs(got-5.75) > 0.1 {
		t.Fatalf("Genoa BW/core = %v, want ~5.8", got)
	}
}

func TestValidateAll(t *testing.T) {
	for _, s := range TableIVConfigs() {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%s): %v", s.Name, err)
		}
	}
	for _, gen := range []int{1, 2, 3} {
		if err := BaselineForGeneration(gen).Validate(); err != nil {
			t.Errorf("Validate(gen %d): %v", gen, err)
		}
	}
}

func TestValidateRejectsBadSKUs(t *testing.T) {
	bad := []SKU{
		{},
		{Name: "x", Sockets: 1, FormFactorU: 2},
		{Name: "x", CPU: Genoa, Sockets: 1, FormFactorU: 2,
			DIMMs: []DIMMGroup{{Count: 4, CapacityGB: 32, Kind: MemCXL}}},
		{Name: "x", CPU: Genoa, Sockets: 1, FormFactorU: 2,
			SSDs: []SSDGroup{{Count: -1, CapacityTB: 2}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid SKU", i)
		}
	}
}

func TestBaselineForGenerationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for generation 0")
		}
	}()
	BaselineForGeneration(0)
}

func TestSysbenchGaps(t *testing.T) {
	// §III: Bergamo incurs 10% and 6% per-core slowdown vs Genoa and
	// Milan respectively.
	vsGenoa := 1 - Bergamo.CPUScore/Genoa.CPUScore
	if math.Abs(vsGenoa-0.10) > 0.005 {
		t.Errorf("Bergamo vs Genoa slowdown = %v, want 0.10", vsGenoa)
	}
	vsMilan := 1 - Bergamo.CPUScore/Milan.CPUScore
	if math.Abs(vsMilan-0.06) > 0.015 {
		t.Errorf("Bergamo vs Milan slowdown = %v, want ~0.06", vsMilan)
	}
}
