package hw

// The SKU configurations evaluated in Tables IV and VIII of the paper,
// plus the Gen1/Gen2 baselines used in the performance study. All are
// single-socket 2U servers (the paper's GreenSKU prototype form factor).

// BaselineGen3 is the currently deployed Genoa baseline SKU:
// 80 cores, 12 x 64 GB DDR5, 6 x 2 TB SSD (memory:core ratio 9.6).
func BaselineGen3() SKU {
	return SKU{
		Name:        "Baseline",
		CPU:         Genoa,
		Sockets:     1,
		DIMMs:       []DIMMGroup{{Count: 12, CapacityGB: 64, Kind: MemLocal}},
		SSDs:        []SSDGroup{{Count: 6, CapacityTB: 2}},
		FormFactorU: 2,
	}
}

// BaselineResized is the baseline with its memory:core ratio reduced
// from 9.6 to 8 (10 x 64 GB), the carbon-optimal ratio for the paper's
// workload traces.
func BaselineResized() SKU {
	s := BaselineGen3()
	s.Name = "Baseline-Resized"
	s.DIMMs = []DIMMGroup{{Count: 10, CapacityGB: 64, Kind: MemLocal}}
	return s
}

// BaselineGen1 is the oldest deployed generation (Rome).
func BaselineGen1() SKU {
	return SKU{
		Name:        "Gen1",
		CPU:         Rome,
		Sockets:     1,
		DIMMs:       []DIMMGroup{{Count: 12, CapacityGB: 64, Kind: MemLocal}},
		SSDs:        []SSDGroup{{Count: 6, CapacityTB: 2}},
		FormFactorU: 2,
	}
}

// BaselineGen2 is the second deployed generation (Milan).
func BaselineGen2() SKU {
	s := BaselineGen1()
	s.Name = "Gen2"
	s.CPU = Milan
	return s
}

// GreenSKUEfficient is GreenSKU #1: the efficient 128-core Bergamo CPU
// with 12 x 96 GB DDR5 and 5 x 4 TB SSD.
func GreenSKUEfficient() SKU {
	return SKU{
		Name:        "GreenSKU-Efficient",
		CPU:         Bergamo,
		Sockets:     1,
		DIMMs:       []DIMMGroup{{Count: 12, CapacityGB: 96, Kind: MemLocal}},
		SSDs:        []SSDGroup{{Count: 5, CapacityTB: 4}},
		FormFactorU: 2,
	}
}

// GreenSKUCXL is GreenSKU #2: GreenSKU-Efficient with 30% of its memory
// replaced by reused 32 GB DDR4 DIMMs behind two CXL controllers
// (memory:core ratio 8).
func GreenSKUCXL() SKU {
	return SKU{
		Name:    "GreenSKU-CXL",
		CPU:     Bergamo,
		Sockets: 1,
		DIMMs: []DIMMGroup{
			{Count: 12, CapacityGB: 64, Kind: MemLocal},
			{Count: 8, CapacityGB: 32, Kind: MemCXL, Reused: true},
		},
		SSDs:           []SSDGroup{{Count: 5, CapacityTB: 4}},
		CXLControllers: 2,
		CXLBWGBs:       100,
		FormFactorU:    2,
	}
}

// GreenSKUFull is GreenSKU #3: GreenSKU-CXL with 60% of its storage
// replaced by reused 1 TB m.2 SSDs (2 x 4 TB new E1.s plus 12 x 1 TB
// reused).
func GreenSKUFull() SKU {
	s := GreenSKUCXL()
	s.Name = "GreenSKU-Full"
	s.SSDs = []SSDGroup{
		{Count: 2, CapacityTB: 4},
		{Count: 12, CapacityTB: 1, Reused: true},
	}
	return s
}

// TableIVConfigs returns the five SKU configurations of Table IV/VIII in
// row order: Baseline, Baseline-Resized, GreenSKU-Efficient,
// GreenSKU-CXL, GreenSKU-Full.
func TableIVConfigs() []SKU {
	return []SKU{
		BaselineGen3(),
		BaselineResized(),
		GreenSKUEfficient(),
		GreenSKUCXL(),
		GreenSKUFull(),
	}
}

// BaselineForGeneration maps the paper's generation index (1, 2, 3) to
// its baseline SKU. It panics for other values.
func BaselineForGeneration(gen int) SKU {
	switch gen {
	case 1:
		return BaselineGen1()
	case 2:
		return BaselineGen2()
	case 3:
		return BaselineGen3()
	}
	panic("hw: unknown server generation")
}
