// Package hw describes server hardware: CPU specifications (Table I of
// the paper), memory and storage groups, and complete SKU configurations
// including the three GreenSKU prototypes and the Gen1–3 baselines.
//
// hw holds only physical/performance characteristics. Carbon-accounting
// values (TDP used for emission estimates, embodied kgCO2e) live in
// package carbondata, keyed by the component identifiers defined here,
// because the paper evaluates the same hardware under two datasets
// (internal-calibrated and open-source).
package hw

import (
	"fmt"

	"github.com/greensku/gsf/internal/units"
)

// MemKind distinguishes locally attached DRAM from DRAM reached through
// a CXL controller.
type MemKind int

const (
	// MemLocal is direct-attached DRAM (DDR5 in current servers).
	MemLocal MemKind = iota
	// MemCXL is DRAM behind a CXL Type 3 (CXL.mem) controller, the
	// paper's mechanism for reusing old DDR4 in new servers.
	MemCXL
)

func (k MemKind) String() string {
	if k == MemCXL {
		return "cxl"
	}
	return "local"
}

// CPUSpec describes a CPU socket, mirroring Table I.
type CPUSpec struct {
	Name       string
	Cores      int     // cores per socket
	MaxFreqGHz float64 // max core frequency
	LLCMiB     int     // last-level cache per socket
	TDP        units.Watts
	// MemBWGBs is the peak local memory bandwidth of a server built
	// around this CPU, in GB/s (e.g. 460 for DDR5 Genoa platforms).
	MemBWGBs float64
	// CPUScore is the relative per-core performance on a
	// Sysbench-style single-thread benchmark, normalised to Gen3
	// (Genoa) = 1.0.
	//
	// fitted: Bergamo 0.90 and Milan 0.957 reproduce the paper's
	// reported 10% and 6% Sysbench per-core slowdowns of Bergamo
	// relative to Genoa and Milan (§III).
	CPUScore float64
}

// LLCPerCoreMiB is the last-level cache available per core.
func (c CPUSpec) LLCPerCoreMiB() float64 {
	if c.Cores == 0 {
		return 0
	}
	return float64(c.LLCMiB) / float64(c.Cores)
}

// Table I CPU catalog, plus the efficient Bergamo part.
var (
	Bergamo = CPUSpec{Name: "Bergamo", Cores: 128, MaxFreqGHz: 3.0, LLCMiB: 256, TDP: 350, MemBWGBs: 460, CPUScore: 0.90}
	Rome    = CPUSpec{Name: "Rome", Cores: 64, MaxFreqGHz: 3.0, LLCMiB: 256, TDP: 240, MemBWGBs: 205, CPUScore: 0.78}
	Milan   = CPUSpec{Name: "Milan", Cores: 64, MaxFreqGHz: 3.7, LLCMiB: 256, TDP: 280, MemBWGBs: 205, CPUScore: 0.957}
	Genoa   = CPUSpec{Name: "Genoa", Cores: 80, MaxFreqGHz: 3.7, LLCMiB: 384, TDP: 320, MemBWGBs: 460, CPUScore: 1.0}
)

// CPUCatalog lists the CPUs of Table I in the paper's column order.
func CPUCatalog() []CPUSpec { return []CPUSpec{Bergamo, Rome, Milan, Genoa} }

// GPUSpec describes an accelerator card. Like CPUSpec it holds only
// physical characteristics; carbon-accounting values (accounting TDP,
// embodied kgCO2e per SCARIF-style estimates) live in carbondata.GPUs,
// keyed by Name.
type GPUSpec struct {
	Name  string
	TDP   units.Watts
	HBMGB units.GB
}

// Accelerator catalog: a training/HPC part and an efficient inference
// part, spanning the TDP range SCARIF models.
var (
	A100 = GPUSpec{Name: "A100", TDP: 400, HBMGB: 80}
	L4   = GPUSpec{Name: "L4", TDP: 72, HBMGB: 24}
)

// GPUCatalog lists the accelerator cards the design space can draw on.
func GPUCatalog() []GPUSpec { return []GPUSpec{A100, L4} }

// GPUGroup is a homogeneous set of accelerator cards in a SKU.
type GPUGroup struct {
	Spec  GPUSpec
	Count int
}

// DIMMGroup is a homogeneous set of memory DIMMs in a SKU.
type DIMMGroup struct {
	Count      int
	CapacityGB units.GB
	Kind       MemKind
	Reused     bool // second-life part: zero embodied emissions
}

// TotalGB returns the group's aggregate capacity.
func (g DIMMGroup) TotalGB() units.GB { return units.GB(float64(g.Count)) * g.CapacityGB }

// SSDGroup is a homogeneous set of SSDs in a SKU.
type SSDGroup struct {
	Count      int
	CapacityTB float64
	Reused     bool
}

// TotalTB returns the group's aggregate capacity.
func (g SSDGroup) TotalTB() float64 { return float64(g.Count) * g.CapacityTB }

// SKU is a complete compute-server configuration.
type SKU struct {
	Name           string
	CPU            CPUSpec
	Sockets        int
	DIMMs          []DIMMGroup
	SSDs           []SSDGroup
	CXLControllers int
	// GPUs are optional accelerator cards. None of the paper's SKUs
	// carry any; the design-space search uses them to widen the space
	// per SCARIF.
	GPUs []GPUGroup
	// FormFactorU is the rack height of the server in rack units.
	FormFactorU int
	// CXLBWGBs is additional memory bandwidth contributed by the CXL
	// links (e.g. ~100 GB/s over 32 PCIe5 lanes with 256-byte
	// interleaving).
	CXLBWGBs float64
}

// Cores returns the SKU's total core count.
func (s SKU) Cores() int { return s.CPU.Cores * s.Sockets }

// TotalDRAMGB returns all DRAM capacity, local plus CXL.
func (s SKU) TotalDRAMGB() units.GB {
	var total units.GB
	for _, g := range s.DIMMs {
		total += g.TotalGB()
	}
	return total
}

// LocalDRAMGB returns direct-attached DRAM capacity.
func (s SKU) LocalDRAMGB() units.GB { return s.dramBy(MemLocal) }

// CXLDRAMGB returns CXL-attached DRAM capacity.
func (s SKU) CXLDRAMGB() units.GB { return s.dramBy(MemCXL) }

func (s SKU) dramBy(kind MemKind) units.GB {
	var total units.GB
	for _, g := range s.DIMMs {
		if g.Kind == kind {
			total += g.TotalGB()
		}
	}
	return total
}

// TotalSSDTB returns all SSD capacity in TB.
func (s SKU) TotalSSDTB() float64 {
	var total float64
	for _, g := range s.SSDs {
		total += g.TotalTB()
	}
	return total
}

// NewSSDTB returns the capacity of first-life SSDs in TB.
func (s SKU) NewSSDTB() float64 {
	var total float64
	for _, g := range s.SSDs {
		if !g.Reused {
			total += g.TotalTB()
		}
	}
	return total
}

// ReusedSSDTB returns the capacity of second-life SSDs in TB.
func (s SKU) ReusedSSDTB() float64 { return s.TotalSSDTB() - s.NewSSDTB() }

// DIMMCount returns the number of physical DIMMs.
func (s SKU) DIMMCount() int {
	n := 0
	for _, g := range s.DIMMs {
		n += g.Count
	}
	return n
}

// SSDCount returns the number of physical SSDs.
func (s SKU) SSDCount() int {
	n := 0
	for _, g := range s.SSDs {
		n += g.Count
	}
	return n
}

// MemoryCoreRatio returns GB of DRAM per core (9.6 for the baseline,
// 8 for GreenSKU-CXL/Full).
func (s SKU) MemoryCoreRatio() float64 {
	if s.Cores() == 0 {
		return 0
	}
	return float64(s.TotalDRAMGB()) / float64(s.Cores())
}

// MemBWPerCoreGBs returns memory bandwidth per core including CXL-added
// bandwidth (5.8 GB/s for Genoa, 4.4 GB/s for Bergamo+CXL in §III).
func (s SKU) MemBWPerCoreGBs() float64 {
	if s.Cores() == 0 {
		return 0
	}
	return (s.CPU.MemBWGBs + s.CXLBWGBs) / float64(s.Cores())
}

// HasCXL reports whether the SKU reaches any memory through CXL.
func (s SKU) HasCXL() bool { return s.CXLControllers > 0 }

// GPUCount returns the number of accelerator cards.
func (s SKU) GPUCount() int {
	n := 0
	for _, g := range s.GPUs {
		n += g.Count
	}
	return n
}

// HasGPU reports whether the SKU carries any accelerator.
func (s SKU) HasGPU() bool { return s.GPUCount() > 0 }

// Validate checks structural invariants of the SKU definition.
func (s SKU) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("hw: SKU has no name")
	}
	if s.Sockets <= 0 {
		return fmt.Errorf("hw: SKU %s: sockets must be positive", s.Name)
	}
	if s.CPU.Cores <= 0 {
		return fmt.Errorf("hw: SKU %s: CPU has no cores", s.Name)
	}
	if s.FormFactorU <= 0 {
		return fmt.Errorf("hw: SKU %s: form factor must be positive", s.Name)
	}
	for _, g := range s.DIMMs {
		if g.Count < 0 || g.CapacityGB < 0 {
			return fmt.Errorf("hw: SKU %s: negative DIMM group", s.Name)
		}
		if g.Kind == MemCXL && s.CXLControllers == 0 {
			return fmt.Errorf("hw: SKU %s: CXL memory without a CXL controller", s.Name)
		}
	}
	for _, g := range s.SSDs {
		if g.Count < 0 || g.CapacityTB < 0 {
			return fmt.Errorf("hw: SKU %s: negative SSD group", s.Name)
		}
	}
	for _, g := range s.GPUs {
		if g.Count < 0 {
			return fmt.Errorf("hw: SKU %s: negative GPU group", s.Name)
		}
		if g.Count > 0 && g.Spec.Name == "" {
			return fmt.Errorf("hw: SKU %s: GPU group without a card name", s.Name)
		}
	}
	return nil
}
