// Package carbon implements GSF's carbon model component (§IV-A, §V):
// it aggregates per-component embodied emissions and derated power into
// server-, rack-, and datacenter-level emissions and produces the
// CO2e-per-core metric every other GSF component consumes.
//
// The model follows the paper's equations:
//
//	P_s   = Σ_i TDP_i · d_i · (1 + l_i)                    (Eq. 1)
//	P_r   = N_s · P_s + Σ_j P_j                            (Eq. 2)
//	N_s   = min(⌊(P_cap − P_rack)/P_s⌋, N_space)
//	E_r   = E_emb,r + L · CI · P_r
//	E_emb,r = N_s · E_emb,s + Σ_j CO2e_j                   (Eq. 3)
//
// The voltage-regulator loss l is applied per component (the paper's
// worked example applies the 5% loss to the CPU only).
package carbon

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// Model evaluates SKU emissions under one carbon dataset.
type Model struct {
	Data carbondata.Dataset
	// Audit receives carbon-balance invariant violations (part sums,
	// Eq. 2-3 consistency, non-negativity). Nil falls back to the
	// process default (audit.SetDefault); if that is also nil, checking
	// is disabled.
	Audit audit.Checker
}

// New returns a model over the given dataset. It returns an error if the
// dataset fails validation.
func New(data carbondata.Dataset) (*Model, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	return &Model{Data: data}, nil
}

// Part is the contribution of one component class to a server's power
// and embodied emissions.
type Part struct {
	Name     string
	Power    units.Watts // derated, loss-adjusted average draw
	Embodied units.KgCO2e
}

// Server is the server-level output of the carbon model.
type Server struct {
	SKU      hw.SKU
	Power    units.Watts  // P_s
	Embodied units.KgCO2e // E_emb,s
	Parts    []Part
}

// Server evaluates Eq. 1 and the embodied sum for one SKU.
func (m *Model) Server(sku hw.SKU) (Server, error) {
	if err := sku.Validate(); err != nil {
		return Server{}, err
	}
	cpu, err := m.Data.CPU(sku.CPU.Name)
	if err != nil {
		return Server{}, err
	}
	d := m.Data.DerateFactor
	var parts []Part

	add := func(name string, tdp units.Watts, loss float64, emb units.KgCO2e) {
		parts = append(parts, Part{
			Name:     name,
			Power:    units.Watts(float64(tdp) * d * (1 + loss)),
			Embodied: emb,
		})
	}

	add("cpu", units.Watts(float64(cpu.TDP)*float64(sku.Sockets)), cpu.VRLoss,
		units.KgCO2e(float64(cpu.Embodied)*float64(sku.Sockets)))

	var dramPower units.Watts
	var dramEmb units.KgCO2e
	for _, g := range sku.DIMMs {
		spec := m.Data.DRAMPerGB
		if g.Reused {
			spec = m.Data.ReusedDRAMPerGB
		}
		gb := float64(g.TotalGB())
		dramPower += units.Watts(float64(spec.TDP) * gb * (1 + spec.VRLoss))
		dramEmb += units.KgCO2e(float64(spec.Embodied) * gb)
	}
	parts = append(parts, Part{Name: "dram", Power: units.Watts(float64(dramPower) * d), Embodied: dramEmb})

	var ssdPower units.Watts
	var ssdEmb units.KgCO2e
	for _, g := range sku.SSDs {
		spec := m.Data.SSDPerTB
		if g.Reused {
			spec = m.Data.ReusedSSDPerTB
		}
		tb := g.TotalTB()
		ssdPower += units.Watts(float64(spec.TDP) * tb * (1 + spec.VRLoss))
		ssdEmb += units.KgCO2e(float64(spec.Embodied) * tb)
	}
	parts = append(parts, Part{Name: "ssd", Power: units.Watts(float64(ssdPower) * d), Embodied: ssdEmb})

	if sku.HasCXL() {
		cxl := m.Data.CXLSubsystem
		add("cxl", cxl.TDP, cxl.VRLoss, cxl.Embodied)
	}
	if sku.HasGPU() {
		var gpuPower units.Watts
		var gpuEmb units.KgCO2e
		for _, g := range sku.GPUs {
			spec, err := m.Data.GPU(g.Spec.Name)
			if err != nil {
				return Server{}, err
			}
			n := float64(g.Count)
			gpuPower += units.Watts(float64(spec.TDP) * n * (1 + spec.VRLoss))
			gpuEmb += units.KgCO2e(float64(spec.Embodied) * n)
		}
		parts = append(parts, Part{Name: "gpu", Power: units.Watts(float64(gpuPower) * d), Embodied: gpuEmb})
	}
	if base := m.Data.ServerBase; base.TDP > 0 || base.Embodied > 0 {
		add("base", base.TDP, base.VRLoss, base.Embodied)
	}

	var s Server
	s.SKU = sku
	s.Parts = parts
	for _, p := range parts {
		s.Power += p.Power
		s.Embodied += p.Embodied
	}
	CheckServer(m.checker(), s)
	return s, nil
}

// Rack is the rack-level output of the carbon model.
type Rack struct {
	Server           Server
	ServersPerRack   int          // N_s
	PowerConstrained bool         // true if N_s was limited by rack power, not space
	Power            units.Watts  // P_r
	Embodied         units.KgCO2e // E_emb,r
	Cores            int          // N_c,r
}

// Rack evaluates Eqs. 2–3 for one SKU.
func (m *Model) Rack(sku hw.SKU) (Rack, error) {
	srv, err := m.Server(sku)
	if err != nil {
		return Rack{}, err
	}
	spaceLimit := m.Data.RackSpaceU / sku.FormFactorU
	budget := float64(m.Data.RackPowerCap) - float64(m.Data.RackMisc.TDP)
	powerLimit := int(math.Floor(budget / float64(srv.Power)))
	if powerLimit < 0 {
		powerLimit = 0
	}
	r := Rack{Server: srv}
	if powerLimit < spaceLimit {
		r.ServersPerRack = powerLimit
		r.PowerConstrained = true
	} else {
		r.ServersPerRack = spaceLimit
	}
	n := float64(r.ServersPerRack)
	r.Power = units.Watts(n*float64(srv.Power) + float64(m.Data.RackMisc.TDP))
	r.Embodied = units.KgCO2e(n*float64(srv.Embodied) + float64(m.Data.RackMisc.Embodied))
	r.Cores = r.ServersPerRack * sku.Cores()
	CheckRack(m.checker(), m.Data, r)
	return r, nil
}

// Operational returns the rack's lifetime operational emissions at the
// given carbon intensity: E_op,r = L · CI · P_r.
func (m *Model) Operational(r Rack, ci units.CarbonIntensity) units.KgCO2e {
	return ci.Emissions(m.Data.Lifetime.Energy(r.Power))
}

// PerCore is the amortised lifetime emissions of one core, the common
// currency of GSF's adoption and cluster components.
type PerCore struct {
	SKU         string
	Operational units.KgCO2e
	Embodied    units.KgCO2e
}

// Total returns operational plus embodied per-core emissions.
func (p PerCore) Total() units.KgCO2e { return p.Operational + p.Embodied }

// PerCore computes rack-level CO2e-per-core at the given carbon
// intensity, the metric of Tables IV and VIII.
func (m *Model) PerCore(sku hw.SKU, ci units.CarbonIntensity) (PerCore, error) {
	r, err := m.Rack(sku)
	if err != nil {
		return PerCore{}, err
	}
	if r.Cores == 0 {
		return PerCore{}, fmt.Errorf("carbon: SKU %s fits zero servers per rack", sku.Name)
	}
	n := float64(r.Cores)
	pc := PerCore{
		SKU:         sku.Name,
		Operational: units.KgCO2e(float64(m.Operational(r, ci)) / n),
		Embodied:    units.KgCO2e(float64(r.Embodied) / n),
	}
	CheckPerCore(m.checker(), pc)
	return pc, nil
}

// PerCoreDC computes datacenter-level CO2e-per-core: rack-level plus
// amortised networking/storage/building overheads, with PUE applied to
// all operational power.
func (m *Model) PerCoreDC(sku hw.SKU, ci units.CarbonIntensity) (PerCore, error) {
	r, err := m.Rack(sku)
	if err != nil {
		return PerCore{}, err
	}
	if r.Cores == 0 {
		return PerCore{}, fmt.Errorf("carbon: SKU %s fits zero servers per rack", sku.Name)
	}
	n := float64(r.Cores)
	power := units.Watts((float64(r.Power) + float64(m.Data.DCPowerPerRack)) * m.Data.PUE)
	op := ci.Emissions(m.Data.Lifetime.Energy(power))
	emb := float64(r.Embodied) + float64(m.Data.DCEmbodiedPerRack)
	pc := PerCore{
		SKU:         sku.Name,
		Operational: units.KgCO2e(float64(op) / n),
		Embodied:    units.KgCO2e(emb / n),
	}
	CheckPerCore(m.checker(), pc)
	return pc, nil
}

// Savings is the relative per-core emission reduction of a candidate
// SKU versus a baseline, the format of Table IV/VIII rows.
type Savings struct {
	SKU         string
	Operational float64 // fraction, e.g. 0.16 for 16%
	Embodied    float64
	Total       float64
}

// SavingsVs computes per-core savings of sku relative to baseline at the
// given carbon intensity (rack level).
func (m *Model) SavingsVs(sku, baseline hw.SKU, ci units.CarbonIntensity) (Savings, error) {
	pc, err := m.PerCore(sku, ci)
	if err != nil {
		return Savings{}, err
	}
	base, err := m.PerCore(baseline, ci)
	if err != nil {
		return Savings{}, err
	}
	s := savingsOf(sku.Name, pc, base)
	CheckSavings(m.checker(), s, pc, base)
	return s, nil
}

func savingsOf(name string, pc, base PerCore) Savings {
	frac := func(b, g units.KgCO2e) float64 {
		if b == 0 {
			return 0
		}
		return 1 - float64(g)/float64(b)
	}
	return Savings{
		SKU:         name,
		Operational: frac(base.Operational, pc.Operational),
		Embodied:    frac(base.Embodied, pc.Embodied),
		Total:       frac(base.Total(), pc.Total()),
	}
}
