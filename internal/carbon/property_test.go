package carbon

import (
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// Metamorphic properties of the carbon model: E_op = L * CI * P_r is
// linear in both carbon intensity and lifetime, and embodied emissions
// depend on neither.

func TestOperationalLinearInCarbonIntensity(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	const ci = units.CarbonIntensity(0.11)
	for _, sku := range []hw.SKU{hw.BaselineGen3(), hw.GreenSKUCXL(), hw.GreenSKUFull()} {
		ref, err := m.PerCore(sku, ci)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []float64{0.5, 2, 3.5, 10} {
			got, err := m.PerCore(sku, units.CarbonIntensity(float64(ci)*alpha))
			if err != nil {
				t.Fatal(err)
			}
			if want := float64(ref.Operational) * alpha; !audit.Close(float64(got.Operational), want, 1e-12) {
				t.Errorf("%s: op(%g*CI) = %v, want exactly %g*op(CI) = %g",
					sku.Name, alpha, got.Operational, alpha, want)
			}
			if got.Embodied != ref.Embodied {
				t.Errorf("%s: embodied changed with CI: %v -> %v", sku.Name, ref.Embodied, got.Embodied)
			}
		}
	}
}

func TestLifetimeDoublingHalvesAmortisedEmbodied(t *testing.T) {
	d := carbondata.OpenSource()
	m := mustModel(t, d)
	d2 := d
	d2.Lifetime *= 2
	m2 := mustModel(t, d2)

	const ci = units.CarbonIntensity(0.11)
	for _, sku := range []hw.SKU{hw.BaselineGen3(), hw.GreenSKUCXL()} {
		pc, err := m.PerCore(sku, ci)
		if err != nil {
			t.Fatal(err)
		}
		pc2, err := m2.PerCore(sku, ci)
		if err != nil {
			t.Fatal(err)
		}
		// Twice the lifetime: twice the lifetime operational energy...
		if !audit.Close(float64(pc2.Operational), 2*float64(pc.Operational), 1e-12) {
			t.Errorf("%s: op at 2L = %v, want 2*%v", sku.Name, pc2.Operational, pc.Operational)
		}
		// ...the same lifetime embodied mass...
		if pc2.Embodied != pc.Embodied {
			t.Errorf("%s: embodied changed with lifetime: %v -> %v", sku.Name, pc.Embodied, pc2.Embodied)
		}
		// ...and therefore half the amortised (per-year) embodied rate.
		amort := float64(pc.Embodied) / d.Lifetime.YearsValue()
		amort2 := float64(pc2.Embodied) / d2.Lifetime.YearsValue()
		if !audit.Close(amort2, amort/2, 1e-12) {
			t.Errorf("%s: amortised embodied at 2L = %g/yr, want half of %g/yr", sku.Name, amort2, amort)
		}
	}
}

func TestSavingsInvariantUnderCIScalingOfBothSides(t *testing.T) {
	// Savings fractions are ratios of per-core emissions, so scaling CI
	// (which multiplies every operational term by the same alpha)
	// leaves the operational savings fraction unchanged.
	m := mustModel(t, carbondata.OpenSource())
	ref, err := m.SavingsVs(hw.GreenSKUCXL(), hw.BaselineGen3(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SavingsVs(hw.GreenSKUCXL(), hw.BaselineGen3(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Close(got.Operational, ref.Operational, 1e-12) {
		t.Errorf("operational savings moved with CI: %g -> %g", ref.Operational, got.Operational)
	}
	if !audit.Close(got.Embodied, ref.Embodied, 1e-12) {
		t.Errorf("embodied savings moved with CI: %g -> %g", ref.Embodied, got.Embodied)
	}
}
