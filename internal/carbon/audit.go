package carbon

import (
	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbondata"
)

// checker resolves the model's audit target: the explicit Audit field
// when set, otherwise the process default. Nil disables checking.
func (m *Model) checker() audit.Checker { return audit.Resolve(m.Audit) }

// CheckServer verifies the carbon-mass balance of a server evaluation:
// power and embodied emissions equal the sum of their parts to
// audit.CarbonTol, and every component contribution is non-negative.
func CheckServer(chk audit.Checker, s Server) {
	if chk == nil {
		return
	}
	var power, emb float64
	for _, p := range s.Parts {
		if p.Power < 0 || p.Embodied < 0 {
			audit.Failf(chk, "carbon", "negative-component",
				"SKU %s part %s: power=%v embodied=%v", s.SKU.Name, p.Name, p.Power, p.Embodied)
		}
		power += float64(p.Power)
		emb += float64(p.Embodied)
	}
	if !audit.Close(float64(s.Power), power, audit.CarbonTol) {
		audit.Failf(chk, "carbon", "part-sum",
			"SKU %s: server power %v != part sum %g", s.SKU.Name, s.Power, power)
	}
	if !audit.Close(float64(s.Embodied), emb, audit.CarbonTol) {
		audit.Failf(chk, "carbon", "part-sum",
			"SKU %s: server embodied %v != part sum %g", s.SKU.Name, s.Embodied, emb)
	}
}

// CheckRack verifies a rack evaluation follows Eqs. 2-3: rack power and
// embodied emissions derive from the server totals plus rack overhead,
// rack power respects the rack power cap, and the core count matches
// the server count.
func CheckRack(chk audit.Checker, d carbondata.Dataset, r Rack) {
	if chk == nil {
		return
	}
	if r.ServersPerRack < 0 {
		audit.Failf(chk, "carbon", "rack-consistency",
			"SKU %s: %d servers per rack", r.Server.SKU.Name, r.ServersPerRack)
		return
	}
	n := float64(r.ServersPerRack)
	if want := n*float64(r.Server.Power) + float64(d.RackMisc.TDP); !audit.Close(float64(r.Power), want, audit.CarbonTol) {
		audit.Failf(chk, "carbon", "rack-consistency",
			"SKU %s: rack power %v != Eq.2 value %g", r.Server.SKU.Name, r.Power, want)
	}
	if want := n*float64(r.Server.Embodied) + float64(d.RackMisc.Embodied); !audit.Close(float64(r.Embodied), want, audit.CarbonTol) {
		audit.Failf(chk, "carbon", "rack-consistency",
			"SKU %s: rack embodied %v != Eq.3 value %g", r.Server.SKU.Name, r.Embodied, want)
	}
	if r.ServersPerRack > 0 && float64(r.Power) > float64(d.RackPowerCap)*(1+audit.CarbonTol) {
		audit.Failf(chk, "carbon", "rack-power-cap",
			"SKU %s: rack power %v exceeds cap %v", r.Server.SKU.Name, r.Power, d.RackPowerCap)
	}
	if want := r.ServersPerRack * r.Server.SKU.Cores(); r.Cores != want {
		audit.Failf(chk, "carbon", "rack-consistency",
			"SKU %s: rack cores %d != %d servers x %d cores", r.Server.SKU.Name, r.Cores, r.ServersPerRack, r.Server.SKU.Cores())
	}
}

// CheckPerCore verifies per-core emissions are non-negative and that
// total = operational + embodied.
func CheckPerCore(chk audit.Checker, p PerCore) {
	if chk == nil {
		return
	}
	if p.Operational < 0 || p.Embodied < 0 {
		audit.Failf(chk, "carbon", "negative-component",
			"SKU %s: per-core operational=%v embodied=%v", p.SKU, p.Operational, p.Embodied)
	}
	if want := float64(p.Operational) + float64(p.Embodied); !audit.Close(float64(p.Total()), want, audit.CarbonTol) {
		audit.Failf(chk, "carbon", "part-sum",
			"SKU %s: per-core total %v != operational+embodied %g", p.SKU, p.Total(), want)
	}
}

// CheckSavings verifies a savings row is consistent with the per-core
// emissions it was derived from: each fraction equals 1 - green/base
// and never exceeds 1 (no SKU saves more carbon than the baseline
// emits).
func CheckSavings(chk audit.Checker, s Savings, pc, base PerCore) {
	if chk == nil {
		return
	}
	want := savingsOf(s.SKU, pc, base)
	if !audit.Close(s.Operational, want.Operational, audit.CarbonTol) ||
		!audit.Close(s.Embodied, want.Embodied, audit.CarbonTol) ||
		!audit.Close(s.Total, want.Total, audit.CarbonTol) {
		audit.Failf(chk, "carbon", "savings-consistency",
			"SKU %s: savings %+v inconsistent with per-core emissions (want %+v)", s.SKU, s, want)
	}
	if s.Operational > 1+audit.CarbonTol || s.Embodied > 1+audit.CarbonTol || s.Total > 1+audit.CarbonTol {
		audit.Failf(chk, "carbon", "savings-bound",
			"SKU %s: savings fraction above 1: %+v", s.SKU, s)
	}
}
