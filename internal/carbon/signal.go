package carbon

// Time-integrated operational emissions: the signal variants of the
// scalar-CI entry points. A server's lifetime energy is fixed by its
// power draw, so integrating CI(t) over the lifetime factors into the
// lifetime mean intensity times the lifetime energy — the effective CI.
// Every signal method therefore resolves the effective intensity once
// and delegates to its scalar counterpart; with a constant signal the
// effective CI IS the constant (gridci's fast path returns it
// bit-for-bit), so the signal path is byte-identical to the scalar one.

import (
	"fmt"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/gridci"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// EffectiveCI is the signal's time-averaged carbon intensity over one
// server lifetime starting at start (hours into the signal). It is the
// exact scalar substitute for the signal in every lifetime-integrated
// operational formula.
func (m *Model) EffectiveCI(sig *gridci.Signal, start units.Hours) (units.CarbonIntensity, error) {
	if err := sig.Validate(); err != nil {
		return 0, err
	}
	end := start + m.Data.Lifetime
	eff := sig.MeanCI(start, end)
	if chk := m.checker(); chk != nil {
		// CI-integration: a time average must sit inside the window's
		// range; anything else means the integrator lost carbon mass.
		st := sig.Stats(start, end)
		if float64(eff) < float64(st.Trough)-1e-9 || float64(eff) > float64(st.Peak)+1e-9 {
			audit.Failf(chk, "carbon", "ci-integration",
				"signal %s: effective CI %g outside window range [%g, %g]",
				sig.Name, float64(eff), float64(st.Trough), float64(st.Peak))
		}
	}
	return eff, nil
}

// OperationalSignal is Operational under a time-varying intensity:
// E_op,r = ∫ CI(t) · P_r dt over the lifetime from start.
func (m *Model) OperationalSignal(r Rack, sig *gridci.Signal, start units.Hours) (units.KgCO2e, error) {
	eff, err := m.EffectiveCI(sig, start)
	if err != nil {
		return 0, err
	}
	return m.Operational(r, eff), nil
}

// PerCoreSignal is PerCore under a time-varying intensity.
func (m *Model) PerCoreSignal(sku hw.SKU, sig *gridci.Signal, start units.Hours) (PerCore, error) {
	eff, err := m.EffectiveCI(sig, start)
	if err != nil {
		return PerCore{}, fmt.Errorf("carbon: SKU %s: %w", sku.Name, err)
	}
	return m.PerCore(sku, eff)
}

// PerCoreDCSignal is PerCoreDC under a time-varying intensity.
func (m *Model) PerCoreDCSignal(sku hw.SKU, sig *gridci.Signal, start units.Hours) (PerCore, error) {
	eff, err := m.EffectiveCI(sig, start)
	if err != nil {
		return PerCore{}, fmt.Errorf("carbon: SKU %s: %w", sku.Name, err)
	}
	return m.PerCoreDC(sku, eff)
}

// SavingsVsSignal is SavingsVs under a time-varying intensity: both
// sides see the same grid, so both use the same effective CI.
func (m *Model) SavingsVsSignal(sku, baseline hw.SKU, sig *gridci.Signal, start units.Hours) (Savings, error) {
	eff, err := m.EffectiveCI(sig, start)
	if err != nil {
		return Savings{}, err
	}
	return m.SavingsVs(sku, baseline, eff)
}
