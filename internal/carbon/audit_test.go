package carbon

import (
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

func TestAuditCleanEvaluations(t *testing.T) {
	rec := audit.NewRecorder()
	m := mustModel(t, carbondata.OpenSource())
	m.Audit = rec
	for _, sku := range []hw.SKU{hw.BaselineGen3(), hw.GreenSKUCXL()} {
		if _, err := m.Server(sku); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Rack(sku); err != nil {
			t.Fatal(err)
		}
		if _, err := m.PerCore(sku, 0.1); err != nil {
			t.Fatal(err)
		}
		if _, err := m.PerCoreDC(sku, 0.1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.SavingsVs(hw.GreenSKUCXL(), hw.BaselineGen3(), 0.1); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("clean carbon evaluations recorded violations: %v\n%v", err, rec.Violations())
	}
}

// TestAuditCatchesCorruptedResults feeds deliberately inconsistent
// structures to the Check functions and asserts each fires.
func TestAuditCatchesCorruptedResults(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())

	srv, err := m.Server(hw.BaselineGen3())
	if err != nil {
		t.Fatal(err)
	}
	rec := audit.NewRecorder()
	bad := srv
	bad.Power += 1 // breaks the part sum
	CheckServer(rec, bad)
	if rec.Counts()["carbon/part-sum"] == 0 {
		t.Errorf("corrupted server power not caught: %v", rec.Counts())
	}

	rec = audit.NewRecorder()
	bad = srv
	bad.Parts = append([]Part(nil), srv.Parts...)
	bad.Parts[0].Embodied = -5
	CheckServer(rec, bad)
	if rec.Counts()["carbon/negative-component"] == 0 {
		t.Errorf("negative component not caught: %v", rec.Counts())
	}

	r, err := m.Rack(hw.BaselineGen3())
	if err != nil {
		t.Fatal(err)
	}
	rec = audit.NewRecorder()
	badRack := r
	badRack.Cores++ // breaks servers x cores
	CheckRack(rec, m.Data, badRack)
	if rec.Counts()["carbon/rack-consistency"] == 0 {
		t.Errorf("corrupted rack cores not caught: %v", rec.Counts())
	}

	rec = audit.NewRecorder()
	CheckPerCore(rec, PerCore{SKU: "x", Operational: -1, Embodied: 2})
	if rec.Counts()["carbon/negative-component"] == 0 {
		t.Errorf("negative per-core not caught: %v", rec.Counts())
	}

	pc := PerCore{SKU: "g", Operational: 1, Embodied: 1}
	base := PerCore{SKU: "b", Operational: 2, Embodied: 2}
	rec = audit.NewRecorder()
	CheckSavings(rec, Savings{SKU: "g", Operational: 0.9, Embodied: 0.5, Total: 0.5}, pc, base)
	if rec.Counts()["carbon/savings-consistency"] == 0 {
		t.Errorf("inconsistent savings not caught: %v", rec.Counts())
	}

	rec = audit.NewRecorder()
	CheckSavings(rec, Savings{SKU: "g", Operational: 1.5, Embodied: 1.5, Total: 1.5},
		PerCore{SKU: "g", Operational: -1, Embodied: -1}, base)
	if rec.Counts()["carbon/savings-bound"] == 0 {
		t.Errorf("savings above 1 not caught: %v", rec.Counts())
	}
}

func TestCheckersNilSafe(t *testing.T) {
	// All Check functions must be no-ops on a nil checker.
	CheckServer(nil, Server{})
	CheckRack(nil, carbondata.Dataset{}, Rack{})
	CheckPerCore(nil, PerCore{})
	CheckSavings(nil, Savings{}, PerCore{}, PerCore{})
	_ = units.KgCO2e(0)
}
