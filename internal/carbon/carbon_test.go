package carbon

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

func mustModel(t *testing.T, d carbondata.Dataset) *Model {
	t.Helper()
	m, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWorkedExample reproduces §V's step-by-step GreenSKU-CXL example to
// the paper's printed precision.
func TestWorkedExample(t *testing.T) {
	m := mustModel(t, carbondata.WorkedExample())
	sku := hw.GreenSKUCXL()

	srv, err := m.Server(sku)
	if err != nil {
		t.Fatal(err)
	}
	// "a total E_emb,s of 1644 kgCO2e"
	if got := float64(srv.Embodied); math.Abs(got-1644) > 0.5 {
		t.Errorf("E_emb,s = %v, want 1644", got)
	}
	// "Eq. 1 results in P_s = 403 W"
	if got := float64(srv.Power); math.Abs(got-403.34) > 0.1 {
		t.Errorf("P_s = %v, want 403.3", got)
	}

	r, err := m.Rack(sku)
	if err != nil {
		t.Fatal(err)
	}
	// "the rack is space-constrained to N_s = 16 servers"
	if r.ServersPerRack != 16 || r.PowerConstrained {
		t.Errorf("N_s = %d (powerConstrained=%v), want 16 space-constrained",
			r.ServersPerRack, r.PowerConstrained)
	}
	// "E_emb,r = 16 * 1644 + 500 = 26,804 kgCO2e"
	if got := float64(r.Embodied); math.Abs(got-26804) > 8 {
		t.Errorf("E_emb,r = %v, want 26804", got)
	}
	// "P_r = 16 * 403 + 500 = 6953 W"
	if got := float64(r.Power); math.Abs(got-6953) > 2 {
		t.Errorf("P_r = %v, want 6953", got)
	}
	// "E_op,r = L * CI * P_r = 36,547 kgCO2e"
	op := float64(m.Operational(r, 0.1))
	if math.Abs(op-36547) > 10 {
		t.Errorf("E_op,r = %v, want 36547", op)
	}
	// "E_r = 63,351 kgCO2e"
	if total := op + float64(r.Embodied); math.Abs(total-63351) > 15 {
		t.Errorf("E_r = %v, want 63351", total)
	}
	// "N_c,r = 16 * 128 = 2048" and "31 kgCO2e per core"
	if r.Cores != 2048 {
		t.Errorf("N_c,r = %d, want 2048", r.Cores)
	}
	pc, err := m.PerCore(sku, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(pc.Total()); math.Abs(got-30.93) > 0.05 {
		t.Errorf("per-core = %v, want 30.9 (paper rounds to 31)", got)
	}
}

// TestWorkedExamplePowerLimit checks the power-constraint arithmetic:
// floor((15000-500)/403) = 35 would fit, so space (16) binds.
func TestWorkedExamplePowerLimit(t *testing.T) {
	m := mustModel(t, carbondata.WorkedExample())
	r, err := m.Rack(hw.GreenSKUCXL())
	if err != nil {
		t.Fatal(err)
	}
	budget := float64(m.Data.RackPowerCap) - float64(m.Data.RackMisc.TDP)
	powerLimit := int(budget / float64(r.Server.Power))
	if powerLimit != 35 {
		t.Errorf("power-limited servers per rack = %d, want 35", powerLimit)
	}
}

// TestTableVIII checks the open-data per-core savings against the
// paper's Table VIII within a tolerance that reflects our fitted
// fill-in values (Genoa CPU, server base hardware).
func TestTableVIII(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	base := hw.BaselineGen3()
	cases := []struct {
		sku          hw.SKU
		op, emb, tot float64 // paper percentages
		tol          float64 // percentage points
	}{
		{hw.BaselineResized(), 6, 10, 8, 3},
		{hw.GreenSKUEfficient(), 16, 14, 15, 5},
		{hw.GreenSKUCXL(), 15, 32, 24, 5},
		{hw.GreenSKUFull(), 14, 38, 26, 5},
	}
	for _, c := range cases {
		s, err := m.SavingsVs(c.sku, base, m.Data.DefaultCI)
		if err != nil {
			t.Fatal(err)
		}
		check := func(metric string, got, want, tol float64) {
			if math.Abs(got*100-want) > tol {
				t.Errorf("%s %s savings = %.1f%%, want %v%% ±%v", c.sku.Name, metric, got*100, want, tol)
			}
		}
		check("operational", s.Operational, c.op, c.tol)
		check("embodied", s.Embodied, c.emb, c.tol)
		check("total", s.Total, c.tot, c.tol)
	}
}

// TestTableVIIIOrdering asserts the qualitative structure of Table VIII,
// which must hold exactly: embodied savings grow with reuse, operational
// savings shrink with reuse, total savings grow monotonically.
func TestTableVIIIOrdering(t *testing.T) {
	for _, name := range []string{"open-source", "paper-calibrated"} {
		m := mustModel(t, carbondata.Datasets()[name])
		base := hw.BaselineGen3()
		get := func(sku hw.SKU) Savings {
			s, err := m.SavingsVs(sku, base, m.Data.DefaultCI)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		resized := get(hw.BaselineResized())
		eff := get(hw.GreenSKUEfficient())
		cxl := get(hw.GreenSKUCXL())
		full := get(hw.GreenSKUFull())

		if !(resized.Total < eff.Total && eff.Total < cxl.Total && cxl.Total < full.Total) {
			t.Errorf("%s: total savings not monotone: %v %v %v %v",
				name, resized.Total, eff.Total, cxl.Total, full.Total)
		}
		if !(eff.Embodied < cxl.Embodied && cxl.Embodied < full.Embodied) {
			t.Errorf("%s: embodied savings should grow with reuse: %v %v %v",
				name, eff.Embodied, cxl.Embodied, full.Embodied)
		}
		if !(eff.Operational > cxl.Operational && cxl.Operational > full.Operational) {
			t.Errorf("%s: operational savings should shrink with reuse: %v %v %v",
				name, eff.Operational, cxl.Operational, full.Operational)
		}
	}
}

// TestTableIV checks the paper-calibrated dataset against Table IV.
func TestTableIV(t *testing.T) {
	m := mustModel(t, carbondata.PaperCalibrated())
	base := hw.BaselineGen3()
	cases := []struct {
		sku          hw.SKU
		op, emb, tot float64
		tol          float64
	}{
		{hw.BaselineResized(), 3, 6, 4, 4},
		{hw.GreenSKUEfficient(), 29, 14, 23, 6},
		{hw.GreenSKUCXL(), 23, 25, 24, 6},
		{hw.GreenSKUFull(), 17, 43, 28, 6},
	}
	for _, c := range cases {
		s, err := m.SavingsVs(c.sku, base, m.Data.DefaultCI)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s.Operational*100-c.op) > c.tol ||
			math.Abs(s.Embodied*100-c.emb) > c.tol ||
			math.Abs(s.Total*100-c.tot) > c.tol {
			t.Errorf("%s savings = %.1f/%.1f/%.1f%%, want %v/%v/%v ±%v",
				c.sku.Name, s.Operational*100, s.Embodied*100, s.Total*100,
				c.op, c.emb, c.tot, c.tol)
		}
	}
}

func TestPerCoreDCExceedsRackLevel(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	sku := hw.BaselineGen3()
	rack, err := m.PerCore(sku, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	dc, err := m.PerCoreDC(sku, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Operational <= rack.Operational || dc.Embodied <= rack.Embodied {
		t.Errorf("DC per-core (%v) should exceed rack per-core (%v)", dc, rack)
	}
}

func TestZeroCarbonIntensity(t *testing.T) {
	// With CI = 0 all operational emissions vanish; savings become
	// purely embodied.
	m := mustModel(t, carbondata.OpenSource())
	s, err := m.SavingsVs(hw.GreenSKUFull(), hw.BaselineGen3(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Operational != 0 {
		t.Errorf("operational savings at CI=0 = %v, want 0 (no operational emissions)", s.Operational)
	}
	if math.Abs(s.Total-s.Embodied) > 1e-9 {
		t.Errorf("total (%v) should equal embodied (%v) at CI=0", s.Total, s.Embodied)
	}
}

func TestServerPartsSum(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	for _, sku := range hw.TableIVConfigs() {
		srv, err := m.Server(sku)
		if err != nil {
			t.Fatal(err)
		}
		var p units.Watts
		var e units.KgCO2e
		for _, part := range srv.Parts {
			p += part.Power
			e += part.Embodied
		}
		if math.Abs(float64(p-srv.Power)) > 1e-9 || math.Abs(float64(e-srv.Embodied)) > 1e-9 {
			t.Errorf("%s: parts do not sum to totals", sku.Name)
		}
	}
}

func TestReusedPartsHaveZeroEmbodied(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	cxl, err := m.Server(hw.GreenSKUCXL())
	if err != nil {
		t.Fatal(err)
	}
	eff, err := m.Server(hw.GreenSKUEfficient())
	if err != nil {
		t.Fatal(err)
	}
	// GreenSKU-CXL has 1024 GB total DRAM vs Efficient's 1152 GB, yet
	// lower DRAM embodied because 256 GB is second-life.
	dram := func(s Server) Part {
		for _, p := range s.Parts {
			if p.Name == "dram" {
				return p
			}
		}
		t.Fatal("no dram part")
		return Part{}
	}
	if dram(cxl).Embodied >= dram(eff).Embodied {
		t.Errorf("reused DRAM embodied (%v) should be below all-new (%v)",
			dram(cxl).Embodied, dram(eff).Embodied)
	}
}

func TestRackPowerConstrained(t *testing.T) {
	// Shrink the rack power cap until power, not space, binds.
	d := carbondata.OpenSource()
	d.RackPowerCap = 3000
	m := mustModel(t, d)
	r, err := m.Rack(hw.BaselineGen3())
	if err != nil {
		t.Fatal(err)
	}
	if !r.PowerConstrained {
		t.Fatalf("expected power-constrained rack, got %d servers space-constrained", r.ServersPerRack)
	}
	if r.ServersPerRack >= 16 {
		t.Fatalf("power cap should reduce servers below 16, got %d", r.ServersPerRack)
	}
}

func TestNewRejectsInvalidDataset(t *testing.T) {
	if _, err := New(carbondata.Dataset{}); err == nil {
		t.Fatal("New accepted an empty dataset")
	}
}

func TestUnknownCPU(t *testing.T) {
	m := mustModel(t, carbondata.WorkedExample())
	if _, err := m.Server(hw.BaselineGen3()); err == nil {
		t.Fatal("expected error for CPU missing from dataset")
	}
}
