package carbon

import (
	"testing"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
)

func BenchmarkPerCore(b *testing.B) {
	m, err := New(carbondata.OpenSource())
	if err != nil {
		b.Fatal(err)
	}
	sku := hw.GreenSKUFull()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.PerCore(sku, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSavingsAllConfigs(b *testing.B) {
	m, err := New(carbondata.OpenSource())
	if err != nil {
		b.Fatal(err)
	}
	base := hw.BaselineGen3()
	configs := hw.TableIVConfigs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, sku := range configs {
			if _, err := m.SavingsVs(sku, base, 0.1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkDataCenter(b *testing.B) {
	m, err := New(carbondata.OpenSource())
	if err != nil {
		b.Fatal(err)
	}
	p := DefaultDCParams(100, m.Overheads())
	sku := hw.GreenSKUCXL()
	for i := 0; i < b.N; i++ {
		if _, err := m.DataCenter(sku, p); err != nil {
			b.Fatal(err)
		}
	}
}
