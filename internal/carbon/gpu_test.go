package carbon

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
)

func gpuSKU(spec hw.GPUSpec, count int) hw.SKU {
	sku := hw.BaselineGen3()
	sku.Name = "gpu-test"
	sku.GPUs = []hw.GPUGroup{{Spec: spec, Count: count}}
	return sku
}

// TestServerGPUPart checks the accelerator contribution follows Eq. 1
// like every other component — accounting TDP derated and loss-adjusted
// per card — and that GPU-less SKUs are bit-identical to before the
// part existed.
func TestServerGPUPart(t *testing.T) {
	data := carbondata.OpenSource()
	m := mustModel(t, data)

	plain, err := m.Server(hw.BaselineGen3())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plain.Parts {
		if p.Name == "gpu" {
			t.Fatal("GPU-less SKU grew a gpu part")
		}
	}

	srv, err := m.Server(gpuSKU(hw.L4, 2))
	if err != nil {
		t.Fatal(err)
	}
	var gpu *Part
	for i := range srv.Parts {
		if srv.Parts[i].Name == "gpu" {
			gpu = &srv.Parts[i]
		}
	}
	if gpu == nil {
		t.Fatal("no gpu part on an accelerator-bearing SKU")
	}
	spec := data.GPUs["L4"]
	wantPower := float64(spec.TDP) * 2 * (1 + spec.VRLoss) * data.DerateFactor
	if math.Abs(float64(gpu.Power)-wantPower) > 1e-12 {
		t.Errorf("gpu power %v, want %v", gpu.Power, wantPower)
	}
	if want := float64(spec.Embodied) * 2; float64(gpu.Embodied) != want {
		t.Errorf("gpu embodied %v, want %v", gpu.Embodied, want)
	}
	if float64(srv.Power) <= float64(plain.Power) {
		t.Error("accelerators did not increase server power")
	}
}

// TestServerGPUMissingData: a GPU-bearing SKU against a dataset with no
// data for its card must error, not silently drop the part.
func TestServerGPUMissingData(t *testing.T) {
	m := mustModel(t, carbondata.WorkedExample())
	sku := gpuSKU(hw.A100, 2)
	sku.CPU = hw.Bergamo // worked-example only has Bergamo data
	if _, err := m.Server(sku); err == nil {
		t.Fatal("missing GPU carbon data did not error")
	}
}
