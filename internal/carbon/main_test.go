package carbon

import (
	"os"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// TestMain runs the package under a process-default audit.Recorder, so
// every model evaluation any test performs doubles as an invariant
// sweep of the carbon-balance checks.
func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }
