package carbon

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

func dcParams(m *Model, racks int) DCParams {
	return DefaultDCParams(racks, m.Overheads())
}

func TestDataCenterSpaceConstrained(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	p := dcParams(m, 100)
	dc, err := m.DataCenter(hw.GreenSKUCXL(), p)
	if err != nil {
		t.Fatal(err)
	}
	// 100 racks of 15 kW budget minus networking power leaves room
	// for fewer than 100 racks at ~7 kW each? No: budget is
	// 1.5 MW - 90 kW = 1.41 MW over ~7.17 kW racks = 196 racks, so
	// space (100) binds.
	if dc.PowerConstrained {
		t.Fatalf("expected space-constrained facility, got power-constrained at %d racks", dc.Racks)
	}
	if dc.Racks != 100 {
		t.Fatalf("racks = %d, want 100", dc.Racks)
	}
	if dc.Cores != 100*16*128 {
		t.Fatalf("cores = %d, want %d", dc.Cores, 100*16*128)
	}
}

func TestDataCenterPowerConstrained(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	p := dcParams(m, 100)
	p.PowerCap = 500000 // 0.5 MW facility
	dc, err := m.DataCenter(hw.GreenSKUCXL(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !dc.PowerConstrained {
		t.Fatal("expected power-constrained facility")
	}
	if dc.Racks >= 100 || dc.Racks <= 0 {
		t.Fatalf("racks = %d, want in (0, 100)", dc.Racks)
	}
}

func TestDataCenterPerCoreMatchesPerCoreDC(t *testing.T) {
	// The explicit facility model with DefaultDCParams must agree
	// with the amortised PerCoreDC shortcut when space binds (both
	// spread the same per-rack overheads).
	m := mustModel(t, carbondata.OpenSource())
	sku := hw.BaselineGen3()
	explicit, err := m.DataCenterPerCore(sku, dcParams(m, 100), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	shortcut, err := m.PerCoreDC(sku, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(explicit.Operational-shortcut.Operational)) > 0.01 {
		t.Errorf("operational per-core: explicit %v vs shortcut %v", explicit.Operational, shortcut.Operational)
	}
	if math.Abs(float64(explicit.Embodied-shortcut.Embodied)) > 0.01 {
		t.Errorf("embodied per-core: explicit %v vs shortcut %v", explicit.Embodied, shortcut.Embodied)
	}
}

func TestDataCenterPUEScalesOperationalOnly(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	p := dcParams(m, 50)
	base, err := m.DataCenter(hw.GreenSKUFull(), p)
	if err != nil {
		t.Fatal(err)
	}
	p.PUE = p.PUE * 1.2
	hot, err := m.DataCenter(hw.GreenSKUFull(), p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(hot.Power)/float64(base.Power)-1.2) > 1e-9 {
		t.Errorf("PUE should scale power linearly: %v vs %v", hot.Power, base.Power)
	}
	if hot.Embodied != base.Embodied {
		t.Error("PUE must not change embodied emissions")
	}
}

func TestDataCenterBuildingEmbodied(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	p := dcParams(m, 50)
	p.BuildingEmbodied = 1e6
	with, err := m.DataCenter(hw.BaselineGen3(), p)
	if err != nil {
		t.Fatal(err)
	}
	p.BuildingEmbodied = 0
	without, err := m.DataCenter(hw.BaselineGen3(), p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(with.Embodied-without.Embodied) != 1e6 {
		t.Errorf("building embodied not added: %v vs %v", with.Embodied, without.Embodied)
	}
}

func TestDataCenterGreenHoldsMoreCores(t *testing.T) {
	// The amortisation argument of §VI: in the same facility,
	// GreenSKU racks hold 60% more cores than baseline racks, so
	// fixed overheads spread thinner per core.
	m := mustModel(t, carbondata.OpenSource())
	p := dcParams(m, 80)
	green, err := m.DataCenter(hw.GreenSKUEfficient(), p)
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.DataCenter(hw.BaselineGen3(), p)
	if err != nil {
		t.Fatal(err)
	}
	if float64(green.Cores)/float64(base.Cores) != 1.6 {
		t.Fatalf("core ratio = %v, want 1.6 (128/80)", float64(green.Cores)/float64(base.Cores))
	}
}

func TestDataCenterValidation(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	if _, err := m.DataCenter(hw.BaselineGen3(), DCParams{SpaceRacks: 0, PowerCap: 1, PUE: 1.2}); err == nil {
		t.Error("accepted zero space")
	}
	if _, err := m.DataCenter(hw.BaselineGen3(), DCParams{SpaceRacks: 10, PowerCap: 1e6, PUE: 0.5}); err == nil {
		t.Error("accepted PUE < 1")
	}
	p := dcParams(m, 10)
	p.PowerCap = 1 // even networking power exceeds it
	dc, err := m.DataCenter(hw.BaselineGen3(), p)
	if err != nil {
		t.Fatal(err)
	}
	if dc.Racks != 0 {
		t.Errorf("racks = %d, want 0 when power is exhausted by overheads", dc.Racks)
	}
	if _, err := m.DataCenterPerCore(hw.BaselineGen3(), p, 0.1); err == nil {
		t.Error("per-core over zero racks should error")
	}
}

func TestPropertyDCPerCoreCIlinearity(t *testing.T) {
	// Operational per-core emissions are linear in carbon intensity.
	m := mustModel(t, carbondata.OpenSource())
	p := dcParams(m, 60)
	at := func(ci float64) PerCore {
		pc, err := m.DataCenterPerCore(hw.GreenSKUFull(), p, units.CarbonIntensity(ci))
		if err != nil {
			t.Fatal(err)
		}
		return pc
	}
	a, b, c := at(0.1), at(0.2), at(0.4)
	if math.Abs(float64(b.Operational)/float64(a.Operational)-2) > 1e-9 ||
		math.Abs(float64(c.Operational)/float64(a.Operational)-4) > 1e-9 {
		t.Error("operational per-core not linear in CI")
	}
	if a.Embodied != b.Embodied || b.Embodied != c.Embodied {
		t.Error("embodied per-core must not depend on CI")
	}
}
