package carbon

import (
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/gridci"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// Signal-path properties extending the metamorphic suite: a constant
// signal must be byte-identical to the scalar-CI entry points (the
// effective CI IS the constant, bit-for-bit), and the time-integrated
// operational term inherits the scalar path's linearity in intensity.

func TestConstantSignalBitIdenticalToScalar(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	const ci = units.CarbonIntensity(0.11)
	sig := gridci.Constant("flat", ci)
	for _, sku := range []hw.SKU{hw.BaselineGen3(), hw.GreenSKUCXL(), hw.GreenSKUFull()} {
		want, err := m.PerCore(sku, ci)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.PerCoreSignal(sku, sig, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: PerCoreSignal(const) = %+v, want exactly %+v", sku.Name, got, want)
		}
		// The start offset is irrelevant on a constant signal — same bits
		// at any phase.
		late, err := m.PerCoreSignal(sku, sig, 8760)
		if err != nil {
			t.Fatal(err)
		}
		if late != want {
			t.Errorf("%s: PerCoreSignal(const, late start) = %+v, want exactly %+v", sku.Name, late, want)
		}

		wantDC, err := m.PerCoreDC(sku, ci)
		if err != nil {
			t.Fatal(err)
		}
		gotDC, err := m.PerCoreDCSignal(sku, sig, 0)
		if err != nil {
			t.Fatal(err)
		}
		if gotDC != wantDC {
			t.Errorf("%s: PerCoreDCSignal(const) = %+v, want exactly %+v", sku.Name, gotDC, wantDC)
		}
	}
	wantS, err := m.SavingsVs(hw.GreenSKUCXL(), hw.BaselineGen3(), ci)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := m.SavingsVsSignal(hw.GreenSKUCXL(), hw.BaselineGen3(), sig, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gotS != wantS {
		t.Errorf("SavingsVsSignal(const) = %+v, want exactly %+v", gotS, wantS)
	}
}

func TestSignalOperationalLinearInScale(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	sig := gridci.Diurnal(gridci.DiurnalOptions{Name: "d", Mean: 0.11, Swing: 0.6})
	for _, sku := range []hw.SKU{hw.BaselineGen3(), hw.GreenSKUCXL()} {
		ref, err := m.PerCoreSignal(sku, sig, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, alpha := range []float64{0.5, 2, 3.5, 10} {
			got, err := m.PerCoreSignal(sku, sig.Scale(alpha), 0)
			if err != nil {
				t.Fatal(err)
			}
			if want := float64(ref.Operational) * alpha; !audit.Close(float64(got.Operational), want, 1e-12) {
				t.Errorf("%s: op(%g*signal) = %v, want %g", sku.Name, alpha, got.Operational, want)
			}
			if got.Embodied != ref.Embodied {
				t.Errorf("%s: embodied changed with signal scale: %v -> %v", sku.Name, ref.Embodied, got.Embodied)
			}
		}
	}
}

func TestEffectiveCIWithinSignalRange(t *testing.T) {
	m := mustModel(t, carbondata.OpenSource())
	for _, sig := range gridci.RegionSignals() {
		eff, err := m.EffectiveCI(sig, 0)
		if err != nil {
			t.Fatal(err)
		}
		st := sig.Stats(0, units.Hours(sig.Period))
		if float64(eff) < float64(st.Trough) || float64(eff) > float64(st.Peak) {
			t.Errorf("%s: effective CI %v outside [%v, %v]", sig.Name, eff, st.Trough, st.Peak)
		}
	}
	if _, err := m.EffectiveCI(&gridci.Signal{}, 0); err == nil {
		t.Error("EffectiveCI accepted an invalid signal")
	}
}
