package carbon

// Datacenter-level aggregation (§IV-A / §V): the rack model scales to a
// full datacenter with N_r racks bounded by space and power,
// networking/storage overheads (X for power, Y for embodied), non-IT
// building embodied (Z), and PUE on all operational power:
//
//	P_DC      = (N_r · P_r + X) · PUE
//	E_emb,DC  = N_r · E_emb,r + Y + Z
//	N_c,DC    = N_c,s · N_s · N_r
//	CO2e/core = (E_op,DC + E_emb,DC) / N_c,DC

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// DCParams bounds and loads the datacenter model.
type DCParams struct {
	// SpaceRacks is the compute-rack capacity of the building.
	SpaceRacks int
	// PowerCap is the facility power available to compute racks
	// (before PUE overhead).
	PowerCap units.Watts
	// NetworkStoragePower is X: power drawn by networking and storage
	// infrastructure.
	NetworkStoragePower units.Watts
	// NetworkStorageEmbodied is Y.
	NetworkStorageEmbodied units.KgCO2e
	// BuildingEmbodied is Z: non-IT embodied emissions.
	BuildingEmbodied units.KgCO2e
	// PUE multiplies all operational power.
	PUE float64
}

// DefaultDCParams returns a mid-size datacenter hall consistent with
// the dataset-level overheads used by PerCoreDC: 100 compute racks of
// 15 kW each, with networking/storage and building overheads amortised
// at the dataset's per-rack values.
func DefaultDCParams(racks int, data DCOverheads) DCParams {
	n := float64(racks)
	return DCParams{
		SpaceRacks:             racks,
		PowerCap:               units.Watts(n * 15000),
		NetworkStoragePower:    units.Watts(n * float64(data.PowerPerRack)),
		NetworkStorageEmbodied: units.KgCO2e(n * float64(data.EmbodiedPerRack)),
		BuildingEmbodied:       0,
		PUE:                    data.PUE,
	}
}

// DCOverheads carries the dataset's amortised overhead values.
type DCOverheads struct {
	PowerPerRack    units.Watts
	EmbodiedPerRack units.KgCO2e
	PUE             float64
}

// Overheads extracts the dataset's DC overheads.
func (m *Model) Overheads() DCOverheads {
	return DCOverheads{
		PowerPerRack:    m.Data.DCPowerPerRack,
		EmbodiedPerRack: m.Data.DCEmbodiedPerRack,
		PUE:             m.Data.PUE,
	}
}

// DataCenter is the datacenter-level output.
type DataCenter struct {
	Rack             Rack
	Racks            int          // N_r
	PowerConstrained bool         // racks limited by facility power, not space
	Power            units.Watts  // P_DC (PUE applied)
	Embodied         units.KgCO2e // E_emb,DC
	Cores            int          // N_c,DC
}

// DataCenter fills a facility with racks of the given SKU, mirroring
// the rack-level min(space, power) rule one level up.
func (m *Model) DataCenter(sku hw.SKU, p DCParams) (DataCenter, error) {
	if p.SpaceRacks <= 0 || p.PowerCap <= 0 {
		return DataCenter{}, fmt.Errorf("carbon: datacenter needs positive space and power")
	}
	if p.PUE < 1 {
		return DataCenter{}, fmt.Errorf("carbon: PUE %v below 1", p.PUE)
	}
	r, err := m.Rack(sku)
	if err != nil {
		return DataCenter{}, err
	}
	dc := DataCenter{Rack: r}
	budget := float64(p.PowerCap) - float64(p.NetworkStoragePower)
	if budget < 0 {
		budget = 0
	}
	powerLimit := int(math.Floor(budget / float64(r.Power)))
	if powerLimit < p.SpaceRacks {
		dc.Racks = powerLimit
		dc.PowerConstrained = true
	} else {
		dc.Racks = p.SpaceRacks
	}
	n := float64(dc.Racks)
	dc.Power = units.Watts((n*float64(r.Power) + float64(p.NetworkStoragePower)) * p.PUE)
	dc.Embodied = units.KgCO2e(n*float64(r.Embodied)) + p.NetworkStorageEmbodied + p.BuildingEmbodied
	dc.Cores = dc.Racks * r.Cores
	return dc, nil
}

// DataCenterPerCore computes the paper's final output — datacenter
// emissions amortised per core — from the explicit facility model.
func (m *Model) DataCenterPerCore(sku hw.SKU, p DCParams, ci units.CarbonIntensity) (PerCore, error) {
	dc, err := m.DataCenter(sku, p)
	if err != nil {
		return PerCore{}, err
	}
	if dc.Cores == 0 {
		return PerCore{}, fmt.Errorf("carbon: datacenter fits zero racks of %s", sku.Name)
	}
	op := ci.Emissions(m.Data.Lifetime.Energy(dc.Power))
	n := float64(dc.Cores)
	return PerCore{
		SKU:         sku.Name,
		Operational: units.KgCO2e(float64(op) / n),
		Embodied:    units.KgCO2e(float64(dc.Embodied) / n),
	}, nil
}
