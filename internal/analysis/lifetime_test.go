package analysis

import (
	"testing"

	"github.com/greensku/gsf/internal/hw"
)

func TestLifetimeExtensionLowCI(t *testing.T) {
	// At a nearly carbon-free grid, keeping the old server running is
	// almost free (embodied is sunk, operations are clean): extension
	// wins.
	st, err := EvaluateLifetimeExtension("open-source", 1, 6, hw.GreenSKUFull(), 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if st.ReplaceWins {
		t.Fatalf("at CI 0.005 extension should win: extend %v vs replace %v",
			st.Extend.PerCoreYear, st.Replace.PerCoreYear)
	}
}

func TestLifetimeExtensionHighCI(t *testing.T) {
	// On a dirty grid the old Rome server's poor per-delivered-core
	// efficiency dominates: replacement wins (§VII: "older servers
	// tend to have higher per-core operational emissions").
	st, err := EvaluateLifetimeExtension("open-source", 1, 6, hw.GreenSKUFull(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ReplaceWins {
		t.Fatalf("at CI 0.7 replacement should win: extend %v vs replace %v",
			st.Extend.PerCoreYear, st.Replace.PerCoreYear)
	}
}

func TestBreakEvenOrdersTheRegimes(t *testing.T) {
	st, err := EvaluateLifetimeExtension("open-source", 1, 6, hw.GreenSKUFull(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if st.BreakEvenCI <= 0.005 || st.BreakEvenCI >= 0.7 {
		t.Fatalf("break-even CI = %v, want between the two test regimes", st.BreakEvenCI)
	}
	// The decision at CI 0.1 must agree with the break-even point.
	if st.ReplaceWins != (0.1 > float64(st.BreakEvenCI)) {
		t.Fatalf("decision at CI 0.1 (replace=%v) disagrees with break-even %v",
			st.ReplaceWins, st.BreakEvenCI)
	}
}

func TestNewerGenerationsExtendBetter(t *testing.T) {
	// A Milan server delivers more per watt than Rome: extending it is
	// cheaper per delivered core-year.
	gen1, err := EvaluateLifetimeExtension("open-source", 1, 6, hw.GreenSKUFull(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := EvaluateLifetimeExtension("open-source", 2, 6, hw.GreenSKUFull(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if gen2.Extend.PerCoreYear >= gen1.Extend.PerCoreYear {
		t.Fatalf("Gen2 extension (%v) should beat Gen1 (%v)",
			gen2.Extend.PerCoreYear, gen1.Extend.PerCoreYear)
	}
}

func TestAgingRaisesExtensionCost(t *testing.T) {
	// Very old servers (past the DDR4 wear-out onset) lose more
	// capacity to repairs; per-core-year emissions must not fall with
	// age.
	young, err := EvaluateLifetimeExtension("open-source", 1, 2, hw.GreenSKUFull(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	old, err := EvaluateLifetimeExtension("open-source", 1, 16, hw.GreenSKUFull(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if old.Extend.PerCoreYear < young.Extend.PerCoreYear {
		t.Fatalf("aging should not reduce extension cost: age16 %v vs age2 %v",
			old.Extend.PerCoreYear, young.Extend.PerCoreYear)
	}
	if old.Extend.OOSFraction <= 0 {
		t.Fatal("out-of-service fraction missing")
	}
}

func TestLifetimeValidation(t *testing.T) {
	if _, err := EvaluateLifetimeExtension("nope", 1, 6, hw.GreenSKUFull(), 0.1); err == nil {
		t.Error("accepted unknown dataset")
	}
	if _, err := EvaluateLifetimeExtension("open-source", 1, -1, hw.GreenSKUFull(), 0.1); err == nil {
		t.Error("accepted negative age")
	}
}
