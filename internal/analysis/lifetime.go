package analysis

// Lifetime-extension evaluation (§VII-B): GSF can weigh extending a
// deployed server's life — zero marginal embodied emissions, but old
// hardware's higher per-core operational cost and rising failure rates
// — against retiring it for a GreenSKU whose embodied cost amortises
// over a fresh deployment. "Older servers also tend to have higher
// per-core operational emissions relative to newer hardware."

import (
	"fmt"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/failure"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// LifetimeOption is one side of the extend-vs-replace comparison,
// expressed per delivered Gen3-equivalent core-year (old cores deliver
// less work per core, so emissions are normalised by per-core
// performance).
type LifetimeOption struct {
	Name string
	// PerCoreYear is kgCO2e per Gen3-equivalent core-year.
	PerCoreYear units.KgCO2e
	// OOSFraction is capacity lost to servers awaiting repair.
	OOSFraction float64
}

// LifetimeStudy compares extending an old baseline generation against
// replacing it with a GreenSKU.
type LifetimeStudy struct {
	Extend  LifetimeOption
	Replace LifetimeOption
	// ReplaceWins reports whether retirement and replacement emits
	// less per delivered core-year.
	ReplaceWins bool
	// BreakEvenCI is the carbon intensity at which the two options
	// tie (found by bisection); below it extension wins.
	BreakEvenCI units.CarbonIntensity
}

// EvaluateLifetimeExtension compares keeping a gen-`gen` baseline for
// extra years (starting at age `ageYears`) versus deploying a GreenSKU,
// at the given carbon intensity.
func EvaluateLifetimeExtension(dataset string, gen int, ageYears float64, green hw.SKU, ci units.CarbonIntensity) (LifetimeStudy, error) {
	var st LifetimeStudy
	d, ok := carbondata.Datasets()[dataset]
	if !ok {
		return st, fmt.Errorf("analysis: unknown dataset %q", dataset)
	}
	if ageYears < 0 {
		return st, fmt.Errorf("analysis: negative server age")
	}
	m, err := carbon.New(d)
	if err != nil {
		return st, err
	}
	if ci == 0 {
		ci = d.DefaultCI
	}
	old := hw.BaselineForGeneration(gen)

	ext, err := extensionOption(m, old, ageYears, ci)
	if err != nil {
		return st, err
	}
	st.Extend = ext
	rep, err := replacementOption(m, green, ci)
	if err != nil {
		return st, err
	}
	st.Replace = rep
	st.ReplaceWins = st.Replace.PerCoreYear < st.Extend.PerCoreYear

	// Bisect the break-even carbon intensity on [0, 2]: extension's
	// cost is almost purely operational, so it wins at low CI and
	// loses as CI grows.
	lo, hi := units.CarbonIntensity(0), units.CarbonIntensity(2)
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		e, err := extensionOption(m, old, ageYears, mid)
		if err != nil {
			return st, err
		}
		r, err := replacementOption(m, green, mid)
		if err != nil {
			return st, err
		}
		if e.PerCoreYear < r.PerCoreYear {
			lo = mid
		} else {
			hi = mid
		}
	}
	st.BreakEvenCI = (lo + hi) / 2
	return st, nil
}

// extensionOption: operational emissions only (embodied is sunk), with
// delivered capacity discounted by old per-core performance and the
// out-of-service fraction from aging failure rates.
func extensionOption(m *carbon.Model, old hw.SKU, ageYears float64, ci units.CarbonIntensity) (LifetimeOption, error) {
	srv, err := m.Server(old)
	if err != nil {
		return LifetimeOption{}, err
	}
	opPerYear := ci.Emissions(units.Years(1).Energy(srv.Power))
	// Aging: normalised AFR at the server's age scales the baseline
	// ~4.8%/year failure rate; two-week repairs take capacity out of
	// service.
	afrScale := failure.DDR4().At(ageYears * 12)
	oos := 0.048 * afrScale * (336.0 / float64(units.HoursPerYear))
	delivered := float64(old.Cores()) * old.CPU.CPUScore * (1 - oos)
	return LifetimeOption{
		Name:        fmt.Sprintf("extend %s at age %.0fy", old.Name, ageYears),
		PerCoreYear: units.KgCO2e(float64(opPerYear) / delivered),
		OOSFraction: oos,
	}, nil
}

// replacementOption: fresh GreenSKU, embodied amortised over its
// lifetime, full performance, nominal failure rates.
func replacementOption(m *carbon.Model, green hw.SKU, ci units.CarbonIntensity) (LifetimeOption, error) {
	srv, err := m.Server(green)
	if err != nil {
		return LifetimeOption{}, err
	}
	opPerYear := float64(ci.Emissions(units.Years(1).Energy(srv.Power)))
	embPerYear := float64(srv.Embodied) / m.Data.Lifetime.YearsValue()
	oos := 0.036 * (336.0 / float64(units.HoursPerYear))
	delivered := float64(green.Cores()) * green.CPU.CPUScore * (1 - oos)
	return LifetimeOption{
		Name:        "replace with " + green.Name,
		PerCoreYear: units.KgCO2e((opPerYear + embPerYear) / delivered),
		OOSFraction: oos,
	}, nil
}
