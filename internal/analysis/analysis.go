// Package analysis implements §VII's comparisons between GreenSKU
// deployment and alternative carbon-reduction strategies: buying more
// renewable energy, improving server energy efficiency uniformly, and
// extending server lifetimes. Each function solves for the investment
// the alternative strategy needs to match a given GreenSKU saving.
//
// It also demonstrates §VII-A's TCO analysis by swapping the carbon
// model's dataset for a cost dataset — the model's aggregation
// machinery is unit-agnostic, so dollars flow through the same
// equations as kgCO2e.
package analysis

import (
	"fmt"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/units"
)

// RenewableIncreaseFor returns the increase in a datacenter's renewable
// energy fraction needed to cut total emissions by target, under
// purchase-matching accounting (renewable-covered energy counts as
// zero-carbon): operational emissions scale with (1 - renewableFrac).
//
// With the paper's operating point — high current renewable coverage
// and operational emissions at ~58% of the total — matching
// GreenSKU-Full's 8% datacenter-wide savings requires ~2.6 percentage
// points of additional renewables.
func RenewableIncreaseFor(target, opShare, currentRenewableFrac float64) (float64, error) {
	if target < 0 || target >= 1 {
		return 0, fmt.Errorf("analysis: target %v out of [0,1)", target)
	}
	if opShare <= 0 || opShare > 1 {
		return 0, fmt.Errorf("analysis: operational share %v out of (0,1]", opShare)
	}
	if currentRenewableFrac < 0 || currentRenewableFrac >= 1 {
		return 0, fmt.Errorf("analysis: renewable fraction %v out of [0,1)", currentRenewableFrac)
	}
	// target = opShare * delta/(1-rf)  =>  delta = target*(1-rf)/opShare.
	delta := target * (1 - currentRenewableFrac) / opShare
	if currentRenewableFrac+delta > 1 {
		return 0, fmt.Errorf("analysis: target %v unreachable with renewables alone", target)
	}
	return delta, nil
}

// EfficiencyGainFor returns the uniform energy-efficiency improvement
// (as a fraction: 0.28 means "28% more energy efficient", i.e. power
// scales by 1/1.28) that all server components need to cut total
// datacenter emissions by target, assuming the improvement is free of
// embodied cost (§VII's optimistic assumptions).
//
// computeOpShare is compute servers' operational emissions as a share
// of total datacenter emissions.
func EfficiencyGainFor(target, computeOpShare float64) (float64, error) {
	if target < 0 || target >= computeOpShare {
		return 0, fmt.Errorf("analysis: target %v unreachable via efficiency (compute op share %v)",
			target, computeOpShare)
	}
	if computeOpShare <= 0 || computeOpShare > 1 {
		return 0, fmt.Errorf("analysis: compute op share %v out of (0,1]", computeOpShare)
	}
	// target = computeOpShare * (1 - 1/f)  =>  f = 1/(1 - target/share).
	f := 1 / (1 - target/computeOpShare)
	return f - 1, nil
}

// LifetimeExtensionFor returns the server lifetime needed to match a
// per-core carbon saving of target by amortising embodied emissions
// over more years, assuming operational emissions per year stay
// constant (§VII's simplifying assumption). opShare is the operational
// share of a server's lifetime per-core emissions at the current
// lifetime.
//
// With the paper's numbers (28% per-core savings, roughly half of
// emissions operational), 6 years stretch to ~13.
func LifetimeExtensionFor(target, opShare float64, current units.Hours) (units.Hours, error) {
	if opShare <= 0 || opShare >= 1 {
		return 0, fmt.Errorf("analysis: operational share %v out of (0,1)", opShare)
	}
	embShare := 1 - opShare
	if target < 0 || target >= embShare {
		return 0, fmt.Errorf("analysis: target %v unreachable by lifetime extension (embodied share %v)",
			target, embShare)
	}
	// Annualised: op + emb*L/L'. Savings = embShare*(1 - L/L') = target.
	ratio := 1 - target/embShare
	return units.Hours(float64(current) / ratio), nil
}

// TCODataset returns a cost dataset in the shape of a carbon dataset:
// "Embodied" fields carry component capital cost in dollars and the
// carbon intensity carries the electricity price in $/kWh, so
// carbon.Model computes dollars-per-core instead of kgCO2e-per-core
// (§VII-A: "GSF can be adapted to analyze TCO by replacing the carbon
// model with a TCO model").
//
// fitted: prices are representative list prices chosen so that the
// cost-optimal conventional SKU lands ~5% below the carbon-efficient
// GreenSKU in TCO, the gap the paper reports.
func TCODataset() carbondata.Dataset {
	d := carbondata.OpenSource()
	d.Name = "tco-dollars"
	d.CPUs = map[string]carbondata.Component{
		"Bergamo": {TDP: 400, Embodied: 11000, VRLoss: 0.05},
		"Genoa":   {TDP: 320, Embodied: 9100, VRLoss: 0.05},
		"Milan":   {TDP: 280, Embodied: 5500, VRLoss: 0.05},
		"Rome":    {TDP: 240, Embodied: 3600, VRLoss: 0.05},
	}
	d.DRAMPerGB = carbondata.Component{TDP: 0.37, Embodied: 3.1}
	// Reused parts are not free in TCO terms: requalification,
	// testing, adapters, and handling dominate, which is why the
	// cost-optimal SKU avoids reuse even though the carbon-optimal
	// one embraces it.
	d.ReusedDRAMPerGB = carbondata.Component{TDP: 0.583, Embodied: 4}
	d.SSDPerTB = carbondata.Component{TDP: 5.6, Embodied: 95}
	d.ReusedSSDPerTB = carbondata.Component{TDP: 7, Embodied: 80}
	d.CXLSubsystem = carbondata.Component{TDP: 5.8, Embodied: 1400}
	d.ServerBase = carbondata.Component{TDP: 30, Embodied: 2600}
	d.RackMisc = carbondata.Component{TDP: 500, Embodied: 3000}
	// Electricity at $0.08/kWh plays the role of carbon intensity.
	d.DefaultCI = 0.08
	return d
}
