package analysis

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// TestRenewableIncreasePaperValue reproduces §VII: matching
// GreenSKU-Full's ~8% datacenter-wide savings at Azure's operating
// point requires a ~2.6 percentage-point increase in renewables.
func TestRenewableIncreasePaperValue(t *testing.T) {
	got, err := RenewableIncreaseFor(0.08, 0.58, 0.81)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.026) > 0.002 {
		t.Fatalf("renewable increase = %.4f, want ~0.026 (paper: 2.6%%)", got)
	}
}

// TestEfficiencyGainPaperValue reproduces §VII: all server components
// must become ~28% more energy efficient to match GreenSKU-Full.
func TestEfficiencyGainPaperValue(t *testing.T) {
	// Compute operational emissions are ~37% of the datacenter total
	// (58% op share x ~57% compute x compute's op weight).
	got, err := EfficiencyGainFor(0.08, 0.37)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.28) > 0.02 {
		t.Fatalf("efficiency gain = %.3f, want ~0.28 (paper: 28%%)", got)
	}
}

// TestLifetimeExtensionPaperValue reproduces §VII: matching
// GreenSKU-Full's 28% per-core savings requires extending server
// lifetime from 6 to ~13 years.
func TestLifetimeExtensionPaperValue(t *testing.T) {
	got, err := LifetimeExtensionFor(0.28, 0.475, units.Years(6))
	if err != nil {
		t.Fatal(err)
	}
	years := got.YearsValue()
	if math.Abs(years-13) > 0.5 {
		t.Fatalf("lifetime = %.1f years, want ~13 (paper: 6 -> 13)", years)
	}
}

func TestRenewableInverse(t *testing.T) {
	// Applying the solved increase reproduces the target saving.
	const op, rf = 0.6, 0.5
	delta, err := RenewableIncreaseFor(0.1, op, rf)
	if err != nil {
		t.Fatal(err)
	}
	saving := op * delta / (1 - rf)
	if math.Abs(saving-0.1) > 1e-12 {
		t.Fatalf("round trip saving = %v, want 0.1", saving)
	}
}

func TestEfficiencyInverse(t *testing.T) {
	gain, err := EfficiencyGainFor(0.1, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	saving := 0.4 * (1 - 1/(1+gain))
	if math.Abs(saving-0.1) > 1e-12 {
		t.Fatalf("round trip saving = %v, want 0.1", saving)
	}
}

func TestLifetimeInverse(t *testing.T) {
	lt, err := LifetimeExtensionFor(0.2, 0.5, units.Years(6))
	if err != nil {
		t.Fatal(err)
	}
	// Annualised savings: embShare*(1 - L/L').
	saving := 0.5 * (1 - float64(units.Years(6))/float64(lt))
	if math.Abs(saving-0.2) > 1e-12 {
		t.Fatalf("round trip saving = %v, want 0.2", saving)
	}
}

func TestUnreachableTargets(t *testing.T) {
	if _, err := RenewableIncreaseFor(0.6, 0.5, 0.9); err == nil {
		t.Error("renewables: accepted unreachable target")
	}
	if _, err := EfficiencyGainFor(0.5, 0.4); err == nil {
		t.Error("efficiency: accepted target above compute op share")
	}
	if _, err := LifetimeExtensionFor(0.6, 0.5, units.Years(6)); err == nil {
		t.Error("lifetime: accepted target above embodied share")
	}
	if _, err := RenewableIncreaseFor(-0.1, 0.5, 0.5); err == nil {
		t.Error("renewables: accepted negative target")
	}
}

// TestTCOGap reproduces §VII-A's headline: the cost-efficient
// conventional SKU is only ~5% cheaper per core than the
// carbon-efficient GreenSKU.
func TestTCOGap(t *testing.T) {
	m, err := carbon.New(TCODataset())
	if err != nil {
		t.Fatal(err)
	}
	// The cost-efficient SKU is the cheapest per-core configuration
	// in the design space (the all-new Bergamo SKU: reuse carries
	// requalification and adapter costs that new parts do not).
	costOpt := math.Inf(1)
	var costOptName string
	for _, sku := range hw.TableIVConfigs() {
		pc, err := m.PerCore(sku, m.Data.DefaultCI)
		if err != nil {
			t.Fatal(err)
		}
		if float64(pc.Total()) < costOpt {
			costOpt = float64(pc.Total())
			costOptName = sku.Name
		}
	}
	greenTCO, err := m.PerCore(hw.GreenSKUFull(), m.Data.DefaultCI)
	if err != nil {
		t.Fatal(err)
	}
	gap := float64(greenTCO.Total())/costOpt - 1
	if costOptName == hw.GreenSKUFull().Name {
		t.Fatal("GreenSKU-Full should not be the cost-optimal SKU")
	}
	if math.Abs(gap-0.05) > 0.03 {
		t.Fatalf("TCO gap = %.3f (cost-opt %s), want ~0.05 (paper: 5%%)", gap, costOptName)
	}
}

func TestTCODatasetValid(t *testing.T) {
	if err := TCODataset().Validate(); err != nil {
		t.Fatal(err)
	}
}
