package audit

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	if r.Count() != 0 || r.Err() != nil {
		t.Fatalf("fresh recorder: count=%d err=%v", r.Count(), r.Err())
	}
	Failf(r, "alloc", "core-conservation", "node %d free=%g", 3, -0.5)
	Failf(r, "alloc", "core-conservation", "node %d free=%g", 4, -1.5)
	Failf(r, "carbon", "part-sum", "power off by %g", 1.0)
	if r.Count() != 3 {
		t.Fatalf("count = %d, want 3", r.Count())
	}
	counts := r.Counts()
	if counts["alloc/core-conservation"] != 2 || counts["carbon/part-sum"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	vs := r.Violations()
	if len(vs) != 3 {
		t.Fatalf("violations = %d, want 3", len(vs))
	}
	if vs[0].Component != "alloc" || vs[0].Invariant != "core-conservation" ||
		!strings.Contains(vs[0].Detail, "node 3") {
		t.Fatalf("first violation = %+v", vs[0])
	}
	if got := vs[0].String(); !strings.HasPrefix(got, "alloc/core-conservation: ") {
		t.Fatalf("String() = %q", got)
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "3 invariant violation") {
		t.Fatalf("Err() = %v", err)
	}
	r.Reset()
	if r.Count() != 0 || len(r.Violations()) != 0 || len(r.Counts()) != 0 {
		t.Fatalf("reset recorder not empty: %d %v", r.Count(), r.Counts())
	}
}

func TestRecorderKeepBound(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < DefaultKeep+50; i++ {
		Failf(r, "c", "i", "violation %d", i)
	}
	if n := r.Count(); n != int64(DefaultKeep+50) {
		t.Fatalf("count = %d, want %d", n, DefaultKeep+50)
	}
	if got := len(r.Violations()); got != DefaultKeep {
		t.Fatalf("retained %d records, want %d", got, DefaultKeep)
	}
}

func TestCheckf(t *testing.T) {
	r := NewRecorder()
	Checkf(r, true, "c", "i", "should not record")
	if r.Count() != 0 {
		t.Fatal("Checkf recorded on a true condition")
	}
	Checkf(r, false, "c", "i", "recorded")
	if r.Count() != 1 {
		t.Fatal("Checkf did not record on a false condition")
	}
}

func TestNilCheckerIsNoOp(t *testing.T) {
	// Must not panic.
	Failf(nil, "c", "i", "x")
	Checkf(nil, false, "c", "i", "x")
}

func TestClose(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 1e-9, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1.001, 1e-9, false},
		{0, 1e-10, 1e-9, true},        // absolute near zero
		{1e12, 1e12 + 1, 1e-9, true},  // relative for large magnitudes
		{1e12, 1e12 + 1e5, 1e-9, false},
		{math.NaN(), 1, 1e-3, false},
		{math.Inf(1), math.Inf(1), 1e-3, false},
	}
	for _, c := range cases {
		if got := Close(c.a, c.b, c.tol); got != c.want {
			t.Errorf("Close(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestDefaultAndResolve(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	SetDefault(nil)
	if Resolve(nil) != nil {
		t.Fatal("Resolve(nil) with no default should be nil")
	}
	r := NewRecorder()
	SetDefault(r)
	if Resolve(nil) != Checker(r) {
		t.Fatal("Resolve(nil) should return the default")
	}
	other := NewRecorder()
	if Resolve(other) != Checker(other) {
		t.Fatal("Resolve(c) should prefer the explicit checker")
	}
}

// TestRecorderConcurrent exercises Record/Count/Counts/Violations from
// many goroutines; run under -race it proves the Recorder is safe to
// share across the evaluation engine's workers.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	const writers, perWriter = 8, 200
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				Failf(r, "c", fmt.Sprintf("inv-%d", w%2), "v %d", i)
				if i%32 == 0 {
					r.Count()
					r.Counts()
					r.Violations()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Count(); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
}

func TestSweepMainFailsOnViolations(t *testing.T) {
	old := Default()
	defer SetDefault(old)

	// A clean run passes through the inner code.
	if code := SweepMain(runFunc(func() int { return 0 })); code != 0 {
		t.Fatalf("clean SweepMain = %d, want 0", code)
	}
	// A run that records a violation fails even when tests passed.
	code := SweepMain(runFunc(func() int {
		Failf(Default(), "alloc", "core-conservation", "boom")
		return 0
	}))
	if code == 0 {
		t.Fatal("SweepMain returned 0 despite a recorded violation")
	}
}

type runFunc func() int

func (f runFunc) Run() int { return f() }
