// Package audit is GSF's runtime invariant-checking layer: a
// zero-dependency Checker that the simulators and the carbon model
// consult at the points where the quantities they conserve — cores,
// memory, event time, carbon mass — could silently drift.
//
// The layer is designed to be free when disabled and cheap when
// enabled. Components resolve their configured Checker once per run
// with Resolve (falling back to the process default installed by
// SetDefault); a nil resolved Checker skips every check, and the
// package helpers (Failf, Checkf) are no-ops on nil. When enabled,
// violations accumulate as typed Violation records in a Recorder:
// nothing panics and no result changes, so an audited run returns
// byte-identical output to an unaudited one — the audit only reports.
//
// The invariants checked across the repository (see the package that
// owns each for the enforcement site):
//
//   - alloc: per-node core and memory conservation (free capacity in
//     [0, capacity] after every placement and release, and exactly
//     full again once every VM has departed), best-fit admissibility
//     (a chosen server actually fits the request), no VM placed after
//     its departure, and no spurious rejections (a rejected VM truly
//     fits nowhere).
//   - queueing: event-clock monotonicity, service start >= arrival,
//     completion >= start, latency >= service time, the free-server
//     heap stays a min-heap, and latency percentiles are ordered
//     (P50 <= P95 <= P99).
//   - carbon: server power and embodied emissions equal the sum of
//     their parts to 1e-9, every component is non-negative, rack
//     totals follow Eqs. 2-3 from the server totals, per-core total =
//     operational + embodied, and savings fractions are consistent
//     with the per-core emissions they were derived from.
//   - cluster/buffer: mixed-cluster capacity (and the buffered
//     cluster's) covers the trace's peak concurrent demand, and the
//     mixed cluster never keeps more baseline servers than the
//     all-baseline right-sizing.
package audit

import (
	"fmt"
	"math"
	"os"
	"sync"
	"sync/atomic"
)

// Violation is one observed invariant breach.
type Violation struct {
	// Component names the subsystem that owns the invariant:
	// "alloc", "queueing", "carbon", "cluster", "core".
	Component string
	// Invariant is the stable identifier of the violated check,
	// e.g. "core-conservation" or "clock-monotonicity".
	Invariant string
	// Detail carries the offending values, human-readable.
	Detail string
}

func (v Violation) String() string {
	return v.Component + "/" + v.Invariant + ": " + v.Detail
}

// Checker receives violations. Implementations must be safe for
// concurrent use: the evaluation engine runs audited simulations in
// parallel. A nil Checker disables checking.
type Checker interface {
	Record(Violation)
}

// DefaultKeep is how many violation details a Recorder retains; counts
// keep accumulating past it.
const DefaultKeep = 64

// Recorder is the standard Checker: it counts every violation
// (total and per component/invariant pair) and keeps the first
// DefaultKeep full records for diagnosis.
type Recorder struct {
	n atomic.Int64

	mu     sync.Mutex
	vs     []Violation
	counts map[string]int64
}

// NewRecorder returns an empty, ready-to-share Recorder.
func NewRecorder() *Recorder {
	return &Recorder{counts: make(map[string]int64)}
}

// Record implements Checker.
func (r *Recorder) Record(v Violation) {
	r.n.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[v.Component+"/"+v.Invariant]++
	if len(r.vs) < DefaultKeep {
		r.vs = append(r.vs, v)
	}
}

// Count returns the total number of violations recorded. It is
// lock-free, so metrics endpoints can poll it on every scrape.
func (r *Recorder) Count() int64 { return r.n.Load() }

// Counts returns a copy of the per-"component/invariant" counts.
func (r *Recorder) Counts() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counts))
	for k, n := range r.counts {
		out[k] = n
	}
	return out
}

// Violations returns a copy of the retained violation records (at most
// DefaultKeep of them, in arrival order).
func (r *Recorder) Violations() []Violation {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Violation(nil), r.vs...)
}

// Reset clears all counts and retained records.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n.Store(0)
	r.vs = r.vs[:0]
	clear(r.counts)
}

// Err returns nil when the recorder is clean, or an error summarising
// the violations otherwise.
func (r *Recorder) Err() error {
	n := r.Count()
	if n == 0 {
		return nil
	}
	vs := r.Violations()
	first := ""
	if len(vs) > 0 {
		first = "; first: " + vs[0].String()
	}
	return fmt.Errorf("audit: %d invariant violation(s)%s", n, first)
}

// Failf records a formatted violation; a no-op when c is nil.
func Failf(c Checker, component, invariant, format string, args ...any) {
	if c == nil {
		return
	}
	c.Record(Violation{Component: component, Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
}

// Checkf records a violation when cond is false; a no-op when c is
// nil. The format arguments are evaluated eagerly, so hot loops should
// test the condition themselves and call Failf only on failure.
func Checkf(c Checker, cond bool, component, invariant, format string, args ...any) {
	if c == nil || cond {
		return
	}
	Failf(c, component, invariant, format, args...)
}

// CarbonTol is the tolerance for carbon-mass and power conservation
// sums, which recompute the same additions and must agree essentially
// exactly.
const CarbonTol = 1e-9

// SimTol is the tolerance for simulator resource conservation, where
// thousands of floating-point place/release pairs accumulate rounding
// drift far below this but well above CarbonTol.
const SimTol = 1e-6

// Close reports whether a and b agree within tol, measured relative to
// max(1, |a|, |b|) so it behaves absolutely near zero and relatively
// for large magnitudes. Non-finite inputs never compare close.
func Close(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := 1.0
	if aa := math.Abs(a); aa > scale {
		scale = aa
	}
	if ab := math.Abs(b); ab > scale {
		scale = ab
	}
	return math.Abs(a-b) <= tol*scale
}

// The process-default Checker, consulted by Resolve when a component
// has no explicit Checker configured. Nil (the zero state) disables
// auditing everywhere that is not explicitly wired.
var (
	defMu sync.RWMutex
	def   Checker
)

// SetDefault installs the process-default Checker. Passing nil
// disables default auditing. cmd/gsfd's -audit flag and the test
// suites' SweepMain use this to enable auditing globally, including in
// deep paths (queueing runs inside memoized performance profiling)
// that no per-call Checker reaches.
func SetDefault(c Checker) {
	defMu.Lock()
	def = c
	defMu.Unlock()
}

// Default returns the process-default Checker, or nil.
func Default() Checker {
	defMu.RLock()
	defer defMu.RUnlock()
	return def
}

// Resolve returns c when non-nil, otherwise the process default.
// Components call it once at the start of a run, then guard their
// checks on the resolved value being non-nil.
func Resolve(c Checker) Checker {
	if c != nil {
		return c
	}
	return Default()
}

// SweepMain wraps a package's tests with a process-default Recorder so
// the whole test binary doubles as an invariant sweep: every audited
// code path any test exercises reports into one Recorder, and any
// violation fails the run even when all tests pass. Use from TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }
//
// Tests that deliberately provoke violations must pass their own
// Recorder explicitly (e.g. via alloc.Config.Audit) so the breakage
// stays out of the process default.
//
// The parameter is the *testing.M passed to TestMain; it is typed as
// an interface so this package never imports testing into production
// binaries.
func SweepMain(m interface{ Run() int }) int {
	rec := NewRecorder()
	SetDefault(rec)
	code := m.Run()
	if n := rec.Count(); n > 0 {
		fmt.Fprintf(os.Stderr, "audit: %d invariant violation(s) recorded during the test run:\n", n)
		for k, c := range rec.Counts() {
			fmt.Fprintf(os.Stderr, "  %-40s %d\n", k, c)
		}
		for _, v := range rec.Violations() {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		if code == 0 {
			code = 1
		}
	}
	return code
}
