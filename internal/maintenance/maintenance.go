// Package maintenance implements GSF's maintenance component (§IV-B,
// §V): the out-of-service overhead a SKU imposes on a cluster, derived
// from component annual failure rates (AFRs) via Little's law, and the
// mitigation from Fail-In-Place (FIP) operation.
//
// The paper's worked numbers, reproduced by this package's tests:
// a baseline SKU with 12 DIMMs and 6 SSDs has an AFR of 4.8 per 100
// servers; GreenSKU-Full with 20 DIMMs and 14 SSDs has 7.2. With 75%
// FIP effectiveness on DRAM and SSD failures the repair rates drop to
// 3.0 and 3.6, and GreenSKU-Full's maintenance carbon overhead C_OOS is
// on par with the baseline's (2.98 vs 3.0).
package maintenance

import (
	"fmt"

	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// ComponentAFRs holds per-unit annual failure rates, in failures per
// 100 servers per year per component instance.
type ComponentAFRs struct {
	PerDIMM float64
	PerSSD  float64
	// ServerOther is the AFR of everything else in the server
	// (board, CPU, NIC, PSU...). The paper notes DIMMs and SSDs
	// constitute half of a server's AFR.
	ServerOther float64
}

// DefaultAFRs returns the paper's footnote values: DIMM AFR ~0.1, SSD
// AFR ~0.2, and the rest of the server contributing the other half of
// the baseline's AFR (12*0.1 + 6*0.2 = 2.4, doubled to 4.8).
func DefaultAFRs() ComponentAFRs {
	return ComponentAFRs{PerDIMM: 0.1, PerSSD: 0.2, ServerOther: 2.4}
}

// ServerAFR returns the SKU's total annual failure rate per 100
// servers, approximated as the sum of its components' AFRs (concurrent
// failures are rare for reused components; §V footnote 4). Reused
// DIMMs and SSDs carry the same AFR as new ones: the paper observes
// reused parts fail at equal-or-lower rates (§II, Fig. 2).
func ServerAFR(sku hw.SKU, afrs ComponentAFRs) float64 {
	return float64(sku.DIMMCount())*afrs.PerDIMM +
		float64(sku.SSDCount())*afrs.PerSSD +
		afrs.ServerOther
}

// FIP models Fail-In-Place operation: a fraction of DIMM and SSD
// failures need no immediate repair because the server keeps operating
// with the failed part deactivated.
type FIP struct {
	// Effectiveness is the fraction of DRAM/SSD failures absorbed in
	// place (the paper uses a conservative 0.75).
	Effectiveness float64
}

// RepairRate returns the SKU's annual repair rate per 100 servers under
// FIP: non-DIMM/SSD failures always require repair; DIMM/SSD failures
// require repair only when FIP cannot absorb them.
func (f FIP) RepairRate(sku hw.SKU, afrs ComponentAFRs) float64 {
	mediaAFR := float64(sku.DIMMCount())*afrs.PerDIMM + float64(sku.SSDCount())*afrs.PerSSD
	return mediaAFR*(1-f.Effectiveness) + afrs.ServerOther
}

// OutOfServiceFraction applies Little's law: the average fraction of
// servers that are out of service equals the repair arrival rate times
// the mean repair time. repairRate is per 100 servers per year.
func OutOfServiceFraction(repairRatePer100 float64, repairTime units.Hours) float64 {
	perServerPerYear := repairRatePer100 / 100
	return perServerPerYear * float64(repairTime) / float64(units.HoursPerYear)
}

// Overhead compares the maintenance carbon overhead of a GreenSKU
// against a baseline, following §V's C_OOS formulation:
//
//	C_OOS = repairRate × N_s × E_s
//
// with N_s the relative number of servers needed for the same workload
// and E_s the per-server emissions, both normalised to the baseline.
type Overhead struct {
	SKU        string
	AFR        float64 // failures per 100 servers per year
	RepairRate float64 // after FIP
	COOS       float64 // normalised maintenance carbon overhead
}

// Input describes one SKU for the overhead comparison.
type Input struct {
	SKU hw.SKU
	// ServerRatio is the number of these servers needed per baseline
	// server for the same workload (the paper: 0.66 GreenSKU-Fulls
	// per baseline, reflecting 128 vs 80 cores net of scaling).
	ServerRatio float64
	// EmissionRatio is this SKU's per-server emissions relative to
	// the baseline server (the paper: 1.262 for GreenSKU-Full).
	EmissionRatio float64
}

// Compare computes C_OOS for each input SKU.
func Compare(inputs []Input, afrs ComponentAFRs, fip FIP) ([]Overhead, error) {
	out := make([]Overhead, 0, len(inputs))
	for _, in := range inputs {
		if err := in.SKU.Validate(); err != nil {
			return nil, err
		}
		if in.ServerRatio <= 0 || in.EmissionRatio <= 0 {
			return nil, fmt.Errorf("maintenance: %s: ratios must be positive", in.SKU.Name)
		}
		rate := fip.RepairRate(in.SKU, afrs)
		out = append(out, Overhead{
			SKU:        in.SKU.Name,
			AFR:        ServerAFR(in.SKU, afrs),
			RepairRate: rate,
			COOS:       rate * in.ServerRatio * in.EmissionRatio,
		})
	}
	return out, nil
}

// PaperComparison reproduces §V's baseline vs GreenSKU-Full comparison
// with the paper's server and emission ratios.
func PaperComparison() ([]Overhead, error) {
	return Compare([]Input{
		{SKU: hw.BaselineGen3(), ServerRatio: 1, EmissionRatio: 1},
		{SKU: hw.GreenSKUFull(), ServerRatio: 0.66, EmissionRatio: 1.262},
	}, DefaultAFRs(), FIP{Effectiveness: 0.75})
}
