package maintenance

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/units"
)

// TestPaperAFRs reproduces §V: baseline AFR 4.8, GreenSKU-Full AFR 7.2
// per 100 servers.
func TestPaperAFRs(t *testing.T) {
	afrs := DefaultAFRs()
	if got := ServerAFR(hw.BaselineGen3(), afrs); math.Abs(got-4.8) > 1e-9 {
		t.Errorf("baseline AFR = %v, want 4.8", got)
	}
	if got := ServerAFR(hw.GreenSKUFull(), afrs); math.Abs(got-7.2) > 1e-9 {
		t.Errorf("GreenSKU-Full AFR = %v, want 7.2", got)
	}
}

// TestPaperFIP reproduces §V: repair rates of 3.0 and 3.6 after 75% FIP.
func TestPaperFIP(t *testing.T) {
	fip := FIP{Effectiveness: 0.75}
	afrs := DefaultAFRs()
	if got := fip.RepairRate(hw.BaselineGen3(), afrs); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("baseline repair rate = %v, want 3.0", got)
	}
	if got := fip.RepairRate(hw.GreenSKUFull(), afrs); math.Abs(got-3.6) > 1e-9 {
		t.Errorf("GreenSKU-Full repair rate = %v, want 3.6", got)
	}
}

// TestPaperCOOS reproduces §V: C_OOS = 3.0 for the baseline vs 2.98 for
// GreenSKU-Full — maintenance overheads are negligible.
func TestPaperCOOS(t *testing.T) {
	out, err := PaperComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d overheads, want 2", len(out))
	}
	if math.Abs(out[0].COOS-3.0) > 1e-9 {
		t.Errorf("baseline C_OOS = %v, want 3.0", out[0].COOS)
	}
	if math.Abs(out[1].COOS-2.9985) > 0.01 {
		t.Errorf("GreenSKU-Full C_OOS = %v, want ~2.98", out[1].COOS)
	}
	// The paper's conclusion: GreenSKU-Full's maintenance overhead does
	// not exceed the baseline's.
	if out[1].COOS > out[0].COOS {
		t.Errorf("GreenSKU-Full C_OOS (%v) should not exceed baseline (%v)", out[1].COOS, out[0].COOS)
	}
}

func TestOutOfServiceFraction(t *testing.T) {
	// Repair rate 3 per 100 servers/year with a 2-week repair time:
	// 0.03 * 336/8760 = 0.115%.
	got := OutOfServiceFraction(3, units.Hours(336))
	if math.Abs(got-0.0011506849) > 1e-8 {
		t.Fatalf("out-of-service fraction = %v, want ~0.00115", got)
	}
}

func TestFIPBounds(t *testing.T) {
	afrs := DefaultAFRs()
	sku := hw.GreenSKUFull()
	// 0% effectiveness: repair rate equals full AFR.
	if got := (FIP{}).RepairRate(sku, afrs); math.Abs(got-ServerAFR(sku, afrs)) > 1e-9 {
		t.Errorf("FIP 0%% repair rate = %v, want full AFR", got)
	}
	// 100% effectiveness: only non-media failures remain.
	if got := (FIP{Effectiveness: 1}).RepairRate(sku, afrs); math.Abs(got-afrs.ServerOther) > 1e-9 {
		t.Errorf("FIP 100%% repair rate = %v, want %v", got, afrs.ServerOther)
	}
}

func TestCompareValidation(t *testing.T) {
	_, err := Compare([]Input{{SKU: hw.BaselineGen3(), ServerRatio: 0, EmissionRatio: 1}},
		DefaultAFRs(), FIP{Effectiveness: 0.75})
	if err == nil {
		t.Fatal("Compare accepted a zero server ratio")
	}
	_, err = Compare([]Input{{SKU: hw.SKU{}, ServerRatio: 1, EmissionRatio: 1}},
		DefaultAFRs(), FIP{Effectiveness: 0.75})
	if err == nil {
		t.Fatal("Compare accepted an invalid SKU")
	}
}

func TestPropertyFIPMonotone(t *testing.T) {
	// More FIP effectiveness never increases the repair rate.
	afrs := DefaultAFRs()
	sku := hw.GreenSKUFull()
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1)
		b = math.Mod(math.Abs(b), 1)
		if a > b {
			a, b = b, a
		}
		return FIP{Effectiveness: a}.RepairRate(sku, afrs) >= FIP{Effectiveness: b}.RepairRate(sku, afrs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAFRMonotoneInComponents(t *testing.T) {
	// Adding DIMMs or SSDs never lowers the server AFR.
	afrs := DefaultAFRs()
	base := ServerAFR(hw.BaselineGen3(), afrs)
	bigger := hw.BaselineGen3()
	bigger.DIMMs = append(bigger.DIMMs, hw.DIMMGroup{Count: 4, CapacityGB: 32, Kind: hw.MemLocal})
	if ServerAFR(bigger, afrs) <= base {
		t.Error("adding DIMMs should raise AFR")
	}
}
