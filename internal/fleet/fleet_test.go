package fleet

import (
	"math"
	"testing"
)

func analyze(t *testing.T, p Params) Breakdown {
	t.Helper()
	b, err := Analyze(p)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFig1Shares reproduces the paper's headline Fig. 1 numbers:
// operational ~58% of total emissions, compute servers ~57% of the
// datacenter, and DRAM/SSD/CPU at 35/28/24% of compute emissions.
func TestFig1Shares(t *testing.T) {
	b := analyze(t, Default())
	check := func(name string, got, want, tol float64) {
		if math.Abs(got*100-want) > tol {
			t.Errorf("%s = %.1f%%, want %v%% ±%v", name, got*100, want, tol)
		}
	}
	check("operational share", b.OpShare, 58, 2)
	check("compute share", b.ComputeShare, 57, 2)
	check("DRAM share of compute", b.ComputePartShares["dram"], 35, 2)
	check("SSD share of compute", b.ComputePartShares["ssd"], 28, 2)
	check("CPU share of compute", b.ComputePartShares["cpu"], 24, 2)
}

// TestFig1FullyRenewable reproduces the 100%-renewable sensitivity:
// operational drops to ~9% of emissions and compute to ~44%.
func TestFig1FullyRenewable(t *testing.T) {
	p := Default()
	p.RenewableFraction = 1
	b := analyze(t, p)
	if math.Abs(b.OpShare*100-9) > 2.5 {
		t.Errorf("operational share at 100%% renewables = %.1f%%, want ~9%%", b.OpShare*100)
	}
	if math.Abs(b.ComputeShare*100-44) > 6 {
		t.Errorf("compute share at 100%% renewables = %.1f%%, want ~44%%", b.ComputeShare*100)
	}
}

// TestFig1ComponentOrdering encodes Fig. 1's qualitative claims: CPUs
// dominate compute operational emissions; DRAM and SSDs dominate
// embodied.
func TestFig1ComponentOrdering(t *testing.T) {
	b := analyze(t, Default())
	op := b.ComputePartOpShares
	if !(op["cpu"] > op["dram"] && op["cpu"] > op["ssd"]) {
		t.Errorf("CPU should dominate operational: %v", op)
	}
	emb := b.ComputePartEmbShares
	if !(emb["dram"] > emb["cpu"] && emb["ssd"] > emb["cpu"]) {
		t.Errorf("DRAM and SSD should dominate embodied: %v", emb)
	}
	// §III: CPU+DRAM+SSD cause 67% of a compute server's emissions —
	// our fitted breakdown puts them higher still; assert at least
	// two-thirds.
	sum := b.ComputePartShares["cpu"] + b.ComputePartShares["dram"] + b.ComputePartShares["ssd"]
	if sum < 0.67 {
		t.Errorf("top-3 components cover %.2f of compute emissions, want >= 0.67", sum)
	}
}

func TestSharesSumToOne(t *testing.T) {
	b := analyze(t, Default())
	sum := b.ComputeShare + b.StorageShare + b.NetworkShare + b.NonITShare
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("type shares sum to %v", sum)
	}
	var parts float64
	for _, v := range b.ComputePartShares {
		parts += v
	}
	if math.Abs(parts-1) > 1e-9 {
		t.Fatalf("compute part shares sum to %v", parts)
	}
}

func TestEffectiveCIBlend(t *testing.T) {
	p := Default()
	got := float64(p.EffectiveCI())
	want := 0.4*0.238 + 0.6*0.008
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("effective CI = %v, want %v", got, want)
	}
	if math.Abs(got-0.1) > 0.002 {
		t.Fatalf("effective CI = %v, want ~0.1 (the paper's regional average)", got)
	}
}

func TestMoreRenewablesLowerOpShare(t *testing.T) {
	prev := 2.0
	for _, rf := range []float64{0, 0.25, 0.5, 0.75, 1} {
		p := Default()
		p.RenewableFraction = rf
		b := analyze(t, p)
		if b.OpShare >= prev {
			t.Fatalf("op share not decreasing with renewables at %v", rf)
		}
		prev = b.OpShare
	}
}

func TestDCSavings(t *testing.T) {
	b := analyze(t, Default())
	got := DCSavings(0.14, b)
	// ~14% cluster savings -> ~8% DC savings at 57% compute share.
	if math.Abs(got-0.08) > 0.01 {
		t.Fatalf("DC savings = %v, want ~0.08", got)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	p := Default()
	p.NCompute = 0
	if _, err := Analyze(p); err == nil {
		t.Error("Analyze accepted zero compute servers")
	}
	p = Default()
	p.RenewableFraction = 2
	if _, err := Analyze(p); err == nil {
		t.Error("Analyze accepted renewable fraction > 1")
	}
	p = Default()
	p.PUE = 0.5
	if _, err := Analyze(p); err == nil {
		t.Error("Analyze accepted PUE < 1")
	}
}
