// Package fleet models a whole general-purpose datacenter fleet —
// compute, storage, and network servers plus non-IT equipment — to
// reproduce the paper's Fig. 1 carbon breakdown and its renewable-mix
// sensitivity ("with a hypothetical 100% renewable energy mix,
// operational emissions would account for 9% of data center
// emissions").
//
// Per-component draws and embodied masses are fitted (see "fitted:")
// so the breakdown matches the published shares: operational ~58% of
// total at Azure's 40-80% renewable mix, compute servers ~57% of
// datacenter emissions, and DRAM/SSD/CPU contributing 35%/28%/24% of
// compute-server emissions.
package fleet

import (
	"fmt"

	"github.com/greensku/gsf/internal/units"
)

// Part is one component class of the compute server.
type Part struct {
	Name     string
	Draw     units.Watts // average draw per server
	Embodied units.KgCO2e
}

// ServerKind aggregates a non-compute server type.
type ServerKind struct {
	Count    int
	Draw     units.Watts
	Embodied units.KgCO2e
}

// Params describes the fleet.
type Params struct {
	Lifetime units.Hours

	// Energy mix: effective carbon intensity is the renewable-share
	// weighted blend of grid and renewable lifecycle intensities.
	GridCI            units.CarbonIntensity
	RenewableCI       units.CarbonIntensity
	RenewableFraction float64

	ComputeParts []Part
	NCompute     int
	Storage      ServerKind
	Network      ServerKind
	// PUE covers cooling and power-distribution operational overhead:
	// non-IT operational power is (PUE-1) x IT power.
	PUE float64
	// BuildingEmbodied is the non-IT embodied carbon (building,
	// cooling plant, power distribution hardware).
	BuildingEmbodied units.KgCO2e
}

// Default returns the fitted fleet parameterisation for a
// representative general-purpose datacenter region.
func Default() Params {
	return Params{
		Lifetime:          units.Years(6),
		GridCI:            0.238, // fitted: blends to the 0.1 kg/kWh regional average
		RenewableCI:       0.008, // lifecycle intensity of wind/solar/nuclear supply
		RenewableFraction: 0.60,  // middle of the paper's 40-80% range
		ComputeParts: []Part{
			{Name: "cpu", Draw: 151.8, Embodied: 42},
			{Name: "dram", Draw: 139.8, Embodied: 490},
			{Name: "ssd", Draw: 65.3, Embodied: 637},
			{Name: "other", Draw: 75.9, Embodied: 56},
		},
		NCompute:         1000,
		Storage:          ServerKind{Count: 120, Draw: 291.7, Embodied: 3583},
		Network:          ServerKind{Count: 50, Draw: 700, Embodied: 2460},
		PUE:              1.35,
		BuildingEmbodied: 798000,
	}
}

// EffectiveCI returns the renewable-blended carbon intensity.
func (p Params) EffectiveCI() units.CarbonIntensity {
	return units.CarbonIntensity(
		(1-p.RenewableFraction)*float64(p.GridCI) + p.RenewableFraction*float64(p.RenewableCI))
}

// Breakdown is the Fig. 1 result.
type Breakdown struct {
	Total units.KgCO2e
	// OpShare is operational emissions over total.
	OpShare float64
	// Server-type shares of total datacenter emissions.
	ComputeShare float64
	StorageShare float64
	NetworkShare float64
	NonITShare   float64
	// ComputePartShares maps component name to its share of compute
	// server emissions (operational plus embodied).
	ComputePartShares map[string]float64
	// ComputePartOpShares maps component name to its share of compute
	// servers' operational emissions only (Fig. 1's left column).
	ComputePartOpShares map[string]float64
	// ComputePartEmbShares likewise for embodied (Fig. 1's right
	// column).
	ComputePartEmbShares map[string]float64
}

// Analyze computes the breakdown.
func Analyze(p Params) (Breakdown, error) {
	if p.Lifetime <= 0 || p.NCompute <= 0 || p.PUE < 1 {
		return Breakdown{}, fmt.Errorf("fleet: invalid parameters")
	}
	if p.RenewableFraction < 0 || p.RenewableFraction > 1 {
		return Breakdown{}, fmt.Errorf("fleet: renewable fraction out of [0,1]")
	}
	ci := p.EffectiveCI()
	opOf := func(w units.Watts, count int) float64 {
		return float64(ci.Emissions(p.Lifetime.Energy(w))) * float64(count)
	}

	var computeOp, computeEmb float64
	partTotals := map[string]float64{}
	partOp := map[string]float64{}
	partEmb := map[string]float64{}
	for _, part := range p.ComputeParts {
		op := opOf(part.Draw, p.NCompute)
		emb := float64(part.Embodied) * float64(p.NCompute)
		computeOp += op
		computeEmb += emb
		partTotals[part.Name] = op + emb
		partOp[part.Name] = op
		partEmb[part.Name] = emb
	}
	compute := computeOp + computeEmb

	storageOp := opOf(p.Storage.Draw, p.Storage.Count)
	storage := storageOp + float64(p.Storage.Embodied)*float64(p.Storage.Count)
	networkOp := opOf(p.Network.Draw, p.Network.Count)
	network := networkOp + float64(p.Network.Embodied)*float64(p.Network.Count)

	itOp := computeOp + storageOp + networkOp
	nonITOp := (p.PUE - 1) * itOp
	nonIT := nonITOp + float64(p.BuildingEmbodied)

	total := compute + storage + network + nonIT
	b := Breakdown{
		Total:                units.KgCO2e(total),
		OpShare:              (itOp + nonITOp) / total,
		ComputeShare:         compute / total,
		StorageShare:         storage / total,
		NetworkShare:         network / total,
		NonITShare:           nonIT / total,
		ComputePartShares:    map[string]float64{},
		ComputePartOpShares:  map[string]float64{},
		ComputePartEmbShares: map[string]float64{},
	}
	for name, v := range partTotals {
		b.ComputePartShares[name] = v / compute
	}
	for name, v := range partOp {
		b.ComputePartOpShares[name] = v / computeOp
	}
	for name, v := range partEmb {
		b.ComputePartEmbShares[name] = v / computeEmb
	}
	return b, nil
}

// DCSavings converts a compute-cluster carbon saving into a
// datacenter-level saving: only the compute share of emissions shrinks
// (plus the cooling power riding on compute power, folded into the
// compute share here for a first-order estimate).
func DCSavings(clusterSavings float64, b Breakdown) float64 {
	return clusterSavings * b.ComputeShare
}
