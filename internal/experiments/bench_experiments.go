package experiments

// Performance benchmarks with a machine-readable trajectory: the
// ROADMAP's north star wants the hot paths to run as fast as the
// hardware allows, which needs a recorded baseline to regress against.
// AllocSweepBench times the 35-trace allocation sweep through the
// placement index and through the reference linear scan — verifying
// bit-identical Results while it is at it — and QueueBench times the
// queueing saturation curve behind Figs. 7–8. cmd/gsfbench packages
// both into BENCH_alloc.json so CI can archive the numbers and gate on
// the index actually being faster.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/queueing"
	"github.com/greensku/gsf/internal/trace"
)

// AllocBenchOptions sizes the allocation sweep benchmark.
type AllocBenchOptions struct {
	// Traces caps how many of the 35 production-suite traces to
	// replay; 0 or anything >= 35 runs the full suite.
	Traces int
	// ServersPerClass is the pool size for both the baseline and the
	// GreenSKU class; 0 defaults to 10000, the scale the acceptance
	// target is defined at.
	ServersPerClass int
	Policy          alloc.Policy
	// Shards > 1 replays both timed arms through the pool-sharded
	// multi-pool pipeline (alloc.MultiConfig.Shards) instead of the
	// single-pool simulator. Decisions and statistics are bit-identical
	// either way; only the timings move.
	Shards int
}

// AllocBenchResult is the allocation sweep's measurement.
type AllocBenchResult struct {
	Traces            int     `json:"traces"`
	VMs               int     `json:"vms"`
	ServersPerClass   int     `json:"servers_per_class"`
	Policy            string  `json:"policy"`
	Shards            int     `json:"shards"`
	IndexedSeconds    float64 `json:"indexed_seconds"`
	ReferenceSeconds  float64 `json:"reference_seconds"`
	Speedup           float64 `json:"speedup"`
	DecisionIdentical bool    `json:"decision_identical"`
	Placed            int     `json:"placed"`
	Rejected          int     `json:"rejected"`
}

// benchDecider adopts most VMs with fractional scaling factors so the
// sweep exercises both pools and non-integral free capacities — the
// same shape the differential suite uses.
func benchDecider(vm trace.VM) alloc.Decision {
	return alloc.Decision{Adopt: vm.ID%10 < 7, Scale: 1 + 0.1*float64(vm.ID%3)}
}

// AllocSweepBench replays the production trace suite through the
// indexed allocator and the reference scan, times both serially, and
// checks the two produce bit-identical Results trace by trace.
func AllocSweepBench(ctx context.Context, opt AllocBenchOptions) (AllocBenchResult, error) {
	traces, err := trace.ProductionSuite()
	if err != nil {
		return AllocBenchResult{}, err
	}
	if opt.Traces > 0 && opt.Traces < len(traces) {
		traces = traces[:opt.Traces]
	}
	n := opt.ServersPerClass
	if n <= 0 {
		n = 10000
	}
	base := hw.BaselineGen3()
	green := hw.GreenSKUFull()
	cfg := alloc.Config{
		Base:   alloc.ServerClass{Name: base.Name, Cores: base.Cores(), Memory: base.TotalDRAMGB(), LocalMemory: base.LocalDRAMGB()},
		NBase:  n,
		Green:  alloc.ServerClass{Name: green.Name, Cores: green.Cores(), Memory: green.TotalDRAMGB(), LocalMemory: green.LocalDRAMGB(), Green: true},
		NGreen: n,
		Policy: opt.Policy, PreferNonEmpty: true,
	}
	simulate := func(tr trace.Trace, reference bool) (alloc.Result, error) {
		if opt.Shards > 1 {
			mres, err := alloc.SimulateMultiContext(ctx, tr, alloc.MultiConfig{
				Base:           alloc.Pool{Class: cfg.Base, N: cfg.NBase},
				Greens:         []alloc.Pool{{Class: cfg.Green, N: cfg.NGreen}},
				Policy:         cfg.Policy,
				PreferNonEmpty: cfg.PreferNonEmpty,
				ReferenceScan:  reference,
				Shards:         opt.Shards,
			}, func(vm trace.VM) alloc.MultiDecision {
				d := benchDecider(vm)
				scale := 0.0
				if d.Adopt {
					scale = d.Scale
				}
				return alloc.MultiDecision{Scales: []float64{scale}}
			})
			if err != nil {
				return alloc.Result{}, err
			}
			return alloc.Result{
				Placed:    mres.Placed,
				Rejected:  mres.Rejected,
				Base:      mres.Base,
				Green:     mres.Green[0],
				Snapshots: mres.Snapshots,
			}, nil
		}
		c := cfg
		c.ReferenceScan = reference
		return alloc.SimulateContext(ctx, tr, c, benchDecider)
	}
	run := func(reference bool) ([]alloc.Result, float64, error) {
		out := make([]alloc.Result, 0, len(traces))
		start := time.Now()
		for _, tr := range traces {
			res, err := simulate(tr, reference)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, res)
		}
		return out, time.Since(start).Seconds(), nil
	}

	indexed, indexedSec, err := run(false)
	if err != nil {
		return AllocBenchResult{}, err
	}
	reference, referenceSec, err := run(true)
	if err != nil {
		return AllocBenchResult{}, err
	}

	res := AllocBenchResult{
		Traces:            len(traces),
		ServersPerClass:   n,
		Policy:            cfg.Policy.String(),
		Shards:            opt.Shards,
		IndexedSeconds:    indexedSec,
		ReferenceSeconds:  referenceSec,
		DecisionIdentical: true,
	}
	if indexedSec > 0 {
		res.Speedup = referenceSec / indexedSec
	}
	for i := range traces {
		res.VMs += len(traces[i].VMs)
		res.Placed += indexed[i].Placed
		res.Rejected += indexed[i].Rejected
		if !allocResultsIdentical(indexed[i], reference[i]) {
			res.DecisionIdentical = false
		}
	}
	return res, nil
}

// allocResultsIdentical compares two Results bit-for-bit (NaN equals
// NaN; -0 differs from +0).
func allocResultsIdentical(a, b alloc.Result) bool {
	same := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	stats := func(x, y alloc.ClassStats) bool {
		return same(x.CorePacking, y.CorePacking) && same(x.MemPacking, y.MemPacking) &&
			same(x.MaxMemUtil, y.MaxMemUtil) && same(x.CXLServedFrac, y.CXLServedFrac) &&
			same(x.LocalFitsFrac, y.LocalFitsFrac)
	}
	return a.Placed == b.Placed && a.Rejected == b.Rejected && a.Snapshots == b.Snapshots &&
		stats(a.Base, b.Base) && stats(a.Green, b.Green)
}

// QueueBenchOptions sizes the queueing saturation-curve benchmark.
type QueueBenchOptions struct {
	Servers int // queue parallelism; 0 defaults to 64
	Steps   int // load points; 0 defaults to 8
	Seed    uint64
}

// QueuePoint is one measured point of the saturation curve.
type QueuePoint struct {
	QPS       float64 `json:"qps"`
	P95       float64 `json:"p95_seconds"`
	Saturated bool    `json:"saturated"`
}

// QueueBenchResult is the queueing benchmark's measurement.
type QueueBenchResult struct {
	Servers int          `json:"servers"`
	Steps   int          `json:"steps"`
	Seconds float64      `json:"seconds"`
	Points  []QueuePoint `json:"points"`
}

// QueueBench sweeps offered load from half to past the queue's
// theoretical capacity (the Fig. 7–8 protocol) and times the sweep.
func QueueBench(opt QueueBenchOptions) (QueueBenchResult, error) {
	servers := opt.Servers
	if servers <= 0 {
		servers = 64
	}
	steps := opt.Steps
	if steps <= 0 {
		steps = 8
	}
	dist := queueing.LogNormal{MeanSeconds: 0.005, CV: 1.5}
	start := time.Now()
	pts, err := queueing.Curve(servers, dist, 0.5, 1.1, steps, opt.Seed)
	if err != nil {
		return QueueBenchResult{}, err
	}
	res := QueueBenchResult{Servers: servers, Steps: steps, Seconds: time.Since(start).Seconds()}
	for _, p := range pts {
		res.Points = append(res.Points, QueuePoint{QPS: p.QPS, P95: p.P95, Saturated: p.Saturated})
	}
	return res, nil
}

// QueueKernelBenchOptions sizes the queueing-kernel benchmark.
type QueueKernelBenchOptions struct {
	// Requests per simulation; 0 uses the paper protocol's default.
	Requests int
	Seed     uint64
}

// KneeBenchResult measures the adaptive knee search against the
// fixed-step sweep it replaces, plus the fluid-guided variant
// (Config.FluidApprox) that concentrates discrete-event cost near the
// knee.
type KneeBenchResult struct {
	Servers        int     `json:"servers"`
	KneeFrac       float64 `json:"knee_frac"`
	Evals          int     `json:"evals"`
	FixedStepEvals int     `json:"fixed_step_evals"`
	Seconds        float64 `json:"seconds"`
	// The fluid-guided search: analytic bracket narrowing plus a
	// closed-form screening probe. FluidKneeFrac must land within the
	// bisection resolution of KneeFrac (fluid_test.go bounds it).
	FluidKneeFrac float64 `json:"fluid_knee_frac"`
	FluidEvals    int     `json:"fluid_evals"`
	FluidSimEvals int     `json:"fluid_sim_evals"`
	FluidSeconds  float64 `json:"fluid_seconds"`
}

// QueueKernelBenchResult is the queueing-kernel benchmark's
// measurement: the TableIII profiling sweep over the green-SKU catalog
// through three kernels. The batch arm is the default kernel (batched
// SoA event loop plus everything below); the fast arm is the prior
// scalar kernel (Config.ReferenceEventLoop with ziggurat sampling,
// single-sort statistics, SLO memoization); the reference arm is a
// reference-shaped run (scalar loop, bit-exact samplers, no memo,
// serial) approximating the pre-optimization kernel.
type QueueKernelBenchResult struct {
	SKUs             []string `json:"skus"`
	Cells            int      `json:"cells"`
	Requests         int      `json:"requests"`
	BatchSeconds     float64  `json:"batch_seconds"`
	FastSeconds      float64  `json:"fast_seconds"`
	ReferenceSeconds float64  `json:"reference_seconds"`
	// BatchSpeedup is fast/batch: what the batched event loop buys
	// over the prior fast kernel. Speedup is reference/fast, the PR 5
	// gate, and CumulativeSpeedup is reference/batch.
	BatchSpeedup      float64         `json:"batch_speedup"`
	Speedup           float64         `json:"speedup"`
	CumulativeSpeedup float64         `json:"cumulative_speedup"`
	FactorsIdentical  bool            `json:"factors_identical"`
	SLOCacheHits      int64           `json:"slo_cache_hits"`
	SLOCacheMisses    int64           `json:"slo_cache_misses"`
	Knee              KneeBenchResult `json:"knee"`
}

// QueueKernelBench profiles every green SKU in the catalog against all
// three baseline generations (the Table III protocol), once per kernel
// arm (batched, fast-scalar, reference-shaped), and verifies all three
// produce identical factor matrices — the fast paths may change
// latencies in distribution, but they must never flip a factor bin.
// (Batched versus the scalar loop is in fact bit-identical; the
// queueing differential wall proves that stronger property.)
func QueueKernelBench(ctx context.Context, opt QueueKernelBenchOptions) (QueueKernelBenchResult, error) {
	greens := []hw.SKU{hw.GreenSKUEfficient(), hw.GreenSKUCXL(), hw.GreenSKUFull()}

	popt := perf.DefaultOptions()
	if opt.Requests > 0 {
		popt.Requests = opt.Requests
	}
	if opt.Seed != 0 {
		popt.Seed = opt.Seed
	}

	res := QueueKernelBenchResult{Requests: popt.Requests, FactorsIdentical: true}

	sweep := func(o perf.Options) ([]map[string]map[int]perf.Factor, float64, error) {
		out := make([]map[string]map[int]perf.Factor, 0, len(greens))
		start := time.Now()
		for _, g := range greens {
			m, err := perf.TableIIIContext(ctx, g, o)
			if err != nil {
				return nil, 0, err
			}
			out = append(out, m)
		}
		return out, time.Since(start).Seconds(), nil
	}

	// Batch arm: the default kernel (batched SoA event loop).
	perf.ResetSLOCache()
	batch, batchSec, err := sweep(popt)
	if err != nil {
		return QueueKernelBenchResult{}, err
	}
	res.SLOCacheHits, res.SLOCacheMisses = perf.SLOCacheStats()

	// Fast arm: the prior scalar kernel, everything else equal.
	fopt := popt
	fopt.ReferenceEventLoop = true
	perf.ResetSLOCache()
	fast, fastSec, err := sweep(fopt)
	if err != nil {
		return QueueKernelBenchResult{}, err
	}

	ref := popt
	ref.Workers = 1
	ref.ReferenceSampling = true
	ref.ReferenceEventLoop = true
	ref.DisableSLOMemo = true
	reference, refSec, err := sweep(ref)
	if err != nil {
		return QueueKernelBenchResult{}, err
	}

	res.BatchSeconds, res.FastSeconds, res.ReferenceSeconds = batchSec, fastSec, refSec
	if batchSec > 0 {
		res.BatchSpeedup = fastSec / batchSec
		res.CumulativeSpeedup = refSec / batchSec
	}
	if fastSec > 0 {
		res.Speedup = refSec / fastSec
	}
	for i, g := range greens {
		res.SKUs = append(res.SKUs, g.Name)
		for app, gens := range batch[i] {
			res.Cells += len(gens)
			for gen, f := range gens {
				if fast[i][app][gen] != f || reference[i][app][gen] != f {
					res.FactorsIdentical = false
				}
			}
		}
	}

	// Knee search versus the fixed-step sweep at the same resolution.
	const loFrac, hiFrac, tolFrac = 0.5, 1.2, 0.01
	kcfg := queueing.Config{
		Servers:  64,
		Service:  queueing.LogNormal{MeanSeconds: 0.005, CV: 1.5},
		Requests: popt.Requests,
		Seed:     popt.Seed,
	}
	start := time.Now()
	knee, err := queueing.KneeSearch(ctx, kcfg, loFrac, hiFrac, tolFrac)
	if err != nil {
		return QueueKernelBenchResult{}, err
	}
	res.Knee = KneeBenchResult{
		Servers:        kcfg.Servers,
		KneeFrac:       knee.KneeFrac,
		Evals:          knee.Evals,
		FixedStepEvals: int((hiFrac - loFrac) / tolFrac),
		Seconds:        time.Since(start).Seconds(),
	}

	// The fluid-guided variant of the same search.
	fcfg := kcfg
	fcfg.FluidApprox = true
	start = time.Now()
	fknee, err := queueing.KneeSearch(ctx, fcfg, loFrac, hiFrac, tolFrac)
	if err != nil {
		return QueueKernelBenchResult{}, err
	}
	res.Knee.FluidKneeFrac = fknee.KneeFrac
	res.Knee.FluidEvals = fknee.FluidEvals
	res.Knee.FluidSimEvals = fknee.Evals
	res.Knee.FluidSeconds = time.Since(start).Seconds()
	return res, nil
}

// QueueArtifact is the BENCH_queue.json schema: the queueing-kernel
// sweep measurement, versioned like BenchArtifact.
type QueueArtifact struct {
	Schema string                 `json:"schema"`
	Kernel QueueKernelBenchResult `json:"kernel"`
}

// WriteQueueArtifact encodes the artifact as indented JSON.
func WriteQueueArtifact(w io.Writer, a QueueArtifact) error {
	if a.Schema == "" {
		a.Schema = BenchSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("experiments: encoding queue artifact: %w", err)
	}
	return nil
}

// BenchArtifact is the BENCH_alloc.json schema: one allocation sweep
// measurement plus one queueing curve, versioned so future PRs can
// extend it without breaking readers. Scale is the additive
// large-fleet table (AllocScaleBench rows, e.g. the million-server
// row); absent when the suite ran without a scale size.
type BenchArtifact struct {
	Schema   string             `json:"schema"`
	Alloc    AllocBenchResult   `json:"alloc"`
	Queueing QueueBenchResult   `json:"queueing"`
	Scale    []AllocScaleResult `json:"scale,omitempty"`
}

// BenchSchema is the current artifact schema identifier.
const BenchSchema = "gsf-bench/v1"

// WriteBenchArtifact encodes the artifact as indented JSON.
func WriteBenchArtifact(w io.Writer, a BenchArtifact) error {
	if a.Schema == "" {
		a.Schema = BenchSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("experiments: encoding bench artifact: %w", err)
	}
	return nil
}
