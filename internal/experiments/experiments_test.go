package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig1(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Standard.OpShare-0.58) > 0.02 {
		t.Errorf("standard op share = %v, want ~0.58", r.Standard.OpShare)
	}
	if math.Abs(r.FullyRenewable.OpShare-0.09) > 0.03 {
		t.Errorf("renewable op share = %v, want ~0.09", r.FullyRenewable.OpShare)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "compute servers share") {
		t.Error("render missing compute share row")
	}
}

func TestFig2(t *testing.T) {
	r, err := Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series.Raw) != 84 {
		t.Fatalf("series length = %d, want 84 months", len(r.Series.Raw))
	}
	if math.Abs(r.Stability-1) > 0.1 {
		t.Errorf("plateau stability = %v, want ~1 (flat AFR)", r.Stability)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Renders(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Bergamo", "Genoa", "128", "384"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestSec5WorkedExample(t *testing.T) {
	e, err := Sec5WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"E_emb,s", float64(e.EmbServer), 1644, 1},
		{"P_s", float64(e.PowerServer), 403.3, 0.2},
		{"N_s", float64(e.ServersRack), 16, 0},
		{"E_emb,r", float64(e.EmbRack), 26804, 5},
		{"P_r", float64(e.PowerRack), 6953, 2},
		{"E_op,r", float64(e.OpRack), 36547, 10},
		{"E_r", float64(e.TotalRack), 63351, 15},
		{"cores", float64(e.CoresRack), 2048, 0},
		{"per-core", float64(e.PerCore), 30.93, 0.05},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s = %v, want %v ±%v", c.name, c.got, c.want, c.tol)
		}
	}
	var b strings.Builder
	if err := e.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestSec5Maintenance(t *testing.T) {
	rows, err := Sec5Maintenance()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := RenderMaintenance(&b, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "GreenSKU-Full") {
		t.Error("maintenance table missing GreenSKU-Full")
	}
}

func TestTable2(t *testing.T) {
	r, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 3 {
		t.Fatalf("Table II has %d rows, want 3", len(r))
	}
	for name, v := range r {
		// Gen3 column is the normalisation point.
		if math.Abs(v[2]-1) > 1e-9 {
			t.Errorf("%s Gen3 = %v, want 1", name, v[2])
		}
		// CXL slowdowns exceed Efficient's (Table II: 1.21-1.38 vs
		// 1.15-1.17).
		if v[4] <= v[3] {
			t.Errorf("%s: CXL slowdown (%v) should exceed Efficient (%v)", name, v[4], v[3])
		}
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestFig7CurvesShape(t *testing.T) {
	curves, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("Fig 7 has %d apps, want 5", len(curves))
	}
	for _, ac := range curves {
		if len(ac.Curves) != 4 {
			t.Fatalf("%s: %d curves, want 4 (Gen3 + 3 green core counts)", ac.App, len(ac.Curves))
		}
		if ac.SLO <= 0 {
			t.Fatalf("%s: SLO = %v", ac.App, ac.SLO)
		}
		for _, c := range ac.Curves {
			last := c.Points[len(c.Points)-1]
			first := c.Points[0]
			if last.P95 <= first.P95 {
				t.Errorf("%s/%s: no latency growth toward saturation", ac.App, c.Label)
			}
		}
		var b strings.Builder
		if err := RenderCurves(&b, "Fig. 7", ac); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig8(t *testing.T) {
	r, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	// Moses is the high-impact app, HAProxy the low-impact one; the
	// paper reports ~11% peak reduction for HAProxy.
	if r.PeakReduction["Moses"] <= r.PeakReduction["HAProxy"] {
		t.Errorf("Moses peak reduction (%v) should exceed HAProxy's (%v)",
			r.PeakReduction["Moses"], r.PeakReduction["HAProxy"])
	}
	if math.Abs(r.PeakReduction["HAProxy"]-0.11) > 0.02 {
		t.Errorf("HAProxy peak reduction = %v, want ~0.11", r.PeakReduction["HAProxy"])
	}
	if r.PeakReduction["Moses"] < 0.25 {
		t.Errorf("Moses peak reduction = %v, want large (memory-bound)", r.PeakReduction["Moses"])
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestLowLoad(t *testing.T) {
	r, err := LowLoad()
	if err != nil {
		t.Fatal(err)
	}
	// §VI: median low-load latency is below Gen1's, near Gen2's, and
	// moderately above Gen3's (paper: -8.3%, -2%, +16%).
	if r.MedianVsGen1 >= 1 {
		t.Errorf("vs Gen1 = %v, want < 1", r.MedianVsGen1)
	}
	if r.MedianVsGen3 <= 1 || r.MedianVsGen3 > 1.45 {
		t.Errorf("vs Gen3 = %v, want moderately above 1", r.MedianVsGen3)
	}
	if !(r.MedianVsGen1 < r.MedianVsGen2 && r.MedianVsGen2 < r.MedianVsGen3) {
		t.Errorf("medians should order Gen1 < Gen2 < Gen3: %v %v %v",
			r.MedianVsGen1, r.MedianVsGen2, r.MedianVsGen3)
	}
}

func TestSavingsTables(t *testing.T) {
	for _, tc := range []struct {
		dataset string
		paper   map[string][3]int
		tol     float64
	}{
		{"open-source", PaperTable8, 5},
		{"paper-calibrated", PaperTable4, 6},
	} {
		rows, err := SavingsTable(tc.dataset)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 4 {
			t.Fatalf("%s: %d rows, want 4", tc.dataset, len(rows))
		}
		for _, r := range rows {
			p, ok := tc.paper[r.SKU]
			if !ok {
				t.Fatalf("%s: unexpected SKU %s", tc.dataset, r.SKU)
			}
			if math.Abs(r.Operational*100-float64(p[0])) > tc.tol ||
				math.Abs(r.Embodied*100-float64(p[1])) > tc.tol ||
				math.Abs(r.Total*100-float64(p[2])) > tc.tol {
				t.Errorf("%s %s = %.0f/%.0f/%.0f, paper %v ±%v", tc.dataset, r.SKU,
					r.Operational*100, r.Embodied*100, r.Total*100, p, tc.tol)
			}
		}
		var b strings.Builder
		if err := RenderSavingsTable(&b, "t", rows, tc.paper); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := SavingsTable("nope"); err == nil {
		t.Error("SavingsTable accepted an unknown dataset")
	}
}

func TestSec7(t *testing.T) {
	r, err := Sec7()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.RenewableIncrease-0.026) > 0.003 {
		t.Errorf("renewable increase = %v, want ~0.026", r.RenewableIncrease)
	}
	if math.Abs(r.EfficiencyGain-0.28) > 0.03 {
		t.Errorf("efficiency gain = %v, want ~0.28", r.EfficiencyGain)
	}
	if math.Abs(r.Lifetime.YearsValue()-13) > 0.6 {
		t.Errorf("lifetime = %v years, want ~13", r.Lifetime.YearsValue())
	}
	if math.Abs(r.TCOGap-0.05) > 0.03 {
		t.Errorf("TCO gap = %v, want ~0.05", r.TCOGap)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}
