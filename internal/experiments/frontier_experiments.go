package experiments

// Frontier study: the SKU design-space search (§VIII's "how would you
// design the next GreenSKU" question). The design package enumerates
// the hardware neighbourhood around the paper's platform — CPU bin,
// DDR4-behind-CXL ratio, reused-SSD tiers, optional accelerators —
// scores every feasible candidate on embodied+operational carbon per
// core, portfolio performance per core, and rack density, and keeps
// the Pareto frontier. The paper's five Table IV configurations ride
// along as extra candidates so the artifact explains where each lands:
// on the frontier, or dominated and by what.

import (
	"context"
	"fmt"
	"io"

	"github.com/greensku/gsf/internal/design"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/search"
	"github.com/greensku/gsf/internal/units"
)

// DefaultFrontierOptions searches the stock design space with the
// paper's five Table IV configurations classified against the result.
func DefaultFrontierOptions() design.Options {
	opt := design.DefaultOptions()
	opt.Extra = hw.TableIVConfigs()
	return opt
}

// QuickFrontierOptions trims the space and the simulation budget for
// artifact regeneration and CI: two CPU bins, one CXL corner, one
// accelerator option, and short knee searches. The verdicts keep their
// meaning — the trimmed space still straddles the paper's designs.
func QuickFrontierOptions() design.Options {
	opt := DefaultFrontierOptions()
	opt.Space = search.Space{
		CPUs:            []hw.CPUSpec{hw.Genoa, hw.Bergamo},
		LocalDIMMCounts: []int{12},
		LocalDIMMGBs:    []units.GB{64, 96},
		CXLDIMMCounts:   []int{0, 8},
		NewSSDCounts:    []int{3},
		ReusedSSDCounts: []int{0},
		GPUOptions:      []search.GPUOption{{}, {Spec: hw.L4, Count: 2}},
	}
	opt.Perf.Base.Requests = 1500
	opt.Perf.KneeLo, opt.Perf.KneeHi, opt.Perf.KneeTol = 0.5, 0.9, 0.1
	return opt
}

// FrontierResult is the study output: the searched frontier plus the
// paper-SKU verdicts.
type FrontierResult struct {
	design.Result
}

// Frontier runs the design-space search.
func Frontier(opt design.Options) (FrontierResult, error) {
	return FrontierContext(context.Background(), opt)
}

// FrontierContext is Frontier with cancellation; candidate evaluation
// fans out on the evaluation engine.
func FrontierContext(ctx context.Context, opt design.Options) (FrontierResult, error) {
	res, err := design.Search(ctx, opt)
	if err != nil {
		return FrontierResult{}, err
	}
	return FrontierResult{Result: res}, nil
}

// Render writes the frontier and the paper-SKU verdicts as one table.
func (r FrontierResult) Render(w io.Writer, title string) error {
	t := report.Table{
		Title:  title,
		Header: []string{"kind", "sku", "kgCO2e/core", "perf/core", "cores/rack", "verdict"},
	}
	for _, p := range r.Frontier {
		t.AddRow("frontier", p.SKU.Name,
			fmt.Sprintf("%.2f", p.Obj.CarbonPerCore),
			fmt.Sprintf("%.3f", p.Obj.PerfPerCore),
			fmt.Sprintf("%.0f", p.Obj.CoresPerRack),
			"non-dominated")
	}
	for _, v := range r.Verdicts {
		verdict := "on frontier"
		if !v.OnFrontier {
			verdict = "dominated by " + v.DominatedBy
		}
		t.AddRow("paper", v.Point.SKU.Name,
			fmt.Sprintf("%.2f", v.Point.Obj.CarbonPerCore),
			fmt.Sprintf("%.3f", v.Point.Obj.PerfPerCore),
			fmt.Sprintf("%.0f", v.Point.Obj.CoresPerRack),
			verdict)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  %d candidates under %s at %.3f kgCO2e/kWh, %d on the frontier\n",
		r.Candidates, r.Dataset, float64(r.CI), len(r.Frontier))
	return err
}

// CSVRows renders the study for the artifact file: frontier rows
// first (ascending carbon), then one verdict row per paper SKU — the
// explanation artifact for where each Table IV design lands.
func (r FrontierResult) CSVRows() ([]string, [][]string) {
	header := []string{"kind", "sku", "carbon_per_core_kgco2e", "perf_per_core",
		"cores_per_rack", "on_frontier", "dominated_by"}
	rows := make([][]string, 0, len(r.Frontier)+len(r.Verdicts))
	row := func(kind string, p design.Point, on bool, dom string) []string {
		return []string{kind, p.SKU.Name,
			fmt.Sprintf("%.4f", p.Obj.CarbonPerCore),
			fmt.Sprintf("%.4f", p.Obj.PerfPerCore),
			fmt.Sprintf("%.0f", p.Obj.CoresPerRack),
			fmt.Sprintf("%v", on), dom}
	}
	for _, p := range r.Frontier {
		rows = append(rows, row("frontier", p, true, ""))
	}
	for _, v := range r.Verdicts {
		rows = append(rows, row("paper", v.Point, v.OnFrontier, v.DominatedBy))
	}
	return header, rows
}
