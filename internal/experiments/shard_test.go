package experiments

// Byte-identity proofs for the sharded replay option: routing the
// packing study and the allocation benchmark through the pool-sharded
// multi-pool pipeline (Shards > 1) must change nothing but wall-clock
// time. Timing fields are zeroed before comparing; everything else is
// serialized and compared byte for byte.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/greensku/gsf/internal/alloc"
)

// marshalForDiff serializes a result with its timing fields already
// zeroed by the caller.
func marshalForDiff(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAllocSweepBenchShardedByteIdentical(t *testing.T) {
	base := AllocBenchOptions{
		Traces:          2,
		ServersPerClass: 40,
		Policy:          alloc.BestFit,
	}
	plain, err := AllocSweepBench(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 2
	shardRes, err := AllocSweepBench(context.Background(), sharded)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.DecisionIdentical || !shardRes.DecisionIdentical {
		t.Fatalf("decision identity lost: plain=%v sharded=%v",
			plain.DecisionIdentical, shardRes.DecisionIdentical)
	}
	// Timing fields and the echoed shard count are the only fields
	// allowed to differ.
	plain.IndexedSeconds, plain.ReferenceSeconds, plain.Speedup, plain.Shards = 0, 0, 0, 0
	shardRes.IndexedSeconds, shardRes.ReferenceSeconds, shardRes.Speedup, shardRes.Shards = 0, 0, 0, 0
	pb, sb := marshalForDiff(t, plain), marshalForDiff(t, shardRes)
	if !bytes.Equal(pb, sb) {
		t.Fatalf("sharded alloc bench output differs:\nplain   %s\nsharded %s", pb, sb)
	}
}

func TestPackingShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("packing study is slow; covered by the full run")
	}
	opt := DefaultPackingOptions()
	opt.Traces = 2
	plain, err := Packing(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Shards = 2
	sharded, err := Packing(opt)
	if err != nil {
		t.Fatal(err)
	}
	pb, sb := marshalForDiff(t, plain), marshalForDiff(t, sharded)
	if !bytes.Equal(pb, sb) {
		t.Fatalf("sharded packing output differs:\nplain   %s\nsharded %s", pb, sb)
	}
}
