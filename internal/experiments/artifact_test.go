package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestWriteArtifacts(t *testing.T) {
	dir := t.TempDir()
	written, err := WriteArtifacts(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != len(ArtifactFiles) {
		t.Fatalf("wrote %d files, want %d", len(written), len(ArtifactFiles))
	}
	for _, name := range ArtifactFiles {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact file %s: %v", name, err)
		}
	}

	// Table_VIII.csv: four SKU rows with fractional savings.
	data, err := os.ReadFile(filepath.Join(dir, "Table_VIII.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 {
		t.Fatalf("Table_VIII.csv has %d lines, want header + 4 rows", len(lines))
	}
	last := strings.Split(lines[4], ",")
	if last[0] != "GreenSKU-Full" {
		t.Fatalf("last row = %v, want GreenSKU-Full", last)
	}
	total, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	// Artifact: 26% total savings for GreenSKU-Full (open data).
	if total < 0.22 || total > 0.31 {
		t.Fatalf("GreenSKU-Full total savings = %v, want ~0.26", total)
	}

	// Figure_12.csv parses and has three SKU columns.
	data, err = os.ReadFile(filepath.Join(dir, "Figure_12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 {
		t.Fatalf("Figure_12.csv has %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "GreenSKU-Full") {
		t.Fatalf("header missing SKU columns: %s", lines[0])
	}

	// Savings summaries mention the artifact reference values.
	data, err = os.ReadFile(filepath.Join(dir, "cluster_savings.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "14%") {
		t.Errorf("cluster_savings.txt missing artifact reference: %s", data)
	}
	data, err = os.ReadFile(filepath.Join(dir, "dc_savings.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "7%") {
		t.Errorf("dc_savings.txt missing artifact reference: %s", data)
	}
}
