package experiments

// Artifact outputs: the paper's artifact (Appendix A, Table VII)
// produces three deliverables from its notebook — the last columns of
// Table VIII as CSV, the Fig. 12 series, and the cluster/datacenter
// savings summaries. WriteArtifacts regenerates the same files from
// this reproduction.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"github.com/greensku/gsf/internal/report"
)

// ArtifactFiles are the outputs of Table VII, in the artifact's naming.
var ArtifactFiles = []string{
	"Table_VIII.csv",
	"Figure_12.csv",
	"cluster_savings.txt",
	"dc_savings.txt",
	"Dynamic_CI.csv",
	"Frontier.csv",
}

// WriteArtifacts regenerates the artifact's output files into dir and
// returns the paths written. quick trims the carbon-intensity sweep.
func WriteArtifacts(dir string, quick bool) ([]string, error) {
	return WriteArtifactsContext(context.Background(), dir, quick)
}

// WriteArtifactsContext is WriteArtifacts with cancellation; the
// underlying carbon-intensity sweep runs on the evaluation engine.
func WriteArtifactsContext(ctx context.Context, dir string, quick bool) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string

	// Table_VIII.csv: the savings columns under the open dataset.
	rows, err := SavingsTable("open-source")
	if err != nil {
		return nil, err
	}
	tablePath := filepath.Join(dir, "Table_VIII.csv")
	f, err := os.Create(tablePath)
	if err != nil {
		return nil, err
	}
	csvRows := make([][]string, 0, len(rows))
	for _, r := range rows {
		csvRows = append(csvRows, []string{
			r.SKU,
			fmt.Sprintf("%.3f", r.Operational),
			fmt.Sprintf("%.3f", r.Embodied),
			fmt.Sprintf("%.3f", r.Total),
		})
	}
	err = report.WriteCSV(f, []string{"sku", "operational_savings", "embodied_savings", "total_savings"}, csvRows)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	written = append(written, tablePath)

	// Figure_12.csv + savings summaries from the open-data CI sweep.
	opt := DefaultCISweepOptions("open-source")
	if quick {
		opt.CIs = opt.CIs[:4]
	}
	sweep, err := CISweepContext(ctx, opt)
	if err != nil {
		return nil, err
	}
	figPath := filepath.Join(dir, "Figure_12.csv")
	f, err = os.Create(figPath)
	if err != nil {
		return nil, err
	}
	header := []string{"carbon_intensity_kg_per_kwh", "GreenSKU-Efficient", "GreenSKU-CXL", "GreenSKU-Full"}
	figRows := make([][]string, 0, len(sweep.CIs))
	for i, ci := range sweep.CIs {
		figRows = append(figRows, []string{
			fmt.Sprintf("%.3f", float64(ci)),
			fmt.Sprintf("%.4f", sweep.Savings["GreenSKU-Efficient"][i]),
			fmt.Sprintf("%.4f", sweep.Savings["GreenSKU-CXL"][i]),
			fmt.Sprintf("%.4f", sweep.Savings["GreenSKU-Full"][i]),
		})
	}
	err = report.WriteCSV(f, header, figRows)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	written = append(written, figPath)

	clusterPath := filepath.Join(dir, "cluster_savings.txt")
	msg := fmt.Sprintf("average cluster-level savings: %.1f%% (artifact reports 14%%)\n",
		sweep.AvgClusterSavings*100)
	if err := os.WriteFile(clusterPath, []byte(msg), 0o644); err != nil {
		return nil, err
	}
	written = append(written, clusterPath)

	dcPath := filepath.Join(dir, "dc_savings.txt")
	msg = fmt.Sprintf("overall data center-level savings: %.1f%% (artifact reports 7%%)\n",
		sweep.DCSavings*100)
	if err := os.WriteFile(dcPath, []byte(msg), 0o644); err != nil {
		return nil, err
	}
	written = append(written, dcPath)

	// Dynamic_CI.csv: the temporal-scheduling extension study.
	dynOpt := DefaultDynCIOptions()
	if quick {
		dynOpt.Traces = 6
	}
	dyn, err := DynCIContext(ctx, dynOpt)
	if err != nil {
		return nil, err
	}
	dynPath := filepath.Join(dir, "Dynamic_CI.csv")
	f, err = os.Create(dynPath)
	if err != nil {
		return nil, err
	}
	dynHeader, dynRows := dyn.CSVRows()
	err = report.WriteCSV(f, dynHeader, dynRows)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	written = append(written, dynPath)

	// Frontier.csv: the design-space search with the paper's five SKUs
	// classified against the frontier.
	frontOpt := DefaultFrontierOptions()
	if quick {
		frontOpt = QuickFrontierOptions()
	}
	front, err := FrontierContext(ctx, frontOpt)
	if err != nil {
		return nil, err
	}
	frontPath := filepath.Join(dir, "Frontier.csv")
	f, err = os.Create(frontPath)
	if err != nil {
		return nil, err
	}
	frontHeader, frontRows := front.CSVRows()
	err = report.WriteCSV(f, frontHeader, frontRows)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	written = append(written, frontPath)
	return written, nil
}
