package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifact files under testdata/golden")

// TestArtifactsMatchGolden pins the exact bytes of every artifact file
// (quick mode). The pipeline is deterministic — fixed trace seeds,
// fixed CI grid — so any byte drift is a behaviour change that must be
// reviewed and then blessed with:
//
//	go test ./internal/experiments -run TestArtifactsMatchGolden -update
func TestArtifactsMatchGolden(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteArtifacts(dir, true); err != nil {
		t.Fatal(err)
	}
	goldenDir := filepath.Join("testdata", "golden")
	if *updateGolden {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range ArtifactFiles {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join(goldenDir, name)
		if *updateGolden {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s drifted from golden copy.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
}
