package experiments

// Dynamic-CI study: the carbon-aware temporal-scheduling extension.
// The paper evaluates GreenSKUs at fixed per-region carbon
// intensities; real grids swing diurnally, and delay-tolerant VMs can
// ride that swing. This family shifts (and optionally suspends)
// deferrable VMs against a diurnal signal and reports the operational
// emissions each policy buys, the re-timing it took, and whether the
// demand concentration it causes stays inside the latency SLO budget.

import (
	"context"
	"fmt"
	"io"
	"math"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/gridci"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// DynCIOptions sizes the dynamic-CI scheduling study.
type DynCIOptions struct {
	// Traces is how many deferrable-annotated production-like traces
	// to run (the suite's 35 operating points, capped here).
	Traces  int
	Dataset string
	// SKU supplies the per-core power draw attributed to the workload.
	SKU hw.SKU
	// DeferrableFrac and MeanSlackHours annotate the traces.
	DeferrableFrac float64
	MeanSlackHours float64
	// Signal is the grid intensity; nil uses a diurnal cycle at the
	// dataset's default CI with a 60% swing.
	Signal *gridci.Signal
	// StepHours is the scheduler granularity (default 1h).
	StepHours float64
	// SLOBudget is the tolerated fraction of the timeline above the
	// queueing knee (default 0.05).
	SLOBudget float64
}

// DefaultDynCIOptions runs all 35 operating points with GreenSKU-Full
// under the open dataset.
func DefaultDynCIOptions() DynCIOptions {
	return DynCIOptions{
		Traces:         35,
		Dataset:        "open-source",
		SKU:            hw.GreenSKUFull(),
		DeferrableFrac: 0.35,
		MeanSlackHours: 12,
	}
}

// DynCIPolicyRow aggregates one scheduling policy across the suite.
type DynCIPolicyRow struct {
	Policy string
	// Operational is the suite-total workload-attributed operational
	// emissions under the signal.
	Operational units.KgCO2e
	// SavingsVsStatic is the fractional reduction against the static
	// baseline.
	SavingsVsStatic float64
	// Shifted/Suspended count re-timed VMs; DelayHours/SuspendedHours
	// total the re-timing applied.
	Shifted, Suspended         int
	DelayHours, SuspendedHours float64
	// ViolationFrac is the mean fraction of the timeline the shifted
	// demand spends above the queueing knee; WithinBudget requires
	// every trace inside the budget.
	ViolationFrac float64
	WithinBudget  bool
}

// DynCIResult is the study output.
type DynCIResult struct {
	Signal   string
	KneeFrac float64
	PerCoreW float64
	Rows     []DynCIPolicyRow
}

// DynCI runs the dynamic-CI scheduling study.
func DynCI(opt DynCIOptions) (DynCIResult, error) {
	return DynCIContext(context.Background(), opt)
}

// dynCITraceRun is one (trace, policy) cell.
type dynCITraceRun struct {
	op            float64
	shifted       int
	suspended     int
	delayHours    float64
	suspendHours  float64
	violationFrac float64
	withinBudget  bool
}

// DynCIContext runs the study on the evaluation engine: the queueing
// knee is searched once and shared, then the per-trace schedules fan
// across workers.
func DynCIContext(ctx context.Context, opt DynCIOptions) (DynCIResult, error) {
	var out DynCIResult
	d, ok := carbondata.Datasets()[opt.Dataset]
	if !ok {
		return out, fmt.Errorf("experiments: unknown dataset %q", opt.Dataset)
	}
	m, err := carbon.New(d)
	if err != nil {
		return out, err
	}
	sig := opt.Signal
	if sig == nil {
		sig = gridci.Diurnal(gridci.DiurnalOptions{
			Name: "diurnal-default", Mean: d.DefaultCI, Swing: 0.6,
		})
	}
	if err := sig.Validate(); err != nil {
		return out, err
	}
	out.Signal = sig.Name

	// Workload-attributed per-core power: the SKU's rack power (server
	// draw plus rack overheads) amortised over its cores.
	rack, err := m.Rack(opt.SKU)
	if err != nil {
		return out, err
	}
	if rack.Cores == 0 {
		return out, fmt.Errorf("experiments: SKU %s fits zero cores per rack", opt.SKU.Name)
	}
	perCore := units.Watts(float64(rack.Power) / float64(rack.Cores))
	out.PerCoreW = float64(perCore)

	// One knee search, shared by every SLO account.
	knee, err := gridci.ResolveKnee(ctx, gridci.SLOConfig{Seed: 20240801})
	if err != nil {
		return out, err
	}
	out.KneeFrac = knee

	n := opt.Traces
	if n <= 0 || n > 35 {
		n = 35
	}
	policies := []gridci.Policy{gridci.NoShift, gridci.ShiftToTrough, gridci.ShiftAndSuspend}
	runs, err := engine.Collect(engine.Map(ctx, 0, n,
		func(ctx context.Context, i int) ([]dynCITraceRun, error) {
			tr, err := dynCITrace(i, opt)
			if err != nil {
				return nil, err
			}
			// Size the cluster so the static trace sits exactly at the
			// knee: violations then measure only what the re-timing's
			// demand concentration adds.
			capacity := int(math.Ceil(float64(trace.Summarise(tr).PeakCoreDmd) / knee))
			cells := make([]dynCITraceRun, len(policies))
			for j, pol := range policies {
				sch, err := gridci.Schedule(tr, gridci.ScheduleConfig{
					Signal: sig, Policy: pol, StepHours: opt.StepHours,
				})
				if err != nil {
					return nil, err
				}
				slo, err := gridci.AccountSLO(ctx, sch.Trace, capacity, gridci.SLOConfig{
					KneeFrac: knee, Budget: opt.SLOBudget,
				})
				if err != nil {
					return nil, err
				}
				cells[j] = dynCITraceRun{
					op:            float64(gridci.OperationalEmissions(sch, sig, perCore)),
					shifted:       sch.Report.Shifted,
					suspended:     sch.Report.Suspended,
					delayHours:    sch.Report.DelayHours,
					suspendHours:  sch.Report.SuspendedHours,
					violationFrac: slo.ViolationFrac,
					withinBudget:  slo.WithinBudget,
				}
			}
			return cells, nil
		}))
	if err != nil {
		return out, err
	}

	out.Rows = make([]DynCIPolicyRow, len(policies))
	for j, pol := range policies {
		row := DynCIPolicyRow{Policy: pol.String(), WithinBudget: true}
		for _, cells := range runs {
			c := cells[j]
			row.Operational += units.KgCO2e(c.op)
			row.Shifted += c.shifted
			row.Suspended += c.suspended
			row.DelayHours += c.delayHours
			row.SuspendedHours += c.suspendHours
			row.ViolationFrac += c.violationFrac
			row.WithinBudget = row.WithinBudget && c.withinBudget
		}
		row.ViolationFrac /= float64(len(runs))
		out.Rows[j] = row
	}
	static := float64(out.Rows[0].Operational)
	if static > 0 {
		for j := range out.Rows {
			out.Rows[j].SavingsVsStatic = 1 - float64(out.Rows[j].Operational)/static
		}
	}
	return out, nil
}

// dynCITrace regenerates suite operating point i with deferrable
// annotations switched on. Fresh seeds (distinct from the production
// suite's) keep this family's traces independent of the paper-table
// reproductions.
func dynCITrace(i int, opt DynCIOptions) (trace.Trace, error) {
	p := trace.DefaultParams(fmt.Sprintf("dynci-%02d", i), 20240800+uint64(i)*6151)
	p.HorizonHours = 24 * 7
	p.ArrivalsPerHour = 16 + float64(i%7)*4
	p.MeanLifetimeHours = 20 + float64(i%5)*8
	p.MeanMaxMemFrac = 0.42 + 0.02*float64(i%9)
	p.DeferrableFrac = opt.DeferrableFrac
	p.MeanSlackHours = opt.MeanSlackHours
	return trace.Generate(p)
}

// Render writes the study as a policy table.
func (r DynCIResult) Render(w io.Writer, title string) error {
	t := report.Table{
		Title: title,
		Header: []string{"policy", "op kgCO2e", "vs static", "shifted", "suspended",
			"delay h", "paused h", "SLO violation", "in budget"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Policy,
			fmt.Sprintf("%.1f", float64(row.Operational)),
			report.Pct(row.SavingsVsStatic),
			fmt.Sprintf("%d", row.Shifted),
			fmt.Sprintf("%d", row.Suspended),
			fmt.Sprintf("%.0f", row.DelayHours),
			fmt.Sprintf("%.0f", row.SuspendedHours),
			report.Pct(row.ViolationFrac),
			fmt.Sprintf("%v", row.WithinBudget),
		)
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  signal %s, queueing knee at %.2f of capacity, %.1f W/core attributed\n",
		r.Signal, r.KneeFrac, r.PerCoreW)
	return err
}

// CSVRows renders the study for the artifact file.
func (r DynCIResult) CSVRows() ([]string, [][]string) {
	header := []string{"policy", "operational_kgco2e", "savings_vs_static",
		"shifted_vms", "suspended_vms", "delay_hours", "suspended_hours",
		"slo_violation_frac", "within_slo_budget"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Policy,
			fmt.Sprintf("%.3f", float64(row.Operational)),
			fmt.Sprintf("%.4f", row.SavingsVsStatic),
			fmt.Sprintf("%d", row.Shifted),
			fmt.Sprintf("%d", row.Suspended),
			fmt.Sprintf("%.2f", row.DelayHours),
			fmt.Sprintf("%.2f", row.SuspendedHours),
			fmt.Sprintf("%.4f", row.ViolationFrac),
			fmt.Sprintf("%v", row.WithinBudget),
		})
	}
	return header, rows
}
