package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// quickDynCI runs the study at artifact quick-mode scale.
func quickDynCI(t *testing.T) DynCIResult {
	t.Helper()
	opt := DefaultDynCIOptions()
	opt.Traces = 6
	r, err := DynCI(opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDynCIShiftingReducesEmissionsWithinBudget(t *testing.T) {
	r := quickDynCI(t)
	if len(r.Rows) != 3 {
		t.Fatalf("got %d policy rows, want 3", len(r.Rows))
	}
	static, shift, both := r.Rows[0], r.Rows[1], r.Rows[2]
	if static.Policy != "static" || shift.Policy != "shift" || both.Policy != "shift+suspend" {
		t.Fatalf("unexpected policy order: %s, %s, %s", static.Policy, shift.Policy, both.Policy)
	}
	// The static baseline neither moves work nor saves anything.
	if static.Shifted != 0 || static.Suspended != 0 || static.SavingsVsStatic != 0 {
		t.Errorf("static row re-timed work: %+v", static)
	}
	// Temporal shifting must buy operational savings...
	if shift.Operational >= static.Operational || shift.SavingsVsStatic <= 0 {
		t.Errorf("shifting saved nothing: static %v, shift %v", static.Operational, shift.Operational)
	}
	// ...suspension on top must not give them back...
	if both.Operational > shift.Operational {
		t.Errorf("suspend raised emissions over shift-only: %v > %v", both.Operational, shift.Operational)
	}
	// ...and the demand concentration must stay inside the SLO budget.
	for _, row := range r.Rows {
		if !row.WithinBudget {
			t.Errorf("%s: SLO budget exceeded (violation frac %.4f)", row.Policy, row.ViolationFrac)
		}
	}
	if shift.Shifted == 0 || shift.DelayHours <= 0 {
		t.Errorf("shift row reports no re-timing: %+v", shift)
	}
	if both.Suspended == 0 || both.SuspendedHours <= 0 {
		t.Errorf("suspend row reports no pauses: %+v", both)
	}
}

func TestDynCIDeterministic(t *testing.T) {
	a, b := quickDynCI(t), quickDynCI(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("dynamic-CI study not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestDynCIRender(t *testing.T) {
	r := quickDynCI(t)
	var buf bytes.Buffer
	if err := r.Render(&buf, "Dynamic CI"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static", "shift+suspend", "queueing knee"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("render output missing %q:\n%s", want, buf.String())
		}
	}
	if _, err := DynCI(DynCIOptions{Dataset: "no-such-dataset"}); err == nil {
		t.Error("DynCI accepted an unknown dataset")
	}
}
