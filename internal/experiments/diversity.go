package experiments

// SKU-diversity study (§II design goal D2): cloud providers must limit
// how many SKU types they deploy, because every option adds operational
// complexity and buffer fragmentation. This experiment quantifies what
// a second GreenSKU type actually buys: it sizes (a) a cluster with
// GreenSKU-Full alone and (b) a cluster deploying GreenSKU-Full plus
// GreenSKU-Efficient, with each VM routed to the most carbon-efficient
// SKU that adopts it, and compares the savings.

import (
	"context"
	"fmt"
	"io"

	"github.com/greensku/gsf/internal/adoption"
	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/cluster"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/trace"
)

// DiversityResult compares one- and two-GreenSKU deployments.
type DiversityResult struct {
	SingleMix     cluster.Mix
	SingleSavings float64
	MultiMix      cluster.MultiMix
	MultiSavings  float64
	// ExtraSavings is what the second SKU type buys.
	ExtraSavings float64
}

// Diversity runs the study on a production-like trace under the open
// dataset.
func Diversity() (DiversityResult, error) {
	return DiversityContext(context.Background())
}

// DiversityContext runs the study on the evaluation engine: the two
// GreenSKUs' performance profiles are computed in parallel, and the
// sizing searches honour cancellation.
func DiversityContext(ctx context.Context) (DiversityResult, error) {
	var out DiversityResult
	d := carbondata.OpenSource()
	m, err := carbon.New(d)
	if err != nil {
		return out, err
	}
	base := hw.BaselineGen3()
	full := hw.GreenSKUFull()
	eff := hw.GreenSKUEfficient()

	basePC := map[int]carbon.PerCore{}
	for gen := 1; gen <= 3; gen++ {
		pc, err := m.PerCore(hw.BaselineForGeneration(gen), d.DefaultCI)
		if err != nil {
			return out, err
		}
		basePC[gen] = pc
	}
	greens := []hw.SKU{full, eff} // ordered by per-core carbon: Full is greener
	tables, err := engine.Collect(engine.Map(ctx, 0, len(greens),
		func(ctx context.Context, i int) (adoption.Table, error) {
			factors, err := perf.TableIIIContext(ctx, greens[i], perf.DefaultOptions())
			if err != nil {
				return adoption.Table{}, err
			}
			greenPC, err := m.PerCore(greens[i], d.DefaultCI)
			if err != nil {
				return adoption.Table{}, err
			}
			return adoption.Build(factors, greenPC, basePC)
		}))
	if err != nil {
		return out, err
	}

	p := trace.DefaultParams("diversity", 20240408)
	p.HorizonHours = 24 * 7
	tr, err := trace.Generate(p)
	if err != nil {
		return out, err
	}

	classOf := func(sku hw.SKU, green bool) alloc.ServerClass {
		return alloc.ServerClass{Name: sku.Name, Cores: sku.Cores(), Memory: sku.TotalDRAMGB(), LocalMemory: sku.LocalDRAMGB(), Green: green}
	}
	baseClass := classOf(base, false)
	greenClasses := []alloc.ServerClass{classOf(full, true), classOf(eff, true)}

	// (a) single-SKU cluster: GreenSKU-Full only.
	single := &cluster.Sizer{Base: baseClass, Green: greenClasses[0], Policy: alloc.BestFit, Decide: tables[0].Decider()}
	out.SingleMix, err = single.MixedSizeContext(ctx, tr)
	if err != nil {
		return out, err
	}

	// (b) two-SKU cluster: route each VM to the first (greenest) pool
	// whose adoption table accepts it.
	multiDecide := func(vm trace.VM) alloc.MultiDecision {
		scales := make([]float64, len(tables))
		for i, table := range tables {
			dec := table.Decider()(vm)
			if dec.Adopt {
				scales[i] = dec.Scale
			}
		}
		return alloc.MultiDecision{Scales: scales}
	}
	multi := &cluster.MultiSizer{Base: baseClass, Greens: greenClasses, Policy: alloc.BestFit, Decide: multiDecide}
	out.MultiMix, err = multi.SizeContext(ctx, tr)
	if err != nil {
		return out, err
	}

	perCoreOf := func(sku hw.SKU) (carbon.PerCore, error) { return m.PerCore(sku, d.DefaultCI) }
	fullPC, err := perCoreOf(full)
	if err != nil {
		return out, err
	}
	effPC, err := perCoreOf(eff)
	if err != nil {
		return out, err
	}
	basePCIn := cluster.SavingsInput{Class: baseClass, PerCore: basePC[3]}
	out.SingleSavings = cluster.Savings(out.SingleMix, basePCIn,
		cluster.SavingsInput{Class: greenClasses[0], PerCore: fullPC})
	out.MultiSavings = cluster.MultiSavings(out.MultiMix, basePCIn, []cluster.SavingsInput{
		{Class: greenClasses[0], PerCore: fullPC},
		{Class: greenClasses[1], PerCore: effPC},
	})
	out.ExtraSavings = out.MultiSavings - out.SingleSavings
	return out, nil
}

// Render writes the comparison.
func (r DiversityResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "SKU diversity (D2): does a second GreenSKU type pay for its complexity?",
		Header: []string{"deployment", "baseline", "green servers", "cluster savings"},
	}
	t.AddRow("GreenSKU-Full only",
		fmt.Sprint(r.SingleMix.NBase), fmt.Sprint(r.SingleMix.NGreen), report.Pct(r.SingleSavings))
	t.AddRow("GreenSKU-Full + GreenSKU-Efficient",
		fmt.Sprint(r.MultiMix.NBase),
		fmt.Sprintf("%d + %d", r.MultiMix.NGreens[0], r.MultiMix.NGreens[1]),
		report.Pct(r.MultiSavings))
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  second SKU type adds %+.2f pp of savings (paper deploys few SKU types: D2's complexity rarely pays)\n",
		r.ExtraSavings*100)
	return err
}
