package experiments

// Small-scale checks of the benchmark harness. Speedup magnitudes are
// hardware-dependent (and under the test binary's audit recorder every
// indexed pick is cross-checked against the scan), so these assert
// structure and decision-identity, not timing; cmd/gsfbench enforces
// the speedup gate in CI where auditing is off.

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/greensku/gsf/internal/alloc"
)

func TestAllocSweepBenchSmall(t *testing.T) {
	res, err := AllocSweepBench(context.Background(), AllocBenchOptions{
		Traces:          2,
		ServersPerClass: 40,
		Policy:          alloc.BestFit,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != 2 || res.ServersPerClass != 40 {
		t.Fatalf("options not honoured: %+v", res)
	}
	if !res.DecisionIdentical {
		t.Fatal("indexed and reference allocators diverged")
	}
	if res.Placed == 0 || res.VMs == 0 {
		t.Fatalf("degenerate sweep: %+v", res)
	}
	if res.IndexedSeconds <= 0 || res.ReferenceSeconds <= 0 || res.Speedup <= 0 {
		t.Fatalf("timings not recorded: %+v", res)
	}
	if res.Policy != "best-fit" {
		t.Fatalf("policy label %q", res.Policy)
	}
}

func TestQueueBenchAndArtifactRoundTrip(t *testing.T) {
	q, err := QueueBench(QueueBenchOptions{Servers: 8, Steps: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Points) != 3 {
		t.Fatalf("want 3 curve points, got %d", len(q.Points))
	}
	for i := 1; i < len(q.Points); i++ {
		if q.Points[i].QPS <= q.Points[i-1].QPS {
			t.Fatalf("curve QPS not increasing: %+v", q.Points)
		}
	}

	var buf bytes.Buffer
	art := BenchArtifact{Alloc: AllocBenchResult{Traces: 1, DecisionIdentical: true}, Queueing: q}
	if err := WriteBenchArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	var back BenchArtifact
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if back.Schema != BenchSchema {
		t.Fatalf("schema %q, want %q", back.Schema, BenchSchema)
	}
	if len(back.Queueing.Points) != 3 || !back.Alloc.DecisionIdentical {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}
