package experiments

// Large-fleet allocation benchmark: the ROADMAP's million-server row.
// AllocScaleBench replays a slice of the production suite at a fleet
// size where the struct-of-pointers layout starts to hurt — the
// columnar arm streams each trace from its GSFB binary encoding
// through alloc.SimulateSource (the production replay path), while
// the reference arm replays the materialized trace through
// Config.ReferenceLayout (struct servers + the same treap/segment
// index). The two must stay decision-identical bit for bit; the
// speedup comes from the virgin frontier never materializing servers
// the trace doesn't touch, where the reference layout pays O(fleet)
// to build and audit every pool.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/trace"
)

// AllocScaleOptions sizes the large-fleet benchmark.
type AllocScaleOptions struct {
	// Traces caps how many production-suite traces to replay; 0
	// defaults to 6 (the full 35 at a million servers is CI-hostile
	// on the reference arm, which pays per-trace fleet setup).
	Traces int
	// ServersPerClass is the pool size for both classes; 0 defaults
	// to 1,000,000.
	ServersPerClass int
	Policy          alloc.Policy
}

// AllocScaleResult is one row of the artifact's scale table.
type AllocScaleResult struct {
	Traces            int     `json:"traces"`
	VMs               int     `json:"vms"`
	ServersPerClass   int     `json:"servers_per_class"`
	Policy            string  `json:"policy"`
	ColumnarSeconds   float64 `json:"columnar_seconds"`
	ReferenceSeconds  float64 `json:"reference_seconds"`
	Speedup           float64 `json:"speedup"`
	DecisionIdentical bool    `json:"decision_identical"`
	Placed            int     `json:"placed"`
	Rejected          int     `json:"rejected"`
}

// AllocScaleBench times the columnar streaming replay against the
// reference struct layout at a large fleet size and verifies the two
// produce bit-identical Results trace by trace.
func AllocScaleBench(ctx context.Context, opt AllocScaleOptions) (AllocScaleResult, error) {
	traces, err := trace.ProductionSuite()
	if err != nil {
		return AllocScaleResult{}, err
	}
	nt := opt.Traces
	if nt <= 0 {
		nt = 6
	}
	if nt < len(traces) {
		traces = traces[:nt]
	}
	n := opt.ServersPerClass
	if n <= 0 {
		n = 1000000
	}
	base := hw.BaselineGen3()
	green := hw.GreenSKUFull()
	cfg := alloc.Config{
		Base:   alloc.ServerClass{Name: base.Name, Cores: base.Cores(), Memory: base.TotalDRAMGB(), LocalMemory: base.LocalDRAMGB()},
		NBase:  n,
		Green:  alloc.ServerClass{Name: green.Name, Cores: green.Cores(), Memory: green.TotalDRAMGB(), LocalMemory: green.LocalDRAMGB(), Green: true},
		NGreen: n,
		Policy: opt.Policy, PreferNonEmpty: true,
	}

	// Encode once up front; the columnar arm times decode + replay
	// (the production path), not encode.
	encoded := make([][]byte, len(traces))
	for i := range traces {
		var buf bytes.Buffer
		if err := trace.WriteBinary(&buf, traces[i]); err != nil {
			return AllocScaleResult{}, fmt.Errorf("experiments: encoding %s: %w", traces[i].Name, err)
		}
		encoded[i] = buf.Bytes()
	}

	columnar := make([]alloc.Result, len(traces))
	start := time.Now()
	for i := range traces {
		src, err := trace.NewBinaryReader(bytes.NewReader(encoded[i]))
		if err != nil {
			return AllocScaleResult{}, err
		}
		res, err := alloc.SimulateSource(ctx, src, cfg, benchDecider)
		if err != nil {
			return AllocScaleResult{}, err
		}
		columnar[i] = res
	}
	columnarSec := time.Since(start).Seconds()

	refCfg := cfg
	refCfg.ReferenceLayout = true
	reference := make([]alloc.Result, len(traces))
	start = time.Now()
	for i := range traces {
		res, err := alloc.SimulateContext(ctx, traces[i], refCfg, benchDecider)
		if err != nil {
			return AllocScaleResult{}, err
		}
		reference[i] = res
	}
	referenceSec := time.Since(start).Seconds()

	res := AllocScaleResult{
		Traces:            len(traces),
		ServersPerClass:   n,
		Policy:            cfg.Policy.String(),
		ColumnarSeconds:   columnarSec,
		ReferenceSeconds:  referenceSec,
		DecisionIdentical: true,
	}
	if columnarSec > 0 {
		res.Speedup = referenceSec / columnarSec
	}
	for i := range traces {
		res.VMs += len(traces[i].VMs)
		res.Placed += columnar[i].Placed
		res.Rejected += columnar[i].Rejected
		if !allocResultsIdentical(columnar[i], reference[i]) {
			res.DecisionIdentical = false
		}
	}
	return res, nil
}

// ScaleArtifact is the standalone scale-suite artifact (CI's
// bench-scale upload); the same rows also ride along in
// BenchArtifact.Scale when the alloc suite runs with a scale size.
type ScaleArtifact struct {
	Schema string             `json:"schema"`
	Scale  []AllocScaleResult `json:"scale"`
}

// WriteScaleArtifact encodes the artifact as indented JSON.
func WriteScaleArtifact(w io.Writer, a ScaleArtifact) error {
	if a.Schema == "" {
		a.Schema = BenchSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return fmt.Errorf("experiments: encoding scale artifact: %w", err)
	}
	return nil
}
