package experiments

// Extension experiments: mechanisms the paper describes in prose (or
// defers to future work) that the reproduction implements as full
// substrates — memory tiering, SSD stripe planning, power derating and
// oversubscription, growth-buffer sizing, and the §VIII design-space
// search.

import (
	"fmt"
	"io"

	"github.com/greensku/gsf/internal/analysis"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/growth"
	"github.com/greensku/gsf/internal/harvest"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/memtier"
	"github.com/greensku/gsf/internal/power"
	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/search"
	"github.com/greensku/gsf/internal/storage"
	"github.com/greensku/gsf/internal/units"
)

// MemTier runs the Pond-style tiering study behind GreenSKU-CXL's
// "98% of applications incur <5% slowdown" claim.
func MemTier() (memtier.StudyResult, error) {
	return memtier.Study(20000, 20240403)
}

// RenderMemTier writes the study.
func RenderMemTier(w io.Writer, r memtier.StudyResult) error {
	t := report.Table{
		Title:  "Memory tiering (Pond-style prediction on GreenSKU-CXL)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.AddRow("VMs under 5% slowdown", report.Pct(r.UnderFivePct), "98%")
	t.AddRow("mean untouched memory", report.Pct(r.MeanUntouched), "~50%")
	t.AddRow("memory served from CXL", report.Pct(r.CXLShare), "-")
	t.AddRow("memory of fully-CXL apps", report.Pct(r.EntirelyCXLShare), "~20% of core-hours")
	t.AddRow("p99 VM slowdown", fmt.Sprintf("%.3fx", r.P99Slowdown), "-")
	return t.Render(w)
}

// StoragePlan stripes GreenSKU-Full's reused SSDs against the new-drive
// envelope (§III's RAID mitigation).
func StoragePlan() (storage.ReusePlan, error) {
	return storage.PlanGreenSKUFull()
}

// RenderStoragePlan writes the plan.
func RenderStoragePlan(w io.Writer, plan storage.ReusePlan) error {
	t := report.Table{
		Title:  "Reused-SSD stripe plan (target: new E1.S, 2.3 GB/s & 600 IOPS)",
		Header: []string{"set", "drives", "capacity (TB)", "write GB/s", "IOPS"},
	}
	for i, s := range plan.Sets {
		t.AddRow(fmt.Sprint(i), fmt.Sprint(len(s.Members)),
			fmt.Sprintf("%.0f", s.CapacityTB()),
			fmt.Sprintf("%.1f", s.WriteGBs()), fmt.Sprintf("%.0f", s.IOPS()))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  leftover drives: %d (paper: reuse has no adoption side effects)\n", plan.Leftover)
	return err
}

// PowerStudyResult bundles the derating curve and the rack
// oversubscription check behind §V's power-limit arithmetic.
type PowerStudyResult struct {
	Curve    power.Curve
	Loads    []float64
	Derates  []float64
	RackOver power.OversubscriptionResult
}

// PowerStudy evaluates the default derating curve and a 35-server rack
// of GreenSKU-class servers against the 15 kW cap.
func PowerStudy() (PowerStudyResult, error) {
	c := power.Default()
	r := PowerStudyResult{Curve: c}
	for u := 0.0; u <= 1.0001; u += 0.1 {
		r.Loads = append(r.Loads, u)
		r.Derates = append(r.Derates, c.Derate(u))
	}
	over, err := power.Oversubscription(c, power.AzureLike(), 850, 35, 14500, 5000, 20240405)
	if err != nil {
		return r, err
	}
	r.RackOver = over
	return r, nil
}

// Render writes the power study.
func (r PowerStudyResult) Render(w io.Writer) error {
	if err := report.RenderSeries(w, "SPEC-load derating curve (Table VI: 0.44 at 40%)", "load", "P/TDP",
		[]report.Series{{Name: "derate", X: r.Loads, Y: r.Derates}}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  35-server rack vs 14.5 kW budget: mean %.0f W, p99 %.0f W, breach probability %.4f\n",
		float64(r.RackOver.MeanPower), float64(r.RackOver.P99Power), r.RackOver.BreachProb)
	return err
}

// GrowthStudyResult holds the buffer-sizing sweep.
type GrowthStudyResult struct {
	Results []growth.Result
	Minimal float64
}

// GrowthStudy sweeps buffer fractions and finds the smallest one that
// keeps stockouts under 2% of weeks.
func GrowthStudy() (GrowthStudyResult, error) {
	p := growth.DefaultParams()
	fractions := []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30}
	results, err := growth.SweepBuffers(p, fractions)
	if err != nil {
		return GrowthStudyResult{}, err
	}
	min, err := growth.MinimalBuffer(p, fractions, 0.02)
	if err != nil {
		return GrowthStudyResult{}, err
	}
	return GrowthStudyResult{Results: results, Minimal: min}, nil
}

// Render writes the sweep.
func (r GrowthStudyResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "Growth-buffer sizing (one year, 6-week procurement lead time)",
		Header: []string{"buffer", "stockout weeks", "stockout prob", "mean idle"},
	}
	for _, res := range r.Results {
		t.AddRow(report.Pct(res.BufferFraction), fmt.Sprint(res.StockoutWeeks),
			fmt.Sprintf("%.3f", res.StockoutProb), report.Pct(res.MeanIdleFraction))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "  minimal buffer under 2%% stockout: %s (GSF's buffer component defaults to 15%%)\n",
		report.Pct(r.Minimal))
	return err
}

// LifetimeResult holds the extend-vs-replace comparison per baseline
// generation.
type LifetimeResult struct {
	Studies []analysis.LifetimeStudy
	Gens    []int
}

// Lifetime evaluates extending each deployed generation at age six
// versus replacing it with GreenSKU-Full (§VII-B's discussion of
// lifetime extension as an alternative strategy).
func Lifetime() (LifetimeResult, error) {
	var out LifetimeResult
	for gen := 1; gen <= 3; gen++ {
		st, err := analysis.EvaluateLifetimeExtension("open-source", gen, 6, hw.GreenSKUFull(), 0)
		if err != nil {
			return out, err
		}
		out.Studies = append(out.Studies, st)
		out.Gens = append(out.Gens, gen)
	}
	return out, nil
}

// Render writes the comparison.
func (r LifetimeResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "Lifetime extension vs GreenSKU replacement at CI 0.1 (per delivered Gen3-equivalent core-year)",
		Header: []string{"generation", "extend kgCO2e", "replace kgCO2e", "winner", "break-even CI"},
	}
	for i, st := range r.Studies {
		winner := "extend"
		if st.ReplaceWins {
			winner = "replace"
		}
		t.AddRow(fmt.Sprintf("Gen%d", r.Gens[i]),
			fmt.Sprintf("%.2f", float64(st.Extend.PerCoreYear)),
			fmt.Sprintf("%.2f", float64(st.Replace.PerCoreYear)),
			winner,
			fmt.Sprintf("%.3f", float64(st.BreakEvenCI)))
	}
	return t.Render(w)
}

// DesignSearchResult compares exhaustive and local search over the
// §VIII component space.
type DesignSearchResult struct {
	Exhaustive search.Result
	HillClimb  search.Result
	// HighCI is the optimum at a coal-heavy grid, showing the design
	// shift away from reuse.
	HighCI search.Result
}

// DesignSearch runs the design-space exploration.
func DesignSearch() (DesignSearchResult, error) {
	space := search.DefaultSpace()
	cons := search.DefaultConstraints()
	var out DesignSearchResult
	var err error
	out.Exhaustive, err = search.Exhaustive(space, cons, "open-source", 0)
	if err != nil {
		return out, err
	}
	out.HillClimb, err = search.HillClimb(space, cons, "open-source", 0, 6, 20240406)
	if err != nil {
		return out, err
	}
	out.HighCI, err = search.Exhaustive(space, cons, "open-source", units.CarbonIntensity(0.7))
	if err != nil {
		return out, err
	}
	return out, nil
}

// Render writes the search comparison.
func (r DesignSearchResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "§VIII design-space search (open data)",
		Header: []string{"method", "best design", "per-core kgCO2e", "savings", "designs evaluated"},
	}
	row := func(name string, res search.Result) {
		t.AddRow(name, res.SKU.Name, fmt.Sprintf("%.1f", float64(res.PerCore)),
			report.Pct(res.Savings), fmt.Sprint(res.Evaluated))
	}
	row("exhaustive @ CI 0.1", r.Exhaustive)
	row("hill climb @ CI 0.1", r.HillClimb)
	row("exhaustive @ CI 0.7", r.HighCI)
	return t.Render(w)
}

// HarvestResult sizes the donor pool for a 1000-server GreenSKU-Full
// fleet.
type HarvestResult struct {
	Plan harvest.Plan
}

// Harvest plans the reuse supply chain (§III's decommissioned donors).
func Harvest() (HarvestResult, error) {
	plan, err := harvest.PlanFleet(hw.GreenSKUFull(), 1000, harvest.Donor2018(),
		harvest.DefaultYield(), carbondata.OpenSource())
	if err != nil {
		return HarvestResult{}, err
	}
	return HarvestResult{Plan: plan}, nil
}

// Render writes the harvest plan.
func (r HarvestResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "Harvest plan: 1000 GreenSKU-Fulls from decommissioned 2018 donors",
		Header: []string{"metric", "value"},
	}
	t.AddRow("donor servers required", fmt.Sprint(r.Plan.Donors))
	t.AddRow("bottleneck component", r.Plan.Bottleneck)
	t.AddRow("spare harvested DIMMs", fmt.Sprint(r.Plan.SpareDIMMs))
	t.AddRow("spare harvested SSDs", fmt.Sprint(r.Plan.SpareSSDs))
	t.AddRow("embodied avoided (fleet)", fmt.Sprintf("%.0f tCO2e", float64(r.Plan.AvoidedEmbodied)/1000))
	return t.Render(w)
}
