package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/report"
)

func frontierCSV(t *testing.T, workers int) []byte {
	t.Helper()
	opt := QuickFrontierOptions()
	opt.Workers = workers
	res, err := FrontierContext(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	header, rows := res.CSVRows()
	if err := report.WriteCSV(&buf, header, rows); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFrontierSerialMatchesParallel pins the determinism contract CI
// enforces under -race: the frontier artifact is byte-identical
// whether candidates are evaluated serially or fanned across engine
// workers.
func TestFrontierSerialMatchesParallel(t *testing.T) {
	serial := frontierCSV(t, 1)
	parallel := frontierCSV(t, 0)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("frontier artifact depends on worker count:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestFrontierClassifiesPaperSKUs: the artifact must carry one verdict
// row per Table IV configuration, each either on the frontier or
// naming its dominator.
func TestFrontierClassifiesPaperSKUs(t *testing.T) {
	res, err := Frontier(QuickFrontierOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Verdicts) != 5 {
		t.Fatalf("%d verdicts, want the paper's 5", len(res.Verdicts))
	}
	_, rows := res.CSVRows()
	paper := 0
	for _, r := range rows {
		if r[0] != "paper" {
			continue
		}
		paper++
		if r[5] == "true" && r[6] != "" {
			t.Errorf("%s: on frontier yet dominated by %q", r[1], r[6])
		}
		if r[5] == "false" && r[6] == "" {
			t.Errorf("%s: dominated but no dominator named", r[1])
		}
	}
	if paper != 5 {
		t.Fatalf("%d paper rows in the CSV, want 5", paper)
	}
	var b strings.Builder
	if err := res.Render(&b, "frontier"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "on the frontier") {
		t.Error("render footer missing the frontier summary")
	}
}
