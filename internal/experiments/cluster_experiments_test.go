package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/units"
)

func TestPackingSmall(t *testing.T) {
	opt := DefaultPackingOptions()
	opt.Traces = 4 // keep the unit test quick; the bench runs all 35
	r, err := Packing(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerTrace) != 4 {
		t.Fatalf("got %d traces, want 4", len(r.PerTrace))
	}
	var coreGap, memGap float64
	for i := range r.BaseCore {
		coreGap += r.BaseCore[i] - r.GreenCore[i]
		memGap += r.GreenMem[i] - r.BaseMem[i]
	}
	// Fig. 9's claim: the baseline packs cores tighter (its higher
	// memory:core ratio leaves core headroom), the GreenSKU packs
	// memory tighter.
	if coreGap <= 0 {
		t.Errorf("baseline should have higher core packing density (gap %v)", coreGap)
	}
	if memGap <= 0 {
		t.Errorf("GreenSKU should have higher memory packing density (gap %v)", memGap)
	}
	// Fig. 10's claim: nearly all green-server observations fit in
	// local DDR5.
	if r.LocalFit < 0.9 {
		t.Errorf("local-DDR5 fit fraction = %v, want > 0.9", r.LocalFit)
	}
	var b strings.Builder
	if err := r.RenderFig9(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.RenderFig10(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "CDF") {
		t.Error("packing render missing CDF output")
	}
}

func TestCISweepShape(t *testing.T) {
	opt := DefaultCISweepOptions("paper-calibrated")
	opt.CIs = []units.CarbonIntensity{0.01, 0.1, 0.4}
	r, err := CISweep(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Savings) != 3 {
		t.Fatalf("sweep covers %d SKUs, want 3", len(r.Savings))
	}
	full := r.Savings["GreenSKU-Full"]
	eff := r.Savings["GreenSKU-Efficient"]
	// Fig. 11's crossover: at low carbon intensity reuse wins
	// (GreenSKU-Full best); at high intensity the efficient CPU wins.
	if full[0] <= eff[0] {
		t.Errorf("at low CI, GreenSKU-Full (%v) should beat Efficient (%v)", full[0], eff[0])
	}
	if eff[2] <= full[2] {
		t.Errorf("at high CI, GreenSKU-Efficient (%v) should beat Full (%v)", eff[2], full[2])
	}
	for name, vals := range r.Savings {
		for i, v := range vals {
			if v <= 0 || v >= 0.5 {
				t.Errorf("%s savings[%d] = %v, want in (0, 0.5) (paper: 6-25%%)", name, i, v)
			}
		}
	}
	if r.AvgClusterSavings <= 0 || r.DCSavings <= 0 || r.DCSavings >= r.AvgClusterSavings {
		t.Errorf("summary savings inconsistent: cluster %v, DC %v", r.AvgClusterSavings, r.DCSavings)
	}
	var b strings.Builder
	if err := r.Render(&b, "Fig. 11"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Azure-europe-north") {
		t.Error("render missing region annotations")
	}
}

func TestInterpolate(t *testing.T) {
	xs := []units.CarbonIntensity{0, 1, 2}
	ys := []float64{0, 10, 20}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1.5, 15}, {3, 20},
	}
	for _, c := range cases {
		if got := interpolate(xs, ys, units.CarbonIntensity(c.x)); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("interpolate(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if got := interpolate(nil, nil, 1); got != 0 {
		t.Errorf("interpolate on empty = %v, want 0", got)
	}
}
