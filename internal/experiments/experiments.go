// Package experiments regenerates every table and figure of the
// paper's evaluation. Each experiment is a function returning a
// structured result plus a renderer, shared by cmd/gsf, the benchmark
// harness, and the EXPERIMENTS.md record.
//
// Index (see DESIGN.md for the full mapping):
//
//	Fig1   datacenter carbon breakdown
//	Fig2   DDR4 failure rates over deployment time
//	Table1 CPU characteristics
//	Sec5   worked example & maintenance numbers
//	Fig7   p95 vs load, GreenSKU-Efficient vs Gen3
//	Table2 DevOps slowdowns
//	Table3 scaling factors
//	Fig8   CXL impact (Moses vs HAProxy)
//	Fig9   packing-density CDFs
//	Fig10  per-server max memory utilisation CDF
//	Table4/Table8  per-core savings (internal/open data)
//	Fig11/Fig12    cluster savings vs carbon intensity
//	Sec7   alternative-strategy equivalents
package experiments

import (
	"fmt"
	"io"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/failure"
	"github.com/greensku/gsf/internal/fleet"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/maintenance"
	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/units"
)

// Fig1Result is the datacenter carbon breakdown at the standard and
// fully renewable energy mixes.
type Fig1Result struct {
	Standard       fleet.Breakdown
	FullyRenewable fleet.Breakdown
}

// Fig1 computes the Fig. 1 breakdown.
func Fig1() (Fig1Result, error) {
	std, err := fleet.Analyze(fleet.Default())
	if err != nil {
		return Fig1Result{}, err
	}
	p := fleet.Default()
	p.RenewableFraction = 1
	ren, err := fleet.Analyze(p)
	if err != nil {
		return Fig1Result{}, err
	}
	return Fig1Result{Standard: std, FullyRenewable: ren}, nil
}

// Render writes the breakdown in the paper's terms.
func (r Fig1Result) Render(w io.Writer) error {
	t := report.Table{
		Title:  "Fig. 1: carbon breakdown of general-purpose datacenters",
		Header: []string{"metric", "standard mix", "100% renewable", "paper (std)"},
	}
	row := func(name string, std, ren float64, paper string) {
		t.AddRow(name, report.Pct(std), report.Pct(ren), paper)
	}
	row("operational share of DC", r.Standard.OpShare, r.FullyRenewable.OpShare, "58%")
	row("compute servers share of DC", r.Standard.ComputeShare, r.FullyRenewable.ComputeShare, "57%")
	row("DRAM share of compute", r.Standard.ComputePartShares["dram"], r.FullyRenewable.ComputePartShares["dram"], "35%")
	row("SSD share of compute", r.Standard.ComputePartShares["ssd"], r.FullyRenewable.ComputePartShares["ssd"], "28%")
	row("CPU share of compute", r.Standard.ComputePartShares["cpu"], r.FullyRenewable.ComputePartShares["cpu"], "24%")
	return t.Render(w)
}

// Fig2Result is the failure-rate series.
type Fig2Result struct {
	Series    failure.Series
	Stability float64
}

// Fig2 samples the DDR4 failure-rate curve over seven years.
func Fig2() (Fig2Result, error) {
	s, err := failure.Sample(failure.DDR4(), 84, 0.12, 20240402)
	if err != nil {
		return Fig2Result{}, err
	}
	return Fig2Result{Series: s, Stability: failure.PlateauStability(s)}, nil
}

// Render writes the raw and smoothed series.
func (r Fig2Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 2: DDR4 AFR plateau stability (last year / year 2) = %.3f (paper: flat, ~1.0)\n", r.Stability); err != nil {
		return err
	}
	return report.RenderSeries(w, "Fig. 2: normalized DDR4 failure rate", "month", "normalized AFR", []report.Series{
		{Name: "raw", X: r.Series.Months, Y: r.Series.Raw},
		{Name: "smoothed", X: r.Series.Months, Y: r.Series.Smooth},
	})
}

// Table1 renders the CPU catalog.
func Table1(w io.Writer) error {
	t := report.Table{
		Title:  "Table I: baseline AMD CPUs vs the efficient Bergamo CPU",
		Header: []string{"CPU", "cores", "max freq (GHz)", "LLC (MiB)", "TDP (W)"},
	}
	for _, c := range hw.CPUCatalog() {
		t.AddRow(c.Name, fmt.Sprint(c.Cores), fmt.Sprintf("%.1f", c.MaxFreqGHz),
			fmt.Sprint(c.LLCMiB), fmt.Sprintf("%.0f", float64(c.TDP)))
	}
	return t.Render(w)
}

// Sec5Example holds §V's worked-example intermediates.
type Sec5Example struct {
	EmbServer   units.KgCO2e
	PowerServer units.Watts
	ServersRack int
	EmbRack     units.KgCO2e
	PowerRack   units.Watts
	OpRack      units.KgCO2e
	TotalRack   units.KgCO2e
	CoresRack   int
	PerCore     units.KgCO2e
}

// Sec5WorkedExample reproduces §V's GreenSKU-CXL calculation.
func Sec5WorkedExample() (Sec5Example, error) {
	m, err := carbon.New(carbondata.WorkedExample())
	if err != nil {
		return Sec5Example{}, err
	}
	sku := hw.GreenSKUCXL()
	srv, err := m.Server(sku)
	if err != nil {
		return Sec5Example{}, err
	}
	rack, err := m.Rack(sku)
	if err != nil {
		return Sec5Example{}, err
	}
	op := m.Operational(rack, m.Data.DefaultCI)
	pc, err := m.PerCore(sku, m.Data.DefaultCI)
	if err != nil {
		return Sec5Example{}, err
	}
	return Sec5Example{
		EmbServer:   srv.Embodied,
		PowerServer: srv.Power,
		ServersRack: rack.ServersPerRack,
		EmbRack:     rack.Embodied,
		PowerRack:   rack.Power,
		OpRack:      op,
		TotalRack:   rack.Embodied + op,
		CoresRack:   rack.Cores,
		PerCore:     pc.Total(),
	}, nil
}

// Render prints measured-vs-paper for every intermediate.
func (e Sec5Example) Render(w io.Writer) error {
	t := report.Table{
		Title:  "§V worked example: GreenSKU-CXL under the open dataset",
		Header: []string{"quantity", "measured", "paper"},
	}
	t.AddRow("E_emb,s (kgCO2e)", fmt.Sprintf("%.0f", float64(e.EmbServer)), "1644")
	t.AddRow("P_s (W)", fmt.Sprintf("%.0f", float64(e.PowerServer)), "403")
	t.AddRow("N_s (servers/rack)", fmt.Sprint(e.ServersRack), "16")
	t.AddRow("E_emb,r (kgCO2e)", fmt.Sprintf("%.0f", float64(e.EmbRack)), "26804")
	t.AddRow("P_r (W)", fmt.Sprintf("%.0f", float64(e.PowerRack)), "6953")
	t.AddRow("E_op,r (kgCO2e)", fmt.Sprintf("%.0f", float64(e.OpRack)), "36547")
	t.AddRow("E_r (kgCO2e)", fmt.Sprintf("%.0f", float64(e.TotalRack)), "63351")
	t.AddRow("N_c,r (cores)", fmt.Sprint(e.CoresRack), "2048")
	t.AddRow("CO2e per core (kg)", fmt.Sprintf("%.1f", float64(e.PerCore)), "31")
	return t.Render(w)
}

// Sec5Maintenance reproduces §V's maintenance numbers.
func Sec5Maintenance() ([]maintenance.Overhead, error) {
	return maintenance.PaperComparison()
}

// RenderMaintenance prints the maintenance comparison.
func RenderMaintenance(w io.Writer, rows []maintenance.Overhead) error {
	t := report.Table{
		Title:  "§V maintenance: out-of-service overheads (paper: AFR 4.8/7.2, repair 3.0/3.6, C_OOS 3.0/2.98)",
		Header: []string{"SKU", "AFR/100srv", "repair rate (FIP)", "C_OOS"},
	}
	for _, o := range rows {
		t.AddRow(o.SKU, fmt.Sprintf("%.1f", o.AFR), fmt.Sprintf("%.1f", o.RepairRate), fmt.Sprintf("%.2f", o.COOS))
	}
	return t.Render(w)
}
