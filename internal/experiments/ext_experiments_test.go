package experiments

import (
	"strings"
	"testing"
)

func TestMemTierExperiment(t *testing.T) {
	r, err := MemTier()
	if err != nil {
		t.Fatal(err)
	}
	if r.UnderFivePct < 0.97 {
		t.Fatalf("under-5%% fraction = %v, want >= 0.97", r.UnderFivePct)
	}
	var b strings.Builder
	if err := RenderMemTier(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "98%") {
		t.Error("render missing paper reference")
	}
}

func TestStoragePlanExperiment(t *testing.T) {
	plan, err := StoragePlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sets) != 4 || plan.Leftover != 0 {
		t.Fatalf("plan = %d sets, %d leftover; want 4 sets, 0 leftover", len(plan.Sets), plan.Leftover)
	}
	var b strings.Builder
	if err := RenderStoragePlan(&b, plan); err != nil {
		t.Fatal(err)
	}
}

func TestPowerStudyExperiment(t *testing.T) {
	r, err := PowerStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Loads) != len(r.Derates) || len(r.Loads) < 10 {
		t.Fatalf("curve sampling broken: %d/%d points", len(r.Loads), len(r.Derates))
	}
	if r.RackOver.BreachProb > 0.05 {
		t.Fatalf("rack breach probability = %v, want small", r.RackOver.BreachProb)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestGrowthStudyExperiment(t *testing.T) {
	r, err := GrowthStudy()
	if err != nil {
		t.Fatal(err)
	}
	if r.Minimal <= 0 || r.Minimal > 0.3 {
		t.Fatalf("minimal buffer = %v, want in (0, 0.3]", r.Minimal)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
}

func TestDesignSearchExperiment(t *testing.T) {
	r, err := DesignSearch()
	if err != nil {
		t.Fatal(err)
	}
	if r.Exhaustive.Savings < 0.26 {
		t.Fatalf("exhaustive optimum savings = %v, want >= 0.26", r.Exhaustive.Savings)
	}
	// At a coal-heavy grid the optimum trades embodied reuse for
	// operational efficiency: it must not save more than at CI 0.1
	// through reuse-heavy designs.
	if r.HighCI.SKU.Name == r.Exhaustive.SKU.Name {
		t.Log("optimum identical across carbon intensities (acceptable but unexpected)")
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "exhaustive") {
		t.Error("render missing methods")
	}
}

func TestLifetimeExperiment(t *testing.T) {
	r, err := Lifetime()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Studies) != 3 {
		t.Fatalf("got %d studies, want 3 generations", len(r.Studies))
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "break-even") {
		t.Error("render missing break-even column")
	}
}

func TestHarvestExperiment(t *testing.T) {
	r, err := Harvest()
	if err != nil {
		t.Fatal(err)
	}
	if r.Plan.Donors <= 0 || r.Plan.Bottleneck == "" {
		t.Fatalf("implausible plan: %+v", r.Plan)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "bottleneck") {
		t.Error("render missing bottleneck row")
	}
}

func TestDiversityExperiment(t *testing.T) {
	r, err := Diversity()
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleSavings <= 0 || r.MultiSavings <= 0 {
		t.Fatalf("both deployments should save carbon: %v / %v", r.SingleSavings, r.MultiSavings)
	}
	// The second SKU type may add a little or nothing, but must not
	// cost much: the study's point is that diversity rarely pays.
	if r.ExtraSavings < -0.05 || r.ExtraSavings > 0.10 {
		t.Fatalf("extra savings from a second SKU = %v, want small", r.ExtraSavings)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "second SKU type") {
		t.Error("render missing summary line")
	}
}
