package experiments

import (
	"context"
	"fmt"
	"io"

	"github.com/greensku/gsf/internal/adoption"
	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/analysis"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/cluster"
	"github.com/greensku/gsf/internal/core"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/fleet"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/report"
	"github.com/greensku/gsf/internal/stats"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// SavingsTable computes a Table IV/VIII-style per-core savings table
// under the named dataset.
func SavingsTable(dataset string) ([]carbon.Savings, error) {
	d, ok := carbondata.Datasets()[dataset]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
	m, err := carbon.New(d)
	if err != nil {
		return nil, err
	}
	base := hw.BaselineGen3()
	var rows []carbon.Savings
	for _, sku := range hw.TableIVConfigs()[1:] { // skip the baseline row
		s, err := m.SavingsVs(sku, base, d.DefaultCI)
		if err != nil {
			return nil, err
		}
		rows = append(rows, s)
	}
	return rows, nil
}

// RenderSavingsTable writes the table with the paper's reference
// column.
func RenderSavingsTable(w io.Writer, title string, rows []carbon.Savings, paper map[string][3]int) error {
	t := report.Table{
		Title:  title,
		Header: []string{"SKU", "operational", "embodied", "total", "paper (op/emb/total)"},
	}
	for _, r := range rows {
		ref := "-"
		if p, ok := paper[r.SKU]; ok {
			ref = fmt.Sprintf("%d%% / %d%% / %d%%", p[0], p[1], p[2])
		}
		t.AddRow(r.SKU, report.Pct(r.Operational), report.Pct(r.Embodied), report.Pct(r.Total), ref)
	}
	return t.Render(w)
}

// PaperTable4 and PaperTable8 are the published reference values.
var (
	PaperTable4 = map[string][3]int{
		"Baseline-Resized":   {3, 6, 4},
		"GreenSKU-Efficient": {29, 14, 23},
		"GreenSKU-CXL":       {23, 25, 24},
		"GreenSKU-Full":      {17, 43, 28},
	}
	PaperTable8 = map[string][3]int{
		"Baseline-Resized":   {6, 10, 8},
		"GreenSKU-Efficient": {16, 14, 15},
		"GreenSKU-CXL":       {15, 32, 24},
		"GreenSKU-Full":      {14, 38, 26},
	}
)

// PackingOptions sizes the Fig. 9/10 study.
type PackingOptions struct {
	Traces  int    // how many of the 35 production-like traces to use
	Dataset string // carbon dataset driving adoption decisions
	Green   hw.SKU
	// Shards > 1 replays every sizing and packing simulation through
	// the pool-sharded pipeline (alloc.MultiConfig.Shards). The output
	// is byte-identical to the unsharded study —
	// TestPackingShardedByteIdentical proves it.
	Shards int
}

// DefaultPackingOptions uses all 35 traces and GreenSKU-Full, as in
// Fig. 9.
func DefaultPackingOptions() PackingOptions {
	return PackingOptions{Traces: 35, Dataset: "open-source", Green: hw.GreenSKUFull()}
}

// PackingResult is the Fig. 9/10 dataset: one comparison per trace.
type PackingResult struct {
	PerTrace []cluster.PackingComparison
	// CDF inputs (Fig. 9): mean packing densities per trace.
	BaseCore, BaseMem   []float64
	GreenCore, GreenMem []float64
	// CDF inputs (Fig. 10): mean per-server max memory utilisation.
	BaseMaxMem, GreenMaxMem []float64
	// LocalFit is the fraction of green-server observations whose
	// touched memory fits in local DDR5 (paper: almost all; only 3%
	// of traces need CXL).
	LocalFit float64
}

// Packing runs the packing study.
func Packing(opt PackingOptions) (PackingResult, error) {
	return PackingContext(context.Background(), opt)
}

// PackingContext runs the packing study on the evaluation engine: the
// per-trace comparisons are independent, so they fan across GOMAXPROCS
// workers with results in suite order — identical to the serial loop.
func PackingContext(ctx context.Context, opt PackingOptions) (PackingResult, error) {
	var out PackingResult
	suite, err := trace.ProductionSuite()
	if err != nil {
		return out, err
	}
	if opt.Traces > 0 && opt.Traces < len(suite) {
		suite = suite[:opt.Traces]
	}
	sizer, err := NewSizerContext(ctx, opt.Dataset, opt.Green)
	if err != nil {
		return out, err
	}
	sizer.Shards = opt.Shards
	pcs, err := engine.Collect(engine.Map(ctx, 0, len(suite),
		func(ctx context.Context, i int) (cluster.PackingComparison, error) {
			return sizer.ComparePackingContext(ctx, suite[i])
		}))
	if err != nil {
		return out, err
	}
	var localFit, observed float64
	for _, pc := range pcs {
		out.PerTrace = append(out.PerTrace, pc)
		out.BaseCore = append(out.BaseCore, pc.Baseline.CorePacking)
		out.BaseMem = append(out.BaseMem, pc.Baseline.MemPacking)
		out.GreenCore = append(out.GreenCore, pc.Green.CorePacking)
		out.GreenMem = append(out.GreenMem, pc.Green.MemPacking)
		out.BaseMaxMem = append(out.BaseMaxMem, pc.Baseline.MaxMemUtil)
		out.GreenMaxMem = append(out.GreenMaxMem, pc.Green.MaxMemUtil)
		localFit += pc.Green.LocalFitsFrac
		observed++
	}
	if observed > 0 {
		out.LocalFit = localFit / observed
	}
	return out, nil
}

// NewSizer builds a cluster sizer for a GreenSKU whose adoption
// decisions follow the named carbon dataset at its default carbon
// intensity: the performance component supplies scaling factors, the
// carbon model per-core emissions, and the adoption component the
// per-VM directives.
func NewSizer(dataset string, green hw.SKU) (*cluster.Sizer, error) {
	return NewSizerContext(context.Background(), dataset, green)
}

// NewSizerContext is NewSizer with cancellation of the profiling runs.
func NewSizerContext(ctx context.Context, dataset string, green hw.SKU) (*cluster.Sizer, error) {
	d, ok := carbondata.Datasets()[dataset]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown dataset %q", dataset)
	}
	m, err := carbon.New(d)
	if err != nil {
		return nil, err
	}
	factors, err := perf.TableIIIContext(ctx, green, perf.DefaultOptions())
	if err != nil {
		return nil, err
	}
	greenPC, err := m.PerCore(green, d.DefaultCI)
	if err != nil {
		return nil, err
	}
	basePC := map[int]carbon.PerCore{}
	for gen := 1; gen <= 3; gen++ {
		pc, err := m.PerCore(hw.BaselineForGeneration(gen), d.DefaultCI)
		if err != nil {
			return nil, err
		}
		basePC[gen] = pc
	}
	table, err := adoption.Build(factors, greenPC, basePC)
	if err != nil {
		return nil, err
	}
	base := hw.BaselineGen3()
	return &cluster.Sizer{
		Base:   alloc.ServerClass{Name: base.Name, Cores: base.Cores(), Memory: base.TotalDRAMGB(), LocalMemory: base.LocalDRAMGB()},
		Green:  alloc.ServerClass{Name: green.Name, Cores: green.Cores(), Memory: green.TotalDRAMGB(), LocalMemory: green.LocalDRAMGB(), Green: true},
		Policy: alloc.BestFit,
		Decide: table.Decider(),
	}, nil
}

// RenderFig9 writes the packing-density CDFs.
func (r PackingResult) RenderFig9(w io.Writer) error {
	series := func(name string, vals []float64) report.Series {
		s := report.Series{Name: name}
		for _, p := range stats.CDF(vals) {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Fraction)
		}
		return s
	}
	if _, err := fmt.Fprintln(w, "Fig. 9: CDFs of mean packing density per trace (paper: baseline packs cores tighter, GreenSKU-Full packs memory tighter)"); err != nil {
		return err
	}
	for _, pair := range []struct {
		label string
		base  []float64
		green []float64
	}{
		{"core packing", r.BaseCore, r.GreenCore},
		{"memory packing", r.BaseMem, r.GreenMem},
	} {
		err := report.RenderSeries(w, pair.label, "density", "CDF", []report.Series{
			series("baseline", pair.base),
			series("greensku", pair.green),
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// RenderFig10 writes the memory-utilisation CDF and CXL headroom.
func (r PackingResult) RenderFig10(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig. 10: per-server max memory utilisation; green servers fit local DDR5 %.1f%% of the time (paper: ~97%% of traces)\n",
		r.LocalFit*100); err != nil {
		return err
	}
	series := func(name string, vals []float64) report.Series {
		s := report.Series{Name: name}
		for _, p := range stats.CDF(vals) {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Fraction)
		}
		return s
	}
	return report.RenderSeries(w, "max memory utilisation", "utilisation", "CDF", []report.Series{
		series("baseline", r.BaseMaxMem),
		series("greensku", r.GreenMaxMem),
	})
}

// CISweepOptions sizes the Fig. 11/12 study.
type CISweepOptions struct {
	Dataset string
	// CIs are the swept carbon intensities; nil uses 8 points over
	// 0.005..0.45 kgCO2e/kWh (the figures' x range).
	CIs       []units.CarbonIntensity
	TraceSeed uint64
}

// DefaultCISweepOptions matches the figures.
func DefaultCISweepOptions(dataset string) CISweepOptions {
	return CISweepOptions{
		Dataset: dataset,
		CIs: []units.CarbonIntensity{
			0.005, 0.035, 0.07, 0.1, 0.15, 0.22, 0.35, 0.45,
		},
		TraceSeed: 20240401,
	}
}

// CISweepResult is the Fig. 11/12 content: cluster-level savings per
// GreenSKU design across carbon intensities.
type CISweepResult struct {
	CIs []units.CarbonIntensity
	// Savings maps SKU name -> per-CI cluster savings.
	Savings map[string][]float64
	// Regions are the annotated vertical lines.
	Regions []struct {
		Region string
		CI     units.CarbonIntensity
	}
	// AvgClusterSavings and DCSavings summarise the best design
	// averaged over the annotated regions (the Fig. 12 companion
	// claim: "average cluster-level savings of 14% ... data
	// center-level savings of 7%").
	AvgClusterSavings float64
	DCSavings         float64
}

// CISweep evaluates the three GreenSKUs across carbon intensities on a
// synthetic production trace.
func CISweep(opt CISweepOptions) (CISweepResult, error) {
	return CISweepContext(context.Background(), opt)
}

// CISweepContext runs the sweep on the evaluation engine: the three
// GreenSKU designs fan out in parallel, and each design's per-CI
// evaluations fan again inside Framework.SweepContext, sharing one
// profile cache so each SKU is profiled exactly once.
func CISweepContext(ctx context.Context, opt CISweepOptions) (CISweepResult, error) {
	var out CISweepResult
	d, ok := carbondata.Datasets()[opt.Dataset]
	if !ok {
		return out, fmt.Errorf("experiments: unknown dataset %q", opt.Dataset)
	}
	m, err := carbon.New(d)
	if err != nil {
		return out, err
	}
	fw := core.New(m)
	p := trace.DefaultParams("ci-sweep", opt.TraceSeed)
	p.HorizonHours = 24 * 7
	tr, err := trace.Generate(p)
	if err != nil {
		return out, err
	}
	out.CIs = opt.CIs
	out.Savings = map[string][]float64{}
	greens := []hw.SKU{hw.GreenSKUEfficient(), hw.GreenSKUCXL(), hw.GreenSKUFull()}
	perGreen, err := engine.Collect(engine.Map(ctx, 0, len(greens),
		func(ctx context.Context, i int) ([]float64, error) {
			evs, err := fw.SweepContext(ctx, core.Input{
				Green:    greens[i],
				Baseline: hw.BaselineGen3(),
				Workload: tr,
			}, opt.CIs)
			if err != nil {
				return nil, err
			}
			vals := make([]float64, len(evs))
			for j, ev := range evs {
				vals[j] = ev.ClusterSavings
			}
			return vals, nil
		}))
	if err != nil {
		return out, err
	}
	for i, green := range greens {
		out.Savings[green.Name] = perGreen[i]
	}
	out.Regions = carbondata.RegionCI

	// Summary over the annotated regions: best design per region.
	breakdown, err := fleet.Analyze(fw.Fleet)
	if err != nil {
		return out, err
	}
	var sum float64
	for _, region := range out.Regions {
		best := 0.0
		for _, vals := range out.Savings {
			v := interpolate(opt.CIs, vals, region.CI)
			if v > best {
				best = v
			}
		}
		sum += best
	}
	out.AvgClusterSavings = sum / float64(len(out.Regions))
	out.DCSavings = fleet.DCSavings(out.AvgClusterSavings, breakdown)
	return out, nil
}

func interpolate(xs []units.CarbonIntensity, ys []float64, x units.CarbonIntensity) float64 {
	if len(xs) == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	for i := 1; i < len(xs); i++ {
		if x <= xs[i] {
			frac := float64(x-xs[i-1]) / float64(xs[i]-xs[i-1])
			return ys[i-1] + frac*(ys[i]-ys[i-1])
		}
	}
	return ys[len(ys)-1]
}

// Render writes the sweep as a shared-axis table plus the summary.
func (r CISweepResult) Render(w io.Writer, title string) error {
	series := make([]report.Series, 0, len(r.Savings))
	for _, name := range []string{"GreenSKU-Efficient", "GreenSKU-CXL", "GreenSKU-Full"} {
		vals, ok := r.Savings[name]
		if !ok {
			continue
		}
		s := report.Series{Name: name}
		for i, ci := range r.CIs {
			s.X = append(s.X, float64(ci))
			s.Y = append(s.Y, vals[i]*100)
		}
		series = append(series, s)
	}
	if err := report.RenderSeries(w, title, "kgCO2e/kWh", "cluster savings (%)", series); err != nil {
		return err
	}
	for _, region := range r.Regions {
		if _, err := fmt.Fprintf(w, "  region %-22s CI=%.3f\n", region.Region, float64(region.CI)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  average cluster savings %.1f%% -> datacenter savings %.1f%% (paper: 14%% -> 7%% open data; 8%% net internal)\n",
		r.AvgClusterSavings*100, r.DCSavings*100)
	return err
}

// Sec7Result packages §VII's equivalence analyses.
type Sec7Result struct {
	RenewableIncrease float64     // paper: 0.026
	EfficiencyGain    float64     // paper: 0.28
	Lifetime          units.Hours // paper: ~13 years
	TCOGap            float64     // paper: ~0.05
}

// Sec7 computes what each alternative strategy must deliver to match
// GreenSKU-Full's savings.
func Sec7() (Sec7Result, error) {
	return Sec7Context(context.Background())
}

// Sec7Context is Sec7 with cancellation; the per-SKU TCO evaluations
// run on the evaluation engine.
func Sec7Context(ctx context.Context) (Sec7Result, error) {
	var out Sec7Result
	var err error
	// Datacenter-wide GreenSKU-Full savings of ~8% at Azure's
	// operating point (§VII uses the internal result).
	out.RenewableIncrease, err = analysis.RenewableIncreaseFor(0.08, 0.58, 0.81)
	if err != nil {
		return out, err
	}
	out.EfficiencyGain, err = analysis.EfficiencyGainFor(0.08, 0.37)
	if err != nil {
		return out, err
	}
	// Per-core 28% savings, roughly half of server emissions
	// operational.
	out.Lifetime, err = analysis.LifetimeExtensionFor(0.28, 0.475, units.Years(6))
	if err != nil {
		return out, err
	}
	m, err := carbon.New(analysis.TCODataset())
	if err != nil {
		return out, err
	}
	skus := hw.TableIVConfigs()
	totals, err := engine.Collect(engine.Map(ctx, 0, len(skus),
		func(_ context.Context, i int) (float64, error) {
			pc, err := m.PerCore(skus[i], m.Data.DefaultCI)
			if err != nil {
				return 0, err
			}
			return float64(pc.Total()), nil
		}))
	if err != nil {
		return out, err
	}
	costOpt := 0.0
	for _, total := range totals {
		if costOpt == 0 || total < costOpt {
			costOpt = total
		}
	}
	full, err := m.PerCore(hw.GreenSKUFull(), m.Data.DefaultCI)
	if err != nil {
		return out, err
	}
	out.TCOGap = float64(full.Total())/costOpt - 1
	return out, nil
}

// Render writes the §VII summary.
func (r Sec7Result) Render(w io.Writer) error {
	t := report.Table{
		Title:  "§VII: what alternatives must deliver to match GreenSKU-Full",
		Header: []string{"strategy", "required", "paper"},
	}
	t.AddRow("more renewables", fmt.Sprintf("+%.1f pp", r.RenewableIncrease*100), "+2.6 pp")
	t.AddRow("uniform energy efficiency", fmt.Sprintf("+%.0f%%", r.EfficiencyGain*100), "+28%")
	t.AddRow("server lifetime", fmt.Sprintf("%.1f years", r.Lifetime.YearsValue()), "13 years")
	t.AddRow("TCO premium of GreenSKU", report.Pct(r.TCOGap), "~5%")
	return t.Render(w)
}
