package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/queueing"
	"github.com/greensku/gsf/internal/report"
)

// LatencyCurve is one measured p95-vs-QPS line.
type LatencyCurve struct {
	Label  string
	Points []queueing.CurvePoint
}

// AppCurves holds Fig. 7's content for one application: the Gen3
// baseline curve, the GreenSKU curves at increasing core counts, and
// the SLO (p95 at 90% of the baseline's peak).
type AppCurves struct {
	App    string
	SLO    float64
	Curves []LatencyCurve
}

// latencyCurves sweeps an app on a SKU at the given core count over
// 10%..105% of the reference capacity.
func latencyCurves(a apps.App, sku hw.SKU, cores int, cxlBacked bool, refCap float64, label string, seed uint64) (LatencyCurve, error) {
	s := queueing.LogNormal{MeanSeconds: perf.ServiceTime(a, perf.ProfileOf(sku, cxlBacked)), CV: a.CV}
	const steps = 12
	pts := make([]queueing.CurvePoint, 0, steps)
	for i := 0; i < steps; i++ {
		frac := 0.10 + (1.05-0.10)*float64(i)/float64(steps-1)
		res, err := queueing.Run(queueing.Config{
			Servers:     cores,
			ArrivalRate: frac * refCap,
			Service:     s,
			Requests:    20000,
			Seed:        seed + uint64(i),
		})
		if err != nil {
			return LatencyCurve{}, err
		}
		pts = append(pts, queueing.CurvePoint{QPS: res.Offered, P95: res.P95, Saturated: res.Saturated})
	}
	return LatencyCurve{Label: label, Points: pts}, nil
}

// Fig7 measures the five representative applications on the Gen3
// baseline (8 cores) and GreenSKU-Efficient (8, 10, 12 cores).
func Fig7() ([]AppCurves, error) {
	opt := perf.DefaultOptions()
	gen3 := hw.BaselineGen3()
	green := hw.GreenSKUEfficient()
	var out []AppCurves
	for _, a := range apps.Representatives() {
		slo, _, err := perf.SLO(a, gen3, opt)
		if err != nil {
			return nil, err
		}
		refCap := queueing.Capacity(opt.BaselineCores,
			queueing.LogNormal{MeanSeconds: perf.ServiceTime(a, perf.ProfileOf(gen3, false)), CV: a.CV})
		ac := AppCurves{App: a.Name, SLO: slo}
		base, err := latencyCurves(a, gen3, opt.BaselineCores, false, refCap, "Gen3-8c", opt.Seed)
		if err != nil {
			return nil, err
		}
		ac.Curves = append(ac.Curves, base)
		for _, cores := range opt.CoreSteps {
			c, err := latencyCurves(a, green, cores, false, refCap,
				fmt.Sprintf("GreenSKU-Efficient-%dc", cores), opt.Seed+uint64(cores))
			if err != nil {
				return nil, err
			}
			ac.Curves = append(ac.Curves, c)
		}
		out = append(out, ac)
	}
	return out, nil
}

// RenderCurves writes one application's latency curves.
func RenderCurves(w io.Writer, title string, ac AppCurves) error {
	if _, err := fmt.Fprintf(w, "%s: %s  (SLO p95 = %.1f ms)\n", title, ac.App, ac.SLO*1000); err != nil {
		return err
	}
	series := make([]report.Series, 0, len(ac.Curves))
	for _, c := range ac.Curves {
		s := report.Series{Name: c.Label}
		for _, p := range c.Points {
			s.X = append(s.X, p.QPS)
			s.Y = append(s.Y, p.P95*1000)
		}
		series = append(series, s)
	}
	return report.RenderSeries(w, "", "QPS", "p95 (ms)", series)
}

// Table2Result maps DevOps app to its normalised slowdowns:
// Gen1, Gen2, Gen3, GreenSKU-Efficient, GreenSKU-CXL (Table II's
// columns).
type Table2Result map[string][5]float64

// Table2 computes the DevOps slowdown matrix.
func Table2() (Table2Result, error) {
	out := Table2Result{}
	for _, a := range apps.ByClass()[apps.DevOps] {
		out[a.Name] = [5]float64{
			perf.ThroughputSlowdown(a, hw.BaselineGen1(), false),
			perf.ThroughputSlowdown(a, hw.BaselineGen2(), false),
			perf.ThroughputSlowdown(a, hw.BaselineGen3(), false),
			perf.ThroughputSlowdown(a, hw.GreenSKUEfficient(), false),
			perf.ThroughputSlowdown(a, hw.GreenSKUCXL(), true),
		}
	}
	return out, nil
}

// Render writes Table II.
func (r Table2Result) Render(w io.Writer) error {
	t := report.Table{
		Title:  "Table II: DevOps slowdown normalized to Gen3 (paper: Efficient 1.15-1.17, CXL 1.21-1.38)",
		Header: []string{"app", "Gen1", "Gen2", "Gen3", "GreenSKU-Efficient", "GreenSKU-CXL"},
	}
	names := make([]string, 0, len(r))
	for name := range r {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := r[name]
		t.AddRow(name, fmt.Sprintf("%.2f", v[0]), fmt.Sprintf("%.2f", v[1]),
			fmt.Sprintf("%.2f", v[2]), fmt.Sprintf("%.2f", v[3]), fmt.Sprintf("%.2f", v[4]))
	}
	return t.Render(w)
}

// Table3 computes the full scaling-factor matrix for a GreenSKU.
func Table3(green hw.SKU) (map[string]map[int]perf.Factor, error) {
	return perf.TableIII(green, perf.DefaultOptions())
}

// RenderTable3 writes Table III in the paper's class order.
func RenderTable3(w io.Writer, factors map[string]map[int]perf.Factor) error {
	t := report.Table{
		Title:  "Table III: GreenSKU-Efficient scaling factors vs Gen1/2/3",
		Header: []string{"class", "app", "Gen1", "Gen2", "Gen3"},
	}
	for _, a := range apps.All() {
		byGen, ok := factors[a.Name]
		if !ok {
			continue
		}
		t.AddRow(a.Class.String(), a.Name,
			byGen[1].String(), byGen[2].String(), byGen[3].String())
	}
	return t.Render(w)
}

// Fig8Result holds the CXL-impact curves for the high-impact (Moses)
// and low-impact (HAProxy) applications.
type Fig8Result struct {
	Moses   AppCurves
	HAProxy AppCurves
	// PeakReduction maps app name to the peak-throughput loss from
	// serving memory over CXL (paper: ~11% for HAProxy, large for
	// Moses).
	PeakReduction map[string]float64
}

// Fig8 measures GreenSKU-Efficient vs GreenSKU-CXL (fully CXL-backed
// memory) at each app's SLO core count relative to Gen3.
func Fig8() (Fig8Result, error) {
	opt := perf.DefaultOptions()
	gen3 := hw.BaselineGen3()
	res := Fig8Result{PeakReduction: map[string]float64{}}
	for _, name := range []string{"Moses", "HAProxy"} {
		a, err := apps.ByName(name)
		if err != nil {
			return res, err
		}
		f, err := perf.ScalingFactor(a, hw.GreenSKUEfficient(), gen3, false, opt)
		if err != nil {
			return res, err
		}
		cores := opt.BaselineCores
		if f.Adoptable {
			cores = int(f.Value * float64(opt.BaselineCores))
		}
		slo, _, err := perf.SLO(a, gen3, opt)
		if err != nil {
			return res, err
		}
		refCap := queueing.Capacity(opt.BaselineCores,
			queueing.LogNormal{MeanSeconds: perf.ServiceTime(a, perf.ProfileOf(gen3, false)), CV: a.CV})
		eff, err := latencyCurves(a, hw.GreenSKUEfficient(), cores, false, refCap, "GreenSKU-Efficient", opt.Seed)
		if err != nil {
			return res, err
		}
		cxl, err := latencyCurves(a, hw.GreenSKUCXL(), cores, true, refCap, "GreenSKU-CXL", opt.Seed)
		if err != nil {
			return res, err
		}
		ac := AppCurves{App: name, SLO: slo, Curves: []LatencyCurve{eff, cxl}}
		effPeak := queueing.Capacity(cores, queueing.LogNormal{
			MeanSeconds: perf.ServiceTime(a, perf.ProfileOf(hw.GreenSKUEfficient(), false)), CV: a.CV})
		cxlPeak := queueing.Capacity(cores, queueing.LogNormal{
			MeanSeconds: perf.ServiceTime(a, perf.ProfileOf(hw.GreenSKUCXL(), true)), CV: a.CV})
		res.PeakReduction[name] = 1 - cxlPeak/effPeak
		if name == "Moses" {
			res.Moses = ac
		} else {
			res.HAProxy = ac
		}
	}
	return res, nil
}

// Render writes both Fig. 8 panels.
func (r Fig8Result) Render(w io.Writer) error {
	if err := RenderCurves(w, "Fig. 8 (high CXL impact)", r.Moses); err != nil {
		return err
	}
	if err := RenderCurves(w, "Fig. 8 (low CXL impact)", r.HAProxy); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "peak-throughput reduction from CXL: Moses %.1f%% (paper: large), HAProxy %.1f%% (paper: 11%%)\n",
		r.PeakReduction["Moses"]*100, r.PeakReduction["HAProxy"]*100)
	return err
}

// LowLoadResult is §VI's low-load latency comparison.
type LowLoadResult struct {
	MedianVsGen1 float64 // paper: 0.917 (8.3% lower)
	MedianVsGen2 float64 // paper: 0.98  (2% lower)
	MedianVsGen3 float64 // paper: 1.16  (16% higher)
}

// LowLoad measures median low-load latency of GreenSKU-Efficient
// (scaled per generation) against each baseline.
func LowLoad() (LowLoadResult, error) {
	opt := perf.DefaultOptions()
	green := hw.GreenSKUEfficient()
	var ratios [3][]float64
	for _, a := range apps.All() {
		if !a.LatencyCritical {
			continue
		}
		for gen := 1; gen <= 3; gen++ {
			base := hw.BaselineForGeneration(gen)
			f, err := perf.ScalingFactor(a, green, base, false, opt)
			if err != nil {
				return LowLoadResult{}, err
			}
			cores := opt.BaselineCores
			if f.Adoptable {
				cores = int(f.Value * float64(opt.BaselineCores))
			}
			g, err := perf.LowLoadLatency(a, green, cores, false, opt)
			if err != nil {
				return LowLoadResult{}, err
			}
			b, err := perf.LowLoadLatency(a, base, opt.BaselineCores, false, opt)
			if err != nil {
				return LowLoadResult{}, err
			}
			ratios[gen-1] = append(ratios[gen-1], g/b)
		}
	}
	med := func(v []float64) float64 {
		s := append([]float64(nil), v...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	return LowLoadResult{
		MedianVsGen1: med(ratios[0]),
		MedianVsGen2: med(ratios[1]),
		MedianVsGen3: med(ratios[2]),
	}, nil
}
