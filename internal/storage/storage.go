// Package storage models the SSD-reuse substrate of GreenSKU-Full:
// drive performance envelopes, flash wear accounting, and the striped
// RAID mitigation the paper applies so reused m.2 drives match new
// E1.S drives ("we mitigate lower SSD performance using multiple
// striped RAID sets that each offer more bandwidth and IOPS than the
// FSP configurations; due to this mitigation, old SSDs have no adoption
// side effects").
package storage

import (
	"fmt"
	"sort"
)

// Drive is one SSD's performance and wear envelope.
type Drive struct {
	Name       string
	CapacityTB float64
	// Random-write envelope (the paper's measurement: old drives
	// offer 1 GB/s and 250 IOPS; new drives 2.3 GB/s and 600 IOPS, in
	// the paper's reported units).
	WriteGBs float64
	IOPS     float64
	// Flash wear: erase cycles guaranteed and consumed.
	RatedCycles float64
	UsedCycles  float64
}

// OldM2 returns a 2015-era 1 TB m.2 drive after seven years of cloud
// service: the paper observes such drives retain more than half their
// rated erase cycles.
func OldM2() Drive {
	return Drive{Name: "m.2-2015", CapacityTB: 1, WriteGBs: 1.0, IOPS: 250, RatedCycles: 3000, UsedCycles: 1350}
}

// NewE1S returns a current 4 TB E1.S drive.
func NewE1S() Drive {
	return Drive{Name: "e1.s", CapacityTB: 4, WriteGBs: 2.3, IOPS: 600, RatedCycles: 3000, UsedCycles: 0}
}

// LifeLeft returns the fraction of rated erase cycles remaining.
func (d Drive) LifeLeft() float64 {
	if d.RatedCycles <= 0 {
		return 0
	}
	left := 1 - d.UsedCycles/d.RatedCycles
	if left < 0 {
		return 0
	}
	return left
}

// YearsLeft estimates remaining service years if the drive keeps
// consuming cycles at the rate implied by priorYears of service.
func (d Drive) YearsLeft(priorYears float64) float64 {
	if priorYears <= 0 || d.UsedCycles <= 0 {
		return d.LifeLeft() * 1e9 // effectively unlimited at zero wear rate
	}
	perYear := d.UsedCycles / priorYears
	return (d.RatedCycles - d.UsedCycles) / perYear
}

// Validate rejects impossible drives.
func (d Drive) Validate() error {
	if d.CapacityTB <= 0 || d.WriteGBs <= 0 || d.IOPS <= 0 {
		return fmt.Errorf("storage: drive %s has a non-positive envelope", d.Name)
	}
	if d.RatedCycles < 0 || d.UsedCycles < 0 || d.UsedCycles > d.RatedCycles {
		return fmt.Errorf("storage: drive %s has invalid wear state", d.Name)
	}
	return nil
}

// StripeSet is a RAID-0 stripe over member drives: bandwidth, IOPS, and
// capacity aggregate; the weakest member bounds per-drive contribution
// (homogeneous sets avoid that here).
type StripeSet struct {
	Members []Drive
}

// CapacityTB returns the set's capacity.
func (s StripeSet) CapacityTB() float64 {
	var sum float64
	for _, d := range s.Members {
		sum += d.CapacityTB
	}
	return sum
}

// WriteGBs returns aggregate sequential-write bandwidth: striping
// parallelises writes across members, bounded by the slowest member
// times the member count.
func (s StripeSet) WriteGBs() float64 {
	if len(s.Members) == 0 {
		return 0
	}
	slowest := s.Members[0].WriteGBs
	for _, d := range s.Members[1:] {
		if d.WriteGBs < slowest {
			slowest = d.WriteGBs
		}
	}
	return slowest * float64(len(s.Members))
}

// IOPS returns aggregate IOPS under the same striping rule.
func (s StripeSet) IOPS() float64 {
	if len(s.Members) == 0 {
		return 0
	}
	slowest := s.Members[0].IOPS
	for _, d := range s.Members[1:] {
		if d.IOPS < slowest {
			slowest = d.IOPS
		}
	}
	return slowest * float64(len(s.Members))
}

// Meets reports whether the set's envelope covers the target drive's.
func (s StripeSet) Meets(target Drive) bool {
	return s.WriteGBs() >= target.WriteGBs && s.IOPS() >= target.IOPS
}

// Plan partitions a pool of reused drives into the fewest equal-size
// stripe sets such that every set meets the target envelope. It returns
// an error when even one set over the whole pool cannot.
func Plan(pool []Drive, target Drive) ([]StripeSet, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("storage: empty drive pool")
	}
	for _, d := range pool {
		if err := d.Validate(); err != nil {
			return nil, err
		}
	}
	if err := target.Validate(); err != nil {
		return nil, err
	}
	// Sort descending by bandwidth so mixed pools stripe the weakest
	// drives together deterministically.
	sorted := append([]Drive(nil), pool...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].WriteGBs > sorted[j].WriteGBs })

	// Find the smallest per-set width that meets the target, then cut
	// the pool into as many full sets as possible.
	width := 0
	for w := 1; w <= len(sorted); w++ {
		set := StripeSet{Members: sorted[len(sorted)-w:]} // weakest w drives
		if set.Meets(target) {
			width = w
			break
		}
	}
	if width == 0 {
		return nil, fmt.Errorf("storage: pool of %d drives cannot meet %s (%.1f GB/s, %.0f IOPS)",
			len(pool), target.Name, target.WriteGBs, target.IOPS)
	}
	var sets []StripeSet
	for i := 0; i+width <= len(sorted); i += width {
		sets = append(sets, StripeSet{Members: sorted[i : i+width]})
	}
	return sets, nil
}

// ReusePlan summarises the GreenSKU-Full storage layout.
type ReusePlan struct {
	Sets []StripeSet
	// Leftover drives did not fill a complete set.
	Leftover int
}

// PlanGreenSKUFull stripes the paper's 12 reused m.2 drives against the
// new-E1.S envelope.
func PlanGreenSKUFull() (ReusePlan, error) {
	pool := make([]Drive, 12)
	for i := range pool {
		pool[i] = OldM2()
	}
	sets, err := Plan(pool, NewE1S())
	if err != nil {
		return ReusePlan{}, err
	}
	used := 0
	for _, s := range sets {
		used += len(s.Members)
	}
	return ReusePlan{Sets: sets, Leftover: len(pool) - used}, nil
}
