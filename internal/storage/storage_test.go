package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperEnvelopes(t *testing.T) {
	// §III: "old SSDs offer 1 GB/s and 250 IOPS, whereas new SSDs
	// offer 2.3 GB/s and 600 IOPS".
	old := OldM2()
	if old.WriteGBs != 1.0 || old.IOPS != 250 {
		t.Fatalf("old drive envelope = %+v", old)
	}
	nw := NewE1S()
	if nw.WriteGBs != 2.3 || nw.IOPS != 600 {
		t.Fatalf("new drive envelope = %+v", nw)
	}
}

func TestSevenYearLifeLeft(t *testing.T) {
	// §III: "after seven years, most SSDs offer more than half of the
	// guaranteed erasure cycles".
	old := OldM2()
	if old.LifeLeft() <= 0.5 {
		t.Fatalf("life left = %v, want > 0.5", old.LifeLeft())
	}
	// And at the observed wear rate they survive a second 6-year
	// deployment.
	if years := old.YearsLeft(7); years < 6 {
		t.Fatalf("years left = %v, want >= 6 (a second deployment)", years)
	}
}

func TestStripeAggregation(t *testing.T) {
	set := StripeSet{Members: []Drive{OldM2(), OldM2(), OldM2()}}
	if got := set.WriteGBs(); got != 3.0 {
		t.Fatalf("3-wide stripe bandwidth = %v, want 3.0", got)
	}
	if got := set.IOPS(); got != 750 {
		t.Fatalf("3-wide stripe IOPS = %v, want 750", got)
	}
	if got := set.CapacityTB(); got != 3 {
		t.Fatalf("capacity = %v, want 3", got)
	}
	if !set.Meets(NewE1S()) {
		t.Fatal("3 old drives should beat one new drive's envelope")
	}
}

func TestStripeSlowestMemberBounds(t *testing.T) {
	slow := OldM2()
	slow.WriteGBs = 0.5
	set := StripeSet{Members: []Drive{OldM2(), slow}}
	if got := set.WriteGBs(); got != 1.0 {
		t.Fatalf("mixed stripe bandwidth = %v, want 2 x slowest = 1.0", got)
	}
}

func TestPlanGreenSKUFull(t *testing.T) {
	// 12 old m.2 drives, target = new E1.S: minimal width is 3
	// (3 GB/s >= 2.3, 750 >= 600), so 4 sets with nothing left over —
	// "old SSDs have no adoption side effects".
	plan, err := PlanGreenSKUFull()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Sets) != 4 {
		t.Fatalf("got %d stripe sets, want 4", len(plan.Sets))
	}
	if plan.Leftover != 0 {
		t.Fatalf("leftover drives = %d, want 0", plan.Leftover)
	}
	for i, s := range plan.Sets {
		if len(s.Members) != 3 {
			t.Fatalf("set %d has %d members, want 3", i, len(s.Members))
		}
		if !s.Meets(NewE1S()) {
			t.Fatalf("set %d does not meet the new-drive envelope", i)
		}
	}
}

func TestPlanImpossible(t *testing.T) {
	weak := Drive{Name: "tiny", CapacityTB: 1, WriteGBs: 0.1, IOPS: 10, RatedCycles: 100}
	if _, err := Plan([]Drive{weak, weak}, NewE1S()); err == nil {
		t.Fatal("Plan accepted an unreachable target")
	}
	if _, err := Plan(nil, NewE1S()); err == nil {
		t.Fatal("Plan accepted an empty pool")
	}
}

func TestValidate(t *testing.T) {
	bad := []Drive{
		{Name: "x", CapacityTB: 0, WriteGBs: 1, IOPS: 1},
		{Name: "x", CapacityTB: 1, WriteGBs: 1, IOPS: 1, RatedCycles: 100, UsedCycles: 200},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid drive", i)
		}
	}
}

func TestLifeLeftBounds(t *testing.T) {
	d := Drive{RatedCycles: 0}
	if d.LifeLeft() != 0 {
		t.Fatal("zero-rated drive should report no life")
	}
	d = Drive{RatedCycles: 100, UsedCycles: 100}
	if d.LifeLeft() != 0 {
		t.Fatal("fully worn drive should report no life")
	}
}

func TestPropertyPlanSetsAlwaysMeetTarget(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		pool := make([]Drive, count)
		for i := range pool {
			pool[i] = OldM2()
		}
		sets, err := Plan(pool, NewE1S())
		if err != nil {
			// Pools smaller than the minimal width legitimately fail.
			return count < 3
		}
		used := 0
		for _, s := range sets {
			if !s.Meets(NewE1S()) {
				return false
			}
			used += len(s.Members)
		}
		return used <= count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStripeMonotone(t *testing.T) {
	// Adding a drive never reduces the stripe's envelope when drives
	// are homogeneous.
	f := func(n uint8) bool {
		w := int(n%10) + 1
		a := StripeSet{Members: make([]Drive, w)}
		b := StripeSet{Members: make([]Drive, w+1)}
		for i := range a.Members {
			a.Members[i] = OldM2()
		}
		for i := range b.Members {
			b.Members[i] = OldM2()
		}
		return b.WriteGBs() > a.WriteGBs() && b.IOPS() > a.IOPS() &&
			math.Abs(b.WriteGBs()-a.WriteGBs()-1.0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
