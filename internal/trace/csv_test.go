package trace

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	p := DefaultParams("roundtrip", 21)
	p.HorizonHours = 48
	orig, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteCSV(&b, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()), "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.VMs) != len(orig.VMs) {
		t.Fatalf("round trip lost VMs: %d != %d", len(got.VMs), len(orig.VMs))
	}
	for i := range got.VMs {
		g, o := got.VMs[i], orig.VMs[i]
		if g.ID != o.ID || g.Cores != o.Cores || g.Gen != o.Gen ||
			g.FullNode != o.FullNode || g.App != o.App {
			t.Fatalf("VM %d fields changed: %+v vs %+v", i, g, o)
		}
		// Floats round-trip at the CSV's printed precision.
		if diff := g.Arrive - o.Arrive; diff > 0.001 || diff < -0.001 {
			t.Fatalf("VM %d arrive drifted: %v vs %v", i, g.Arrive, o.Arrive)
		}
	}
	if got.Horizon <= 0 {
		t.Fatal("horizon not recovered")
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	in := "id,arrive_h,depart_h,cores,memory_gb,gen,full_node,application,max_mem_frac\n"
	if _, err := ReadCSV(strings.NewReader(in), "x"); err == nil {
		t.Fatal("accepted wrong header")
	}
}

func TestReadCSVRejectsBadRows(t *testing.T) {
	header := strings.Join(CSVHeader, ",") + "\n"
	bad := []string{
		"x,1.0,2.0,4,16,3,false,Redis,0.5\n",    // non-numeric id
		"0,1.0,2.0,four,16,3,false,Redis,0.5\n", // non-numeric cores
		"0,1.0,2.0,4,16,3,maybe,Redis,0.5\n",    // bad bool
		"0,2.0,1.0,4,16,3,false,Redis,0.5\n",    // departs before arrival
	}
	for i, row := range bad {
		if _, err := ReadCSV(strings.NewReader(header+row), "x"); err == nil {
			t.Errorf("case %d: accepted invalid row %q", i, row)
		}
	}
}

func TestReadCSVEmptyTrace(t *testing.T) {
	header := strings.Join(CSVHeader, ",") + "\n"
	tr, err := ReadCSV(strings.NewReader(header), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) != 0 {
		t.Fatal("expected empty trace")
	}
}
