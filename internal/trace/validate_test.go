package trace

import (
	"math"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/units"
)

// TestCheckVM tables the per-event validation contract shared by
// Trace.Validate, the binary decoder, and the streaming simulator:
// one rule per case, with the streaming-specific prevArrive threading
// exercised explicitly.
func TestCheckVM(t *testing.T) {
	valid := testVM()
	cases := []struct {
		name       string
		mutate     func(*VM)
		prevArrive float64
		want       string // "" means the VM must pass
	}{
		{name: "valid", prevArrive: math.Inf(-1)},
		{name: "valid after equal arrival", prevArrive: valid.Arrive},
		{name: "nan arrive", mutate: func(v *VM) { v.Arrive = math.NaN() }, prevArrive: math.Inf(-1), want: "non-finite field"},
		{name: "inf depart", mutate: func(v *VM) { v.Depart = math.Inf(1) }, prevArrive: math.Inf(-1), want: "non-finite field"},
		{name: "nan memory", mutate: func(v *VM) { v.Memory = units.GB(math.NaN()) }, prevArrive: math.Inf(-1), want: "non-finite field"},
		{name: "nan max_mem_frac", mutate: func(v *VM) { v.MaxMemFrac = math.NaN() }, prevArrive: math.Inf(-1), want: "non-finite field"},
		{name: "inf slack", mutate: func(v *VM) { v.Deferrable = true; v.SlackHours = math.Inf(1) }, prevArrive: math.Inf(-1), want: "non-finite field"},
		{name: "zero duration", mutate: func(v *VM) { v.Depart = v.Arrive }, prevArrive: math.Inf(-1), want: "departs before arriving"},
		{name: "negative duration", mutate: func(v *VM) { v.Depart = v.Arrive - 1 }, prevArrive: math.Inf(-1), want: "departs before arriving"},
		{name: "zero cores", mutate: func(v *VM) { v.Cores = 0 }, prevArrive: math.Inf(-1), want: "empty resource request"},
		{name: "negative memory", mutate: func(v *VM) { v.Memory = -1; v.Depart = 5 }, prevArrive: math.Inf(-1), want: "empty resource request"},
		{name: "arrives before predecessor", prevArrive: valid.Arrive + 1, want: "not sorted"},
		{name: "max_mem_frac above one", mutate: func(v *VM) { v.MaxMemFrac = 1.5 }, prevArrive: math.Inf(-1), want: "out of [0,1]"},
		{name: "max_mem_frac negative", mutate: func(v *VM) { v.MaxMemFrac = -0.1 }, prevArrive: math.Inf(-1), want: "out of [0,1]"},
		{name: "generation zero", mutate: func(v *VM) { v.Gen = 0 }, prevArrive: math.Inf(-1), want: "has generation 0"},
		{name: "generation four", mutate: func(v *VM) { v.Gen = 4 }, prevArrive: math.Inf(-1), want: "has generation 4"},
		{name: "negative slack", mutate: func(v *VM) { v.Deferrable = true; v.SlackHours = -1 }, prevArrive: math.Inf(-1), want: "negative slack"},
		{name: "slack without deferrable", mutate: func(v *VM) { v.SlackHours = 2 }, prevArrive: math.Inf(-1), want: "not deferrable but has slack"},
		{name: "deferrable zero slack ok", mutate: func(v *VM) { v.Deferrable = true }, prevArrive: math.Inf(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vm := valid
			if tc.mutate != nil {
				tc.mutate(&vm)
			}
			err := CheckVM("tbl", 0, tc.prevArrive, vm)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid VM rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid VM accepted (want %q)", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateMatchesCheckVM: Trace.Validate is exactly CheckVM folded
// over the trace with threaded arrivals.
func TestValidateMatchesCheckVM(t *testing.T) {
	tr, err := Generate(DefaultParams("validate-fold", 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for i, v := range tr.VMs {
		if err := CheckVM(tr.Name, i, prev, v); err != nil {
			t.Fatalf("CheckVM rejects VM %d of a Validate-clean trace: %v", i, err)
		}
		prev = v.Arrive
	}
	// Break one VM; both paths must reject with the same message.
	tr.VMs[len(tr.VMs)/2].Gen = 9
	errValidate := tr.Validate()
	if errValidate == nil {
		t.Fatal("Validate accepted a broken trace")
	}
	prev = math.Inf(-1)
	var errFold error
	for i, v := range tr.VMs {
		if errFold = CheckVM(tr.Name, i, prev, v); errFold != nil {
			break
		}
		prev = v.Arrive
	}
	if errFold == nil || errFold.Error() != errValidate.Error() {
		t.Fatalf("fold error %v != Validate error %v", errFold, errValidate)
	}
}
