package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/greensku/gsf/internal/units"
)

// CSVHeader is the column layout used by WriteCSV/ReadCSV and the
// tracegen tool: one VM per row. The deferrable columns were added with
// the carbon-aware scheduler; ReadCSV still accepts the original
// 9-column layout (legacyCSVColumns) with both fields defaulting to
// zero.
var CSVHeader = []string{
	"id", "arrive_h", "depart_h", "cores", "memory_gb", "gen", "full_node", "app", "max_mem_frac",
	"deferrable", "slack_h",
}

// legacyCSVColumns is the pre-scheduler column count; traces written
// before the deferrable annotation carry 9 columns.
const legacyCSVColumns = 9

// WriteCSV serialises the trace.
func WriteCSV(w io.Writer, t Trace) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	for _, v := range t.VMs {
		rec := []string{
			strconv.Itoa(v.ID),
			strconv.FormatFloat(v.Arrive, 'f', 3, 64),
			strconv.FormatFloat(v.Depart, 'f', 3, 64),
			strconv.Itoa(v.Cores),
			strconv.FormatFloat(float64(v.Memory), 'f', 0, 64),
			strconv.Itoa(v.Gen),
			strconv.FormatBool(v.FullNode),
			v.App,
			strconv.FormatFloat(v.MaxMemFrac, 'f', 3, 64),
			strconv.FormatBool(v.Deferrable),
			strconv.FormatFloat(v.SlackHours, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace in the WriteCSV layout, so providers can feed
// GSF their own VM traces instead of the synthetic generator. The
// horizon is the latest departure.
func ReadCSV(r io.Reader, name string) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // fixed per-row below, once the header picks a layout
	header, err := cr.Read()
	if err != nil {
		return Trace{}, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	switch len(header) {
	case len(CSVHeader), legacyCSVColumns:
	default:
		return Trace{}, fmt.Errorf("trace: CSV header has %d columns, want %d (or the legacy %d)",
			len(header), len(CSVHeader), legacyCSVColumns)
	}
	for i, want := range CSVHeader[:len(header)] {
		if header[i] != want {
			return Trace{}, fmt.Errorf("trace: CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	cr.FieldsPerRecord = len(header)
	var t Trace
	t.Name = name
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Trace{}, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		line++
		vm, err := parseVM(rec)
		if err != nil {
			return Trace{}, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		t.VMs = append(t.VMs, vm)
		if vm.Depart > t.Horizon {
			t.Horizon = vm.Depart
		}
	}
	if err := t.Validate(); err != nil {
		return Trace{}, err
	}
	return t, nil
}

func parseVM(rec []string) (VM, error) {
	var vm VM
	var err error
	if vm.ID, err = strconv.Atoi(rec[0]); err != nil {
		return vm, fmt.Errorf("id: %w", err)
	}
	if vm.Arrive, err = strconv.ParseFloat(rec[1], 64); err != nil {
		return vm, fmt.Errorf("arrive_h: %w", err)
	}
	if vm.Depart, err = strconv.ParseFloat(rec[2], 64); err != nil {
		return vm, fmt.Errorf("depart_h: %w", err)
	}
	if vm.Cores, err = strconv.Atoi(rec[3]); err != nil {
		return vm, fmt.Errorf("cores: %w", err)
	}
	mem, err := strconv.ParseFloat(rec[4], 64)
	if err != nil {
		return vm, fmt.Errorf("memory_gb: %w", err)
	}
	vm.Memory = units.GB(mem)
	if vm.Gen, err = strconv.Atoi(rec[5]); err != nil {
		return vm, fmt.Errorf("gen: %w", err)
	}
	if vm.FullNode, err = strconv.ParseBool(rec[6]); err != nil {
		return vm, fmt.Errorf("full_node: %w", err)
	}
	vm.App = rec[7]
	if vm.MaxMemFrac, err = strconv.ParseFloat(rec[8], 64); err != nil {
		return vm, fmt.Errorf("max_mem_frac: %w", err)
	}
	if len(rec) == legacyCSVColumns {
		return vm, nil
	}
	if vm.Deferrable, err = strconv.ParseBool(rec[9]); err != nil {
		return vm, fmt.Errorf("deferrable: %w", err)
	}
	if vm.SlackHours, err = strconv.ParseFloat(rec[10], 64); err != nil {
		return vm, fmt.Errorf("slack_h: %w", err)
	}
	return vm, nil
}
