// Package trace models VM workload traces: arrival/departure records
// with resource requests, the input GSF's VM allocation and cluster
// sizing components consume.
//
// Azure's production traces are not publishable, so this package also
// provides a synthetic generator calibrated to the marginals the paper
// reports: a small-VM-heavy size mix, heavy-tailed lifetimes, a small share of
// long-lived full-node VMs, per-VM maximum memory utilisation averaging about half
// of the allocation ("untouched memory is almost half of a VM's memory
// capacity"), pre-assigned server generations, and application
// assignment by class core-hour share (§V).
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/stats"
	"github.com/greensku/gsf/internal/units"
)

// VM is one virtual machine deployment in a trace.
type VM struct {
	ID     int
	Arrive float64 // hours since trace start
	Depart float64 // hours since trace start; > Arrive
	Cores  int
	Memory units.GB
	// Gen is the server generation (1-3) the VM was deployed on in
	// production, pre-defined in the trace (§V).
	Gen int
	// FullNode marks long-living VMs that require a dedicated server;
	// GSF assigns these strictly to baseline SKUs.
	FullNode bool
	// App is the representative benchmark application assigned to the
	// VM (production applications are opaque; §V samples assignments
	// from class core-hour shares).
	App string
	// MaxMemFrac is the maximum fraction of allocated memory the VM
	// touches over its lifetime, as reported in the paper's traces.
	MaxMemFrac float64
	// Deferrable marks delay-tolerant work (batch, dev/test, ML
	// training): the carbon-aware scheduler may delay its start, or
	// suspend and resume it, to chase low-carbon windows.
	Deferrable bool
	// SlackHours is the deferrable VM's scheduling deadline: its
	// completion may slip by at most this many hours past the traced
	// departure. Must be zero for non-deferrable VMs.
	SlackHours float64
}

// Lifetime returns the VM's duration in hours.
func (v VM) Lifetime() float64 { return v.Depart - v.Arrive }

// Trace is a time-ordered VM workload.
type Trace struct {
	Name    string
	VMs     []VM // sorted by arrival time
	Horizon float64
}

// Validate checks trace invariants.
func (t Trace) Validate() error {
	prev := math.Inf(-1)
	for i, v := range t.VMs {
		if err := CheckVM(t.Name, i, prev, v); err != nil {
			return err
		}
		prev = v.Arrive
	}
	return nil
}

// CheckVM validates one VM the way Trace.Validate does, so streaming
// consumers (the binary decoder, the columnar simulator) can harden
// each event at the moment it is produced instead of requiring a
// materialized trace. prevArrive is the previous event's arrival time
// (math.Inf(-1) for the first event); i indexes the event within its
// stream for the error message.
func CheckVM(name string, i int, prevArrive float64, v VM) error {
	// Reject non-finite fields first: NaN slips through every
	// ordering comparison below (all NaN comparisons are false),
	// and infinite times would stall the allocation simulator's
	// snapshot clock.
	if !finite(v.Arrive) || !finite(v.Depart) || !finite(float64(v.Memory)) || !finite(v.MaxMemFrac) || !finite(v.SlackHours) {
		return fmt.Errorf("trace %s: VM %d has a non-finite field", name, i)
	}
	if v.Depart <= v.Arrive {
		return fmt.Errorf("trace %s: VM %d departs before arriving", name, i)
	}
	if v.Cores <= 0 || v.Memory <= 0 {
		return fmt.Errorf("trace %s: VM %d has empty resource request", name, i)
	}
	if v.Arrive < prevArrive {
		return fmt.Errorf("trace %s: VMs not sorted by arrival at %d", name, i)
	}
	if v.MaxMemFrac < 0 || v.MaxMemFrac > 1 {
		return fmt.Errorf("trace %s: VM %d MaxMemFrac %v out of [0,1]", name, i, v.MaxMemFrac)
	}
	if v.Gen < 1 || v.Gen > 3 {
		return fmt.Errorf("trace %s: VM %d has generation %d", name, i, v.Gen)
	}
	if v.SlackHours < 0 {
		return fmt.Errorf("trace %s: VM %d has negative slack %v", name, i, v.SlackHours)
	}
	if !v.Deferrable && v.SlackHours != 0 {
		return fmt.Errorf("trace %s: VM %d is not deferrable but has slack %v", name, i, v.SlackHours)
	}
	return nil
}

// Source streams a trace's VMs in arrival order without requiring the
// whole event set in memory — the contract the columnar allocation
// simulator replays 100M-event traces through. Implementations must
// yield validated events (CheckVM) in non-decreasing arrival order;
// the binary decoder enforces this at decode time.
type Source interface {
	// Next returns the next VM, or ok=false when the stream is
	// exhausted or failed (distinguish with Err).
	Next() (vm VM, ok bool)
	// Err reports the first stream error, or nil after clean EOF.
	Err() error
	// Name labels the trace in error messages and results.
	Name() string
	// Horizon is the trace horizon in hours (the snapshot clock's end).
	Horizon() float64
}

// SliceSource adapts a materialized Trace to the Source interface.
type SliceSource struct {
	t Trace
	i int
}

// NewSliceSource returns a Source over an already-validated Trace.
func NewSliceSource(t Trace) *SliceSource { return &SliceSource{t: t} }

func (s *SliceSource) Next() (VM, bool) {
	if s.i >= len(s.t.VMs) {
		return VM{}, false
	}
	vm := s.t.VMs[s.i]
	s.i++
	return vm, true
}

func (s *SliceSource) Err() error       { return nil }
func (s *SliceSource) Name() string     { return s.t.Name }
func (s *SliceSource) Horizon() float64 { return s.t.Horizon }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// GenParams parameterises the synthetic generator.
type GenParams struct {
	Name string
	Seed uint64
	// ArrivalsPerHour is the mean VM arrival rate.
	ArrivalsPerHour float64
	// HorizonHours is the trace length.
	HorizonHours float64
	// MeanLifetimeHours sets the lifetime distribution's scale
	// (bounded Pareto, alpha ~1.2: most VMs are short, some span the
	// trace).
	MeanLifetimeHours float64
	// CoreSizes and CoreWeights define the VM size mix.
	CoreSizes   []int
	CoreWeights []float64
	// MemPerCoreGB is the mean memory:core ratio of VM requests.
	MemPerCoreGB float64
	// FullNodeFrac is the fraction of arrivals that are full-node VMs.
	FullNodeFrac float64
	// GenWeights is the distribution over server generations 1..3.
	GenWeights [3]float64
	// MeanMaxMemFrac is the mean of the per-VM maximum memory
	// utilisation fraction.
	MeanMaxMemFrac float64
	// DeferrableFrac is the fraction of non-full-node arrivals marked
	// delay-tolerant. Zero (the default) leaves the generator's RNG
	// draw sequence untouched, so every pre-existing seeded trace is
	// byte-identical with the annotation machinery in place.
	DeferrableFrac float64
	// MeanSlackHours is the mean scheduling slack (exponential) given
	// to deferrable VMs. Must be positive when DeferrableFrac > 0.
	MeanSlackHours float64
}

// DefaultParams returns a production-like parameterisation.
func DefaultParams(name string, seed uint64) GenParams {
	return GenParams{
		Name:              name,
		Seed:              seed,
		ArrivalsPerHour:   24,
		HorizonHours:      24 * 14,
		MeanLifetimeHours: 30,
		CoreSizes:         []int{2, 4, 8, 16, 32},
		CoreWeights:       []float64{0.38, 0.30, 0.20, 0.09, 0.03},
		MemPerCoreGB:      6,
		FullNodeFrac:      0.004,
		GenWeights:        [3]float64{0.25, 0.35, 0.40},
		MeanMaxMemFrac:    0.52,
	}
}

// Generate produces a synthetic trace.
func Generate(p GenParams) (Trace, error) {
	if p.ArrivalsPerHour <= 0 || p.HorizonHours <= 0 || p.MeanLifetimeHours <= 0 {
		return Trace{}, fmt.Errorf("trace: rates and horizon must be positive")
	}
	if len(p.CoreSizes) == 0 || len(p.CoreSizes) != len(p.CoreWeights) {
		return Trace{}, fmt.Errorf("trace: core size/weight mismatch")
	}
	if p.DeferrableFrac < 0 || p.DeferrableFrac > 1 {
		return Trace{}, fmt.Errorf("trace: deferrable fraction %v out of [0,1]", p.DeferrableFrac)
	}
	if p.DeferrableFrac > 0 && p.MeanSlackHours <= 0 {
		return Trace{}, fmt.Errorf("trace: deferrable VMs need a positive mean slack")
	}
	r := stats.NewRNG(p.Seed)
	appsByClass := apps.ByClass()
	classes := []apps.Class{apps.BigData, apps.WebApp, apps.RTC, apps.MLInference, apps.WebProxy, apps.DevOps}
	classWeights := make([]float64, len(classes))
	for i, c := range classes {
		classWeights[i] = apps.ClassShares[c]
	}

	var tr Trace
	tr.Name = p.Name
	tr.Horizon = p.HorizonHours
	// Poisson arrivals over the horizon average ArrivalsPerHour *
	// HorizonHours VMs; pre-sizing to that expectation (plus a small
	// margin for upward fluctuation) keeps the generator from growing
	// the slice a dozen times per trace.
	expected := p.ArrivalsPerHour * p.HorizonHours
	tr.VMs = make([]VM, 0, int(expected+4*math.Sqrt(expected))+1)
	now := 0.0
	id := 0
	// Pareto shape 1.2 over [0.5h, horizon]; rescale to the requested
	// mean lifetime.
	const alpha = 1.2
	rawMean := boundedParetoMean(alpha, 0.5, p.HorizonHours)
	scale := p.MeanLifetimeHours / rawMean
	for {
		now += r.Exp(1 / p.ArrivalsPerHour)
		if now >= p.HorizonHours {
			break
		}
		life := r.BoundedPareto(alpha, 0.5, p.HorizonHours) * scale
		if life < 0.25 {
			life = 0.25
		}
		cores := p.CoreSizes[r.Pick(p.CoreWeights)]
		memPerCore := p.MemPerCoreGB * (0.75 + 0.5*r.Float64())
		class := classes[r.Pick(classWeights)]
		pool := appsByClass[class]
		app := pool[r.Intn(len(pool))]
		full := r.Float64() < p.FullNodeFrac
		if full {
			// Full-node VMs request a whole baseline server's
			// resources and live several times longer than average.
			cores = 80
			memPerCore = 9.6
			life *= 3
			if life > p.HorizonHours {
				life = p.HorizonHours
			}
		}
		frac := p.MeanMaxMemFrac + r.Normal(0, 0.18)
		frac = math.Max(0.05, math.Min(1, frac))
		// Deferrable annotation draws are gated behind the parameter so
		// a zero DeferrableFrac consumes no RNG state: every trace
		// generated before the annotation existed stays byte-identical.
		deferrable := false
		slack := 0.0
		if p.DeferrableFrac > 0 {
			deferrable = r.Float64() < p.DeferrableFrac && !full
			if deferrable {
				slack = r.Exp(p.MeanSlackHours)
			}
		}
		tr.VMs = append(tr.VMs, VM{
			ID:         id,
			Arrive:     now,
			Depart:     now + life,
			Cores:      cores,
			Memory:     units.GB(float64(cores) * memPerCore),
			Gen:        1 + r.Pick([]float64{p.GenWeights[0], p.GenWeights[1], p.GenWeights[2]}),
			FullNode:   full,
			App:        app.Name,
			MaxMemFrac: frac,
			Deferrable: deferrable,
			SlackHours: slack,
		})
		id++
	}
	sort.Slice(tr.VMs, func(i, j int) bool { return tr.VMs[i].Arrive < tr.VMs[j].Arrive })
	return tr, tr.Validate()
}

func boundedParetoMean(alpha, lo, hi float64) float64 {
	la := math.Pow(lo, alpha)
	return la / (1 - math.Pow(lo/hi, alpha)) * alpha / (alpha - 1) *
		(1/math.Pow(lo, alpha-1) - 1/math.Pow(hi, alpha-1))
}

// ProductionSuite generates the 35-trace suite standing in for the
// paper's 35 production VM traces (§VI). Each trace varies load, VM
// size mix, lifetime, and memory-touch behaviour.
func ProductionSuite() ([]Trace, error) {
	const n = 35
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		p := DefaultParams(fmt.Sprintf("prod-%02d", i), 1000+uint64(i)*7919)
		// Vary the operating point across the suite.
		p.ArrivalsPerHour = 16 + float64(i%7)*4
		p.MeanLifetimeHours = 20 + float64(i%5)*8
		p.MeanMaxMemFrac = 0.42 + 0.02*float64(i%9)
		p.FullNodeFrac = 0.002 + 0.002*float64(i%3)
		if i%4 == 0 { // some clusters skew to larger VMs
			p.CoreWeights = []float64{0.25, 0.28, 0.25, 0.15, 0.07}
		}
		tr, err := Generate(p)
		if err != nil {
			return nil, err
		}
		out = append(out, tr)
	}
	return out, nil
}

// Stats summarises a trace.
type Stats struct {
	VMs           int
	FullNodeVMs   int
	DeferrableVMs int
	MeanCores     float64
	MeanMemoryGB  float64
	MeanLifetime  float64
	MeanMaxMem    float64
	PeakCoreDmd   int // peak concurrently requested cores
	PeakMemoryDmd units.GB
}

// demandEvent is one arrival (+cores/+mem) or departure (-cores/-mem)
// edge of the concurrent-demand profile Summarise sweeps.
type demandEvent struct {
	at    float64
	cores int
	mem   float64
}

// eventPool recycles Summarise's event buffer: the 35-trace suite
// summarises tens of thousands of VMs per call, and the 2-events-per-VM
// scratch slice is pure garbage between calls.
var eventPool sync.Pool

// Summarise computes trace statistics, including peak concurrent
// demand (the lower bound for any cluster that hosts the trace).
func Summarise(t Trace) Stats {
	var s Stats
	s.VMs = len(t.VMs)
	var events []demandEvent
	if p, _ := eventPool.Get().(*[]demandEvent); p != nil && cap(*p) >= 2*len(t.VMs) {
		events = (*p)[:0]
	} else {
		events = make([]demandEvent, 0, 2*len(t.VMs))
	}
	defer func() {
		events = events[:0]
		eventPool.Put(&events)
	}()
	for _, v := range t.VMs {
		s.MeanCores += float64(v.Cores)
		s.MeanMemoryGB += float64(v.Memory)
		s.MeanLifetime += v.Lifetime()
		s.MeanMaxMem += v.MaxMemFrac
		if v.FullNode {
			s.FullNodeVMs++
		}
		if v.Deferrable {
			s.DeferrableVMs++
		}
		events = append(events, demandEvent{v.Arrive, v.Cores, float64(v.Memory)},
			demandEvent{v.Depart, -v.Cores, -float64(v.Memory)})
	}
	if s.VMs > 0 {
		n := float64(s.VMs)
		s.MeanCores /= n
		s.MeanMemoryGB /= n
		s.MeanLifetime /= n
		s.MeanMaxMem /= n
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		// Departures before arrivals at the same instant.
		return events[i].cores < events[j].cores
	})
	var cores int
	var mem float64
	for _, e := range events {
		cores += e.cores
		mem += e.mem
		if cores > s.PeakCoreDmd {
			s.PeakCoreDmd = cores
		}
		if units.GB(mem) > s.PeakMemoryDmd {
			s.PeakMemoryDmd = units.GB(mem)
		}
	}
	return s
}
