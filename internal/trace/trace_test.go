package trace

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greensku/gsf/internal/apps"
)

func gen(t *testing.T, p GenParams) Trace {
	t.Helper()
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateValidates(t *testing.T) {
	tr := gen(t, DefaultParams("t", 1))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.VMs) < 1000 {
		t.Fatalf("trace has only %d VMs", len(tr.VMs))
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, DefaultParams("t", 9))
	b := gen(t, DefaultParams("t", 9))
	if len(a.VMs) != len(b.VMs) {
		t.Fatal("same seed produced different VM counts")
	}
	for i := range a.VMs {
		if a.VMs[i] != b.VMs[i] {
			t.Fatalf("VM %d differs between identical generations", i)
		}
	}
}

func TestSizeMix(t *testing.T) {
	tr := gen(t, DefaultParams("t", 2))
	counts := map[int]int{}
	for _, v := range tr.VMs {
		if !v.FullNode {
			counts[v.Cores]++
		}
	}
	// Small VMs dominate (the documented Azure skew).
	if counts[2] < counts[16] || counts[4] < counts[32] {
		t.Fatalf("size mix not small-VM-heavy: %v", counts)
	}
}

func TestMaxMemFracAveragesNearHalf(t *testing.T) {
	// Pond: "untouched memory is almost half of a VM's memory".
	tr := gen(t, DefaultParams("t", 3))
	s := Summarise(tr)
	if math.Abs(s.MeanMaxMem-0.52) > 0.05 {
		t.Fatalf("mean max-memory fraction = %v, want ~0.52", s.MeanMaxMem)
	}
}

func TestFullNodeVMs(t *testing.T) {
	tr := gen(t, DefaultParams("t", 4))
	s := Summarise(tr)
	frac := float64(s.FullNodeVMs) / float64(s.VMs)
	if frac < 0.001 || frac > 0.02 {
		t.Fatalf("full-node fraction = %v, want ~0.004", frac)
	}
	for _, v := range tr.VMs {
		if v.FullNode && (v.Cores != 80 || v.Memory != 768) {
			t.Fatalf("full-node VM should request a whole baseline server, got %d cores / %v", v.Cores, v.Memory)
		}
	}
}

func TestAppAssignmentFollowsClassShares(t *testing.T) {
	tr := gen(t, DefaultParams("t", 5))
	classCores := map[apps.Class]float64{}
	var total float64
	for _, v := range tr.VMs {
		a, err := apps.ByName(v.App)
		if err != nil {
			t.Fatalf("VM assigned unknown app %q", v.App)
		}
		w := float64(v.Cores) * v.Lifetime()
		classCores[a.Class] += w
		total += w
	}
	// Class shares steer VM counts, not core-hours directly, so allow
	// wide bands; big data must far exceed devops.
	if classCores[apps.BigData] < 4*classCores[apps.DevOps] {
		t.Fatalf("class shares not respected: big-data %v vs devops %v",
			classCores[apps.BigData]/total, classCores[apps.DevOps]/total)
	}
}

func TestGenerationsSpan(t *testing.T) {
	tr := gen(t, DefaultParams("t", 6))
	seen := map[int]int{}
	for _, v := range tr.VMs {
		seen[v.Gen]++
	}
	for gen := 1; gen <= 3; gen++ {
		if seen[gen] == 0 {
			t.Fatalf("no VMs on generation %d", gen)
		}
	}
}

func TestProductionSuite(t *testing.T) {
	suite, err := ProductionSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != 35 {
		t.Fatalf("suite has %d traces, want 35 (as in §VI)", len(suite))
	}
	names := map[string]bool{}
	var sizes []int
	for _, tr := range suite {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
		if names[tr.Name] {
			t.Fatalf("duplicate trace name %s", tr.Name)
		}
		names[tr.Name] = true
		sizes = append(sizes, len(tr.VMs))
	}
	// Traces must differ (varied operating points).
	allSame := true
	for _, n := range sizes {
		if n != sizes[0] {
			allSame = false
		}
	}
	if allSame {
		t.Fatal("all traces have identical VM counts; suite is not varied")
	}
}

func TestSummarisePeakDemand(t *testing.T) {
	tr := Trace{Name: "manual", Horizon: 10, VMs: []VM{
		{ID: 0, Arrive: 0, Depart: 5, Cores: 4, Memory: 16, Gen: 1, MaxMemFrac: 0.5},
		{ID: 1, Arrive: 1, Depart: 6, Cores: 8, Memory: 32, Gen: 2, MaxMemFrac: 0.5},
		{ID: 2, Arrive: 5, Depart: 9, Cores: 2, Memory: 8, Gen: 3, MaxMemFrac: 0.5},
	}}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := Summarise(tr)
	// At t=5 VM0 departs exactly as VM2 arrives; departures first, so
	// the peak is VM0+VM1 = 12 cores.
	if s.PeakCoreDmd != 12 {
		t.Fatalf("peak core demand = %d, want 12", s.PeakCoreDmd)
	}
	if s.PeakMemoryDmd != 48 {
		t.Fatalf("peak memory demand = %v, want 48", s.PeakMemoryDmd)
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []Trace{
		{VMs: []VM{{Arrive: 2, Depart: 1, Cores: 2, Memory: 8, Gen: 1}}},
		{VMs: []VM{{Arrive: 0, Depart: 1, Cores: 0, Memory: 8, Gen: 1}}},
		{VMs: []VM{{Arrive: 0, Depart: 1, Cores: 2, Memory: 8, Gen: 9}}},
		{VMs: []VM{{Arrive: 0, Depart: 1, Cores: 2, Memory: 8, Gen: 1, MaxMemFrac: 2}}},
		{VMs: []VM{
			{Arrive: 5, Depart: 6, Cores: 2, Memory: 8, Gen: 1},
			{Arrive: 1, Depart: 2, Cores: 2, Memory: 8, Gen: 1},
		}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a broken trace", i)
		}
	}
}

func TestGenerateParamValidation(t *testing.T) {
	p := DefaultParams("x", 1)
	p.ArrivalsPerHour = 0
	if _, err := Generate(p); err == nil {
		t.Error("Generate accepted zero arrival rate")
	}
	p = DefaultParams("x", 1)
	p.CoreWeights = []float64{1}
	if _, err := Generate(p); err == nil {
		t.Error("Generate accepted mismatched size/weight lists")
	}
}

func TestPropertyLifetimesPositive(t *testing.T) {
	f := func(seed uint64) bool {
		p := DefaultParams("q", seed)
		p.HorizonHours = 100
		tr, err := Generate(p)
		if err != nil {
			return false
		}
		for _, v := range tr.VMs {
			if v.Lifetime() <= 0 || v.Arrive < 0 || v.Arrive > p.HorizonHours {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
