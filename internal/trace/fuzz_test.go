package trace

import (
	"bytes"
	"math"
	"testing"
)

// FuzzTraceCSV feeds arbitrary bytes to ReadCSV and, whenever the
// input parses as a valid trace, checks the serialisation round trip:
// WriteCSV must succeed, its output must re-read as an equivalent
// trace (exact on integer/string fields, within the documented column
// precision on floats), and the only acceptable re-read failures are
// the rounding collapses the fixed-precision format allows (a VM
// lifetime under the 3-decimal resolution, or a memory request that
// rounds to zero GB).
func FuzzTraceCSV(f *testing.F) {
	f.Add([]byte("id,arrive_h,depart_h,cores,memory_gb,gen,full_node,app,max_mem_frac\n"))
	f.Add([]byte("id,arrive_h,depart_h,cores,memory_gb,gen,full_node,app,max_mem_frac\n" +
		"0,0.500,12.250,4,24,2,false,web-serve,0.410\n" +
		"1,1.000,300.000,80,768,3,true,\"big,data\",0.900\n"))
	f.Add([]byte("id,arrive_h,depart_h,cores,memory_gb,gen,full_node,app,max_mem_frac,deferrable,slack_h\n" +
		"0,0.500,12.250,4,24,2,false,web-serve,0.410,true,6.000\n" +
		"1,1.000,300.000,80,768,3,true,\"big,data\",0.900,false,0.000\n"))
	f.Add([]byte("id,arrive_h,depart_h,cores\n0,1,2,4\n"))
	f.Add([]byte("not a csv at all \x00\xff"))
	f.Add([]byte("id,arrive_h,depart_h,cores,memory_gb,gen,full_node,app,max_mem_frac\n" +
		"0,NaN,2.000,4,24,2,false,web-serve,0.500\n"))

	// Seed with the generator's own output so the fuzzer starts from a
	// fully realistic trace.
	tr, err := Generate(DefaultParams("fuzz-seed", 7))
	if err != nil {
		f.Fatal(err)
	}
	tr.VMs = tr.VMs[:min(len(tr.VMs), 20)]
	var seed bytes.Buffer
	if err := WriteCSV(&seed, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejecting malformed input is the contract
		}
		var w1 bytes.Buffer
		if err := WriteCSV(&w1, tr); err != nil {
			t.Fatalf("WriteCSV failed on a valid trace: %v", err)
		}
		tr2, err := ReadCSV(bytes.NewReader(w1.Bytes()), "fuzz")
		if err != nil {
			// Our own output may only be rejected when fixed-precision
			// rounding collapsed a field, never for structural reasons.
			for _, v := range tr.VMs {
				if v.Depart-v.Arrive <= 0.0011 || float64(v.Memory) <= 0.5011 {
					return
				}
			}
			t.Fatalf("re-read of own output failed without a rounding collapse: %v\n%s", err, w1.Bytes())
		}
		if len(tr2.VMs) != len(tr.VMs) {
			t.Fatalf("round trip changed VM count: %d -> %d", len(tr.VMs), len(tr2.VMs))
		}
		for i, a := range tr.VMs {
			b := tr2.VMs[i]
			if a.ID != b.ID || a.Cores != b.Cores || a.Gen != b.Gen ||
				a.FullNode != b.FullNode || a.App != b.App || a.Deferrable != b.Deferrable {
				t.Fatalf("VM %d exact fields changed: %+v -> %+v", i, a, b)
			}
			// arrive_h/depart_h/max_mem_frac carry 3 decimals, memory_gb
			// carries 0; allow half a unit in the last place plus float
			// slack proportional to the magnitude.
			checkClose(t, i, "arrive", a.Arrive, b.Arrive, 0.0005)
			checkClose(t, i, "depart", a.Depart, b.Depart, 0.0005)
			checkClose(t, i, "max_mem_frac", a.MaxMemFrac, b.MaxMemFrac, 0.0005)
			checkClose(t, i, "memory", float64(a.Memory), float64(b.Memory), 0.5)
			checkClose(t, i, "slack_h", a.SlackHours, b.SlackHours, 0.0005)
		}
	})
}

func checkClose(t *testing.T, i int, field string, a, b, unit float64) {
	t.Helper()
	if math.Abs(a-b) > unit+1e-9*math.Abs(a) {
		t.Fatalf("VM %d %s drifted beyond column precision: %v -> %v", i, field, a, b)
	}
}
