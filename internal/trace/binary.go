package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"

	"github.com/greensku/gsf/internal/units"
)

// Binary trace format "GSFB" version 1.
//
// The CSV codec is fine for 300k-VM traces but a 100M-event replay
// cannot afford ~100 bytes/row of text or a materialized []VM. GSFB is
// a compact, streamable alternative: varint-delta encoded, with a
// versioned header, decode-time validation (every record passes
// CheckVM as it is produced), and a canonical encoding — for any
// decodable stream, re-encoding the decoded trace reproduces the input
// byte for byte (FuzzBinaryTrace holds this).
//
// Layout:
//
//	magic "GSFB" | uvarint version (=1) | uvarint len(name) | name
//	| horizon float64 bits LE (8 bytes) | uvarint count
//	| count records
//
// Per record:
//
//	zigzag-varint  ID - prevID
//	flags byte     bit0 FullNode, bit1 Deferrable, bits2-3 Gen-1
//	               (3 invalid), bits 4-7 must be zero
//	uvarint        arrival: record 0 carries orderedBits(Arrive)
//	               absolute; later records carry the delta
//	               orderedBits(Arrive) - orderedBits(prevArrive).
//	               Deltas are unsigned, so the format physically
//	               cannot express an out-of-order trace.
//	uvarint        orderedBits(Depart) - orderedBits(Arrive); zero or
//	               wrapping values decode to Depart <= Arrive and are
//	               rejected, so negative durations cannot round-trip.
//	uvarint        Cores (capped at maxBinaryCores)
//	uvarint        bswap64(Float64bits(Memory)) — round values have
//	               trailing-zero mantissas, so byte-swapping puts the
//	               zeros where varints drop them
//	app            uvarint intern-table index; an index equal to the
//	               table length introduces a new entry (uvarint len +
//	               bytes); larger indices are invalid
//	uvarint        bswap64(Float64bits(MaxMemFrac))
//	uvarint        bswap64(Float64bits(SlackHours)) — present only
//	               when the Deferrable flag is set
//
// All varints must be minimally encoded; the decoder rejects
// non-canonical forms so that decode∘encode is the identity on valid
// streams.
const (
	binaryMagic   = "GSFB"
	binaryVersion = 1

	// maxBinaryName bounds the trace-name field so a corrupt header
	// cannot demand an unbounded allocation.
	maxBinaryName = 1 << 12
	// maxBinaryApp bounds one application-name intern entry.
	maxBinaryApp = 1 << 10
	// maxBinaryCores bounds a single VM's core request; the largest
	// real request in the suite is a full 80-core node.
	maxBinaryCores = 1 << 20
	// maxBinaryPrealloc caps the slice capacity ReadBinary trusts from
	// the header count, so a forged count cannot allocate gigabytes
	// before the first record fails to parse.
	maxBinaryPrealloc = 1 << 20
)

// orderedBits maps float64 to uint64 so that float ordering matches
// unsigned integer ordering (a strictly monotone bijection). It is how
// arrival/departure deltas become small non-negative varints.
func orderedBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 == 1 {
		return ^b
	}
	return b | 1<<63
}

// unorderedBits inverts orderedBits.
func unorderedBits(u uint64) float64 {
	if u>>63 == 1 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// swappedBits byte-swaps a float's bit pattern: "round" values (48 GB,
// 0.5, 3.0) have long runs of trailing mantissa zeros, and the swap
// moves them to the high varint groups that a minimal encoding omits.
func swappedBits(f float64) uint64 { return bits.ReverseBytes64(math.Float64bits(f)) }

func unswappedBits(u uint64) float64 { return math.Float64frombits(bits.ReverseBytes64(u)) }

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// record flag bits.
const (
	flagFullNode   = 1 << 0
	flagDeferrable = 1 << 1
	flagGenShift   = 2
	flagGenMask    = 3 << flagGenShift
	flagReserved   = ^byte(flagFullNode | flagDeferrable | flagGenMask)
)

// BinaryWriter streams VMs into the GSFB format without materializing
// the trace. The caller declares the record count up front (the header
// carries it so decoders can pre-size); Flush fails if the count and
// the number of Write calls disagree.
type BinaryWriter struct {
	w          *bufio.Writer
	name       string
	count      uint64
	written    uint64
	prevID     int64
	prevArrive float64
	interned   map[string]uint64
	buf        []byte
	err        error
}

// NewBinaryWriter writes the GSFB header and returns a writer ready to
// stream count records.
func NewBinaryWriter(w io.Writer, name string, horizon float64, count int) (*BinaryWriter, error) {
	if len(name) > maxBinaryName {
		return nil, fmt.Errorf("trace: binary: name is %d bytes, max %d", len(name), maxBinaryName)
	}
	if !finite(horizon) {
		return nil, fmt.Errorf("trace: binary: non-finite horizon %v", horizon)
	}
	if count < 0 {
		return nil, fmt.Errorf("trace: binary: negative record count %d", count)
	}
	bw := &BinaryWriter{
		w:          bufio.NewWriter(w),
		name:       name,
		count:      uint64(count),
		prevArrive: math.Inf(-1),
		interned:   make(map[string]uint64),
		buf:        make([]byte, 0, 8*binary.MaxVarintLen64),
	}
	bw.buf = append(bw.buf, binaryMagic...)
	bw.buf = binary.AppendUvarint(bw.buf, binaryVersion)
	bw.buf = binary.AppendUvarint(bw.buf, uint64(len(name)))
	bw.buf = append(bw.buf, name...)
	bw.buf = binary.LittleEndian.AppendUint64(bw.buf, math.Float64bits(horizon))
	bw.buf = binary.AppendUvarint(bw.buf, bw.count)
	if _, err := bw.w.Write(bw.buf); err != nil {
		bw.err = err
		return nil, err
	}
	return bw, nil
}

// Write appends one VM. Records must arrive pre-sorted and valid: each
// is checked with CheckVM against the previous arrival, exactly what a
// decoder will enforce, so an encodable stream is a decodable one.
func (bw *BinaryWriter) Write(vm VM) error {
	if bw.err != nil {
		return bw.err
	}
	if bw.written >= bw.count {
		return bw.fail(fmt.Errorf("trace: binary: more than the declared %d records", bw.count))
	}
	if err := CheckVM(bw.name, int(bw.written), bw.prevArrive, vm); err != nil {
		return bw.fail(err)
	}
	if vm.Cores > maxBinaryCores {
		return bw.fail(fmt.Errorf("trace: binary: VM %d requests %d cores, max %d", bw.written, vm.Cores, maxBinaryCores))
	}
	if len(vm.App) > maxBinaryApp {
		return bw.fail(fmt.Errorf("trace: binary: VM %d app name is %d bytes, max %d", bw.written, len(vm.App), maxBinaryApp))
	}
	buf := bw.buf[:0]
	buf = binary.AppendUvarint(buf, zigzag(int64(vm.ID)-bw.prevID))
	var flags byte
	if vm.FullNode {
		flags |= flagFullNode
	}
	if vm.Deferrable {
		flags |= flagDeferrable
	}
	flags |= byte(vm.Gen-1) << flagGenShift
	buf = append(buf, flags)
	if bw.written == 0 {
		buf = binary.AppendUvarint(buf, orderedBits(vm.Arrive))
	} else {
		buf = binary.AppendUvarint(buf, orderedBits(vm.Arrive)-orderedBits(bw.prevArrive))
	}
	buf = binary.AppendUvarint(buf, orderedBits(vm.Depart)-orderedBits(vm.Arrive))
	buf = binary.AppendUvarint(buf, uint64(vm.Cores))
	buf = binary.AppendUvarint(buf, swappedBits(float64(vm.Memory)))
	if ix, ok := bw.interned[vm.App]; ok {
		buf = binary.AppendUvarint(buf, ix)
	} else {
		ix = uint64(len(bw.interned))
		bw.interned[vm.App] = ix
		buf = binary.AppendUvarint(buf, ix)
		buf = binary.AppendUvarint(buf, uint64(len(vm.App)))
		buf = append(buf, vm.App...)
	}
	buf = binary.AppendUvarint(buf, swappedBits(vm.MaxMemFrac))
	if vm.Deferrable {
		buf = binary.AppendUvarint(buf, swappedBits(vm.SlackHours))
	}
	bw.buf = buf[:0]
	if _, err := bw.w.Write(buf); err != nil {
		return bw.fail(err)
	}
	bw.prevID = int64(vm.ID)
	bw.prevArrive = vm.Arrive
	bw.written++
	return nil
}

func (bw *BinaryWriter) fail(err error) error {
	bw.err = err
	return err
}

// Flush completes the stream, verifying the declared record count was
// met and draining the buffered writer.
func (bw *BinaryWriter) Flush() error {
	if bw.err != nil {
		return bw.err
	}
	if bw.written != bw.count {
		return bw.fail(fmt.Errorf("trace: binary: wrote %d of the declared %d records", bw.written, bw.count))
	}
	if err := bw.w.Flush(); err != nil {
		return bw.fail(err)
	}
	return nil
}

// WriteBinary serialises a whole trace in the GSFB format.
func WriteBinary(w io.Writer, t Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	bw, err := NewBinaryWriter(w, t.Name, t.Horizon, len(t.VMs))
	if err != nil {
		return err
	}
	for _, vm := range t.VMs {
		if err := bw.Write(vm); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// BinaryReader streams a GSFB trace: a Source whose memory footprint
// is O(1) in the event count. Every record is validated with CheckVM
// at decode time — non-finite fields, negative durations, bad
// generations, and slack-without-deferrable are rejected as they are
// read, not after the fact.
type BinaryReader struct {
	r          *bufio.Reader
	name       string
	horizon    float64
	count      uint64
	read       uint64
	prevID     int64
	prevArrive float64
	table      []string
	tableIx    map[string]struct{}
	err        error
	done       bool
}

// NewBinaryReader parses the GSFB header and returns a streaming
// reader positioned at the first record.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	br := &BinaryReader{r: bufio.NewReader(r), prevArrive: math.Inf(-1)}
	var magic [len(binaryMagic)]byte
	if _, err := io.ReadFull(br.r, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: binary: reading magic: %w", err)
	}
	if string(magic[:]) != binaryMagic {
		return nil, fmt.Errorf("trace: binary: bad magic %q", magic[:])
	}
	version, err := br.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: binary: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: binary: unsupported version %d", version)
	}
	nameLen, err := br.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: binary: reading name length: %w", err)
	}
	if nameLen > maxBinaryName {
		return nil, fmt.Errorf("trace: binary: name is %d bytes, max %d", nameLen, maxBinaryName)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br.r, name); err != nil {
		return nil, fmt.Errorf("trace: binary: reading name: %w", err)
	}
	br.name = string(name)
	var hbits [8]byte
	if _, err := io.ReadFull(br.r, hbits[:]); err != nil {
		return nil, fmt.Errorf("trace: binary: reading horizon: %w", err)
	}
	br.horizon = math.Float64frombits(binary.LittleEndian.Uint64(hbits[:]))
	if !finite(br.horizon) {
		return nil, fmt.Errorf("trace: binary: non-finite horizon %v", br.horizon)
	}
	if br.count, err = br.uvarint(); err != nil {
		return nil, fmt.Errorf("trace: binary: reading record count: %w", err)
	}
	return br, nil
}

// uvarint reads one minimally-encoded unsigned varint. Non-canonical
// encodings (padded with redundant continuation groups) are rejected:
// accepting them would let two distinct byte streams decode to the
// same trace, breaking the re-encode byte-identity guarantee.
func (br *BinaryReader) uvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("varint overflows 64 bits")
			}
			if i > 0 && b == 0 {
				return 0, fmt.Errorf("non-canonical varint")
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("varint overflows 64 bits")
}

// Next decodes the next record. After the final record it verifies the
// stream ends exactly there — trailing bytes are an error, so every
// valid stream is the canonical encoding of its trace.
func (br *BinaryReader) Next() (VM, bool) {
	if br.err != nil || br.done {
		return VM{}, false
	}
	if br.read == br.count {
		br.done = true
		if _, err := br.r.ReadByte(); err != io.EOF {
			if err == nil {
				br.err = fmt.Errorf("trace: binary: trailing data after %d records", br.count)
			} else {
				br.err = fmt.Errorf("trace: binary: after final record: %w", err)
			}
		}
		return VM{}, false
	}
	vm, err := br.record()
	if err != nil {
		br.err = fmt.Errorf("trace: binary: record %d: %w", br.read, err)
		return VM{}, false
	}
	if err := CheckVM(br.name, int(br.read), br.prevArrive, vm); err != nil {
		br.err = err
		return VM{}, false
	}
	br.prevID = int64(vm.ID)
	br.prevArrive = vm.Arrive
	br.read++
	return vm, true
}

func (br *BinaryReader) record() (VM, error) {
	var vm VM
	idDelta, err := br.uvarint()
	if err != nil {
		return vm, fmt.Errorf("id: %w", err)
	}
	vm.ID = int(br.prevID + unzigzag(idDelta))
	flags, err := br.r.ReadByte()
	if err != nil {
		return vm, fmt.Errorf("flags: %w", err)
	}
	if flags&flagReserved != 0 {
		return vm, fmt.Errorf("reserved flag bits %#x set", flags&flagReserved)
	}
	vm.FullNode = flags&flagFullNode != 0
	vm.Deferrable = flags&flagDeferrable != 0
	vm.Gen = int(flags&flagGenMask)>>flagGenShift + 1
	arriveDelta, err := br.uvarint()
	if err != nil {
		return vm, fmt.Errorf("arrive: %w", err)
	}
	if br.read == 0 {
		vm.Arrive = unorderedBits(arriveDelta)
	} else {
		vm.Arrive = unorderedBits(orderedBits(br.prevArrive) + arriveDelta)
	}
	departDelta, err := br.uvarint()
	if err != nil {
		return vm, fmt.Errorf("depart: %w", err)
	}
	vm.Depart = unorderedBits(orderedBits(vm.Arrive) + departDelta)
	cores, err := br.uvarint()
	if err != nil {
		return vm, fmt.Errorf("cores: %w", err)
	}
	if cores > maxBinaryCores {
		return vm, fmt.Errorf("%d cores, max %d", cores, maxBinaryCores)
	}
	vm.Cores = int(cores)
	mem, err := br.uvarint()
	if err != nil {
		return vm, fmt.Errorf("memory: %w", err)
	}
	vm.Memory = units.GB(unswappedBits(mem))
	appIx, err := br.uvarint()
	if err != nil {
		return vm, fmt.Errorf("app: %w", err)
	}
	switch {
	case appIx < uint64(len(br.table)):
		vm.App = br.table[appIx]
	case appIx == uint64(len(br.table)):
		appLen, err := br.uvarint()
		if err != nil {
			return vm, fmt.Errorf("app length: %w", err)
		}
		if appLen > maxBinaryApp {
			return vm, fmt.Errorf("app name is %d bytes, max %d", appLen, maxBinaryApp)
		}
		name := make([]byte, appLen)
		if _, err := io.ReadFull(br.r, name); err != nil {
			return vm, fmt.Errorf("app name: %w", err)
		}
		vm.App = string(name)
		// A string may enter the intern table only once: a stream that
		// re-introduces a known name would decode fine but re-encode as
		// a back-reference, breaking the canonical-encoding guarantee.
		if br.tableIx == nil {
			br.tableIx = make(map[string]struct{})
		}
		if _, dup := br.tableIx[vm.App]; dup {
			return vm, fmt.Errorf("app %q interned twice", vm.App)
		}
		br.tableIx[vm.App] = struct{}{}
		br.table = append(br.table, vm.App)
	default:
		return vm, fmt.Errorf("app intern index %d past table size %d", appIx, len(br.table))
	}
	frac, err := br.uvarint()
	if err != nil {
		return vm, fmt.Errorf("max_mem_frac: %w", err)
	}
	vm.MaxMemFrac = unswappedBits(frac)
	if vm.Deferrable {
		slack, err := br.uvarint()
		if err != nil {
			return vm, fmt.Errorf("slack: %w", err)
		}
		vm.SlackHours = unswappedBits(slack)
	}
	return vm, nil
}

// Err reports the first decode error, or nil after a clean end of
// stream.
func (br *BinaryReader) Err() error { return br.err }

// Name returns the trace name from the header.
func (br *BinaryReader) Name() string { return br.name }

// Horizon returns the trace horizon from the header.
func (br *BinaryReader) Horizon() float64 { return br.horizon }

// Count returns the declared record count from the header.
func (br *BinaryReader) Count() uint64 { return br.count }

// ReadBinary materializes a whole GSFB trace, rejecting streams whose
// record count disagrees with the header or that carry trailing data.
func ReadBinary(r io.Reader) (Trace, error) {
	br, err := NewBinaryReader(r)
	if err != nil {
		return Trace{}, err
	}
	var t Trace
	t.Name = br.Name()
	t.Horizon = br.Horizon()
	prealloc := br.Count()
	if prealloc > maxBinaryPrealloc {
		prealloc = maxBinaryPrealloc
	}
	t.VMs = make([]VM, 0, prealloc)
	for {
		vm, ok := br.Next()
		if !ok {
			break
		}
		t.VMs = append(t.VMs, vm)
	}
	if err := br.Err(); err != nil {
		return Trace{}, err
	}
	return t, nil
}
