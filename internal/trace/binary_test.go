package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

// binBuilder hand-assembles GSFB byte streams so the decode-hardening
// tests can express exactly one defect per case.
type binBuilder struct{ buf []byte }

func (b *binBuilder) uvarint(v uint64)  { b.buf = binary.AppendUvarint(b.buf, v) }
func (b *binBuilder) raw(p ...byte)     { b.buf = append(b.buf, p...) }
func (b *binBuilder) str(s string)      { b.buf = append(b.buf, s...) }
func (b *binBuilder) f64bits(f float64) { b.buf = binary.LittleEndian.AppendUint64(b.buf, math.Float64bits(f)) }

func (b *binBuilder) header(name string, horizon float64, count uint64) {
	b.str(binaryMagic)
	b.uvarint(binaryVersion)
	b.uvarint(uint64(len(name)))
	b.str(name)
	b.f64bits(horizon)
	b.uvarint(count)
}

// record appends one record introducing app fresh (index == table len).
func (b *binBuilder) record(idDelta int64, flags byte, arrive, departDelta, cores, mem uint64, appIx uint64, app string, frac uint64, slack ...uint64) {
	b.uvarint(zigzag(idDelta))
	b.raw(flags)
	b.uvarint(arrive)
	b.uvarint(departDelta)
	b.uvarint(cores)
	b.uvarint(mem)
	b.uvarint(appIx)
	if app != "" {
		b.uvarint(uint64(len(app)))
		b.str(app)
	}
	b.uvarint(frac)
	for _, s := range slack {
		b.uvarint(s)
	}
}

func testVM() VM {
	return VM{ID: 0, Arrive: 1, Depart: 2, Cores: 4, Memory: 24, Gen: 2, App: "web", MaxMemFrac: 0.5}
}

func TestBinaryRoundTripGenerated(t *testing.T) {
	p := DefaultParams("bin-roundtrip", 17)
	p.DeferrableFrac = 0.2
	p.MeanSlackHours = 12
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Horizon != tr.Horizon {
		t.Fatalf("header changed: (%q, %v) -> (%q, %v)", tr.Name, tr.Horizon, got.Name, got.Horizon)
	}
	if len(got.VMs) != len(tr.VMs) {
		t.Fatalf("VM count changed: %d -> %d", len(tr.VMs), len(got.VMs))
	}
	for i := range tr.VMs {
		if tr.VMs[i] != got.VMs[i] {
			t.Fatalf("VM %d changed:\n  %+v\n  %+v", i, tr.VMs[i], got.VMs[i])
		}
	}
	// The binary form must be exact where CSV rounds, and still
	// smaller than the CSV it replaces.
	var csv bytes.Buffer
	if err := WriteCSV(&csv, tr); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= csv.Len() {
		t.Fatalf("binary (%d bytes) not smaller than CSV (%d bytes)", buf.Len(), csv.Len())
	}
}

func TestBinaryReEncodeByteIdentical(t *testing.T) {
	tr, err := Generate(DefaultParams("bin-canon", 23))
	if err != nil {
		t.Fatal(err)
	}
	tr.VMs = tr.VMs[:min(len(tr.VMs), 500)]
	var first bytes.Buffer
	if err := WriteBinary(&first, Trace{Name: tr.Name, VMs: tr.VMs, Horizon: tr.Horizon}); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadBinary(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteBinary(&second, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("decode ∘ encode is not the identity on the generator's output")
	}
}

func TestBinaryStreamingReader(t *testing.T) {
	tr, err := Generate(DefaultParams("bin-stream", 31))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	br, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if br.Name() != tr.Name || br.Horizon() != tr.Horizon || br.Count() != uint64(len(tr.VMs)) {
		t.Fatalf("header: got (%q, %v, %d)", br.Name(), br.Horizon(), br.Count())
	}
	var n int
	for {
		vm, ok := br.Next()
		if !ok {
			break
		}
		if vm != tr.VMs[n] {
			t.Fatalf("VM %d: got %+v want %+v", n, vm, tr.VMs[n])
		}
		n++
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(tr.VMs) {
		t.Fatalf("streamed %d of %d VMs", n, len(tr.VMs))
	}
	// Next after exhaustion stays exhausted.
	if _, ok := br.Next(); ok {
		t.Fatal("Next returned a VM after the stream ended")
	}
}

// Interface conformance: both the streaming decoder and the slice
// adapter satisfy the Source contract the simulator consumes.
var (
	_ Source = (*BinaryReader)(nil)
	_ Source = (*SliceSource)(nil)
)

func TestSliceSource(t *testing.T) {
	tr := Trace{Name: "s", Horizon: 10, VMs: []VM{testVM()}}
	src := NewSliceSource(tr)
	if src.Name() != "s" || src.Horizon() != 10 {
		t.Fatalf("header: got (%q, %v)", src.Name(), src.Horizon())
	}
	vm, ok := src.Next()
	if !ok || vm != tr.VMs[0] {
		t.Fatalf("Next: got (%+v, %v)", vm, ok)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Next past the end returned ok")
	}
	if src.Err() != nil {
		t.Fatal(src.Err())
	}
}

// TestBinaryDecodeRejects is the decode-hardening wall: each case is a
// byte stream with exactly one defect, and the decoder must name it.
// This is where the streaming path earns the same validation the CSV
// path gets from Trace.Validate — non-finite fields and non-positive
// durations are rejected as records are read.
func TestBinaryDecodeRejects(t *testing.T) {
	// Canonical one-record stream pieces, reused by most cases.
	arr1 := orderedBits(1)
	dep := orderedBits(2) - orderedBits(1)
	mem24 := swappedBits(24)
	frac := swappedBits(0.5)

	cases := []struct {
		name  string
		build func(b *binBuilder)
		want  string
	}{
		{
			name:  "bad magic",
			build: func(b *binBuilder) { b.str("GSFX"); b.uvarint(1) },
			want:  "bad magic",
		},
		{
			name: "unsupported version",
			build: func(b *binBuilder) {
				b.str(binaryMagic)
				b.uvarint(99)
			},
			want: "unsupported version",
		},
		{
			name:  "truncated header",
			build: func(b *binBuilder) { b.str("GS") },
			want:  "reading magic",
		},
		{
			name: "oversized name",
			build: func(b *binBuilder) {
				b.str(binaryMagic)
				b.uvarint(binaryVersion)
				b.uvarint(maxBinaryName + 1)
			},
			want: "max 4096",
		},
		{
			name: "non-finite horizon",
			build: func(b *binBuilder) {
				b.str(binaryMagic)
				b.uvarint(binaryVersion)
				b.uvarint(1)
				b.str("t")
				b.f64bits(math.NaN())
				b.uvarint(0)
			},
			want: "non-finite horizon",
		},
		{
			name: "non-finite arrive",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, orderedBits(math.NaN()), dep, 4, mem24, 0, "web", frac)
			},
			want: "non-finite field",
		},
		{
			name: "zero-duration depart",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, 0, 4, mem24, 0, "web", frac)
			},
			want: "departs before arriving",
		},
		{
			name: "wrapping depart delta",
			build: func(b *binBuilder) {
				// ordered(arrive) + delta wraps past 2^64, which can only
				// decode to a departure before the arrival (or NaN) —
				// negative durations are structurally unencodable.
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, ^uint64(0)-arr1+1, 4, mem24, 0, "web", frac)
			},
			want: "VM 0",
		},
		{
			name: "zero cores",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, dep, 0, mem24, 0, "web", frac)
			},
			want: "empty resource request",
		},
		{
			name: "cores over cap",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, dep, maxBinaryCores+1, mem24, 0, "web", frac)
			},
			want: "max 1048576",
		},
		{
			name: "negative memory",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, dep, 4, swappedBits(-24), 0, "web", frac)
			},
			want: "empty resource request",
		},
		{
			name: "generation bits 3",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 3<<flagGenShift, arr1, dep, 4, mem24, 0, "web", frac)
			},
			want: "has generation 4",
		},
		{
			name: "reserved flag bits",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift|0x10, arr1, dep, 4, mem24, 0, "web", frac)
			},
			want: "reserved flag bits",
		},
		{
			name: "max_mem_frac out of range",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, dep, 4, mem24, 0, "web", swappedBits(1.5))
			},
			want: "out of [0,1]",
		},
		{
			name: "negative slack",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift|flagDeferrable, arr1, dep, 4, mem24, 0, "web", frac, swappedBits(-1))
			},
			want: "negative slack",
		},
		{
			name: "app index past table",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, dep, 4, mem24, 1, "", frac)
			},
			want: "past table size",
		},
		{
			name: "app interned twice",
			build: func(b *binBuilder) {
				b.header("t", 10, 2)
				b.record(0, 1<<flagGenShift, arr1, dep, 4, mem24, 0, "web", frac)
				b.record(1, 1<<flagGenShift, 0, dep, 4, mem24, 1, "web", frac)
			},
			want: "interned twice",
		},
		{
			name: "non-canonical varint",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.uvarint(zigzag(0))
				b.raw(1 << flagGenShift)
				b.uvarint(arr1)
				b.uvarint(dep)
				b.raw(0x84, 0x00) // cores = 4 padded to two bytes
			},
			want: "non-canonical varint",
		},
		{
			name: "trailing data",
			build: func(b *binBuilder) {
				b.header("t", 10, 1)
				b.record(0, 1<<flagGenShift, arr1, dep, 4, mem24, 0, "web", frac)
				b.raw(0x00)
			},
			want: "trailing data",
		},
		{
			name: "fewer records than declared",
			build: func(b *binBuilder) {
				b.header("t", 10, 2)
				b.record(0, 1<<flagGenShift, arr1, dep, 4, mem24, 0, "web", frac)
			},
			want: "record 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b binBuilder
			tc.build(&b)
			_, err := ReadBinary(bytes.NewReader(b.buf))
			if err == nil {
				t.Fatal("decoder accepted a defective stream")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestBinaryOrderStructurallyEnforced: the delta encoding makes
// out-of-order arrivals unrepresentable — whatever delta bits appear,
// decode yields either a non-decreasing arrival or a validation error,
// never a silently unsorted trace.
func TestBinaryOrderStructurallyEnforced(t *testing.T) {
	for _, delta := range []uint64{0, 1, 1 << 32, ^uint64(0)} {
		var b binBuilder
		b.header("t", 10, 2)
		arr1 := orderedBits(1)
		dep := orderedBits(2) - orderedBits(1)
		b.record(0, 1<<flagGenShift, arr1, dep, 4, swappedBits(24), 0, "web", swappedBits(0.5))
		b.record(1, 1<<flagGenShift, delta, dep, 4, swappedBits(24), 0, "", swappedBits(0.5))
		tr, err := ReadBinary(bytes.NewReader(b.buf))
		if err != nil {
			continue // rejected: fine
		}
		if tr.VMs[1].Arrive < tr.VMs[0].Arrive {
			t.Fatalf("delta %#x decoded to an out-of-order trace", delta)
		}
	}
}

func TestBinaryWriterErrors(t *testing.T) {
	t.Run("oversized name", func(t *testing.T) {
		if _, err := NewBinaryWriter(io.Discard, strings.Repeat("x", maxBinaryName+1), 10, 0); err == nil {
			t.Fatal("accepted an oversized name")
		}
	})
	t.Run("non-finite horizon", func(t *testing.T) {
		if _, err := NewBinaryWriter(io.Discard, "t", math.Inf(1), 0); err == nil {
			t.Fatal("accepted a non-finite horizon")
		}
	})
	t.Run("negative count", func(t *testing.T) {
		if _, err := NewBinaryWriter(io.Discard, "t", 10, -1); err == nil {
			t.Fatal("accepted a negative count")
		}
	})
	t.Run("invalid VM", func(t *testing.T) {
		bw, err := NewBinaryWriter(io.Discard, "t", 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		vm := testVM()
		vm.Depart = vm.Arrive
		if err := bw.Write(vm); err == nil {
			t.Fatal("accepted a zero-duration VM")
		}
		// The writer latches its error.
		if err := bw.Write(testVM()); err == nil {
			t.Fatal("write succeeded after a latched error")
		}
	})
	t.Run("unsorted", func(t *testing.T) {
		bw, err := NewBinaryWriter(io.Discard, "t", 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		first := testVM()
		first.Arrive, first.Depart = 5, 6
		if err := bw.Write(first); err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(testVM()); err == nil {
			t.Fatal("accepted an out-of-order VM")
		}
	})
	t.Run("count mismatch at flush", func(t *testing.T) {
		bw, err := NewBinaryWriter(io.Discard, "t", 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(testVM()); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err == nil {
			t.Fatal("flush accepted a short stream")
		}
	})
	t.Run("over declared count", func(t *testing.T) {
		bw, err := NewBinaryWriter(io.Discard, "t", 10, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := bw.Write(testVM()); err == nil {
			t.Fatal("accepted a record past the declared count")
		}
	})
	t.Run("cores over cap", func(t *testing.T) {
		bw, err := NewBinaryWriter(io.Discard, "t", 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		vm := testVM()
		vm.Cores = maxBinaryCores + 1
		if err := bw.Write(vm); err == nil {
			t.Fatal("accepted an over-cap core request")
		}
	})
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{Name: "empty", Horizon: 5}); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "empty" || tr.Horizon != 5 || len(tr.VMs) != 0 {
		t.Fatalf("got %+v", tr)
	}
}

// TestBinaryAppInterning pins the interning win: repeated app names
// cost one varint, not the string.
func TestBinaryAppInterning(t *testing.T) {
	vms := make([]VM, 100)
	for i := range vms {
		vms[i] = VM{ID: i, Arrive: float64(i), Depart: float64(i) + 1, Cores: 2,
			Memory: 8, Gen: 1, App: "a-rather-long-application-name", MaxMemFrac: 0.5}
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, Trace{Name: "intern", VMs: vms, Horizon: 200}); err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(buf.Bytes(), []byte("a-rather-long-application-name")); got != 1 {
		t.Fatalf("app name appears %d times in the stream, want 1", got)
	}
	tr, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, vm := range tr.VMs {
		if vm.App != vms[i].App {
			t.Fatalf("VM %d app %q", i, vm.App)
		}
	}
}

func TestOrderedBitsMonotoneBijection(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -2, -1, -0.5, math.Copysign(0, -1), 0, 0.5, 1, 2, 1e300, math.Inf(1)}
	for i, v := range vals {
		if got := unorderedBits(orderedBits(v)); math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("round trip changed %v to %v", v, got)
		}
		if i > 0 && orderedBits(vals[i-1]) >= orderedBits(v) {
			t.Fatalf("orderedBits not monotone at %v < %v", vals[i-1], v)
		}
	}
	for _, u := range []uint64{0, 1, 1 << 40, ^uint64(0), 0x7ff8000000000001} {
		if got := orderedBits(unorderedBits(u)); got != u {
			t.Fatalf("bits round trip changed %#x to %#x", u, got)
		}
	}
}

func TestSwappedBitsCompact(t *testing.T) {
	// Round values must byte-swap into small varints — that is the
	// whole point of the transform.
	var buf [binary.MaxVarintLen64]byte
	for _, v := range []float64{0, 24, 48, 768, 0.5} {
		n := binary.PutUvarint(buf[:], swappedBits(v))
		if n > 3 {
			t.Fatalf("swappedBits(%v) takes %d varint bytes", v, n)
		}
		if got := unswappedBits(swappedBits(v)); got != v {
			t.Fatalf("swap round trip changed %v to %v", v, got)
		}
	}
}
