package trace

import (
	"bytes"
	"testing"
)

// FuzzBinaryTrace holds the two round-trip contracts of the GSFB
// codec:
//
//  1. Byte identity: any stream ReadBinary accepts is the canonical
//     encoding of its trace — re-encoding the decoded trace
//     reproduces the input byte for byte. This is what the decoder's
//     canonical-varint, reserved-flag, duplicate-intern, and
//     trailing-data rejections buy.
//  2. Value identity across formats: any trace the CSV path accepts
//     either converts losslessly through binary (exact equality, no
//     tolerance — binary carries full float bits where CSV rounds),
//     or is rejected for one of the documented binary caps.
func FuzzBinaryTrace(f *testing.F) {
	// Seed with realistic streams: the generator's own output, a tiny
	// hand-rolled trace, the empty trace, a header-only prefix, and
	// plain junk.
	tr, err := Generate(DefaultParams("fuzz-bin-seed", 11))
	if err != nil {
		f.Fatal(err)
	}
	tr.VMs = tr.VMs[:min(len(tr.VMs), 20)]
	var seed bytes.Buffer
	if err := WriteBinary(&seed, Trace{Name: tr.Name, VMs: tr.VMs, Horizon: tr.Horizon}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())

	small := Trace{Name: "s", Horizon: 4, VMs: []VM{
		{ID: 0, Arrive: 1, Depart: 2, Cores: 4, Memory: 24, Gen: 2, App: "web", MaxMemFrac: 0.5},
		{ID: 1, Arrive: 1.5, Depart: 3, Cores: 80, Memory: 768, Gen: 3, FullNode: true, App: "big", MaxMemFrac: 0.9},
		{ID: 2, Arrive: 2, Depart: 3.5, Cores: 2, Memory: 8, Gen: 1, App: "web", MaxMemFrac: 0.25, Deferrable: true, SlackHours: 6},
	}}
	var smallBuf bytes.Buffer
	if err := WriteBinary(&smallBuf, small); err != nil {
		f.Fatal(err)
	}
	f.Add(smallBuf.Bytes())

	var empty bytes.Buffer
	if err := WriteBinary(&empty, Trace{Name: "empty", Horizon: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add(smallBuf.Bytes()[:12])
	f.Add([]byte("GSFB"))
	f.Add([]byte("not a trace \x00\xff"))
	// A CSV seed so the cross-format leg starts from parseable input.
	var csvSeed bytes.Buffer
	if err := WriteCSV(&csvSeed, small); err != nil {
		f.Fatal(err)
	}
	f.Add(csvSeed.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		// Leg 1: binary decode → re-encode must be the identity.
		if tr, err := ReadBinary(bytes.NewReader(data)); err == nil {
			var re bytes.Buffer
			if err := WriteBinary(&re, tr); err != nil {
				t.Fatalf("WriteBinary failed on a decoded trace: %v", err)
			}
			if !bytes.Equal(re.Bytes(), data) {
				t.Fatalf("re-encode not byte-identical:\n in: %x\nout: %x", data, re.Bytes())
			}
		}

		// Leg 2: CSV-parseable input must convert through binary with
		// exact values, or fail only on a documented cap.
		trCSV, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, trCSV); err != nil {
			for _, v := range trCSV.VMs {
				if v.Cores > maxBinaryCores || len(v.App) > maxBinaryApp {
					return // documented encoding caps, not CSV semantics
				}
			}
			t.Fatalf("binary rejected a valid CSV trace for no documented cap: %v", err)
		}
		tr2, err := ReadBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own encoding failed: %v", err)
		}
		if tr2.Name != trCSV.Name || tr2.Horizon != trCSV.Horizon || len(tr2.VMs) != len(trCSV.VMs) {
			t.Fatalf("conversion changed shape: (%q,%v,%d) -> (%q,%v,%d)",
				trCSV.Name, trCSV.Horizon, len(trCSV.VMs), tr2.Name, tr2.Horizon, len(tr2.VMs))
		}
		for i := range trCSV.VMs {
			if trCSV.VMs[i] != tr2.VMs[i] {
				t.Fatalf("VM %d changed across CSV->binary->decode:\n  %+v\n  %+v", i, trCSV.VMs[i], tr2.VMs[i])
			}
		}
	})
}
