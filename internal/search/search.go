// Package search implements the SKU design-space exploration the paper
// leaves as future work (§VIII: "we expect that a future search
// framework could consider such interactions and repeatedly run GSF to
// evaluate emissions"). It enumerates or locally searches the discrete
// component space — CPU choice, DIMM population, reused-CXL memory,
// new and reused SSDs — under platform constraints (PCIe lanes, memory
// ratio, storage floor) and ranks designs by the carbon model's
// per-core emissions.
package search

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/stats"
	"github.com/greensku/gsf/internal/units"
)

// GPUOption is one accelerator population choice: a card spec and how
// many of it to fit. The zero value means no accelerator.
type GPUOption struct {
	Spec  hw.GPUSpec
	Count int
}

// Space is the discrete design space.
type Space struct {
	CPUs []hw.CPUSpec
	// Sockets lists socket-count choices; empty means single-socket.
	Sockets         []int
	LocalDIMMCounts []int
	LocalDIMMGBs    []units.GB
	// CXLDIMMCounts are reused 32 GB DDR4 DIMMs, four per CXL card.
	CXLDIMMCounts []int
	// NewSSDCounts are 4 TB E1.S drives; ReusedSSDCounts are 1 TB
	// m.2 drives (striped per the storage plan).
	NewSSDCounts    []int
	ReusedSSDCounts []int
	// GPUOptions lists accelerator populations to consider; empty
	// means CPU-only designs. Include the zero GPUOption to keep
	// CPU-only designs in a space that also explores accelerators.
	GPUOptions []GPUOption
}

// sockets returns the socket dimension, defaulting to single-socket.
func (s Space) sockets() []int {
	if len(s.Sockets) == 0 {
		return []int{1}
	}
	return s.Sockets
}

// gpuOptions returns the accelerator dimension, defaulting to none.
func (s Space) gpuOptions() []GPUOption {
	if len(s.GPUOptions) == 0 {
		return []GPUOption{{}}
	}
	return s.GPUOptions
}

// DefaultSpace spans the paper's design neighbourhood.
func DefaultSpace() Space {
	return Space{
		CPUs:            []hw.CPUSpec{hw.Genoa, hw.Bergamo},
		LocalDIMMCounts: []int{8, 10, 12},
		LocalDIMMGBs:    []units.GB{32, 64, 96},
		CXLDIMMCounts:   []int{0, 4, 8, 12},
		NewSSDCounts:    []int{0, 2, 3, 5},
		ReusedSSDCounts: []int{0, 6, 12},
	}
}

// Constraints are the platform and product requirements a design must
// meet.
type Constraints struct {
	// MinMemPerCore/MaxMemPerCore bound the DRAM:core ratio in GB.
	MinMemPerCore, MaxMemPerCore float64
	// MinSSDTB is the storage floor.
	MinSSDTB float64
	// PCIeLanes is the platform budget; the NIC reserves NICLanes,
	// each CXL card takes 16, each SSD 4.
	PCIeLanes, NICLanes int
}

// DefaultConstraints mirror the GreenSKU platform: 128 lanes with a
// 16-lane NIC, 6-10 GB of DRAM per core, at least 12 TB of SSD.
func DefaultConstraints() Constraints {
	return Constraints{
		MinMemPerCore: 6,
		MaxMemPerCore: 10,
		MinSSDTB:      12,
		PCIeLanes:     128,
		NICLanes:      16,
	}
}

// Design is one point in the space (indices into Space slices; Socket
// and GPU index the defaulted sockets/gpuOptions dimensions and stay 0
// on spaces that do not populate them).
type Design struct {
	CPU, Socket, DIMMCount, DIMMGB, CXL, NewSSD, ReusedSSD, GPU int
}

// SKU materialises the design.
func (s Space) SKU(d Design) hw.SKU {
	cpu := s.CPUs[d.CPU]
	sockets := s.sockets()[d.Socket]
	gpu := s.gpuOptions()[d.GPU]
	name := fmt.Sprintf("%s-%dx%.0fG-%dcxl-%dssd-%drssd",
		cpu.Name, s.LocalDIMMCounts[d.DIMMCount], float64(s.LocalDIMMGBs[d.DIMMGB]),
		s.CXLDIMMCounts[d.CXL], s.NewSSDCounts[d.NewSSD], s.ReusedSSDCounts[d.ReusedSSD])
	if sockets > 1 {
		name += fmt.Sprintf("-%ds", sockets)
	}
	if gpu.Count > 0 {
		name += fmt.Sprintf("-%dx%s", gpu.Count, gpu.Spec.Name)
	}
	sku := hw.SKU{
		Name:        name,
		CPU:         cpu,
		Sockets:     sockets,
		FormFactorU: 2,
		DIMMs: []hw.DIMMGroup{
			{Count: s.LocalDIMMCounts[d.DIMMCount], CapacityGB: s.LocalDIMMGBs[d.DIMMGB], Kind: hw.MemLocal},
		},
	}
	if n := s.CXLDIMMCounts[d.CXL]; n > 0 {
		sku.DIMMs = append(sku.DIMMs, hw.DIMMGroup{Count: n, CapacityGB: 32, Kind: hw.MemCXL, Reused: true})
		sku.CXLControllers = (n + 3) / 4
		sku.CXLBWGBs = 50 * float64(sku.CXLControllers)
	}
	if n := s.NewSSDCounts[d.NewSSD]; n > 0 {
		sku.SSDs = append(sku.SSDs, hw.SSDGroup{Count: n, CapacityTB: 4})
	}
	if n := s.ReusedSSDCounts[d.ReusedSSD]; n > 0 {
		sku.SSDs = append(sku.SSDs, hw.SSDGroup{Count: n, CapacityTB: 1, Reused: true})
	}
	if gpu.Count > 0 {
		sku.GPUs = []hw.GPUGroup{{Spec: gpu.Spec, Count: gpu.Count}}
	}
	return sku
}

// Designs enumerates every design tuple in the space in canonical
// nested order (CPU outermost, GPU option innermost). The order is the
// contract Exhaustive and the frontier driver rely on for
// deterministic output.
func (s Space) Designs() []Design {
	out := make([]Design, 0,
		len(s.CPUs)*len(s.sockets())*len(s.LocalDIMMCounts)*len(s.LocalDIMMGBs)*
			len(s.CXLDIMMCounts)*len(s.NewSSDCounts)*len(s.ReusedSSDCounts)*len(s.gpuOptions()))
	var d Design
	for d.CPU = range s.CPUs {
		for d.Socket = range s.sockets() {
			for d.DIMMCount = range s.LocalDIMMCounts {
				for d.DIMMGB = range s.LocalDIMMGBs {
					for d.CXL = range s.CXLDIMMCounts {
						for d.NewSSD = range s.NewSSDCounts {
							for d.ReusedSSD = range s.ReusedSSDCounts {
								for d.GPU = range s.gpuOptions() {
									out = append(out, d)
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Lanes returns the design's PCIe lane consumption.
func Lanes(sku hw.SKU, c Constraints) int {
	return c.NICLanes + 16*sku.CXLControllers + 4*sku.SSDCount() + 16*sku.GPUCount()
}

// Feasible reports whether the design satisfies the constraints.
func (s Space) Feasible(d Design, c Constraints) bool {
	sku := s.SKU(d)
	ratio := sku.MemoryCoreRatio()
	if ratio < c.MinMemPerCore || ratio > c.MaxMemPerCore {
		return false
	}
	if sku.TotalSSDTB() < c.MinSSDTB {
		return false
	}
	if Lanes(sku, c) > c.PCIeLanes {
		return false
	}
	return sku.Validate() == nil
}

// Result is a ranked design.
type Result struct {
	SKU       hw.SKU
	PerCore   units.KgCO2e
	Savings   float64 // vs the Gen3 baseline
	Evaluated int     // designs evaluated to find it
}

type evaluator struct {
	model *carbon.Model
	ci    units.CarbonIntensity
	base  units.KgCO2e
	count int
}

func newEvaluator(dataset string, ci units.CarbonIntensity) (*evaluator, error) {
	d, ok := carbondata.Datasets()[dataset]
	if !ok {
		return nil, fmt.Errorf("search: unknown dataset %q", dataset)
	}
	m, err := carbon.New(d)
	if err != nil {
		return nil, err
	}
	if ci == 0 {
		ci = d.DefaultCI
	}
	basePC, err := m.PerCore(hw.BaselineGen3(), ci)
	if err != nil {
		return nil, err
	}
	return &evaluator{model: m, ci: ci, base: basePC.Total()}, nil
}

func (e *evaluator) perCore(sku hw.SKU) (units.KgCO2e, error) {
	e.count++
	pc, err := e.model.PerCore(sku, e.ci)
	if err != nil {
		return 0, err
	}
	return pc.Total(), nil
}

// Exhaustive enumerates the whole space and returns the carbon-optimal
// feasible design.
func Exhaustive(s Space, c Constraints, dataset string, ci units.CarbonIntensity) (Result, error) {
	ev, err := newEvaluator(dataset, ci)
	if err != nil {
		return Result{}, err
	}
	best := Result{PerCore: units.KgCO2e(math.Inf(1))}
	found := false
	for _, d := range s.Designs() {
		if !s.Feasible(d, c) {
			continue
		}
		sku := s.SKU(d)
		pc, err := ev.perCore(sku)
		if err != nil {
			return Result{}, err
		}
		if pc < best.PerCore {
			best = Result{SKU: sku, PerCore: pc}
			found = true
		}
	}
	if !found {
		return Result{}, fmt.Errorf("search: no feasible design in the space")
	}
	best.Savings = 1 - float64(best.PerCore)/float64(ev.base)
	best.Evaluated = ev.count
	return best, nil
}

// HillClimb runs restarts of greedy coordinate descent: from a random
// feasible design, move one component dimension at a time to the best
// feasible neighbour until no move improves. Far fewer evaluations than
// Exhaustive on large spaces.
func HillClimb(s Space, c Constraints, dataset string, ci units.CarbonIntensity, restarts int, seed uint64) (Result, error) {
	if restarts <= 0 {
		return Result{}, fmt.Errorf("search: restarts must be positive")
	}
	ev, err := newEvaluator(dataset, ci)
	if err != nil {
		return Result{}, err
	}
	r := stats.NewRNG(seed)
	dims := []int{len(s.CPUs), len(s.sockets()), len(s.LocalDIMMCounts), len(s.LocalDIMMGBs), len(s.CXLDIMMCounts), len(s.NewSSDCounts), len(s.ReusedSSDCounts), len(s.gpuOptions())}
	get := func(d *Design, i int) *int {
		switch i {
		case 0:
			return &d.CPU
		case 1:
			return &d.Socket
		case 2:
			return &d.DIMMCount
		case 3:
			return &d.DIMMGB
		case 4:
			return &d.CXL
		case 5:
			return &d.NewSSD
		case 6:
			return &d.ReusedSSD
		default:
			return &d.GPU
		}
	}
	// Degenerate (single-choice) dimensions are skipped everywhere: a
	// move within them cannot exist, and drawing from the RNG for them
	// would perturb the restart stream of spaces that leave the
	// defaulted socket/GPU dimensions unpopulated.
	randomFeasible := func() (Design, bool) {
		for tries := 0; tries < 500; tries++ {
			var d Design
			for i, n := range dims {
				if n < 2 {
					continue
				}
				*get(&d, i) = r.Intn(n)
			}
			if s.Feasible(d, c) {
				return d, true
			}
		}
		return Design{}, false
	}

	best := Result{PerCore: units.KgCO2e(math.Inf(1))}
	found := false
	for restart := 0; restart < restarts; restart++ {
		d, ok := randomFeasible()
		if !ok {
			continue
		}
		cur, err := ev.perCore(s.SKU(d))
		if err != nil {
			return Result{}, err
		}
		improved := true
		for improved {
			improved = false
			// Single-coordinate moves.
			for i, n := range dims {
				if n < 2 {
					continue
				}
				orig := *get(&d, i)
				for v := 0; v < n; v++ {
					if v == orig {
						continue
					}
					*get(&d, i) = v
					if !s.Feasible(d, c) {
						continue
					}
					pc, err := ev.perCore(s.SKU(d))
					if err != nil {
						return Result{}, err
					}
					if pc < cur {
						cur = pc
						orig = v
						improved = true
					}
				}
				*get(&d, i) = orig
			}
			if improved {
				continue
			}
			// Pairwise moves: constraints couple dimensions (PCIe
			// lanes tie CXL cards to SSD counts), so some improving
			// moves only exist as coordinated changes of two
			// components.
			for i := 0; i < len(dims) && !improved; i++ {
				if dims[i] < 2 {
					continue
				}
				for j := i + 1; j < len(dims) && !improved; j++ {
					if dims[j] < 2 {
						continue
					}
					oi, oj := *get(&d, i), *get(&d, j)
					for vi := 0; vi < dims[i] && !improved; vi++ {
						for vj := 0; vj < dims[j] && !improved; vj++ {
							if vi == oi && vj == oj {
								continue
							}
							*get(&d, i), *get(&d, j) = vi, vj
							if !s.Feasible(d, c) {
								continue
							}
							pc, err := ev.perCore(s.SKU(d))
							if err != nil {
								return Result{}, err
							}
							if pc < cur {
								cur = pc
								oi, oj = vi, vj
								improved = true
							}
						}
					}
					*get(&d, i), *get(&d, j) = oi, oj
				}
			}
		}
		if cur < best.PerCore {
			best = Result{SKU: s.SKU(d), PerCore: cur}
			found = true
		}
	}
	if !found {
		return Result{}, fmt.Errorf("search: no feasible design found in %d restarts", restarts)
	}
	best.Savings = 1 - float64(best.PerCore)/float64(ev.base)
	best.Evaluated = ev.count
	return best, nil
}
