package search

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/hw"
)

func TestExhaustiveBeatsHandDesign(t *testing.T) {
	best, err := Exhaustive(DefaultSpace(), DefaultConstraints(), "open-source", 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Evaluated == 0 {
		t.Fatal("nothing evaluated")
	}
	// GreenSKU-Full-like configurations are in the space, so the
	// optimum must match or beat the hand design's 26.8% savings.
	if best.Savings < 0.26 {
		t.Fatalf("optimal savings = %.3f, want >= 0.26 (GreenSKU-Full's)", best.Savings)
	}
	// The optimum uses the efficient CPU and reuses components.
	if best.SKU.CPU.Name != "Bergamo" {
		t.Errorf("optimal CPU = %s, want Bergamo", best.SKU.CPU.Name)
	}
	if best.SKU.CXLDRAMGB() == 0 && best.SKU.ReusedSSDTB() == 0 {
		t.Error("optimum should reuse DRAM and/or SSDs at low carbon intensity")
	}
}

func TestOptimumShiftsWithCarbonIntensity(t *testing.T) {
	// At very high carbon intensity, operational emissions dominate
	// and reused (power-hungrier) components lose their edge.
	low, err := Exhaustive(DefaultSpace(), DefaultConstraints(), "paper-calibrated", 0.005)
	if err != nil {
		t.Fatal(err)
	}
	high, err := Exhaustive(DefaultSpace(), DefaultConstraints(), "paper-calibrated", 0.7)
	if err != nil {
		t.Fatal(err)
	}
	lowReuse := low.SKU.ReusedSSDTB() + float64(low.SKU.CXLDRAMGB())
	highReuse := high.SKU.ReusedSSDTB() + float64(high.SKU.CXLDRAMGB())
	if lowReuse <= highReuse {
		t.Fatalf("reuse should shrink as carbon intensity rises: low-CI %v vs high-CI %v", lowReuse, highReuse)
	}
}

func TestHillClimbNearOptimal(t *testing.T) {
	space := DefaultSpace()
	cons := DefaultConstraints()
	ex, err := Exhaustive(space, cons, "open-source", 0)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HillClimb(space, cons, "open-source", 0, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinate descent is a heuristic; constraint coupling (PCIe
	// lanes tie CXL cards to SSD counts) leaves local optima, so allow
	// a few percent. (On this paper-sized space exhaustive search is
	// cheap; HillClimb exists for the combinatorially larger spaces
	// §VIII anticipates, where enumeration is impossible.)
	if float64(hc.PerCore) > float64(ex.PerCore)*1.03 {
		t.Fatalf("hill climb per-core %v more than 3%% above optimum %v", hc.PerCore, ex.PerCore)
	}
	if hc.Evaluated <= 0 {
		t.Fatal("hill climb did not report evaluations")
	}
}

func TestConstraintsEnforced(t *testing.T) {
	s := DefaultSpace()
	c := DefaultConstraints()
	// A design with 12 CXL DIMMs (3 cards), 5 new + 12 reused SSDs:
	// lanes = 16 + 48 + 68 = 132 > 128.
	d := Design{CPU: 1, DIMMCount: 2, DIMMGB: 1, CXL: 3, NewSSD: 3, ReusedSSD: 2}
	sku := s.SKU(d)
	if got := Lanes(sku, c); got <= c.PCIeLanes {
		t.Fatalf("lane count = %d, expected to exceed %d for this design", got, c.PCIeLanes)
	}
	if s.Feasible(d, c) {
		t.Fatal("lane-violating design reported feasible")
	}
	// Memory ratio floor: 8 x 32 GB on 128 cores = 2 GB/core.
	d = Design{CPU: 1, DIMMCount: 0, DIMMGB: 0, CXL: 0, NewSSD: 3, ReusedSSD: 0}
	if s.Feasible(d, c) {
		t.Fatal("memory-starved design reported feasible")
	}
}

func TestGreenSKUFullFeasible(t *testing.T) {
	// The paper's shipped design must be inside the constraint set.
	c := DefaultConstraints()
	sku := hw.GreenSKUFull()
	if got := Lanes(sku, c); got > c.PCIeLanes {
		t.Fatalf("GreenSKU-Full uses %d lanes, budget %d", got, c.PCIeLanes)
	}
	ratio := sku.MemoryCoreRatio()
	if ratio < c.MinMemPerCore || ratio > c.MaxMemPerCore {
		t.Fatalf("GreenSKU-Full memory ratio %v outside [%v, %v]", ratio, c.MinMemPerCore, c.MaxMemPerCore)
	}
}

func TestNoFeasibleDesign(t *testing.T) {
	c := DefaultConstraints()
	c.MinSSDTB = 1e9
	if _, err := Exhaustive(DefaultSpace(), c, "open-source", 0); err == nil {
		t.Fatal("accepted an unsatisfiable constraint set")
	}
	if _, err := HillClimb(DefaultSpace(), c, "open-source", 0, 3, 1); err == nil {
		t.Fatal("hill climb accepted an unsatisfiable constraint set")
	}
}

func TestUnknownDataset(t *testing.T) {
	if _, err := Exhaustive(DefaultSpace(), DefaultConstraints(), "nope", 0); err == nil {
		t.Fatal("accepted unknown dataset")
	}
}

func TestHillClimbValidation(t *testing.T) {
	if _, err := HillClimb(DefaultSpace(), DefaultConstraints(), "open-source", 0, 0, 1); err == nil {
		t.Fatal("accepted zero restarts")
	}
}

func TestSavingsConsistent(t *testing.T) {
	best, err := Exhaustive(DefaultSpace(), DefaultConstraints(), "open-source", 0)
	if err != nil {
		t.Fatal(err)
	}
	if best.Savings <= 0 || best.Savings >= 1 || math.IsNaN(best.Savings) {
		t.Fatalf("savings = %v out of (0,1)", best.Savings)
	}
}
