package core

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// TestAuditClean35Traces is the acceptance sweep: the full pipeline
// over the 35 seeded traces, evaluated in parallel with auditing
// enabled, must report zero invariant violations.
func TestAuditClean35Traces(t *testing.T) {
	n := 35
	if testing.Short() {
		n = 6
	}
	inputs := sweepInputs(t, n)

	rec := audit.NewRecorder()
	f := framework(t, "open-source")
	f.SetAudit(rec)
	f.Workers = runtime.GOMAXPROCS(0)
	for i, r := range f.EvaluateAll(context.Background(), inputs) {
		if r.Err != nil {
			t.Fatalf("trace %s: %v", inputs[i].Workload.Name, r.Err)
		}
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("audited %d-trace sweep recorded violations: %v\ncounts: %v",
			n, err, rec.Counts())
	}
	if rec.Count() != 0 {
		t.Fatalf("violations = %d, want 0", rec.Count())
	}
}

// TestAuditDoesNotAlterResults pins the audit layer's core contract:
// an audited evaluation returns byte-identical output to an unaudited
// one — the audit only observes.
func TestAuditDoesNotAlterResults(t *testing.T) {
	in := sweepInputs(t, 1)[0]

	plain := framework(t, "open-source")
	want, err := plain.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}

	rec := audit.NewRecorder()
	audited := framework(t, "open-source")
	audited.SetAudit(rec)
	got, err := audited.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("audited evaluation differs from unaudited")
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("audited evaluation recorded violations: %v", err)
	}
}

func TestSetAuditCopiesCarbonModel(t *testing.T) {
	f := framework(t, "open-source")
	orig := f.Carbon
	f.SetAudit(audit.NewRecorder())
	if f.Carbon == orig {
		t.Fatal("SetAudit mutated the shared carbon model instead of copying it")
	}
	if orig.Audit != nil {
		t.Fatal("SetAudit leaked the checker into the original model")
	}
	if f.Carbon.Audit == nil {
		t.Fatal("SetAudit did not wire the checker into the copied model")
	}
}

func TestAuditEvaluationCatchesBadPipelineOutput(t *testing.T) {
	f := framework(t, "open-source")
	in := sweepInputs(t, 1)[0]
	ev, err := f.Evaluate(in)
	if err != nil {
		t.Fatal(err)
	}
	base := classOf(in.Baseline, false)
	green := classOf(in.Green, true)

	rec := audit.NewRecorder()
	bad := ev
	bad.Buffered.BufferServers = -1
	f.auditEvaluation(rec, in, base, green, bad)
	if rec.Counts()["core/negative-buffer"] == 0 {
		t.Errorf("negative buffer not caught: %v", rec.Counts())
	}

	rec = audit.NewRecorder()
	bad = ev
	bad.Buffered.Mix.NBase = 0
	bad.Buffered.Mix.NGreen = 0
	bad.Buffered.BufferServers = 0
	f.auditEvaluation(rec, in, base, green, bad)
	if rec.Counts()["core/buffered-capacity-below-peak"] == 0 {
		t.Errorf("under-capacity buffered cluster not caught: %v", rec.Counts())
	}

	rec = audit.NewRecorder()
	bad = ev
	bad.DCSavings = 2 * bad.ClusterSavings
	f.auditEvaluation(rec, in, base, green, bad)
	if rec.Counts()["core/dc-savings-amplified"] == 0 {
		t.Errorf("amplified DC savings not caught: %v", rec.Counts())
	}
}
