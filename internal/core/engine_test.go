package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// sweepTraces generates n small, seeded, mutually distinct traces —
// the determinism fixtures. Small horizons keep the full 2×35
// evaluation matrix fast enough for -race runs.
func sweepTraces(tb testing.TB, n int) []trace.Trace {
	tb.Helper()
	out := make([]trace.Trace, n)
	for i := range out {
		p := trace.DefaultParams(fmt.Sprintf("sweep-%02d", i), 1000+uint64(i)*7919)
		p.HorizonHours = 48
		p.ArrivalsPerHour = 3
		tr, err := trace.Generate(p)
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = tr
	}
	return out
}

func sweepInputs(tb testing.TB, n int) []Input {
	tb.Helper()
	traces := sweepTraces(tb, n)
	inputs := make([]Input, n)
	for i, tr := range traces {
		inputs[i] = Input{
			Green:    hw.GreenSKUFull(),
			Baseline: hw.BaselineGen3(),
			Workload: tr,
		}
	}
	return inputs
}

// TestParallelMatchesSerial35Traces is the engine's core guarantee: a
// parallel evaluation over the 35 seeded traces is byte-identical to
// the serial path, because every evaluation is a pure function of its
// input and results are slotted by job index.
func TestParallelMatchesSerial35Traces(t *testing.T) {
	if testing.Short() {
		t.Skip("35-trace determinism matrix is not short")
	}
	inputs := sweepInputs(t, 35)

	serial := framework(t, "open-source")
	serial.Workers = 1
	want := serial.EvaluateAll(context.Background(), inputs)

	parallel := framework(t, "open-source")
	parallel.Workers = runtime.GOMAXPROCS(0)
	got := parallel.EvaluateAll(context.Background(), inputs)

	for i := range want {
		if want[i].Err != nil || got[i].Err != nil {
			t.Fatalf("job %d: errors (serial %v, parallel %v)", i, want[i].Err, got[i].Err)
		}
		if !reflect.DeepEqual(want[i].Eval, got[i].Eval) {
			t.Fatalf("job %d (%s): parallel evaluation differs from serial",
				i, inputs[i].Workload.Name)
		}
	}

	// The memoization layer must have profiled the SKU exactly once.
	hits, misses := parallel.ProfileCacheStats()
	if misses != 1 {
		t.Errorf("profile cache misses = %d, want 1 (one SKU, one profiling run)", misses)
	}
	if hits != int64(len(inputs)-1) {
		t.Errorf("profile cache hits = %d, want %d", hits, len(inputs)-1)
	}
}

func TestSweepContextMatchesSweepCI(t *testing.T) {
	cis := []units.CarbonIntensity{0.02, 0.05, 0.1, 0.2, 0.4, 0.7}
	in := Input{
		Green:    hw.GreenSKUEfficient(),
		Baseline: hw.BaselineGen3(),
		Workload: sweepTraces(t, 1)[0],
	}

	serial := framework(t, "paper-calibrated")
	serial.Workers = 1
	want, err := serial.SweepCI(in, cis)
	if err != nil {
		t.Fatal(err)
	}

	parallel := framework(t, "paper-calibrated")
	parallel.Workers = runtime.GOMAXPROCS(0)
	got, err := parallel.SweepContext(context.Background(), in, cis)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("parallel SweepContext differs from serial SweepCI")
	}
}

func TestSweepCancellation(t *testing.T) {
	f := framework(t, "open-source")
	f.SetProfileCacheSize(0) // force profiling inside the cancelled ctx
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := f.SweepContext(ctx, Input{
		Green:    hw.GreenSKUFull(),
		Baseline: hw.BaselineGen3(),
		Workload: sweepTraces(t, 1)[0],
	}, []units.CarbonIntensity{0.02, 0.1, 0.4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled sweep took %v to return, want prompt exit", elapsed)
	}
}

func TestEvaluateAllIsolatesFailures(t *testing.T) {
	good := Input{
		Green:    hw.GreenSKUEfficient(),
		Baseline: hw.BaselineGen3(),
		Workload: sweepTraces(t, 1)[0],
	}
	bad := good
	bad.Workload = trace.Trace{} // fails validation
	f := framework(t, "open-source")
	results := f.EvaluateAll(context.Background(), []Input{good, bad, good})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("good jobs failed: %v, %v", results[0].Err, results[2].Err)
	}
	if !errors.Is(results[1].Err, ErrBadInput) {
		t.Fatalf("bad job error = %v, want ErrBadInput", results[1].Err)
	}
	if !reflect.DeepEqual(results[0].Eval, results[2].Eval) {
		t.Fatal("identical inputs produced different evaluations")
	}
}

// BenchmarkSweep35 measures the 35-trace evaluation matrix at 1 worker
// versus GOMAXPROCS — the perf-trajectory number published by CI. The
// SKU profile is pre-warmed so the benchmark isolates the fan-out.
func BenchmarkSweep35(b *testing.B) {
	m, err := carbon.New(carbondata.Datasets()["open-source"])
	if err != nil {
		b.Fatal(err)
	}
	inputs := sweepInputs(b, 35)
	counts := []int{1}
	for _, w := range []int{4, runtime.GOMAXPROCS(0)} {
		if w > counts[len(counts)-1] {
			counts = append(counts, w)
		}
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			f := New(m)
			f.Workers = workers
			if _, err := f.EvaluateContext(context.Background(), inputs[0]); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				results := f.EvaluateAll(context.Background(), inputs)
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
