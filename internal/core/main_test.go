package core

import (
	"os"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// TestMain runs the package under a process-default audit.Recorder, so
// every pipeline evaluation any test performs doubles as an invariant
// sweep across all components.
func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }
