// Package core is GSF itself: the framework of §IV that composes the
// carbon model, performance, maintenance, adoption, VM allocation,
// cluster sizing, and growth-buffer components (Fig. 6) to estimate the
// datacenter emissions of deploying a GreenSKU at scale.
//
// Each component lives in its own package with explicit inputs and
// outputs; core wires them in the paper's dependency order:
//
//	performance -> scaling factors -> adoption -+
//	carbon model -> CO2e-per-core --------------+-> allocation/sizing
//	maintenance -> out-of-service overhead -----+        |
//	                                growth buffer <------+
//	                                        |
//	                         cluster & datacenter emissions
package core

import (
	"context"
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/adoption"
	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/buffer"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/cluster"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/fleet"
	"github.com/greensku/gsf/internal/gridci"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/maintenance"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// DefaultProfileCacheEntries is the profile cache capacity New
// configures: enough for every SKU in the catalog plus sweep variants.
const DefaultProfileCacheEntries = 64

// Framework bundles the component implementations. The zero value is
// not usable; construct with New.
type Framework struct {
	Carbon *carbon.Model
	Perf   perf.Options
	AFRs   maintenance.ComponentAFRs
	FIP    maintenance.FIP
	Buffer buffer.Params
	Policy alloc.Policy
	Fleet  fleet.Params
	// Workers bounds the evaluation engine's parallelism for sweeps and
	// batches; <= 0 means GOMAXPROCS.
	Workers int
	// Audit receives invariant violations from every component the
	// pipeline runs; install it with SetAudit (or gsf.WithAudit) so the
	// carbon model is rewired too. Nil falls back to the process
	// default (audit.SetDefault); if that is also nil, checking is
	// disabled and costs nothing.
	Audit audit.Checker

	// profiles memoizes TableIII scaling-factor matrices keyed by
	// perf.ProfileKey, so a sweep profiles each SKU once. Nil disables
	// memoization (every evaluation profiles from scratch).
	profiles *engine.Cache[map[string]map[int]perf.Factor]
}

// New assembles a framework over a carbon model with the paper's
// default component settings.
func New(m *carbon.Model) *Framework {
	return &Framework{
		Carbon:   m,
		Perf:     perf.DefaultOptions(),
		AFRs:     maintenance.DefaultAFRs(),
		FIP:      maintenance.FIP{Effectiveness: 0.75},
		Buffer:   buffer.DefaultParams(),
		Policy:   alloc.BestFit,
		Fleet:    fleet.Default(),
		profiles: engine.NewCache[map[string]map[int]perf.Factor](DefaultProfileCacheEntries),
	}
}

// SetAudit threads an invariant checker through the framework: the
// sizing and allocation layers receive it per evaluation, and the
// carbon model is replaced by a shallow copy carrying it (models from
// gsf.Model are shared across frameworks and documented immutable, so
// the original is never mutated).
func (f *Framework) SetAudit(c audit.Checker) {
	f.Audit = c
	if f.Carbon != nil {
		cm := *f.Carbon
		cm.Audit = c
		f.Carbon = &cm
	}
}

// SetProfileCacheSize resizes the profile memoization cache; n <= 0
// disables memoization. The cache is replaced, dropping prior entries.
func (f *Framework) SetProfileCacheSize(n int) {
	if n <= 0 {
		f.profiles = nil
		return
	}
	f.profiles = engine.NewCache[map[string]map[int]perf.Factor](n)
}

// ProfileCacheStats reports cumulative profile-cache hits and misses;
// zeros when memoization is disabled.
func (f *Framework) ProfileCacheStats() (hits, misses int64) {
	if f.profiles == nil {
		return 0, 0
	}
	return f.profiles.Stats()
}

// profileFor returns the TableIII factor matrix for the green SKU,
// memoized on (SKU fingerprint, measurement options, app set).
//
// The cached matrix is shared across evaluations without copying:
// nothing in the pipeline mutates it (adoption.Build and Evaluate treat
// factors as read-only).
func (f *Framework) profileFor(ctx context.Context, green hw.SKU) (map[string]map[int]perf.Factor, error) {
	if f.profiles == nil {
		return perf.TableIIIContext(ctx, green, f.Perf)
	}
	return f.profiles.Do(perf.ProfileKey(green, f.Perf), func() (map[string]map[int]perf.Factor, error) {
		return perf.TableIIIContext(ctx, green, f.Perf)
	})
}

// Input is one GreenSKU evaluation request: the design, the baseline
// fleet it would join, and the target workload.
type Input struct {
	Green hw.SKU
	// Baseline is the current-generation SKU the savings are measured
	// against (the paper's Gen3).
	Baseline hw.SKU
	// Workload is the VM trace the cluster must host.
	Workload trace.Trace
	// CI is the grid carbon intensity; zero uses the dataset default.
	CI units.CarbonIntensity
	// CISignal, when set, replaces the scalar CI with a time-varying
	// grid intensity: operational emissions integrate the signal over
	// the server lifetime. Mutually exclusive with a non-zero CI. A
	// constant signal is bit-identical to passing its value as CI.
	CISignal *gridci.Signal
	// CXLBacked evaluates the performance component as if VM memory
	// were served from CXL (used for GreenSKU-CXL sensitivity runs).
	CXLBacked bool
	// Factors, if non-nil, reuses precomputed scaling factors
	// (they are carbon-intensity independent, so sweeps across CI
	// should share them).
	Factors map[string]map[int]perf.Factor
}

// Evaluation is the framework's output for one GreenSKU.
type Evaluation struct {
	// Factors are the performance component's scaling factors.
	Factors map[string]map[int]perf.Factor
	// Adoption is the per-(app, generation) adoption table.
	Adoption adoption.Table
	// PerCoreGreen/PerCoreBase are rack-amortised lifetime emissions.
	PerCoreGreen carbon.PerCore
	PerCoreBase  carbon.PerCore
	// PerCoreSavings is the Table IV/VIII-style headline.
	PerCoreSavings carbon.Savings
	// Mix is the right-sized mixed cluster for the workload.
	Mix cluster.Mix
	// Buffered attaches the growth buffer.
	Buffered buffer.Buffered
	// Maintenance compares out-of-service overheads.
	Maintenance []maintenance.Overhead
	// ClusterSavings is the end-to-end cluster-level carbon saving
	// including the growth buffer (Fig. 11/12's y-axis).
	ClusterSavings float64
	// DCSavings scales the cluster saving by compute's share of
	// datacenter emissions (the paper's "net cloud emissions").
	DCSavings float64
}

// Evaluate runs the full GSF pipeline for one design.
func (f *Framework) Evaluate(in Input) (Evaluation, error) {
	return f.EvaluateContext(context.Background(), in)
}

// EvaluateContext runs the full GSF pipeline for one design, honouring
// cancellation and deadlines down into the allocation and queueing
// simulators' inner loops.
func (f *Framework) EvaluateContext(ctx context.Context, in Input) (Evaluation, error) {
	var ev Evaluation
	if f.Carbon == nil {
		return ev, fmt.Errorf("%w: no carbon model", ErrNotConfigured)
	}
	if err := in.Validate(); err != nil {
		return ev, err
	}
	ci := in.CI
	if in.CISignal != nil {
		// The lifetime integral of the signal collapses to an exact
		// effective scalar; a constant signal yields its constant
		// bit-for-bit, keeping the two paths byte-identical.
		eff, err := f.Carbon.EffectiveCI(in.CISignal, 0)
		if err != nil {
			return ev, fmt.Errorf("%w: CI signal: %v", ErrBadInput, err)
		}
		ci = eff
	} else if ci == 0 {
		ci = f.Carbon.Data.DefaultCI
	}

	// Performance component: scaling factors per baseline generation,
	// memoized so sweeps profile each SKU once.
	var err error
	ev.Factors = in.Factors
	if ev.Factors == nil {
		ev.Factors, err = f.profileFor(ctx, in.Green)
		if err != nil {
			return ev, err
		}
	}

	// Carbon model: per-core emissions for the GreenSKU and each
	// baseline generation.
	ev.PerCoreGreen, err = f.Carbon.PerCore(in.Green, ci)
	if err != nil {
		return ev, err
	}
	basePC := map[int]carbon.PerCore{}
	for gen := 1; gen <= 3; gen++ {
		pc, err := f.Carbon.PerCore(hw.BaselineForGeneration(gen), ci)
		if err != nil {
			return ev, err
		}
		basePC[gen] = pc
	}
	ev.PerCoreBase, err = f.Carbon.PerCore(in.Baseline, ci)
	if err != nil {
		return ev, err
	}
	ev.PerCoreSavings, err = f.Carbon.SavingsVs(in.Green, in.Baseline, ci)
	if err != nil {
		return ev, err
	}

	// Adoption component.
	ev.Adoption, err = adoption.Build(ev.Factors, ev.PerCoreGreen, basePC)
	if err != nil {
		return ev, err
	}

	// Maintenance component.
	serverRatio := float64(in.Baseline.Cores()) / float64(in.Green.Cores())
	emissionRatio := float64(ev.PerCoreGreen.Total()) * float64(in.Green.Cores()) /
		(float64(ev.PerCoreBase.Total()) * float64(in.Baseline.Cores()))
	ev.Maintenance, err = maintenance.Compare([]maintenance.Input{
		{SKU: in.Baseline, ServerRatio: 1, EmissionRatio: 1},
		{SKU: in.Green, ServerRatio: serverRatio, EmissionRatio: emissionRatio},
	}, f.AFRs, f.FIP)
	if err != nil {
		return ev, err
	}

	// VM allocation + cluster sizing.
	baseClass := classOf(in.Baseline, false)
	greenClass := classOf(in.Green, true)
	sizer := &cluster.Sizer{
		Base:   baseClass,
		Green:  greenClass,
		Policy: f.Policy,
		Decide: ev.Adoption.Decider(),
		Audit:  f.Audit,
	}
	ev.Mix, err = sizer.MixedSizeContext(ctx, in.Workload)
	if err != nil {
		return ev, err
	}

	// Growth buffer.
	ev.Buffered, err = f.Buffer.Apply(ev.Mix)
	if err != nil {
		return ev, err
	}

	// Cluster- and datacenter-level savings.
	baseIn := cluster.SavingsInput{Class: baseClass, PerCore: ev.PerCoreBase}
	greenIn := cluster.SavingsInput{Class: greenClass, PerCore: ev.PerCoreGreen}
	ev.ClusterSavings = f.Buffer.Savings(ev.Buffered, baseIn, greenIn)
	breakdown, err := fleet.Analyze(f.Fleet)
	if err != nil {
		return ev, err
	}
	ev.DCSavings = fleet.DCSavings(ev.ClusterSavings, breakdown)

	if chk := audit.Resolve(f.Audit); chk != nil {
		f.auditEvaluation(chk, in, baseClass, greenClass, ev)
	}
	return ev, nil
}

// auditEvaluation checks the pipeline-level invariants that no single
// component can see: the buffered cluster still covers the workload's
// peak demand, and fleet attenuation never amplifies cluster savings.
func (f *Framework) auditEvaluation(chk audit.Checker, in Input, baseClass, greenClass alloc.ServerClass, ev Evaluation) {
	if ev.Buffered.BufferServers < 0 {
		audit.Failf(chk, "core", "negative-buffer",
			"trace %s: %d buffer servers", in.Workload.Name, ev.Buffered.BufferServers)
	}
	// Buffered capacity >= peak demand. Full-node VMs requesting more
	// than one baseline server consume only the server they pin, so the
	// requested peak is not a lower bound for them (mirrors the guard
	// in cluster's sizing audit).
	skipPeak := false
	for _, v := range in.Workload.VMs {
		if v.FullNode && (v.Cores > baseClass.Cores || float64(v.Memory) > float64(baseClass.Memory)) {
			skipPeak = true
			break
		}
	}
	if !skipPeak {
		st := trace.Summarise(in.Workload)
		cores := (ev.Buffered.Mix.NBase+ev.Buffered.BufferServers)*baseClass.Cores +
			ev.Buffered.Mix.NGreen*greenClass.Cores
		if cores < st.PeakCoreDmd {
			audit.Failf(chk, "core", "buffered-capacity-below-peak",
				"trace %s: buffered capacity %d cores below peak demand %d",
				in.Workload.Name, cores, st.PeakCoreDmd)
		}
	}
	// DCSavings scales ClusterSavings by compute's share of datacenter
	// emissions, a fraction in [0, 1]: attenuation only.
	if math.Abs(ev.DCSavings) > math.Abs(ev.ClusterSavings)+audit.CarbonTol {
		audit.Failf(chk, "core", "dc-savings-amplified",
			"trace %s: |DC savings| %g exceeds |cluster savings| %g",
			in.Workload.Name, ev.DCSavings, ev.ClusterSavings)
	}
}

func classOf(sku hw.SKU, green bool) alloc.ServerClass {
	return alloc.ServerClass{
		Name:        sku.Name,
		Cores:       sku.Cores(),
		Memory:      sku.TotalDRAMGB(),
		LocalMemory: sku.LocalDRAMGB(),
		Green:       green,
	}
}

// SweepCI evaluates the design across carbon intensities, reusing the
// CI-independent scaling factors (Fig. 11/12).
func (f *Framework) SweepCI(in Input, cis []units.CarbonIntensity) ([]Evaluation, error) {
	return f.SweepContext(context.Background(), in, cis)
}

// SweepContext evaluates the design across carbon intensities on the
// evaluation engine: the CI-independent scaling factors are profiled
// once, then the per-CI evaluations fan across f.Workers workers with
// results in cis order — identical to the serial path, since each
// evaluation is a pure function of its input.
func (f *Framework) SweepContext(ctx context.Context, in Input, cis []units.CarbonIntensity) ([]Evaluation, error) {
	factors := in.Factors
	if factors == nil {
		var err error
		factors, err = f.profileFor(ctx, in.Green)
		if err != nil {
			return nil, err
		}
	}
	results := engine.Map(ctx, f.Workers, len(cis), func(ctx context.Context, i int) (Evaluation, error) {
		run := in
		run.CI = cis[i]
		run.Factors = factors
		return f.EvaluateContext(ctx, run)
	})
	return engine.Collect(results)
}

// JobResult is one outcome of an EvaluateAll batch.
type JobResult struct {
	Eval Evaluation
	Err  error
}

// EvaluateAll fans independent evaluation jobs across the engine and
// returns per-job outcomes slotted by input index: job i's result is
// always at index i, and one job's failure (or panic) does not disturb
// the others.
func (f *Framework) EvaluateAll(ctx context.Context, inputs []Input) []JobResult {
	results := engine.Map(ctx, f.Workers, len(inputs), func(ctx context.Context, i int) (Evaluation, error) {
		return f.EvaluateContext(ctx, inputs[i])
	})
	out := make([]JobResult, len(results))
	for i, r := range results {
		out[i] = JobResult{Eval: r.Value, Err: r.Err}
	}
	return out
}
