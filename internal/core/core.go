// Package core is GSF itself: the framework of §IV that composes the
// carbon model, performance, maintenance, adoption, VM allocation,
// cluster sizing, and growth-buffer components (Fig. 6) to estimate the
// datacenter emissions of deploying a GreenSKU at scale.
//
// Each component lives in its own package with explicit inputs and
// outputs; core wires them in the paper's dependency order:
//
//	performance -> scaling factors -> adoption -+
//	carbon model -> CO2e-per-core --------------+-> allocation/sizing
//	maintenance -> out-of-service overhead -----+        |
//	                                growth buffer <------+
//	                                        |
//	                         cluster & datacenter emissions
package core

import (
	"fmt"

	"github.com/greensku/gsf/internal/adoption"
	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/buffer"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/cluster"
	"github.com/greensku/gsf/internal/fleet"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/maintenance"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// Framework bundles the component implementations. The zero value is
// not usable; construct with New.
type Framework struct {
	Carbon *carbon.Model
	Perf   perf.Options
	AFRs   maintenance.ComponentAFRs
	FIP    maintenance.FIP
	Buffer buffer.Params
	Policy alloc.Policy
	Fleet  fleet.Params
}

// New assembles a framework over a carbon model with the paper's
// default component settings.
func New(m *carbon.Model) *Framework {
	return &Framework{
		Carbon: m,
		Perf:   perf.DefaultOptions(),
		AFRs:   maintenance.DefaultAFRs(),
		FIP:    maintenance.FIP{Effectiveness: 0.75},
		Buffer: buffer.DefaultParams(),
		Policy: alloc.BestFit,
		Fleet:  fleet.Default(),
	}
}

// Input is one GreenSKU evaluation request: the design, the baseline
// fleet it would join, and the target workload.
type Input struct {
	Green hw.SKU
	// Baseline is the current-generation SKU the savings are measured
	// against (the paper's Gen3).
	Baseline hw.SKU
	// Workload is the VM trace the cluster must host.
	Workload trace.Trace
	// CI is the grid carbon intensity; zero uses the dataset default.
	CI units.CarbonIntensity
	// CXLBacked evaluates the performance component as if VM memory
	// were served from CXL (used for GreenSKU-CXL sensitivity runs).
	CXLBacked bool
	// Factors, if non-nil, reuses precomputed scaling factors
	// (they are carbon-intensity independent, so sweeps across CI
	// should share them).
	Factors map[string]map[int]perf.Factor
}

// Evaluation is the framework's output for one GreenSKU.
type Evaluation struct {
	// Factors are the performance component's scaling factors.
	Factors map[string]map[int]perf.Factor
	// Adoption is the per-(app, generation) adoption table.
	Adoption adoption.Table
	// PerCoreGreen/PerCoreBase are rack-amortised lifetime emissions.
	PerCoreGreen carbon.PerCore
	PerCoreBase  carbon.PerCore
	// PerCoreSavings is the Table IV/VIII-style headline.
	PerCoreSavings carbon.Savings
	// Mix is the right-sized mixed cluster for the workload.
	Mix cluster.Mix
	// Buffered attaches the growth buffer.
	Buffered buffer.Buffered
	// Maintenance compares out-of-service overheads.
	Maintenance []maintenance.Overhead
	// ClusterSavings is the end-to-end cluster-level carbon saving
	// including the growth buffer (Fig. 11/12's y-axis).
	ClusterSavings float64
	// DCSavings scales the cluster saving by compute's share of
	// datacenter emissions (the paper's "net cloud emissions").
	DCSavings float64
}

// Evaluate runs the full GSF pipeline for one design.
func (f *Framework) Evaluate(in Input) (Evaluation, error) {
	var ev Evaluation
	if f.Carbon == nil {
		return ev, fmt.Errorf("%w: no carbon model", ErrNotConfigured)
	}
	if err := in.Validate(); err != nil {
		return ev, err
	}
	ci := in.CI
	if ci == 0 {
		ci = f.Carbon.Data.DefaultCI
	}

	// Performance component: scaling factors per baseline generation.
	var err error
	ev.Factors = in.Factors
	if ev.Factors == nil {
		ev.Factors, err = perf.TableIII(in.Green, f.Perf)
		if err != nil {
			return ev, err
		}
	}

	// Carbon model: per-core emissions for the GreenSKU and each
	// baseline generation.
	ev.PerCoreGreen, err = f.Carbon.PerCore(in.Green, ci)
	if err != nil {
		return ev, err
	}
	basePC := map[int]carbon.PerCore{}
	for gen := 1; gen <= 3; gen++ {
		pc, err := f.Carbon.PerCore(hw.BaselineForGeneration(gen), ci)
		if err != nil {
			return ev, err
		}
		basePC[gen] = pc
	}
	ev.PerCoreBase, err = f.Carbon.PerCore(in.Baseline, ci)
	if err != nil {
		return ev, err
	}
	ev.PerCoreSavings, err = f.Carbon.SavingsVs(in.Green, in.Baseline, ci)
	if err != nil {
		return ev, err
	}

	// Adoption component.
	ev.Adoption, err = adoption.Build(ev.Factors, ev.PerCoreGreen, basePC)
	if err != nil {
		return ev, err
	}

	// Maintenance component.
	serverRatio := float64(in.Baseline.Cores()) / float64(in.Green.Cores())
	emissionRatio := float64(ev.PerCoreGreen.Total()) * float64(in.Green.Cores()) /
		(float64(ev.PerCoreBase.Total()) * float64(in.Baseline.Cores()))
	ev.Maintenance, err = maintenance.Compare([]maintenance.Input{
		{SKU: in.Baseline, ServerRatio: 1, EmissionRatio: 1},
		{SKU: in.Green, ServerRatio: serverRatio, EmissionRatio: emissionRatio},
	}, f.AFRs, f.FIP)
	if err != nil {
		return ev, err
	}

	// VM allocation + cluster sizing.
	baseClass := classOf(in.Baseline, false)
	greenClass := classOf(in.Green, true)
	sizer := &cluster.Sizer{
		Base:   baseClass,
		Green:  greenClass,
		Policy: f.Policy,
		Decide: ev.Adoption.Decider(),
	}
	ev.Mix, err = sizer.MixedSize(in.Workload)
	if err != nil {
		return ev, err
	}

	// Growth buffer.
	ev.Buffered, err = f.Buffer.Apply(ev.Mix)
	if err != nil {
		return ev, err
	}

	// Cluster- and datacenter-level savings.
	baseIn := cluster.SavingsInput{Class: baseClass, PerCore: ev.PerCoreBase}
	greenIn := cluster.SavingsInput{Class: greenClass, PerCore: ev.PerCoreGreen}
	ev.ClusterSavings = f.Buffer.Savings(ev.Buffered, baseIn, greenIn)
	breakdown, err := fleet.Analyze(f.Fleet)
	if err != nil {
		return ev, err
	}
	ev.DCSavings = fleet.DCSavings(ev.ClusterSavings, breakdown)
	return ev, nil
}

func classOf(sku hw.SKU, green bool) alloc.ServerClass {
	return alloc.ServerClass{
		Name:        sku.Name,
		Cores:       sku.Cores(),
		Memory:      sku.TotalDRAMGB(),
		LocalMemory: sku.LocalDRAMGB(),
		Green:       green,
	}
}

// SweepCI evaluates the design across carbon intensities, reusing the
// CI-independent scaling factors (Fig. 11/12).
func (f *Framework) SweepCI(in Input, cis []units.CarbonIntensity) ([]Evaluation, error) {
	factors, err := perf.TableIII(in.Green, f.Perf)
	if err != nil {
		return nil, err
	}
	out := make([]Evaluation, 0, len(cis))
	for _, ci := range cis {
		run := in
		run.CI = ci
		run.Factors = factors
		ev, err := f.Evaluate(run)
		if err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	return out, nil
}
