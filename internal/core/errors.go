package core

import (
	"errors"
	"fmt"
)

// Sentinel errors returned by the framework. Callers serving GSF over a
// network boundary (cmd/gsfd) use errors.Is against these to decide
// whether a failure was caused by the request (client error, HTTP 4xx)
// or by the framework itself (internal error, HTTP 5xx).
var (
	// ErrBadInput marks an Input that fails validation: malformed
	// SKUs, an invalid workload trace, or out-of-range parameters.
	ErrBadInput = errors.New("core: bad input")

	// ErrNotConfigured marks a Framework that is missing a required
	// component (e.g. the zero value, which has no carbon model).
	ErrNotConfigured = errors.New("core: framework not configured")
)

// Validate checks the evaluation request up front, before any component
// runs. All failures wrap ErrBadInput so callers can classify them with
// errors.Is without string matching.
func (in Input) Validate() error {
	if err := in.Green.Validate(); err != nil {
		return fmt.Errorf("%w: green SKU: %v", ErrBadInput, err)
	}
	if err := in.Baseline.Validate(); err != nil {
		return fmt.Errorf("%w: baseline SKU: %v", ErrBadInput, err)
	}
	if len(in.Workload.VMs) == 0 {
		return fmt.Errorf("%w: workload trace is empty", ErrBadInput)
	}
	if err := in.Workload.Validate(); err != nil {
		return fmt.Errorf("%w: workload: %v", ErrBadInput, err)
	}
	if in.CI < 0 {
		return fmt.Errorf("%w: negative carbon intensity %v", ErrBadInput, in.CI)
	}
	if in.CISignal != nil {
		if in.CI != 0 {
			return fmt.Errorf("%w: both a scalar CI and a CI signal were set", ErrBadInput)
		}
		if err := in.CISignal.Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadInput, err)
		}
	}
	return nil
}
