package core

import (
	"errors"
	"testing"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

func framework(t *testing.T, dataset string) *Framework {
	t.Helper()
	m, err := carbon.New(carbondata.Datasets()[dataset])
	if err != nil {
		t.Fatal(err)
	}
	return New(m)
}

func workload(t *testing.T, seed uint64) trace.Trace {
	t.Helper()
	// Large enough that server-count granularity does not swamp the
	// savings signal (a dozen-server cluster can see negative savings
	// from fragmentation alone, which is a real effect but not what
	// this test probes).
	p := trace.DefaultParams("core-test", seed)
	p.HorizonHours = 24 * 6
	p.ArrivalsPerHour = 18
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEvaluateEndToEnd(t *testing.T) {
	f := framework(t, "open-source")
	ev, err := f.Evaluate(Input{
		Green:    hw.GreenSKUEfficient(),
		Baseline: hw.BaselineGen3(),
		Workload: workload(t, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Factors) != 20 {
		t.Errorf("factors for %d apps, want 20", len(ev.Factors))
	}
	if ev.PerCoreSavings.Total <= 0 {
		t.Errorf("per-core savings = %v, want positive", ev.PerCoreSavings.Total)
	}
	if ev.Mix.NGreen == 0 {
		t.Error("mixed cluster deployed no GreenSKUs")
	}
	if ev.ClusterSavings <= 0 || ev.ClusterSavings >= ev.PerCoreSavings.Total {
		t.Errorf("cluster savings = %v, want in (0, per-core %v): adoption and buffers dilute",
			ev.ClusterSavings, ev.PerCoreSavings.Total)
	}
	if ev.DCSavings <= 0 || ev.DCSavings >= ev.ClusterSavings {
		t.Errorf("DC savings = %v, want in (0, cluster %v)", ev.DCSavings, ev.ClusterSavings)
	}
	if len(ev.Maintenance) != 2 {
		t.Errorf("maintenance comparison has %d rows, want 2", len(ev.Maintenance))
	}
	if ev.Buffered.BufferServers == 0 {
		t.Error("growth buffer is empty")
	}
}

func TestSweepCI(t *testing.T) {
	f := framework(t, "paper-calibrated")
	evs, err := f.SweepCI(Input{
		Green:    hw.GreenSKUFull(),
		Baseline: hw.BaselineGen3(),
		Workload: workload(t, 2),
	}, []units.CarbonIntensity{0.02, 0.1, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d evaluations, want 3", len(evs))
	}
	// GreenSKU-Full's edge is embodied reuse: its savings shrink as
	// carbon intensity (operational weight) grows.
	if !(evs[0].PerCoreSavings.Total > evs[1].PerCoreSavings.Total &&
		evs[1].PerCoreSavings.Total > evs[2].PerCoreSavings.Total) {
		t.Errorf("GreenSKU-Full savings should fall with CI: %v %v %v",
			evs[0].PerCoreSavings.Total, evs[1].PerCoreSavings.Total, evs[2].PerCoreSavings.Total)
	}
}

func TestEvaluateValidation(t *testing.T) {
	f := framework(t, "open-source")
	if _, err := f.Evaluate(Input{Baseline: hw.BaselineGen3(), Workload: workload(t, 3)}); err == nil {
		t.Error("Evaluate accepted an empty GreenSKU")
	}
	if _, err := (&Framework{}).Evaluate(Input{}); err == nil {
		t.Error("Evaluate accepted a framework without a carbon model")
	}
}

func TestDefaultCIUsed(t *testing.T) {
	f := framework(t, "open-source")
	w := workload(t, 4)
	a, err := f.Evaluate(Input{Green: hw.GreenSKUCXL(), Baseline: hw.BaselineGen3(), Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Evaluate(Input{Green: hw.GreenSKUCXL(), Baseline: hw.BaselineGen3(), Workload: w, CI: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if a.PerCoreSavings.Total != b.PerCoreSavings.Total {
		t.Error("zero CI should default to the dataset's 0.1")
	}
}

func TestValidateSentinelErrors(t *testing.T) {
	f := framework(t, "open-source")
	w := workload(t, 9)

	cases := []struct {
		name string
		in   Input
	}{
		{"missing green SKU", Input{Baseline: hw.BaselineGen3(), Workload: w}},
		{"missing baseline SKU", Input{Green: hw.GreenSKUFull(), Workload: w}},
		{"empty workload", Input{Green: hw.GreenSKUFull(), Baseline: hw.BaselineGen3()}},
		{"negative CI", Input{Green: hw.GreenSKUFull(), Baseline: hw.BaselineGen3(), Workload: w, CI: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := f.Evaluate(tc.in)
			if err == nil {
				t.Fatal("Evaluate accepted invalid input")
			}
			if !errors.Is(err, ErrBadInput) {
				t.Errorf("error %v does not wrap ErrBadInput", err)
			}
			if errors.Is(err, ErrNotConfigured) {
				t.Errorf("input error %v should not wrap ErrNotConfigured", err)
			}
		})
	}
}

func TestNotConfiguredSentinel(t *testing.T) {
	_, err := (&Framework{}).Evaluate(Input{})
	if !errors.Is(err, ErrNotConfigured) {
		t.Errorf("zero framework error %v does not wrap ErrNotConfigured", err)
	}
	if errors.Is(err, ErrBadInput) {
		t.Errorf("configuration error %v should not wrap ErrBadInput", err)
	}
}
