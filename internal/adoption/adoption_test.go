package adoption

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/trace"
)

func perCores(t *testing.T) (green carbon.PerCore, base map[int]carbon.PerCore) {
	t.Helper()
	m, err := carbon.New(carbondata.OpenSource())
	if err != nil {
		t.Fatal(err)
	}
	green, err = m.PerCore(hw.GreenSKUEfficient(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	base = map[int]carbon.PerCore{}
	for gen := 1; gen <= 3; gen++ {
		pc, err := m.PerCore(hw.BaselineForGeneration(gen), 0.1)
		if err != nil {
			t.Fatal(err)
		}
		base[gen] = pc
	}
	return green, base
}

func TestDecideRules(t *testing.T) {
	green, base := perCores(t)
	// Factor 1: green per-core is below baseline's, so adopt.
	d := Decide(perf.Factor{App: "Redis", Value: 1, Adoptable: true}, 3, green, base[3])
	if !d.Adopt {
		t.Errorf("factor-1 app should adopt: %+v", d)
	}
	// Not adoptable (>1.5): never adopt.
	d = Decide(perf.Factor{App: "Silo", Value: math.Inf(1)}, 3, green, base[3])
	if d.Adopt {
		t.Error("non-adoptable factor must not adopt")
	}
	// A factor so large it costs more carbon than the baseline.
	big := float64(base[3].Total()) / float64(green.Total()) * 1.01
	d = Decide(perf.Factor{App: "X", Value: big, Adoptable: true}, 3, green, base[3])
	if d.Adopt {
		t.Errorf("scaling that exceeds the carbon break-even (%v) must not adopt", big)
	}
}

func TestBreakEvenFactor(t *testing.T) {
	// The break-even scaling factor equals basePC/greenPC; below it
	// adoption saves carbon.
	green, base := perCores(t)
	breakEven := float64(base[3].Total()) / float64(green.Total())
	if breakEven <= 1 {
		t.Fatalf("GreenSKU per-core (%v) should be below baseline (%v)", green.Total(), base[3].Total())
	}
	d := Decide(perf.Factor{App: "X", Value: breakEven * 0.99, Adoptable: true}, 3, green, base[3])
	if !d.Adopt {
		t.Error("factor just below break-even should adopt")
	}
}

func TestBuildAndDecider(t *testing.T) {
	green, base := perCores(t)
	factors, err := perf.TableIII(hw.GreenSKUEfficient(), perf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	table, err := Build(factors, green, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != len(factors) {
		t.Fatalf("table has %d apps, want %d", len(table), len(factors))
	}
	// Silo can never adopt (Table III: >1.5 everywhere).
	for gen := 1; gen <= 3; gen++ {
		if table["Silo"][gen].Adopt {
			t.Errorf("Silo adopts for gen %d", gen)
		}
	}
	// Redis adopts everywhere (factor 1 across generations).
	for gen := 1; gen <= 3; gen++ {
		if !table["Redis"][gen].Adopt {
			t.Errorf("Redis does not adopt for gen %d", gen)
		}
	}

	decide := table.Decider()
	d := decide(trace.VM{App: "Redis", Gen: 3})
	if !d.Adopt || d.Scale != 1 {
		t.Errorf("Redis VM decision = %+v, want adopt at scale 1", d)
	}
	d = decide(trace.VM{App: "Silo", Gen: 2})
	if d.Adopt {
		t.Error("Silo VM must stay on baseline")
	}
	// Xapian needs 1.5x cores vs Gen3, beyond the open dataset's
	// carbon break-even (~1.16): meeting the SLO is possible but
	// adoption would not save carbon, so the component refuses (§VI's
	// "the scaling required outweighs carbon savings").
	d = decide(trace.VM{App: "Xapian", Gen: 3})
	if d.Adopt {
		t.Errorf("Xapian gen-3 decision = %+v, want no adoption (scaling beats savings)", d)
	}
	// Against the older Gen2 baseline the same 1.25x scaling is well
	// under break-even, so WebF-Dynamic adopts with its request scaled.
	d = decide(trace.VM{App: "WebF-Dynamic", Gen: 2})
	if !d.Adopt || d.Scale != 1.25 {
		t.Errorf("WebF-Dynamic gen-2 decision = %+v, want adopt at scale 1.25", d)
	}
	d = decide(trace.VM{App: "unknown-app", Gen: 3})
	if d.Adopt {
		t.Error("unknown app must stay on baseline")
	}
}

func TestAdoptionRate(t *testing.T) {
	green, base := perCores(t)
	factors, err := perf.TableIII(hw.GreenSKUEfficient(), perf.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	table, err := Build(factors, green, base)
	if err != nil {
		t.Fatal(err)
	}
	rate := table.AdoptionRate()
	// Most (app, gen) pairs adopt; Silo and Masstree-gen3 do not.
	if rate < 0.7 || rate >= 1 {
		t.Fatalf("adoption rate = %v, want high but below 1", rate)
	}
}

func TestBuildMissingGeneration(t *testing.T) {
	green, _ := perCores(t)
	factors := map[string]map[int]perf.Factor{
		"X": {7: {App: "X", Value: 1, Adoptable: true}},
	}
	if _, err := Build(factors, green, map[int]carbon.PerCore{}); err == nil {
		t.Fatal("Build accepted a generation without baseline carbon")
	}
}

func TestEmptyTable(t *testing.T) {
	var tb Table
	if tb.AdoptionRate() != 0 {
		t.Error("empty table adoption rate should be 0")
	}
}
