// Package adoption implements GSF's adoption component (§IV-C, §V): it
// decides, per application, whether running on a GreenSKU reduces
// carbon while meeting performance goals. An application adopts the
// GreenSKU when the carbon to serve it there — scaling factor times the
// GreenSKU's CO2e-per-core — is below the carbon to serve it on the
// baseline SKU it currently runs on.
package adoption

import (
	"fmt"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// Decision records the adoption outcome for one (application, baseline
// generation) pair.
type Decision struct {
	App    string
	Gen    int
	Factor perf.Factor
	// GreenCarbon and BaseCarbon are the lifetime emissions to serve
	// one baseline core's worth of the application.
	GreenCarbon units.KgCO2e
	BaseCarbon  units.KgCO2e
	Adopt       bool
}

// Decide applies the carbon-to-serve rule.
func Decide(f perf.Factor, gen int, greenPC, basePC carbon.PerCore) Decision {
	d := Decision{App: f.App, Gen: gen, Factor: f, BaseCarbon: basePC.Total()}
	if !f.Adoptable {
		return d
	}
	d.GreenCarbon = units.KgCO2e(f.Value * float64(greenPC.Total()))
	d.Adopt = d.GreenCarbon < d.BaseCarbon
	return d
}

// Table maps application name and generation to a decision.
type Table map[string]map[int]Decision

// Build assembles the adoption table from the performance component's
// scaling factors and the carbon model's per-core emissions.
// factors[app][gen] comes from perf.TableIII; basePC maps generation to
// that baseline's per-core carbon.
func Build(factors map[string]map[int]perf.Factor, greenPC carbon.PerCore, basePC map[int]carbon.PerCore) (Table, error) {
	t := Table{}
	for app, byGen := range factors {
		t[app] = map[int]Decision{}
		for gen, f := range byGen {
			pc, ok := basePC[gen]
			if !ok {
				return nil, fmt.Errorf("adoption: no baseline carbon for generation %d", gen)
			}
			t[app][gen] = Decide(f, gen, greenPC, pc)
		}
	}
	return t, nil
}

// Decider converts the table into the allocation simulator's per-VM
// directive: a VM adopts the GreenSKU when its assigned application
// adopts it for the VM's server generation, scaled by the application's
// scaling factor. Unknown applications stay on the baseline.
func (t Table) Decider() alloc.Decider {
	return func(vm trace.VM) alloc.Decision {
		byGen, ok := t[vm.App]
		if !ok {
			return alloc.Decision{}
		}
		d, ok := byGen[vm.Gen]
		if !ok || !d.Adopt {
			return alloc.Decision{}
		}
		return alloc.Decision{Adopt: true, Scale: d.Factor.Value}
	}
}

// AdoptionRate returns the fraction of (app, gen) pairs that adopt.
func (t Table) AdoptionRate() float64 {
	var adopt, total int
	for _, byGen := range t {
		for _, d := range byGen {
			total++
			if d.Adopt {
				adopt++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(adopt) / float64(total)
}
