// Package carbondata holds the carbon-accounting datasets consumed by
// the carbon model: per-component TDP and embodied emissions, plus the
// datacenter parameters of Appendix A (derating factor, rack limits,
// lifetime, carbon intensity, PUE).
//
// Three datasets are provided:
//
//   - WorkedExample: exactly the Table V/VI numbers, restricted to the
//     four component types used in §V's step-by-step example, so the
//     example's intermediate values (P_s = 403 W, E_emb,s = 1644 kg,
//     E_r = 63,351 kg, 31 kg/core) reproduce to the digit.
//   - OpenSource: Table V/VI extended with the values the example omits
//     for brevity (the Gen3 Genoa CPU, per-server base hardware,
//     reused-SSD power). Reproduces Table VIII within rounding slack.
//   - PaperCalibrated: fitted to the per-core savings the paper reports
//     from Azure-internal data (Table IV), used for the Fig. 11
//     reproduction.
//
// Values marked "fitted:" are not published by the paper; they were
// chosen so the model reproduces a stated result.
package carbondata

import (
	"fmt"

	"github.com/greensku/gsf/internal/units"
)

// Component carries the two carbon-relevant properties of a hardware
// component: its thermal design power and its embodied emissions.
// Depending on the component, values are per unit (CPU, CXL subsystem,
// server base, rack), per GB (DRAM), or per TB (SSD).
type Component struct {
	TDP      units.Watts
	Embodied units.KgCO2e
	// VRLoss is the component's power-delivery loss factor (e.g. 0.05
	// for the CPU's voltage regulators in the paper's example). Zero
	// means no modelled loss.
	VRLoss float64
}

// Dataset is a complete set of inputs for the carbon model.
type Dataset struct {
	Name string

	// CPUs maps a CPU name (hw.CPUSpec.Name) to its carbon data.
	CPUs map[string]Component

	// GPUs maps an accelerator name (hw.GPUSpec.Name) to its carbon
	// data, per unit (card). Optional: the paper's SKUs carry no
	// accelerators, so datasets may omit it; evaluating a GPU-bearing
	// SKU against a dataset without data for its card is an error.
	GPUs map[string]Component

	// DRAMPerGB is first-life direct-attached DRAM, per GB.
	DRAMPerGB Component
	// ReusedDRAMPerGB is second-life (reused) DRAM, per GB. Embodied
	// is zero: the paper counts reused components in their "second
	// life" with no embodied emissions.
	ReusedDRAMPerGB Component
	// SSDPerTB is first-life SSD storage, per TB.
	SSDPerTB Component
	// ReusedSSDPerTB is second-life SSD storage, per TB.
	ReusedSSDPerTB Component
	// CXLSubsystem is the CXL memory-expansion hardware of one SKU
	// (controllers plus carrier cards), matching Table V's single
	// "CXL Controller" line item.
	CXLSubsystem Component
	// ServerBase is the per-server fixed hardware: chassis, board,
	// NIC, fans, management controller, power supplies.
	ServerBase Component
	// RackMisc is the empty rack: structure, power bus, rack
	// controller ("Rack misc." in Table V: 500 W, 500 kgCO2e).
	RackMisc Component

	// DerateFactor scales component TDP to average draw (Table VI:
	// 0.44 at 40% SPEC rate).
	DerateFactor float64
	// Lifetime is the server deployment lifetime (Table VI: 6 years).
	Lifetime units.Hours
	// DefaultCI is the average grid carbon intensity across major
	// Azure regions (Table VI: 0.1 kgCO2e/kWh).
	DefaultCI units.CarbonIntensity

	// RackSpaceU is rack space available for servers (Table VI: 42U
	// minus 10U overhead = 32U).
	RackSpaceU int
	// RackPowerCap is the rack power limit (Table VI: 15 kW).
	RackPowerCap units.Watts

	// PUE is the datacenter power usage effectiveness applied at the
	// datacenter level.
	PUE float64
	// DCPowerPerRack is non-compute IT power (networking, storage)
	// amortised per compute rack (X / N_r in §V's notation).
	DCPowerPerRack units.Watts
	// DCEmbodiedPerRack is networking/storage/building embodied
	// emissions amortised per compute rack ((Y + Z) / N_r).
	DCEmbodiedPerRack units.KgCO2e
}

// Validate checks the dataset for structurally impossible values.
func (d Dataset) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("carbondata: dataset has no name")
	}
	if d.DerateFactor <= 0 || d.DerateFactor > 1 {
		return fmt.Errorf("carbondata: %s: derate factor %v out of (0,1]", d.Name, d.DerateFactor)
	}
	if d.Lifetime <= 0 {
		return fmt.Errorf("carbondata: %s: non-positive lifetime", d.Name)
	}
	if d.DefaultCI < 0 {
		return fmt.Errorf("carbondata: %s: negative carbon intensity", d.Name)
	}
	if d.RackSpaceU <= 0 || d.RackPowerCap <= 0 {
		return fmt.Errorf("carbondata: %s: rack limits must be positive", d.Name)
	}
	if d.PUE < 1 {
		return fmt.Errorf("carbondata: %s: PUE %v below 1", d.Name, d.PUE)
	}
	comps := []struct {
		name string
		c    Component
	}{
		{"DRAMPerGB", d.DRAMPerGB}, {"ReusedDRAMPerGB", d.ReusedDRAMPerGB},
		{"SSDPerTB", d.SSDPerTB}, {"ReusedSSDPerTB", d.ReusedSSDPerTB},
		{"CXLSubsystem", d.CXLSubsystem}, {"ServerBase", d.ServerBase},
		{"RackMisc", d.RackMisc},
	}
	for _, c := range comps {
		if c.c.TDP < 0 || c.c.Embodied < 0 || c.c.VRLoss < 0 {
			return fmt.Errorf("carbondata: %s: component %s has negative values", d.Name, c.name)
		}
	}
	for name, c := range d.CPUs {
		if c.TDP <= 0 {
			return fmt.Errorf("carbondata: %s: CPU %s has non-positive TDP", d.Name, name)
		}
		if c.Embodied < 0 {
			return fmt.Errorf("carbondata: %s: CPU %s has negative embodied", d.Name, name)
		}
	}
	if len(d.CPUs) == 0 {
		return fmt.Errorf("carbondata: %s: no CPU carbon data", d.Name)
	}
	for name, c := range d.GPUs {
		if c.TDP <= 0 {
			return fmt.Errorf("carbondata: %s: GPU %s has non-positive TDP", d.Name, name)
		}
		if c.Embodied < 0 {
			return fmt.Errorf("carbondata: %s: GPU %s has negative embodied", d.Name, name)
		}
	}
	return nil
}

// CPU returns the carbon data for the named CPU.
func (d Dataset) CPU(name string) (Component, error) {
	c, ok := d.CPUs[name]
	if !ok {
		return Component{}, fmt.Errorf("carbondata: %s: no carbon data for CPU %q", d.Name, name)
	}
	return c, nil
}

// GPU returns the carbon data for the named accelerator card.
func (d Dataset) GPU(name string) (Component, error) {
	c, ok := d.GPUs[name]
	if !ok {
		return Component{}, fmt.Errorf("carbondata: %s: no carbon data for GPU %q", d.Name, name)
	}
	return c, nil
}

// tableVI returns the shared Table VI parameters.
func tableVI(d *Dataset) {
	d.DerateFactor = 0.44
	d.Lifetime = units.Years(6)
	d.DefaultCI = 0.1
	d.RackSpaceU = 32 // 42U minus 10U overhead
	d.RackPowerCap = 15000
	d.RackMisc = Component{TDP: 500, Embodied: 500}
	d.PUE = 1.18                // fitted: typical hyperscale PUE; Fig 1 non-IT share
	d.DCPowerPerRack = 900      // fitted: networking+storage power per compute rack
	d.DCEmbodiedPerRack = 26000 // fitted: storage/network/building embodied per compute rack
}

// WorkedExample returns exactly the data used in §V's step-by-step
// rack-level calculation: Table V's four component rows and Table VI's
// parameters, with no per-server base hardware.
func WorkedExample() Dataset {
	d := Dataset{
		Name: "worked-example",
		CPUs: map[string]Component{
			"Bergamo": {TDP: 400, Embodied: 28.3, VRLoss: 0.05},
		},
		DRAMPerGB:       Component{TDP: 0.37, Embodied: 1.65},
		ReusedDRAMPerGB: Component{TDP: 0.37, Embodied: 0},
		SSDPerTB:        Component{TDP: 5.6, Embodied: 17.3},
		ReusedSSDPerTB:  Component{TDP: 5.6, Embodied: 0},
		CXLSubsystem:    Component{TDP: 5.8, Embodied: 2.5},
		ServerBase:      Component{},
	}
	tableVI(&d)
	return d
}

// OpenSource returns the Appendix A open dataset extended with the
// values the worked example omits for brevity: baseline-generation CPUs,
// per-server base hardware, and reused-SSD power. This dataset drives
// the Table VIII and Fig. 12 reproductions.
func OpenSource() Dataset {
	d := WorkedExample()
	d.Name = "open-source"
	d.CPUs = map[string]Component{
		"Bergamo": {TDP: 400, Embodied: 28.3, VRLoss: 0.05},
		// fitted: Genoa at 320 W / 30 kg reproduces Table VIII's
		// Baseline-Resized (6% op) and GreenSKU-Efficient (16% op)
		// savings; TDP is within Table I's 300-350 W range.
		"Genoa": {TDP: 320, Embodied: 30, VRLoss: 0.05},
		// Older DDR4 platforms; used only by the performance study's
		// Gen1/Gen2 baselines, not by Table VIII.
		"Milan": {TDP: 280, Embodied: 26, VRLoss: 0.05},
		"Rome":  {TDP: 240, Embodied: 24, VRLoss: 0.05},
	}
	// fitted: per-server base hardware (chassis, board, NIC, fans,
	// BMC, PSUs) at 30 W / 300 kg; with it, per-core embodied savings
	// land within rounding of Table VIII.
	d.ServerBase = Component{TDP: 30, Embodied: 300}
	// fitted: reused DDR4 behind CXL draws more wall power per GB than
	// the worked example's brevity value (0.37) once controller-side
	// DRAM interface power is attributed; 0.583 W/GB reproduces Table
	// VIII's GreenSKU-CXL operational savings (15%) landing below
	// GreenSKU-Efficient's (16%), which is the paper's headline
	// operational-vs-embodied tradeoff.
	d.ReusedDRAMPerGB = Component{TDP: 0.583, Embodied: 0}
	// fitted: reused m.2 SSDs draw more power per TB than new E1.s
	// drives (§III/§VI: "reused SSDs are less energy efficient"),
	// which makes GreenSKU-Full's operational savings lower than
	// GreenSKU-CXL's as in Table VIII (14% vs 15%).
	d.ReusedSSDPerTB = Component{TDP: 7, Embodied: 0}
	// fitted: SCARIF-style accelerator estimates (PAPERS.md). The A100
	// embodied value follows SCARIF's server-level regression with the
	// large HBM stack dominating; the L4 is a small-die inference part.
	d.GPUs = map[string]Component{
		"A100": {TDP: 400, Embodied: 143, VRLoss: 0.05},
		"L4":   {TDP: 72, Embodied: 40, VRLoss: 0.05},
	}
	return d
}

// PaperCalibrated returns a dataset fitted so the model's per-core
// savings match Table IV (the paper's Azure-internal results): 23%, 24%,
// and 28% total savings for GreenSKU-Efficient/-CXL/-Full. It exists so
// the Fig. 11 reproduction exercises the same operating regime as the
// paper's internal data.
func PaperCalibrated() Dataset {
	d := OpenSource()
	d.Name = "paper-calibrated"
	// fitted: this entire parameter set was solved so the rack-level
	// per-core savings at CI = 0.1 reproduce all twelve cells of
	// Table IV (see carbon.TestTableIV):
	//
	//	Baseline-Resized     ~3% op /  6% emb /  ~4% total
	//	GreenSKU-Efficient   29% op / 14% emb /  23% total
	//	GreenSKU-CXL         23% op / 25% emb /  24% total
	//	GreenSKU-Full        17% op / 43% emb /  28% total
	//
	// and the implied operational share of baseline emissions is
	// ~58%, matching §II's renewable-mix accounting.
	d.CPUs = map[string]Component{
		"Bergamo": {TDP: 267, Embodied: 108.1, VRLoss: 0.05},
		"Genoa":   {TDP: 300, Embodied: 104, VRLoss: 0.05},
		"Milan":   {TDP: 280, Embodied: 95, VRLoss: 0.05},
		"Rome":    {TDP: 240, Embodied: 90, VRLoss: 0.05},
	}
	d.DRAMPerGB = Component{TDP: 0.2, Embodied: 0.5026}
	d.ReusedDRAMPerGB = Component{TDP: 0.517, Embodied: 0}
	d.SSDPerTB = Component{TDP: 5.6, Embodied: 25.74}
	d.ReusedSSDPerTB = Component{TDP: 10.7, Embodied: 0}
	d.CXLSubsystem = Component{TDP: 5.8, Embodied: 4.33}
	d.ServerBase = Component{TDP: 33, Embodied: 219.2}
	d.RackMisc = Component{TDP: 500, Embodied: 866}
	return d
}

// Datasets returns all built-in datasets keyed by name.
func Datasets() map[string]Dataset {
	out := map[string]Dataset{}
	for _, d := range []Dataset{WorkedExample(), OpenSource(), PaperCalibrated()} {
		out[d.Name] = d
	}
	return out
}

// RegionCI lists the estimated grid carbon intensities for the three
// Azure datacenter regions annotated on Fig. 11/12.
var RegionCI = []struct {
	Region string
	CI     units.CarbonIntensity
}{
	{"Azure-us-south", 0.035},
	{"Azure-us-east", 0.095},
	{"Azure-europe-north", 0.35},
}
