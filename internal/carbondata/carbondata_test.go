package carbondata

import (
	"testing"

	"github.com/greensku/gsf/internal/units"
)

func TestBuiltinDatasetsValidate(t *testing.T) {
	ds := Datasets()
	if len(ds) != 3 {
		t.Fatalf("Datasets() returned %d datasets, want 3", len(ds))
	}
	for name, d := range ds {
		if err := d.Validate(); err != nil {
			t.Errorf("dataset %s invalid: %v", name, err)
		}
		if d.Name != name {
			t.Errorf("dataset keyed %q has Name %q", name, d.Name)
		}
	}
}

func TestTableVValues(t *testing.T) {
	d := WorkedExample()
	cpu, err := d.CPU("Bergamo")
	if err != nil {
		t.Fatal(err)
	}
	if cpu.TDP != 400 || cpu.Embodied != 28.3 {
		t.Errorf("Bergamo = %+v, want TDP 400 / embodied 28.3 (Table V)", cpu)
	}
	if d.DRAMPerGB.TDP != 0.37 || d.DRAMPerGB.Embodied != 1.65 {
		t.Errorf("DDR5 = %+v, want 0.37 W/GB, 1.65 kg/GB", d.DRAMPerGB)
	}
	if d.ReusedDRAMPerGB.Embodied != 0 {
		t.Error("reused DDR4 must have zero embodied (second life)")
	}
	if d.SSDPerTB.TDP != 5.6 || d.SSDPerTB.Embodied != 17.3 {
		t.Errorf("SSD = %+v, want 5.6 W/TB, 17.3 kg/TB", d.SSDPerTB)
	}
	if d.CXLSubsystem.TDP != 5.8 || d.CXLSubsystem.Embodied != 2.5 {
		t.Errorf("CXL = %+v, want 5.8 W, 2.5 kg", d.CXLSubsystem)
	}
	if d.RackMisc.TDP != 500 || d.RackMisc.Embodied != 500 {
		t.Errorf("rack misc = %+v, want 500/500", d.RackMisc)
	}
}

func TestTableVIValues(t *testing.T) {
	d := WorkedExample()
	if d.DerateFactor != 0.44 {
		t.Errorf("derate = %v, want 0.44", d.DerateFactor)
	}
	if d.Lifetime != units.Years(6) {
		t.Errorf("lifetime = %v, want 6 years", d.Lifetime)
	}
	if d.DefaultCI != 0.1 {
		t.Errorf("CI = %v, want 0.1", d.DefaultCI)
	}
	if d.RackSpaceU != 32 {
		t.Errorf("rack space = %d U, want 32 (42U - 10U overhead)", d.RackSpaceU)
	}
	if d.RackPowerCap != 15000 {
		t.Errorf("rack power cap = %v, want 15 kW", d.RackPowerCap)
	}
	cpu, _ := d.CPU("Bergamo")
	if cpu.VRLoss != 0.05 {
		t.Errorf("CPU VR loss = %v, want 0.05", cpu.VRLoss)
	}
}

func TestValidateCatchesBadData(t *testing.T) {
	bad := []func(*Dataset){
		func(d *Dataset) { d.Name = "" },
		func(d *Dataset) { d.DerateFactor = 0 },
		func(d *Dataset) { d.DerateFactor = 1.5 },
		func(d *Dataset) { d.Lifetime = 0 },
		func(d *Dataset) { d.DefaultCI = -1 },
		func(d *Dataset) { d.RackSpaceU = 0 },
		func(d *Dataset) { d.PUE = 0.9 },
		func(d *Dataset) { d.DRAMPerGB.TDP = -1 },
		func(d *Dataset) { d.CPUs = map[string]Component{} },
		func(d *Dataset) { d.CPUs = map[string]Component{"X": {TDP: 0}} },
		func(d *Dataset) { d.CPUs = map[string]Component{"X": {TDP: 100, Embodied: -5}} },
	}
	for i, mutate := range bad {
		d := OpenSource()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted corrupted dataset", i)
		}
	}
}

func TestCPUUnknown(t *testing.T) {
	d := WorkedExample()
	if _, err := d.CPU("Pentium"); err == nil {
		t.Fatal("expected error for unknown CPU")
	}
}

func TestRegionCIOrdering(t *testing.T) {
	// Fig. 11: us-south has the lowest CI, europe-north the highest.
	if len(RegionCI) != 3 {
		t.Fatalf("want 3 annotated regions, got %d", len(RegionCI))
	}
	if !(RegionCI[0].CI < RegionCI[1].CI && RegionCI[1].CI < RegionCI[2].CI) {
		t.Error("regions should be ordered by carbon intensity")
	}
	if RegionCI[0].Region != "Azure-us-south" || RegionCI[2].Region != "Azure-europe-north" {
		t.Errorf("unexpected region names: %+v", RegionCI)
	}
}
