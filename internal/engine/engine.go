// Package engine is GSF's shared parallel evaluation engine: a bounded
// worker pool that fans independent (SKU design x trace x carbon
// intensity) jobs across CPUs with deterministic result ordering, plus
// a memoization cache for repeated profiling work.
//
// The engine exists because every heavy path in the repository — the
// 35-trace packing study, the Fig. 11/12 carbon-intensity sweeps, the
// gsfd batch endpoint — is embarrassingly parallel over deterministic
// jobs. Map gives all of them the same guarantees:
//
//   - results are slotted by job index, independent of completion
//     order, so a parallel run is byte-identical to a serial one;
//   - a panicking job becomes that job's error (*PanicError), never a
//     crashed sweep;
//   - context cancellation stops dispatch immediately and marks every
//     unfinished job with the context error.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Result is the outcome of one job: a value or an error, never both.
type Result[T any] struct {
	Value T
	Err   error
}

// PanicError wraps a panic recovered from a job so one bad input
// cannot take down a whole sweep.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: job %d panicked: %v", e.Index, e.Value)
}

// Workers resolves a configured worker count: values <= 0 select
// GOMAXPROCS, the default parallelism of the engine.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Map runs fn(ctx, i) for i in [0, n) across a bounded worker pool and
// returns the results slotted by job index. workers <= 0 uses
// GOMAXPROCS; the pool never exceeds n goroutines. Map always returns
// a full n-length slice: jobs that never ran because ctx was cancelled
// carry the context error in their slot.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) []Result[T] {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	results := make([]Result[T], n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i] = Result[T]{Err: err}
					continue
				}
				results[i] = runJob(ctx, i, fn)
			}
		}()
	}
	wg.Wait()
	return results
}

// Stream runs fn(ctx, i) for i in [0, n) across a bounded worker pool
// and hands each result to emit as soon as the job completes — in
// completion order, not index order. It exists for streaming response
// paths (gsfd's NDJSON/SSE batch) where buffering n results defeats
// the point: memory stays O(workers) regardless of n. emit is called
// exactly n times, serially, from the calling goroutine; the Index
// lets receivers correlate results with jobs. Cancellation and panic
// isolation behave like Map: affected jobs carry the error in their
// Result.
func Stream[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error), emit func(i int, r Result[T])) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	type indexed struct {
		i int
		r Result[T]
	}
	ch := make(chan indexed, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					ch <- indexed{i, Result[T]{Err: err}}
					continue
				}
				ch <- indexed{i, runJob(ctx, i, fn)}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	for out := range ch {
		emit(out.i, out.r)
	}
}

// runJob executes one job with panic isolation.
func runJob[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (res Result[T]) {
	defer func() {
		if r := recover(); r != nil {
			res = Result[T]{Err: &PanicError{Index: i, Value: r, Stack: debug.Stack()}}
		}
	}()
	v, err := fn(ctx, i)
	return Result[T]{Value: v, Err: err}
}

// Collect unwraps a result slice into plain values, failing with the
// lowest-indexed error — the same error a serial loop would have
// stopped on, which keeps parallel and serial error behaviour aligned.
func Collect[T any](results []Result[T]) ([]T, error) {
	out := make([]T, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("engine: job %d: %w", i, r.Err)
		}
		out[i] = r.Value
	}
	return out, nil
}
