package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapDeterministicOrdering(t *testing.T) {
	const n = 100
	results := Map(context.Background(), 8, n, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: unexpected error %v", i, r.Err)
		}
		if r.Value != i*i {
			t.Fatalf("job %d: got %d, want %d (results not slotted by index)", i, r.Value, i*i)
		}
	}
}

func TestMapWorkerBound(t *testing.T) {
	var cur, peak atomic.Int64
	const workers = 3
	Map(context.Background(), workers, 64, func(_ context.Context, i int) (int, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs, want <= %d", p, workers)
	}
}

func TestMapPanicIsolation(t *testing.T) {
	results := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("boom")
		}
		return i, nil
	})
	for i, r := range results {
		if i == 3 {
			var pe *PanicError
			if !errors.As(r.Err, &pe) {
				t.Fatalf("job 3: got %v, want *PanicError", r.Err)
			}
			if pe.Index != 3 || pe.Value != "boom" || len(pe.Stack) == 0 {
				t.Fatalf("PanicError = %+v, want index 3 / boom / non-empty stack", pe)
			}
			continue
		}
		if r.Err != nil || r.Value != i {
			t.Fatalf("job %d: got (%d, %v), want (%d, nil)", i, r.Value, r.Err, i)
		}
	}
}

func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	results := Map(ctx, 2, 50, func(ctx context.Context, i int) (int, error) {
		once.Do(func() { close(started); cancel() })
		<-ctx.Done()
		return 0, ctx.Err()
	})
	<-started
	var cancelled int
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled != 50 {
		t.Fatalf("%d of 50 jobs report context.Canceled, want all", cancelled)
	}
}

func TestMapZeroJobs(t *testing.T) {
	if got := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil }); got != nil {
		t.Fatalf("Map with n=0 = %v, want nil", got)
	}
}

func TestCollect(t *testing.T) {
	vals, err := Collect([]Result[int]{{Value: 1}, {Value: 2}})
	if err != nil || len(vals) != 2 || vals[0] != 1 || vals[1] != 2 {
		t.Fatalf("Collect = (%v, %v)", vals, err)
	}
	sentinel := errors.New("nope")
	_, err = Collect([]Result[int]{{Value: 1}, {Err: errors.New("late")}, {Err: sentinel}})
	if err == nil || !errors.Is(err, errors.Unwrap(err)) {
		t.Fatalf("Collect error = %v", err)
	}
	if want := "engine: job 1: late"; err.Error() != want {
		t.Fatalf("Collect error = %q, want lowest-indexed %q", err, want)
	}
}

func TestCacheSingleflight(t *testing.T) {
	c := NewCache[int](8)
	var calls atomic.Int64
	const goroutines = 16
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			v, err := c.Do("k", func() (int, error) {
				calls.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("Do = (%d, %v), want (42, nil)", v, err)
			}
		}()
	}
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", n)
	}
	hits, misses := c.Stats()
	if misses != 1 || hits != goroutines-1 {
		t.Fatalf("stats = (%d hits, %d misses), want (%d, 1)", hits, misses, goroutines-1)
	}
}

func TestCacheErrorNotRetained(t *testing.T) {
	c := NewCache[int](8)
	var calls atomic.Int64
	fail := errors.New("transient")
	_, err := c.Do("k", func() (int, error) { calls.Add(1); return 0, fail })
	if !errors.Is(err, fail) {
		t.Fatalf("first Do error = %v, want %v", err, fail)
	}
	v, err := c.Do("k", func() (int, error) { calls.Add(1); return 7, nil })
	if v != 7 || err != nil {
		t.Fatalf("retry Do = (%d, %v), want (7, nil)", v, err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("fn ran %d times, want 2 (error must not be cached)", n)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache[int](2)
	var calls atomic.Int64
	get := func(k string) {
		t.Helper()
		if _, err := c.Do(k, func() (int, error) { calls.Add(1); return 0, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a; b is now LRU
	get("c") // evicts b
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	before := calls.Load()
	get("a")
	get("c")
	if calls.Load() != before {
		t.Fatalf("a or c recomputed after eviction round, want both retained")
	}
	get("b")
	if calls.Load() != before+1 {
		t.Fatalf("b not recomputed, want it evicted")
	}
}

func TestCacheZeroCapacity(t *testing.T) {
	c := NewCache[int](0)
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		if v, err := c.Do("k", func() (int, error) { calls.Add(1); return 5, nil }); v != 5 || err != nil {
			t.Fatalf("Do = (%d, %v)", v, err)
		}
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("fn ran %d times with capacity 0, want 3 (nothing retained)", n)
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive values to >= 1")
	}
	if Workers(7) != 7 {
		t.Fatal("Workers must pass through positive values")
	}
}

func ExampleMap() {
	results := Map(context.Background(), 4, 3, func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("job-%d", i), nil
	})
	vals, _ := Collect(results)
	fmt.Println(vals)
	// Output: [job-0 job-1 job-2]
}

func TestStreamDeliversAllInCompletionOrder(t *testing.T) {
	const n = 100
	// Job i sleeps inversely to its index, so completion order is far
	// from index order; Stream must still deliver every result once.
	release := make(chan struct{})
	seen := make(map[int]bool, n)
	calls := 0
	Stream(context.Background(), 8, n,
		func(_ context.Context, i int) (int, error) {
			if i == 0 {
				<-release // job 0 finishes last
			}
			return i * 2, nil
		},
		func(i int, r Result[int]) {
			calls++
			if calls == n-1 {
				close(release)
			}
			if seen[i] {
				t.Fatalf("index %d delivered twice", i)
			}
			seen[i] = true
			if r.Err != nil || r.Value != i*2 {
				t.Fatalf("job %d: (%d, %v)", i, r.Value, r.Err)
			}
		})
	if calls != n {
		t.Fatalf("emit called %d times, want %d", calls, n)
	}
}

func TestStreamEmitsBeforeAllJobsFinish(t *testing.T) {
	// With one slow job holding a worker, the fast jobs' results must
	// reach emit while the slow one is still running — that property is
	// what lets the server flush early results of a long batch.
	blocked := make(chan struct{})
	firstEmit := make(chan struct{}, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Stream(context.Background(), 2, 3,
			func(_ context.Context, i int) (int, error) {
				if i == 0 {
					<-blocked
				}
				return i, nil
			},
			func(i int, r Result[int]) {
				select {
				case firstEmit <- struct{}{}:
				default:
				}
			})
	}()
	select {
	case <-firstEmit:
	case <-time.After(5 * time.Second):
		t.Fatal("no result emitted while one job was still blocked")
	}
	close(blocked)
	<-done
}

func TestStreamPanicIsolation(t *testing.T) {
	var panics, oks int
	Stream(context.Background(), 4, 8,
		func(_ context.Context, i int) (int, error) {
			if i%2 == 0 {
				panic("boom")
			}
			return i, nil
		},
		func(i int, r Result[int]) {
			var pe *PanicError
			if errors.As(r.Err, &pe) {
				panics++
			} else if r.Err == nil {
				oks++
			}
		})
	if panics != 4 || oks != 4 {
		t.Fatalf("panics=%d oks=%d, want 4 and 4", panics, oks)
	}
}

func TestStreamCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	delivered := 0
	Stream(ctx, 2, 10,
		func(ctx context.Context, i int) (int, error) { return i, nil },
		func(i int, r Result[int]) {
			delivered++
			if r.Err == nil {
				t.Errorf("job %d ran after cancellation", i)
			}
		})
	if delivered != 10 {
		t.Fatalf("emit called %d times, want 10 (cancelled jobs still report)", delivered)
	}
}
