package engine

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheStatsConcurrent pins the accounting contract under
// contention: with no failing computations, every Do call is counted
// exactly once — as the leader's miss or a follower's hit — even while
// Stats and Len are read concurrently. Run under -race (CI does), this
// also guards the atomic hit/miss counters against regressing to plain
// fields.
func TestCacheStatsConcurrent(t *testing.T) {
	const (
		goroutines = 16
		iterations = 200
		keys       = 7
	)
	c := NewCache[int](keys)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				key := fmt.Sprintf("k%d", (g+i)%keys)
				v, err := c.Do(key, func() (int, error) { return (g + i) % keys, nil })
				if err != nil {
					t.Errorf("Do(%s): %v", key, err)
				}
				if want := (g + i) % keys; v != want {
					t.Errorf("Do(%s) = %d, want %d", key, v, want)
				}
				// Concurrent readers must be safe against in-flight Do calls.
				c.Stats()
				c.Len()
			}
		}(g)
	}
	wg.Wait()

	hits, misses := c.Stats()
	if total := int64(goroutines * iterations); hits+misses != total {
		t.Errorf("hits (%d) + misses (%d) = %d, want every Do counted once (%d)",
			hits, misses, hits+misses, total)
	}
	if misses < keys {
		t.Errorf("misses = %d, want at least one per key (%d)", misses, keys)
	}
	if c.Len() > keys {
		t.Errorf("Len() = %d exceeds capacity %d", c.Len(), keys)
	}
}
