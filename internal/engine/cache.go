package engine

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Cache is a memoization layer with per-key singleflight: concurrent
// Do calls for the same key compute the value once and share it, and
// completed values are retained under an LRU policy. It exists so a
// sweep that evaluates one SKU against 35 traces profiles the SKU once,
// not 35 times.
//
// Errors are never cached: a failed computation is forgotten so a
// later call can retry. In-flight entries are never evicted.
type Cache[V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry[V]
	order   *list.List // front = most recently used; holds keys of completed entries

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry[V any] struct {
	done chan struct{} // closed when val/err are set
	val  V
	err  error
	elem *list.Element // nil while in flight
}

// NewCache returns a cache holding up to capacity completed values.
// capacity <= 0 disables retention: singleflight still coalesces
// concurrent callers, but nothing is kept once the leader returns.
func NewCache[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		cap:     capacity,
		entries: make(map[string]*cacheEntry[V]),
		order:   list.New(),
	}
}

// Do returns the cached value for key, or computes it with fn. Exactly
// one caller runs fn per key at a time; the rest block until it
// finishes and share the outcome.
func (c *Cache[V]) Do(key string, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.elem != nil {
			c.order.MoveToFront(e.elem)
		}
		c.mu.Unlock()
		<-e.done
		if e.err == nil {
			c.hits.Add(1)
		}
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.val, e.err = fn()
	close(e.done)

	c.mu.Lock()
	if e.err != nil || c.cap <= 0 {
		// Errors and zero-capacity caches are not retained; only remove
		// our own entry (a retry may have replaced it already — it has
		// not: the map still points at e until we delete it here).
		delete(c.entries, key)
	} else {
		e.elem = c.order.PushFront(key)
		for c.order.Len() > c.cap {
			oldest := c.order.Back()
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(string))
		}
	}
	c.mu.Unlock()
	return e.val, e.err
}

// Stats reports cumulative completed-hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Len reports the number of completed values currently retained.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
