package gridci

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/units"
)

func mustValid(t *testing.T, s *Signal) {
	t.Helper()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// sawtooth is an aperiodic two-segment test signal: 0.1 at t=0, 0.3 at
// t=10, 0.1 at t=20; clamped outside.
func sawtooth() *Signal {
	return &Signal{Name: "saw", Samples: []Sample{
		{T: 0, CI: 0.1}, {T: 10, CI: 0.3}, {T: 20, CI: 0.1},
	}}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]*Signal{
		"nil":        nil,
		"empty":      {Name: "e"},
		"nan-ci":     {Samples: []Sample{{T: 0, CI: units.CarbonIntensity(math.NaN())}}},
		"inf-t":      {Samples: []Sample{{T: units.Hours(math.Inf(1)), CI: 0.1}}},
		"negative":   {Samples: []Sample{{T: 0, CI: -0.1}}},
		"unsorted":   {Samples: []Sample{{T: 5, CI: 0.1}, {T: 2, CI: 0.2}}},
		"duplicate":  {Samples: []Sample{{T: 5, CI: 0.1}, {T: 5, CI: 0.2}}},
		"past-per":   {Period: 24, Samples: []Sample{{T: 25, CI: 0.1}}},
		"neg-t-per":  {Period: 24, Samples: []Sample{{T: -1, CI: 0.1}}},
		"nan-period": {Period: units.Hours(math.NaN()), Samples: []Sample{{T: 0, CI: 0.1}}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid signal", name)
		}
	}
}

func TestAtInterpolatesAndClamps(t *testing.T) {
	s := sawtooth()
	mustValid(t, s)
	for _, c := range []struct{ t, want float64 }{
		{-5, 0.1}, {0, 0.1}, {5, 0.2}, {10, 0.3}, {15, 0.2}, {20, 0.1}, {100, 0.1},
	} {
		if got := float64(s.At(units.Hours(c.t))); !audit.Close(got, c.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestAtPeriodicWrapsAcrossSeam(t *testing.T) {
	// Periodic over 24h with samples at 6 and 18: the seam segment
	// interpolates 18h..30h (= 6h next day).
	s := &Signal{Name: "per", Period: 24, Samples: []Sample{
		{T: 6, CI: 0.1}, {T: 18, CI: 0.3},
	}}
	mustValid(t, s)
	for _, c := range []struct{ t, want float64 }{
		{6, 0.1}, {12, 0.2}, {18, 0.3}, {24 + 6, 0.1}, {0, 0.2}, {24, 0.2}, {-6, 0.3},
	} {
		if got := float64(s.At(units.Hours(c.t))); !audit.Close(got, c.want, 1e-12) {
			t.Errorf("At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestIntegralExactOnTrapezoids(t *testing.T) {
	s := sawtooth()
	// Whole span: two trapezoids, 10*(0.1+0.3)/2 each.
	if got := s.Integral(0, 20); !audit.Close(got, 4.0, 1e-12) {
		t.Errorf("Integral(0,20) = %g, want 4", got)
	}
	// Clamped tails are flat.
	if got := s.Integral(-10, 0); !audit.Close(got, 1.0, 1e-12) {
		t.Errorf("Integral(-10,0) = %g, want 1", got)
	}
	// Sub-segment window.
	if got := s.Integral(0, 5); !audit.Close(got, 5*(0.1+0.2)/2, 1e-12) {
		t.Errorf("Integral(0,5) = %g", got)
	}
	if got := s.Integral(5, 5); got != 0 {
		t.Errorf("empty window integral = %g", got)
	}
}

func TestIntegralPeriodicMatchesBruteForce(t *testing.T) {
	s := Diurnal(DiurnalOptions{Name: "d", Mean: 0.1, Swing: 0.6})
	mustValid(t, s)
	// Riemann-sum cross-check over an awkward, multi-period window.
	t0, t1 := 3.7, 3.7+24*7+5.3
	steps := 2_000_000
	dt := (t1 - t0) / float64(steps)
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += float64(s.At(units.Hours(t0+(float64(i)+0.5)*dt))) * dt
	}
	got := s.Integral(units.Hours(t0), units.Hours(t1))
	if !audit.Close(got, sum, 1e-6) {
		t.Errorf("periodic integral %g vs brute force %g", got, sum)
	}
	// Many whole periods must integrate to periods * one-period integral.
	one := s.Integral(0, 24)
	if got := s.Integral(0, 24*365); !audit.Close(got, 365*one, 1e-9) {
		t.Errorf("year integral %g, want %g", got, 365*one)
	}
}

func TestConstantFastPathsAreBitExact(t *testing.T) {
	const ci = units.CarbonIntensity(0.123456789)
	s := Constant("c", ci)
	mustValid(t, s)
	if !s.IsConstant() {
		t.Fatal("Constant signal not IsConstant")
	}
	// Bit-exactness (==, not Close) is the contract the differential
	// suite builds on.
	if got := s.MeanCI(17.3, 9000.1); got != ci {
		t.Errorf("MeanCI = %v, want exactly %v", got, ci)
	}
	if got := s.At(12345.6); got != ci {
		t.Errorf("At = %v, want exactly %v", got, ci)
	}
	if got := s.Integral(0, 10); !audit.Close(got, float64(ci)*10, 1e-15) {
		t.Errorf("Integral = %g", got)
	}
	// Multi-sample constant signals take the same fast path.
	multi := &Signal{Name: "c3", Samples: []Sample{{T: 0, CI: ci}, {T: 5, CI: ci}, {T: 9, CI: ci}}}
	mustValid(t, multi)
	if got := multi.MeanCI(2, 7); got != ci {
		t.Errorf("multi-sample constant MeanCI = %v, want exactly %v", got, ci)
	}
}

func TestStatsAndFracBelow(t *testing.T) {
	s := sawtooth()
	st := s.Stats(0, 20)
	if !audit.Close(float64(st.Peak), 0.3, 1e-12) || !audit.Close(float64(st.Trough), 0.1, 1e-12) {
		t.Errorf("stats = %+v", st)
	}
	if !audit.Close(float64(st.Mean), 0.2, 1e-12) {
		t.Errorf("mean = %v, want 0.2", st.Mean)
	}
	// The sawtooth spends half its time at or below 0.2.
	if got := s.FracBelow(0.2, 0, 20); !audit.Close(got, 0.5, 1e-12) {
		t.Errorf("FracBelow(0.2) = %g, want 0.5", got)
	}
	if got := s.FracBelow(0.05, 0, 20); got != 0 {
		t.Errorf("FracBelow(0.05) = %g, want 0", got)
	}
	if got := s.FracBelow(0.3, 0, 20); !audit.Close(got, 1, 1e-12) {
		t.Errorf("FracBelow(0.3) = %g, want 1", got)
	}
	// Percentile inverts FracBelow.
	if got := float64(s.Percentile(0.5, 0, 20)); !audit.Close(got, 0.2, 1e-6) {
		t.Errorf("Percentile(0.5) = %g, want 0.2", got)
	}
	if got := float64(s.Percentile(0, 0, 20)); !audit.Close(got, 0.1, 1e-9) {
		t.Errorf("Percentile(0) = %g, want trough", got)
	}
	if got := float64(s.Percentile(1, 0, 20)); !audit.Close(got, 0.3, 1e-9) {
		t.Errorf("Percentile(1) = %g, want peak", got)
	}
}

func TestDiurnalMeanAndPeriod(t *testing.T) {
	s := Diurnal(DiurnalOptions{Name: "d", Mean: 0.1, Swing: 0.6})
	mustValid(t, s)
	if s.Period != units.HoursPerDay {
		t.Fatalf("period = %v", s.Period)
	}
	// The sampled sinusoid's time average over one period equals the
	// configured mean (even sample count symmetry).
	if got := float64(s.MeanCI(0, 24)); !audit.Close(got, 0.1, 1e-9) {
		t.Errorf("diurnal mean = %g, want 0.1", got)
	}
	st := s.Stats(0, 24)
	if float64(st.Trough) >= 0.1 || float64(st.Peak) <= 0.1 {
		t.Errorf("diurnal range [%v, %v] does not straddle the mean", st.Trough, st.Peak)
	}
	if float64(st.Trough) < 0 {
		t.Errorf("diurnal trough negative: %v", st.Trough)
	}
}

func TestSeasonalEnvelope(t *testing.T) {
	s := Seasonal(SeasonalOptions{
		Diurnal:       DiurnalOptions{Name: "s", Mean: 0.1, Swing: 0.3},
		SeasonalSwing: 0.4,
	})
	mustValid(t, s)
	if s.Period != units.HoursPerYear {
		t.Fatalf("period = %v", s.Period)
	}
	// Winter (t=0) runs dirtier than summer (t=4380).
	winter := s.MeanCI(0, 24)
	summer := s.MeanCI(4380, 4380+24)
	if winter <= summer {
		t.Errorf("winter mean %v <= summer mean %v", winter, summer)
	}
}

func TestScaleLinearity(t *testing.T) {
	s := Diurnal(DiurnalOptions{Name: "d", Mean: 0.2, Swing: 0.5})
	s2 := s.Scale(3)
	mustValid(t, s2)
	for _, w := range [][2]float64{{0, 24}, {5.5, 100.25}, {-3, 7}} {
		a := s.Integral(units.Hours(w[0]), units.Hours(w[1]))
		b := s2.Integral(units.Hours(w[0]), units.Hours(w[1]))
		if !audit.Close(b, 3*a, 1e-12) {
			t.Errorf("Scale(3) integral over %v: %g, want %g", w, b, 3*a)
		}
	}
}

func TestRegionSignalsMatchAnnotatedMeans(t *testing.T) {
	sigs := RegionSignals()
	if len(sigs) != 3 {
		t.Fatalf("got %d region signals", len(sigs))
	}
	for _, s := range sigs {
		mustValid(t, s)
	}
	if got := float64(sigs[0].MeanCI(0, 24)); !audit.Close(got, 0.035, 1e-9) {
		t.Errorf("us-south mean = %g", got)
	}
	if got := float64(sigs[2].MeanCI(0, 24)); !audit.Close(got, 0.35, 1e-9) {
		t.Errorf("europe-north mean = %g", got)
	}
}
