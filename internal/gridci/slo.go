package gridci

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/greensku/gsf/internal/queueing"
	"github.com/greensku/gsf/internal/trace"
)

// SLOConfig parameterises the temporal-shifting SLO account. Shifting
// deferrable work toward clean windows concentrates demand there; the
// account asks how much of the timeline that concentration pushes the
// cluster past its queueing knee — the load beyond which tail latency
// explodes and the paper's p95 SLO (§IV-B) is lost.
type SLOConfig struct {
	// Service is the representative per-request service distribution
	// for the knee model. Zero value defaults to the latency-critical
	// profile used by the queueing suite (lognormal, 10ms mean,
	// CV 1.2).
	Service queueing.ServiceDist
	// Servers is the queue-model width (default 8, a typical
	// latency-critical VM's core count).
	Servers int
	// Requests per knee evaluation (default 20000, the kernel's own).
	Requests int
	// Seed keeps the knee search deterministic (common random
	// numbers across its evaluations).
	Seed uint64
	// KneeFrac, when positive, skips the search and uses the given
	// stable-load fraction directly — callers sweeping many traces
	// search once and share the result.
	KneeFrac float64
	// Budget is the tolerated fraction of the timeline above the
	// knee. Default 0.05.
	Budget float64
}

// SLOReport is the temporal-shifting SLO account for one trace.
type SLOReport struct {
	// KneeFrac is the stable-load fraction of theoretical capacity
	// beyond which the queue saturates.
	KneeFrac float64
	// CapacityCores is the cluster core capacity the demand was held
	// against.
	CapacityCores int
	// ViolationHours is the time the concurrent core demand exceeded
	// KneeFrac × capacity.
	ViolationHours float64
	// ViolationFrac is ViolationHours over the demand span.
	ViolationFrac float64
	// WithinBudget reports ViolationFrac <= the configured budget.
	WithinBudget bool
	Budget       float64
}

// ResolveKnee runs the queueing kernel's knee search once for the
// configured service model and returns the stable-load fraction.
func ResolveKnee(ctx context.Context, cfg SLOConfig) (float64, error) {
	if cfg.KneeFrac > 0 {
		return cfg.KneeFrac, nil
	}
	service := cfg.Service
	if service == nil {
		service = queueing.LogNormal{MeanSeconds: 0.010, CV: 1.2}
	}
	servers := cfg.Servers
	if servers <= 0 {
		servers = 8
	}
	const loFrac, hiFrac = 0.5, 1.2
	knee, err := queueing.KneeSearch(ctx, queueing.Config{
		Servers:  servers,
		Service:  service,
		Requests: cfg.Requests,
		Seed:     cfg.Seed,
	}, loFrac, hiFrac, 0.02)
	if err != nil {
		return 0, err
	}
	if !knee.Found {
		// Stable through the whole bracket: the knee sits past hiFrac,
		// treat the bracket top as the safe ceiling.
		return hiFrac, nil
	}
	// The last stable point is the usable ceiling; the knee itself
	// already saturates.
	if knee.StableFrac > 0 {
		return knee.StableFrac, nil
	}
	return knee.KneeFrac, nil
}

// AccountSLO sweeps the trace's concurrent core demand and reports how
// long it exceeds the knee-derived safe load on a cluster of
// capacityCores.
func AccountSLO(ctx context.Context, tr trace.Trace, capacityCores int, cfg SLOConfig) (SLOReport, error) {
	if capacityCores <= 0 {
		return SLOReport{}, fmt.Errorf("gridci: SLO account needs positive capacity, got %d", capacityCores)
	}
	kneeFrac, err := ResolveKnee(ctx, cfg)
	if err != nil {
		return SLOReport{}, err
	}
	budget := cfg.Budget
	if budget <= 0 {
		budget = 0.05
	}
	rep := SLOReport{KneeFrac: kneeFrac, CapacityCores: capacityCores, Budget: budget}
	safe := kneeFrac * float64(capacityCores)

	// Sweep the arrival/departure edges of the concurrent-demand
	// profile, accumulating time spent above the safe load.
	type edge struct {
		at    float64
		cores int
	}
	edges := make([]edge, 0, 2*len(tr.VMs))
	span := tr.Horizon
	for _, vm := range tr.VMs {
		edges = append(edges, edge{vm.Arrive, vm.Cores}, edge{vm.Depart, -vm.Cores})
		span = math.Max(span, vm.Depart)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].cores < edges[j].cores // departures first
	})
	demand := 0
	prev := 0.0
	for _, e := range edges {
		if float64(demand) > safe {
			rep.ViolationHours += e.at - prev
		}
		demand += e.cores
		prev = e.at
	}
	if span > 0 {
		rep.ViolationFrac = rep.ViolationHours / span
	}
	rep.WithinBudget = rep.ViolationFrac <= budget
	return rep, nil
}
