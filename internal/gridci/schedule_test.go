package gridci

import (
	"context"
	"math"
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// deferrableTrace generates a production-like trace with a third of
// its VMs delay-tolerant.
func deferrableTrace(t testing.TB, seed uint64) trace.Trace {
	t.Helper()
	p := trace.DefaultParams("sched-test", seed)
	p.HorizonHours = 24 * 7
	p.ArrivalsPerHour = 8
	p.DeferrableFrac = 0.35
	p.MeanSlackHours = 12
	tr, err := trace.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func diurnalTestSignal() *Signal {
	return Diurnal(DiurnalOptions{Name: "sched", Mean: 0.1, Swing: 0.6})
}

func TestScheduleShiftsTowardTrough(t *testing.T) {
	tr := deferrableTrace(t, 11)
	sig := diurnalTestSignal()
	sch, err := Schedule(tr, ScheduleConfig{Signal: sig, Policy: ShiftToTrough})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Report.Deferrable == 0 || sch.Report.Shifted == 0 {
		t.Fatalf("nothing shifted: %+v", sch.Report)
	}
	if sch.Report.MeanCIAfter >= sch.Report.MeanCIBefore {
		t.Errorf("shifting did not lower mean CI: %v -> %v",
			sch.Report.MeanCIBefore, sch.Report.MeanCIAfter)
	}
	// Emissions follow the same direction at any fixed per-core power.
	static, err := Schedule(tr, ScheduleConfig{Signal: sig, Policy: NoShift})
	if err != nil {
		t.Fatal(err)
	}
	const perCore = units.Watts(6)
	if a, b := OperationalEmissions(sch, sig, perCore), OperationalEmissions(static, sig, perCore); a >= b {
		t.Errorf("shifted emissions %v >= static %v", a, b)
	}
}

func TestScheduleRespectsDeadlinesAndConservesWork(t *testing.T) {
	tr := deferrableTrace(t, 12)
	sig := diurnalTestSignal()
	for _, pol := range []Policy{ShiftToTrough, ShiftAndSuspend} {
		rec := audit.NewRecorder()
		sch, err := Schedule(tr, ScheduleConfig{Signal: sig, Policy: pol, Audit: rec})
		if err != nil {
			t.Fatal(err)
		}
		if n := rec.Count(); n != 0 {
			t.Fatalf("%v: %d audit violations: %v", pol, n, rec.Violations())
		}
		// Re-derive the invariants independently of the audit hooks.
		orig := map[int]trace.VM{}
		for _, vm := range tr.VMs {
			orig[vm.ID] = vm
		}
		for i, vm := range sch.Trace.VMs {
			o := orig[vm.ID]
			if vm.Arrive < o.Arrive-1e-9 {
				t.Fatalf("%v: VM %d started early: %g < %g", pol, vm.ID, vm.Arrive, o.Arrive)
			}
			if vm.Depart > o.Depart+o.SlackHours+1e-9 {
				t.Fatalf("%v: VM %d missed its deadline: %g > %g+%g", pol, vm.ID, vm.Depart, o.Depart, o.SlackHours)
			}
			var active float64
			for _, iv := range sch.Active[i] {
				if iv.End <= iv.Start {
					t.Fatalf("%v: VM %d empty active interval %+v", pol, vm.ID, iv)
				}
				active += iv.End - iv.Start
			}
			if math.Abs(active-o.Lifetime()) > 1e-9 {
				t.Fatalf("%v: VM %d active %g != lifetime %g", pol, vm.ID, active, o.Lifetime())
			}
		}
	}
}

func TestScheduleSuspendAvoidsPeaks(t *testing.T) {
	tr := deferrableTrace(t, 13)
	sig := diurnalTestSignal()
	shift, err := Schedule(tr, ScheduleConfig{Signal: sig, Policy: ShiftToTrough})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Schedule(tr, ScheduleConfig{Signal: sig, Policy: ShiftAndSuspend})
	if err != nil {
		t.Fatal(err)
	}
	if both.Report.Suspended == 0 || both.Report.SuspendedHours <= 0 {
		t.Fatalf("suspend policy paused nothing: %+v", both.Report)
	}
	if both.Report.MeanCIAfter > shift.Report.MeanCIAfter+1e-12 {
		t.Errorf("suspend raised mean CI over shift-only: %v > %v",
			both.Report.MeanCIAfter, shift.Report.MeanCIAfter)
	}
}

func TestScheduleNoShiftIsIdentity(t *testing.T) {
	tr := deferrableTrace(t, 14)
	sch, err := Schedule(tr, ScheduleConfig{Signal: diurnalTestSignal(), Policy: NoShift})
	if err != nil {
		t.Fatal(err)
	}
	assertSameTrace(t, tr, sch.Trace)
}

func TestScheduleRejectsInvalidInput(t *testing.T) {
	tr := deferrableTrace(t, 15)
	if _, err := Schedule(tr, ScheduleConfig{Signal: &Signal{}, Policy: ShiftToTrough}); err == nil {
		t.Error("Schedule accepted an invalid signal")
	}
	bad := tr
	bad.VMs = append([]trace.VM(nil), tr.VMs...)
	bad.VMs[0].Depart = bad.VMs[0].Arrive
	if _, err := Schedule(bad, ScheduleConfig{Signal: diurnalTestSignal()}); err == nil {
		t.Error("Schedule accepted an invalid trace")
	}
}

func TestAccountSLO(t *testing.T) {
	tr := deferrableTrace(t, 16)
	st := trace.Summarise(tr)
	ctx := context.Background()

	// A capacity well above peak demand can never violate.
	roomy, err := AccountSLO(ctx, tr, 4*st.PeakCoreDmd, SLOConfig{KneeFrac: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if roomy.ViolationHours != 0 || !roomy.WithinBudget {
		t.Errorf("roomy cluster violated: %+v", roomy)
	}
	// A capacity pinned at half the peak must violate for a while.
	tight, err := AccountSLO(ctx, tr, st.PeakCoreDmd/2, SLOConfig{KneeFrac: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if tight.ViolationHours <= 0 {
		t.Errorf("tight cluster never violated: %+v", tight)
	}
	if tight.ViolationFrac <= roomy.ViolationFrac {
		t.Errorf("violation fraction not monotone in capacity")
	}
	if _, err := AccountSLO(ctx, tr, 0, SLOConfig{KneeFrac: 0.9}); err == nil {
		t.Error("AccountSLO accepted zero capacity")
	}
}

func TestResolveKneeDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("knee search runs the queueing kernel")
	}
	ctx := context.Background()
	cfg := SLOConfig{Requests: 4000, Seed: 42}
	a, err := ResolveKnee(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResolveKnee(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("knee search not deterministic: %v vs %v", a, b)
	}
	if a <= 0.5 || a > 1.2 {
		t.Fatalf("knee fraction %v outside the search bracket", a)
	}
	// Explicit KneeFrac short-circuits the search.
	if got, err := ResolveKnee(ctx, SLOConfig{KneeFrac: 0.87}); err != nil || got != 0.87 {
		t.Fatalf("explicit knee: %v, %v", got, err)
	}
}
