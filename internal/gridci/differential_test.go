package gridci

import (
	"math"
	"reflect"
	"testing"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// Differential suite: under a constant carbon signal, the scheduling
// layer must be invisible. Every policy collapses to the static
// baseline — the scheduled trace is deep-equal to the input, and
// alloc.Simulate Results downstream are bit-identical to running the
// original trace directly. The package TestMain wraps everything in
// audit.SweepMain, so the sweep also proves zero invariant violations
// across the whole 35-trace run.

// deferrableSuite regenerates the production suite's 35 operating
// points with deferrable annotations switched on.
func deferrableSuite(t testing.TB) []trace.Trace {
	t.Helper()
	base, err := trace.ProductionSuite()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]trace.Trace, 0, len(base))
	for i := range base {
		p := trace.DefaultParams(base[i].Name, 1000+uint64(i)*7919)
		p.ArrivalsPerHour = 16 + float64(i%7)*4
		p.MeanLifetimeHours = 20 + float64(i%5)*8
		p.MeanMaxMemFrac = 0.42 + 0.02*float64(i%9)
		p.FullNodeFrac = 0.002 + 0.002*float64(i%3)
		if i%4 == 0 {
			p.CoreWeights = []float64{0.25, 0.28, 0.25, 0.15, 0.07}
		}
		p.DeferrableFrac = 0.35
		p.MeanSlackHours = 12
		tr, err := trace.Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tr)
	}
	return out
}

func assertSameTrace(t *testing.T, want, got trace.Trace) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		if len(want.VMs) == len(got.VMs) {
			for i := range want.VMs {
				if want.VMs[i] != got.VMs[i] {
					t.Fatalf("%s: VM %d changed:\n%+v\n%+v", want.Name, i, want.VMs[i], got.VMs[i])
				}
			}
		}
		t.Fatalf("%s: scheduled trace differs from input", want.Name)
	}
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func sameClassStats(a, b alloc.ClassStats) bool {
	return sameBits(a.CorePacking, b.CorePacking) &&
		sameBits(a.MemPacking, b.MemPacking) &&
		sameBits(a.MaxMemUtil, b.MaxMemUtil) &&
		sameBits(a.CXLServedFrac, b.CXLServedFrac) &&
		sameBits(a.LocalFitsFrac, b.LocalFitsFrac)
}

func sameResult(a, b alloc.Result) bool {
	return a.Placed == b.Placed && a.Rejected == b.Rejected &&
		a.DeferrablePlaced == b.DeferrablePlaced &&
		a.DeferrableRejected == b.DeferrableRejected &&
		a.Snapshots == b.Snapshots &&
		sameClassStats(a.Base, b.Base) && sameClassStats(a.Green, b.Green)
}

func diffCluster() alloc.Config {
	return alloc.Config{
		Base:   alloc.ServerClass{Name: "base", Cores: 80, Memory: 768, LocalMemory: 768},
		NBase:  40,
		Green:  alloc.ServerClass{Name: "green", Cores: 128, Memory: 768, LocalMemory: 512, Green: true},
		NGreen: 40,
		Policy: alloc.BestFit,
	}
}

// TestDifferentialConstantSignal35Traces is the acceptance-criteria
// differential: with a constant CI signal, Schedule under every policy
// returns the input trace unchanged (deep-equal, delays and suspends
// all zero) and the allocation Results computed from its output are
// bit-identical to simulating the original trace directly.
func TestDifferentialConstantSignal35Traces(t *testing.T) {
	if testing.Short() {
		t.Skip("full 35-trace differential sweep")
	}
	traces := deferrableSuite(t)
	if len(traces) != 35 {
		t.Fatalf("suite has %d traces, want 35", len(traces))
	}
	sig := Constant("flat", 0.123)
	cfg := diffCluster()
	decide := func(vm trace.VM) alloc.Decision {
		return alloc.Decision{Adopt: vm.ID%10 < 7, Scale: 1 + 0.1*float64(vm.ID%3)}
	}
	deferrables := 0
	for _, tr := range traces {
		deferrables += trace.Summarise(tr).DeferrableVMs
		want, err := alloc.Simulate(tr, cfg, decide)
		if err != nil {
			t.Fatalf("%s: direct simulate: %v", tr.Name, err)
		}
		for _, pol := range []Policy{NoShift, ShiftToTrough, ShiftAndSuspend} {
			sch, err := Schedule(tr, ScheduleConfig{Signal: sig, Policy: pol})
			if err != nil {
				t.Fatalf("%s/%v: %v", tr.Name, pol, err)
			}
			assertSameTrace(t, tr, sch.Trace)
			if r := sch.Report; r.Shifted != 0 || r.Suspended != 0 || r.DelayHours != 0 || r.SuspendedHours != 0 {
				t.Fatalf("%s/%v: constant signal moved work: %+v", tr.Name, pol, r)
			}
			if sch.Report.MeanCIAfter != sch.Report.MeanCIBefore {
				t.Fatalf("%s/%v: mean CI changed under constant signal", tr.Name, pol)
			}
			got, err := alloc.Simulate(sch.Trace, cfg, decide)
			if err != nil {
				t.Fatalf("%s/%v: scheduled simulate: %v", tr.Name, pol, err)
			}
			if !sameResult(want, got) {
				t.Fatalf("%s/%v: Results diverged:\n%+v\n%+v", tr.Name, pol, want, got)
			}
		}
	}
	if deferrables == 0 {
		t.Fatal("suite carries no deferrable VMs — the differential is vacuous")
	}
}

// TestConstantSignalEmissionsMatchScalar closes the loop on the carbon
// side of the acceptance criteria at the scheduling layer: operational
// emissions integrated through a constant signal equal the scalar
// energy × CI product to full precision.
func TestConstantSignalEmissionsMatchScalar(t *testing.T) {
	tr := deferrableTrace(t, 99)
	const ci = units.CarbonIntensity(0.123)
	sig := Constant("flat", ci)
	sch, err := Schedule(tr, ScheduleConfig{Signal: sig, Policy: ShiftAndSuspend})
	if err != nil {
		t.Fatal(err)
	}
	const perCore = units.Watts(6)
	got := float64(OperationalEmissions(sch, sig, perCore))
	var want float64
	for _, vm := range tr.VMs {
		want += float64(vm.Cores) * perCore.Kilowatts() * vm.Lifetime() * float64(ci)
	}
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("constant-signal emissions %g != scalar product %g", got, want)
	}
}
