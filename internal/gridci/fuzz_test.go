package gridci

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCISeriesCSV feeds arbitrary bytes to ReadCSV and, whenever the
// input parses as a valid signal, demands a bit-exact serialisation
// round trip: the writer formats at full float64 precision, so —
// unlike the trace CSV's fixed-precision columns — there is no
// acceptable drift at all. Rejecting malformed input (non-finite
// values, negative intensities, unsorted or duplicated timestamps,
// empty series, bad period comments) is the contract.
func FuzzCISeriesCSV(f *testing.F) {
	f.Add([]byte("t_h,ci_kg_per_kwh\n"))
	f.Add([]byte("t_h,ci_kg_per_kwh\n0,0.1\n6,0.05\n18,0.22\n"))
	f.Add([]byte("# period_h=24\nt_h,ci_kg_per_kwh\n0,0.08\n13,0.04\n"))
	f.Add([]byte("# period_h=8760\nt_h,ci_kg_per_kwh\n0,0.14\n4380,0.06\n"))
	f.Add([]byte("t_h,ci_kg_per_kwh\n0,NaN\n"))
	f.Add([]byte("t_h,ci_kg_per_kwh\n5,0.1\n2,0.2\n"))
	f.Add([]byte("not a csv at all \x00\xff"))
	f.Add([]byte("# period_h=24\nt_h,ci_kg_per_kwh\n25,0.1\n"))

	// Seed with the generators' own output so the fuzzer starts from
	// realistic diurnal and seasonal series.
	for _, s := range []*Signal{
		Diurnal(DiurnalOptions{Name: "seed-diurnal", Mean: 0.1, Swing: 0.6}),
		Seasonal(SeasonalOptions{Diurnal: DiurnalOptions{Name: "seed-seasonal", Mean: 0.095, Swing: 0.3}, SeasonalSwing: 0.4, DaysPerSample: 91}),
	} {
		var b bytes.Buffer
		if err := WriteCSV(&b, s); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return // rejecting malformed input is the contract
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("ReadCSV returned an invalid signal: %v", err)
		}
		var w bytes.Buffer
		if err := WriteCSV(&w, s); err != nil {
			t.Fatalf("WriteCSV failed on a valid signal: %v", err)
		}
		s2, err := ReadCSV(bytes.NewReader(w.Bytes()), "fuzz")
		if err != nil {
			t.Fatalf("re-read of own output failed: %v\n%s", err, w.Bytes())
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip changed the signal:\n%+v\n%+v", s, s2)
		}
		// Sanity: the parsed signal's statistics machinery must not
		// panic or produce non-finite nonsense on any accepted input.
		span := s.Period
		if span <= 0 {
			span = s.Samples[len(s.Samples)-1].T + 1
		}
		st := s.Stats(0, span)
		if !(st.Trough <= st.Mean && st.Mean <= st.Peak) {
			t.Fatalf("window stats disordered: %+v", st)
		}
	})
}
