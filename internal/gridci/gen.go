package gridci

import (
	"math"

	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/units"
)

// DiurnalOptions shapes a synthetic 24h carbon-intensity cycle.
type DiurnalOptions struct {
	Name string
	// Mean is the cycle's time-averaged intensity (matches the scalar
	// CI the signal replaces, so dynamic and static runs are
	// comparable at equal average grid mix).
	Mean units.CarbonIntensity
	// Swing is the peak-to-mean amplitude as a fraction of Mean
	// (0.6 means the peak sits 60% above the mean). Clamped to keep
	// the trough non-negative.
	Swing float64
	// TroughHour is the hour of day with the cleanest grid (solar
	// noon-ish, default 13h); the peak sits 12h opposite.
	TroughHour float64
	// SamplesPerDay is the sampling resolution (default 24).
	SamplesPerDay int
}

// Diurnal builds a periodic 24h signal: a sinusoid around Mean dipping
// at TroughHour, sampled piecewise-linearly. The sampled mean is exact
// by symmetry for even SamplesPerDay.
func Diurnal(opt DiurnalOptions) *Signal {
	if opt.SamplesPerDay <= 1 {
		opt.SamplesPerDay = 24
	}
	if opt.TroughHour == 0 {
		opt.TroughHour = 13
	}
	swing := math.Min(math.Max(opt.Swing, 0), 1)
	period := float64(units.HoursPerDay)
	s := &Signal{Name: opt.Name, Period: units.HoursPerDay}
	for i := 0; i < opt.SamplesPerDay; i++ {
		t := period * float64(i) / float64(opt.SamplesPerDay)
		phase := 2 * math.Pi * (t - opt.TroughHour) / period
		ci := float64(opt.Mean) * (1 - swing*math.Cos(phase))
		s.Samples = append(s.Samples, Sample{T: units.Hours(t), CI: units.CarbonIntensity(ci)})
	}
	return s
}

// SeasonalOptions shapes a yearly cycle layered over a diurnal one.
type SeasonalOptions struct {
	Diurnal DiurnalOptions
	// SeasonalSwing scales the diurnal profile over the year: winter
	// months run dirtier, summer cleaner (fraction of Mean, like
	// Swing). Zero yields a plain diurnal signal.
	SeasonalSwing float64
	// DaysPerSample is the seasonal envelope resolution (default 7,
	// i.e. weekly samples across the 8760h year).
	DaysPerSample int
}

// Seasonal builds a periodic 8760h signal: the diurnal cycle modulated
// by a yearly sinusoid peaking mid-winter (t=0 is January 1st).
func Seasonal(opt SeasonalOptions) *Signal {
	if opt.DaysPerSample <= 0 {
		opt.DaysPerSample = 7
	}
	day := Diurnal(opt.Diurnal)
	year := float64(units.HoursPerYear)
	seasonal := math.Min(math.Max(opt.SeasonalSwing, 0), 1)
	s := &Signal{Name: opt.Diurnal.Name, Period: units.HoursPerYear}
	stepDays := opt.DaysPerSample
	for d := 0; d*24 < int(year); d += stepDays {
		envelope := 1 + seasonal*math.Cos(2*math.Pi*float64(d*24)/year)
		for _, smp := range day.Samples {
			t := float64(d*24) + float64(smp.T)
			if t >= year {
				break
			}
			s.Samples = append(s.Samples, Sample{
				T:  units.Hours(t),
				CI: units.CarbonIntensity(float64(smp.CI) * envelope),
			})
		}
	}
	return s
}

// RegionSignals builds one diurnal signal per paper-annotated Azure
// region (Fig. 11/12), each averaging the region's scalar intensity.
// Cleaner grids swing harder: low average intensity usually means a
// large renewable share, whose availability is what moves intraday.
func RegionSignals() []*Signal {
	out := make([]*Signal, 0, len(carbondata.RegionCI))
	for _, rc := range carbondata.RegionCI {
		swing := 0.6
		if rc.CI >= 0.2 {
			swing = 0.25 // fossil-heavy grids barely move intraday
		}
		out = append(out, Diurnal(DiurnalOptions{
			Name:  rc.Region,
			Mean:  rc.CI,
			Swing: swing,
		}))
	}
	return out
}
