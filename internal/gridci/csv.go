package gridci

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/greensku/gsf/internal/units"
)

// CSVHeader is the timeseries column layout: one sample per row.
// Timestamps and intensities round-trip at full float64 precision.
var CSVHeader = []string{"t_h", "ci_kg_per_kwh"}

// periodComment is the optional first line carrying a periodic
// signal's period, e.g. "# period_h=24".
const periodComment = "# period_h="

// WriteCSV serialises the signal: an optional period comment line,
// the header, then one row per sample at full precision (the read side
// reproduces the signal bit-for-bit).
func WriteCSV(w io.Writer, s *Signal) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Period > 0 {
		if _, err := fmt.Fprintf(w, "%s%s\n", periodComment,
			strconv.FormatFloat(float64(s.Period), 'g', -1, 64)); err != nil {
			return err
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	for _, smp := range s.Samples {
		rec := []string{
			strconv.FormatFloat(float64(smp.T), 'g', -1, 64),
			strconv.FormatFloat(float64(smp.CI), 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a carbon-intensity timeseries in the WriteCSV layout
// and validates it, so providers can feed measured grid data (e.g.
// WattTime/electricityMaps exports reshaped to two columns) instead of
// the synthetic generators.
func ReadCSV(r io.Reader, name string) (*Signal, error) {
	br := bufio.NewReader(r)
	s := &Signal{Name: name}
	// An optional leading comment line carries the period.
	if peek, err := br.Peek(1); err == nil && peek[0] == '#' {
		line, err := br.ReadString('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("gridci: reading CSV comment: %w", err)
		}
		line = strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")
		raw, ok := strings.CutPrefix(line, periodComment)
		if !ok {
			return nil, fmt.Errorf("gridci: unrecognised CSV comment %q", line)
		}
		p, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, fmt.Errorf("gridci: CSV period: %w", err)
		}
		s.Period = units.Hours(p)
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = len(CSVHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("gridci: reading CSV header: %w", err)
	}
	for i, want := range CSVHeader {
		if header[i] != want {
			return nil, fmt.Errorf("gridci: CSV column %d is %q, want %q", i, header[i], want)
		}
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("gridci: CSV line %d: %w", line, err)
		}
		line++
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("gridci: CSV line %d: t_h: %w", line, err)
		}
		ci, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("gridci: CSV line %d: ci_kg_per_kwh: %w", line, err)
		}
		s.Samples = append(s.Samples, Sample{T: units.Hours(t), CI: units.CarbonIntensity(ci)})
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
