package gridci

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/units"
)

func TestCSVRoundTripBitExact(t *testing.T) {
	for _, s := range []*Signal{
		Constant("flat", 0.1),
		sawtooth(),
		Diurnal(DiurnalOptions{Name: "diurnal", Mean: 0.1, Swing: 0.6}),
		Seasonal(SeasonalOptions{Diurnal: DiurnalOptions{Name: "seasonal", Mean: 0.095, Swing: 0.3}, SeasonalSwing: 0.4}),
	} {
		var b bytes.Buffer
		if err := WriteCSV(&b, s); err != nil {
			t.Fatalf("%s: WriteCSV: %v", s.Name, err)
		}
		got, err := ReadCSV(bytes.NewReader(b.Bytes()), s.Name)
		if err != nil {
			t.Fatalf("%s: ReadCSV: %v", s.Name, err)
		}
		// Full-precision formatting makes the round trip exact, name
		// included (passed through ReadCSV's argument).
		if !reflect.DeepEqual(s, got) {
			t.Errorf("%s: round trip changed the signal:\n%+v\n%+v", s.Name, s, got)
		}
	}
}

func TestReadCSVRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"bad-header":       "time,ci\n0,0.1\n",
		"wrong-cols":       "t_h,ci_kg_per_kwh,extra\n0,0.1,x\n",
		"non-numeric":      "t_h,ci_kg_per_kwh\nzero,0.1\n",
		"nan":              "t_h,ci_kg_per_kwh\n0,NaN\n",
		"inf":              "t_h,ci_kg_per_kwh\nInf,0.1\n",
		"negative-ci":      "t_h,ci_kg_per_kwh\n0,-0.1\n",
		"unsorted":         "t_h,ci_kg_per_kwh\n5,0.1\n2,0.2\n",
		"duplicate-t":      "t_h,ci_kg_per_kwh\n5,0.1\n5,0.2\n",
		"no-samples":       "t_h,ci_kg_per_kwh\n",
		"bad-comment":      "# frequency=9\nt_h,ci_kg_per_kwh\n0,0.1\n",
		"bad-period":       "# period_h=abc\nt_h,ci_kg_per_kwh\n0,0.1\n",
		"negative-period":  "# period_h=-24\nt_h,ci_kg_per_kwh\n0,0.1\n",
		"sample-past-per":  "# period_h=24\nt_h,ci_kg_per_kwh\n30,0.1\n",
		"sample-at-period": "# period_h=24\nt_h,ci_kg_per_kwh\n24,0.1\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: ReadCSV accepted malformed input", name)
		}
	}
}

func TestReadCSVPeriodComment(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("# period_h=24\nt_h,ci_kg_per_kwh\n6,0.05\n18,0.2\n"), "p")
	if err != nil {
		t.Fatal(err)
	}
	if s.Period != units.HoursPerDay {
		t.Fatalf("period = %v, want 24", s.Period)
	}
	if got := float64(s.At(30)); got != 0.05 {
		t.Errorf("wrapped At(30) = %g, want 0.05", got)
	}
}
