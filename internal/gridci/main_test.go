package gridci

import (
	"os"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// TestMain runs the package under a process-default audit.Recorder, so
// every schedule any test computes doubles as an invariant sweep
// (deadline-respected, work-conservation, ci-non-increasing).
func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }
