package gridci

import (
	"fmt"
	"math"
	"sort"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// Policy selects the temporal-scheduling behaviour for deferrable VMs.
type Policy int

const (
	// NoShift runs the trace as recorded — the static baseline.
	NoShift Policy = iota
	// ShiftToTrough delays each deferrable VM's start, within its
	// slack, to the candidate window with the lowest mean carbon
	// intensity (ties resolve to the smallest delay, so a constant
	// signal shifts nothing).
	ShiftToTrough
	// ShiftAndSuspend additionally pauses a shifted VM during carbon
	// peaks above the suspend threshold, resuming when the grid
	// cleans up; paused time extends completion but never past the
	// slack deadline.
	ShiftAndSuspend
)

func (p Policy) String() string {
	switch p {
	case NoShift:
		return "static"
	case ShiftToTrough:
		return "shift"
	case ShiftAndSuspend:
		return "shift+suspend"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ScheduleConfig parameterises the carbon-aware scheduler.
type ScheduleConfig struct {
	Signal *Signal
	Policy Policy
	// StepHours is the granularity of the delay search and of
	// suspend/resume decisions. Zero defaults to 1h.
	StepHours float64
	// SuspendThreshold is the intensity above which ShiftAndSuspend
	// pauses deferrable work (strictly above, so a constant signal
	// never suspends). Zero derives the threshold as the signal's 80th
	// time-percentile over one period.
	SuspendThreshold units.CarbonIntensity
	// Audit receives invariant violations (deadline-respected,
	// work-conservation, ci-non-increasing). Nil falls back to the
	// process default; if that is also nil, checking is disabled.
	Audit audit.Checker
}

// Interval is a half-open span of trace time during which a VM
// actively runs (and draws power).
type Interval struct {
	Start, End float64
}

// Scheduled is the scheduler's output: the re-timed trace (occupancy
// intervals, ready for alloc.Simulate) plus the per-VM active
// intervals that carry power. A suspended VM keeps occupying its
// server — memory stays resident — but draws no compute power, so
// Active is what emissions integrate over.
type Scheduled struct {
	Trace  trace.Trace
	Active [][]Interval // parallel to Trace.VMs
	Report Report
}

// Report aggregates what the scheduler did.
type Report struct {
	Deferrable     int // deferrable VMs seen
	Shifted        int // VMs whose start moved
	Suspended      int // VMs paused at least once
	DelayHours     float64
	SuspendedHours float64
	// MeanCIBefore/After are core-hour-weighted mean intensities over
	// the active intervals, before and after scheduling — the
	// signal-level view of what the re-timing bought.
	MeanCIBefore, MeanCIAfter units.CarbonIntensity
}

// Schedule re-times a trace's deferrable VMs against the carbon
// signal. Non-deferrable VMs, and every VM under NoShift, pass through
// untouched. The output trace keeps the input's horizon: departures
// past the horizon are already normal in this codebase, and preserving
// it keeps the snapshot clock — and therefore alloc Results — exactly
// comparable between policies.
//
// With a constant signal the delay search ties at every candidate and
// resolves to zero delay, the suspend threshold (a percentile of a
// constant) is never strictly exceeded, and the returned trace is
// deep-equal to the input — the differential suite holds Schedule to
// that bit-for-bit.
func Schedule(tr trace.Trace, cfg ScheduleConfig) (Scheduled, error) {
	if err := tr.Validate(); err != nil {
		return Scheduled{}, err
	}
	if err := cfg.Signal.Validate(); err != nil {
		return Scheduled{}, err
	}
	step := cfg.StepHours
	if step <= 0 {
		step = 1
	}
	chk := audit.Resolve(cfg.Audit)
	sig := cfg.Signal

	threshold := cfg.SuspendThreshold
	if cfg.Policy == ShiftAndSuspend && threshold == 0 {
		span := sig.Period
		if span <= 0 {
			if n := len(sig.Samples); n > 0 {
				span = sig.Samples[n-1].T
			}
		}
		threshold = sig.Percentile(0.8, 0, span)
	}

	out := Scheduled{
		Trace: trace.Trace{
			Name:    tr.Name,
			VMs:     append([]trace.VM(nil), tr.VMs...),
			Horizon: tr.Horizon,
		},
		Active: make([][]Interval, len(tr.VMs)),
	}
	var wBefore, wAfter float64 // core-hour-weighted ∫CI over active time
	var coreHours float64
	for i := range out.Trace.VMs {
		vm := &out.Trace.VMs[i]
		cores := float64(vm.Cores)
		wBefore += cores * sig.Integral(units.Hours(vm.Arrive), units.Hours(vm.Depart))
		coreHours += cores * vm.Lifetime()

		if !vm.Deferrable || cfg.Policy == NoShift || vm.SlackHours <= 0 {
			out.Active[i] = []Interval{{vm.Arrive, vm.Depart}}
			wAfter += cores * sig.Integral(units.Hours(vm.Arrive), units.Hours(vm.Depart))
			if vm.Deferrable {
				out.Report.Deferrable++
			}
			continue
		}
		out.Report.Deferrable++

		delay := bestDelay(sig, vm.Arrive, vm.Depart, vm.SlackHours, step)
		active := []Interval{{vm.Arrive + delay, vm.Depart + delay}}
		suspended := 0.0
		if cfg.Policy == ShiftAndSuspend {
			// Whatever slack the shift left bounds how far suspension
			// may push completion, keeping the deadline intact.
			active, suspended = suspendAcrossPeaks(sig, vm.Arrive+delay, vm.Lifetime(),
				vm.SlackHours-delay, step, threshold)
		}

		if delay > 0 {
			out.Report.Shifted++
			out.Report.DelayHours += delay
		}
		if suspended > 0 {
			out.Report.Suspended++
			out.Report.SuspendedHours += suspended
		}
		start := active[0].Start
		end := active[len(active)-1].End
		vm.Arrive = start
		vm.Depart = end
		out.Active[i] = active
		var w, runtime float64
		for _, iv := range active {
			w += cores * sig.Integral(units.Hours(iv.Start), units.Hours(iv.End))
			runtime += iv.End - iv.Start
		}
		wAfter += w

		if chk != nil {
			orig := tr.VMs[i]
			// Deadline-respected: start and completion slip by at most
			// the slack, and never run backwards.
			if start < orig.Arrive-audit.SimTol || start > orig.Arrive+orig.SlackHours+audit.SimTol ||
				end > orig.Depart+orig.SlackHours+audit.SimTol {
				audit.Failf(chk, "gridci", "deadline-respected",
					"VM %d moved to [%g,%g] outside [%g,%g]+slack %g",
					orig.ID, start, end, orig.Arrive, orig.Depart, orig.SlackHours)
			}
			// Work-conservation: active runtime equals the traced
			// lifetime; suspension defers work, it must not destroy it.
			if !audit.Close(runtime, orig.Lifetime(), audit.SimTol) {
				audit.Failf(chk, "gridci", "work-conservation",
					"VM %d active runtime %g != lifetime %g", orig.ID, runtime, orig.Lifetime())
			}
		}
	}
	// Shifts reorder arrivals; a stable sort of the index permutation
	// is the identity on an untouched trace and keeps the active
	// intervals aligned with their VMs.
	idx := make([]int, len(out.Trace.VMs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return out.Trace.VMs[idx[a]].Arrive < out.Trace.VMs[idx[b]].Arrive
	})
	vms := make([]trace.VM, len(idx))
	act := make([][]Interval, len(idx))
	for i, j := range idx {
		vms[i] = out.Trace.VMs[j]
		act[i] = out.Active[j]
	}
	out.Trace.VMs, out.Active = vms, act

	if coreHours > 0 {
		out.Report.MeanCIBefore = units.CarbonIntensity(wBefore / coreHours)
		out.Report.MeanCIAfter = units.CarbonIntensity(wAfter / coreHours)
		if chk != nil && float64(out.Report.MeanCIAfter) > float64(out.Report.MeanCIBefore)+audit.SimTol {
			// CI-integration: every per-VM move minimises its own mean
			// intensity, so the demand-weighted aggregate cannot rise.
			audit.Failf(chk, "gridci", "ci-non-increasing",
				"scheduling raised mean CI %g -> %g",
				float64(out.Report.MeanCIBefore), float64(out.Report.MeanCIAfter))
		}
	}
	if err := out.Trace.Validate(); err != nil {
		return Scheduled{}, fmt.Errorf("gridci: scheduled trace invalid: %w", err)
	}
	return out, nil
}

// bestDelay grid-searches delays in [0, slack] at step granularity
// (slack itself included) for the lowest mean intensity over the run
// window. Strictly-better comparison keeps ties on the earliest
// candidate, so a flat signal yields zero delay.
func bestDelay(sig *Signal, arrive, depart, slack, step float64) float64 {
	best, bestMean := 0.0, math.Inf(1)
	for d := 0.0; ; d += step {
		if d > slack {
			d = slack
		}
		m := float64(sig.MeanCI(units.Hours(arrive+d), units.Hours(depart+d)))
		if m < bestMean {
			best, bestMean = d, m
		}
		if d >= slack {
			break
		}
	}
	return best
}

// suspendAcrossPeaks walks the run from start in step-sized slices,
// pausing whenever the signal sits strictly above the threshold and
// pause budget remains. It returns the active intervals (total length
// exactly runtime) and the paused hours.
func suspendAcrossPeaks(sig *Signal, start, runtime, budget, step float64, threshold units.CarbonIntensity) ([]Interval, float64) {
	if budget <= 0 {
		return []Interval{{start, start + runtime}}, 0
	}
	var ivs []Interval
	t := start
	remaining := runtime
	paused := 0.0
	for remaining > 0 {
		dt := math.Min(step, remaining)
		if budget > 0 && sig.At(units.Hours(t+dt/2)) > threshold {
			pause := math.Min(step, budget)
			t += pause
			budget -= pause
			paused += pause
			continue
		}
		if n := len(ivs); n > 0 && ivs[n-1].End == t {
			ivs[n-1].End = t + dt
		} else {
			ivs = append(ivs, Interval{t, t + dt})
		}
		t += dt
		remaining -= dt
	}
	if paused == 0 {
		// Nothing paused: return the exact contiguous span rather than
		// the step-accumulated one, so the no-op case (and with it the
		// constant-signal differential) is bit-identical to the input.
		return []Interval{{start, start + runtime}}, 0
	}
	return ivs, paused
}

// OperationalEmissions integrates cores × power × CI over every active
// interval: the workload-attributed operational emissions under the
// signal, in kgCO2e. perCore is the average compute power one core
// draws (derated server power over cores).
func OperationalEmissions(sch Scheduled, sig *Signal, perCore units.Watts) units.KgCO2e {
	var kg float64
	for i, vm := range sch.Trace.VMs {
		kw := float64(vm.Cores) * perCore.Kilowatts()
		for _, iv := range sch.Active[i] {
			kg += kw * sig.Integral(units.Hours(iv.Start), units.Hours(iv.End))
		}
	}
	return units.KgCO2e(kg)
}
