// Package gridci models time-varying grid carbon intensity and
// carbon-aware temporal scheduling on top of it.
//
// The paper evaluates GreenSKU designs at fixed carbon-intensity
// points; real grids swing diurnally (solar ramps) and seasonally
// (heating/hydro). This package supplies the missing axis:
//
//   - Signal: a piecewise-linear carbon-intensity timeseries with
//     interpolation, optional periodicity (24h diurnal, 8760h
//     seasonal), exact trapezoidal integration, and time-windowed
//     statistics (mean, peak, trough, fraction-below, percentiles).
//   - Synthetic diurnal/seasonal generators anchored to the paper's
//     per-region annotations (carbondata.RegionCI).
//   - A carbon-aware scheduler over trace/alloc: delay-tolerant VMs
//     shift their start inside a slack deadline toward low-CI windows,
//     and may suspend under CI peaks; SLO pressure from the re-timed
//     demand is accounted through the queueing kernel's knee.
//
// Everything here is deterministic, and every transformation collapses
// exactly to the scalar-CI world when the signal is constant: MeanCI of
// a constant signal returns the constant bit-for-bit, and the scheduler
// leaves a trace untouched (proven by the differential suite).
package gridci

import (
	"fmt"
	"math"
	"sort"

	"github.com/greensku/gsf/internal/units"
)

// Sample is one carbon-intensity observation at a point in time.
type Sample struct {
	T  units.Hours           // hours since the signal's epoch
	CI units.CarbonIntensity // kgCO2e/kWh at T
}

// Signal is a piecewise-linear carbon-intensity timeseries.
//
// A zero Period makes the signal aperiodic: it clamps to the first and
// last sample values outside the sampled range. A positive Period wraps
// it: samples must lie in [0, Period), and the last segment
// interpolates across the seam back to the first sample.
type Signal struct {
	Name    string
	Samples []Sample
	Period  units.Hours
}

// Validate checks signal invariants: at least one sample, finite
// non-negative intensities, strictly increasing timestamps, and — for
// periodic signals — all samples inside [0, Period).
func (s *Signal) Validate() error {
	if s == nil || len(s.Samples) == 0 {
		return fmt.Errorf("gridci: signal %q has no samples", s.name())
	}
	if math.IsNaN(float64(s.Period)) || math.IsInf(float64(s.Period), 0) || s.Period < 0 {
		return fmt.Errorf("gridci: signal %q has invalid period %v", s.Name, float64(s.Period))
	}
	prev := math.Inf(-1)
	for i, smp := range s.Samples {
		t, ci := float64(smp.T), float64(smp.CI)
		if math.IsNaN(t) || math.IsInf(t, 0) || math.IsNaN(ci) || math.IsInf(ci, 0) {
			return fmt.Errorf("gridci: signal %q sample %d is non-finite", s.Name, i)
		}
		if ci < 0 {
			return fmt.Errorf("gridci: signal %q sample %d has negative intensity %v", s.Name, i, ci)
		}
		if t <= prev {
			return fmt.Errorf("gridci: signal %q timestamps not strictly increasing at sample %d", s.Name, i)
		}
		if s.Period > 0 && (t < 0 || t >= float64(s.Period)) {
			return fmt.Errorf("gridci: signal %q sample %d at t=%v outside period [0,%v)",
				s.Name, i, t, float64(s.Period))
		}
		prev = t
	}
	return nil
}

func (s *Signal) name() string {
	if s == nil {
		return "<nil>"
	}
	return s.Name
}

// IsConstant reports whether every sample carries the same intensity.
// Constant signals take exact fast paths through MeanCI and Integral,
// which is what makes the constant-signal differential bit-identical.
func (s *Signal) IsConstant() bool {
	for _, smp := range s.Samples[1:] {
		if smp.CI != s.Samples[0].CI {
			return false
		}
	}
	return true
}

// At returns the interpolated carbon intensity at time t.
func (s *Signal) At(t units.Hours) units.CarbonIntensity {
	n := len(s.Samples)
	if n == 1 || s.IsConstant() {
		return s.Samples[0].CI
	}
	x := float64(t)
	if s.Period > 0 {
		p := float64(s.Period)
		x = math.Mod(x, p)
		if x < 0 {
			x += p
		}
		first, last := s.Samples[0], s.Samples[n-1]
		if x < float64(first.T) {
			// Seam segment approached from the left of the first sample.
			return lerp(x, float64(last.T)-p, float64(last.CI), float64(first.T), float64(first.CI))
		}
		if x >= float64(last.T) {
			return lerp(x, float64(last.T), float64(last.CI), float64(first.T)+p, float64(first.CI))
		}
	} else {
		if x <= float64(s.Samples[0].T) {
			return s.Samples[0].CI
		}
		if x >= float64(s.Samples[n-1].T) {
			return s.Samples[n-1].CI
		}
	}
	// Invariant here: Samples[i].T <= x < Samples[i+1].T for some i.
	i := sort.Search(n, func(i int) bool { return float64(s.Samples[i].T) > x }) - 1
	a, b := s.Samples[i], s.Samples[i+1]
	return lerp(x, float64(a.T), float64(a.CI), float64(b.T), float64(b.CI))
}

func lerp(x, x0, y0, x1, y1 float64) units.CarbonIntensity {
	if x1 == x0 {
		return units.CarbonIntensity(y0)
	}
	return units.CarbonIntensity(y0 + (y1-y0)*(x-x0)/(x1-x0))
}

// knots returns the ordered breakpoint times of the signal inside
// (t0, t1), endpoints excluded: the points where the piecewise-linear
// interpolant changes slope. The window must satisfy t0 <= t1; periodic
// callers bound it to at most one period plus slack before calling.
func (s *Signal) knots(t0, t1 float64) []float64 {
	var ks []float64
	if s.Period > 0 {
		p := float64(s.Period)
		// Sample i repeats at T[i] + k*P; collect repeats inside the window.
		for _, smp := range s.Samples {
			base := float64(smp.T)
			k := math.Floor((t0 - base) / p)
			for t := base + k*p; t < t1; t += p {
				if t > t0 {
					ks = append(ks, t)
				}
			}
		}
	} else {
		for _, smp := range s.Samples {
			if t := float64(smp.T); t > t0 && t < t1 {
				ks = append(ks, t)
			}
		}
	}
	sort.Float64s(ks)
	return ks
}

// eachSegment invokes fn for every linear piece of the signal covering
// [t0, t1], in order, with the piece's duration and endpoint
// intensities. The interpolant is exactly linear inside each piece, so
// trapezoid sums over the pieces are exact.
func (s *Signal) eachSegment(t0, t1 float64, fn func(dt, c0, c1 float64)) {
	if t1 <= t0 {
		return
	}
	prevT := t0
	prevC := float64(s.At(units.Hours(t0)))
	for _, t := range s.knots(t0, t1) {
		c := float64(s.At(units.Hours(t)))
		fn(t-prevT, prevC, c)
		prevT, prevC = t, c
	}
	fn(t1-prevT, prevC, float64(s.At(units.Hours(t1))))
}

// periodSpans splits a window into whole signal periods plus a
// remainder, so O(window/period) statistics reduce to O(1) periods.
// For aperiodic signals it returns zero whole periods.
func (s *Signal) periodSpans(t0, t1 float64) (whole float64, remT0, remT1 float64) {
	if s.Period <= 0 {
		return 0, t0, t1
	}
	p := float64(s.Period)
	if t1-t0 < p {
		return 0, t0, t1
	}
	whole = math.Floor((t1 - t0) / p)
	return whole, t0, t1 - whole*p
}

// Integral returns the exact time integral of carbon intensity over
// [t0, t1], in (kgCO2e/kWh)·h: multiply by a constant power draw in kW
// to get emitted kgCO2e. Constant signals use the closed form, so a
// constant c integrates to exactly c*(t1-t0).
func (s *Signal) Integral(t0, t1 units.Hours) float64 {
	a, b := float64(t0), float64(t1)
	if b <= a {
		return 0
	}
	if s.IsConstant() {
		return float64(s.Samples[0].CI) * (b - a)
	}
	whole, ra, rb := s.periodSpans(a, b)
	sum := 0.0
	if whole > 0 {
		perPeriod := 0.0
		s.eachSegment(0, float64(s.Period), func(dt, c0, c1 float64) {
			perPeriod += dt * (c0 + c1) / 2
		})
		sum += whole * perPeriod
	}
	s.eachSegment(ra, rb, func(dt, c0, c1 float64) {
		sum += dt * (c0 + c1) / 2
	})
	return sum
}

// MeanCI returns the time-averaged carbon intensity over [t0, t1]. A
// constant signal returns its constant bit-for-bit — the property the
// constant-signal differential suite relies on. An empty window returns
// the instantaneous value at t0.
func (s *Signal) MeanCI(t0, t1 units.Hours) units.CarbonIntensity {
	if s.IsConstant() {
		return s.Samples[0].CI
	}
	if t1 <= t0 {
		return s.At(t0)
	}
	return units.CarbonIntensity(s.Integral(t0, t1) / float64(t1-t0))
}

// WindowStats are time-windowed signal statistics.
type WindowStats struct {
	Mean   units.CarbonIntensity
	Peak   units.CarbonIntensity
	Trough units.CarbonIntensity
}

// Stats computes mean, peak, and trough intensity over [t0, t1]. The
// interpolant is linear between knots, so extremes occur at segment
// endpoints.
func (s *Signal) Stats(t0, t1 units.Hours) WindowStats {
	ws := WindowStats{Mean: s.MeanCI(t0, t1)}
	a, b := float64(t0), float64(t1)
	if b <= a {
		ci := s.At(t0)
		return WindowStats{Mean: ci, Peak: ci, Trough: ci}
	}
	// A window covering a whole period sees the full range; cap the
	// scan at one period.
	if s.Period > 0 && b-a > float64(s.Period) {
		b = a + float64(s.Period)
	}
	ws.Peak = units.CarbonIntensity(math.Inf(-1))
	ws.Trough = units.CarbonIntensity(math.Inf(1))
	s.eachSegment(a, b, func(_, c0, c1 float64) {
		ws.Peak = units.CarbonIntensity(math.Max(float64(ws.Peak), math.Max(c0, c1)))
		ws.Trough = units.CarbonIntensity(math.Min(float64(ws.Trough), math.Min(c0, c1)))
	})
	return ws
}

// FracBelow returns the fraction of the window [t0, t1] whose carbon
// intensity is at or below x — the "percentile-below" statistic. The
// crossing points inside each linear segment are solved exactly.
func (s *Signal) FracBelow(x units.CarbonIntensity, t0, t1 units.Hours) float64 {
	a, b := float64(t0), float64(t1)
	if b <= a {
		if s.At(t0) <= x {
			return 1
		}
		return 0
	}
	below := func(wa, wb float64) float64 {
		t := 0.0
		s.eachSegment(wa, wb, func(dt, c0, c1 float64) {
			t += timeBelow(float64(x), dt, c0, c1)
		})
		return t
	}
	whole, ra, rb := s.periodSpans(a, b)
	total := below(ra, rb)
	if whole > 0 {
		total += whole * below(0, float64(s.Period))
	}
	return total / (b - a)
}

// timeBelow returns how long a linear segment of duration dt running
// from c0 to c1 spends at or below x.
func timeBelow(x, dt, c0, c1 float64) float64 {
	if c0 <= x && c1 <= x {
		return dt
	}
	if c0 > x && c1 > x {
		return 0
	}
	// Exactly one endpoint is below: the segment crosses x once.
	cross := dt * (x - c0) / (c1 - c0)
	if c0 <= x {
		return cross
	}
	return dt - cross
}

// Percentile inverts FracBelow: it returns the intensity x such that
// the window spends fraction p of its time at or below x. p is clamped
// to [0, 1]; the answer is bracketed by the window's trough and peak
// and located by bisection to ~1e-12 of the range.
func (s *Signal) Percentile(p float64, t0, t1 units.Hours) units.CarbonIntensity {
	st := s.Stats(t0, t1)
	lo, hi := float64(st.Trough), float64(st.Peak)
	if p <= 0 || lo == hi {
		return st.Trough
	}
	if p >= 1 {
		return st.Peak
	}
	for i := 0; i < 60 && hi-lo > 1e-12*(1+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if s.FracBelow(units.CarbonIntensity(mid), t0, t1) >= p {
			hi = mid
		} else {
			lo = mid
		}
	}
	return units.CarbonIntensity(hi)
}

// Scale returns a copy of the signal with every intensity multiplied by
// alpha (alpha >= 0). Integration is linear in this scaling — the
// metamorphic property the carbon suite checks.
func (s *Signal) Scale(alpha float64) *Signal {
	out := &Signal{Name: s.Name, Period: s.Period, Samples: make([]Sample, len(s.Samples))}
	for i, smp := range s.Samples {
		out.Samples[i] = Sample{T: smp.T, CI: units.CarbonIntensity(float64(smp.CI) * alpha)}
	}
	return out
}

// Constant returns a single-sample signal pinned at ci, the bridge
// between the scalar-CI world and this package.
func Constant(name string, ci units.CarbonIntensity) *Signal {
	return &Signal{Name: name, Samples: []Sample{{T: 0, CI: ci}}}
}
