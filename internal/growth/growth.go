// Package growth simulates VM demand growth to validate the growth
// buffer GSF's buffer component sizes (§IV-D): a cloud keeps spare
// capacity to absorb demand spikes during the weeks it takes to procure
// and deploy additional servers. The paper's workaround keeps the
// buffer on baseline SKUs — whose demand history exists — while VMs run
// on GreenSKUs fungibly whenever GreenSKU capacity is available.
//
// The simulator models demand as drifting growth plus lognormal spikes,
// procurement as a lead-time delay on capacity orders, and reports how
// often demand outruns capacity (a "stockout") for a given buffer
// fraction.
package growth

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/stats"
)

// Params configures the demand simulation.
type Params struct {
	// InitialDemand is the starting demand in baseline-server
	// equivalents.
	InitialDemand float64
	// WeeklyGrowth is the mean multiplicative demand growth per week.
	WeeklyGrowth float64
	// SpikeStdDev is the per-week lognormal deviation around the
	// growth trend.
	SpikeStdDev float64
	// LeadTimeWeeks is how long a capacity order takes to land.
	LeadTimeWeeks int
	// Weeks is the simulation horizon.
	Weeks int
	Seed  uint64
}

// DefaultParams models a steadily growing region: ~1.5% weekly growth
// (about 2x demand per year), 6-week procurement, one simulated year.
func DefaultParams() Params {
	return Params{
		InitialDemand: 100,
		WeeklyGrowth:  1.015,
		SpikeStdDev:   0.02,
		LeadTimeWeeks: 6,
		Weeks:         52,
		Seed:          20240404,
	}
}

// Result summarises one buffer policy's performance.
type Result struct {
	BufferFraction float64
	// StockoutWeeks is the number of weeks demand exceeded deployed
	// capacity.
	StockoutWeeks int
	// StockoutProb is StockoutWeeks over the horizon.
	StockoutProb float64
	// MeanIdleFraction is the average unused share of deployed
	// capacity — the carbon cost of the buffer.
	MeanIdleFraction float64
	// PeakShortfall is the worst relative capacity deficit observed.
	PeakShortfall float64
}

// Simulate runs the capacity-management loop: each week the operator
// orders enough capacity to cover forecast demand plus the buffer;
// orders arrive after the lead time; demand follows trend plus spikes.
func Simulate(p Params, bufferFraction float64) (Result, error) {
	if p.InitialDemand <= 0 || p.Weeks <= 0 || p.LeadTimeWeeks < 0 {
		return Result{}, fmt.Errorf("growth: invalid parameters")
	}
	if p.WeeklyGrowth <= 0 || bufferFraction < 0 {
		return Result{}, fmt.Errorf("growth: growth and buffer must be non-negative")
	}
	r := stats.NewRNG(p.Seed)
	demand := p.InitialDemand
	capacity := p.InitialDemand * (1 + bufferFraction)
	// Orders in flight, indexed by arrival week.
	arrivals := make([]float64, p.Weeks+p.LeadTimeWeeks+1)

	res := Result{BufferFraction: bufferFraction}
	var idleSum float64
	for week := 0; week < p.Weeks; week++ {
		capacity += arrivals[week]
		// Demand evolves: trend plus spike.
		demand *= p.WeeklyGrowth * math.Exp(r.Normal(0, p.SpikeStdDev))

		if demand > capacity {
			res.StockoutWeeks++
			shortfall := (demand - capacity) / demand
			if shortfall > res.PeakShortfall {
				res.PeakShortfall = shortfall
			}
		} else {
			idleSum += (capacity - demand) / capacity
		}

		// Order up to forecast demand at arrival time plus buffer,
		// accounting for capacity already deployed or in flight.
		forecast := demand * math.Pow(p.WeeklyGrowth, float64(p.LeadTimeWeeks))
		target := forecast * (1 + bufferFraction)
		inFlight := 0.0
		for w := week + 1; w <= week+p.LeadTimeWeeks && w < len(arrivals); w++ {
			inFlight += arrivals[w]
		}
		order := target - capacity - inFlight
		if order > 0 && week+p.LeadTimeWeeks < len(arrivals) {
			arrivals[week+p.LeadTimeWeeks] += order
		}
	}
	res.StockoutProb = float64(res.StockoutWeeks) / float64(p.Weeks)
	nonStockout := p.Weeks - res.StockoutWeeks
	if nonStockout > 0 {
		res.MeanIdleFraction = idleSum / float64(nonStockout)
	}
	return res, nil
}

// SweepBuffers evaluates several buffer fractions under the same demand
// realisation (same seed), the comparison behind choosing ~15%.
func SweepBuffers(p Params, fractions []float64) ([]Result, error) {
	out := make([]Result, 0, len(fractions))
	for _, f := range fractions {
		res, err := Simulate(p, f)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// MinimalBuffer returns the smallest buffer fraction from the
// candidates that keeps the stockout probability at or below target.
func MinimalBuffer(p Params, candidates []float64, target float64) (float64, error) {
	results, err := SweepBuffers(p, candidates)
	if err != nil {
		return 0, err
	}
	for _, res := range results {
		if res.StockoutProb <= target {
			return res.BufferFraction, nil
		}
	}
	return 0, fmt.Errorf("growth: no candidate buffer meets stockout target %v", target)
}
