package growth

import (
	"testing"
)

func TestNoBufferStocksOut(t *testing.T) {
	res, err := Simulate(DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.StockoutWeeks == 0 {
		t.Fatal("zero buffer should stock out under spiky growth")
	}
}

func TestDefaultBufferAbsorbsSpikes(t *testing.T) {
	res, err := Simulate(DefaultParams(), 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if res.StockoutProb > 0.02 {
		t.Fatalf("15%% buffer stockout probability = %v, want ~0", res.StockoutProb)
	}
}

func TestStockoutMonotoneInBuffer(t *testing.T) {
	fractions := []float64{0, 0.05, 0.10, 0.15, 0.25}
	results, err := SweepBuffers(DefaultParams(), fractions)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].StockoutProb > results[i-1].StockoutProb {
			t.Fatalf("stockouts should not increase with buffer: %+v", results)
		}
	}
	// And the buffer's cost: idle capacity grows with the fraction.
	if results[4].MeanIdleFraction <= results[1].MeanIdleFraction {
		t.Fatalf("idle fraction should grow with buffer: %+v", results)
	}
}

func TestMinimalBuffer(t *testing.T) {
	f, err := MinimalBuffer(DefaultParams(), []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// The component's 15% default should be in the right
	// neighbourhood for the default demand model.
	if f < 0.05 || f > 0.20 {
		t.Fatalf("minimal buffer = %v, want within [0.05, 0.20]", f)
	}
}

func TestMinimalBufferUnreachable(t *testing.T) {
	p := DefaultParams()
	p.SpikeStdDev = 0.5 // absurdly spiky
	if _, err := MinimalBuffer(p, []float64{0, 0.01}, 0.0); err == nil {
		t.Fatal("accepted an unreachable stockout target")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Simulate(DefaultParams(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(DefaultParams(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed diverged")
	}
}

func TestValidation(t *testing.T) {
	p := DefaultParams()
	p.InitialDemand = 0
	if _, err := Simulate(p, 0.1); err == nil {
		t.Error("accepted zero demand")
	}
	if _, err := Simulate(DefaultParams(), -0.1); err == nil {
		t.Error("accepted negative buffer")
	}
	p = DefaultParams()
	p.WeeklyGrowth = 0
	if _, err := Simulate(p, 0.1); err == nil {
		t.Error("accepted zero growth factor")
	}
}

func TestLongerLeadTimeNeedsMoreBuffer(t *testing.T) {
	short := DefaultParams()
	short.LeadTimeWeeks = 2
	long := DefaultParams()
	long.LeadTimeWeeks = 12
	sRes, err := Simulate(short, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lRes, err := Simulate(long, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lRes.StockoutWeeks < sRes.StockoutWeeks {
		t.Fatalf("longer lead time should not reduce stockouts: %d vs %d",
			lRes.StockoutWeeks, sRes.StockoutWeeks)
	}
}
