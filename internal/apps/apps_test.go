package apps

import (
	"math"
	"testing"
)

func TestTwentyApplications(t *testing.T) {
	// §V: "we benchmark 20 open-source and closed-source applications"
	// — the 19 rows of Table III plus WebF-Mix.
	all := All()
	if len(all) != 20 {
		t.Fatalf("catalog has %d apps, want 20", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if seen[a.Name] {
			t.Errorf("duplicate app %s", a.Name)
		}
		seen[a.Name] = true
		if a.BaseServiceMS <= 0 || a.CV < 0 {
			t.Errorf("%s: invalid service time parameters", a.Name)
		}
		if a.FreqSens < 0 || a.LLCSens < 0 || a.BWDemandGBs < 0 || a.MemLatSens < 0 {
			t.Errorf("%s: negative sensitivity", a.Name)
		}
	}
}

func TestClassSizes(t *testing.T) {
	byClass := ByClass()
	want := map[Class]int{
		BigData:     4, // Redis, Masstree, Silo, Shore
		WebApp:      5, // Xapian + WebF-Dynamic/Hot/Cold/Mix
		RTC:         2, // Moses, Sphinx
		MLInference: 1, // Img-DNN
		WebProxy:    5, // Nginx, Caddy, Envoy, HAProxy, Traefik
		DevOps:      3, // Build-Python, Build-Wasm, Build-PHP
	}
	for class, n := range want {
		if got := len(byClass[class]); got != n {
			t.Errorf("%s has %d apps, want %d", class, got, n)
		}
	}
}

func TestClassShares(t *testing.T) {
	// Table III core-hour shares.
	want := map[Class]float64{BigData: 32, WebApp: 27, RTC: 24, MLInference: 11, WebProxy: 4, DevOps: 1}
	var sum float64
	for class, share := range want {
		if ClassShares[class] != share {
			t.Errorf("%s share = %v, want %v", class, ClassShares[class], share)
		}
		sum += ClassShares[class]
	}
	if sum != 99 {
		t.Errorf("shares sum to %v, want 99 (as printed in Table III)", sum)
	}
}

func TestCXLFriendlyShare(t *testing.T) {
	// §VI: "20.2% of our applications, weighted by proportion of fleet
	// core-hours, do not face significant performance penalties when
	// running on GreenSKU-CXL".
	got := CXLFriendlyShare() * 100
	if math.Abs(got-20.2) > 1.5 {
		t.Fatalf("CXL-friendly share = %.1f%%, want ~20.2%%", got)
	}
}

func TestCXLFriendlyApps(t *testing.T) {
	// Img-DNN and Shore (plus the DevOps builds) are the CXL-friendly
	// set; Moses is the paper's canonical CXL-hostile app.
	friendly := map[string]bool{}
	for _, a := range All() {
		friendly[a.Name] = a.CXLFriendly()
	}
	for _, name := range []string{"Img-DNN", "Shore", "Build-Python", "Build-Wasm", "Build-PHP"} {
		if !friendly[name] {
			t.Errorf("%s should be CXL-friendly", name)
		}
	}
	for _, name := range []string{"Moses", "Masstree", "Redis"} {
		if friendly[name] {
			t.Errorf("%s should not be CXL-friendly", name)
		}
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("Moses")
	if err != nil {
		t.Fatal(err)
	}
	if a.Class != RTC || !a.LatencyCritical {
		t.Errorf("Moses = %+v, want latency-critical RTC", a)
	}
	if _, err := ByName("memcached"); err == nil {
		t.Error("ByName accepted an unknown app")
	}
}

func TestProductionFlags(t *testing.T) {
	// §V: four Microsoft production services, the WebF set.
	n := 0
	for _, a := range All() {
		if a.Production {
			n++
			if a.Class != WebApp {
				t.Errorf("%s: production apps are the WebF web services", a.Name)
			}
		}
	}
	if n != 4 {
		t.Errorf("%d production apps, want 4 (the WebF services)", n)
	}
}

func TestDevOpsNotLatencyCritical(t *testing.T) {
	for _, a := range ByClass()[DevOps] {
		if a.LatencyCritical {
			t.Errorf("%s: DevOps apps report throughput only (Table II)", a.Name)
		}
	}
}

func TestCoreHourWeights(t *testing.T) {
	var sum float64
	for _, a := range All() {
		w := CoreHourWeight(a)
		if w <= 0 {
			t.Errorf("%s: non-positive weight", a.Name)
		}
		sum += w
	}
	if math.Abs(sum-99) > 1e-9 {
		t.Errorf("weights sum to %v, want 99", sum)
	}
}

func TestRepresentativesSpanClasses(t *testing.T) {
	reps := Representatives()
	if len(reps) != 5 {
		t.Fatalf("got %d representatives, want 5", len(reps))
	}
	classes := map[Class]bool{}
	for _, a := range reps {
		if classes[a.Class] {
			t.Errorf("duplicate class %s among representatives", a.Class)
		}
		classes[a.Class] = true
		if !a.LatencyCritical {
			t.Errorf("%s: Fig 7 representatives are latency-critical", a.Name)
		}
	}
}

func TestClassString(t *testing.T) {
	if BigData.String() != "big-data" || DevOps.String() != "devops" {
		t.Error("unexpected class names")
	}
	if Class(99).String() != "class(99)" {
		t.Error("out-of-range class should render numerically")
	}
}
