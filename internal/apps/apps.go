// Package apps defines the 20 benchmark applications of the paper's
// performance study (§V, Table III): four big-data stores, five web
// applications, two real-time-communication services, one ML inference
// service, five web proxies, and three DevOps build workloads.
//
// Each application carries a sensitivity vector describing how its
// service time responds to the hardware characteristics that differ
// between the baseline SKUs and the GreenSKUs: per-core CPU speed,
// last-level cache per core, memory bandwidth per core, and memory
// latency (the CXL penalty). The vectors are fitted (marked "fitted:")
// so that the derived scaling factors reproduce Table III and the
// derived slowdowns reproduce Table II; they are not microarchitectural
// measurements.
package apps

import "fmt"

// Class is one of the six application classes that cover the majority
// of Azure VMs (§V, citing the workload characterisation of [95]).
type Class int

const (
	BigData Class = iota
	WebApp
	RTC
	MLInference
	WebProxy
	DevOps
)

var classNames = [...]string{"big-data", "web-app", "rtc", "ml-inference", "web-proxy", "devops"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// ClassShares maps each class to its share of fleet core-hours
// (Table III's "% of Fleet Core Hours" column).
var ClassShares = map[Class]float64{
	BigData:     32,
	WebApp:      27,
	RTC:         24,
	MLInference: 11,
	WebProxy:    4,
	DevOps:      1,
}

// App is one benchmark application.
type App struct {
	Name  string
	Class Class
	// Production marks Microsoft-internal services (the "*" rows of
	// Table III), which we model from their reported scaling factors.
	Production bool
	// LatencyCritical applications are evaluated on p95-vs-QPS SLOs;
	// the rest (DevOps builds) report throughput only (Table II).
	LatencyCritical bool

	// BaseServiceMS is the mean per-request service time on one Gen3
	// core, in milliseconds. For DevOps apps it is the per-work-unit
	// compile time.
	BaseServiceMS float64
	// CV is the coefficient of variation of service time.
	CV float64

	// FreqSens is the exponent on per-core CPU speed: service time
	// scales as (1/cpuScore)^FreqSens.
	FreqSens float64
	// LLCSens is the exponent on last-level cache per core: service
	// time scales as (refLLC/llc)^LLCSens.
	LLCSens float64
	// BWDemandGBs is the memory bandwidth the application wants per
	// core at full load; below that, service time inflates
	// proportionally to the shortfall.
	BWDemandGBs float64
	// MemLatSens scales the service-time penalty of added memory
	// latency: multiplier 1 + MemLatSens*(lat/140ns - 1). Apps with
	// MemLatSens <= CXLFriendlyThreshold can run entirely from
	// CXL-backed memory without a meaningful slowdown.
	MemLatSens float64
}

// CXLFriendlyThreshold is the memory-latency sensitivity at or below
// which an application runs from CXL-backed memory without a
// perceptible slowdown.
const CXLFriendlyThreshold = 0.05

// CXLFriendly reports whether the app can run entirely on CXL-backed
// memory without facing a slowdown (§III's hardware-counter screen).
func (a App) CXLFriendly() bool { return a.MemLatSens <= CXLFriendlyThreshold }

// All returns the 20 applications in Table III's row order.
//
// fitted: every sensitivity vector below was solved so the scaling
// factors computed by internal/perf reproduce Table III and the DevOps
// slowdowns reproduce Table II. BaseServiceMS/CV set plausible absolute
// latency scales for Figs. 7-8.
func All() []App {
	return []App{
		{Name: "Redis", Class: BigData, LatencyCritical: true,
			BaseServiceMS: 0.3, CV: 1.2, FreqSens: 0.10, LLCSens: 0, BWDemandGBs: 2.0, MemLatSens: 0.20},
		{Name: "Masstree", Class: BigData, LatencyCritical: true,
			BaseServiceMS: 0.5, CV: 1.0, FreqSens: 0.20, LLCSens: 0, BWDemandGBs: 5.8, MemLatSens: 0.50},
		{Name: "Silo", Class: BigData, LatencyCritical: true,
			BaseServiceMS: 1.0, CV: 1.0, FreqSens: 0.20, LLCSens: 0.70, BWDemandGBs: 2.0, MemLatSens: 0.30},
		{Name: "Shore", Class: BigData, LatencyCritical: true,
			BaseServiceMS: 2.0, CV: 1.0, FreqSens: 0.10, LLCSens: 0.02, BWDemandGBs: 2.5, MemLatSens: 0.04},
		{Name: "Xapian", Class: WebApp, LatencyCritical: true,
			BaseServiceMS: 4.0, CV: 1.0, FreqSens: 0.30, LLCSens: 0, BWDemandGBs: 5.0, MemLatSens: 0.25},
		{Name: "WebF-Dynamic", Class: WebApp, Production: true, LatencyCritical: true,
			BaseServiceMS: 6.0, CV: 0.9, FreqSens: 1.00, LLCSens: 0, BWDemandGBs: 2.0, MemLatSens: 0.15},
		{Name: "WebF-Hot", Class: WebApp, Production: true, LatencyCritical: true,
			BaseServiceMS: 5.0, CV: 0.9, FreqSens: 0.60, LLCSens: 0.20, BWDemandGBs: 4.0, MemLatSens: 0.20},
		{Name: "WebF-Cold", Class: WebApp, Production: true, LatencyCritical: true,
			BaseServiceMS: 20.0, CV: 1.5, FreqSens: 0.05, LLCSens: 0, BWDemandGBs: 1.5, MemLatSens: 0.10},
		// WebF-Mix is the 20th benchmarked application (§V); Table III
		// omits its row, so its vector is a blend of the other WebF
		// services rather than a fitted reproduction target.
		{Name: "WebF-Mix", Class: WebApp, Production: true, LatencyCritical: true,
			BaseServiceMS: 8.0, CV: 1.1, FreqSens: 0.55, LLCSens: 0.07, BWDemandGBs: 2.5, MemLatSens: 0.15},
		{Name: "Moses", Class: RTC, LatencyCritical: true,
			BaseServiceMS: 5.0, CV: 0.8, FreqSens: 0.75, LLCSens: 0, BWDemandGBs: 3.0, MemLatSens: 0.50},
		{Name: "Sphinx", Class: RTC, LatencyCritical: true,
			BaseServiceMS: 30.0, CV: 0.7, FreqSens: 0.90, LLCSens: 0, BWDemandGBs: 2.5, MemLatSens: 0.30},
		{Name: "Img-DNN", Class: MLInference, LatencyCritical: true,
			BaseServiceMS: 10.0, CV: 0.6, FreqSens: 0.10, LLCSens: 0, BWDemandGBs: 3.3, MemLatSens: 0.03},
		{Name: "Nginx", Class: WebProxy, LatencyCritical: true,
			BaseServiceMS: 0.4, CV: 1.0, FreqSens: 0.55, LLCSens: 0, BWDemandGBs: 2.0, MemLatSens: 0.15},
		{Name: "Caddy", Class: WebProxy, LatencyCritical: true,
			BaseServiceMS: 0.5, CV: 1.0, FreqSens: 0.30, LLCSens: 0, BWDemandGBs: 2.0, MemLatSens: 0.15},
		{Name: "Envoy", Class: WebProxy, LatencyCritical: true,
			BaseServiceMS: 0.4, CV: 1.0, FreqSens: 0.25, LLCSens: 0, BWDemandGBs: 2.2, MemLatSens: 0.12},
		{Name: "HAProxy", Class: WebProxy, LatencyCritical: true,
			BaseServiceMS: 0.3, CV: 1.0, FreqSens: 0.55, LLCSens: 0, BWDemandGBs: 2.0, MemLatSens: 0.12},
		{Name: "Traefik", Class: WebProxy, LatencyCritical: true,
			BaseServiceMS: 0.6, CV: 1.0, FreqSens: 0.60, LLCSens: 0, BWDemandGBs: 2.0, MemLatSens: 0.18},
		{Name: "Build-Python", Class: DevOps,
			BaseServiceMS: 60000, CV: 0.3, FreqSens: 0.62, LLCSens: 0.08, BWDemandGBs: 3.4, MemLatSens: 0.03},
		{Name: "Build-Wasm", Class: DevOps,
			BaseServiceMS: 90000, CV: 0.3, FreqSens: 0.62, LLCSens: 0.08, BWDemandGBs: 3.55, MemLatSens: 0.04},
		{Name: "Build-PHP", Class: DevOps,
			BaseServiceMS: 45000, CV: 0.3, FreqSens: 0.70, LLCSens: 0.09, BWDemandGBs: 3.4, MemLatSens: 0.05},
	}
}

// ByName returns the named application.
func ByName(name string) (App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("apps: unknown application %q", name)
}

// ByClass groups applications by class.
func ByClass() map[Class][]App {
	out := map[Class][]App{}
	for _, a := range All() {
		out[a.Class] = append(out[a.Class], a)
	}
	return out
}

// CoreHourWeight returns the app's share of fleet core-hours, assuming
// core-hours within a class split evenly across the class's apps
// (the sampling model of §V's VM allocation implementation).
func CoreHourWeight(a App) float64 {
	n := len(ByClass()[a.Class])
	if n == 0 {
		return 0
	}
	return ClassShares[a.Class] / float64(n)
}

// CXLFriendlyShare returns the fraction of fleet core-hours in
// applications that run on CXL memory without penalty. The paper
// reports 20.2% (§VI).
func CXLFriendlyShare() float64 {
	var friendly, total float64
	for _, a := range All() {
		w := CoreHourWeight(a)
		total += w
		if a.CXLFriendly() {
			friendly += w
		}
	}
	return friendly / total
}

// Representatives returns one representative latency-critical app per
// class, the set plotted in Fig. 7 (five of the six classes; DevOps
// reports throughput separately).
func Representatives() []App {
	names := []string{"Masstree", "Xapian", "Moses", "Img-DNN", "Nginx"}
	out := make([]App, 0, len(names))
	for _, n := range names {
		a, err := ByName(n)
		if err != nil {
			panic(err)
		}
		out = append(out, a)
	}
	return out
}
