package stats

import (
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. It returns NaN for an
// empty input. The input is copied and sorted per call; callers reading
// several percentiles from one buffer should sort once and use
// SortedPercentile (or Summarize).
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return SortedPercentile(s, p)
}

// SortedPercentile returns the p-th percentile of an already-sorted
// slice, with the same closest-rank interpolation as Percentile. It
// returns NaN for an empty input.
func SortedPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds the order statistics the queueing simulator reports,
// all derived from a single sort of the sample buffer.
type Summary struct {
	P50  float64
	P95  float64
	P99  float64
	Mean float64
}

// Summarize computes a Summary from one sort of values, in place: the
// mean is accumulated in the buffer's original order first (so it is
// bit-identical to a pre-sort Mean call), then values is sorted and the
// percentiles are read from the one sorted buffer. The zero-copy,
// single-sort contract is what lets the simulator pool its latency
// buffer across runs. Callers that need the original order must read it
// before calling. Empty input yields all-NaN.
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		n := math.NaN()
		return Summary{P50: n, P95: n, P99: n, Mean: n}
	}
	m := Mean(values)
	sort.Float64s(values)
	return Summary{
		P50:  SortedPercentile(values, 50),
		P95:  SortedPercentile(values, 95),
		P99:  SortedPercentile(values, 99),
		Mean: m,
	}
}

// Mean returns the arithmetic mean, or NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Median returns the 50th percentile.
func Median(values []float64) float64 { return Percentile(values, 50) }

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two values.
func StdDev(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	var ss float64
	for _, v := range values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(values)-1))
}

// ConfidenceInterval99 returns the half-width of a 99% confidence
// interval on the mean, using the normal approximation (z = 2.576),
// matching the paper's "three trials, 99% confidence intervals" report.
func ConfidenceInterval99(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	return 2.576 * StdDev(values) / math.Sqrt(float64(len(values)))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64 // fraction of samples <= Value, in (0, 1]
}

// CDF returns the empirical CDF of values, sorted ascending.
func CDF(values []float64) []CDFPoint {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	pts := make([]CDFPoint, len(s))
	for i, v := range s {
		pts[i] = CDFPoint{Value: v, Fraction: float64(i+1) / float64(len(s))}
	}
	return pts
}

// CDFAt evaluates an empirical CDF at x: the fraction of samples <= x.
func CDFAt(values []float64, x float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	n := 0
	for _, v := range values {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// MovingAverage returns the centred moving average of values with the
// given window size; edges use the available partial window. This is the
// smoothing used for the Fig. 2 failure-rate curve.
func MovingAverage(values []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(values))
	half := window / 2
	for i := range values {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(values) {
			hi = len(values) - 1
		}
		out[i] = Mean(values[lo : hi+1])
	}
	return out
}
