package stats

import (
	"math"
	"testing"
)

// TestSummarizeSelectMatchesSummarize is the load-bearing proof for the
// batched queueing kernel: quickselect-derived percentiles must equal
// the sort-derived ones bit for bit, across sizes that exercise every
// interpolation branch (exact ranks, fractional ranks, duplicates).
func TestSummarizeSelectMatchesSummarize(t *testing.T) {
	sizes := []int{1, 2, 3, 7, 19, 20, 21, 99, 100, 101, 1000, 30000}
	for seed := uint64(1); seed <= 35; seed++ {
		r := NewRNG(seed)
		for _, n := range sizes {
			a := make([]float64, n)
			for i := range a {
				a[i] = r.FastLogNormal(-5, 1.5)
			}
			// Duplicates stress the three-way partition.
			if n >= 10 {
				for i := 0; i < n/4; i++ {
					a[i*3%n] = a[0]
				}
			}
			b := append([]float64(nil), a...)
			want := Summarize(a)
			got := SummarizeSelect(b)
			if got != want {
				t.Fatalf("seed %d n %d: SummarizeSelect = %+v, Summarize = %+v", seed, n, got, want)
			}
		}
	}
}

func TestSummarizeSelectAllEqual(t *testing.T) {
	a := []float64{3.5, 3.5, 3.5, 3.5, 3.5}
	b := append([]float64(nil), a...)
	if got, want := SummarizeSelect(a), Summarize(b); got != want {
		t.Fatalf("all-equal: SummarizeSelect = %+v, Summarize = %+v", got, want)
	}
}

func TestSummarizeSelectNaNFallsBackToSummarize(t *testing.T) {
	a := []float64{1, math.NaN(), 3}
	got := SummarizeSelect(a)
	if !math.IsNaN(got.Mean) {
		t.Fatalf("NaN input: mean = %v, want NaN", got.Mean)
	}
}

func TestSelectRankIsOrderStatistic(t *testing.T) {
	r := NewRNG(7)
	const n = 257
	for trial := 0; trial < 20; trial++ {
		a := make([]float64, n)
		for i := range a {
			a[i] = r.Float64()
		}
		k := int(r.Uint64() % n)
		v := selectRank(a, k)
		if a[k] != v {
			t.Fatalf("selectRank left a[%d] = %v, returned %v", k, a[k], v)
		}
		for i := 0; i < k; i++ {
			if a[i] > v {
				t.Fatalf("a[%d] = %v > a[%d] = %v after selectRank", i, a[i], k, v)
			}
		}
		for i := k + 1; i < n; i++ {
			if a[i] < v {
				t.Fatalf("a[%d] = %v < a[%d] = %v after selectRank", i, a[i], k, v)
			}
		}
	}
}

// Satellite coverage: Summary/SortedPercentile edge cases pinned before
// the batched loop reuses them on whole vectors.

func TestSummarizeEmpty(t *testing.T) {
	for _, got := range []Summary{Summarize(nil), SummarizeSelect(nil)} {
		if !math.IsNaN(got.P50) || !math.IsNaN(got.P95) || !math.IsNaN(got.P99) || !math.IsNaN(got.Mean) {
			t.Fatalf("empty input: got %+v, want all NaN", got)
		}
	}
	if !math.IsNaN(SortedPercentile(nil, 50)) {
		t.Fatal("SortedPercentile(nil) should be NaN")
	}
}

func TestSummarizeSingleSample(t *testing.T) {
	want := Summary{P50: 7.25, P95: 7.25, P99: 7.25, Mean: 7.25}
	if got := Summarize([]float64{7.25}); got != want {
		t.Fatalf("Summarize single: got %+v, want %+v", got, want)
	}
	if got := SummarizeSelect([]float64{7.25}); got != want {
		t.Fatalf("SummarizeSelect single: got %+v, want %+v", got, want)
	}
}

func TestSortedPercentileEndpoints(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{-10, 1}, {0, 1}, {100, 5}, {150, 5},
		{50, 3}, {25, 2}, {100 * 0.125, 1.5},
	}
	for _, c := range cases {
		if got := SortedPercentile(sorted, c.p); got != c.want {
			t.Errorf("SortedPercentile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	one := []float64{9}
	for _, p := range []float64{0, 37.2, 100} {
		if got := SortedPercentile(one, p); got != 9 {
			t.Errorf("single sample p=%v: got %v, want 9", p, got)
		}
	}
}

func TestPairFillsMatchScalarSequence(t *testing.T) {
	const n = 4096
	gaps := make([]float64, n)
	svc := make([]float64, n)
	a, b := NewRNG(42), NewRNG(42)
	a.FillExpLogNormal(gaps, 2.5, svc, -5, 1.5)
	for i := 0; i < n; i++ {
		wg := b.FastExp(2.5)
		ws := b.FastLogNormal(-5, 1.5)
		if gaps[i] != wg || svc[i] != ws {
			t.Fatalf("FillExpLogNormal[%d] = (%v, %v), scalar = (%v, %v)", i, gaps[i], svc[i], wg, ws)
		}
	}
	a, b = NewRNG(43), NewRNG(43)
	a.FillExpExp(gaps, 2.5, svc, 0.004)
	for i := 0; i < n; i++ {
		wg := b.FastExp(2.5)
		ws := b.FastExp(0.004)
		if gaps[i] != wg || svc[i] != ws {
			t.Fatalf("FillExpExp[%d] = (%v, %v), scalar = (%v, %v)", i, gaps[i], svc[i], wg, ws)
		}
	}
}

func BenchmarkSummarize30k(b *testing.B) {
	r := NewRNG(1)
	base := make([]float64, 30000)
	for i := range base {
		base[i] = r.FastLogNormal(-5, 1.5)
	}
	buf := make([]float64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		Summarize(buf)
	}
}

func BenchmarkSummarizeSelect30k(b *testing.B) {
	r := NewRNG(1)
	base := make([]float64, 30000)
	for i := range base {
		base[i] = r.FastLogNormal(-5, 1.5)
	}
	buf := make([]float64, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		SummarizeSelect(buf)
	}
}
