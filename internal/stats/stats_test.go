package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDistinctSeeds(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(3)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(9)
	var sum, ss float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		ss += v * v
	}
	mean := sum / n
	sd := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean-10) > 0.05 || math.Abs(sd-2) > 0.05 {
		t.Fatalf("Normal moments = (%v, %v), want (10, 2)", mean, sd)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 10000; i++ {
		v := r.BoundedPareto(1.2, 1, 1000)
		if v < 1 || v > 1000 {
			t.Fatalf("BoundedPareto out of range: %v", v)
		}
	}
}

func TestPickWeights(t *testing.T) {
	r := NewRNG(13)
	counts := [3]int{}
	w := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Pick index %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestPickPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	NewRNG(1).Pick([]float64{0, 0})
}

func TestPercentile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {95, 4.8},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Percentile(vals, 50)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestMeanMedianStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(vals); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Median(vals); math.Abs(got-4.5) > 1e-9 {
		t.Fatalf("Median = %v, want 4.5", got)
	}
	if got := StdDev(vals); math.Abs(got-2.138) > 0.001 {
		t.Fatalf("StdDev = %v, want ~2.138", got)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	want := []CDFPoint{{1, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}}
	for i, p := range pts {
		if p.Value != want[i].Value || math.Abs(p.Fraction-want[i].Fraction) > 1e-9 {
			t.Fatalf("CDF[%d] = %+v, want %+v", i, p, want[i])
		}
	}
	if got := CDFAt([]float64{1, 2, 3, 4}, 2.5); got != 0.5 {
		t.Fatalf("CDFAt = %v, want 0.5", got)
	}
}

func TestMovingAverageFlattens(t *testing.T) {
	in := []float64{10, 0, 10, 0, 10, 0, 10, 0}
	out := MovingAverage(in, 4)
	for i := 2; i < len(out)-2; i++ {
		if math.Abs(out[i]-5) > 2.5 {
			t.Fatalf("MovingAverage[%d] = %v, want near 5", i, out[i])
		}
	}
	if len(out) != len(in) {
		t.Fatalf("length changed: %d != %d", len(out), len(in))
	}
}

func TestConfidenceInterval(t *testing.T) {
	if got := ConfidenceInterval99([]float64{5}); got != 0 {
		t.Fatalf("CI of single value = %v, want 0", got)
	}
	ci := ConfidenceInterval99([]float64{10, 12, 11})
	if ci <= 0 || ci > 3 {
		t.Fatalf("CI = %v, want small positive", ci)
	}
}

func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		vals := make([]float64, 50)
		for i := range vals {
			vals[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(vals, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCDFBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		vals := make([]float64, 20)
		for i := range vals {
			vals[i] = r.Normal(0, 10)
		}
		pts := CDF(vals)
		for i := 1; i < len(pts); i++ {
			if pts[i].Value < pts[i-1].Value || pts[i].Fraction <= pts[i-1].Fraction {
				return false
			}
		}
		return pts[len(pts)-1].Fraction == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
