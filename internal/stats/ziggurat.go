package stats

// Ziggurat fast paths for the two distributions the discrete-event
// queueing kernel draws per request: exponential inter-arrival gaps and
// the normal behind log-normal service times.
//
// The reference samplers (Exp, Normal, LogNormal) pay one or more
// transcendental calls per draw: Exp computes a logarithm, Normal runs
// Box–Muller (log, sqrt, cos). The ziggurat method (Marsaglia & Tsang,
// 2000) covers the density with a stack of equal-area rectangles so
// that the common case — a point landing inside a rectangle's core —
// needs one 64-bit draw, one table compare, and one multiply. Only the
// rare wedge/tail cases (a few percent of draws) fall back to
// transcendentals.
//
// The fast samplers draw a *different* random sequence than the
// reference ones, so results are statistically equivalent but not
// bit-identical. Callers that need bit-compatibility with the reference
// stream (golden results, differential tests) keep using Exp/Normal;
// the queueing simulator exposes the choice as Config.ReferenceSampling
// and the KS-distance tests in this package prove the two modes sample
// the same distributions.
//
// Tables are built once at init from the published tail roots and strip
// areas rather than embedded as opaque constants, and an init check
// verifies the construction produced a strictly decreasing layer stack.

import "math"

const (
	// Normal ziggurat: 128 equal-area layers. zigNormR is the base
	// strip's tail cutoff, zigNormV the per-layer area (Marsaglia &
	// Tsang's published values for n=128).
	zigNormLayers = 128
	zigNormR      = 3.442619855899
	zigNormV      = 9.91256303526217e-3

	// Exponential ziggurat: 256 equal-area layers.
	zigExpLayers = 256
	zigExpR      = 7.69711747013104972
	zigExpV      = 3.9496598225815571993e-3
)

var (
	zigNormX     [zigNormLayers + 1]float64
	zigNormRatio [zigNormLayers]float64
	zigExpX      [zigExpLayers + 1]float64
	zigExpRatio  [zigExpLayers]float64
)

func init() {
	// Layer edges from the equal-area recurrence
	// f(x[i+1]) = f(x[i]) + v/x[i], with x[1] = R and x[0] = v/f(R)
	// standing in for the base strip (rectangle plus tail).
	fn := math.Exp(-0.5 * zigNormR * zigNormR)
	zigNormX[0] = zigNormV / fn
	zigNormX[1] = zigNormR
	for i := 2; i < zigNormLayers; i++ {
		prev := zigNormX[i-1]
		zigNormX[i] = math.Sqrt(-2 * math.Log(zigNormV/prev+math.Exp(-0.5*prev*prev)))
	}
	zigNormX[zigNormLayers] = 0
	for i := 0; i < zigNormLayers; i++ {
		zigNormRatio[i] = zigNormX[i+1] / zigNormX[i]
	}

	fe := math.Exp(-zigExpR)
	zigExpX[0] = zigExpV / fe
	zigExpX[1] = zigExpR
	for i := 2; i < zigExpLayers; i++ {
		prev := zigExpX[i-1]
		zigExpX[i] = -math.Log(zigExpV/prev + math.Exp(-prev))
	}
	zigExpX[zigExpLayers] = 0
	for i := 0; i < zigExpLayers; i++ {
		zigExpRatio[i] = zigExpX[i+1] / zigExpX[i]
	}

	for i := 1; i <= zigNormLayers; i++ {
		if !(zigNormX[i] < zigNormX[i-1]) {
			panic("stats: normal ziggurat table not strictly decreasing")
		}
	}
	for i := 1; i <= zigExpLayers; i++ {
		if !(zigExpX[i] < zigExpX[i-1]) {
			panic("stats: exponential ziggurat table not strictly decreasing")
		}
	}
}

// fastExpUnit returns an Exp(1) draw via the ziggurat. The common case
// — a point inside a layer's rectangular core — is a single 64-bit
// draw, one compare, and one multiply; everything rarer lives in
// fastExpSlow so this body stays inlinable and the batch fillers can
// replicate it without a call per draw. The draw sequence is identical
// to the original single-loop implementation.
func (r *RNG) fastExpUnit() float64 {
	z := r.Uint64()
	// Low 8 bits pick the layer, top 53 the position: disjoint
	// bit ranges of one draw.
	i := int(z & (zigExpLayers - 1))
	u := float64(z>>11) / (1 << 53) // [0, 1)
	x := u * zigExpX[i]
	if u < zigExpRatio[i] {
		return x // inside the layer's rectangular core
	}
	return r.fastExpSlow(i, x)
}

// fastExpSlow resolves a draw that missed layer i's rectangular core:
// tail, wedge, and — on wedge rejection — the full redraw loop, in the
// exact order of the pre-split sampler.
func (r *RNG) fastExpSlow(i int, x float64) float64 {
	for {
		if i == 0 {
			// Tail beyond R: memoryless, so R + Exp(1) via the
			// reference sampler (rare: ~v*e^R of the mass).
			return zigExpR + r.Exp(1)
		}
		// Wedge: accept against the true density, normalised to f(x).
		f0 := math.Exp(x - zigExpX[i])   // f(X[i])/f(x) <= 1
		f1 := math.Exp(x - zigExpX[i+1]) // f(X[i+1])/f(x) >= 1
		if f0+r.Float64()*(f1-f0) < 1 {
			return x
		}
		z := r.Uint64()
		i = int(z & (zigExpLayers - 1))
		u := float64(z>>11) / (1 << 53)
		x = u * zigExpX[i]
		if u < zigExpRatio[i] {
			return x
		}
	}
}

// fastNormUnit returns a standard normal draw via the ziggurat, split
// like fastExpUnit: inlinable core case, fastNormSlow for the rest.
func (r *RNG) fastNormUnit() float64 {
	z := r.Uint64()
	i := int(z & (zigNormLayers - 1))
	u := float64(z>>11)/(1<<52) - 1 // [-1, 1)
	x := u * zigNormX[i]
	if math.Abs(u) < zigNormRatio[i] {
		return x
	}
	return r.fastNormSlow(i, u, x)
}

// fastNormSlow resolves a normal draw that missed layer i's core.
func (r *RNG) fastNormSlow(i int, u, x float64) float64 {
	for {
		if i == 0 {
			return r.normTail(u < 0)
		}
		xa := x * x
		f0 := math.Exp(-0.5 * (zigNormX[i]*zigNormX[i] - xa))
		f1 := math.Exp(-0.5 * (zigNormX[i+1]*zigNormX[i+1] - xa))
		if f0+r.Float64()*(f1-f0) < 1 {
			return x
		}
		z := r.Uint64()
		i = int(z & (zigNormLayers - 1))
		u = float64(z>>11)/(1<<52) - 1
		x = u * zigNormX[i]
		if math.Abs(u) < zigNormRatio[i] {
			return x
		}
	}
}

// normTail samples the normal tail beyond zigNormR (Marsaglia's
// exact-tail method).
func (r *RNG) normTail(negative bool) float64 {
	for {
		u1 := r.Float64()
		for u1 == 0 {
			u1 = r.Float64()
		}
		u2 := r.Float64()
		for u2 == 0 {
			u2 = r.Float64()
		}
		x := -math.Log(u1) / zigNormR
		y := -math.Log(u2)
		if y+y >= x*x {
			if negative {
				return -(zigNormR + x)
			}
			return zigNormR + x
		}
	}
}

// FastExp returns an exponentially distributed value with the given
// mean using the ziggurat fast path. Statistically equivalent to Exp
// (proven by the KS tests in this package) but a different, incompatible
// draw sequence.
func (r *RNG) FastExp(mean float64) float64 { return mean * r.fastExpUnit() }

// FastNormal returns a normally distributed value via the ziggurat.
// Statistically equivalent to Normal but a different draw sequence.
func (r *RNG) FastNormal(mean, stddev float64) float64 {
	return mean + stddev*r.fastNormUnit()
}

// FastLogNormal returns a log-normally distributed value parameterised
// by the mean and stddev of the underlying normal, via the ziggurat.
func (r *RNG) FastLogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.fastNormUnit())
}

// FillExp fills dst with exponential draws of the given mean — the
// batched form of FastExp for bulk consumers (sample pre-generation,
// statistical tests).
func (r *RNG) FillExp(dst []float64, mean float64) {
	for i := range dst {
		dst[i] = mean * r.fastExpUnit()
	}
}

// FillNormal fills dst with normal draws — the batched form of
// FastNormal.
func (r *RNG) FillNormal(dst []float64, mean, stddev float64) {
	for i := range dst {
		dst[i] = mean + stddev*r.fastNormUnit()
	}
}

// The pair fillers below feed the batched queueing event loop. The
// scalar loop draws (arrival gap, service time) alternately per
// request, and the ziggurat consumes a *variable* number of 64-bit
// draws per sample, so filling all gaps and then all services would
// permute the stream and change every result. These fillers interleave
// the two draws per index in exactly the scalar order, keeping the
// batched kernel bit-identical to the scalar one. The common ziggurat
// case is written out inline; misses call the shared slow paths.

// FillExpLogNormal fills gaps[i] with Exp(meanIA) draws and svc[i]
// with LogNormal(mu, sigma) draws, interleaved per index in the exact
// draw order of alternating FastExp / FastLogNormal calls.
func (r *RNG) FillExpLogNormal(gaps []float64, meanIA float64, svc []float64, mu, sigma float64) {
	n := len(gaps)
	if len(svc) < n {
		n = len(svc)
	}
	for k := 0; k < n; k++ {
		z := r.Uint64()
		i := int(z & (zigExpLayers - 1))
		u := float64(z>>11) / (1 << 53)
		x := u * zigExpX[i]
		if u >= zigExpRatio[i] {
			x = r.fastExpSlow(i, x)
		}
		gaps[k] = meanIA * x

		z = r.Uint64()
		j := int(z & (zigNormLayers - 1))
		v := float64(z>>11)/(1<<52) - 1
		y := v * zigNormX[j]
		if math.Abs(v) >= zigNormRatio[j] {
			y = r.fastNormSlow(j, v, y)
		}
		svc[k] = math.Exp(mu + sigma*y)
	}
}

// FillExpExp fills gaps[i] with Exp(meanIA) draws and svc[i] with
// Exp(meanSvc) draws, interleaved per index in the exact draw order of
// alternating FastExp calls.
func (r *RNG) FillExpExp(gaps []float64, meanIA float64, svc []float64, meanSvc float64) {
	n := len(gaps)
	if len(svc) < n {
		n = len(svc)
	}
	for k := 0; k < n; k++ {
		z := r.Uint64()
		i := int(z & (zigExpLayers - 1))
		u := float64(z>>11) / (1 << 53)
		x := u * zigExpX[i]
		if u >= zigExpRatio[i] {
			x = r.fastExpSlow(i, x)
		}
		gaps[k] = meanIA * x

		z = r.Uint64()
		i = int(z & (zigExpLayers - 1))
		u = float64(z>>11) / (1 << 53)
		x = u * zigExpX[i]
		if u >= zigExpRatio[i] {
			x = r.fastExpSlow(i, x)
		}
		svc[k] = meanSvc * x
	}
}
