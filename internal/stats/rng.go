// Package stats provides the statistical substrate for GSF's simulators:
// a deterministic seeded RNG, the distributions used by the synthetic
// workload generators, percentile and CDF helpers, confidence intervals,
// and moving averages.
//
// Everything here is deterministic given a seed so that every experiment
// in the repository reproduces bit-identically.
package stats

import "math"

// RNG is a small, fast, deterministic random number generator
// (splitmix64). It is not safe for concurrent use; simulators own one
// RNG per logical stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Split derives an independent child generator. Useful for giving each
// simulated entity its own stream without coupling draw order.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box–Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value parameterised by the
// mean and stddev of the underlying normal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// BoundedPareto returns a value from a bounded Pareto distribution with
// shape alpha on [lo, hi]. Heavy-tailed: used for VM lifetimes.
func (r *RNG) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		panic("stats: invalid BoundedPareto parameters")
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Pick returns an index sampled from the given non-negative weights.
// It panics if weights is empty or sums to zero.
func (r *RNG) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("stats: Pick with empty or zero weights")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
