package stats

// Statistical equivalence proof for the ziggurat fast paths: the fast
// samplers draw a different sequence than the reference ones, so the
// contract is distributional, not bitwise. A Kolmogorov–Smirnov test
// against the *analytic* CDF pins each fast sampler to its target
// distribution across 35 seeds (the same seed count as the trace
// suite), at a significance level chosen so the whole sweep has a
// negligible false-failure rate.

import (
	"math"
	"sort"
	"testing"
)

// ksDistance returns the one-sample KS statistic of samples against the
// analytic CDF. samples is sorted in place.
func ksDistance(samples []float64, cdf func(float64) float64) float64 {
	sort.Float64s(samples)
	n := float64(len(samples))
	var d float64
	for i, x := range samples {
		f := cdf(x)
		if up := float64(i+1)/n - f; up > d {
			d = up
		}
		if down := f - float64(i)/n; down > d {
			d = down
		}
	}
	return d
}

// ksThreshold is the critical KS distance at alpha ~= 1e-6 for sample
// size n (c(alpha) = sqrt(-ln(alpha/2)/2) ~= 2.7). With 35 seeds x 4
// distributions the sweep-wide false-failure probability stays far
// below 1e-3, while a broken sampler (wrong tail, wrong wedge test)
// sits orders of magnitude above the line.
func ksThreshold(n int) float64 { return 2.7 / math.Sqrt(float64(n)) }

func expCDF(mean float64) func(float64) float64 {
	return func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-x/mean)
	}
}

func normCDF(mean, sd float64) func(float64) float64 {
	return func(x float64) float64 {
		return 0.5 * (1 + math.Erf((x-mean)/(sd*math.Sqrt2)))
	}
}

func TestFastExpKSAcrossSeeds(t *testing.T) {
	const n = 20000
	buf := make([]float64, n)
	for seed := uint64(1); seed <= 35; seed++ {
		r := NewRNG(seed)
		r.FillExp(buf, 1)
		if d := ksDistance(buf, expCDF(1)); d > ksThreshold(n) {
			t.Errorf("seed %d: FastExp KS distance %.4f above %.4f", seed, d, ksThreshold(n))
		}
	}
}

func TestFastNormalKSAcrossSeeds(t *testing.T) {
	const n = 20000
	buf := make([]float64, n)
	for seed := uint64(1); seed <= 35; seed++ {
		r := NewRNG(seed)
		r.FillNormal(buf, 0, 1)
		if d := ksDistance(buf, normCDF(0, 1)); d > ksThreshold(n) {
			t.Errorf("seed %d: FastNormal KS distance %.4f above %.4f", seed, d, ksThreshold(n))
		}
	}
}

func TestFastExpScalesByMean(t *testing.T) {
	const n = 20000
	buf := make([]float64, n)
	r := NewRNG(7)
	for i := range buf {
		buf[i] = r.FastExp(0.004)
	}
	if d := ksDistance(buf, expCDF(0.004)); d > ksThreshold(n) {
		t.Errorf("FastExp(0.004) KS distance %.4f above %.4f", d, ksThreshold(n))
	}
}

func TestFastLogNormalKS(t *testing.T) {
	const n = 20000
	mu, sigma := -0.5, 0.8
	buf := make([]float64, n)
	r := NewRNG(11)
	for i := range buf {
		buf[i] = r.FastLogNormal(mu, sigma)
	}
	phi := normCDF(mu, sigma)
	cdf := func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return phi(math.Log(x))
	}
	if d := ksDistance(buf, cdf); d > ksThreshold(n) {
		t.Errorf("FastLogNormal KS distance %.4f above %.4f", d, ksThreshold(n))
	}
}

// The normal ziggurat must reproduce the tail, not just the body: count
// exceedances past the base strip cutoff and compare to the analytic
// tail mass (the tail path is the part a table bug would silently
// starve).
func TestFastNormalTailMass(t *testing.T) {
	const n = 2_000_000
	r := NewRNG(3)
	count := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.fastNormUnit()) > zigNormR {
			count++
		}
	}
	want := 2 * (1 - normCDF(0, 1)(zigNormR)) // ~5.7e-4
	got := float64(count) / n
	if got < want/2 || got > want*2 {
		t.Errorf("tail mass beyond %.3f: got %.2e, want ~%.2e", zigNormR, got, want)
	}
}

func TestFillMatchesScalarSequence(t *testing.T) {
	const n = 1000
	a, b := NewRNG(42), NewRNG(42)
	got := make([]float64, n)
	a.FillExp(got, 2.5)
	for i := 0; i < n; i++ {
		if want := b.FastExp(2.5); got[i] != want {
			t.Fatalf("FillExp[%d] = %v, scalar FastExp = %v", i, got[i], want)
		}
	}
	a, b = NewRNG(43), NewRNG(43)
	a.FillNormal(got, 1, 3)
	for i := 0; i < n; i++ {
		if want := b.FastNormal(1, 3); got[i] != want {
			t.Fatalf("FillNormal[%d] = %v, scalar FastNormal = %v", i, got[i], want)
		}
	}
}

func BenchmarkExpReference(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Exp(1)
	}
	_ = sink
}

func BenchmarkExpZiggurat(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.FastExp(1)
	}
	_ = sink
}

func BenchmarkNormalReference(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Normal(0, 1)
	}
	_ = sink
}

func BenchmarkNormalZiggurat(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.FastNormal(0, 1)
	}
	_ = sink
}
