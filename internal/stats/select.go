package stats

import (
	"math"
	"sort"
)

// SummarizeSelect computes the same Summary as Summarize — bit-identical
// values — without fully sorting the buffer. Each percentile is an
// interpolation between two exact order statistics, and a quickselect
// produces exactly the same order statistics as a full sort, so the
// interpolated results match Summarize bit for bit (proven by the
// differential test in this package). The mean is accumulated in the
// buffer's original order first, exactly as Summarize does.
//
// Like Summarize, the buffer is reordered in place (partially
// partitioned rather than sorted); callers that need the original
// order must read it before calling. Empty input yields all-NaN.
// Inputs containing NaN fall back to the sort-based Summarize so the
// two functions agree on every input.
func SummarizeSelect(values []float64) Summary {
	if len(values) == 0 {
		n := math.NaN()
		return Summary{P50: n, P95: n, P99: n, Mean: n}
	}
	m := Mean(values)
	if math.IsNaN(m) {
		// A NaN anywhere poisons the mean; partitioning comparisons
		// would be unreliable, so defer to the sorting path.
		sort.Float64s(values)
		return Summary{
			P50:  SortedPercentile(values, 50),
			P95:  SortedPercentile(values, 95),
			P99:  SortedPercentile(values, 99),
			Mean: m,
		}
	}
	return Summary{
		P50:  selectPercentile(values, 50),
		P95:  selectPercentile(values, 95),
		P99:  selectPercentile(values, 99),
		Mean: m,
	}
}

// selectPercentile returns the p-th percentile of values using the same
// closest-rank interpolation as SortedPercentile, obtaining the two
// bracketing order statistics by quickselect instead of a sort. The
// slice is partially reordered in place.
func selectPercentile(values []float64, p float64) float64 {
	n := len(values)
	if p <= 0 {
		return selectRank(values, 0)
	}
	if p >= 100 {
		return selectRank(values, n-1)
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	vlo := selectRank(values, lo)
	if lo == hi {
		return vlo
	}
	// selectRank leaves values[lo+1:] all >= vlo, so the hi-rank order
	// statistic is that suffix's minimum.
	vhi := values[lo+1]
	for _, v := range values[lo+2:] {
		if v < vhi {
			vhi = v
		}
	}
	frac := rank - float64(lo)
	return vlo*(1-frac) + vhi*frac
}

// selectRank partitions a in place so that a[k] holds its k-th order
// statistic, everything before it is <= a[k], and everything after is
// >= a[k], then returns a[k]. Deterministic median-of-three pivoting;
// expected O(n). Inputs must be NaN-free.
func selectRank(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		p := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return a[k]
		}
	}
	return a[k]
}
