package buffer

import (
	"math"
	"testing"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/cluster"
)

func inputs() (base, green cluster.SavingsInput) {
	base = cluster.SavingsInput{
		Class:   alloc.ServerClass{Name: "base", Cores: 80, Memory: 768},
		PerCore: carbon.PerCore{Operational: 23, Embodied: 23},
	}
	green = cluster.SavingsInput{
		Class:   alloc.ServerClass{Name: "green", Cores: 128, Memory: 1024, Green: true},
		PerCore: carbon.PerCore{Operational: 19, Embodied: 14},
	}
	return base, green
}

func TestServersSizing(t *testing.T) {
	p := Params{Fraction: 0.15}
	m := cluster.Mix{BaselineOnly: 20, NBase: 5, NGreen: 10}
	// 15% of the 20-server baseline demand -> 3 buffer servers.
	n, err := p.Servers(m)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("buffer servers = %d, want 3", n)
	}
}

func TestApply(t *testing.T) {
	b, err := DefaultParams().Apply(cluster.Mix{BaselineOnly: 20, NBase: 5, NGreen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.BufferServers != 3 {
		t.Fatalf("buffer = %d, want 3", b.BufferServers)
	}
}

func TestBufferedSavingsBelowUnbuffered(t *testing.T) {
	// §V: keeping the buffer on baseline SKUs marginally reduces the
	// savings.
	base, green := inputs()
	m := cluster.Mix{BaselineOnly: 20, NBase: 5, NGreen: 10}
	unbuffered := cluster.Savings(m, base, green)
	b, err := DefaultParams().Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	buffered := DefaultParams().Savings(b, base, green)
	if buffered >= unbuffered {
		t.Fatalf("buffered savings (%v) should be below unbuffered (%v)", buffered, unbuffered)
	}
	if unbuffered-buffered > 0.05 {
		t.Fatalf("buffer penalty %v too large; should be marginal", unbuffered-buffered)
	}
}

func TestPenaltyPositive(t *testing.T) {
	base, green := inputs()
	b := Buffered{Mix: cluster.Mix{BaselineOnly: 20, NBase: 5, NGreen: 10}, BufferServers: 3}
	if got := Penalty(b, base, green); got <= 0 {
		t.Fatalf("penalty = %v, want positive (baseline buffer is carbon-inefficient)", got)
	}
	if got := Penalty(b, base, cluster.SavingsInput{}); got != 0 {
		t.Fatalf("penalty without a green class = %v, want 0", got)
	}
}

func TestZeroFraction(t *testing.T) {
	p := Params{Fraction: 0}
	b, err := p.Apply(cluster.Mix{BaselineOnly: 20, NBase: 5, NGreen: 10})
	if err != nil {
		t.Fatal(err)
	}
	if b.BufferServers != 0 {
		t.Fatalf("zero-fraction buffer = %+v, want none", b)
	}
	base, green := inputs()
	if s := p.Savings(b, base, green); math.Abs(s-cluster.Savings(b.Mix, base, green)) > 1e-12 {
		t.Fatal("zero-fraction buffered savings should equal unbuffered")
	}
}

func TestValidation(t *testing.T) {
	if _, err := (Params{Fraction: -1}).Servers(cluster.Mix{}); err == nil {
		t.Error("accepted negative fraction")
	}
}

func TestEmptyClusterSavings(t *testing.T) {
	base, green := inputs()
	if got := DefaultParams().Savings(Buffered{}, base, green); got != 0 {
		t.Fatalf("savings of empty cluster = %v, want 0", got)
	}
}
