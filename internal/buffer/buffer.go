// Package buffer implements GSF's growth-buffer component (§IV-D, §V):
// the extra server capacity a cloud keeps to absorb spikes in VM
// deployment growth. Because a new GreenSKU has no demand history to
// size a buffer from, the paper's workaround keeps the entire growth
// buffer on baseline SKUs — whose historical workload trends are
// available — and lets VMs run there when GreenSKU capacity runs out.
// The buffer's carbon inefficiency is charged against the GreenSKU's
// savings.
package buffer

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/cluster"
	"github.com/greensku/gsf/internal/units"
)

// Params configures buffer sizing.
type Params struct {
	// Fraction is the buffer capacity as a fraction of served demand,
	// measured in baseline servers (the right-sized all-baseline
	// cluster). Hyperscale growth buffers run around 10-20%.
	Fraction float64
}

// DefaultParams returns a 15% growth buffer.
func DefaultParams() Params { return Params{Fraction: 0.15} }

// Servers returns the number of baseline buffer servers for the given
// demand. Demand is measured by the right-sized all-baseline cluster,
// because that is the series the provider has growth history for —
// the same buffer applies whether or not GreenSKUs serve the base load.
func (p Params) Servers(m cluster.Mix) (int, error) {
	if p.Fraction < 0 {
		return 0, fmt.Errorf("buffer: negative fraction")
	}
	return int(math.Ceil(float64(m.BaselineOnly) * p.Fraction)), nil
}

// Buffered is a mixed cluster with its growth buffer attached. Both the
// mixed cluster and the all-baseline comparison carry the same
// baseline-SKU buffer.
type Buffered struct {
	Mix           cluster.Mix
	BufferServers int
}

// Apply sizes the buffer for the cluster.
func (p Params) Apply(m cluster.Mix) (Buffered, error) {
	b := Buffered{Mix: m}
	var err error
	b.BufferServers, err = p.Servers(m)
	return b, err
}

// Savings returns cluster-level carbon savings including the growth
// buffer: the mixed cluster plus its baseline buffer versus the
// all-baseline cluster plus the same buffer. Because the buffer stays
// on carbon-inefficient baseline SKUs in both cases, it dilutes — but
// only marginally — the GreenSKU's savings (§V: "this approach
// marginally increases emissions ... we consider these emissions in
// our savings estimate").
func (p Params) Savings(b Buffered, base, green cluster.SavingsInput) float64 {
	all := cluster.Emissions(b.Mix.BaselineOnly+b.BufferServers, base.Class, base.PerCore)
	mixed := cluster.Emissions(b.Mix.NBase+b.BufferServers, base.Class, base.PerCore) +
		cluster.Emissions(b.Mix.NGreen, green.Class, green.PerCore)
	if all == 0 {
		return 0
	}
	return 1 - float64(mixed)/float64(all)
}

// Penalty returns the absolute carbon cost of keeping the buffer on
// baseline SKUs instead of (hypothetically) GreenSKUs of equivalent
// core capacity.
func Penalty(b Buffered, base, green cluster.SavingsInput) units.KgCO2e {
	if green.Class.Cores == 0 {
		return 0
	}
	baseBuffer := cluster.Emissions(b.BufferServers, base.Class, base.PerCore)
	equivCores := float64(b.BufferServers) * float64(base.Class.Cores)
	greenBuffer := equivCores * float64(green.PerCore.Total())
	diff := float64(baseBuffer) - greenBuffer
	if diff < 0 {
		return 0
	}
	return units.KgCO2e(diff)
}
