// Package report renders experiment outputs: aligned ASCII tables,
// CSV files, and text-mode series ("figures"). The cmd/gsf tool and the
// benchmark harness use it to print the reproduced tables and figures
// in a shape directly comparable to the paper.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV writes a header and rows in CSV form, quoting cells that
// need it.
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	write := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := write(header); err != nil {
		return err
	}
	for _, r := range rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

// Series is one line of a text figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// RenderSeries writes series as aligned columns sharing the X axis of
// the first series; series with differing X are printed separately.
func RenderSeries(w io.Writer, title, xlabel, ylabel string, series []Series) error {
	if _, err := fmt.Fprintf(w, "%s  (%s vs %s)\n", title, ylabel, xlabel); err != nil {
		return err
	}
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("report: series %s has %d x values but %d y values", s.Name, len(s.X), len(s.Y))
		}
	}
	shared := len(series) > 0
	for _, s := range series[1:] {
		if len(s.X) != len(series[0].X) {
			shared = false
			break
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				shared = false
				break
			}
		}
	}
	if shared && len(series) > 0 {
		t := Table{Header: []string{xlabel}}
		for _, s := range series {
			t.Header = append(t.Header, s.Name)
		}
		for i := range series[0].X {
			row := []string{fmt.Sprintf("%.4g", series[0].X[i])}
			for _, s := range series {
				row = append(row, fmt.Sprintf("%.4g", s.Y[i]))
			}
			t.AddRow(row...)
		}
		return t.Render(w)
	}
	for _, s := range series {
		t := Table{Title: s.Name, Header: []string{xlabel, ylabel}}
		for i := range s.X {
			t.AddRow(fmt.Sprintf("%.4g", s.X[i]), fmt.Sprintf("%.4g", s.Y[i]))
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
