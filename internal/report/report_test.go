package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := Table{Title: "Demo", Header: []string{"SKU", "Savings"}}
	tab.AddRow("GreenSKU-Full", "28%")
	tab.AddRow("Baseline", "-")
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Demo", "SKU", "GreenSKU-Full", "28%", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5 (title, header, rule, 2 rows)", len(lines))
	}
	// Column alignment: "Savings" starts at the same offset in header
	// and rows.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "Savings") != strings.Index(row, "28%") {
		t.Errorf("columns not aligned:\n%s", out)
	}
}

func TestWriteCSVQuoting(t *testing.T) {
	var b strings.Builder
	err := WriteCSV(&b, []string{"a", "b"}, [][]string{{"plain", `has "quote", comma`}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\nplain,\"has \"\"quote\"\", comma\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestRenderSeriesShared(t *testing.T) {
	var b strings.Builder
	err := RenderSeries(&b, "Fig", "qps", "p95", []Series{
		{Name: "gen3", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Name: "green", X: []float64{1, 2}, Y: []float64{12, 25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Fig", "gen3", "green", "12", "25"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeriesUnshared(t *testing.T) {
	var b strings.Builder
	err := RenderSeries(&b, "Fig", "x", "y", []Series{
		{Name: "a", X: []float64{1}, Y: []float64{10}},
		{Name: "b", X: []float64{9, 10}, Y: []float64{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("unshared series missing names:\n%s", out)
	}
}

func TestRenderSeriesLengthMismatch(t *testing.T) {
	var b strings.Builder
	err := RenderSeries(&b, "Fig", "x", "y", []Series{{Name: "bad", X: []float64{1, 2}, Y: []float64{1}}})
	if err == nil {
		t.Fatal("accepted mismatched series")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.281); got != "28.1%" {
		t.Fatalf("Pct = %q", got)
	}
}
