package server

import (
	"container/list"
	"sync"
	"time"
)

// resultCache is an LRU cache with per-entry TTL for rendered response
// bodies. Evaluations are deterministic functions of the canonical
// request key, so a hit can be served as the exact bytes of the first
// response. Safe for concurrent use.
type resultCache struct {
	mu      sync.Mutex
	max     int           // entry capacity; <= 0 disables the cache
	ttl     time.Duration // per-entry lifetime; <= 0 means no expiry
	now     func() time.Time
	order   *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheEntry struct {
	key    string
	body   []byte
	stored time.Time
}

func newResultCache(maxEntries int, ttl time.Duration) *resultCache {
	return &resultCache{
		max:     maxEntries,
		ttl:     ttl,
		now:     time.Now,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}
}

// get returns the cached body for key, promoting the entry to most
// recently used. Expired entries are dropped on access.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && c.now().Sub(e.stored) > c.ttl {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.body, true
}

// put stores body under key, evicting the least recently used entry
// when over capacity. Callers must not mutate body afterwards.
func (c *resultCache) put(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		e.body = body
		e.stored = c.now()
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, body: body, stored: c.now()})
	c.entries[key] = el
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// len reports the live entry count (including not-yet-collected expired
// entries).
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
