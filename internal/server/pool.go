package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrQueueFull is returned by pool.submit when the request queue is at
// capacity; the HTTP layer maps it to 429 with a Retry-After header.
var ErrQueueFull = errors.New("server: evaluation queue full")

// pool is a bounded worker pool with a fixed-capacity FIFO queue.
// Submissions never block: when every worker is busy and the queue is
// full, submit sheds load by returning ErrQueueFull immediately.
type pool struct {
	queue   chan func()
	workers int
	busy    atomic.Int64

	closeOnce sync.Once
	wg        sync.WaitGroup
}

func newPool(workers, queueDepth int) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &pool{queue: make(chan func(), queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

func (p *pool) work() {
	defer p.wg.Done()
	for fn := range p.queue {
		p.busy.Add(1)
		fn()
		p.busy.Add(-1)
	}
}

// submit enqueues fn without blocking. It fails with ErrQueueFull when
// the queue is at capacity and with the context error when ctx is
// already done.
func (p *pool) submit(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case p.queue <- fn:
		return nil
	default:
		return ErrQueueFull
	}
}

// close stops accepting work and waits for queued work to drain.
func (p *pool) close() {
	p.closeOnce.Do(func() { close(p.queue) })
	p.wg.Wait()
}

// depth reports the number of queued (not yet running) tasks.
func (p *pool) depth() int { return len(p.queue) }

// busyWorkers reports the number of workers currently running a task.
func (p *pool) busyWorkers() int64 { return p.busy.Load() }

// utilization reports busy workers as a fraction of the pool size.
func (p *pool) utilization() float64 {
	return float64(p.busy.Load()) / float64(p.workers)
}

// flightCall is one in-flight computation shared by every request that
// arrived with the same canonical key while it ran.
type flightCall struct {
	done chan struct{} // closed when body/err are set
	body []byte
	err  error
}

// flightGroup deduplicates concurrent identical requests
// singleflight-style: the first caller for a key becomes the leader and
// runs the computation; followers wait on the same call.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// join returns the in-flight call for key, creating it if absent. The
// second result is true for the leader, who must complete the call via
// finish exactly once.
func (g *flightGroup) join(key string) (*flightCall, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c, false
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	return c, true
}

// finish publishes the result to every waiter and retires the key so
// later requests start fresh (a completed result is served from the
// cache instead).
func (g *flightGroup) finish(key string, c *flightCall, body []byte, err error) {
	c.body, c.err = body, err
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
}

// wait blocks until the call completes or ctx is done.
func (c *flightCall) wait(ctx context.Context) ([]byte, error) {
	select {
	case <-c.done:
		return c.body, c.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
