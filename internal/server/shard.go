package server

// Consistent-hash sharding of the evaluation keyspace across gsfd
// replicas. Every evaluation already has a canonical cache key
// (dataset + SKU + input digest, see cacheKey); the ring assigns each
// key an owning replica, and a replica that receives a request it does
// not own forwards it transparently — the client talks to any replica
// and sees one logical service. Replica caches therefore partition the
// keyspace instead of duplicating it: N replicas hold N distinct cache
// populations, and a warm fleet answers most traffic from exactly one
// cache.
//
// Loop prevention: forwarded requests carry X-GSF-Forwarded and are
// always served locally by the receiver, so a misconfigured ring costs
// one extra hop, never a cycle. Availability beats strict partitioning:
// if the owner is unreachable, the receiving replica computes locally
// and the fleet degrades to duplicated caching instead of failing.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"github.com/greensku/gsf/internal/server/api"
)

// vnodesPerReplica is the virtual-node count per replica; 128 keeps
// the keyspace split within a few percent of even for small fleets.
const vnodesPerReplica = 128

// ring is an immutable consistent-hash ring over replica base URLs.
type ring struct {
	self   string
	addrs  []string // all replicas, normalised, self included
	vnodes []vnode  // sorted by hash
	client *http.Client
}

type vnode struct {
	hash uint64
	addr string
}

// newRing builds the shard ring from this replica's advertised URL and
// the full peer list. Returns nil when the normalised membership is
// just this replica (sharding off). Every replica must be configured
// with the same membership for the partition to be coherent; a
// divergent view still serves correctly (forwarded requests compute
// locally) but caches overlap.
func newRing(self string, peers []string, timeout time.Duration) (*ring, error) {
	self = normalizeReplica(self)
	if self == "" {
		return nil, errors.New("server: -peers requires -self, this replica's advertised URL")
	}
	seen := map[string]bool{self: true}
	addrs := []string{self}
	for _, p := range peers {
		p = normalizeReplica(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		addrs = append(addrs, p)
	}
	if len(addrs) < 2 {
		return nil, nil
	}
	sort.Strings(addrs)
	r := &ring{
		self:  self,
		addrs: addrs,
		client: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	for _, addr := range addrs {
		for i := 0; i < vnodesPerReplica; i++ {
			r.vnodes = append(r.vnodes, vnode{hash: fnv64a(fmt.Sprintf("%s#%d", addr, i)), addr: addr})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool { return r.vnodes[i].hash < r.vnodes[j].hash })
	return r, nil
}

// normalizeReplica canonicalises a replica URL so "http://a:1/" and
// "http://a:1" are the same member.
func normalizeReplica(addr string) string {
	return strings.TrimRight(strings.TrimSpace(addr), "/")
}

func fnv64a(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// owner returns the replica owning key: the first vnode clockwise from
// the key's hash.
func (r *ring) owner(key string) string {
	h := fnv64a(key)
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0
	}
	return r.vnodes[i].addr
}

// size reports the replica count.
func (r *ring) size() int { return len(r.addrs) }

// isForwarded reports whether a request already hopped once.
func isForwarded(r *http.Request) bool {
	return r.Header.Get(api.HeaderForwarded) != ""
}

// maybeForward proxies a single-endpoint request to the replica owning
// its cache key. Returns true when the response has been written. A
// transport failure falls back to local computation (returns false).
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	if s.ring == nil || isForwarded(r) {
		return false
	}
	owner := s.ring.owner(key)
	if owner == s.ring.self {
		return false
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, owner+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderForwarded, s.ring.self)
	for _, h := range []string{"Accept", api.HeaderClient, api.HeaderPriority} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := s.ring.client.Do(req)
	if err != nil {
		s.metrics.ForwardFailed.inc()
		s.log.Warn("shard forward failed; serving locally", "owner", owner, "err", err)
		return false
	}
	defer resp.Body.Close()
	s.metrics.Forwarded.inc()
	for _, h := range []string{"Content-Type", api.HeaderCache, "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(api.HeaderShard, "forwarded")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// errForwardTransport marks a forward that never reached the owner;
// callers fall back to local computation.
var errForwardTransport = errors.New("server: shard forward failed")

// forwardedError relays an owner's error reply verbatim: the envelope
// and status the owner answered with become the item's in-band result.
type forwardedError struct {
	status int
	e      api.Error
}

func (f *forwardedError) Error() string {
	return fmt.Sprintf("shard owner answered %d: %s", f.status, f.e.Message)
}

// forwardItem re-sends one batch/sweep item to the owning replica's
// single endpoint and returns the exact body it answered with.
func (s *Server) forwardItem(ctx context.Context, owner string, it api.BatchItem) ([]byte, bool, error) {
	path, payload := itemEndpoint(it)
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+path, bytes.NewReader(body))
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", errForwardTransport, err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderForwarded, s.ring.self)
	resp, err := s.ring.client.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", errForwardTransport, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", errForwardTransport, err)
	}
	if resp.StatusCode != http.StatusOK {
		var env api.ErrorResponse
		if json.Unmarshal(out, &env) == nil && env.Error.Code != "" {
			return nil, false, &forwardedError{status: resp.StatusCode, e: env.Error}
		}
		return nil, false, &forwardedError{status: resp.StatusCode,
			e: api.Error{Code: api.CodeInternal, Message: fmt.Sprintf("shard owner %s: status %d", owner, resp.StatusCode)}}
	}
	return out, resp.Header.Get(api.HeaderCache) == "hit", nil
}

// computeItem serves one batch/sweep item: forwarded to the shard
// owner when the key is remote, computed locally otherwise (and on
// forward transport failure).
func (s *Server) computeItem(ctx context.Context, r *http.Request, it api.BatchItem, key string, fn func() ([]byte, error)) ([]byte, bool, error) {
	if s.ring != nil && !isForwarded(r) {
		if owner := s.ring.owner(key); owner != s.ring.self {
			body, cached, err := s.forwardItem(ctx, owner, it)
			if err == nil || !errors.Is(err, errForwardTransport) {
				s.metrics.Forwarded.inc()
				return body, cached, err
			}
			s.metrics.ForwardFailed.inc()
			s.log.Warn("item forward failed; computing locally", "owner", owner, "err", err)
		}
	}
	return s.compute(ctx, key, fn)
}
