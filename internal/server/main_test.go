package server

import (
	"os"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// TestMain runs the package under a process-default audit.Recorder, so
// every evaluation the handler tests trigger doubles as an invariant
// sweep.
func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }
