package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/greensku/gsf/internal/server/api"
)

// decodeBatch parses a /v1/batch response body.
func decodeBatch(t *testing.T, body []byte) []api.BatchResult {
	t.Helper()
	var resp api.BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("batch response: %v: %s", err, body)
	}
	return resp.Results
}

func TestBatchMixedKinds(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"items":[
		{"kind":"percore","sku":"GreenSKU-Full","ci":0.1},
		{"kind":"savings","sku":"GreenSKU-CXL"},
		{"kind":"evaluate","green":"GreenSKU-Full",` + smallWorkload + `}
	]}`
	w := post(t, s.Handler(), "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Batch-Size"); got != "3" {
		t.Errorf("X-Batch-Size = %q, want 3", got)
	}
	results := decodeBatch(t, w.Body.Bytes())
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, res := range results {
		if res.Error != nil || len(res.OK) == 0 {
			t.Fatalf("item %d: error %v, ok %q", i, res.Error, res.OK)
		}
	}

	// Each embedded body must be byte-identical to what the single
	// endpoint returns (modulo the trailing newline the single
	// endpoints append).
	singles := []struct{ path, body string }{
		{"/v1/percore", `{"sku":"GreenSKU-Full","ci":0.1}`},
		{"/v1/savings", `{"sku":"GreenSKU-CXL"}`},
		{"/v1/evaluate", `{"green":"GreenSKU-Full",` + smallWorkload + `}`},
	}
	for i, single := range singles {
		sw := post(t, s.Handler(), single.path, single.body)
		if sw.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", single.path, sw.Code, sw.Body)
		}
		want := string(json.RawMessage(sw.Body.String()[:sw.Body.Len()-1]))
		if string(results[i].OK) != want {
			t.Errorf("item %d differs from %s:\n  batch:  %s\n  single: %s",
				i, single.path, results[i].OK, want)
		}
	}
}

func TestBatchInBandErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"items":[
		{"kind":"percore","sku":"GreenSKU-Full"},
		{"kind":"percore","sku":"no-such-sku"},
		{"kind":"teleport"}
	]}`
	w := post(t, s.Handler(), "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	results := decodeBatch(t, w.Body.Bytes())
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if results[0].Error != nil || len(results[0].OK) == 0 {
		t.Errorf("good item failed: %+v", results[0])
	}
	for i := 1; i < 3; i++ {
		if len(results[i].OK) != 0 {
			t.Errorf("item %d: unexpected ok body %s", i, results[i].OK)
		}
		if results[i].Status != http.StatusBadRequest {
			t.Errorf("item %d: status %d, want 400", i, results[i].Status)
		}
		if results[i].Error == nil || results[i].Error.Message == "" {
			t.Errorf("item %d: missing error envelope", i)
		}
	}
	if got := results[1].Error.Code; got != api.CodeUnknownSKU {
		t.Errorf("item 1 code %q, want %q", got, api.CodeUnknownSKU)
	}
	if got := results[2].Error.Code; got != api.CodeBadInput {
		t.Errorf("item 2 code %q, want %q", got, api.CodeBadInput)
	}
}

func TestBatchSharesCacheWithSingleEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	single := `{"sku":"GreenSKU-Full","ci":0.1}`
	if w := post(t, s.Handler(), "/v1/percore", single); w.Code != http.StatusOK {
		t.Fatalf("single percore: status %d: %s", w.Code, w.Body)
	}

	// The batch item resolves to the same cache key, so it must be a
	// hit.
	w := post(t, s.Handler(), "/v1/batch", `{"items":[{"kind":"percore","sku":"GreenSKU-Full","ci":0.1}]}`)
	results := decodeBatch(t, w.Body.Bytes())
	if len(results) != 1 || !results[0].Cached {
		t.Fatalf("batch after identical single request not cached: %s", w.Body)
	}

	// And the other way: a fresh computation done by the batch is a
	// cache hit for the single endpoint.
	w = post(t, s.Handler(), "/v1/batch", `{"items":[{"kind":"savings","sku":"GreenSKU-Efficient"}]}`)
	if results = decodeBatch(t, w.Body.Bytes()); results[0].Error != nil {
		t.Fatalf("batch savings failed: %+v", results[0])
	}
	sw := post(t, s.Handler(), "/v1/savings", `{"sku":"GreenSKU-Efficient"}`)
	if got := sw.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("single savings after batch: X-Cache = %q, want hit", got)
	}
}

func TestBatchSizeLimits(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchItems: 2})
	if w := post(t, s.Handler(), "/v1/batch", `{"items":[]}`); w.Code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", w.Code)
	}
	over := `{"items":[{"kind":"percore","sku":"GreenSKU-Full"},{"kind":"percore","sku":"GreenSKU-CXL"},{"kind":"percore","sku":"GreenSKU-Efficient"}]}`
	if w := post(t, s.Handler(), "/v1/batch", over); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", w.Code)
	}
}

func TestBatchMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"items":[
		{"kind":"percore","sku":"GreenSKU-Full"},
		{"kind":"percore","sku":"GreenSKU-CXL"},
		{"kind":"percore","sku":"GreenSKU-Efficient"}
	]}`
	if w := post(t, s.Handler(), "/v1/batch", body); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	samples := parseOpenMetrics(t, get(t, s.Handler(), "/metrics").Body.String())
	if got := sumSamples(samples, "gsfd_batch_items_total"); got != 3 {
		t.Errorf("gsfd_batch_items_total = %v, want 3", got)
	}
	if got := sumSamples(samples, "gsfd_http_requests_total",
		`endpoint="/v1/batch"`, `batch="2-8"`, `code="200"`); got != 1 {
		t.Errorf("batch-bucketed request count = %v, want 1", got)
	}
}

func TestBatchBucket(t *testing.T) {
	cases := map[string]string{
		"": "", "bogus": "", "1": "1", "2": "2-8", "8": "2-8",
		"9": "9-64", "64": "9-64", "65": "65+", "300": "65+",
	}
	for in, want := range cases {
		if got := batchBucket(in); got != want {
			t.Errorf("batchBucket(%q) = %q, want %q", in, got, want)
		}
	}
}
