package server

// Per-client fairness for gsfd. The worker pool already answers queue
// overflow with 429 + Retry-After, but that alone lets one aggressive
// client starve everyone: its requests fill the queue and every client
// sheds equally. The limiter in this file makes shedding discriminate:
//
//   - each client (X-GSF-Client header, else the remote IP) gets a
//     token bucket refilled at RatePerSec with RateBurst capacity;
//   - requests declare a priority via X-GSF-Priority (low | normal |
//     high, default normal). Low-priority work is shed first: it needs
//     a half-full bucket and is refused outright while the worker
//     queue is under pressure. High-priority work may overdraft the
//     bucket to -burst, borrowing against the client's future refill.
//
// Shed requests get the standard error envelope with code
// "overloaded" and a Retry-After computed from the refill rate, so the
// existing backoff path in clients keeps working unchanged. Forwarded
// shard traffic is never re-limited — the client-facing replica
// already charged the client.

import (
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/greensku/gsf/internal/server/api"
)

// maxLimiterClients bounds the per-client bucket table; beyond it the
// least recently seen client is evicted (its bucket resets to full,
// which only ever errs in the client's favour).
const maxLimiterClients = 8192

type priority int

const (
	priLow priority = iota
	priNormal
	priHigh
)

// parsePriority maps the X-GSF-Priority header to a priority class;
// unknown values are normal so a typo never silently sheds traffic.
func parsePriority(v string) priority {
	switch v {
	case "low":
		return priLow
	case "high":
		return priHigh
	default:
		return priNormal
	}
}

func (p priority) String() string {
	switch p {
	case priLow:
		return "low"
	case priHigh:
		return "high"
	default:
		return "normal"
	}
}

// limiter is a table of per-client token buckets with LRU eviction.
type limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time // last refill
	seen   time.Time // last use, for LRU eviction
}

func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// admit charges one token for client at the given priority. When the
// request is shed it returns the wait, in seconds rounded up, until
// the bucket will admit it again.
func (l *limiter) admit(client string, pri priority) (bool, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= maxLimiterClients {
			l.evictOldest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
	b.last = now
	b.seen = now

	// The admission floor by priority: low-priority work keeps the
	// bucket half full for everyone else; high-priority work may
	// overdraft to -burst.
	floor := 1.0
	switch pri {
	case priLow:
		floor = 1 + l.burst/2
	case priHigh:
		floor = 1 - 2*l.burst
	}
	if b.tokens < floor {
		return false, l.retryAfter(floor - b.tokens)
	}
	b.tokens--
	return true, 0
}

// retryAfter converts a token deficit into whole seconds, minimum 1.
func (l *limiter) retryAfter(deficit float64) int {
	secs := int(math.Ceil(deficit / l.rate))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// evictOldest drops the least recently used bucket. Called with mu
// held; linear scan is fine at the eviction threshold.
func (l *limiter) evictOldest() {
	var oldest string
	var when time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.seen.Before(when) {
			oldest, when, first = k, b.seen, false
		}
	}
	delete(l.buckets, oldest)
}

// clientKey identifies the requesting client: the self-reported
// X-GSF-Client header when present (trusted deployments, fair-share by
// team), else the remote IP.
func clientKey(r *http.Request) string {
	if c := r.Header.Get(api.HeaderClient); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// limited wraps a compute handler with per-client admission control
// and priority shedding. Non-compute endpoints (health, metrics,
// catalogs) stay unlimited.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter == nil || isForwarded(r) {
			h(w, r)
			return
		}
		pri := parsePriority(r.Header.Get(api.HeaderPriority))
		// Shed low-priority work early while the worker queue is under
		// pressure: it would only deepen the backlog the 429 path is
		// trying to drain.
		if pri == priLow && s.cfg.QueueDepth > 0 && 2*s.pool.depth() >= s.cfg.QueueDepth {
			s.metrics.RateLimited.with(pri.String()).inc()
			s.writeError(w, &codedError{code: api.CodeOverloaded, retryAfter: 1,
				err: fmt.Errorf("%w: low-priority request shed under queue pressure", errRateLimited)})
			return
		}
		ok, retry := s.limiter.admit(clientKey(r), pri)
		if !ok {
			s.metrics.RateLimited.with(pri.String()).inc()
			s.writeError(w, &codedError{code: api.CodeOverloaded, retryAfter: retry,
				err: fmt.Errorf("%w: client %q exceeded %g requests/s", errRateLimited, clientKey(r), s.limiter.rate)})
			return
		}
		h(w, r)
	}
}

// retryAfterFor derives the Retry-After value for a 429: the limiter's
// computed wait when present, else the pool's standard one-second
// backoff.
func retryAfterFor(err error) string {
	var ce *codedError
	if errors.As(err, &ce) && ce.retryAfter > 0 {
		return strconv.Itoa(ce.retryAfter)
	}
	return "1"
}
