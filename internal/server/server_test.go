package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/greensku/gsf"
	"github.com/greensku/gsf/internal/server/api"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func post(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// smallWorkload is an evaluate body cheap enough for unit tests.
const smallWorkload = `"workload":{"name":"t","seed":7,"arrivals_per_hour":3,"horizon_hours":48}`

func TestPerCoreEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s.Handler(), "/v1/percore", `{"sku":"GreenSKU-Full","ci":0.1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Content-Type"); got != "application/json" {
		t.Errorf("content type %q", got)
	}
	var resp struct {
		Dataset string `json:"dataset"`
		SKU     string `json:"sku"`
		Total   struct {
			Value float64 `json:"value"`
			Unit  string  `json:"unit"`
		} `json:"total_per_core"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dataset != "open-source" || resp.SKU != "GreenSKU-Full" {
		t.Errorf("unexpected identity: %+v", resp)
	}
	if resp.Total.Unit != "kgCO2e" {
		t.Errorf("total unit %q, want kgCO2e", resp.Total.Unit)
	}
	// Must match the library answer exactly.
	pc, err := gsf.PerCoreEmissions(gsf.OpenSourceData(), gsf.GreenSKUFull(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := resp.Total.Value, float64(pc.Total()); got != want {
		t.Errorf("total %v, want %v", got, want)
	}
}

func TestSavingsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s.Handler(), "/v1/savings", `{"sku":"GreenSKU-Full"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp api.SavingsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	sv, err := gsf.PerCoreSavings(gsf.OpenSourceData(), gsf.GreenSKUFull(), gsf.BaselineGen3(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Total != sv.Total || resp.Baseline != "Baseline" {
		t.Errorf("got %+v, want total %v vs Baseline", resp, sv.Total)
	}
	if resp.Total <= 0 {
		t.Errorf("GreenSKU-Full should save carbon, got %v", resp.Total)
	}
}

func TestEvaluateEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s.Handler(), "/v1/evaluate",
		`{"green":"GreenSKU-Full","baseline":"Baseline",`+smallWorkload+`}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Workload struct {
			VMs int `json:"vms"`
		} `json:"workload"`
		Cluster struct {
			GreenServers int `json:"green_servers"`
		} `json:"cluster"`
		ClusterSavings float64 `json:"cluster_savings"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload.VMs == 0 {
		t.Error("evaluate reported an empty workload")
	}
	if resp.Cluster.GreenServers == 0 {
		t.Error("expected some GreenSKU servers in the mix")
	}
	if resp.ClusterSavings <= 0 {
		t.Errorf("cluster savings %v, want > 0", resp.ClusterSavings)
	}
}

func TestCatalogEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})

	w := get(t, s.Handler(), "/v1/skus")
	if w.Code != http.StatusOK {
		t.Fatalf("skus status %d", w.Code)
	}
	var skus map[string][]api.SKUInfo
	if err := json.Unmarshal(w.Body.Bytes(), &skus); err != nil {
		t.Fatal(err)
	}
	if len(skus["skus"]) != 7 {
		t.Errorf("got %d SKUs, want 7", len(skus["skus"]))
	}
	names := map[string]bool{}
	for _, sku := range skus["skus"] {
		names[sku.Name] = true
	}
	for _, want := range []string{"Baseline", "GreenSKU-Full", "Gen1", "Gen2"} {
		if !names[want] {
			t.Errorf("SKU catalog missing %q", want)
		}
	}

	w = get(t, s.Handler(), "/v1/datasets")
	if w.Code != http.StatusOK {
		t.Fatalf("datasets status %d", w.Code)
	}
	var ds map[string][]api.DatasetInfo
	if err := json.Unmarshal(w.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds["datasets"]) != 3 || ds["datasets"][0].Name != "open-source" {
		t.Errorf("unexpected dataset catalog: %+v", ds)
	}
}

func TestClientErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"malformed JSON", "/v1/percore", `{"sku":`},
		{"unknown field", "/v1/percore", `{"skew":"Baseline"}`},
		{"unknown SKU", "/v1/percore", `{"sku":"MegaSKU"}`},
		{"unknown dataset", "/v1/percore", `{"sku":"Baseline","dataset":"secret"}`},
		{"negative CI", "/v1/percore", `{"sku":"Baseline","ci":-1}`},
		{"unknown baseline", "/v1/savings", `{"sku":"Baseline","baseline":"nope"}`},
		{"unknown green", "/v1/evaluate", `{"green":"nope",` + smallWorkload + `}`},
		{"oversized workload", "/v1/evaluate", `{"workload":{"arrivals_per_hour":1e6,"horizon_hours":1e6}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, s.Handler(), tc.path, tc.body)
			if w.Code != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (body %s)", w.Code, w.Body)
			}
			var e api.ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil ||
				e.Error.Code == "" || e.Error.Message == "" {
				t.Errorf("error body %q not a coded envelope", w.Body)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	w := get(t, s.Handler(), "/v1/percore")
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST endpoint: status %d, want 405", w.Code)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := get(t, s.Handler(), "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz %d", w.Code)
	}
	if w := get(t, s.Handler(), "/readyz"); w.Code != http.StatusOK {
		t.Errorf("readyz %d", w.Code)
	}
	s.SetReady(false)
	if w := get(t, s.Handler(), "/readyz"); w.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz %d, want 503", w.Code)
	}
	if w := get(t, s.Handler(), "/healthz"); w.Code != http.StatusOK {
		t.Errorf("healthz during drain %d, want 200", w.Code)
	}
}

func TestCacheHitReturnsIdenticalBytes(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"sku":"GreenSKU-CXL","ci":0.25}`
	first := post(t, s.Handler(), "/v1/percore", body)
	if first.Code != http.StatusOK {
		t.Fatalf("first status %d", first.Code)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first X-Cache %q, want miss", got)
	}
	second := post(t, s.Handler(), "/v1/percore", body)
	if second.Code != http.StatusOK {
		t.Fatalf("second status %d", second.Code)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second X-Cache %q, want hit", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("cache hit returned different bytes")
	}
	if s.metrics.CacheHits.value() == 0 {
		t.Error("cache hit counter is zero")
	}
	// An explicit CI equal to the dataset default shares the implicit
	// default's cache entry (canonical key).
	w := post(t, s.Handler(), "/v1/percore", `{"sku":"Baseline"}`)
	if w.Code != http.StatusOK {
		t.Fatal(w.Code)
	}
	w = post(t, s.Handler(), "/v1/percore", `{"sku":"Baseline","ci":0.1}`)
	if got := w.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("explicit-default CI X-Cache %q, want hit", got)
	}
}

func TestQueueFullSheds429(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	s.testHook = func() {
		entered <- struct{}{}
		<-release
	}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	codes := make(chan int, 2)
	do := func(sku string) {
		w := post(t, s.Handler(), "/v1/percore", fmt.Sprintf(`{"sku":%q}`, sku))
		codes <- w.Code
	}

	go do("GreenSKU-Full") // occupies the only worker
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached a worker")
	}
	go do("Baseline") // sits in the queue
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue full: a third distinct request must be shed.
	w := post(t, s.Handler(), "/v1/percore", `{"sku":"Gen1"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.metrics.Shed.value() == 0 {
		t.Error("shed counter is zero")
	}

	// But an identical in-flight request coalesces instead of
	// shedding. The leader is still blocked, so the duplicate cannot
	// be served from the cache; it must join the in-flight call.
	go do("GreenSKU-Full")
	for s.metrics.Deduplicated.value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("identical request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}

	close(release)
	for i := 0; i < 3; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Errorf("held request finished with %d", code)
		}
	}
}

func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, RequestTimeout: 30 * time.Millisecond})
	release := make(chan struct{})
	s.testHook = func() { <-release }
	defer close(release)

	w := post(t, s.Handler(), "/v1/percore", `{"sku":"Baseline"}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503 on deadline", w.Code)
	}
}

// --- OpenMetrics validation ------------------------------------------

var (
	omComment = regexp.MustCompile(`^# (TYPE|HELP|UNIT) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	omSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (\S+)$`)
	omLabels  = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$`)
)

// parseOpenMetrics validates the scrape body against the OpenMetrics
// text format and returns every sample as "name{labels}" -> value.
func parseOpenMetrics(t *testing.T, body string) map[string]float64 {
	t.Helper()
	lines := strings.Split(strings.TrimRight(body, "\n"), "\n")
	if len(lines) == 0 || lines[len(lines)-1] != "# EOF" {
		t.Fatalf("OpenMetrics body must end with # EOF, got %q", lines[len(lines)-1])
	}
	types := map[string]string{}
	samples := map[string]float64{}
	for _, line := range lines[:len(lines)-1] {
		if strings.HasPrefix(line, "#") {
			if !omComment.MatchString(line) {
				t.Errorf("bad metadata line %q", line)
			}
			if fields := strings.Fields(line); fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		m := omSample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("bad sample line %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if labels != "" && !omLabels.MatchString(labels) {
			t.Errorf("bad label set %q in %q", labels, line)
		}
		if value != "+Inf" && value != "-Inf" && value != "NaN" {
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				t.Errorf("unparsable value in %q: %v", line, err)
			}
		}
		family := name
		for _, suffix := range []string{"_total", "_bucket", "_count", "_sum"} {
			family = strings.TrimSuffix(family, suffix)
		}
		if _, ok := types[family]; !ok {
			t.Errorf("sample %q has no TYPE metadata for family %q", line, family)
		}
		samples[name+labels] += mustFloat(value)
	}
	return samples
}

func mustFloat(s string) float64 {
	v, _ := strconv.ParseFloat(s, 64)
	return v
}

// sumSamples adds every sample whose key matches all substrings.
func sumSamples(samples map[string]float64, substrings ...string) float64 {
	var total float64
outer:
	for key, v := range samples {
		for _, sub := range substrings {
			if !strings.Contains(key, sub) {
				continue outer
			}
		}
		total += v
	}
	return total
}

func TestMetricsEndpointValidOpenMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	post(t, s.Handler(), "/v1/percore", `{"sku":"Baseline"}`)
	w := get(t, s.Handler(), "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if got := w.Header().Get("Content-Type"); got != OpenMetricsContentType {
		t.Errorf("content type %q", got)
	}
	samples := parseOpenMetrics(t, w.Body.String())
	if sumSamples(samples, "gsfd_http_requests_total") == 0 {
		t.Error("no request samples after a request")
	}
	if sumSamples(samples, "gsfd_http_request_seconds_count") == 0 {
		t.Error("no latency samples after a request")
	}
}

// TestConcurrentClients drives 32 concurrent clients through cached and
// uncached paths of every endpoint (run under -race), then checks the
// scrape is valid OpenMetrics with nonzero request and cache-hit
// counters.
func TestConcurrentClients(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4, QueueDepth: 1024})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Prime the shared keys so the concurrent phase sees real cache
	// hits, not just singleflight coalescing.
	mustPost := func(path, body string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	mustPost("/v1/percore", `{"sku":"GreenSKU-Full"}`)
	mustPost("/v1/evaluate", `{`+smallWorkload+`}`)

	const clients = 32
	var wg sync.WaitGroup
	errs := make(chan error, clients*4)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			requests := []struct {
				method, path, body string
			}{
				// Cached: identical across all clients.
				{http.MethodPost, "/v1/percore", `{"sku":"GreenSKU-Full"}`},
				// Uncached: distinct CI per client.
				{http.MethodPost, "/v1/percore",
					fmt.Sprintf(`{"sku":"GreenSKU-CXL","ci":%g}`, 0.05+float64(i)*0.01)},
				{http.MethodPost, "/v1/savings",
					fmt.Sprintf(`{"sku":"GreenSKU-Efficient","ci":%g}`, 0.05+float64(i%4)*0.1)},
				// Evaluate: half share the primed key, half split
				// across two more seeds.
				{http.MethodPost, "/v1/evaluate", func() string {
					if i%2 == 0 {
						return `{` + smallWorkload + `}`
					}
					return fmt.Sprintf(`{"workload":{"name":"t","seed":%d,"arrivals_per_hour":3,"horizon_hours":48}}`, 100+i%2)
				}()},
				{http.MethodGet, "/v1/skus", ""},
			}
			for _, r := range requests {
				var resp *http.Response
				var err error
				if r.method == http.MethodGet {
					resp, err = http.Get(ts.URL + r.path)
				} else {
					resp, err = http.Post(ts.URL+r.path, "application/json", strings.NewReader(r.body))
				}
				if err != nil {
					errs <- err
					continue
				}
				if resp.StatusCode != http.StatusOK {
					b, _ := io.ReadAll(resp.Body)
					errs <- fmt.Errorf("%s %s: %d (%s)", r.method, r.path, resp.StatusCode, b)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseOpenMetrics(t, string(raw))
	if n := sumSamples(samples, "gsfd_http_requests_total", `code="200"`); n < clients*4 {
		t.Errorf("request counter %v, want >= %d", n, clients*4)
	}
	if n := sumSamples(samples, "gsfd_cache_hits_total"); n == 0 {
		t.Error("no cache hits after concurrent identical requests")
	}
	if n := sumSamples(samples, "gsfd_http_request_seconds_count"); n == 0 {
		t.Error("no latency observations")
	}
}
