package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsSubmittedWork(t *testing.T) {
	p := newPool(4, 16)
	defer p.close()
	var ran atomic.Int64
	done := make(chan struct{}, 32)
	for i := 0; i < 32; i++ {
		err := p.submit(context.Background(), func() {
			ran.Add(1)
			done <- struct{}{}
		})
		if err != nil {
			// Queue can legitimately fill; drain one completion and retry.
			<-done
			if err := p.submit(context.Background(), func() {
				ran.Add(1)
				done <- struct{}{}
			}); err != nil {
				t.Fatalf("resubmit failed: %v", err)
			}
		}
	}
	deadline := time.After(5 * time.Second)
	for ran.Load() < 32 {
		select {
		case <-deadline:
			t.Fatalf("only %d/32 tasks ran", ran.Load())
		case <-time.After(time.Millisecond):
		}
	}
}

func TestPoolShedsWhenFull(t *testing.T) {
	p := newPool(1, 1)
	defer p.close()
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})

	if err := p.submit(context.Background(), func() {
		close(started)
		<-release
	}); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy
	if err := p.submit(context.Background(), func() {}); err != nil {
		t.Fatalf("queue slot should accept: %v", err)
	}
	err := p.submit(context.Background(), func() {})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
	if p.depth() != 1 {
		t.Errorf("depth %d, want 1", p.depth())
	}
	if p.busyWorkers() != 1 {
		t.Errorf("busy %d, want 1", p.busyWorkers())
	}
	if u := p.utilization(); u != 1 {
		t.Errorf("utilization %v, want 1", u)
	}
}

func TestPoolRejectsDoneContext(t *testing.T) {
	p := newPool(1, 1)
	defer p.close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.submit(ctx, func() {}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}

func TestPoolCloseDrainsQueue(t *testing.T) {
	p := newPool(1, 8)
	var ran atomic.Int64
	for i := 0; i < 5; i++ {
		if err := p.submit(context.Background(), func() {
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	p.close()
	if ran.Load() != 5 {
		t.Errorf("close drained %d/5 tasks", ran.Load())
	}
}

func TestFlightGroupDedups(t *testing.T) {
	g := newFlightGroup()
	c1, leader1 := g.join("k")
	if !leader1 {
		t.Fatal("first join should lead")
	}
	c2, leader2 := g.join("k")
	if leader2 {
		t.Fatal("second join should follow")
	}
	if c1 != c2 {
		t.Fatal("joiners got different calls")
	}
	go g.finish("k", c1, []byte("R"), nil)
	body, err := c2.wait(context.Background())
	if err != nil || string(body) != "R" {
		t.Fatalf("wait got (%q, %v)", body, err)
	}
	// The key is retired after finish: a new join leads again.
	if _, leader := g.join("k"); !leader {
		t.Error("key not retired after finish")
	}
}

func TestFlightWaitHonorsContext(t *testing.T) {
	g := newFlightGroup()
	c, _ := g.join("k")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	g.finish("k", c, nil, nil) // leave no dangling call
}
