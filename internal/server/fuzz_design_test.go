package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/greensku/gsf/internal/server/api"
)

// FuzzDesignRequest throws arbitrary bytes at POST /v1/design. The
// handler must never panic, must answer only with the statuses the
// endpoint documents (200, 400 bad request, 429 shed, 503 deadline),
// and every 200 body must decode as an api.DesignResponse with a
// non-empty frontier and internally consistent verdicts.
func FuzzDesignRequest(f *testing.F) {
	// One server for the whole run over a tiny pinned space: the profile
	// memo makes repeated searches nearly free, and any cpus/max_gpus
	// filter the fuzzer discovers still lands inside it.
	cfg := tinyDesignConfig()
	cfg.RequestTimeout = 10 * time.Second
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)
	h := s.Handler()

	f.Add([]byte(`{}`))
	f.Add([]byte(`{"include_paper":true}`))
	f.Add([]byte(`{"cpus":["Bergamo"],"max_gpus":2,"ci":0.2}`))
	f.Add([]byte(`{"cpus":["Pentium"]}`))
	f.Add([]byte(`{"dataset":"worked-example"}`))
	f.Add([]byte(`{"max_gpus":-3}`))
	f.Add([]byte(`{"ci":-1}`))
	f.Add([]byte(`{`))
	f.Add([]byte("\x00\xff{}"))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/design", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		switch w.Code {
		case http.StatusOK:
			var resp api.DesignResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body does not decode as api.DesignResponse: %v\n%s", err, w.Body.Bytes())
			}
			if len(resp.Frontier) == 0 {
				t.Fatalf("200 with an empty frontier:\n%s", w.Body.Bytes())
			}
			if resp.Candidates < len(resp.Frontier) {
				t.Fatalf("frontier of %d points from %d candidates", len(resp.Frontier), resp.Candidates)
			}
			onFrontier := map[string]bool{}
			for _, p := range resp.Frontier {
				onFrontier[p.SKU] = true
			}
			for _, v := range resp.Verdicts {
				if v.OnFrontier == (v.DominatedBy != "") {
					t.Fatalf("verdict %s: on_frontier=%v with dominated_by=%q",
						v.Point.SKU, v.OnFrontier, v.DominatedBy)
				}
				if v.DominatedBy != "" && !onFrontier[v.DominatedBy] {
					t.Fatalf("verdict %s dominated by %q, not a frontier point", v.Point.SKU, v.DominatedBy)
				}
			}
		case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Documented rejections.
		default:
			t.Fatalf("undocumented status %d for body %q: %s", w.Code, body, w.Body.Bytes())
		}
	})
}
