package server

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, 0)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	if _, ok := c.get("a"); !ok { // promotes a
		t.Fatal("a missing")
	}
	c.put("c", []byte("C")) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || !bytes.Equal(v, []byte("A")) {
		t.Error("a should have survived")
	}
	if v, ok := c.get("c"); !ok || !bytes.Equal(v, []byte("C")) {
		t.Error("c should be present")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newResultCache(8, time.Minute)
	c.now = func() time.Time { return now }

	c.put("k", []byte("V"))
	if _, ok := c.get("k"); !ok {
		t.Fatal("fresh entry missing")
	}
	now = now.Add(59 * time.Second)
	if _, ok := c.get("k"); !ok {
		t.Error("entry expired early")
	}
	now = now.Add(2 * time.Second)
	if _, ok := c.get("k"); ok {
		t.Error("entry should have expired")
	}
	if c.len() != 0 {
		t.Errorf("expired entry not collected: len %d", c.len())
	}
}

func TestCacheOverwriteRefreshes(t *testing.T) {
	now := time.Unix(1000, 0)
	c := newResultCache(8, time.Minute)
	c.now = func() time.Time { return now }

	c.put("k", []byte("old"))
	now = now.Add(50 * time.Second)
	c.put("k", []byte("new"))
	now = now.Add(30 * time.Second) // 80s after first put, 30s after second
	v, ok := c.get("k")
	if !ok || !bytes.Equal(v, []byte("new")) {
		t.Errorf("overwritten entry: %q ok=%v", v, ok)
	}
	if c.len() != 1 {
		t.Errorf("len %d, want 1", c.len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(0, 0)
	c.put("k", []byte("V"))
	if _, ok := c.get("k"); ok {
		t.Error("disabled cache stored an entry")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newResultCache(16, time.Minute)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.put(key, []byte(key))
				if v, ok := c.get(key); ok && !bytes.Equal(v, []byte(key)) {
					t.Errorf("corrupt read for %s: %q", key, v)
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
