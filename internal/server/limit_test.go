package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/greensku/gsf/internal/server/api"
)

func TestLimiterTokenBucket(t *testing.T) {
	l := newLimiter(2, 4) // 2 tokens/s, burst 4
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	// A fresh client spends its burst, then is refused with a usable
	// Retry-After.
	for i := 0; i < 4; i++ {
		if ok, _ := l.admit("alice", priNormal); !ok {
			t.Fatalf("request %d refused within burst", i)
		}
	}
	ok, retry := l.admit("alice", priNormal)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry < 1 {
		t.Fatalf("Retry-After %d, want >= 1", retry)
	}

	// Other clients are unaffected.
	if ok, _ := l.admit("bob", priNormal); !ok {
		t.Fatal("second client refused by first client's exhaustion")
	}

	// Refill: after one second, two more tokens.
	now = now.Add(time.Second)
	for i := 0; i < 2; i++ {
		if ok, _ := l.admit("alice", priNormal); !ok {
			t.Fatalf("refilled request %d refused", i)
		}
	}
	if ok, _ := l.admit("alice", priNormal); ok {
		t.Fatal("third request after a 2-token refill admitted")
	}
}

func TestLimiterPriorities(t *testing.T) {
	l := newLimiter(1, 4)
	now := time.Unix(0, 0)
	l.now = func() time.Time { return now }

	// Low priority must leave the bucket half full for everyone else:
	// with burst 4 and admission floor 1+burst/2 = 3, it gets exactly
	// two requests (4 -> 2 tokens) before refusal.
	lowAdmits := 0
	for i := 0; i < 10; i++ {
		ok, _ := l.admit("c", priLow)
		if !ok {
			break
		}
		lowAdmits++
	}
	if lowAdmits != 2 {
		t.Fatalf("low priority admitted %d times on a burst-4 bucket, want 2", lowAdmits)
	}
	// Normal priority still gets through on the same bucket (2 tokens
	// remain), then exhausts it.
	for i := 0; i < 2; i++ {
		if ok, _ := l.admit("c", priNormal); !ok {
			t.Fatalf("normal request %d refused with %v tokens", i, l.buckets["c"].tokens)
		}
	}
	if ok, _ := l.admit("c", priNormal); ok {
		t.Fatal("normal request admitted on an empty bucket")
	}

	// High priority overdrafts an exhausted bucket, but not forever.
	overdrafts := 0
	for i := 0; i < 50; i++ {
		ok, _ := l.admit("c", priHigh)
		if !ok {
			break
		}
		overdrafts++
	}
	if overdrafts == 0 {
		t.Fatal("high priority never overdrafted an empty bucket")
	}
	if overdrafts >= 50 {
		t.Fatal("high-priority overdraft is unbounded")
	}
}

func TestLimiterEviction(t *testing.T) {
	l := newLimiter(1, 1)
	base := time.Unix(0, 0)
	step := 0
	l.now = func() time.Time { step++; return base.Add(time.Duration(step) * time.Millisecond) }
	for i := 0; i <= maxLimiterClients; i++ {
		l.admit("client-"+strconv.Itoa(i), priNormal)
	}
	if len(l.buckets) != maxLimiterClients {
		t.Fatalf("bucket table %d entries, want capped at %d", len(l.buckets), maxLimiterClients)
	}
	if _, evicted := l.buckets["client-0"]; evicted {
		t.Error("oldest client not the one evicted")
	}
}

func TestRateLimitEndpoint(t *testing.T) {
	s := newTestServer(t, Config{RatePerSec: 0.001, RateBurst: 2})
	body := `{"sku":"GreenSKU-Full","ci":0.1}`
	hdr := func(r *http.Request) { r.Header.Set(api.HeaderClient, "team-a") }

	postAs := func(client, pri string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/percore", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if client != "" {
			req.Header.Set(api.HeaderClient, client)
		}
		if pri != "" {
			req.Header.Set(api.HeaderPriority, pri)
		}
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}
	_ = hdr

	// Burst of 2, then 429 with the envelope and Retry-After.
	for i := 0; i < 2; i++ {
		if w := postAs("team-a", ""); w.Code != http.StatusOK {
			t.Fatalf("request %d status %d: %s", i, w.Code, w.Body)
		}
	}
	w := postAs("team-a", "")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Code != api.CodeOverloaded {
		t.Errorf("429 body %s, want overloaded envelope", w.Body)
	}
	retry, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || retry < 1 {
		t.Errorf("Retry-After %q not a positive integer", w.Header().Get("Retry-After"))
	}

	// High priority still admitted for the exhausted client; a second
	// client is unaffected.
	if w := postAs("team-a", "high"); w.Code != http.StatusOK {
		t.Errorf("high-priority status %d, want 200 via overdraft", w.Code)
	}
	if w := postAs("team-b", ""); w.Code != http.StatusOK {
		t.Errorf("other client status %d, want 200", w.Code)
	}

	samples := parseOpenMetrics(t, get(t, s.Handler(), "/metrics").Body.String())
	if got := sumSamples(samples, "gsfd_rate_limited_total", `priority="normal"`); got == 0 {
		t.Error("no rate-limited samples for priority=normal")
	}
}

func TestLowPriorityShedsUnderQueuePressure(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 2, RatePerSec: 1000, RateBurst: 1000})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	s.testHook = func() {
		entered <- struct{}{}
		<-release
	}
	// Unblock the workers and wait for the in-flight requests before the
	// server's cleanup closes the pool under them.
	var wg sync.WaitGroup
	t.Cleanup(func() { close(release); wg.Wait() })

	codes := make(chan int, 8)
	do := func(ci string) {
		defer wg.Done()
		req := httptest.NewRequest(http.MethodPost, "/v1/percore",
			strings.NewReader(`{"sku":"Baseline","ci":`+ci+`}`))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		codes <- w.Code
	}
	wg.Add(2)
	go do("0.11") // occupies the worker
	<-entered
	go do("0.12") // queued
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is half full (1 of 2): low priority must be shed even though
	// its token bucket is full, normal priority still queues.
	req := httptest.NewRequest(http.MethodPost, "/v1/percore",
		strings.NewReader(`{"sku":"Baseline","ci":0.13}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderPriority, "low")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("low-priority status %d under queue pressure, want 429", w.Code)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error.Code != api.CodeOverloaded {
		t.Errorf("shed body %s, want overloaded envelope", w.Body)
	}
}

func TestForwardedRequestsBypassLimiter(t *testing.T) {
	s := newTestServer(t, Config{RatePerSec: 0.001, RateBurst: 1})
	body := `{"sku":"GreenSKU-Full","ci":0.1}`
	// Exhaust the bucket.
	if w := post(t, s.Handler(), "/v1/percore", body); w.Code != http.StatusOK {
		t.Fatalf("first request status %d", w.Code)
	}
	if w := post(t, s.Handler(), "/v1/percore", body); w.Code != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", w.Code)
	}
	// A forwarded request from a peer replica is not re-limited.
	req := httptest.NewRequest(http.MethodPost, "/v1/percore", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.HeaderForwarded, "http://peer:1")
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Errorf("forwarded request status %d, want 200 (limiter bypassed)", w.Code)
	}
}

func TestParsePriority(t *testing.T) {
	cases := map[string]priority{
		"low": priLow, "normal": priNormal, "high": priHigh,
		"": priNormal, "urgent": priNormal,
	}
	for in, want := range cases {
		if got := parsePriority(in); got != want {
			t.Errorf("parsePriority(%q) = %v, want %v", in, got, want)
		}
	}
}
