// OpenMetrics instrumentation for gsfd, hand-rolled on the standard
// library. The registry knows three instrument kinds — monotonic
// counters, histograms, and gauges read at scrape time — and renders
// them in the OpenMetrics text format:
//
//	# TYPE gsfd_http_requests counter
//	# HELP gsfd_http_requests Completed HTTP requests.
//	gsfd_http_requests_total{code="200",endpoint="/v1/percore"} 12
//	...
//	# EOF
//
// Rendering is deterministic: families appear in registration order and
// label sets are sorted, so scrapes diff cleanly.
package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// OpenMetricsContentType is the content type of a /metrics response
// (OpenMetrics text format 1.0.0).
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// counter is a monotonically increasing integer.
type counter struct {
	v atomic.Uint64
}

func (c *counter) inc()          { c.v.Add(1) }
func (c *counter) add(n uint64)  { c.v.Add(n) }
func (c *counter) value() uint64 { return c.v.Load() }

// counterVec is a family of counters keyed by label values.
type counterVec struct {
	name   string
	help   string
	labels []string // label names, in declaration order

	mu   sync.Mutex
	vals map[string]*counter // joined label values -> counter
}

func newCounterVec(name, help string, labels ...string) *counterVec {
	return &counterVec{name: name, help: help, labels: labels, vals: map[string]*counter{}}
}

// with returns the counter for the given label values (one per label
// name, in order), creating it on first use.
func (v *counterVec) with(labelValues ...string) *counter {
	key := strings.Join(labelValues, "\x00")
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.vals[key]
	if !ok {
		c = &counter{}
		v.vals[key] = c
	}
	return c
}

// defaultBuckets are latency histogram bucket bounds in seconds, spaced
// for a service whose cheap queries take microseconds and whose full
// evaluations take seconds.
var defaultBuckets = []float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30}

// histogram is a cumulative-bucket latency histogram.
type histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending; +Inf implied
	counts  []uint64  // non-cumulative per-bucket counts; len(bounds)+1
	sum     float64
	samples uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
}

// histogramVec is a family of histograms keyed by one label.
type histogramVec struct {
	name   string
	help   string
	label  string
	bounds []float64

	mu   sync.Mutex
	vals map[string]*histogram
}

func newHistogramVec(name, help, label string, bounds []float64) *histogramVec {
	return &histogramVec{name: name, help: help, label: label, bounds: bounds, vals: map[string]*histogram{}}
}

func (v *histogramVec) with(labelValue string) *histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.vals[labelValue]
	if !ok {
		h = newHistogram(v.bounds)
		v.vals[labelValue] = h
	}
	return h
}

// gauge is an instantaneous value sampled at scrape time.
type gauge struct {
	name string
	help string
	fn   func() float64
}

// Metrics is gsfd's instrument registry.
type Metrics struct {
	// Requests counts completed HTTP requests by endpoint, status
	// code, and batch-size bucket (empty for non-batch requests).
	Requests *counterVec
	// Latency tracks request latency in seconds per endpoint.
	Latency *histogramVec
	// CacheHits / CacheMisses count result-cache lookups on the
	// compute endpoints.
	CacheHits   counter
	CacheMisses counter
	// Deduplicated counts requests that piggybacked on an identical
	// in-flight evaluation instead of enqueueing their own.
	Deduplicated counter
	// Shed counts requests rejected with 429 because the queue was
	// full.
	Shed counter
	// BatchItems counts individual items received across /v1/batch
	// requests.
	BatchItems counter
	// SweepPoints counts carbon-intensity points received across
	// /v1/sweep requests.
	SweepPoints counter
	// StreamedResults counts per-item records emitted on streamed
	// (NDJSON/SSE) responses.
	StreamedResults counter
	// Forwarded / ForwardFailed count shard forwards to peer replicas
	// and forwards that fell back to local computation.
	Forwarded     counter
	ForwardFailed counter
	// RateLimited counts requests shed by the per-client limiter, by
	// priority class.
	RateLimited *counterVec

	gauges []gauge
}

// NewMetrics builds the registry. The gauge callbacks sample live
// server state (queue depth, busy workers) at scrape time.
func NewMetrics() *Metrics {
	return &Metrics{
		Requests: newCounterVec("gsfd_http_requests",
			"Completed HTTP requests.", "endpoint", "code", "batch"),
		Latency: newHistogramVec("gsfd_http_request_seconds",
			"HTTP request latency in seconds.", "endpoint", defaultBuckets),
		RateLimited: newCounterVec("gsfd_rate_limited",
			"Requests shed by the per-client rate limiter.", "priority"),
	}
}

// RegisterGauge adds a gauge sampled at every scrape.
func (m *Metrics) RegisterGauge(name, help string, fn func() float64) {
	m.gauges = append(m.gauges, gauge{name: name, help: help, fn: fn})
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeLabel escapes a label value per the OpenMetrics ABNF.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WriteOpenMetrics renders every family in the OpenMetrics text format,
// terminated by the mandatory "# EOF" line.
func (m *Metrics) WriteOpenMetrics(w io.Writer) error {
	if err := m.writeCounterVec(w, m.Requests); err != nil {
		return err
	}
	if err := m.writeHistogramVec(w, m.Latency); err != nil {
		return err
	}
	if err := m.writeCounterVec(w, m.RateLimited); err != nil {
		return err
	}
	scalars := []struct {
		name, help string
		c          *counter
	}{
		{"gsfd_cache_hits", "Result-cache hits on compute endpoints.", &m.CacheHits},
		{"gsfd_cache_misses", "Result-cache misses on compute endpoints.", &m.CacheMisses},
		{"gsfd_dedup_requests", "Requests coalesced onto an identical in-flight evaluation.", &m.Deduplicated},
		{"gsfd_shed_requests", "Requests rejected with 429 because the queue was full.", &m.Shed},
		{"gsfd_batch_items", "Items received across /v1/batch requests.", &m.BatchItems},
		{"gsfd_sweep_points", "Carbon-intensity points received across /v1/sweep requests.", &m.SweepPoints},
		{"gsfd_streamed_results", "Per-item records emitted on streamed responses.", &m.StreamedResults},
		{"gsfd_shard_forwarded", "Requests forwarded to the shard-owning replica.", &m.Forwarded},
		{"gsfd_shard_forward_failed", "Shard forwards that fell back to local computation.", &m.ForwardFailed},
	}
	for _, s := range scalars {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n# HELP %s %s\n%s_total %d\n",
			s.name, s.name, s.help, s.name, s.c.value()); err != nil {
			return err
		}
	}
	for _, g := range m.gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n# HELP %s %s\n%s %s\n",
			g.name, g.name, g.help, g.name, formatFloat(g.fn())); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (m *Metrics) writeCounterVec(w io.Writer, v *counterVec) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s counter\n# HELP %s %s\n", v.name, v.name, v.help); err != nil {
		return err
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		parts := strings.Split(k, "\x00")
		labels := make([]string, len(v.labels))
		for i, name := range v.labels {
			labels[i] = fmt.Sprintf("%s=%q", name, escapeLabel(parts[i]))
		}
		sort.Strings(labels)
		lines = append(lines, fmt.Sprintf("%s_total{%s} %d",
			v.name, strings.Join(labels, ","), v.vals[k].value()))
	}
	v.mu.Unlock()
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func (m *Metrics) writeHistogramVec(w io.Writer, v *histogramVec) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n# HELP %s %s\n", v.name, v.name, v.help); err != nil {
		return err
	}
	v.mu.Lock()
	keys := make([]string, 0, len(v.vals))
	for k := range v.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var lines []string
	for _, k := range keys {
		h := v.vals[k]
		label := fmt.Sprintf("%s=%q", v.label, escapeLabel(k))
		h.mu.Lock()
		cum := uint64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i]
			lines = append(lines, fmt.Sprintf("%s_bucket{%s,le=%q} %d",
				v.name, label, formatFloat(bound), cum))
		}
		cum += h.counts[len(h.bounds)]
		lines = append(lines,
			fmt.Sprintf("%s_bucket{%s,le=\"+Inf\"} %d", v.name, label, cum),
			fmt.Sprintf("%s_count{%s} %d", v.name, label, h.samples),
			fmt.Sprintf("%s_sum{%s} %s", v.name, label, formatFloat(h.sum)))
		h.mu.Unlock()
	}
	v.mu.Unlock()
	for _, line := range lines {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// handler serves the registry as an OpenMetrics scrape endpoint.
func (m *Metrics) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		if err := m.WriteOpenMetrics(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", OpenMetricsContentType)
		io.WriteString(w, b.String())
	})
}
