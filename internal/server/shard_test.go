package server

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRingMembershipAndBalance(t *testing.T) {
	if r, err := newRing("http://a:1", []string{"http://a:1/", " http://a:1"}, time.Second); err != nil || r != nil {
		t.Fatalf("self-only membership should disable sharding, got (%v, %v)", r, err)
	}
	if _, err := newRing("", []string{"http://b:1"}, time.Second); err == nil {
		t.Fatal("peers without a self URL must be rejected")
	}

	r, err := newRing("http://a:1", []string{"http://b:1", "http://c:1"}, time.Second)
	if err != nil || r == nil {
		t.Fatalf("newRing: (%v, %v)", r, err)
	}
	if r.size() != 3 {
		t.Fatalf("size %d, want 3", r.size())
	}

	// Ownership must be deterministic and roughly balanced.
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		key := cacheKey("percore", fmt.Sprintf("key-%d", i))
		owner := r.owner(key)
		if again := r.owner(key); again != owner {
			t.Fatalf("owner(%q) not deterministic: %q then %q", key, owner, again)
		}
		counts[owner]++
	}
	if len(counts) != 3 {
		t.Fatalf("keys landed on %d replicas, want 3: %v", len(counts), counts)
	}
	for addr, n := range counts {
		if n < keys/3/2 || n > keys/3*2 {
			t.Errorf("replica %s owns %d of %d keys — ring badly unbalanced: %v", addr, n, keys, counts)
		}
	}

	// Every replica must agree on ownership regardless of how its own
	// address is listed.
	rb, err := newRing("http://b:1", []string{"http://a:1", "http://c:1", "http://b:1"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := cacheKey("savings", fmt.Sprintf("key-%d", i))
		if r.owner(key) != rb.owner(key) {
			t.Fatalf("replicas disagree on owner of %q", key)
		}
	}
}

// shardFleet spins n in-process replicas sharing one membership list
// and returns their base URLs and servers.
func shardFleet(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]string, []*Server) {
	t.Helper()
	listeners := make([]*httptest.Server, n)
	urls := make([]string, n)
	// Allocate the listeners first so every replica can know the full
	// membership before any of them is built.
	for i := range listeners {
		listeners[i] = httptest.NewUnstartedServer(nil)
		urls[i] = "http://" + listeners[i].Listener.Addr().String()
	}
	servers := make([]*Server, n)
	for i := range servers {
		cfg := Config{
			SelfURL: urls[i],
			Peers:   urls,
			Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers[i] = s
		listeners[i].Config.Handler = s.Handler()
		listeners[i].Start()
		t.Cleanup(listeners[i].Close)
	}
	return urls, servers
}

func postURL(t *testing.T, url, body string, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestShardForwardingPartitionsCaches drives distinct keys through one
// replica of a 3-replica fleet and checks that remote-owned keys are
// forwarded (X-GSF-Shard: forwarded), locally-owned keys served
// locally, answers match an unsharded server byte for byte, and a
// repeat run is answered from the owners' caches wherever it landed.
func TestShardForwardingPartitionsCaches(t *testing.T) {
	urls, servers := shardFleet(t, 3, nil)
	single := newTestServer(t, Config{})

	bodies := make([]string, 12)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"sku":"GreenSKU-Full","ci":%g}`, 0.1+float64(i)*0.01)
	}
	dispositions := map[string]int{}
	for _, body := range bodies {
		resp, raw := postURL(t, urls[0]+"/v1/percore", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
		shard := resp.Header.Get("X-GSF-Shard")
		if shard != "local" && shard != "forwarded" {
			t.Fatalf("X-GSF-Shard %q, want local or forwarded", shard)
		}
		dispositions[shard]++

		// Sharding must not change the wire contract.
		w := post(t, single.Handler(), "/v1/percore", body)
		if string(raw) != w.Body.String() {
			t.Fatalf("sharded answer differs from unsharded:\n%s\nvs\n%s", raw, w.Body)
		}
	}
	if dispositions["forwarded"] == 0 {
		t.Error("12 distinct keys and no forwards: ring is not partitioning")
	}

	// Second pass: every key was computed exactly once, on its owner, so
	// all repeats are cache hits no matter which disposition they had.
	for _, body := range bodies {
		resp, raw := postURL(t, urls[0]+"/v1/percore", body, nil)
		if got := resp.Header.Get("X-Cache"); got != "hit" {
			t.Errorf("repeat of %s: X-Cache %q, want hit (%s)", body, got, raw)
		}
	}

	// The caches partition: total entries across the fleet equals the
	// key count (plus nothing duplicated).
	total := 0
	for _, s := range servers {
		total += s.cache.len()
	}
	if total != len(bodies) {
		t.Errorf("fleet holds %d cache entries for %d keys — caches are duplicating", total, len(bodies))
	}
}

// TestShardForwardLoopPrevention: a forwarded request is always served
// locally, even by a replica whose ring says another node owns the key.
func TestShardForwardLoopPrevention(t *testing.T) {
	urls, servers := shardFleet(t, 2, nil)
	body := `{"sku":"GreenSKU-Full","ci":0.42}`
	for i, u := range urls {
		resp, raw := postURL(t, u+"/v1/percore", body, map[string]string{"X-GSF-Forwarded": "test"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica %d status %d: %s", i, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("X-GSF-Shard"); got != "local" {
			t.Errorf("replica %d served a forwarded request with X-GSF-Shard %q, want local", i, got)
		}
	}
	// Both replicas computed it locally: two cache entries for one key.
	total := 0
	for _, s := range servers {
		total += s.cache.len()
	}
	if total != 2 {
		t.Errorf("fleet cache entries %d, want 2 (each replica computed locally)", total)
	}
}

// TestShardForwardFallback: when the owner is unreachable the receiving
// replica answers locally instead of failing.
func TestShardForwardFallback(t *testing.T) {
	dead := httptest.NewServer(nil)
	deadURL := "http://" + dead.Listener.Addr().String()
	dead.Close() // port is now refused

	live := httptest.NewUnstartedServer(nil)
	liveURL := "http://" + live.Listener.Addr().String()
	s, err := New(Config{
		SelfURL: liveURL,
		Peers:   []string{liveURL, deadURL},
		Logger:  slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	live.Config.Handler = s.Handler()
	live.Start()
	t.Cleanup(live.Close)

	// Find keys owned by the dead peer so the forward path must engage.
	fallbacks := 0
	for i := 0; i < 40 && fallbacks < 3; i++ {
		body := fmt.Sprintf(`{"sku":"Baseline","ci":%g}`, 0.2+float64(i)*0.01)
		resp, raw := postURL(t, liveURL+"/v1/percore", body, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d with dead peer: %s", resp.StatusCode, raw)
		}
		if resp.Header.Get("X-GSF-Shard") == "local" && s.metrics.ForwardFailed.value() > 0 {
			fallbacks++
		}
	}
	if s.metrics.ForwardFailed.value() == 0 {
		t.Error("no forward failures recorded against an unreachable peer")
	}
	if fallbacks == 0 {
		t.Error("no request fell back to local computation")
	}
}

// TestShardedBatchForwardsItems: batch items route to their owners
// individually, and the batch answer matches an unsharded server's.
func TestShardedBatchForwardsItems(t *testing.T) {
	urls, servers := shardFleet(t, 3, nil)
	single := newTestServer(t, Config{})

	var items []string
	for i := 0; i < 9; i++ {
		items = append(items, fmt.Sprintf(`{"kind":"percore","sku":"GreenSKU-CXL","ci":%g}`, 0.1+float64(i)*0.02))
	}
	body := `{"items":[` + strings.Join(items, ",") + `]}`

	resp, raw := postURL(t, urls[0]+"/v1/batch", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	w := post(t, single.Handler(), "/v1/batch", body)
	if string(raw) != w.Body.String() {
		t.Fatalf("sharded batch differs from unsharded:\n%s\nvs\n%s", raw, w.Body)
	}
	forwarded := uint64(0)
	for _, s := range servers {
		forwarded += s.metrics.Forwarded.value()
	}
	if forwarded == 0 {
		t.Error("9 distinct batch items and no item forwards")
	}
	// Partitioned: each item cached exactly once across the fleet.
	total := 0
	for _, s := range servers {
		total += s.cache.len()
	}
	if total != len(items) {
		t.Errorf("fleet cache entries %d for %d items", total, len(items))
	}
}

// TestShardedStreamedBatch: streaming and sharding compose — records
// stream from the receiving replica while item computation is spread
// across the fleet.
func TestShardedStreamedBatch(t *testing.T) {
	urls, _ := shardFleet(t, 2, nil)
	var items []string
	for i := 0; i < 6; i++ {
		items = append(items, fmt.Sprintf(`{"kind":"percore","sku":"Gen1","ci":%g}`, 0.1+float64(i)*0.03))
	}
	body := `{"items":[` + strings.Join(items, ",") + `]}`
	resp, raw := postURL(t, urls[1]+"/v1/batch", body, map[string]string{"Accept": "application/x-ndjson"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != len(items)+1 {
		t.Fatalf("got %d lines, want %d results + done", len(lines), len(items))
	}
	for _, line := range lines[:len(items)] {
		var rec struct {
			Index int             `json:"index"`
			OK    json.RawMessage `json:"ok"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil || len(rec.OK) == 0 {
			t.Fatalf("bad streamed record %q (err %v)", line, err)
		}
	}
}

func TestLimitsReportsReplicas(t *testing.T) {
	urls, _ := shardFleet(t, 3, nil)
	resp, err := http.Get(urls[0] + "/v1/limits")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lim struct {
		Replicas int `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&lim); err != nil {
		t.Fatal(err)
	}
	if lim.Replicas != 3 {
		t.Errorf("replicas %d, want 3", lim.Replicas)
	}
}
