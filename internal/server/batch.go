package server

// POST /v1/batch: many evaluation requests in one round trip. Each
// item names the single-request endpoint it targets ("percore",
// "savings", "evaluate") and carries that endpoint's fields. Items
// run on the evaluation engine bounded by the server's worker count,
// share the result cache and singleflight with the single endpoints
// (a batch item and a single request for the same computation hit the
// same cache entry), and fail independently: the response carries one
// in-band result per item, in request order, with the same error
// envelope and status mapping the single endpoints use.
//
// POST /v1/sweep: one green/baseline pair evaluated at many grid
// carbon intensities — the Fig. 11/12 sweep shape — expanded into
// evaluate items and served through the same machinery.
//
// Both endpoints stream instead of buffering when the client negotiates
// it (Accept: application/x-ndjson or text/event-stream; see
// stream.go): results are emitted in completion order with O(1)
// response buffering, which is what makes 10k-item requests safe.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/server/api"
)

// batchHeader is the response header carrying the item count;
// instrument buckets it into the "batch" metric label.
const batchHeader = api.HeaderBatchSize

// itemJob dispatches a batch item to the shared job builder for its
// kind.
func (s *Server) itemJob(it api.BatchItem) (string, func() ([]byte, error), error) {
	switch it.Kind {
	case "percore":
		return s.perCoreJob(api.PerCoreRequest{Dataset: it.Dataset, SKU: it.SKU, CI: it.CI})
	case "savings":
		return s.savingsJob(api.SavingsRequest{Dataset: it.Dataset, SKU: it.SKU, Baseline: it.Baseline, CI: it.CI})
	case "evaluate":
		return s.evaluateJob(api.EvaluateRequest{
			Dataset: it.Dataset, Green: it.Green, Baseline: it.Baseline,
			CI: it.CI, CXLBacked: it.CXLBacked, Workload: it.Workload,
		})
	default:
		return "", nil, fmt.Errorf("%w: item kind %q (want percore, savings, or evaluate)", errBadRequest, it.Kind)
	}
}

// itemEndpoint maps a batch item to the single-endpoint path and
// request payload a shard forward re-sends.
func itemEndpoint(it api.BatchItem) (string, any) {
	switch it.Kind {
	case "percore":
		return "/v1/percore", api.PerCoreRequest{Dataset: it.Dataset, SKU: it.SKU, CI: it.CI}
	case "savings":
		return "/v1/savings", api.SavingsRequest{Dataset: it.Dataset, SKU: it.SKU, Baseline: it.Baseline, CI: it.CI}
	default:
		return "/v1/evaluate", api.EvaluateRequest{
			Dataset: it.Dataset, Green: it.Green, Baseline: it.Baseline,
			CI: it.CI, CXLBacked: it.CXLBacked, Workload: it.Workload,
		}
	}
}

// itemFailure renders an item error as its in-band envelope and status.
// Errors relayed from a shard owner keep the owner's envelope verbatim.
func itemFailure(err error) (*api.Error, int) {
	var fe *forwardedError
	if errors.As(err, &fe) {
		e := fe.e
		return &e, fe.status
	}
	e := apiErrorFor(err)
	return &e, httpStatus(err)
}

// itemResult folds one item outcome into the in-band result shape.
func itemResult(body []byte, cached bool, err error) api.BatchResult {
	if err != nil {
		e, status := itemFailure(err)
		return api.BatchResult{Error: e, Status: status}
	}
	// Single-endpoint bodies end in a newline; strip it so the
	// embedded JSON value stays clean.
	return api.BatchResult{OK: json.RawMessage(bytes.TrimSuffix(body, []byte("\n"))), Cached: cached}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	n := len(req.Items)
	if n == 0 {
		s.writeError(w, fmt.Errorf("%w: batch needs at least one item", errBadRequest))
		return
	}
	if n > s.cfg.MaxBatchItems {
		s.writeError(w, &codedError{code: api.CodeBadInput, limit: s.cfg.MaxBatchItems,
			err: fmt.Errorf("%w: batch of %d items exceeds the limit of %d (GET /v1/limits)",
				errBadRequest, n, s.cfg.MaxBatchItems)})
		return
	}
	s.metrics.BatchItems.add(uint64(n))
	s.serveItems(w, r, req.Items, false)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	n := len(req.CIs)
	if n == 0 {
		s.writeError(w, fmt.Errorf("%w: sweep needs at least one ci point", errBadRequest))
		return
	}
	if n > s.cfg.MaxBatchItems {
		s.writeError(w, &codedError{code: api.CodeBadInput, limit: s.cfg.MaxBatchItems,
			err: fmt.Errorf("%w: sweep of %d points exceeds the limit of %d (GET /v1/limits)",
				errBadRequest, n, s.cfg.MaxBatchItems)})
		return
	}
	items := make([]api.BatchItem, n)
	for i, ci := range req.CIs {
		items[i] = api.BatchItem{
			Kind: "evaluate", Dataset: req.Dataset, Green: req.Green,
			Baseline: req.Baseline, CI: ci, CXLBacked: req.CXLBacked,
			Workload: req.Workload,
		}
	}
	s.metrics.SweepPoints.add(uint64(n))
	s.serveItems(w, r, items, true)
}

// serveItems answers a validated batch or sweep: streamed in completion
// order when the client negotiated a streaming content type, buffered
// in request order otherwise.
func (s *Server) serveItems(w http.ResponseWriter, r *http.Request, items []api.BatchItem, sweep bool) {
	if mode := streamMode(r); mode != "" {
		s.streamItems(w, r, items, mode)
		return
	}
	n := len(items)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	results := engine.Map(ctx, s.cfg.Workers, n,
		func(ctx context.Context, i int) (api.BatchResult, error) {
			key, fn, err := s.itemJob(items[i])
			if err != nil {
				return itemResult(nil, false, err), nil
			}
			body, cached, err := s.computeItem(ctx, r, items[i], key, fn)
			return itemResult(body, cached, err), nil
		})

	out := make([]api.BatchResult, n)
	for i, res := range results {
		if res.Err != nil {
			// Cancellation before dispatch or a panic in the item; fold
			// it in-band like any other per-item failure.
			out[i] = itemResult(nil, false, res.Err)
			continue
		}
		out[i] = res.Value
	}
	w.Header().Set(batchHeader, strconv.Itoa(n))
	if sweep {
		s.writeJSON(w, api.SweepResponse{Results: out})
		return
	}
	s.writeJSON(w, api.BatchResponse{Results: out})
}

// batchBucket folds an item count into a low-cardinality label value
// for the requests counter: "" (not a batch), "1", "2-8", "9-64",
// "65+".
func batchBucket(header string) string {
	if header == "" {
		return ""
	}
	n, err := strconv.Atoi(header)
	if err != nil {
		return ""
	}
	switch {
	case n <= 1:
		return "1"
	case n <= 8:
		return "2-8"
	case n <= 64:
		return "9-64"
	default:
		return "65+"
	}
}
