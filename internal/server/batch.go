package server

// POST /v1/batch: many evaluation requests in one round trip. Each
// item names the single-request endpoint it targets ("percore",
// "savings", "evaluate") and carries that endpoint's fields. Items
// run on the evaluation engine bounded by the server's worker count,
// share the result cache and singleflight with the single endpoints
// (a batch item and a single request for the same computation hit the
// same cache entry), and fail independently: the response carries one
// in-band result per item, in request order, with the same status
// mapping the single endpoints use.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/greensku/gsf/internal/engine"
)

// batchHeader is the response header carrying the item count;
// instrument buckets it into the "batch" metric label.
const batchHeader = "X-Batch-Size"

type batchRequest struct {
	Items []batchItem `json:"items"`
}

// batchItem is the union of the three single-endpoint request shapes
// plus a kind discriminator. Fields irrelevant to the kind are
// ignored, mirroring how the single endpoints treat their own
// requests.
type batchItem struct {
	// Kind selects the computation: "percore", "savings", or
	// "evaluate".
	Kind string `json:"kind"`

	Dataset  string  `json:"dataset"`
	SKU      string  `json:"sku"`
	Green    string  `json:"green"`
	Baseline string  `json:"baseline"`
	CI       float64 `json:"ci"`

	CXLBacked bool         `json:"cxl_backed"`
	Workload  workloadSpec `json:"workload"`
}

// batchResult is one item's in-band outcome: either OK holds the
// exact body the single endpoint would have returned, or Error/Status
// hold the message and HTTP status the single endpoint would have
// answered with.
type batchResult struct {
	OK     json.RawMessage `json:"ok,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	Status int             `json:"status,omitempty"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
}

// itemJob dispatches a batch item to the shared job builder for its
// kind.
func (s *Server) itemJob(it batchItem) (string, func() ([]byte, error), error) {
	switch it.Kind {
	case "percore":
		return s.perCoreJob(perCoreRequest{Dataset: it.Dataset, SKU: it.SKU, CI: it.CI})
	case "savings":
		return s.savingsJob(savingsRequest{Dataset: it.Dataset, SKU: it.SKU, Baseline: it.Baseline, CI: it.CI})
	case "evaluate":
		return s.evaluateJob(evaluateRequest{
			Dataset: it.Dataset, Green: it.Green, Baseline: it.Baseline,
			CI: it.CI, CXLBacked: it.CXLBacked, Workload: it.Workload,
		})
	default:
		return "", nil, fmt.Errorf("%w: item kind %q (want percore, savings, or evaluate)", errBadRequest, it.Kind)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	n := len(req.Items)
	if n == 0 {
		s.writeError(w, fmt.Errorf("%w: batch needs at least one item", errBadRequest))
		return
	}
	if n > s.cfg.MaxBatchItems {
		s.writeError(w, fmt.Errorf("%w: batch of %d items exceeds the limit of %d",
			errBadRequest, n, s.cfg.MaxBatchItems))
		return
	}
	s.metrics.BatchItems.add(uint64(n))

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	results := engine.Map(ctx, s.cfg.Workers, n,
		func(ctx context.Context, i int) (batchResult, error) {
			key, fn, err := s.itemJob(req.Items[i])
			if err != nil {
				return batchResult{Error: err.Error(), Status: httpStatus(err)}, nil
			}
			body, cached, err := s.compute(ctx, key, fn)
			if err != nil {
				return batchResult{Error: err.Error(), Status: httpStatus(err)}, nil
			}
			// Single-endpoint bodies end in a newline; strip it so the
			// embedded JSON value stays clean.
			return batchResult{OK: json.RawMessage(bytes.TrimSuffix(body, []byte("\n"))), Cached: cached}, nil
		})

	out := batchResponse{Results: make([]batchResult, n)}
	for i, res := range results {
		if res.Err != nil {
			// Cancellation before dispatch or a panic in the item; fold
			// it in-band like any other per-item failure.
			out.Results[i] = batchResult{Error: res.Err.Error(), Status: httpStatus(res.Err)}
			continue
		}
		out.Results[i] = res.Value
	}
	w.Header().Set(batchHeader, strconv.Itoa(n))
	s.writeJSON(w, out)
}

// batchBucket folds an item count into a low-cardinality label value
// for the requests counter: "" (not a batch), "1", "2-8", "9-64",
// "65+".
func batchBucket(header string) string {
	if header == "" {
		return ""
	}
	n, err := strconv.Atoi(header)
	if err != nil {
		return ""
	}
	switch {
	case n <= 1:
		return "1"
	case n <= 8:
		return "2-8"
	case n <= 64:
		return "9-64"
	default:
		return "65+"
	}
}
