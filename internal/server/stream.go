package server

// Streaming responses for sweep-sized requests. /v1/batch and
// /v1/sweep negotiate a streaming format through the Accept header:
//
//	Accept: application/x-ndjson   one JSON object per line
//	Accept: text/event-stream      Server-Sent Events
//
// Either way the server emits one record per item in completion order
// — each carrying the item's request index, so clients can correlate —
// followed by a terminal "done" record. Results are written and
// flushed as the engine finishes them, so response memory is O(workers)
// instead of O(items): a 10k-item batch streams with bounded buffering
// and its first result lands before the last item is evaluated.
// Per-item errors travel in-band as the same envelope the buffered
// path embeds.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/server/api"
)

// streamMode inspects the Accept header: "ndjson", "sse", or "" for
// the default buffered JSON response. The first recognised streaming
// media type wins.
func streamMode(r *http.Request) string {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case api.ContentTypeNDJSON:
			return "ndjson"
		case api.ContentTypeSSE:
			return "sse"
		}
	}
	return ""
}

// streamItems serves a validated batch or sweep as a stream: results
// are emitted in completion order with one flush per record.
func (s *Server) streamItems(w http.ResponseWriter, r *http.Request, items []api.BatchItem, mode string) {
	n := len(items)
	if mode == "sse" {
		w.Header().Set("Content-Type", api.ContentTypeSSE)
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
	}
	w.Header().Set(batchHeader, strconv.Itoa(n))
	if s.ring != nil {
		w.Header().Set(api.HeaderShard, "local")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	errs := 0
	engine.Stream(ctx, s.cfg.Workers, n,
		func(ctx context.Context, i int) (api.BatchResult, error) {
			key, fn, err := s.itemJob(items[i])
			if err != nil {
				return itemResult(nil, false, err), nil
			}
			body, cached, err := s.computeItem(ctx, r, items[i], key, fn)
			return itemResult(body, cached, err), nil
		},
		func(i int, res engine.Result[api.BatchResult]) {
			out := res.Value
			if res.Err != nil {
				out = itemResult(nil, false, res.Err)
			}
			if out.Error != nil {
				errs++
			}
			s.metrics.StreamedResults.inc()
			writeStreamRecord(w, flusher, mode, "result", api.BatchStreamItem{
				Index: i, OK: out.OK, Cached: out.Cached,
				Error: out.Error, Status: out.Status,
			})
		})
	writeStreamRecord(w, flusher, mode, "done", api.StreamDone{Done: true, Items: n, Errors: errs})
}

// writeStreamRecord emits one record in the negotiated framing and
// flushes it so the client sees it immediately. Write errors are
// ignored: a mid-stream disconnect cancels the request context, which
// stops dispatch.
func writeStreamRecord(w io.Writer, f http.Flusher, mode, event string, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		return
	}
	if mode == "sse" {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, body)
	} else {
		w.Write(append(body, '\n'))
	}
	if f != nil {
		f.Flush()
	}
}
