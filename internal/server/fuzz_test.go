package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/greensku/gsf/internal/server/api"
)

// FuzzBatchRequest throws arbitrary bytes at POST /v1/batch. The
// handler must never panic, must answer only with the statuses the
// endpoint documents (200, 400 bad request, 429 shed, 503 deadline),
// and every 200 body must decode as a batchResponse with one result
// per submitted item.
func FuzzBatchRequest(f *testing.F) {
	// One server for the whole run: building frameworks per input
	// would dominate fuzzing time. MaxTraceVMs keeps any evaluate
	// items the fuzzer discovers cheap.
	s, err := New(Config{
		MaxTraceVMs:    60,
		RequestTimeout: 10 * time.Second,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(s.Close)
	h := s.Handler()

	f.Add([]byte(`{"items":[{"kind":"percore","sku":"Baseline","ci":0.1}]}`))
	f.Add([]byte(`{"items":[{"kind":"savings","sku":"GreenSKU-Full","baseline":"Baseline"}]}`))
	f.Add([]byte(`{"items":[{"kind":"evaluate","workload":{"name":"t","seed":7,"arrivals_per_hour":1,"horizon_hours":24}}]}`))
	f.Add([]byte(`{"items":[{"kind":"percore","sku":"Baseline"},{"kind":"nope"}]}`))
	f.Add([]byte(`{"items":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte("\x00\xff{}"))

	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/batch", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		switch w.Code {
		case http.StatusOK:
			var resp api.BatchResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 body does not decode as api.BatchResponse: %v\n%s", err, w.Body.Bytes())
			}
			if len(resp.Results) == 0 {
				t.Fatalf("200 with no results:\n%s", w.Body.Bytes())
			}
			var in api.BatchRequest
			if err := json.Unmarshal(body, &in); err == nil && len(resp.Results) != len(in.Items) {
				t.Fatalf("batch of %d items answered with %d results", len(in.Items), len(resp.Results))
			}
		case http.StatusBadRequest, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			// Documented rejections.
		default:
			t.Fatalf("undocumented status %d for body %q: %s", w.Code, body, w.Body.Bytes())
		}
	})
}
