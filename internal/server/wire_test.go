package server

// Golden wire-compatibility fixtures for every /v1 endpoint. Each
// fixture replays a literal request against a fresh server and compares
// the response — status, content type, and exact body bytes — against a
// committed golden file under testdata/wire. The non-error fixtures
// were captured before the wire types moved into internal/server/api,
// so a passing run proves the consolidation is byte-compatible; any
// future wire drift fails CI.
//
// Regenerate (after an intentional wire change) with:
//
//	go test ./internal/server -run TestWireCompatibility -update

import (
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateWire = flag.Bool("update", false, "rewrite the wire fixtures under testdata/wire")

// wireFixture is one request/response pair. The request is a literal;
// the expected response lives in testdata/wire/<name>.golden.
type wireFixture struct {
	name   string
	method string
	path   string
	accept string // optional Accept header
	body   string // request body ("" for GET)
	// maxBatch, when non-zero, overrides Config.MaxBatchItems so limit
	// errors are reproducible with a small literal body.
	maxBatch int
	// cfg, when set, adjusts the fresh server's Config before start —
	// e.g. a tiny design space so /v1/design bodies replay quickly and
	// byte-identically.
	cfg func(*Config)
}

var wireFixtures = []wireFixture{
	// Compute endpoints: deterministic evaluations, exact bodies.
	{name: "percore_default", method: "POST", path: "/v1/percore",
		body: `{"sku":"GreenSKU-Full"}`},
	{name: "percore_ci", method: "POST", path: "/v1/percore",
		body: `{"sku":"GreenSKU-CXL","ci":0.25}`},
	{name: "savings_default", method: "POST", path: "/v1/savings",
		body: `{"sku":"GreenSKU-Full"}`},
	{name: "savings_baseline", method: "POST", path: "/v1/savings",
		body: `{"sku":"GreenSKU-Efficient","baseline":"Gen2","ci":0.2}`},
	{name: "evaluate_small", method: "POST", path: "/v1/evaluate",
		body: `{"green":"GreenSKU-Full","baseline":"Baseline",` + smallWorkload + `}`},
	{name: "evaluate_cxl", method: "POST", path: "/v1/evaluate",
		body: `{"green":"GreenSKU-CXL","cxl_backed":true,` + smallWorkload + `}`},
	{name: "evaluate_ciseries", method: "POST", path: "/v1/evaluate",
		body: `{"ci_series":[{"t_h":0,"ci":0.05},{"t_h":12,"ci":0.17}],"ci_period_h":24,` + smallWorkload + `}`},
	{name: "ciseries_diurnal", method: "POST", path: "/v1/ciseries",
		body: `{"name":"diurnal","period_h":24,"series":[{"t_h":1,"ci":0.2},{"t_h":7,"ci":0.04},{"t_h":13,"ci":0.06},{"t_h":19,"ci":0.22}]}`},

	// Catalog endpoints.
	{name: "skus", method: "GET", path: "/v1/skus"},
	{name: "datasets", method: "GET", path: "/v1/datasets"},

	// Batch: embedded bodies must match the single endpoints.
	{name: "batch_mixed", method: "POST", path: "/v1/batch",
		body: `{"items":[{"kind":"percore","sku":"GreenSKU-Full","ci":0.1},{"kind":"savings","sku":"GreenSKU-CXL"},{"kind":"evaluate","green":"GreenSKU-Full",` + smallWorkload + `}]}`},

	// Replay: snapshot-forked what-if placement over a seeded trace.
	{name: "replay_fork", method: "POST", path: "/v1/replay",
		body: `{` + smallWorkload + `,"adopt_percent":60,"prefer_non_empty":true,"forks":[{"name":"adopt-all","adopt_percent":100}]}`},

	// Design: the frontier search over a pinned tiny space. The
	// buffered body and the single-worker stream (deterministic
	// completion order) are both exact.
	{name: "design_paper", method: "POST", path: "/v1/design",
		body: `{"include_paper":true}`, cfg: tinyWireDesign},
	{name: "design_stream", method: "POST", path: "/v1/design",
		accept: "application/x-ndjson",
		body:   `{"cpus":["Bergamo"]}`,
		cfg: func(c *Config) {
			tinyWireDesign(c)
			c.Workers = 1
		}},
}

// tinyWireDesign pins the design fixtures' space and protocol so their
// bodies stay byte-stable and cheap to replay.
func tinyWireDesign(c *Config) {
	sp := tinyDesignSpace()
	popt := tinyDesignConfig().DesignPerf
	c.DesignSpace = &sp
	c.DesignPerf = popt
}

// wireErrorFixtures pin the error envelope: machine-readable
// {"error":{"code","message"}} bodies with stable codes on every
// endpoint. Captured after the api consolidation (the envelope is the
// one intentional wire change of that refactor).
var wireErrorFixtures = []wireFixture{
	{name: "err_malformed_json", method: "POST", path: "/v1/percore",
		body: `{"sku":`},
	{name: "err_unknown_field", method: "POST", path: "/v1/percore",
		body: `{"skew":"Baseline"}`},
	{name: "err_unknown_sku", method: "POST", path: "/v1/percore",
		body: `{"sku":"MegaSKU"}`},
	{name: "err_unknown_dataset", method: "POST", path: "/v1/percore",
		body: `{"sku":"Baseline","dataset":"secret"}`},
	{name: "err_negative_ci", method: "POST", path: "/v1/percore",
		body: `{"sku":"Baseline","ci":-1}`},
	{name: "err_unknown_baseline", method: "POST", path: "/v1/savings",
		body: `{"sku":"Baseline","baseline":"nope"}`},
	{name: "err_batch_empty", method: "POST", path: "/v1/batch",
		body: `{"items":[]}`},
	{name: "err_batch_overlimit", method: "POST", path: "/v1/batch", maxBatch: 2,
		body: `{"items":[{"kind":"percore","sku":"Gen1"},{"kind":"percore","sku":"Gen2"},{"kind":"percore","sku":"Baseline"}]}`},
	{name: "err_batch_badkind", method: "POST", path: "/v1/batch",
		body: `{"items":[{"kind":"teleport"}]}`},
	{name: "err_replay_bad_policy", method: "POST", path: "/v1/replay",
		body: `{` + smallWorkload + `,"policy":"mid-fit"}`},
	{name: "err_design_unknown_cpu", method: "POST", path: "/v1/design",
		body: `{"cpus":["Pentium"]}`, cfg: tinyWireDesign},
	{name: "err_design_overlimit", method: "POST", path: "/v1/design",
		body: `{"include_paper":true}`,
		cfg: func(c *Config) {
			tinyWireDesign(c)
			c.MaxDesignCandidates = 2
		}},
}

const wireDir = "testdata/wire"

// goldenBytes renders a response in the golden file format: a status
// line, a content-type line, a blank separator, then the exact body.
func goldenBytes(status int, contentType string, body []byte) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP %d\nContent-Type: %s\n\n", status, contentType)
	b.Write(body)
	return b.Bytes()
}

// parseGolden splits a golden file into status, content type, and body.
func parseGolden(t *testing.T, raw []byte) (int, string, []byte) {
	t.Helper()
	head, body, ok := bytes.Cut(raw, []byte("\n\n"))
	if !ok {
		t.Fatal("golden file missing blank separator line")
	}
	lines := strings.Split(string(head), "\n")
	if len(lines) != 2 {
		t.Fatalf("golden header %q: want status and content-type lines", head)
	}
	var status int
	if _, err := fmt.Sscanf(lines[0], "HTTP %d", &status); err != nil {
		t.Fatalf("golden status line %q: %v", lines[0], err)
	}
	contentType := strings.TrimPrefix(lines[1], "Content-Type: ")
	return status, contentType, body
}

// replayFixture runs one fixture against a fresh server so cache state
// never leaks between fixtures.
func replayFixture(t *testing.T, fx wireFixture) *httptest.ResponseRecorder {
	t.Helper()
	cfg := Config{MaxBatchItems: fx.maxBatch}
	if fx.cfg != nil {
		fx.cfg(&cfg)
	}
	s := newTestServer(t, cfg)
	var req *http.Request
	if fx.method == http.MethodGet {
		req = httptest.NewRequest(http.MethodGet, fx.path, nil)
	} else {
		req = httptest.NewRequest(fx.method, fx.path, strings.NewReader(fx.body))
		req.Header.Set("Content-Type", "application/json")
	}
	if fx.accept != "" {
		req.Header.Set("Accept", fx.accept)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func runWireFixtures(t *testing.T, fixtures []wireFixture) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			w := replayFixture(t, fx)
			got := goldenBytes(w.Code, w.Header().Get("Content-Type"), w.Body.Bytes())
			path := filepath.Join(wireDir, fx.name+".golden")
			if *updateWire {
				if err := os.MkdirAll(wireDir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			wantStatus, wantCT, wantBody := parseGolden(t, raw)
			if w.Code != wantStatus {
				t.Errorf("status %d, want %d (body %s)", w.Code, wantStatus, w.Body)
			}
			if ct := w.Header().Get("Content-Type"); ct != wantCT {
				t.Errorf("content type %q, want %q", ct, wantCT)
			}
			if !bytes.Equal(w.Body.Bytes(), wantBody) {
				t.Errorf("body drifted from golden:\n got: %s\nwant: %s", w.Body.Bytes(), wantBody)
			}
		})
	}
}

// TestWireCompatibility replays the committed non-error fixtures; these
// bodies were captured before the api-package consolidation and must
// never drift.
func TestWireCompatibility(t *testing.T) {
	runWireFixtures(t, wireFixtures)
}

// TestWireErrorEnvelope replays the error fixtures: every error body is
// the {"error":{"code","message"}} envelope with a documented code.
func TestWireErrorEnvelope(t *testing.T) {
	runWireFixtures(t, wireErrorFixtures)
}
