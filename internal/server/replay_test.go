package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"github.com/greensku/gsf/internal/server/api"
)

// replayBody is a small replay request: adopt 60% straight through,
// fork two what-if deciders from the halfway snapshot.
const replayBody = `{` + smallWorkload + `,"adopt_percent":60,"prefer_non_empty":true,` +
	`"forks":[{"name":"adopt-all","adopt_percent":100},{"name":"adopt-none","adopt_percent":0}]}`

func TestReplayEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := post(t, s.Handler(), "/v1/replay", replayBody)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp api.ReplayResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if resp.Workload.VMs == 0 {
		t.Fatal("degenerate workload: no VMs")
	}
	if resp.ForkEvent <= 0 || resp.ForkEvent >= resp.Workload.VMs {
		t.Errorf("fork event %d outside (0,%d)", resp.ForkEvent, resp.Workload.VMs)
	}
	if resp.SnapshotBytes <= 0 {
		t.Errorf("snapshot reported %d bytes", resp.SnapshotBytes)
	}
	if got := resp.Straight.Placed + resp.Straight.Rejected; got != resp.Workload.VMs {
		t.Errorf("straight placed+rejected %d, want %d", got, resp.Workload.VMs)
	}
	if len(resp.Forks) != 2 {
		t.Fatalf("got %d forks, want 2", len(resp.Forks))
	}
	for _, f := range resp.Forks {
		if got := f.Placed + f.Rejected; got != resp.Workload.VMs {
			t.Errorf("fork %s placed+rejected %d, want %d", f.Name, got, resp.Workload.VMs)
		}
	}
	// The forks share the straight run's prefix but diverge after the
	// snapshot: adopting everything vs nothing must change green-pool
	// utilisation observations relative to each other.
	all, none := resp.Forks[0], resp.Forks[1]
	if all.Name != "adopt-all" || none.Name != "adopt-none" {
		t.Fatalf("fork order drifted: %s, %s", all.Name, none.Name)
	}
	if all.Green.CorePacking == nil {
		t.Error("adopt-all fork never observed the green pool")
	}
}

// TestReplayDeterministicAndCached pins the endpoint's contract that
// identical requests produce byte-identical bodies, served from cache
// on the second hit.
func TestReplayDeterministicAndCached(t *testing.T) {
	s := newTestServer(t, Config{})
	first := post(t, s.Handler(), "/v1/replay", replayBody)
	second := post(t, s.Handler(), "/v1/replay", replayBody)
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("statuses %d, %d", first.Code, second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Error("identical replay requests produced different bodies")
	}
	if got := second.Header().Get(api.HeaderCache); got != "hit" {
		t.Errorf("second response cache header %q, want hit", got)
	}
}

// TestReplayForkMatchesStraight: a fork with the straight run's own
// knobs must reproduce the straight result exactly — restore plus
// suffix replay is the uninterrupted replay.
func TestReplayForkMatchesStraight(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{` + smallWorkload + `,"adopt_percent":60,"prefer_non_empty":true,` +
		`"forks":[{"name":"same","adopt_percent":60}]}`
	w := post(t, s.Handler(), "/v1/replay", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp api.ReplayResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	straight, fork := resp.Straight, resp.Forks[0]
	straight.Name, fork.Name = "", ""
	sj, _ := json.Marshal(straight)
	fj, _ := json.Marshal(fork)
	if string(sj) != string(fj) {
		t.Errorf("fork with identical decider diverged from straight run:\n straight %s\n fork     %s", sj, fj)
	}
}

func TestReplayRejectsBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := map[string]string{
		"bad-policy":     `{` + smallWorkload + `,"policy":"mid-fit"}`,
		"bad-adopt":      `{` + smallWorkload + `,"adopt_percent":140}`,
		"bad-scale":      `{` + smallWorkload + `,"scale":0.5}`,
		"huge-scale":     `{` + smallWorkload + `,"scale":100}`,
		"bad-frac":       `{` + smallWorkload + `,"fork_frac":1.5}`,
		"negative-pool":  `{` + smallWorkload + `,"green_servers":-5}`,
		"oversize-pool":  `{` + smallWorkload + `,"base_servers":2000000}`,
		"unknown-green":  `{` + smallWorkload + `,"green":"MegaSKU"}`,
		"bad-fork-knob":  `{` + smallWorkload + `,"forks":[{"adopt_percent":-1}]}`,
		"too-many-forks": `{` + smallWorkload + `,"forks":[{},{},{},{},{},{},{},{},{}]}`,
	}
	for name, body := range cases {
		if w := post(t, s.Handler(), "/v1/replay", body); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", name, w.Code, w.Body)
		}
	}
}
