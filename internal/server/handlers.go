package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/greensku/gsf"
	"github.com/greensku/gsf/internal/core"
	"github.com/greensku/gsf/internal/server/api"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// errBadRequest marks a client-side mistake — malformed JSON, an
// unknown SKU or dataset name, an out-of-range parameter — and maps to
// HTTP 400.
var errBadRequest = errors.New("server: bad request")

// errRateLimited marks a request shed by the per-client rate limiter;
// it maps to HTTP 429 like a full queue.
var errRateLimited = errors.New("server: rate limit exceeded")

// maxBodyBytes bounds request bodies; every request here is at most a
// few hundred kilobytes of JSON (a full 10k-item batch).
const maxBodyBytes = 8 << 20

// codedError attaches a stable wire code (api.Code*) to an error. The
// wrapped error keeps the sentinel chain intact so httpStatus still
// maps it.
type codedError struct {
	code       string
	limit      int // optional bound for limit violations
	retryAfter int // optional Retry-After seconds for 429s
	err        error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// apiErrorFor renders any handler error as the wire envelope's Error
// object, deriving the stable code from the error chain.
func apiErrorFor(err error) api.Error {
	var ce *codedError
	if errors.As(err, &ce) {
		return api.Error{Code: ce.code, Message: ce.Error(), Limit: ce.limit}
	}
	code := api.CodeInternal
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, errRateLimited),
		errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		code = api.CodeOverloaded
	case errors.Is(err, core.ErrBadInput), errors.Is(err, errBadRequest):
		code = api.CodeBadInput
	}
	return api.Error{Code: code, Message: err.Error()}
}

// readBody drains the request body (bounded) so it can be decoded
// locally and, on a sharded server, re-sent verbatim to the owning
// replica.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, fmt.Errorf("%w: reading request body: %v", errBadRequest, err)
	}
	return body, nil
}

// decodeStrict parses JSON into dst, rejecting unknown fields and
// trailing garbage.
func decodeStrict(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: malformed request body: %v", errBadRequest, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: malformed request body: trailing data", errBadRequest)
	}
	return nil
}

// decodeJSON reads and strictly parses the request body into dst.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	body, err := readBody(w, r)
	if err != nil {
		return err
	}
	return decodeStrict(body, dst)
}

func (s *Server) lookupDataset(name string) (*dataset, error) {
	if name == "" {
		name = s.defaultDataset // open-source
	}
	d, ok := s.datasets[name]
	if !ok {
		return nil, &codedError{code: api.CodeUnknownDataset,
			err: fmt.Errorf("%w: dataset %q (see GET /v1/datasets)", errBadRequest, name)}
	}
	return d, nil
}

func (s *Server) lookupSKU(field, name string) (gsf.SKU, error) {
	sku, ok := s.skus[name]
	if !ok {
		return gsf.SKU{}, &codedError{code: api.CodeUnknownSKU,
			err: fmt.Errorf("%w: %s SKU %q (see GET /v1/skus)", errBadRequest, field, name)}
	}
	return sku, nil
}

// writeError sends the error envelope with the status mapped from err.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", retryAfterFor(err))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, merr := marshalBody(api.ErrorResponse{Error: apiErrorFor(err)})
	if merr != nil {
		return
	}
	w.Write(body)
}

// writeComputed sends a compute result with its cache disposition.
func (s *Server) writeComputed(w http.ResponseWriter, body []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set(api.HeaderCache, "hit")
	} else {
		w.Header().Set(api.HeaderCache, "miss")
	}
	if s.ring != nil {
		w.Header().Set(api.HeaderShard, "local")
	}
	w.Write(body)
}

func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// fmtCI renders a carbon intensity for the canonical cache key.
func fmtCI(ci units.CarbonIntensity) string {
	return strconv.FormatFloat(float64(ci), 'g', -1, 64)
}

// --- POST /v1/percore -------------------------------------------------

// perCoreJob validates a percore request into its cache key and
// computation; shared by the single endpoint and /v1/batch so both
// populate the same cache entries.
func (s *Server) perCoreJob(req api.PerCoreRequest) (string, func() ([]byte, error), error) {
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		return "", nil, err
	}
	sku, err := s.lookupSKU("target", req.SKU)
	if err != nil {
		return "", nil, err
	}
	ci, err := normalizeCI(req.CI, d)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey("percore", d.name, sku.Name, fmtCI(ci))
	return key, func() ([]byte, error) {
		pc, err := d.model.PerCore(sku, ci)
		if err != nil {
			return nil, err
		}
		return marshalBody(api.PerCoreResponse{
			Dataset:     d.name,
			SKU:         pc.SKU,
			CI:          ci,
			Operational: pc.Operational,
			Embodied:    pc.Embodied,
			Total:       pc.Total(),
		})
	}, nil
}

func (s *Server) handlePerCore(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req api.PerCoreRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key, fn, err := s.perCoreJob(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.maybeForward(w, r, key, body) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, cached, err := s.compute(ctx, key, fn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeComputed(w, out, cached)
}

func normalizeCI(ci float64, d *dataset) (units.CarbonIntensity, error) {
	if ci < 0 {
		return 0, fmt.Errorf("%w: negative carbon intensity %v", errBadRequest, ci)
	}
	if ci == 0 {
		return d.model.Data().DefaultCI, nil
	}
	return units.CarbonIntensity(ci), nil
}

// --- POST /v1/savings -------------------------------------------------

// savingsJob validates a savings request into its cache key and
// computation; shared with /v1/batch.
func (s *Server) savingsJob(req api.SavingsRequest) (string, func() ([]byte, error), error) {
	if req.Baseline == "" {
		req.Baseline = "Baseline"
	}
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		return "", nil, err
	}
	sku, err := s.lookupSKU("target", req.SKU)
	if err != nil {
		return "", nil, err
	}
	baseline, err := s.lookupSKU("baseline", req.Baseline)
	if err != nil {
		return "", nil, err
	}
	ci, err := normalizeCI(req.CI, d)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey("savings", d.name, sku.Name, baseline.Name, fmtCI(ci))
	return key, func() ([]byte, error) {
		sv, err := d.model.Savings(sku, baseline, ci)
		if err != nil {
			return nil, err
		}
		return marshalBody(api.SavingsResponse{
			Dataset:     d.name,
			SKU:         sv.SKU,
			Baseline:    baseline.Name,
			CI:          ci,
			Operational: sv.Operational,
			Embodied:    sv.Embodied,
			Total:       sv.Total,
		})
	}, nil
}

func (s *Server) handleSavings(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req api.SavingsRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key, fn, err := s.savingsJob(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.maybeForward(w, r, key, body) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, cached, err := s.compute(ctx, key, fn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeComputed(w, out, cached)
}

// --- POST /v1/evaluate ------------------------------------------------

// evaluateJob validates an evaluate request into its cache key and
// computation; shared with /v1/batch and /v1/sweep.
func (s *Server) evaluateJob(req api.EvaluateRequest) (string, func() ([]byte, error), error) {
	if req.Green == "" {
		req.Green = "GreenSKU-Full"
	}
	if req.Baseline == "" {
		req.Baseline = "Baseline"
	}
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		return "", nil, err
	}
	green, err := s.lookupSKU("green", req.Green)
	if err != nil {
		return "", nil, err
	}
	baseline, err := s.lookupSKU("baseline", req.Baseline)
	if err != nil {
		return "", nil, err
	}
	ci, err := normalizeCI(req.CI, d)
	if err != nil {
		return "", nil, err
	}
	if len(req.CISeries) > 0 {
		if req.CI != 0 {
			return "", nil, fmt.Errorf("%w: both a scalar ci and a ci_series were set", errBadRequest)
		}
		sig, err := signalFromPayload("evaluate", req.CISeries, req.CIPeriodH)
		if err != nil {
			return "", nil, err
		}
		// The evaluation depends on the series only through its
		// effective CI, so resolving it here keeps the cache exact: a
		// constant series hits the same entry as its scalar twin.
		eff, err := d.model.EffectiveCI(sig)
		if err != nil {
			return "", nil, fmt.Errorf("%w: ci_series: %v", errBadRequest, err)
		}
		ci = eff
	} else if req.CIPeriodH != 0 {
		return "", nil, fmt.Errorf("%w: ci_period_h without ci_series", errBadRequest)
	}
	params, err := s.traceParams(req.Workload)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey("evaluate", d.name, green.Name, baseline.Name, fmtCI(ci),
		fmt.Sprintf("%t", req.CXLBacked), params.Name,
		strconv.FormatUint(params.Seed, 10),
		strconv.FormatFloat(params.ArrivalsPerHour, 'g', -1, 64),
		strconv.FormatFloat(params.HorizonHours, 'g', -1, 64))
	return key, func() ([]byte, error) {
		tr, err := trace.Generate(params)
		if err != nil {
			return nil, err
		}
		ev, err := d.fw.Evaluate(gsf.Input{
			Green:     green,
			Baseline:  baseline,
			Workload:  tr,
			CI:        ci,
			CXLBacked: req.CXLBacked,
		})
		if err != nil {
			return nil, err
		}
		resp := api.EvaluateResponse{
			Dataset:        d.name,
			Green:          green.Name,
			Baseline:       baseline.Name,
			CI:             ci,
			PerCoreGreen:   ev.PerCoreGreen.Total(),
			PerCoreBase:    ev.PerCoreBase.Total(),
			PerCoreSavings: ev.PerCoreSavings.Total,
			ClusterSavings: ev.ClusterSavings,
			DCSavings:      ev.DCSavings,
		}
		resp.Workload.Name = params.Name
		resp.Workload.Seed = params.Seed
		resp.Workload.VMs = len(tr.VMs)
		resp.Cluster.BaselineOnly = ev.Mix.BaselineOnly
		resp.Cluster.BaseServers = ev.Buffered.Mix.NBase
		resp.Cluster.GreenServers = ev.Buffered.Mix.NGreen
		resp.Cluster.BufferServers = ev.Buffered.BufferServers
		return marshalBody(resp)
	}, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req api.EvaluateRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key, fn, err := s.evaluateJob(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.maybeForward(w, r, key, body) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, cached, err := s.compute(ctx, key, fn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeComputed(w, out, cached)
}

// traceParams resolves a workload spec against the generator defaults
// and bounds its cost.
func (s *Server) traceParams(spec api.WorkloadSpec) (trace.GenParams, error) {
	if spec.Name == "" {
		spec.Name = "gsfd"
	}
	p := trace.DefaultParams(spec.Name, spec.Seed)
	if spec.ArrivalsPerHour < 0 || spec.HorizonHours < 0 {
		return p, fmt.Errorf("%w: workload rates must be non-negative", errBadRequest)
	}
	if spec.ArrivalsPerHour > 0 {
		p.ArrivalsPerHour = spec.ArrivalsPerHour
	}
	if spec.HorizonHours > 0 {
		p.HorizonHours = spec.HorizonHours
	}
	if expected := p.ArrivalsPerHour * p.HorizonHours; expected > float64(s.cfg.MaxTraceVMs) {
		return p, fmt.Errorf("%w: workload of ~%.0f VMs exceeds the per-request limit of %d",
			errBadRequest, expected, s.cfg.MaxTraceVMs)
	}
	return p, nil
}

// --- GET /v1/skus, /v1/datasets, /v1/limits ---------------------------

func (s *Server) handleSKUs(w http.ResponseWriter, r *http.Request) {
	out := make([]api.SKUInfo, 0, len(s.skuOrder))
	for _, name := range s.skuOrder {
		sku := s.skus[name]
		out = append(out, api.SKUInfo{
			Name:            sku.Name,
			CPU:             sku.CPU.Name,
			Cores:           sku.Cores(),
			LocalDRAM:       sku.LocalDRAMGB(),
			CXLDRAM:         sku.CXLDRAMGB(),
			SSDTB:           sku.TotalSSDTB(),
			ReusedSSDTB:     sku.ReusedSSDTB(),
			MemoryCoreRatio: sku.MemoryCoreRatio(),
			HasCXL:          sku.HasCXL(),
		})
	}
	s.writeJSON(w, api.SKUsResponse{SKUs: out})
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out := make([]api.DatasetInfo, 0, len(s.datasetOrder))
	for _, name := range s.datasetOrder {
		data := s.datasets[name].model.Data()
		out = append(out, api.DatasetInfo{
			Name:         data.Name,
			DefaultCI:    data.DefaultCI,
			Lifetime:     data.Lifetime,
			DerateFactor: data.DerateFactor,
			PUE:          data.PUE,
		})
	}
	s.writeJSON(w, api.DatasetsResponse{Datasets: out})
}

// handleLimits reports the server's operational limits (batch size,
// workload bound, pool shape, rate limit) so clients can size requests
// without tripping 400s.
func (s *Server) handleLimits(w http.ResponseWriter, r *http.Request) {
	resp := api.LimitsResponse{
		Workers:               s.cfg.Workers,
		QueueDepth:            s.cfg.QueueDepth,
		MaxBatchItems:         s.cfg.MaxBatchItems,
		MaxTraceVMs:           s.cfg.MaxTraceVMs,
		MaxDesignCandidates:   s.cfg.MaxDesignCandidates,
		RequestTimeoutSeconds: s.cfg.RequestTimeout.Seconds(),
		RatePerSec:            s.cfg.RatePerSec,
		RateBurst:             s.cfg.RateBurst,
		Replicas:              1,
	}
	if s.ring != nil {
		resp.Replicas = s.ring.size()
	}
	s.writeJSON(w, resp)
}

// --- POST /v1/ciseries ------------------------------------------------

// signalFromPayload builds and validates a gridci signal from request
// JSON; validation failures map to HTTP 400.
func signalFromPayload(name string, samples []api.CISample, periodH float64) (*gsf.CISignal, error) {
	sig := &gsf.CISignal{Name: name, Period: units.Hours(periodH)}
	for _, p := range samples {
		sig.Samples = append(sig.Samples, gsf.CISample{T: units.Hours(p.TH), CI: units.CarbonIntensity(p.CI)})
	}
	if err := sig.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return sig, nil
}

// handleCISeries validates a carbon-intensity timeseries and returns
// its summary statistics plus the effective CI an evaluation would
// use. Validation and a handful of interpolations are far cheaper than
// a request decode, so this runs inline, outside the worker pool.
func (s *Server) handleCISeries(w http.ResponseWriter, r *http.Request) {
	var req api.CISeriesRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Name == "" {
		req.Name = "request"
	}
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sig, err := signalFromPayload(req.Name, req.Series, req.PeriodH)
	if err != nil {
		s.writeError(w, err)
		return
	}
	span := sig.Period
	if span <= 0 {
		span = sig.Samples[len(sig.Samples)-1].T
	}
	eff, err := d.model.EffectiveCI(sig)
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	st := sig.Stats(0, span)
	resp := api.CISeriesResponse{
		Name:        sig.Name,
		Samples:     len(sig.Samples),
		PeriodH:     float64(sig.Period),
		Constant:    sig.IsConstant(),
		Mean:        st.Mean,
		Peak:        st.Peak,
		Trough:      st.Trough,
		P10:         sig.Percentile(0.1, 0, span),
		P50:         sig.Percentile(0.5, 0, span),
		P90:         sig.Percentile(0.9, 0, span),
		Dataset:     d.name,
		EffectiveCI: eff,
	}
	s.writeJSON(w, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	body, err := marshalBody(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
