package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"github.com/greensku/gsf"
	"github.com/greensku/gsf/internal/trace"
	"github.com/greensku/gsf/internal/units"
)

// errBadRequest marks a client-side mistake — malformed JSON, an
// unknown SKU or dataset name, an out-of-range parameter — and maps to
// HTTP 400.
var errBadRequest = errors.New("server: bad request")

// maxBodyBytes bounds request bodies; every request here is a few
// hundred bytes of JSON.
const maxBodyBytes = 1 << 20

// decodeJSON strictly parses the request body into dst.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("%w: malformed request body: %v", errBadRequest, err)
	}
	return nil
}

func (s *Server) lookupDataset(name string) (*dataset, error) {
	if name == "" {
		name = s.defaultDataset // open-source
	}
	d, ok := s.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: dataset %q (see GET /v1/datasets)", errBadRequest, name)
	}
	return d, nil
}

func (s *Server) lookupSKU(field, name string) (gsf.SKU, error) {
	sku, ok := s.skus[name]
	if !ok {
		return gsf.SKU{}, fmt.Errorf("%w: %s SKU %q (see GET /v1/skus)", errBadRequest, field, name)
	}
	return sku, nil
}

// writeError sends a JSON error body with the status mapped from err.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := httpStatus(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// writeComputed sends a compute result with its cache disposition.
func writeComputed(w http.ResponseWriter, body []byte, cached bool) {
	w.Header().Set("Content-Type", "application/json")
	if cached {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// fmtCI renders a carbon intensity for the canonical cache key.
func fmtCI(ci units.CarbonIntensity) string {
	return strconv.FormatFloat(float64(ci), 'g', -1, 64)
}

// --- POST /v1/percore -------------------------------------------------

type perCoreRequest struct {
	// Dataset names the carbon dataset; empty selects open-source.
	Dataset string `json:"dataset"`
	// SKU names a catalog SKU (GET /v1/skus).
	SKU string `json:"sku"`
	// CI is the grid carbon intensity in kgCO2e/kWh; zero or omitted
	// uses the dataset default.
	CI float64 `json:"ci"`
}

type perCoreResponse struct {
	Dataset     string                `json:"dataset"`
	SKU         string                `json:"sku"`
	CI          units.CarbonIntensity `json:"ci"`
	Operational units.KgCO2e          `json:"operational_per_core"`
	Embodied    units.KgCO2e          `json:"embodied_per_core"`
	Total       units.KgCO2e          `json:"total_per_core"`
}

// perCoreJob validates a percore request into its cache key and
// computation; shared by the single endpoint and /v1/batch so both
// populate the same cache entries.
func (s *Server) perCoreJob(req perCoreRequest) (string, func() ([]byte, error), error) {
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		return "", nil, err
	}
	sku, err := s.lookupSKU("target", req.SKU)
	if err != nil {
		return "", nil, err
	}
	ci, err := normalizeCI(req.CI, d)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey("percore", d.name, sku.Name, fmtCI(ci))
	return key, func() ([]byte, error) {
		pc, err := d.model.PerCore(sku, ci)
		if err != nil {
			return nil, err
		}
		return marshalBody(perCoreResponse{
			Dataset:     d.name,
			SKU:         pc.SKU,
			CI:          ci,
			Operational: pc.Operational,
			Embodied:    pc.Embodied,
			Total:       pc.Total(),
		})
	}, nil
}

func (s *Server) handlePerCore(w http.ResponseWriter, r *http.Request) {
	var req perCoreRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key, fn, err := s.perCoreJob(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, cached, err := s.compute(ctx, key, fn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeComputed(w, body, cached)
}

func normalizeCI(ci float64, d *dataset) (units.CarbonIntensity, error) {
	if ci < 0 {
		return 0, fmt.Errorf("%w: negative carbon intensity %v", errBadRequest, ci)
	}
	if ci == 0 {
		return d.model.Data().DefaultCI, nil
	}
	return units.CarbonIntensity(ci), nil
}

// --- POST /v1/savings -------------------------------------------------

type savingsRequest struct {
	Dataset string `json:"dataset"`
	// SKU is the candidate (typically a GreenSKU).
	SKU string `json:"sku"`
	// Baseline is the comparison SKU; empty selects "Baseline" (Gen3).
	Baseline string  `json:"baseline"`
	CI       float64 `json:"ci"`
}

type savingsResponse struct {
	Dataset  string                `json:"dataset"`
	SKU      string                `json:"sku"`
	Baseline string                `json:"baseline"`
	CI       units.CarbonIntensity `json:"ci"`
	// Fractions, e.g. 0.28 means the candidate saves 28% (Table
	// IV/VIII rows).
	Operational float64 `json:"operational_savings"`
	Embodied    float64 `json:"embodied_savings"`
	Total       float64 `json:"total_savings"`
}

// savingsJob validates a savings request into its cache key and
// computation; shared with /v1/batch.
func (s *Server) savingsJob(req savingsRequest) (string, func() ([]byte, error), error) {
	if req.Baseline == "" {
		req.Baseline = "Baseline"
	}
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		return "", nil, err
	}
	sku, err := s.lookupSKU("target", req.SKU)
	if err != nil {
		return "", nil, err
	}
	baseline, err := s.lookupSKU("baseline", req.Baseline)
	if err != nil {
		return "", nil, err
	}
	ci, err := normalizeCI(req.CI, d)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey("savings", d.name, sku.Name, baseline.Name, fmtCI(ci))
	return key, func() ([]byte, error) {
		sv, err := d.model.Savings(sku, baseline, ci)
		if err != nil {
			return nil, err
		}
		return marshalBody(savingsResponse{
			Dataset:     d.name,
			SKU:         sv.SKU,
			Baseline:    baseline.Name,
			CI:          ci,
			Operational: sv.Operational,
			Embodied:    sv.Embodied,
			Total:       sv.Total,
		})
	}, nil
}

func (s *Server) handleSavings(w http.ResponseWriter, r *http.Request) {
	var req savingsRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key, fn, err := s.savingsJob(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, cached, err := s.compute(ctx, key, fn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeComputed(w, body, cached)
}

// --- POST /v1/evaluate ------------------------------------------------

type workloadSpec struct {
	// Name labels the synthetic trace; it also seeds the app-class
	// assignment, so it is part of the cache key. Empty means "gsfd".
	Name string `json:"name"`
	// Seed makes the trace deterministic; identical specs produce
	// identical traces, which is what makes evaluate cacheable.
	Seed uint64 `json:"seed"`
	// ArrivalsPerHour and HorizonHours override the production-like
	// defaults (24/h over 14 days); use smaller values for cheap
	// queries.
	ArrivalsPerHour float64 `json:"arrivals_per_hour"`
	HorizonHours    float64 `json:"horizon_hours"`
}

type evaluateRequest struct {
	Dataset string `json:"dataset"`
	// Green names the candidate GreenSKU; empty selects GreenSKU-Full.
	Green string `json:"green"`
	// Baseline defaults to "Baseline" (Gen3).
	Baseline string  `json:"baseline"`
	CI       float64 `json:"ci"`
	// CISeries evaluates under a time-varying grid intensity: a
	// piecewise-linear timeseries collapsed to its effective CI over
	// one server lifetime. Mutually exclusive with a non-zero scalar
	// ci; a constant series is byte-identical to the scalar path.
	CISeries []ciSamplePayload `json:"ci_series"`
	// CIPeriodH makes the series periodic (e.g. 24 for diurnal).
	CIPeriodH float64 `json:"ci_period_h"`
	// CXLBacked evaluates performance as if VM memory were CXL-served.
	CXLBacked bool         `json:"cxl_backed"`
	Workload  workloadSpec `json:"workload"`
}

type evaluateResponse struct {
	Dataset  string                `json:"dataset"`
	Green    string                `json:"green"`
	Baseline string                `json:"baseline"`
	CI       units.CarbonIntensity `json:"ci"`
	Workload struct {
		Name string `json:"name"`
		Seed uint64 `json:"seed"`
		VMs  int    `json:"vms"`
	} `json:"workload"`
	PerCoreGreen   units.KgCO2e `json:"per_core_green"`
	PerCoreBase    units.KgCO2e `json:"per_core_baseline"`
	PerCoreSavings float64      `json:"per_core_savings"`
	Cluster        struct {
		BaselineOnly  int `json:"baseline_only_servers"`
		BaseServers   int `json:"base_servers"`
		GreenServers  int `json:"green_servers"`
		BufferServers int `json:"buffer_servers"`
	} `json:"cluster"`
	ClusterSavings float64 `json:"cluster_savings"`
	DCSavings      float64 `json:"dc_savings"`
}

// evaluateJob validates an evaluate request into its cache key and
// computation; shared with /v1/batch.
func (s *Server) evaluateJob(req evaluateRequest) (string, func() ([]byte, error), error) {
	if req.Green == "" {
		req.Green = "GreenSKU-Full"
	}
	if req.Baseline == "" {
		req.Baseline = "Baseline"
	}
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		return "", nil, err
	}
	green, err := s.lookupSKU("green", req.Green)
	if err != nil {
		return "", nil, err
	}
	baseline, err := s.lookupSKU("baseline", req.Baseline)
	if err != nil {
		return "", nil, err
	}
	ci, err := normalizeCI(req.CI, d)
	if err != nil {
		return "", nil, err
	}
	if len(req.CISeries) > 0 {
		if req.CI != 0 {
			return "", nil, fmt.Errorf("%w: both a scalar ci and a ci_series were set", errBadRequest)
		}
		sig, err := signalFromPayload("evaluate", req.CISeries, req.CIPeriodH)
		if err != nil {
			return "", nil, err
		}
		// The evaluation depends on the series only through its
		// effective CI, so resolving it here keeps the cache exact: a
		// constant series hits the same entry as its scalar twin.
		eff, err := d.model.EffectiveCI(sig)
		if err != nil {
			return "", nil, fmt.Errorf("%w: ci_series: %v", errBadRequest, err)
		}
		ci = eff
	} else if req.CIPeriodH != 0 {
		return "", nil, fmt.Errorf("%w: ci_period_h without ci_series", errBadRequest)
	}
	params, err := s.traceParams(req.Workload)
	if err != nil {
		return "", nil, err
	}
	key := cacheKey("evaluate", d.name, green.Name, baseline.Name, fmtCI(ci),
		fmt.Sprintf("%t", req.CXLBacked), params.Name,
		strconv.FormatUint(params.Seed, 10),
		strconv.FormatFloat(params.ArrivalsPerHour, 'g', -1, 64),
		strconv.FormatFloat(params.HorizonHours, 'g', -1, 64))
	return key, func() ([]byte, error) {
		tr, err := trace.Generate(params)
		if err != nil {
			return nil, err
		}
		ev, err := d.fw.Evaluate(gsf.Input{
			Green:     green,
			Baseline:  baseline,
			Workload:  tr,
			CI:        ci,
			CXLBacked: req.CXLBacked,
		})
		if err != nil {
			return nil, err
		}
		resp := evaluateResponse{
			Dataset:        d.name,
			Green:          green.Name,
			Baseline:       baseline.Name,
			CI:             ci,
			PerCoreGreen:   ev.PerCoreGreen.Total(),
			PerCoreBase:    ev.PerCoreBase.Total(),
			PerCoreSavings: ev.PerCoreSavings.Total,
			ClusterSavings: ev.ClusterSavings,
			DCSavings:      ev.DCSavings,
		}
		resp.Workload.Name = params.Name
		resp.Workload.Seed = params.Seed
		resp.Workload.VMs = len(tr.VMs)
		resp.Cluster.BaselineOnly = ev.Mix.BaselineOnly
		resp.Cluster.BaseServers = ev.Buffered.Mix.NBase
		resp.Cluster.GreenServers = ev.Buffered.Mix.NGreen
		resp.Cluster.BufferServers = ev.Buffered.BufferServers
		return marshalBody(resp)
	}, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req evaluateRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key, fn, err := s.evaluateJob(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, cached, err := s.compute(ctx, key, fn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeComputed(w, body, cached)
}

// traceParams resolves a workload spec against the generator defaults
// and bounds its cost.
func (s *Server) traceParams(spec workloadSpec) (trace.GenParams, error) {
	if spec.Name == "" {
		spec.Name = "gsfd"
	}
	p := trace.DefaultParams(spec.Name, spec.Seed)
	if spec.ArrivalsPerHour < 0 || spec.HorizonHours < 0 {
		return p, fmt.Errorf("%w: workload rates must be non-negative", errBadRequest)
	}
	if spec.ArrivalsPerHour > 0 {
		p.ArrivalsPerHour = spec.ArrivalsPerHour
	}
	if spec.HorizonHours > 0 {
		p.HorizonHours = spec.HorizonHours
	}
	if expected := p.ArrivalsPerHour * p.HorizonHours; expected > float64(s.cfg.MaxTraceVMs) {
		return p, fmt.Errorf("%w: workload of ~%.0f VMs exceeds the per-request limit of %d",
			errBadRequest, expected, s.cfg.MaxTraceVMs)
	}
	return p, nil
}

// --- GET /v1/skus and /v1/datasets -----------------------------------

type skuInfo struct {
	Name            string   `json:"name"`
	CPU             string   `json:"cpu"`
	Cores           int      `json:"cores"`
	LocalDRAM       units.GB `json:"local_dram"`
	CXLDRAM         units.GB `json:"cxl_dram"`
	SSDTB           float64  `json:"ssd_tb"`
	ReusedSSDTB     float64  `json:"reused_ssd_tb"`
	MemoryCoreRatio float64  `json:"memory_core_ratio"`
	HasCXL          bool     `json:"has_cxl"`
}

func (s *Server) handleSKUs(w http.ResponseWriter, r *http.Request) {
	out := make([]skuInfo, 0, len(s.skuOrder))
	for _, name := range s.skuOrder {
		sku := s.skus[name]
		out = append(out, skuInfo{
			Name:            sku.Name,
			CPU:             sku.CPU.Name,
			Cores:           sku.Cores(),
			LocalDRAM:       sku.LocalDRAMGB(),
			CXLDRAM:         sku.CXLDRAMGB(),
			SSDTB:           sku.TotalSSDTB(),
			ReusedSSDTB:     sku.ReusedSSDTB(),
			MemoryCoreRatio: sku.MemoryCoreRatio(),
			HasCXL:          sku.HasCXL(),
		})
	}
	s.writeJSON(w, map[string]any{"skus": out})
}

type datasetInfo struct {
	Name         string                `json:"name"`
	DefaultCI    units.CarbonIntensity `json:"default_ci"`
	Lifetime     units.Hours           `json:"lifetime"`
	DerateFactor float64               `json:"derate_factor"`
	PUE          float64               `json:"pue"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out := make([]datasetInfo, 0, len(s.datasetOrder))
	for _, name := range s.datasetOrder {
		data := s.datasets[name].model.Data()
		out = append(out, datasetInfo{
			Name:         data.Name,
			DefaultCI:    data.DefaultCI,
			Lifetime:     data.Lifetime,
			DerateFactor: data.DerateFactor,
			PUE:          data.PUE,
		})
	}
	s.writeJSON(w, map[string]any{"datasets": out})
}

// --- POST /v1/ciseries ------------------------------------------------

// ciSamplePayload is one (time, intensity) knot of a request-supplied
// carbon-intensity timeseries.
type ciSamplePayload struct {
	TH float64 `json:"t_h"`
	CI float64 `json:"ci"`
}

// signalFromPayload builds and validates a gridci signal from request
// JSON; validation failures map to HTTP 400.
func signalFromPayload(name string, samples []ciSamplePayload, periodH float64) (*gsf.CISignal, error) {
	sig := &gsf.CISignal{Name: name, Period: units.Hours(periodH)}
	for _, p := range samples {
		sig.Samples = append(sig.Samples, gsf.CISample{T: units.Hours(p.TH), CI: units.CarbonIntensity(p.CI)})
	}
	if err := sig.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return sig, nil
}

type ciSeriesRequest struct {
	// Name labels the series in the response (optional).
	Name string `json:"name"`
	// Series is the piecewise-linear timeseries; Period makes it wrap.
	Series  []ciSamplePayload `json:"series"`
	PeriodH float64           `json:"period_h"`
	// Dataset selects the lifetime used for the effective CI; empty
	// selects open-source.
	Dataset string `json:"dataset"`
}

type ciSeriesResponse struct {
	Name     string  `json:"name"`
	Samples  int     `json:"samples"`
	PeriodH  float64 `json:"period_h"`
	Constant bool    `json:"constant"`
	// Window statistics over one period (or the sampled span when
	// aperiodic).
	Mean   units.CarbonIntensity `json:"mean"`
	Peak   units.CarbonIntensity `json:"peak"`
	Trough units.CarbonIntensity `json:"trough"`
	P10    units.CarbonIntensity `json:"p10"`
	P50    units.CarbonIntensity `json:"p50"`
	P90    units.CarbonIntensity `json:"p90"`
	// EffectiveCI is the scalar that yields identical lifetime
	// operational emissions under the selected dataset: the value
	// /v1/evaluate substitutes when given this series.
	Dataset     string                `json:"dataset"`
	EffectiveCI units.CarbonIntensity `json:"effective_ci"`
}

// handleCISeries validates a carbon-intensity timeseries and returns
// its summary statistics plus the effective CI an evaluation would
// use. Validation and a handful of interpolations are far cheaper than
// a request decode, so this runs inline, outside the worker pool.
func (s *Server) handleCISeries(w http.ResponseWriter, r *http.Request) {
	var req ciSeriesRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if req.Name == "" {
		req.Name = "request"
	}
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sig, err := signalFromPayload(req.Name, req.Series, req.PeriodH)
	if err != nil {
		s.writeError(w, err)
		return
	}
	span := sig.Period
	if span <= 0 {
		span = sig.Samples[len(sig.Samples)-1].T
	}
	eff, err := d.model.EffectiveCI(sig)
	if err != nil {
		s.writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	st := sig.Stats(0, span)
	resp := ciSeriesResponse{
		Name:        sig.Name,
		Samples:     len(sig.Samples),
		PeriodH:     float64(sig.Period),
		Constant:    sig.IsConstant(),
		Mean:        st.Mean,
		Peak:        st.Peak,
		Trough:      st.Trough,
		P10:         sig.Percentile(0.1, 0, span),
		P50:         sig.Percentile(0.5, 0, span),
		P90:         sig.Percentile(0.9, 0, span),
		Dataset:     d.name,
		EffectiveCI: eff,
	}
	s.writeJSON(w, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	body, err := marshalBody(v)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
