// Package server implements gsfd, the GSF evaluation service: an
// HTTP daemon that answers carbon-model queries and full framework
// evaluations online instead of through one-shot CLI runs.
//
// Architecture:
//
//	handler -> result cache (LRU+TTL, exact bytes)
//	        -> singleflight (identical in-flight requests coalesce)
//	        -> bounded worker pool (queue full => 429 + Retry-After)
//	        -> gsf.Model / core.Framework (built once per dataset)
//
// Evaluations are deterministic functions of the request (dataset, SKU
// names, carbon intensity, trace seed), so the cache is exact: a hit
// returns byte-identical output. Observability is built in: a
// hand-rolled OpenMetrics /metrics endpoint, /healthz, /readyz, and
// structured request logs via log/slog.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"github.com/greensku/gsf"
	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/core"
	"github.com/greensku/gsf/internal/design"
	"github.com/greensku/gsf/internal/search"
)

// Config parameterises the service. The zero value is usable: every
// field falls back to the documented default.
type Config struct {
	// Workers is the evaluation worker pool size. Default: GOMAXPROCS.
	Workers int
	// QueueDepth is the pending-request queue capacity beyond the
	// workers. A full queue sheds load with 429. Default: 64.
	QueueDepth int
	// CacheEntries bounds the result cache. Default: 1024.
	CacheEntries int
	// CacheTTL is the result lifetime. Default: 15 minutes.
	CacheTTL time.Duration
	// RequestTimeout bounds one request end to end, queueing included.
	// Default: 30 seconds.
	RequestTimeout time.Duration
	// MaxTraceVMs bounds the expected VM count of a synthetic
	// workload request (arrival rate x horizon). Default: 100000.
	MaxTraceVMs int
	// MaxBatchItems bounds the item count of one /v1/batch or /v1/sweep
	// request. Default: 256.
	MaxBatchItems int
	// MaxDesignCandidates bounds the candidate count one /v1/design
	// request may enumerate. Default: 4096.
	MaxDesignCandidates int
	// DesignSpace overrides the /v1/design candidate space. Default:
	// the design package's stock space (design.DefaultOptions).
	DesignSpace *search.Space
	// DesignPerf overrides the /v1/design performance protocol —
	// simulation budget, knee bracket. Default: design.DefaultPerfOptions.
	DesignPerf *design.PerfOptions
	// RatePerSec enables per-client rate limiting: each client's token
	// bucket refills at this rate. Zero disables the limiter (the
	// worker-queue 429 path still sheds load). Default: 0.
	RatePerSec float64
	// RateBurst is the per-client token-bucket capacity. Default when
	// limiting is on: 4x RatePerSec, minimum 1.
	RateBurst int
	// SelfURL is this replica's advertised base URL (e.g.
	// "http://10.0.0.1:8080"), required when Peers is set. Default: "".
	SelfURL string
	// Peers lists every replica's base URL (self included or not; it is
	// deduplicated). Two or more distinct members turn on consistent-hash
	// sharding of the evaluation keyspace. Default: none.
	Peers []string
	// Logger receives structured request logs. Default: slog.Default.
	Logger *slog.Logger
	// Audit, when set, threads runtime invariant checking through every
	// framework the service builds; the violation count is exported as
	// the gsfd_audit_violations gauge. Default: nil (auditing off).
	Audit *audit.Recorder
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 1024
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 15 * time.Minute
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxTraceVMs <= 0 {
		c.MaxTraceVMs = 100000
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.MaxDesignCandidates <= 0 {
		c.MaxDesignCandidates = 4096
	}
	if c.RatePerSec > 0 && c.RateBurst <= 0 {
		c.RateBurst = int(4 * c.RatePerSec)
		if c.RateBurst < 1 {
			c.RateBurst = 1
		}
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// dataset is one servable carbon dataset with its models built once at
// startup (the gsf.Model handle keeps the hot path free of per-request
// dataset validation).
type dataset struct {
	name  string
	model *gsf.Model
	fw    *gsf.Framework
}

// Server is the gsfd service. Construct with New; it is safe for
// concurrent use.
type Server struct {
	cfg     Config
	log     *slog.Logger
	mux     *http.ServeMux
	metrics *Metrics

	datasets map[string]*dataset
	// datasetOrder and skuOrder are sorted by name so catalog listings
	// are deterministic; defaultDataset pins the catalog's first entry
	// (open-source) independently of that ordering.
	datasetOrder   []string
	defaultDataset string
	skus           map[string]gsf.SKU
	skuOrder       []string

	pool    *pool
	cache   *resultCache
	flight  *flightGroup
	ring    *ring    // nil when sharding is off
	limiter *limiter // nil when rate limiting is off

	inflight atomic.Int64 // compute requests currently being served
	ready    atomic.Bool

	// testHook, when set, runs at the start of every pooled
	// computation. Tests use it to hold workers busy deterministically.
	testHook func()
}

// New builds the service: validates and indexes every dataset and SKU,
// starts the worker pool, and wires the routes.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		mux:      http.NewServeMux(),
		metrics:  NewMetrics(),
		datasets: map[string]*dataset{},
		skus:     map[string]gsf.SKU{},
		pool:     newPool(cfg.Workers, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheEntries, cfg.CacheTTL),
		flight:   newFlightGroup(),
		limiter:  newLimiter(cfg.RatePerSec, cfg.RateBurst),
	}
	if len(cfg.Peers) > 0 {
		ring, err := newRing(cfg.SelfURL, cfg.Peers, cfg.RequestTimeout)
		if err != nil {
			s.pool.close()
			return nil, err
		}
		s.ring = ring
	}

	var fwOpts []gsf.Option
	if cfg.Audit != nil {
		fwOpts = append(fwOpts, gsf.WithAudit(cfg.Audit))
	}
	for _, d := range gsf.DatasetCatalog() {
		m, err := gsf.NewModel(d)
		if err != nil {
			s.pool.close()
			return nil, fmt.Errorf("server: dataset %s: %w", d.Name, err)
		}
		s.datasets[d.Name] = &dataset{name: d.Name, model: m, fw: m.Framework(fwOpts...)}
		s.datasetOrder = append(s.datasetOrder, d.Name)
	}
	s.defaultDataset = s.datasetOrder[0]
	sort.Strings(s.datasetOrder)
	for _, sku := range gsf.SKUCatalog() {
		if _, dup := s.skus[sku.Name]; !dup {
			s.skus[sku.Name] = sku
			s.skuOrder = append(s.skuOrder, sku.Name)
		}
	}
	sort.Strings(s.skuOrder)

	s.metrics.RegisterGauge("gsfd_queue_depth",
		"Evaluations waiting for a worker.", func() float64 { return float64(s.pool.depth()) })
	s.metrics.RegisterGauge("gsfd_workers_busy",
		"Workers currently running an evaluation.", func() float64 { return float64(s.pool.busyWorkers()) })
	s.metrics.RegisterGauge("gsfd_worker_utilization",
		"Busy workers as a fraction of the pool.", s.pool.utilization)
	s.metrics.RegisterGauge("gsfd_evaluations_inflight",
		"Compute requests currently being served.", func() float64 { return float64(s.inflight.Load()) })
	s.metrics.RegisterGauge("gsfd_cache_entries",
		"Entries in the result cache.", func() float64 { return float64(s.cache.len()) })
	if cfg.Audit != nil {
		s.metrics.RegisterGauge("gsfd_audit_violations",
			"Invariant violations recorded since start (0 when auditing is off).",
			func() float64 { return float64(cfg.Audit.Count()) })
	}

	s.routes()
	s.ready.Store(true)
	return s, nil
}

func (s *Server) routes() {
	s.mux.Handle("POST /v1/percore", s.instrument("/v1/percore", s.limited(s.handlePerCore)))
	s.mux.Handle("POST /v1/savings", s.instrument("/v1/savings", s.limited(s.handleSavings)))
	s.mux.Handle("POST /v1/evaluate", s.instrument("/v1/evaluate", s.limited(s.handleEvaluate)))
	s.mux.Handle("POST /v1/batch", s.instrument("/v1/batch", s.limited(s.handleBatch)))
	s.mux.Handle("POST /v1/sweep", s.instrument("/v1/sweep", s.limited(s.handleSweep)))
	s.mux.Handle("POST /v1/ciseries", s.instrument("/v1/ciseries", s.limited(s.handleCISeries)))
	s.mux.Handle("POST /v1/design", s.instrument("/v1/design", s.limited(s.handleDesign)))
	s.mux.Handle("POST /v1/replay", s.instrument("/v1/replay", s.limited(s.handleReplay)))
	s.mux.Handle("GET /v1/skus", s.instrument("/v1/skus", s.handleSKUs))
	s.mux.Handle("GET /v1/datasets", s.instrument("/v1/datasets", s.handleDatasets))
	s.mux.Handle("GET /v1/limits", s.instrument("/v1/limits", s.handleLimits))
	s.mux.Handle("GET /metrics", s.metrics.handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// AuditViolations reports the invariant violations recorded since
// start; zero when auditing is not configured.
func (s *Server) AuditViolations() int64 {
	if s.cfg.Audit == nil {
		return 0
	}
	return s.cfg.Audit.Count()
}

// SetReady flips the /readyz state; cmd/gsfd marks the server
// not-ready at the start of a graceful drain so load balancers stop
// routing to it before in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Close drains the worker pool. In-flight and queued evaluations
// complete; new submissions would panic, so stop the HTTP listener
// first.
func (s *Server) Close() { s.pool.close() }

// statusRecorder captures the response code for logs and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush forwards to the underlying writer so streamed responses keep
// per-record flushing through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an endpoint with request metrics and structured
// logging under a fixed endpoint label (bounded metric cardinality).
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		batch := batchBucket(rec.Header().Get(batchHeader))
		s.metrics.Requests.with(endpoint, fmt.Sprintf("%d", rec.status), batch).inc()
		s.metrics.Latency.with(endpoint).observe(elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method,
			"endpoint", endpoint,
			"status", rec.status,
			"duration_ms", float64(elapsed.Microseconds())/1000,
			"bytes", rec.bytes,
			"remote", r.RemoteAddr,
		)
	})
}

// cacheKey canonicalises a request into the cache/singleflight key.
// The canonical form hashes every evaluation-relevant field; requests
// that resolve to the same computation (e.g. an explicit CI equal to
// the dataset default vs. CI omitted) share a key.
func cacheKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// compute serves one deterministic computation: result cache, then
// singleflight dedup, then the bounded pool. It returns the response
// body and whether it came from the cache.
func (s *Server) compute(ctx context.Context, key string, fn func() ([]byte, error)) ([]byte, bool, error) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	if body, ok := s.cache.get(key); ok {
		s.metrics.CacheHits.inc()
		return body, true, nil
	}
	s.metrics.CacheMisses.inc()

	call, leader := s.flight.join(key)
	if leader {
		err := s.pool.submit(ctx, func() {
			if s.testHook != nil {
				s.testHook()
			}
			body, err := fn()
			if err == nil {
				s.cache.put(key, body)
			}
			s.flight.finish(key, call, body, err)
		})
		if err != nil {
			// Wake any followers that joined between join and here.
			s.flight.finish(key, call, nil, err)
			if errors.Is(err, ErrQueueFull) {
				s.metrics.Shed.inc()
			}
			return nil, false, err
		}
	} else {
		s.metrics.Deduplicated.inc()
	}
	body, err := call.wait(ctx)
	return body, false, err
}

// httpStatus maps a compute/validation error to a response code:
// client mistakes to 4xx, capacity to 429, deadlines to 503.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, errRateLimited):
		return http.StatusTooManyRequests
	case errors.Is(err, core.ErrBadInput), errors.Is(err, errBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
