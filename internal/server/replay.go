package server

// POST /v1/replay: placement replay with snapshot forking. The request
// names a synthetic workload and a two-pool cluster; the server replays
// the trace through the columnar allocation simulator, checkpoints the
// cluster state at the fork point with the simulator's binary snapshot
// codec, and replays the remaining events once per requested fork with
// a what-if decider restored from that snapshot. The response compares
// the straight run against every fork — the online form of "what would
// the fleet look like if we had adopted differently from hour N on",
// answered without replaying the shared prefix per variant.
//
// Everything is a deterministic function of the request (the trace is
// seeded, the deciders are parameterised, the simulator is
// sequential), so responses cache exactly like the evaluation
// endpoints and forward to the owning replica on a sharded fleet.

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"github.com/greensku/gsf/internal/alloc"
	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/server/api"
	"github.com/greensku/gsf/internal/trace"
)

const (
	// maxReplayForks bounds the what-if variants of one request.
	maxReplayForks = 8
	// maxReplayServers bounds each pool. The columnar simulator never
	// materializes servers the trace does not touch, so the bound
	// guards the request's plausibility, not the server's memory.
	maxReplayServers = 1000000
	// maxReplayScale bounds a decider's resource multiplier.
	maxReplayScale = 8.0
)

// replayDecider is the endpoint's parameterised placement policy:
// adopt VMs whose id falls in the first adoptPercent of each hundred,
// scaling adopted requests by scale. Deterministic in its parameters,
// which is what makes replay responses cacheable.
func replayDecider(adoptPercent int, scale float64) alloc.Decider {
	return func(vm trace.VM) alloc.Decision {
		return alloc.Decision{Adopt: vm.ID%100 < adoptPercent, Scale: scale}
	}
}

// replayScale normalises a request scale: zero means unscaled.
func replayScale(scale float64) float64 {
	if scale == 0 {
		return 1
	}
	return scale
}

func checkReplayKnobs(field string, adoptPercent int, scale float64) error {
	if adoptPercent < 0 || adoptPercent > 100 {
		return fmt.Errorf("%w: %s adopt_percent %d out of [0,100]", errBadRequest, field, adoptPercent)
	}
	if s := replayScale(scale); math.IsNaN(s) || s < 1 || s > maxReplayScale {
		return fmt.Errorf("%w: %s scale %v out of [1,%v]", errBadRequest, field, scale, maxReplayScale)
	}
	return nil
}

// replayJob validates a replay request into its cache key and
// computation.
func (s *Server) replayJob(req api.ReplayRequest) (string, func() ([]byte, error), error) {
	params, err := s.traceParams(req.Workload)
	if err != nil {
		return "", nil, err
	}
	greenName, baseName := req.Green, req.Base
	if greenName == "" {
		greenName = "GreenSKU-Full"
	}
	if baseName == "" {
		baseName = "Baseline"
	}
	greenSKU, err := s.lookupSKU("green", greenName)
	if err != nil {
		return "", nil, err
	}
	baseSKU, err := s.lookupSKU("base", baseName)
	if err != nil {
		return "", nil, err
	}
	pol, err := alloc.ParsePolicy(req.Policy)
	if err != nil {
		return "", nil, fmt.Errorf("%w: %v", errBadRequest, err)
	}
	nGreen, nBase := req.GreenServers, req.BaseServers
	if nGreen == 0 {
		nGreen = 1000
	}
	if nBase == 0 {
		nBase = 1000
	}
	if nGreen < 0 || nGreen > maxReplayServers || nBase < 0 || nBase > maxReplayServers {
		return "", nil, fmt.Errorf("%w: pool sizes %d/%d out of [0,%d]", errBadRequest, nGreen, nBase, maxReplayServers)
	}
	if err := checkReplayKnobs("straight", req.AdoptPercent, req.Scale); err != nil {
		return "", nil, err
	}
	forkFrac := req.ForkFrac
	if forkFrac == 0 {
		forkFrac = 0.5
	}
	if math.IsNaN(forkFrac) || forkFrac < 0 || forkFrac >= 1 {
		return "", nil, fmt.Errorf("%w: fork_frac %v out of [0,1)", errBadRequest, req.ForkFrac)
	}
	if len(req.Forks) > maxReplayForks {
		return "", nil, fmt.Errorf("%w: %d forks exceed the limit of %d", errBadRequest, len(req.Forks), maxReplayForks)
	}
	forks := make([]api.ReplayFork, len(req.Forks))
	for i, f := range req.Forks {
		if f.Name == "" {
			f.Name = fmt.Sprintf("fork-%d", i)
		}
		if err := checkReplayKnobs(f.Name, f.AdoptPercent, f.Scale); err != nil {
			return "", nil, err
		}
		forks[i] = f
	}

	cfg := alloc.Config{
		Base:   alloc.ServerClass{Name: baseSKU.Name, Cores: baseSKU.Cores(), Memory: baseSKU.TotalDRAMGB(), LocalMemory: baseSKU.LocalDRAMGB()},
		NBase:  nBase,
		Green:  alloc.ServerClass{Name: greenSKU.Name, Cores: greenSKU.Cores(), Memory: greenSKU.TotalDRAMGB(), LocalMemory: greenSKU.LocalDRAMGB(), Green: true},
		NGreen: nGreen,
		Policy: pol, PreferNonEmpty: req.PreferNonEmpty,
	}
	if s.cfg.Audit != nil {
		cfg.Audit = s.cfg.Audit
	}

	parts := []string{"replay", params.Name, strconv.FormatUint(params.Seed, 10),
		strconv.FormatFloat(params.ArrivalsPerHour, 'g', -1, 64),
		strconv.FormatFloat(params.HorizonHours, 'g', -1, 64),
		greenSKU.Name, baseSKU.Name, strconv.Itoa(nGreen), strconv.Itoa(nBase),
		pol.String(), strconv.FormatBool(req.PreferNonEmpty),
		strconv.Itoa(req.AdoptPercent), strconv.FormatFloat(replayScale(req.Scale), 'g', -1, 64),
		strconv.FormatFloat(forkFrac, 'g', -1, 64)}
	for _, f := range forks {
		parts = append(parts, f.Name, strconv.Itoa(f.AdoptPercent),
			strconv.FormatFloat(replayScale(f.Scale), 'g', -1, 64))
	}
	key := cacheKey(parts...)

	return key, func() ([]byte, error) {
		tr, err := trace.Generate(params)
		if err != nil {
			return nil, err
		}
		cut := int(forkFrac * float64(len(tr.VMs)))
		sim, err := alloc.NewSim(tr.Name, cfg, replayDecider(req.AdoptPercent, replayScale(req.Scale)))
		if err != nil {
			return nil, err
		}
		var snap bytes.Buffer
		for i, vm := range tr.VMs {
			if i == cut {
				if err := sim.Snapshot(&snap); err != nil {
					return nil, err
				}
			}
			if err := sim.Step(vm); err != nil {
				return nil, err
			}
		}
		if snap.Len() == 0 { // empty trace: checkpoint the idle cluster
			if err := sim.Snapshot(&snap); err != nil {
				return nil, err
			}
		}
		straight := sim.Finish(tr.Horizon)

		resp := api.ReplayResponse{
			Workload:      api.EvaluateWorkload{Name: tr.Name, Seed: params.Seed, VMs: len(tr.VMs)},
			Policy:        pol.String(),
			ForkEvent:     cut,
			SnapshotBytes: snap.Len(),
			Straight:      replayOutcome("straight", straight),
		}
		for _, f := range forks {
			fsim, err := alloc.Restore(bytes.NewReader(snap.Bytes()),
				replayDecider(f.AdoptPercent, replayScale(f.Scale)), audit.Resolve(cfg.Audit))
			if err != nil {
				return nil, err
			}
			for _, vm := range tr.VMs[cut:] {
				if err := fsim.Step(vm); err != nil {
					return nil, err
				}
			}
			resp.Forks = append(resp.Forks, replayOutcome(f.Name, fsim.Finish(tr.Horizon)))
		}
		return marshalBody(resp)
	}, nil
}

// replayOutcome maps a simulation Result onto the wire, dropping
// undefined (NaN) utilisation means.
func replayOutcome(name string, r alloc.Result) api.ReplayOutcome {
	return api.ReplayOutcome{
		Name:      name,
		Placed:    r.Placed,
		Rejected:  r.Rejected,
		Snapshots: r.Snapshots,
		Base:      replayStats(r.Base),
		Green:     replayStats(r.Green),
	}
}

func replayStats(cs alloc.ClassStats) api.ReplayPoolStats {
	opt := func(v float64) *float64 {
		if math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return api.ReplayPoolStats{
		CorePacking:   opt(cs.CorePacking),
		MemPacking:    opt(cs.MemPacking),
		MaxMemUtil:    opt(cs.MaxMemUtil),
		CXLServedFrac: opt(cs.CXLServedFrac),
		LocalFitsFrac: opt(cs.LocalFitsFrac),
	}
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req api.ReplayRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, err)
		return
	}
	key, fn, err := s.replayJob(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.maybeForward(w, r, key, body) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, cached, err := s.compute(ctx, key, fn)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeComputed(w, out, cached)
}
