package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sort"
	"testing"
)

// TestCatalogEndpointsSorted pins the deterministic ordering of the
// discovery endpoints: both listings are sorted by name regardless of
// catalog registration order.
func TestCatalogEndpointsSorted(t *testing.T) {
	s := newTestServer(t, Config{})

	w := get(t, s.Handler(), "/v1/skus")
	if w.Code != http.StatusOK {
		t.Fatalf("skus status %d: %s", w.Code, w.Body)
	}
	var skus struct {
		SKUs []struct {
			Name string `json:"name"`
		} `json:"skus"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &skus); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(skus.SKUs))
	for _, sku := range skus.SKUs {
		names = append(names, sku.Name)
	}
	if len(names) < 5 {
		t.Fatalf("suspiciously few SKUs: %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("/v1/skus not sorted: %v", names)
	}

	w = get(t, s.Handler(), "/v1/datasets")
	if w.Code != http.StatusOK {
		t.Fatalf("datasets status %d: %s", w.Code, w.Body)
	}
	var ds struct {
		Datasets []struct {
			Name string `json:"name"`
		} `json:"datasets"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	dnames := make([]string, 0, len(ds.Datasets))
	for _, d := range ds.Datasets {
		dnames = append(dnames, d.Name)
	}
	if len(dnames) != 3 {
		t.Fatalf("got datasets %v, want 3", dnames)
	}
	if !sort.StringsAreSorted(dnames) {
		t.Errorf("/v1/datasets not sorted: %v", dnames)
	}

	// Sorting the catalog must not have moved the default dataset: an
	// empty dataset field still selects open-source.
	wp := post(t, s.Handler(), "/v1/percore", `{"sku":"GreenSKU-Full"}`)
	if wp.Code != http.StatusOK {
		t.Fatalf("percore status %d: %s", wp.Code, wp.Body)
	}
	var resp struct {
		Dataset string `json:"dataset"`
	}
	if err := json.Unmarshal(wp.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dataset != "open-source" {
		t.Errorf("default dataset = %q, want open-source", resp.Dataset)
	}
}

func TestCISeriesEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"name":"diurnal","period_h":24,"series":[
		{"t_h":1,"ci":0.2},{"t_h":7,"ci":0.04},{"t_h":13,"ci":0.06},{"t_h":19,"ci":0.22}]}`
	w := post(t, s.Handler(), "/v1/ciseries", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	type ciVal struct {
		Value float64 `json:"value"`
		Unit  string  `json:"unit"`
	}
	var resp struct {
		Name        string  `json:"name"`
		Samples     int     `json:"samples"`
		PeriodH     float64 `json:"period_h"`
		Constant    bool    `json:"constant"`
		Mean        ciVal   `json:"mean"`
		Peak        ciVal   `json:"peak"`
		Trough      ciVal   `json:"trough"`
		P10         ciVal   `json:"p10"`
		P90         ciVal   `json:"p90"`
		Dataset     string  `json:"dataset"`
		EffectiveCI ciVal   `json:"effective_ci"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "diurnal" || resp.Samples != 4 || resp.PeriodH != 24 || resp.Constant {
		t.Errorf("identity fields: %+v", resp)
	}
	if resp.Dataset != "open-source" {
		t.Errorf("dataset = %q", resp.Dataset)
	}
	if !(resp.Trough.Value <= resp.P10.Value && resp.P10.Value <= resp.Mean.Value &&
		resp.Mean.Value <= resp.P90.Value && resp.P90.Value <= resp.Peak.Value) {
		t.Errorf("statistics disordered: %+v", resp)
	}
	if resp.Trough.Value != 0.04 || resp.Peak.Value != 0.22 {
		t.Errorf("extremes %g/%g, want 0.04/0.22", resp.Trough.Value, resp.Peak.Value)
	}
	// The lifetime covers many whole periods, so the effective CI sits
	// inside the period range.
	if resp.EffectiveCI.Value < resp.Trough.Value || resp.EffectiveCI.Value > resp.Peak.Value {
		t.Errorf("effective CI %g outside range", resp.EffectiveCI.Value)
	}

	for name, bad := range map[string]string{
		"no-samples": `{"series":[]}`,
		"non-finite": `{"series":[{"t_h":0,"ci":1e999}]}`,
		"negative":   `{"series":[{"t_h":0,"ci":-0.1}]}`,
		"unsorted":   `{"series":[{"t_h":5,"ci":0.1},{"t_h":2,"ci":0.2}]}`,
		"past-per":   `{"period_h":24,"series":[{"t_h":30,"ci":0.1}]}`,
		"bad-ds":     `{"dataset":"nope","series":[{"t_h":0,"ci":0.1}]}`,
	} {
		w := post(t, s.Handler(), "/v1/ciseries", bad)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, w.Code, w.Body)
		}
	}
}

// TestEvaluateConstantSeriesMatchesScalar is the API-level face of the
// constant-signal differential: an evaluate with a flat ci_series must
// return a byte-identical body to the same evaluate with the scalar ci.
func TestEvaluateConstantSeriesMatchesScalar(t *testing.T) {
	s := newTestServer(t, Config{})
	scalar := post(t, s.Handler(), "/v1/evaluate", `{"ci":0.11,`+smallWorkload+`}`)
	if scalar.Code != http.StatusOK {
		t.Fatalf("scalar status %d: %s", scalar.Code, scalar.Body)
	}
	series := post(t, s.Handler(), "/v1/evaluate",
		`{"ci_series":[{"t_h":0,"ci":0.11}],`+smallWorkload+`}`)
	if series.Code != http.StatusOK {
		t.Fatalf("series status %d: %s", series.Code, series.Body)
	}
	if !bytes.Equal(scalar.Body.Bytes(), series.Body.Bytes()) {
		t.Fatalf("constant series diverged from scalar:\n%s\n%s", scalar.Body, series.Body)
	}
	// Same effective computation — the series request must have hit the
	// scalar request's cache entry.
	if got := series.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("constant series missed the scalar cache entry (X-Cache=%q)", got)
	}

	// A genuinely varying series resolves to a different effective CI.
	varying := post(t, s.Handler(), "/v1/evaluate",
		`{"ci_series":[{"t_h":0,"ci":0.05},{"t_h":12,"ci":0.17}],"ci_period_h":24,`+smallWorkload+`}`)
	if varying.Code != http.StatusOK {
		t.Fatalf("varying status %d: %s", varying.Code, varying.Body)
	}
	if bytes.Equal(scalar.Body.Bytes(), varying.Body.Bytes()) {
		t.Error("varying series produced the scalar response")
	}

	for name, bad := range map[string]string{
		"both-set":       `{"ci":0.1,"ci_series":[{"t_h":0,"ci":0.1}],` + smallWorkload + `}`,
		"orphan-period":  `{"ci_period_h":24,` + smallWorkload + `}`,
		"invalid-series": `{"ci_series":[{"t_h":0,"ci":-1}],` + smallWorkload + `}`,
	} {
		w := post(t, s.Handler(), "/v1/evaluate", bad)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, w.Code, w.Body)
		}
	}
}
