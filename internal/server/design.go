package server

// POST /v1/design: the SKU design-space search served online. The
// server enumerates its configured candidate space (restricted by the
// request's cpus/max_gpus filters), scores every feasible candidate on
// carbon per core, portfolio performance per core, and rack density,
// and answers with the Pareto frontier — plus, when include_paper is
// set, a verdict for each of the paper's five Table IV configurations.
//
// Buffered responses cache the whole reply under the canonical request
// key and fail atomically on the first evaluation error. Streaming
// responses (Accept: application/x-ndjson or text/event-stream)
// deliver one record per candidate in completion order, each cached
// individually so repeated streams — and buffered requests sharing a
// candidate — hit warm entries; the terminal record carries the
// frontier as stream indices. A candidate point rebuilt from its cached
// JSON is bit-identical to the freshly evaluated one (Go's float64
// round-trips exactly), so the streamed frontier never depends on
// cache state. On a sharded fleet the whole request forwards to the
// replica owning its key, like the single evaluation endpoints.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/design"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/search"
	"github.com/greensku/gsf/internal/server/api"
	"github.com/greensku/gsf/internal/units"
)

// maxDesignCI bounds a design request's carbon intensity in
// kgCO2e/kWh: three orders of magnitude above any real grid, yet small
// enough that no candidate's lifetime operational carbon can overflow.
const maxDesignCI = 1e3

// designSpace resolves the configured candidate space.
func (s *Server) designSpace() search.Space {
	if s.cfg.DesignSpace != nil {
		return *s.cfg.DesignSpace
	}
	return design.DefaultOptions().Space
}

// designPerf resolves the configured performance protocol.
func (s *Server) designPerf() design.PerfOptions {
	if s.cfg.DesignPerf != nil {
		return *s.cfg.DesignPerf
	}
	return design.DefaultPerfOptions()
}

// designPlan is a validated design request: the enumerated candidates
// (paper extras last) and the shared evaluator whose profile memo makes
// the fan-out cheap — a space has far fewer distinct performance
// profiles than candidates.
type designPlan struct {
	d      *dataset
	ci     units.CarbonIntensity
	popt   design.PerfOptions
	skus   []hw.SKU
	extras int
	ev     *design.Evaluator
}

// newDesignPlan validates a request into its candidate list, shared
// evaluator, and whole-request cache key.
func (s *Server) newDesignPlan(req api.DesignRequest) (*designPlan, string, error) {
	d, err := s.lookupDataset(req.Dataset)
	if err != nil {
		return nil, "", err
	}
	ci, err := normalizeCI(req.CI, d)
	if err != nil {
		return nil, "", err
	}
	// Bound the intensity well below float overflow: an absurd CI would
	// push every candidate's operational carbon to +Inf, which both
	// breaks the carbon model's own part-sum invariant and leaves the
	// frontier with nothing finite to keep. Real grids sit under 2.
	if float64(ci) > maxDesignCI {
		return nil, "", fmt.Errorf("%w: carbon intensity %v exceeds the evaluable bound of %v kgCO2e/kWh",
			errBadRequest, float64(ci), maxDesignCI)
	}
	sp := s.designSpace()
	if len(req.CPUs) > 0 {
		want := map[string]bool{}
		for _, name := range req.CPUs {
			want[name] = true
		}
		var cpus []hw.CPUSpec
		for _, c := range sp.CPUs {
			if want[c.Name] {
				cpus = append(cpus, c)
				delete(want, c.Name)
			}
		}
		for name := range want {
			return nil, "", fmt.Errorf("%w: cpu %q is not in the design space", errBadRequest, name)
		}
		sp.CPUs = cpus
	}
	if req.MaxGPUs < 0 {
		return nil, "", fmt.Errorf("%w: negative max_gpus %d", errBadRequest, req.MaxGPUs)
	}
	var gpus []search.GPUOption
	for _, g := range sp.GPUOptions {
		if g.Count <= req.MaxGPUs {
			gpus = append(gpus, g)
		}
	}
	if len(gpus) == 0 {
		gpus = []search.GPUOption{{}}
	}
	sp.GPUOptions = gpus

	data, ok := carbondata.Datasets()[d.name]
	if !ok {
		return nil, "", fmt.Errorf("server: dataset %q missing from the design catalog", d.name)
	}
	m, err := carbon.New(data)
	if err != nil {
		return nil, "", err
	}
	// A failure here is a dataset/space mismatch — the requested dataset
	// has no carbon data for a CPU or GPU the space enumerates — which
	// the client chose, not a server fault.
	skus, err := design.Candidates(sp, search.DefaultConstraints(), m)
	if err != nil {
		return nil, "", fmt.Errorf("%w: design space is not evaluable under dataset %q: %v",
			errBadRequest, d.name, err)
	}
	extras := 0
	if req.IncludePaper {
		paper := hw.TableIVConfigs()
		skus = append(skus, paper...)
		extras = len(paper)
	}
	if len(skus) == 0 {
		return nil, "", fmt.Errorf("%w: the requested design space has no feasible candidates", errBadRequest)
	}
	if len(skus) > s.cfg.MaxDesignCandidates {
		return nil, "", &codedError{code: api.CodeBadInput, limit: s.cfg.MaxDesignCandidates,
			err: fmt.Errorf("%w: design space of %d candidates exceeds the limit of %d (GET /v1/limits)",
				errBadRequest, len(skus), s.cfg.MaxDesignCandidates)}
	}
	popt := s.designPerf()
	plan := &designPlan{d: d, ci: ci, popt: popt, skus: skus, extras: extras,
		ev: design.NewEvaluator(m, ci, popt)}
	key := cacheKey("design", d.name, fmtCI(ci),
		strings.Join(req.CPUs, ","), strconv.Itoa(req.MaxGPUs),
		strconv.FormatBool(req.IncludePaper),
		fmt.Sprintf("%#v|%#v", sp, popt))
	return plan, key, nil
}

// pointKey is one candidate's cache key: a candidate name encodes its
// full design tuple, so (dataset, CI, name, protocol) pins the value.
func (p *designPlan) pointKey(i int) string {
	return cacheKey("designpt", p.d.name, fmtCI(p.ci), p.skus[i].Name,
		fmt.Sprintf("%#v", p.popt))
}

func designPointOf(p design.Point) api.DesignPoint {
	return api.DesignPoint{
		SKU:           p.SKU.Name,
		CPU:           p.SKU.CPU.Name,
		Cores:         p.SKU.Cores(),
		CarbonPerCore: p.Obj.CarbonPerCore,
		PerfPerCore:   p.Obj.PerfPerCore,
		CoresPerRack:  p.Obj.CoresPerRack,
	}
}

// frontierPoint rebuilds the dominance-core view of a wire point. The
// frontier only reads the objectives and the name tie-break, and the
// JSON float round-trip is exact, so this is bit-equivalent to the
// evaluated point.
func frontierPoint(p api.DesignPoint) design.Point {
	return design.Point{SKU: hw.SKU{Name: p.SKU}, Obj: design.Objectives{
		CarbonPerCore: p.CarbonPerCore,
		PerfPerCore:   p.PerfPerCore,
		CoresPerRack:  p.CoresPerRack,
	}}
}

// respond evaluates the whole plan and renders the buffered reply.
func (p *designPlan) respond(ctx context.Context, workers int) ([]byte, error) {
	pts, err := engine.Collect(engine.Map(ctx, workers, len(p.skus),
		func(ctx context.Context, i int) (design.Point, error) {
			return p.ev.Evaluate(ctx, p.skus[i])
		}))
	if err != nil {
		return nil, err
	}
	f := design.NewFrontier(design.DefaultEpsilon())
	for _, pt := range pts {
		f.Insert(pt)
	}
	// The frontier rejects non-finite objectives, and an overflowing
	// carbon intensity overflows every candidate alike — an empty
	// frontier therefore means the request's inputs, not the server,
	// produced no usable objective values.
	if f.Len() == 0 {
		return nil, fmt.Errorf("%w: no candidate evaluated to finite objectives at carbon intensity %s",
			errBadRequest, fmtCI(p.ci))
	}
	resp := api.DesignResponse{Dataset: p.d.name, CI: p.ci, Candidates: len(p.skus)}
	for _, fp := range f.Points() {
		resp.Frontier = append(resp.Frontier, designPointOf(fp))
	}
	for _, pt := range pts[len(pts)-p.extras:] {
		v := api.DesignVerdict{Point: designPointOf(pt), DominatedBy: f.DominatedBy(pt)}
		v.OnFrontier = v.DominatedBy == ""
		resp.Verdicts = append(resp.Verdicts, v)
	}
	return marshalBody(resp)
}

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req api.DesignRequest
	if err := decodeStrict(body, &req); err != nil {
		s.writeError(w, err)
		return
	}
	plan, key, err := s.newDesignPlan(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.maybeForward(w, r, key, body) {
		return
	}
	if mode := streamMode(r); mode != "" {
		s.streamDesign(w, r, plan, mode)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	out, cached, err := s.compute(ctx, key, func() ([]byte, error) {
		// Detached from the requester: a leader's work outlives a
		// disconnecting client, so followers and the cache still get the
		// result.
		cctx, ccancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
		defer ccancel()
		return plan.respond(cctx, s.cfg.Workers)
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeComputed(w, out, cached)
}

// streamDesign serves a validated plan as a stream: one record per
// candidate in completion order — each served through the per-candidate
// cache — then the frontier summary.
func (s *Server) streamDesign(w http.ResponseWriter, r *http.Request, plan *designPlan, mode string) {
	n := len(plan.skus)
	if mode == "sse" {
		w.Header().Set("Content-Type", api.ContentTypeSSE)
		w.Header().Set("Cache-Control", "no-store")
	} else {
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
	}
	w.Header().Set(batchHeader, strconv.Itoa(n))
	if s.ring != nil {
		w.Header().Set(api.HeaderShard, "local")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	errs := 0
	pts := make([]api.DesignPoint, n)
	evaluated := make([]bool, n)
	engine.Stream(ctx, s.cfg.Workers, n,
		func(ctx context.Context, i int) (api.BatchResult, error) {
			body, cached, err := s.compute(ctx, plan.pointKey(i), func() ([]byte, error) {
				pt, err := plan.ev.Evaluate(ctx, plan.skus[i])
				if err != nil {
					return nil, err
				}
				return marshalBody(designPointOf(pt))
			})
			return itemResult(body, cached, err), nil
		},
		func(i int, res engine.Result[api.BatchResult]) {
			out := res.Value
			if res.Err != nil {
				out = itemResult(nil, false, res.Err)
			}
			if out.Error != nil {
				errs++
			} else if json.Unmarshal(out.OK, &pts[i]) == nil {
				evaluated[i] = true
			}
			s.metrics.StreamedResults.inc()
			writeStreamRecord(w, flusher, mode, "result", api.BatchStreamItem{
				Index: i, OK: out.OK, Cached: out.Cached,
				Error: out.Error, Status: out.Status,
			})
		})

	// The frontier over every candidate that evaluated; failed points
	// are reported in-band above and simply absent here.
	f := design.NewFrontier(design.DefaultEpsilon())
	for i := range pts {
		if evaluated[i] {
			f.Insert(frontierPoint(pts[i]))
		}
	}
	index := make(map[string]int, n)
	for i, sku := range plan.skus {
		if _, dup := index[sku.Name]; !dup {
			index[sku.Name] = i
		}
	}
	done := api.DesignDone{Done: true, Items: n, Errors: errs}
	for _, fp := range f.Points() {
		done.Frontier = append(done.Frontier, index[fp.SKU.Name])
	}
	for i := n - plan.extras; i < n; i++ {
		if !evaluated[i] {
			continue
		}
		v := api.DesignVerdict{Point: pts[i], DominatedBy: f.DominatedBy(frontierPoint(pts[i]))}
		v.OnFrontier = v.DominatedBy == ""
		done.Verdicts = append(done.Verdicts, v)
	}
	writeStreamRecord(w, flusher, mode, "done", done)
}
