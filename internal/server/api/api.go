// Package api defines gsfd's v1 wire contract: every request and
// response type served under /v1, the machine-readable error envelope,
// and the content types used for streaming negotiation.
//
// The types here are the single source of truth for the wire format —
// the server handlers, the gsfload load generator, the golden
// wire-compatibility fixtures, and docs/API.md all derive from them.
// Field names, JSON tags, and declaration order are load-bearing:
// encoding/json emits struct fields in declaration order, and the
// committed fixtures under internal/server/testdata/wire pin the exact
// bytes. Changing anything in this file is a wire change and must ship
// with regenerated fixtures and a docs/API.md update.
package api

import (
	"encoding/json"

	"github.com/greensku/gsf/internal/units"
)

// --- POST /v1/percore -------------------------------------------------

// PerCoreRequest asks for the per-core carbon emissions of one SKU at
// one grid carbon intensity.
type PerCoreRequest struct {
	// Dataset names the carbon dataset; empty selects open-source.
	Dataset string `json:"dataset"`
	// SKU names a catalog SKU (GET /v1/skus).
	SKU string `json:"sku"`
	// CI is the grid carbon intensity in kgCO2e/kWh; zero or omitted
	// uses the dataset default.
	CI float64 `json:"ci"`
}

// PerCoreResponse is the per-core emissions breakdown.
type PerCoreResponse struct {
	Dataset     string                `json:"dataset"`
	SKU         string                `json:"sku"`
	CI          units.CarbonIntensity `json:"ci"`
	Operational units.KgCO2e          `json:"operational_per_core"`
	Embodied    units.KgCO2e          `json:"embodied_per_core"`
	Total       units.KgCO2e          `json:"total_per_core"`
}

// --- POST /v1/savings -------------------------------------------------

// SavingsRequest asks for the per-core savings of a SKU vs a baseline.
type SavingsRequest struct {
	Dataset string `json:"dataset"`
	// SKU is the candidate (typically a GreenSKU).
	SKU string `json:"sku"`
	// Baseline is the comparison SKU; empty selects "Baseline" (Gen3).
	Baseline string  `json:"baseline"`
	CI       float64 `json:"ci"`
}

// SavingsResponse is a Table IV/VIII-style savings row.
type SavingsResponse struct {
	Dataset  string                `json:"dataset"`
	SKU      string                `json:"sku"`
	Baseline string                `json:"baseline"`
	CI       units.CarbonIntensity `json:"ci"`
	// Fractions, e.g. 0.28 means the candidate saves 28% (Table
	// IV/VIII rows).
	Operational float64 `json:"operational_savings"`
	Embodied    float64 `json:"embodied_savings"`
	Total       float64 `json:"total_savings"`
}

// --- POST /v1/evaluate ------------------------------------------------

// WorkloadSpec selects the synthetic VM trace an evaluation runs over.
type WorkloadSpec struct {
	// Name labels the synthetic trace; it also seeds the app-class
	// assignment, so it is part of the cache key. Empty means "gsfd".
	Name string `json:"name"`
	// Seed makes the trace deterministic; identical specs produce
	// identical traces, which is what makes evaluate cacheable.
	Seed uint64 `json:"seed"`
	// ArrivalsPerHour and HorizonHours override the production-like
	// defaults (24/h over 14 days); use smaller values for cheap
	// queries.
	ArrivalsPerHour float64 `json:"arrivals_per_hour"`
	HorizonHours    float64 `json:"horizon_hours"`
}

// CISample is one (time, intensity) knot of a request-supplied
// carbon-intensity timeseries.
type CISample struct {
	TH float64 `json:"t_h"`
	CI float64 `json:"ci"`
}

// EvaluateRequest asks for a full framework evaluation of a green SKU
// vs a baseline over a synthetic workload.
type EvaluateRequest struct {
	Dataset string `json:"dataset"`
	// Green names the candidate GreenSKU; empty selects GreenSKU-Full.
	Green string `json:"green"`
	// Baseline defaults to "Baseline" (Gen3).
	Baseline string  `json:"baseline"`
	CI       float64 `json:"ci"`
	// CISeries evaluates under a time-varying grid intensity: a
	// piecewise-linear timeseries collapsed to its effective CI over
	// one server lifetime. Mutually exclusive with a non-zero scalar
	// ci; a constant series is byte-identical to the scalar path.
	CISeries []CISample `json:"ci_series"`
	// CIPeriodH makes the series periodic (e.g. 24 for diurnal).
	CIPeriodH float64 `json:"ci_period_h"`
	// CXLBacked evaluates performance as if VM memory were CXL-served.
	CXLBacked bool         `json:"cxl_backed"`
	Workload  WorkloadSpec `json:"workload"`
}

// EvaluateWorkload identifies the generated trace of an evaluation.
type EvaluateWorkload struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`
	VMs  int    `json:"vms"`
}

// EvaluateCluster is the server mix of a sized cluster.
type EvaluateCluster struct {
	BaselineOnly  int `json:"baseline_only_servers"`
	BaseServers   int `json:"base_servers"`
	GreenServers  int `json:"green_servers"`
	BufferServers int `json:"buffer_servers"`
}

// EvaluateResponse is a full framework evaluation.
type EvaluateResponse struct {
	Dataset        string                `json:"dataset"`
	Green          string                `json:"green"`
	Baseline       string                `json:"baseline"`
	CI             units.CarbonIntensity `json:"ci"`
	Workload       EvaluateWorkload      `json:"workload"`
	PerCoreGreen   units.KgCO2e          `json:"per_core_green"`
	PerCoreBase    units.KgCO2e          `json:"per_core_baseline"`
	PerCoreSavings float64               `json:"per_core_savings"`
	Cluster        EvaluateCluster       `json:"cluster"`
	ClusterSavings float64               `json:"cluster_savings"`
	DCSavings      float64               `json:"dc_savings"`
}

// --- POST /v1/ciseries ------------------------------------------------

// CISeriesRequest validates a carbon-intensity timeseries standalone.
type CISeriesRequest struct {
	// Name labels the series in the response (optional).
	Name string `json:"name"`
	// Series is the piecewise-linear timeseries; Period makes it wrap.
	Series  []CISample `json:"series"`
	PeriodH float64    `json:"period_h"`
	// Dataset selects the lifetime used for the effective CI; empty
	// selects open-source.
	Dataset string `json:"dataset"`
}

// CISeriesResponse summarises a validated timeseries.
type CISeriesResponse struct {
	Name     string  `json:"name"`
	Samples  int     `json:"samples"`
	PeriodH  float64 `json:"period_h"`
	Constant bool    `json:"constant"`
	// Window statistics over one period (or the sampled span when
	// aperiodic).
	Mean   units.CarbonIntensity `json:"mean"`
	Peak   units.CarbonIntensity `json:"peak"`
	Trough units.CarbonIntensity `json:"trough"`
	P10    units.CarbonIntensity `json:"p10"`
	P50    units.CarbonIntensity `json:"p50"`
	P90    units.CarbonIntensity `json:"p90"`
	// EffectiveCI is the scalar that yields identical lifetime
	// operational emissions under the selected dataset: the value
	// /v1/evaluate substitutes when given this series.
	Dataset     string                `json:"dataset"`
	EffectiveCI units.CarbonIntensity `json:"effective_ci"`
}

// --- POST /v1/batch ---------------------------------------------------

// BatchRequest carries many evaluation requests in one round trip.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItem is the union of the three single-endpoint request shapes
// plus a kind discriminator. Fields irrelevant to the kind are
// ignored, mirroring how the single endpoints treat their own
// requests.
type BatchItem struct {
	// Kind selects the computation: "percore", "savings", or
	// "evaluate".
	Kind string `json:"kind"`

	Dataset  string  `json:"dataset"`
	SKU      string  `json:"sku"`
	Green    string  `json:"green"`
	Baseline string  `json:"baseline"`
	CI       float64 `json:"ci"`

	CXLBacked bool         `json:"cxl_backed"`
	Workload  WorkloadSpec `json:"workload"`
}

// BatchResult is one item's in-band outcome: either OK holds the exact
// body the single endpoint would have returned, or Error/Status hold
// the error envelope and HTTP status the single endpoint would have
// answered with.
type BatchResult struct {
	OK     json.RawMessage `json:"ok,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Error  *Error          `json:"error,omitempty"`
	Status int             `json:"status,omitempty"`
}

// BatchResponse is the buffered (non-streaming) batch reply, one result
// per item in request order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// BatchStreamItem is one streamed batch or sweep result. Streaming
// responses deliver items in completion order; Index maps a result
// back to its request slot.
type BatchStreamItem struct {
	Index  int             `json:"index"`
	OK     json.RawMessage `json:"ok,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Error  *Error          `json:"error,omitempty"`
	Status int             `json:"status,omitempty"`
}

// StreamDone is the terminal record of a streamed response.
type StreamDone struct {
	Done   bool `json:"done"`
	Items  int  `json:"items"`
	Errors int  `json:"errors"`
}

// --- POST /v1/sweep ---------------------------------------------------

// SweepRequest evaluates one green/baseline pair at many grid carbon
// intensities (the Fig. 11/12 sweep shape). All evaluate fields except
// the scalar CI apply to every point.
type SweepRequest struct {
	Dataset   string       `json:"dataset"`
	Green     string       `json:"green"`
	Baseline  string       `json:"baseline"`
	CXLBacked bool         `json:"cxl_backed"`
	Workload  WorkloadSpec `json:"workload"`
	// CIs are the sweep points in kgCO2e/kWh; one evaluate result is
	// returned per point, in order (buffered) or tagged by index
	// (streamed).
	CIs []float64 `json:"cis"`
}

// SweepResponse is the buffered sweep reply, one evaluate result per
// CI point in request order.
type SweepResponse struct {
	Results []BatchResult `json:"results"`
}

// --- POST /v1/design --------------------------------------------------

// DesignRequest asks for the carbon/performance Pareto frontier of the
// server's SKU design space: every feasible candidate is scored on
// carbon per core, portfolio performance per core, and rack density,
// and the non-dominated set is returned.
type DesignRequest struct {
	// Dataset names the carbon dataset; empty selects open-source.
	Dataset string `json:"dataset"`
	// CI is the grid carbon intensity in kgCO2e/kWh; zero or omitted
	// uses the dataset default.
	CI float64 `json:"ci"`
	// CPUs restricts the candidate CPU bins by name (e.g. "Bergamo");
	// empty keeps the server's full CPU dimension. A name outside the
	// space is a bad_input error.
	CPUs []string `json:"cpus"`
	// MaxGPUs caps accelerator cards per candidate server; zero removes
	// the accelerator dimension entirely.
	MaxGPUs int `json:"max_gpus"`
	// IncludePaper additionally evaluates the paper's five Table IV
	// configurations and classifies each against the searched frontier.
	IncludePaper bool `json:"include_paper"`
}

// DesignPoint is one evaluated candidate on the three objectives.
type DesignPoint struct {
	SKU           string  `json:"sku"`
	CPU           string  `json:"cpu"`
	Cores         int     `json:"cores"`
	CarbonPerCore float64 `json:"carbon_per_core"`
	PerfPerCore   float64 `json:"perf_per_core"`
	CoresPerRack  float64 `json:"cores_per_rack"`
}

// DesignVerdict classifies one paper SKU against the frontier.
type DesignVerdict struct {
	Point      DesignPoint `json:"point"`
	OnFrontier bool        `json:"on_frontier"`
	// DominatedBy names a frontier point that beats it; empty when
	// OnFrontier.
	DominatedBy string `json:"dominated_by,omitempty"`
}

// DesignResponse is the buffered design reply: the frontier in
// ascending carbon order, plus one verdict per paper SKU when the
// request set include_paper.
type DesignResponse struct {
	Dataset    string                `json:"dataset"`
	CI         units.CarbonIntensity `json:"ci"`
	Candidates int                   `json:"candidates"`
	Frontier   []DesignPoint         `json:"frontier"`
	Verdicts   []DesignVerdict       `json:"verdicts,omitempty"`
}

// DesignDone is the terminal record of a streamed design response.
// Streams deliver one BatchStreamItem per candidate in completion
// order — OK holding that candidate's DesignPoint — then this summary,
// whose Frontier lists the non-dominated candidates by stream index in
// ascending carbon order.
type DesignDone struct {
	Done     bool            `json:"done"`
	Items    int             `json:"items"`
	Errors   int             `json:"errors"`
	Frontier []int           `json:"frontier"`
	Verdicts []DesignVerdict `json:"verdicts,omitempty"`
}

// --- POST /v1/replay --------------------------------------------------

// ReplayFork is one what-if placement variant resumed from the
// replay's snapshot: the trace suffix is replayed with this decider
// against the checkpointed cluster state.
type ReplayFork struct {
	// Name labels the variant in the response.
	Name string `json:"name"`
	// AdoptPercent is the share of VMs (by id, 0-100) the decider
	// adopts onto the green pool.
	AdoptPercent int `json:"adopt_percent"`
	// Scale multiplies an adopted VM's resource request; zero or
	// omitted means 1 (unscaled).
	Scale float64 `json:"scale"`
}

// ReplayRequest replays a synthetic trace through the columnar
// allocation simulator, snapshots the cluster state at a fork point,
// and replays the remaining events once per fork with a what-if
// decider — the online form of the snapshot/restore checkpointing the
// simulator uses for long replays.
type ReplayRequest struct {
	Workload WorkloadSpec `json:"workload"`
	// Green and Base name catalog SKUs for the two pools; empty
	// selects GreenSKU-Full and Baseline.
	Green string `json:"green"`
	Base  string `json:"base"`
	// GreenServers and BaseServers size the pools; zero defaults to
	// 1000. The simulator is columnar, so servers the trace never
	// touches cost nothing.
	GreenServers int `json:"green_servers"`
	BaseServers  int `json:"base_servers"`
	// Policy is "best-fit", "first-fit", or "worst-fit"; empty selects
	// best-fit.
	Policy string `json:"policy"`
	// PreferNonEmpty applies the production rule of packing onto
	// already-occupied servers when possible.
	PreferNonEmpty bool `json:"prefer_non_empty"`
	// AdoptPercent and Scale shape the straight-through decider, the
	// same way a fork's fields shape its what-if decider.
	AdoptPercent int     `json:"adopt_percent"`
	Scale        float64 `json:"scale"`
	// ForkFrac positions the snapshot as a fraction of the trace's
	// events in [0,1); zero or omitted means 0.5.
	ForkFrac float64 `json:"fork_frac"`
	// Forks are the what-if variants; empty replays straight through
	// and still reports the snapshot it took.
	Forks []ReplayFork `json:"forks"`
}

// ReplayPoolStats is one pool's utilisation means. Fields are pointers
// because a pool the replay never observes has no mean (the simulator
// reports NaN); such fields are omitted.
type ReplayPoolStats struct {
	CorePacking   *float64 `json:"core_packing,omitempty"`
	MemPacking    *float64 `json:"mem_packing,omitempty"`
	MaxMemUtil    *float64 `json:"max_mem_util,omitempty"`
	CXLServedFrac *float64 `json:"cxl_served_frac,omitempty"`
	LocalFitsFrac *float64 `json:"local_fits_frac,omitempty"`
}

// ReplayOutcome is one replay's allocation summary: the straight run
// or one fork.
type ReplayOutcome struct {
	Name      string          `json:"name"`
	Placed    int             `json:"placed"`
	Rejected  int             `json:"rejected"`
	Snapshots int             `json:"snapshots"`
	Base      ReplayPoolStats `json:"base"`
	Green     ReplayPoolStats `json:"green"`
}

// ReplayResponse reports the straight replay plus one outcome per
// fork. Every fork resumed from the same snapshot: its outcome differs
// from the straight run only by decisions made after ForkEvent.
type ReplayResponse struct {
	Workload      EvaluateWorkload `json:"workload"`
	Policy        string           `json:"policy"`
	ForkEvent     int              `json:"fork_event"`
	SnapshotBytes int              `json:"snapshot_bytes"`
	Straight      ReplayOutcome    `json:"straight"`
	Forks         []ReplayOutcome  `json:"forks,omitempty"`
}

// --- GET /v1/skus and /v1/datasets ------------------------------------

// SKUInfo describes one catalog SKU.
type SKUInfo struct {
	Name            string   `json:"name"`
	CPU             string   `json:"cpu"`
	Cores           int      `json:"cores"`
	LocalDRAM       units.GB `json:"local_dram"`
	CXLDRAM         units.GB `json:"cxl_dram"`
	SSDTB           float64  `json:"ssd_tb"`
	ReusedSSDTB     float64  `json:"reused_ssd_tb"`
	MemoryCoreRatio float64  `json:"memory_core_ratio"`
	HasCXL          bool     `json:"has_cxl"`
}

// SKUsResponse lists the catalog, sorted by name.
type SKUsResponse struct {
	SKUs []SKUInfo `json:"skus"`
}

// DatasetInfo describes one servable carbon dataset.
type DatasetInfo struct {
	Name         string                `json:"name"`
	DefaultCI    units.CarbonIntensity `json:"default_ci"`
	Lifetime     units.Hours           `json:"lifetime"`
	DerateFactor float64               `json:"derate_factor"`
	PUE          float64               `json:"pue"`
}

// DatasetsResponse lists the datasets, sorted by name.
type DatasetsResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// --- GET /v1/limits ---------------------------------------------------

// LimitsResponse reports the server's operational limits so clients can
// size requests without trial and error.
type LimitsResponse struct {
	// Workers is the evaluation worker pool size.
	Workers int `json:"workers"`
	// QueueDepth is the pending-request queue capacity; a full queue
	// sheds with 429.
	QueueDepth int `json:"queue_depth"`
	// MaxBatchItems bounds one /v1/batch request; larger batches get a
	// bad_input error carrying this limit.
	MaxBatchItems int `json:"max_batch_items"`
	// MaxTraceVMs bounds the expected VM count of one synthetic
	// workload (arrivals_per_hour x horizon_hours).
	MaxTraceVMs int `json:"max_trace_vms"`
	// MaxDesignCandidates bounds the candidate count one /v1/design
	// request may enumerate; larger spaces get a bad_input error
	// carrying this limit.
	MaxDesignCandidates int `json:"max_design_candidates"`
	// RequestTimeoutSeconds bounds one request end to end.
	RequestTimeoutSeconds float64 `json:"request_timeout_seconds"`
	// RatePerSec and RateBurst describe the per-client token bucket;
	// zero rate means rate limiting is off.
	RatePerSec float64 `json:"rate_per_sec"`
	RateBurst  int     `json:"rate_burst"`
	// Replicas is the shard ring size (1 when sharding is off).
	Replicas int `json:"replicas"`
}
