package api

// The v1 error envelope. Every non-2xx response from every /v1
// endpoint — including 429 sheds, which also carry a Retry-After
// header — has the body:
//
//	{"error":{"code":"<stable code>","message":"<human text>"}}
//
// Batch and sweep responses embed the same Error object per failed
// item. Messages are for humans and may change; codes are the machine
// contract and are stable.

// Stable error codes.
const (
	// CodeBadInput: the request was malformed or out of range
	// (HTTP 400).
	CodeBadInput = "bad_input"
	// CodeUnknownSKU: the named SKU is not in the catalog (HTTP 400;
	// see GET /v1/skus).
	CodeUnknownSKU = "unknown_sku"
	// CodeUnknownDataset: the named dataset is not servable (HTTP 400;
	// see GET /v1/datasets).
	CodeUnknownDataset = "unknown_dataset"
	// CodeOverloaded: the server shed the request — queue full, rate
	// limit, or deadline (HTTP 429 or 503; honor Retry-After).
	CodeOverloaded = "overloaded"
	// CodeInternal: an unexpected server-side failure (HTTP 500).
	CodeInternal = "internal"
)

// Error is the machine-readable error shape.
type Error struct {
	// Code is one of the stable Code* constants.
	Code string `json:"code"`
	// Message is human-readable detail; not part of the stable
	// contract.
	Message string `json:"message"`
	// Limit carries the relevant bound when the error is a limit
	// violation (e.g. max_batch_items for an oversized batch).
	Limit int `json:"limit,omitempty"`
}

// ErrorResponse is the envelope: the body of every error reply.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// Content types for streaming negotiation on /v1/batch and /v1/sweep.
const (
	// ContentTypeJSON is the default buffered response format.
	ContentTypeJSON = "application/json"
	// ContentTypeNDJSON streams one JSON object per line in completion
	// order: BatchStreamItem records followed by one StreamDone.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeSSE streams the same records as Server-Sent Events
	// ("result" and "done" events).
	ContentTypeSSE = "text/event-stream"
)

// Headers used by the wire contract.
const (
	// HeaderCache reports the result-cache disposition: "hit" or
	// "miss".
	HeaderCache = "X-Cache"
	// HeaderBatchSize carries the item count of a batch or sweep
	// response.
	HeaderBatchSize = "X-Batch-Size"
	// HeaderShard reports how a sharded replica served the request:
	// "local" or "forwarded".
	HeaderShard = "X-GSF-Shard"
	// HeaderForwarded marks a replica-to-replica forwarded request;
	// receivers always serve it locally (loop prevention).
	HeaderForwarded = "X-GSF-Forwarded"
	// HeaderClient names the client for per-client rate limiting;
	// absent, the remote address is used.
	HeaderClient = "X-GSF-Client"
	// HeaderPriority selects the shedding priority: "high", "low", or
	// absent for normal.
	HeaderPriority = "X-GSF-Priority"
)
