package server

import (
	"net/http"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

func TestAuditGaugeExportedWhenEnabled(t *testing.T) {
	rec := audit.NewRecorder()
	s := newTestServer(t, Config{Audit: rec})

	w := post(t, s.Handler(), "/v1/evaluate", `{`+smallWorkload+`}`)
	if w.Code != http.StatusOK {
		t.Fatalf("evaluate = %d: %s", w.Code, w.Body.String())
	}
	if n := s.AuditViolations(); n != 0 {
		t.Fatalf("audited evaluation recorded %d violations: %v", n, rec.Violations())
	}

	m := get(t, s.Handler(), "/metrics")
	body := m.Body.String()
	if !strings.Contains(body, "gsfd_audit_violations 0") {
		t.Fatalf("/metrics missing gsfd_audit_violations gauge:\n%s", body)
	}

	// The gauge tracks the recorder live.
	audit.Failf(rec, "test", "synthetic", "injected")
	m = get(t, s.Handler(), "/metrics")
	if !strings.Contains(m.Body.String(), "gsfd_audit_violations 1") {
		t.Fatalf("gauge did not follow the recorder:\n%s", m.Body.String())
	}
}

func TestAuditGaugeAbsentWhenDisabled(t *testing.T) {
	s := newTestServer(t, Config{})
	if strings.Contains(get(t, s.Handler(), "/metrics").Body.String(), "gsfd_audit_violations") {
		t.Fatal("gsfd_audit_violations exported without -audit")
	}
	if s.AuditViolations() != 0 {
		t.Fatal("AuditViolations non-zero without a recorder")
	}
}
