package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/greensku/gsf/internal/server/api"
)

// flushTrackingWriter records the largest number of response bytes
// buffered between flushes; a correctly streaming handler keeps it to
// roughly one record no matter how many items the request carries.
type flushTrackingWriter struct {
	header       http.Header
	status       int
	unflushed    int
	maxUnflushed int
	flushes      int
	total        int
}

func newFlushTrackingWriter() *flushTrackingWriter {
	return &flushTrackingWriter{header: http.Header{}}
}

func (w *flushTrackingWriter) Header() http.Header  { return w.header }
func (w *flushTrackingWriter) WriteHeader(code int) { w.status = code }
func (w *flushTrackingWriter) Write(b []byte) (int, error) {
	w.unflushed += len(b)
	w.total += len(b)
	if w.unflushed > w.maxUnflushed {
		w.maxUnflushed = w.unflushed
	}
	return len(b), nil
}
func (w *flushTrackingWriter) Flush() {
	w.unflushed = 0
	w.flushes++
}

// TestStreamedBatchBoundedBuffering streams a 10k-item batch and
// asserts the response buffer stays O(1): every record is flushed as
// it is produced, so the high-water mark of unflushed bytes is a
// single record, not the 10k-item response body.
func TestStreamedBatchBoundedBuffering(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchItems: 10000})
	const n = 10000
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		// Four distinct computations, then cache hits: the point is
		// stream volume, not evaluation work.
		fmt.Fprintf(&sb, `{"kind":"percore","sku":"GreenSKU-Full","ci":%g}`, 0.1+float64(i%4)*0.05)
	}
	sb.WriteString(`]}`)

	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(sb.String()))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", api.ContentTypeNDJSON)
	w := newFlushTrackingWriter()
	s.Handler().ServeHTTP(w, req)

	if w.status != http.StatusOK {
		t.Fatalf("status %d", w.status)
	}
	if got := w.header.Get("Content-Type"); got != api.ContentTypeNDJSON {
		t.Fatalf("content type %q", got)
	}
	if w.flushes < n {
		t.Errorf("%d flushes for %d records, want at least one per record", w.flushes, n)
	}
	// One NDJSON record for these items is ~500 bytes; 4 KiB of slack
	// still fails hard if the handler buffers even 1%% of the response.
	if w.maxUnflushed > 4096 {
		t.Errorf("max unflushed bytes %d (total %d): response is being buffered, not streamed",
			w.maxUnflushed, w.total)
	}
	if w.total < n*100 {
		t.Errorf("streamed only %d bytes for %d items", w.total, n)
	}
}

// TestStreamedBatchCompletionOrder proves completion-order delivery
// end to end: with one worker and the second item blocked, the first
// item's record must reach the client before the batch finishes.
func TestStreamedBatchCompletionOrder(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	computed := make(chan struct{}, 4)
	release := make(chan struct{})
	first := true
	s.testHook = func() {
		computed <- struct{}{}
		if !first {
			<-release
		}
		first = false
	}
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"items":[
		{"kind":"percore","sku":"GreenSKU-Full","ci":0.1},
		{"kind":"percore","sku":"Baseline","ci":0.2}
	]}`
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/batch", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", api.ContentTypeNDJSON)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The first record must arrive while item 1 is still blocked in the
	// worker — i.e. before the last item has been evaluated.
	lines := make(chan string, 4)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var firstLine string
	select {
	case firstLine = <-lines:
	case <-time.After(10 * time.Second):
		t.Fatal("no streamed record arrived while the second item was blocked")
	}
	var rec api.BatchStreamItem
	if err := json.Unmarshal([]byte(firstLine), &rec); err != nil {
		t.Fatalf("first record %q: %v", firstLine, err)
	}
	if rec.Index != 0 || rec.Error != nil {
		t.Fatalf("first record %+v, want successful index 0", rec)
	}
	close(release)

	rest := 0
	for range lines {
		rest++
	}
	if rest != 2 { // second result + done record
		t.Fatalf("got %d records after the first, want 2", rest)
	}
}

func TestStreamedBatchNDJSON(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"items":[
		{"kind":"percore","sku":"GreenSKU-Full","ci":0.1},
		{"kind":"percore","sku":"no-such-sku"},
		{"kind":"savings","sku":"GreenSKU-CXL"}
	]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", api.ContentTypeNDJSON)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)

	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Batch-Size"); got != "3" {
		t.Errorf("X-Batch-Size %q, want 3", got)
	}
	lines := strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 3 results + done:\n%s", len(lines), w.Body)
	}
	seen := map[int]api.BatchStreamItem{}
	for _, line := range lines[:3] {
		var rec api.BatchStreamItem
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if _, dup := seen[rec.Index]; dup {
			t.Fatalf("index %d streamed twice", rec.Index)
		}
		seen[rec.Index] = rec
	}
	for i := 0; i < 3; i++ {
		if _, ok := seen[i]; !ok {
			t.Fatalf("index %d missing from stream", i)
		}
	}
	if seen[0].Error != nil || len(seen[0].OK) == 0 {
		t.Errorf("item 0: %+v, want success", seen[0])
	}
	if seen[1].Error == nil || seen[1].Error.Code != api.CodeUnknownSKU || seen[1].Status != http.StatusBadRequest {
		t.Errorf("item 1: %+v, want in-band unknown_sku error", seen[1])
	}
	var done api.StreamDone
	if err := json.Unmarshal([]byte(lines[3]), &done); err != nil {
		t.Fatalf("done record %q: %v", lines[3], err)
	}
	if !done.Done || done.Items != 3 || done.Errors != 1 {
		t.Errorf("done record %+v, want {done:true items:3 errors:1}", done)
	}
}

func TestStreamedBatchSSE(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"items":[{"kind":"percore","sku":"GreenSKU-Full","ci":0.1}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", api.ContentTypeSSE)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)

	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("Content-Type"); got != api.ContentTypeSSE {
		t.Fatalf("content type %q", got)
	}
	events := strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n\n")
	if len(events) != 2 {
		t.Fatalf("got %d SSE events, want result + done:\n%s", len(events), w.Body)
	}
	for i, want := range []string{"result", "done"} {
		fields := strings.SplitN(events[i], "\n", 2)
		if len(fields) != 2 || fields[0] != "event: "+want || !strings.HasPrefix(fields[1], "data: ") {
			t.Fatalf("event %d framing %q, want event %q with data line", i, events[i], want)
		}
		payload := strings.TrimPrefix(fields[1], "data: ")
		if !json.Valid([]byte(payload)) {
			t.Fatalf("event %d payload is not JSON: %q", i, payload)
		}
	}
}

func TestStreamModeNegotiation(t *testing.T) {
	cases := map[string]string{
		"":                                       "",
		"application/json":                       "",
		"application/x-ndjson":                   "ndjson",
		"text/event-stream":                      "sse",
		"application/json, application/x-ndjson": "ndjson",
		"text/event-stream;q=0.9":                "sse",
		"application/x-ndjson ; q=1, text/event-stream": "ndjson",
	}
	for accept, want := range cases {
		r := httptest.NewRequest(http.MethodPost, "/v1/batch", nil)
		if accept != "" {
			r.Header.Set("Accept", accept)
		}
		if got := streamMode(r); got != want {
			t.Errorf("streamMode(%q) = %q, want %q", accept, got, want)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"green":"GreenSKU-Full","cis":[0.05,0.1,0.7],` + smallWorkload + `}`
	w := post(t, s.Handler(), "/v1/sweep", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp api.SweepResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	wantCI := []float64{0.05, 0.1, 0.7}
	savings := map[float64]bool{}
	for i, res := range resp.Results {
		if res.Error != nil {
			t.Fatalf("point %d failed: %+v", i, res.Error)
		}
		var ev api.EvaluateResponse
		if err := json.Unmarshal(res.OK, &ev); err != nil {
			t.Fatalf("point %d body: %v", i, err)
		}
		if float64(ev.CI) != wantCI[i] {
			t.Errorf("point %d echoed ci %v, want %v", i, ev.CI, wantCI[i])
		}
		savings[ev.PerCoreSavings] = true
	}
	// Distinct grid CIs must produce distinct evaluations.
	if len(savings) != 3 {
		t.Errorf("sweep produced %d distinct savings values, want 3", len(savings))
	}

	samples := parseOpenMetrics(t, get(t, s.Handler(), "/metrics").Body.String())
	if got := sumSamples(samples, "gsfd_sweep_points_total"); got != 3 {
		t.Errorf("gsfd_sweep_points_total = %v, want 3", got)
	}

	// Empty and oversized sweeps are rejected with the envelope.
	if w := post(t, s.Handler(), "/v1/sweep", `{"cis":[]}`); w.Code != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d, want 400", w.Code)
	}
}

func TestLimitsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{Workers: 3, QueueDepth: 9, MaxBatchItems: 77, RatePerSec: 5})
	w := get(t, s.Handler(), "/v1/limits")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp api.LimitsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workers != 3 || resp.QueueDepth != 9 || resp.MaxBatchItems != 77 {
		t.Errorf("limits %+v do not reflect the config", resp)
	}
	if resp.RatePerSec != 5 || resp.RateBurst != 20 {
		t.Errorf("rate limits %+v, want rate 5 burst 20", resp)
	}
	if resp.Replicas != 1 {
		t.Errorf("replicas %d, want 1 when sharding is off", resp.Replicas)
	}
}

// TestBatchOverLimitNamesTheLimit pins the satellite contract: the
// over-limit rejection carries the configured bound in the envelope.
func TestBatchOverLimitNamesTheLimit(t *testing.T) {
	s := newTestServer(t, Config{MaxBatchItems: 2})
	over := `{"items":[{"kind":"percore","sku":"A"},{"kind":"percore","sku":"B"},{"kind":"percore","sku":"C"}]}`
	w := post(t, s.Handler(), "/v1/batch", over)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", w.Code)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != api.CodeBadInput || e.Error.Limit != 2 {
		t.Errorf("envelope %+v, want bad_input with limit 2", e.Error)
	}
	if !strings.Contains(e.Error.Message, "/v1/limits") {
		t.Errorf("message %q should point at GET /v1/limits", e.Error.Message)
	}
}
