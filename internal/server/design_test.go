package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/design"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/search"
	"github.com/greensku/gsf/internal/server/api"
	"github.com/greensku/gsf/internal/units"
)

// tinyDesignSpace mirrors the design package's test space: two CPUs, a
// CXL corner, and a GPU option — a handful of candidates over three
// performance profiles, fast enough for handler tests and fuzzing.
func tinyDesignSpace() search.Space {
	return search.Space{
		CPUs:            []hw.CPUSpec{hw.Genoa, hw.Bergamo},
		LocalDIMMCounts: []int{12},
		LocalDIMMGBs:    []units.GB{64, 96},
		CXLDIMMCounts:   []int{0, 8},
		NewSSDCounts:    []int{3},
		ReusedSSDCounts: []int{0},
		GPUOptions:      []search.GPUOption{{}, {Spec: hw.L4, Count: 2}},
	}
}

func tinyDesignConfig() Config {
	sp := tinyDesignSpace()
	popt := design.DefaultPerfOptions()
	popt.Base.Requests = 1500
	popt.KneeLo, popt.KneeHi, popt.KneeTol = 0.5, 0.9, 0.1
	return Config{DesignSpace: &sp, DesignPerf: &popt}
}

func TestDesignBuffered(t *testing.T) {
	s := newTestServer(t, tinyDesignConfig())
	h := s.Handler()

	w := post(t, h, "/v1/design", `{"include_paper":true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp api.DesignResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Dataset != "open-source" {
		t.Errorf("dataset %q, want open-source", resp.Dataset)
	}
	if len(resp.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if len(resp.Verdicts) != 5 {
		t.Fatalf("%d verdicts, want the paper's 5", len(resp.Verdicts))
	}
	onFrontier := map[string]bool{}
	for _, p := range resp.Frontier {
		onFrontier[p.SKU] = true
	}
	for _, v := range resp.Verdicts {
		if v.OnFrontier == (v.DominatedBy != "") {
			t.Errorf("%s: on_frontier=%v with dominated_by=%q", v.Point.SKU, v.OnFrontier, v.DominatedBy)
		}
		if v.DominatedBy != "" && !onFrontier[v.DominatedBy] {
			t.Errorf("%s dominated by %q, which is not a frontier point", v.Point.SKU, v.DominatedBy)
		}
	}

	// The reply is a deterministic function of the request: byte-equal
	// and cache-served on replay.
	w2 := post(t, h, "/v1/design", `{"include_paper":true}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("replay status %d: %s", w2.Code, w2.Body)
	}
	if w2.Header().Get(api.HeaderCache) != "hit" {
		t.Error("replayed design request missed the cache")
	}
	if w.Body.String() != w2.Body.String() {
		t.Error("replayed design request drifted from the first reply")
	}
}

func TestDesignStreamNDJSON(t *testing.T) {
	cfg := tinyDesignConfig()
	cfg.Workers = 1 // deterministic completion order for the assertions
	s := newTestServer(t, cfg)

	req := httptest.NewRequest(http.MethodPost, "/v1/design", strings.NewReader(`{"include_paper":true}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", api.ContentTypeNDJSON)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != api.ContentTypeNDJSON {
		t.Fatalf("content type %q", ct)
	}

	var results []api.BatchStreamItem
	var done *api.DesignDone
	sc := bufio.NewScanner(w.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Done bool `json:"done"`
		}
		if json.Unmarshal(line, &probe) == nil && probe.Done {
			done = &api.DesignDone{}
			if err := json.Unmarshal(line, done); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var item api.BatchStreamItem
		if err := json.Unmarshal(line, &item); err != nil {
			t.Fatalf("bad stream record %s: %v", line, err)
		}
		results = append(results, item)
	}
	if done == nil {
		t.Fatal("stream ended without a done record")
	}
	if done.Items != len(results) {
		t.Fatalf("done.items %d, %d records streamed", done.Items, len(results))
	}
	if done.Errors != 0 {
		t.Fatalf("%d streamed errors", done.Errors)
	}
	if len(done.Frontier) == 0 {
		t.Fatal("done record carries no frontier")
	}
	points := make(map[int]api.DesignPoint, len(results))
	for _, it := range results {
		var p api.DesignPoint
		if err := json.Unmarshal(it.OK, &p); err != nil {
			t.Fatalf("record %d has no design point: %v", it.Index, err)
		}
		points[it.Index] = p
	}
	for _, idx := range done.Frontier {
		if _, ok := points[idx]; !ok {
			t.Errorf("frontier index %d has no streamed record", idx)
		}
	}
	if len(done.Verdicts) != 5 {
		t.Fatalf("%d streamed verdicts, want 5", len(done.Verdicts))
	}

	// The streamed frontier must name exactly the buffered frontier.
	wb := post(t, s.Handler(), "/v1/design", `{"include_paper":true}`)
	var buffered api.DesignResponse
	if err := json.Unmarshal(wb.Body.Bytes(), &buffered); err != nil {
		t.Fatal(err)
	}
	if len(buffered.Frontier) != len(done.Frontier) {
		t.Fatalf("buffered frontier has %d points, streamed %d", len(buffered.Frontier), len(done.Frontier))
	}
	for i, idx := range done.Frontier {
		if got, want := points[idx], buffered.Frontier[i]; got != want {
			t.Errorf("frontier[%d]: streamed %+v != buffered %+v", i, got, want)
		}
	}
}

func TestDesignBadInput(t *testing.T) {
	s := newTestServer(t, tinyDesignConfig())
	h := s.Handler()
	cases := []struct {
		name, body, code string
	}{
		{"unknown_cpu", `{"cpus":["Pentium"]}`, api.CodeBadInput},
		{"negative_gpus", `{"max_gpus":-1}`, api.CodeBadInput},
		{"unknown_dataset", `{"dataset":"secret"}`, api.CodeUnknownDataset},
		{"negative_ci", `{"ci":-0.2}`, api.CodeBadInput},
		{"unknown_field", `{"frontier":true}`, api.CodeBadInput},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := post(t, h, "/v1/design", tc.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status %d: %s", w.Code, w.Body)
			}
			var env api.ErrorResponse
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatal(err)
			}
			if env.Error.Code != tc.code {
				t.Errorf("code %q, want %q", env.Error.Code, tc.code)
			}
		})
	}
}

func TestDesignCandidateLimit(t *testing.T) {
	cfg := tinyDesignConfig()
	cfg.MaxDesignCandidates = 2
	s := newTestServer(t, cfg)
	w := post(t, s.Handler(), "/v1/design", `{}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var env api.ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != api.CodeBadInput || env.Error.Limit != 2 {
		t.Errorf("envelope %+v, want bad_input with limit 2", env.Error)
	}
}

func TestDesignCPUAndGPUFilters(t *testing.T) {
	s := newTestServer(t, tinyDesignConfig())
	h := s.Handler()

	// CPU-only, Bergamo-only: every frontier point is a Bergamo SKU.
	w := post(t, h, "/v1/design", `{"cpus":["Bergamo"]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp api.DesignResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, p := range resp.Frontier {
		if p.CPU != "Bergamo" {
			t.Errorf("frontier point %s uses CPU %s despite the filter", p.SKU, p.CPU)
		}
	}

	// max_gpus 0 must strip accelerator candidates; the tiny space's L4
	// corner halves away.
	w0 := post(t, h, "/v1/design", `{}`)
	wg := post(t, h, "/v1/design", `{"max_gpus":2}`)
	var r0, rg api.DesignResponse
	if err := json.Unmarshal(w0.Body.Bytes(), &r0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(wg.Body.Bytes(), &rg); err != nil {
		t.Fatal(err)
	}
	if rg.Candidates <= r0.Candidates {
		t.Errorf("max_gpus=2 enumerated %d candidates, max_gpus=0 %d: GPU dimension never opened",
			rg.Candidates, r0.Candidates)
	}
}
