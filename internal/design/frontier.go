// Package design searches the SKU component space for the
// carbon/performance/density Pareto frontier the paper leaves as
// future work (§VIII). It generates candidate servers from the
// internal/hw catalog — CPU choice, socket count, DDR4-behind-CXL
// ratio, reused-SSD tiers, and optional SCARIF-style accelerators —
// fans their evaluation through internal/engine, and maintains the
// set of mutually non-dominated designs in a Frontier whose dominance
// order is a strict partial order, making the surviving set
// independent of evaluation and insertion order.
package design

import (
	"math"
	"sort"

	"github.com/greensku/gsf/internal/hw"
)

// Objectives are the three axes of the design search. CarbonPerCore is
// minimised; the other two are maximised.
type Objectives struct {
	// CarbonPerCore is amortised lifetime kgCO2e per core
	// (carbon.PerCore.Total at the evaluation CI).
	CarbonPerCore float64
	// PerfPerCore is the portfolio per-core capacity relative to the
	// Gen3 baseline (Evaluator.PerfScore); 1.0 means baseline-equal.
	PerfPerCore float64
	// CoresPerRack is rack density under the dataset's space and power
	// caps (carbon.Rack.Cores).
	CoresPerRack float64
}

// vec is the canonical minimise-vector of the objectives: dominance
// below is plain ≤/< comparison on it.
func (o Objectives) vec() [3]float64 {
	return [3]float64{o.CarbonPerCore, -o.PerfPerCore, -o.CoresPerRack}
}

// Point is one evaluated candidate design.
type Point struct {
	SKU hw.SKU
	Obj Objectives
}

// Frontier maintains the non-dominated set under a quantised strict
// dominance order with deterministic tie-breaking.
//
// Epsilon-dedup works on a fixed grid: each objective axis with a
// positive epsilon step is quantised to integer cells at construction
// time, and dominance compares cells. Within one cell exactly one
// point survives — the lexicographically smallest by raw
// minimise-vector, then by SKU name. A fixed grid (rather than
// per-point relative epsilon balls) is what keeps the order
// transitive: cell equality is exact, so Beats is irreflexive and
// transitive, and the maximal-element set — what Insert maintains
// incrementally — is unique regardless of insertion order.
type Frontier struct {
	eps Objectives
	pts []Point
}

// NewFrontier returns an empty frontier quantised by eps. An axis with
// a non-positive (or non-finite) epsilon is compared exactly.
func NewFrontier(eps Objectives) *Frontier {
	clamp := func(e float64) float64 {
		if !(e > 0) || math.IsInf(e, 1) {
			return 0
		}
		return e
	}
	return &Frontier{eps: Objectives{
		CarbonPerCore: clamp(eps.CarbonPerCore),
		PerfPerCore:   clamp(eps.PerfPerCore),
		CoresPerRack:  clamp(eps.CoresPerRack),
	}}
}

// cells quantises a point's minimise-vector onto the frontier's grid.
func (f *Frontier) cells(p Point) [3]float64 {
	v := p.Obj.vec()
	e := [3]float64{f.eps.CarbonPerCore, f.eps.PerfPerCore, f.eps.CoresPerRack}
	for i := range v {
		if e[i] > 0 {
			v[i] = math.Floor(v[i] / e[i])
		}
	}
	return v
}

// Beats reports whether p strictly precedes q in the frontier's order:
// p's quantised objectives dominate q's (no axis worse, at least one
// better), or both fall in the same cell and p wins the deterministic
// tie-break (smaller raw minimise-vector, then smaller SKU name).
func (f *Frontier) Beats(p, q Point) bool {
	pc, qc := f.cells(p), f.cells(q)
	less, greater := false, false
	for i := range pc {
		if pc[i] < qc[i] {
			less = true
		}
		if pc[i] > qc[i] {
			greater = true
		}
	}
	if less && !greater {
		return true
	}
	if less || greater {
		return false
	}
	pv, qv := p.Obj.vec(), q.Obj.vec()
	for i := range pv {
		if pv[i] != qv[i] {
			return pv[i] < qv[i]
		}
	}
	return p.SKU.Name < q.SKU.Name
}

// Insert offers p to the frontier and reports whether it survived.
// Points with non-finite objectives are rejected, as is a point whose
// SKU name is already present (names identify candidates; a re-offered
// candidate is a duplicate, not a new design). A surviving insert
// prunes every held point the newcomer beats, so by transitivity each
// pruned candidate is always beaten by some point of the final set.
func (f *Frontier) Insert(p Point) bool {
	for _, x := range p.Obj.vec() {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	for _, q := range f.pts {
		if q.SKU.Name == p.SKU.Name || f.Beats(q, p) {
			return false
		}
	}
	kept := f.pts[:0]
	for _, q := range f.pts {
		if !f.Beats(p, q) {
			kept = append(kept, q)
		}
	}
	f.pts = append(kept, p)
	return true
}

// Len returns the current frontier size.
func (f *Frontier) Len() int { return len(f.pts) }

// Points returns the frontier sorted by ascending carbon, then name —
// the canonical presentation order.
func (f *Frontier) Points() []Point {
	out := append([]Point(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj.CarbonPerCore != out[j].Obj.CarbonPerCore {
			return out[i].Obj.CarbonPerCore < out[j].Obj.CarbonPerCore
		}
		return out[i].SKU.Name < out[j].SKU.Name
	})
	return out
}

// DominatedBy returns the name of the first frontier point in Points
// order that beats p, or "" when none does (p is then itself on the
// frontier, or was never offered).
func (f *Frontier) DominatedBy(p Point) string {
	for _, q := range f.Points() {
		if f.Beats(q, p) {
			return q.SKU.Name
		}
	}
	return ""
}

// DefaultEpsilon is the dedup grid of the stock search: 10 g CO2e per
// core, 0.1% of baseline performance, exact rack density. Designs
// closer than this on every axis are interchangeable in practice; one
// representative per cell keeps the frontier readable.
func DefaultEpsilon() Objectives {
	return Objectives{CarbonPerCore: 0.01, PerfPerCore: 0.001, CoresPerRack: 0}
}
