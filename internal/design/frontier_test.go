package design

import (
	"fmt"
	"math"
	"os"
	"reflect"
	"sort"
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/stats"
)

func TestMain(m *testing.M) { os.Exit(audit.SweepMain(m)) }

func pt(name string, carbon, perfScore, cores float64) Point {
	return Point{SKU: hw.SKU{Name: name}, Obj: Objectives{
		CarbonPerCore: carbon, PerfPerCore: perfScore, CoresPerRack: cores,
	}}
}

// randomPoints generates a cloud with deliberate structure: clustered
// values that land in shared epsilon cells, exact ties, and plain
// random spread, so the quantised order and its tie-breaks all get
// exercised.
func randomPoints(r *stats.RNG, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		var o Objectives
		switch r.Intn(3) {
		case 0: // continuous spread
			o = Objectives{20 + 40*r.Float64(), 0.5 + r.Float64(), float64(320 + 80*r.Intn(16))}
		case 1: // coarse grid: many cell collisions under DefaultEpsilon
			o = Objectives{20 + float64(r.Intn(8)), 0.5 + 0.1*float64(r.Intn(8)), float64(320 + 80*r.Intn(4))}
		default: // near-duplicates inside one cell
			o = Objectives{30 + 0.001*float64(r.Intn(5)), 0.9 + 0.0001*float64(r.Intn(5)), 640}
		}
		pts[i] = Point{SKU: hw.SKU{Name: fmt.Sprintf("p%03d", i)}, Obj: o}
	}
	return pts
}

// oracleFrontier is the O(n²) reference: the maximal elements of the
// strict partial order, computed by brute force.
func oracleFrontier(f *Frontier, pts []Point) []string {
	var names []string
	for i, p := range pts {
		beaten := false
		for j, q := range pts {
			if i != j && f.Beats(q, p) {
				beaten = true
				break
			}
		}
		if !beaten {
			names = append(names, p.SKU.Name)
		}
	}
	sort.Strings(names)
	return names
}

func frontierNames(f *Frontier) []string {
	var names []string
	for _, p := range f.Points() {
		names = append(names, p.SKU.Name)
	}
	sort.Strings(names)
	return names
}

// TestFrontierProperties checks, across 35 seeds and for both an exact
// and a quantised frontier: the incremental frontier equals the
// brute-force oracle, no surviving point beats another, every pruned
// candidate is beaten by a survivor, and the surviving set is
// invariant under insertion-order permutation.
func TestFrontierProperties(t *testing.T) {
	epsilons := []Objectives{{}, DefaultEpsilon()}
	for seed := uint64(0); seed < 35; seed++ {
		r := stats.NewRNG(seed*2654435761 + 1)
		pts := randomPoints(r, 80+r.Intn(60))
		for ei, eps := range epsilons {
			f := NewFrontier(eps)
			for _, p := range pts {
				f.Insert(p)
			}
			got := frontierNames(f)
			want := oracleFrontier(f, pts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d eps#%d: frontier %v != oracle %v", seed, ei, got, want)
			}

			surv := f.Points()
			for i, p := range surv {
				for j, q := range surv {
					if i != j && f.Beats(p, q) {
						t.Fatalf("seed %d eps#%d: survivor %s beats survivor %s", seed, ei, p.SKU.Name, q.SKU.Name)
					}
				}
			}

			inSet := map[string]bool{}
			for _, n := range got {
				inSet[n] = true
			}
			for _, p := range pts {
				if inSet[p.SKU.Name] {
					continue
				}
				beaten := false
				for _, q := range surv {
					if f.Beats(q, p) {
						beaten = true
						break
					}
				}
				if !beaten {
					t.Fatalf("seed %d eps#%d: pruned point %s is beaten by no survivor", seed, ei, p.SKU.Name)
				}
			}

			for perm := 0; perm < 4; perm++ {
				shuffled := append([]Point(nil), pts...)
				for i := len(shuffled) - 1; i > 0; i-- {
					j := r.Intn(i + 1)
					shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
				}
				g := NewFrontier(eps)
				for _, p := range shuffled {
					g.Insert(p)
				}
				if pn := frontierNames(g); !reflect.DeepEqual(pn, got) {
					t.Fatalf("seed %d eps#%d perm %d: frontier %v != identity-order frontier %v", seed, ei, perm, pn, got)
				}
			}
		}
	}
}

func TestFrontierInsertBasics(t *testing.T) {
	f := NewFrontier(Objectives{})
	if !f.Insert(pt("a", 30, 1.0, 640)) {
		t.Fatal("first insert rejected")
	}
	// Strictly dominated on every axis.
	if f.Insert(pt("b", 35, 0.9, 600)) {
		t.Error("dominated point survived")
	}
	// Trades carbon for performance: both stay.
	if !f.Insert(pt("c", 25, 0.8, 640)) {
		t.Error("trade-off point pruned")
	}
	if f.Len() != 2 {
		t.Fatalf("frontier size %d, want 2", f.Len())
	}
	// A dominator of "a" replaces it.
	if !f.Insert(pt("d", 29, 1.1, 640)) {
		t.Error("dominating point rejected")
	}
	if got := frontierNames(f); !reflect.DeepEqual(got, []string{"c", "d"}) {
		t.Fatalf("frontier %v, want [c d]", got)
	}
	if dom := f.DominatedBy(pt("a", 30, 1.0, 640)); dom != "d" {
		t.Errorf("DominatedBy(a) = %q, want d", dom)
	}
	if dom := f.DominatedBy(pt("c", 25, 0.8, 640)); dom != "" {
		t.Errorf("DominatedBy(c) = %q, want empty", dom)
	}
}

func TestFrontierEpsilonDedup(t *testing.T) {
	f := NewFrontier(Objectives{CarbonPerCore: 0.1, PerfPerCore: 0.01, CoresPerRack: 0})
	if !f.Insert(pt("a", 30.01, 1.001, 640)) {
		t.Fatal("first insert rejected")
	}
	// Same cell on every axis, larger raw carbon: deduped.
	if f.Insert(pt("b", 30.05, 1.002, 640)) {
		t.Error("cell duplicate survived")
	}
	// Same cell, smaller raw carbon: replaces the holder.
	if !f.Insert(pt("c", 30.005, 1.005, 640)) {
		t.Error("better cell representative rejected")
	}
	if got := frontierNames(f); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("frontier %v, want [c]", got)
	}
}

func TestFrontierRejectsNonFiniteAndDuplicateNames(t *testing.T) {
	f := NewFrontier(DefaultEpsilon())
	if f.Insert(pt("nan", math.NaN(), 1, 640)) {
		t.Error("NaN objective accepted")
	}
	if f.Insert(pt("inf", 30, math.Inf(1), 640)) {
		t.Error("Inf objective accepted")
	}
	if !f.Insert(pt("a", 30, 1, 640)) {
		t.Fatal("finite insert rejected")
	}
	if f.Insert(pt("a", 10, 2, 900)) {
		t.Error("duplicate name accepted")
	}
	if f.Len() != 1 {
		t.Fatalf("frontier size %d, want 1", f.Len())
	}
}
