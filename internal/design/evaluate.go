package design

import (
	"context"
	"fmt"

	"github.com/greensku/gsf/internal/apps"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/perf"
	"github.com/greensku/gsf/internal/queueing"
	"github.com/greensku/gsf/internal/units"
)

// PerfOptions configure the performance objective.
type PerfOptions struct {
	// Base is the measurement protocol shared with package perf: VM
	// size, request count, seed, SLO slack. Its Requests/Seed drive the
	// knee searches with common random numbers, so every candidate sees
	// the same arrival sequence and scores are exactly reproducible.
	Base perf.Options
	// KneeLo and KneeHi bracket the sustainable-load search as
	// fractions of theoretical capacity; KneeTol is the bisection
	// resolution (queueing.KneeSearch). KneeHi should equal the SLO
	// operating load (Base.LoadFraction): a design that is stable all
	// the way up then has its StableP95 measured at exactly the load
	// the baseline's SLO point was, making the two directly comparable.
	KneeLo, KneeHi, KneeTol float64
}

// DefaultPerfOptions returns the paper's protocol with the knee
// bracket topping out at the SLO operating load.
func DefaultPerfOptions() PerfOptions {
	base := perf.DefaultOptions()
	return PerfOptions{Base: base, KneeLo: 0.5, KneeHi: base.LoadFraction, KneeTol: 0.02}
}

// perfScoreCacheEntries bounds the per-evaluator score memo. Distinct
// performance profiles are few — CPU choice times CXL population — so
// this is far above any real space.
const perfScoreCacheEntries = 256

// Evaluator scores candidate SKUs on the three frontier objectives
// under one carbon dataset and CI. It is safe for concurrent use: the
// search driver fans Evaluate across engine workers.
//
// The expensive objective is performance: a full portfolio score costs
// five adaptive knee searches. The evaluator memoises scores by
// performance profile (perf.ProfileOf, which is independent of DIMM
// sizes, SSDs, and GPUs), so a thousand-candidate space typically pays
// for only a handful of simulations; everything else is served from
// the memo with bit-identical values.
type Evaluator struct {
	Model *carbon.Model
	CI    units.CarbonIntensity
	Perf  PerfOptions

	baseline hw.SKU
	scores   *engine.Cache[float64]
	knees    *engine.Cache[queueing.Knee]
}

// NewEvaluator returns an evaluator over the model's dataset. A zero
// ci selects the dataset default.
func NewEvaluator(m *carbon.Model, ci units.CarbonIntensity, popt PerfOptions) *Evaluator {
	if ci == 0 {
		ci = m.Data.DefaultCI
	}
	return &Evaluator{
		Model:    m,
		CI:       ci,
		Perf:     popt,
		baseline: hw.BaselineGen3(),
		scores:   engine.NewCache[float64](perfScoreCacheEntries),
		knees:    engine.NewCache[queueing.Knee](perfScoreCacheEntries),
	}
}

// Evaluate scores one SKU on all three objectives.
func (e *Evaluator) Evaluate(ctx context.Context, sku hw.SKU) (Point, error) {
	rack, err := e.Model.Rack(sku)
	if err != nil {
		return Point{}, err
	}
	pc, err := e.Model.PerCore(sku, e.CI)
	if err != nil {
		return Point{}, err
	}
	score, err := e.PerfScore(ctx, sku)
	if err != nil {
		return Point{}, err
	}
	return Point{SKU: sku, Obj: Objectives{
		CarbonPerCore: float64(pc.Total()),
		PerfPerCore:   score,
		CoresPerRack:  float64(rack.Cores),
	}}, nil
}

// profileKey identifies a performance profile minus its SKU name — the
// fields ServiceTime actually reads — plus everything that changes a
// simulated value. Workers and DisableSLOMemo are normalised out: they
// never change an answer.
func (e *Evaluator) profileKey(kind string, a string, p perf.Profile) string {
	opt := e.Perf
	opt.Base.Workers = 0
	opt.Base.DisableSLOMemo = false
	return fmt.Sprintf("%s|%s|%v|%v|%v|%v|%#v", kind, a,
		p.CPUScore, p.LLCPerCoreMiB, p.BWPerCoreGBs, p.MemLatencyNs, opt)
}

// PerfScore is the portfolio per-core capacity of the SKU relative to
// the Gen3 baseline: for every latency-critical workload class the
// representative app's sustainable throughput on an 8-core VM (an
// adaptive knee search, gated on the baseline's memoised SLO point),
// and for the DevOps build class the analytic throughput ratio — all
// weighted by the production core-hour mix. 1.0 means one candidate
// core delivers exactly one baseline core's portfolio capacity; a
// class whose latency SLO cannot be met at any searched load
// contributes zero, so inadoptable designs are penalised, not hidden.
//
// CXL-bearing SKUs are scored with the fully CXL-backed profile — the
// conservative end of the paper's §III slowdown range.
func (e *Evaluator) PerfScore(ctx context.Context, sku hw.SKU) (float64, error) {
	if err := sku.Validate(); err != nil {
		return 0, err
	}
	p := perf.ProfileOf(sku, sku.HasCXL())
	return e.scores.Do(e.profileKey("score", "", p), func() (float64, error) {
		return e.perfScore(ctx, p)
	})
}

func (e *Evaluator) perfScore(ctx context.Context, green perf.Profile) (float64, error) {
	base := perf.ProfileOf(e.baseline, false)
	var sum, wsum float64
	for _, a := range apps.Representatives() {
		ratio, err := e.classRatio(ctx, a, green, base)
		if err != nil {
			return 0, err
		}
		w := apps.ClassShares[a.Class]
		sum += w * ratio
		wsum += w
	}
	// DevOps builds are throughput workloads: their per-core capacity
	// ratio is the analytic inverse slowdown, averaged over the class.
	builds := apps.ByClass()[apps.DevOps]
	if len(builds) > 0 {
		var dev float64
		for _, a := range builds {
			dev += perf.ServiceTime(a, base) / perf.ServiceTime(a, green)
		}
		w := apps.ClassShares[apps.DevOps]
		sum += w * dev / float64(len(builds))
		wsum += w
	}
	if wsum == 0 {
		return 0, fmt.Errorf("design: no workload classes to score")
	}
	return sum / wsum, nil
}

// classRatio is one latency-critical class's capacity ratio: the
// candidate's sustainable QPS over the baseline's, or zero when the
// candidate blows the class SLO (its p95 at the highest stable load
// exceeds the baseline's memoised SLO point by more than the slack).
func (e *Evaluator) classRatio(ctx context.Context, a apps.App, green, base perf.Profile) (float64, error) {
	slo, _, err := perf.SLOContext(ctx, a, e.baseline, e.Perf.Base)
	if err != nil {
		return 0, err
	}
	baseKnee, err := e.knee(ctx, a, base)
	if err != nil {
		return 0, err
	}
	if baseKnee.StableQPS <= 0 {
		return 0, fmt.Errorf("design: baseline found no stable load for %s", a.Name)
	}
	greenKnee, err := e.knee(ctx, a, green)
	if err != nil {
		return 0, err
	}
	if greenKnee.StableQPS <= 0 || greenKnee.StableP95 > slo*e.Perf.Base.SLOSlack {
		return 0, nil
	}
	return greenKnee.StableQPS / baseKnee.StableQPS, nil
}

// knee runs (or serves from the memo) the adaptive sustainable-load
// search for one app on one profile's VM.
func (e *Evaluator) knee(ctx context.Context, a apps.App, p perf.Profile) (queueing.Knee, error) {
	return e.knees.Do(e.profileKey("knee", a.Name, p), func() (queueing.Knee, error) {
		cfg := queueing.Config{
			Servers:           e.Perf.Base.BaselineCores,
			Service:           queueing.LogNormal{MeanSeconds: perf.ServiceTime(a, p), CV: a.CV},
			Requests:          e.Perf.Base.Requests,
			Seed:              e.Perf.Base.Seed,
			ReferenceSampling: e.Perf.Base.ReferenceSampling,
		}
		return queueing.KneeSearch(ctx, cfg, e.Perf.KneeLo, e.Perf.KneeHi, e.Perf.KneeTol)
	})
}
