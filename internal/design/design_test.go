package design

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/search"
	"github.com/greensku/gsf/internal/units"
)

// tinySpace is a small but non-trivial space: two CPUs, a CXL corner,
// and a GPU option — eight feasible candidates over three distinct
// performance profiles.
func tinySpace() search.Space {
	return search.Space{
		CPUs:            []hw.CPUSpec{hw.Genoa, hw.Bergamo},
		LocalDIMMCounts: []int{12},
		LocalDIMMGBs:    []units.GB{64, 96},
		CXLDIMMCounts:   []int{0, 8},
		NewSSDCounts:    []int{3},
		ReusedSSDCounts: []int{0},
		GPUOptions:      []search.GPUOption{{}, {Spec: hw.L4, Count: 2}},
	}
}

func tinyOptions() Options {
	opt := DefaultOptions()
	opt.Space = tinySpace()
	opt.Perf.Base.Requests = 1500
	opt.Perf.KneeLo, opt.Perf.KneeHi, opt.Perf.KneeTol = 0.5, 0.9, 0.1
	return opt
}

func TestPerfScoreBaselineExactlyOne(t *testing.T) {
	m, err := carbon.New(carbondata.OpenSource())
	if err != nil {
		t.Fatal(err)
	}
	popt := DefaultPerfOptions()
	popt.Base.Requests = 1500
	popt.KneeTol = 0.1
	ev := NewEvaluator(m, 0, popt)
	score, err := ev.PerfScore(context.Background(), hw.BaselineGen3())
	if err != nil {
		t.Fatal(err)
	}
	if score != 1 {
		t.Fatalf("baseline portfolio score = %v, want exactly 1 (same knees on both sides)", score)
	}
}

func TestSearchSerialMatchesParallel(t *testing.T) {
	ctx := context.Background()
	serial := tinyOptions()
	serial.Workers = 1
	parallel := tinyOptions()
	parallel.Workers = 0
	parallel.Extra = hw.TableIVConfigs()
	serial.Extra = hw.TableIVConfigs()

	a, err := Search(ctx, serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(ctx, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("serial and parallel searches differ:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

func TestSearchVerdictsClassifyPaperSKUs(t *testing.T) {
	opt := tinyOptions()
	opt.Extra = hw.TableIVConfigs()
	res, err := Search(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	if len(res.Verdicts) != len(opt.Extra) {
		t.Fatalf("%d verdicts for %d extra SKUs", len(res.Verdicts), len(opt.Extra))
	}
	onFrontier := map[string]bool{}
	for _, p := range res.Frontier {
		onFrontier[p.SKU.Name] = true
	}
	for i, v := range res.Verdicts {
		if v.Point.SKU.Name != opt.Extra[i].Name {
			t.Errorf("verdict %d is for %s, want %s", i, v.Point.SKU.Name, opt.Extra[i].Name)
		}
		if v.OnFrontier == (v.DominatedBy != "") {
			t.Errorf("%s: OnFrontier=%v with DominatedBy=%q", v.Point.SKU.Name, v.OnFrontier, v.DominatedBy)
		}
		if v.OnFrontier && !onFrontier[v.Point.SKU.Name] {
			t.Errorf("%s marked on-frontier but absent from the frontier", v.Point.SKU.Name)
		}
		if v.DominatedBy != "" && !onFrontier[v.DominatedBy] {
			t.Errorf("%s dominated by %s, which is not a frontier point", v.Point.SKU.Name, v.DominatedBy)
		}
	}
}

func TestSearchRejectsUndeployableSpace(t *testing.T) {
	// A rack power cap below one server's draw leaves every design
	// fitting zero servers per rack: Candidates must filter them all
	// and Search must report an empty space rather than erroring deep
	// in evaluation.
	data := carbondata.OpenSource()
	data.RackPowerCap = 600 // 500 W rack misc leaves a 100 W budget
	m, err := carbon.New(data)
	if err != nil {
		t.Fatal(err)
	}
	skus, err := Candidates(tinySpace(), search.DefaultConstraints(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(skus) != 0 {
		t.Fatalf("%d candidates survive a 100 W rack budget", len(skus))
	}
}

func TestCheckFrontierCanary(t *testing.T) {
	ctx := context.Background()
	m, err := carbon.New(carbondata.OpenSource())
	if err != nil {
		t.Fatal(err)
	}
	popt := DefaultPerfOptions()
	popt.Base.Requests = 1500
	popt.KneeLo, popt.KneeHi, popt.KneeTol = 0.5, 0.9, 0.1
	ev := NewEvaluator(m, 0, popt)
	p, err := ev.Evaluate(ctx, hw.BaselineGen3())
	if err != nil {
		t.Fatal(err)
	}

	clean := NewFrontier(DefaultEpsilon())
	clean.Insert(p)
	rec := audit.NewRecorder()
	CheckFrontier(ctx, rec, ev, clean)
	if n := rec.Count(); n != 0 {
		t.Fatalf("clean frontier recorded %d violations: %v", n, rec.Violations())
	}

	// A broken optimizer that drifts a stored objective must be caught
	// by the recompute invariants.
	broken := p
	broken.Obj.CarbonPerCore += 1
	broken.Obj.PerfPerCore *= 0.5
	broken.Obj.CoresPerRack += 80
	f := NewFrontier(DefaultEpsilon())
	f.Insert(broken)
	rec = audit.NewRecorder()
	CheckFrontier(ctx, rec, ev, f)
	counts := rec.Counts()
	for _, want := range []string{"design/frontier-carbon", "design/frontier-perf", "design/frontier-density"} {
		if counts[want] == 0 {
			t.Errorf("mutated frontier point did not trip %s (counts: %v)", want, counts)
		}
	}
}

func TestCandidatesEnumerationOrderAndNames(t *testing.T) {
	m, err := carbon.New(carbondata.OpenSource())
	if err != nil {
		t.Fatal(err)
	}
	skus, err := Candidates(tinySpace(), search.DefaultConstraints(), m)
	if err != nil {
		t.Fatal(err)
	}
	if len(skus) == 0 {
		t.Fatal("no candidates in the tiny space")
	}
	seen := map[string]bool{}
	gpuSeen := false
	for _, sku := range skus {
		if seen[sku.Name] {
			t.Errorf("duplicate candidate name %s", sku.Name)
		}
		seen[sku.Name] = true
		if sku.HasGPU() {
			gpuSeen = true
			if !strings.Contains(sku.Name, "x"+hw.L4.Name) {
				t.Errorf("GPU candidate %s does not encode its card", sku.Name)
			}
		}
	}
	if !gpuSeen {
		t.Error("no GPU-bearing candidate survived feasibility")
	}
}
