package design

import (
	"context"
	"fmt"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/carbon"
	"github.com/greensku/gsf/internal/carbondata"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/hw"
	"github.com/greensku/gsf/internal/search"
	"github.com/greensku/gsf/internal/units"
)

// Options configure one frontier search.
type Options struct {
	Space       search.Space
	Constraints search.Constraints
	Dataset     string
	// CI is the grid carbon intensity; zero selects the dataset default.
	CI      units.CarbonIntensity
	Perf    PerfOptions
	Epsilon Objectives
	// Workers bounds the parallel candidate fan-out; <= 0 selects
	// GOMAXPROCS, 1 forces serial order. The frontier is byte-identical
	// either way.
	Workers int
	// Extra SKUs are evaluated alongside the generated candidates and
	// classified against the final frontier — the frontier experiment
	// passes the paper's five Table IV configurations here.
	Extra []hw.SKU
	// Audit receives design invariant violations (frontier recompute
	// drift, mutual domination). Nil falls back to the process default.
	Audit audit.Checker
}

// DefaultGPUOptions spans the accelerator corner of the space: no
// card, and two or four of each catalog part.
func DefaultGPUOptions() []search.GPUOption {
	opts := []search.GPUOption{{}}
	for _, g := range hw.GPUCatalog() {
		for _, n := range []int{2, 4} {
			opts = append(opts, search.GPUOption{Spec: g, Count: n})
		}
	}
	return opts
}

// DefaultOptions returns the stock search: the paper's design
// neighbourhood widened with the accelerator dimension, evaluated on
// the open dataset at its default CI.
func DefaultOptions() Options {
	sp := search.DefaultSpace()
	sp.GPUOptions = DefaultGPUOptions()
	return Options{
		Space:       sp,
		Constraints: search.DefaultConstraints(),
		Dataset:     "open-source",
		Perf:        DefaultPerfOptions(),
		Epsilon:     DefaultEpsilon(),
	}
}

// Candidates materialises the space's candidate SKUs in enumeration
// order: every design that satisfies the platform constraints and fits
// at least one server per rack under the dataset's power cap. The rack
// pre-check keeps undeployable corners (a GPU population blowing the
// rack power budget) out of the evaluation fan-out, so an evaluation
// error downstream always signals a real fault, never a bad corner of
// the space.
func Candidates(sp search.Space, c search.Constraints, m *carbon.Model) ([]hw.SKU, error) {
	var out []hw.SKU
	for _, d := range sp.Designs() {
		if !sp.Feasible(d, c) {
			continue
		}
		sku := sp.SKU(d)
		rack, err := m.Rack(sku)
		if err != nil {
			return nil, err
		}
		if rack.Cores == 0 {
			continue
		}
		out = append(out, sku)
	}
	return out, nil
}

// Verdict classifies one extra SKU against the searched frontier.
type Verdict struct {
	Point Point
	// OnFrontier reports the SKU survived as a frontier point.
	OnFrontier bool
	// DominatedBy names the first frontier point (in Points order)
	// that beats it; empty when OnFrontier.
	DominatedBy string
}

// Result is the output of one frontier search.
type Result struct {
	Dataset string
	CI      units.CarbonIntensity
	// Candidates counts evaluated designs (generated plus Extra).
	Candidates int
	// Frontier is the non-dominated set, ascending carbon order.
	Frontier []Point
	// Verdicts classify Options.Extra, in input order.
	Verdicts []Verdict
}

// Search generates, evaluates, and ranks the design space. Candidate
// evaluation fans out through the engine; insertion happens in
// enumeration order, and because the dominance order is a strict
// partial order the resulting frontier does not depend on that order
// anyway — the serial and parallel runs are byte-identical.
func Search(ctx context.Context, opt Options) (Result, error) {
	data, ok := carbondata.Datasets()[opt.Dataset]
	if !ok {
		return Result{}, fmt.Errorf("design: unknown dataset %q", opt.Dataset)
	}
	m, err := carbon.New(data)
	if err != nil {
		return Result{}, err
	}
	m.Audit = opt.Audit
	skus, err := Candidates(opt.Space, opt.Constraints, m)
	if err != nil {
		return Result{}, err
	}
	skus = append(skus, opt.Extra...)
	if len(skus) == 0 {
		return Result{}, fmt.Errorf("design: no feasible candidates in the space")
	}

	ev := NewEvaluator(m, opt.CI, opt.Perf)
	results := engine.Map(ctx, engine.Workers(opt.Workers), len(skus), func(ctx context.Context, i int) (Point, error) {
		return ev.Evaluate(ctx, skus[i])
	})
	pts, err := engine.Collect(results)
	if err != nil {
		return Result{}, err
	}

	f := NewFrontier(opt.Epsilon)
	for _, p := range pts {
		f.Insert(p)
	}
	out := Result{Dataset: opt.Dataset, CI: ev.CI, Candidates: len(skus), Frontier: f.Points()}
	for _, p := range pts[len(pts)-len(opt.Extra):] {
		v := Verdict{Point: p, DominatedBy: f.DominatedBy(p)}
		v.OnFrontier = v.DominatedBy == ""
		out.Verdicts = append(out.Verdicts, v)
	}
	CheckFrontier(ctx, audit.Resolve(opt.Audit), ev, f)
	return out, nil
}

// CheckFrontier audits a finished frontier: every point's objectives
// must recompute exactly through the carbon model and a fresh,
// unmemoised performance evaluation (catching an optimizer that
// mutates or mislabels points), and no frontier point may beat
// another (catching broken pruning). A nil checker skips everything.
func CheckFrontier(ctx context.Context, c audit.Checker, ev *Evaluator, f *Frontier) {
	if c == nil || f == nil {
		return
	}
	// Fresh caches and no process-wide SLO memo: the recompute must
	// not be served by the state under test.
	fopt := ev.Perf
	fopt.Base.DisableSLOMemo = true
	fresh := NewEvaluator(ev.Model, ev.CI, fopt)
	pts := f.Points()
	for _, p := range pts {
		pc, err := fresh.Model.PerCore(p.SKU, fresh.CI)
		if err != nil {
			audit.Failf(c, "design", "frontier-recompute", "%s: %v", p.SKU.Name, err)
			continue
		}
		rack, err := fresh.Model.Rack(p.SKU)
		if err != nil {
			audit.Failf(c, "design", "frontier-recompute", "%s: %v", p.SKU.Name, err)
			continue
		}
		if !audit.Close(float64(pc.Total()), p.Obj.CarbonPerCore, audit.CarbonTol) {
			audit.Failf(c, "design", "frontier-carbon",
				"%s: stored %v kg/core, carbon model says %v", p.SKU.Name, p.Obj.CarbonPerCore, float64(pc.Total()))
		}
		if float64(rack.Cores) != p.Obj.CoresPerRack {
			audit.Failf(c, "design", "frontier-density",
				"%s: stored %v cores/rack, carbon model says %d", p.SKU.Name, p.Obj.CoresPerRack, rack.Cores)
		}
		score, err := fresh.PerfScore(ctx, p.SKU)
		if err != nil {
			audit.Failf(c, "design", "frontier-recompute", "%s: %v", p.SKU.Name, err)
		} else if !audit.Close(score, p.Obj.PerfPerCore, audit.CarbonTol) {
			audit.Failf(c, "design", "frontier-perf",
				"%s: stored score %v, perf model says %v", p.SKU.Name, p.Obj.PerfPerCore, score)
		}
	}
	for i, p := range pts {
		for j, q := range pts {
			if i != j && f.Beats(p, q) {
				audit.Failf(c, "design", "frontier-domination",
					"frontier point %s beats frontier point %s", p.SKU.Name, q.SKU.Name)
			}
		}
	}
}
