package power

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/greensku/gsf/internal/stats"
)

func TestDefaultCalibration(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table VI: derate factor 0.44 at 40% SPEC rate.
	if got := c.Derate(0.40); math.Abs(got-DerateAt40) > 1e-12 {
		t.Fatalf("Derate(0.4) = %v, want 0.44 exactly", got)
	}
	if got := c.Derate(0); got != 0.2 {
		t.Fatalf("idle derate = %v, want 0.2", got)
	}
	if got := c.Derate(1); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("full-load derate = %v, want 0.75", got)
	}
}

func TestDerateClamping(t *testing.T) {
	c := Default()
	if c.Derate(-1) != c.Derate(0) || c.Derate(2) != c.Derate(1) {
		t.Fatal("loads outside [0,1] should clamp")
	}
}

func TestDerateMonotone(t *testing.T) {
	c := Default()
	f := func(a, b float64) bool {
		a = math.Mod(math.Abs(a), 1)
		b = math.Mod(math.Abs(b), 1)
		if a > b {
			a, b = b, a
		}
		return c.Derate(a) <= c.Derate(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDraw(t *testing.T) {
	c := Default()
	// 400 W TDP at 40% load: 0.44 * 400 = 176 W (the worked example's
	// Bergamo CPU before VR loss).
	if got := c.Draw(400, 0.4); math.Abs(float64(got)-176) > 1e-9 {
		t.Fatalf("Draw = %v, want 176 W", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Curve{
		{Idle: -0.1, Span: 0.5, Shape: 1},
		{Idle: 0.6, Span: 0.6, Shape: 1},
		{Idle: 0.2, Span: 0.5, Shape: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid curve", i)
		}
	}
}

func TestAzureLikeUnderutilization(t *testing.T) {
	// §II: cloud servers are severely underutilized; most samples sit
	// well below 70% load.
	d := AzureLike()
	r := stats.NewRNG(4)
	low := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.Sample(r) < 0.7 {
			low++
		}
	}
	if frac := float64(low) / n; frac < 0.9 {
		t.Fatalf("only %.2f of loads below 70%%; distribution not underutilized", frac)
	}
}

func TestSampleBounds(t *testing.T) {
	d := LoadDist{Mean: 0.5, StdDev: 0.8}
	r := stats.NewRNG(9)
	for i := 0; i < 10000; i++ {
		u := d.Sample(r)
		if u < 0 || u > 1 {
			t.Fatalf("load %v out of [0,1]", u)
		}
	}
}

func TestOversubscription(t *testing.T) {
	// 35 servers of 400 W TDP would nameplate to 14 kW; with the
	// derating curve they draw far less, so a 15 kW rack holds ~35
	// GreenSKU-class servers with negligible breach probability —
	// §V's power-limit arithmetic (floor((15000-500)/403) = 35).
	res, err := Oversubscription(Default(), AzureLike(), 850, 35, 14500, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.BreachProb > 0.02 {
		t.Fatalf("breach probability = %v, want ~0", res.BreachProb)
	}
	if res.MeanPower <= 0 || res.P99Power < res.MeanPower {
		t.Fatalf("implausible power stats: %+v", res)
	}
}

func TestOversubscriptionBreaches(t *testing.T) {
	// Cap below the mean draw must breach almost always.
	res, err := Oversubscription(Default(), AzureLike(), 900, 35, 8000, 1000, 12)
	if err != nil {
		t.Fatal(err)
	}
	if res.BreachProb < 0.99 {
		t.Fatalf("breach probability = %v, want ~1", res.BreachProb)
	}
}

func TestOversubscriptionValidation(t *testing.T) {
	if _, err := Oversubscription(Curve{Idle: -1, Span: 0.2, Shape: 1}, AzureLike(), 400, 16, 15000, 10, 1); err == nil {
		t.Error("accepted invalid curve")
	}
	if _, err := Oversubscription(Default(), AzureLike(), 400, 0, 15000, 10, 1); err == nil {
		t.Error("accepted zero servers")
	}
}
