// Package power models server power draw as a function of load,
// following the SPECpower-style measurement methodology the paper cites
// for its derating factor ("we derive the derating factor as a fraction
// of TDP utilization at a given percentage of max SPEC rate; at 40%
// SPEC rate, the corresponding derating factor is 0.44").
//
// It also provides the rack power-oversubscription check that cloud
// providers run before renting rack power to more servers than the
// nameplate sum allows.
package power

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/stats"
	"github.com/greensku/gsf/internal/units"
)

// Curve maps load (fraction of max SPEC rate, 0..1) to power as a
// fraction of TDP: P(u)/TDP = Idle + Span*u^Shape.
type Curve struct {
	Idle  float64 // fraction of TDP drawn at zero load
	Span  float64 // dynamic range
	Shape float64 // sub-linearity exponent (<1: power rises fast early)
}

// Default returns the curve calibrated to the paper's Table VI: the
// derate factor at 40% SPEC rate is exactly 0.44, with a 20% idle floor
// and 75% of TDP at full load (servers rarely reach nameplate TDP).
func Default() Curve {
	// Solve Idle + Span*0.4^Shape = 0.44 and Idle + Span = 0.75 with
	// Idle = 0.2: Span = 0.55, 0.4^Shape = 0.24/0.55.
	shape := math.Log(0.24/0.55) / math.Log(0.4)
	return Curve{Idle: 0.2, Span: 0.55, Shape: shape}
}

// Derate returns P(u)/TDP for load u, clamped to [0, 1].
func (c Curve) Derate(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 1 {
		u = 1
	}
	return c.Idle + c.Span*math.Pow(u, c.Shape)
}

// Draw returns the absolute power at the given load for a component
// with the given TDP.
func (c Curve) Draw(tdp units.Watts, u float64) units.Watts {
	return units.Watts(float64(tdp) * c.Derate(u))
}

// Validate rejects physically impossible curves.
func (c Curve) Validate() error {
	if c.Idle < 0 || c.Span < 0 || c.Idle+c.Span > 1 {
		return fmt.Errorf("power: curve exceeds TDP or is negative: %+v", c)
	}
	if c.Shape <= 0 {
		return fmt.Errorf("power: non-positive shape")
	}
	return nil
}

// LoadDist describes the fleet's utilization distribution. The paper
// documents severe underutilization: 75% of Azure VMs below 25% CPU
// utilization.
type LoadDist struct {
	// Mean and StdDev of per-server load (normal, clamped to [0,1]).
	Mean, StdDev float64
}

// AzureLike returns a distribution consistent with the documented
// underutilization: mean load 40% of SPEC rate with wide variance.
func AzureLike() LoadDist { return LoadDist{Mean: 0.40, StdDev: 0.18} }

// Sample draws one server load.
func (d LoadDist) Sample(r *stats.RNG) float64 {
	u := r.Normal(d.Mean, d.StdDev)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// OversubscriptionResult reports the rack power check.
type OversubscriptionResult struct {
	// MeanPower is the expected simultaneous rack draw.
	MeanPower units.Watts
	// P99Power is the 99th-percentile simultaneous draw.
	P99Power units.Watts
	// BreachProb is the fraction of sampled intervals whose total
	// draw exceeds the cap.
	BreachProb float64
}

// Oversubscription Monte-Carlo-samples simultaneous per-server loads
// and reports how often a rack of n servers with the given per-server
// TDP exceeds the rack power cap. Used to justify packing more servers
// than nameplate TDP would allow.
func Oversubscription(curve Curve, dist LoadDist, tdp units.Watts, n int, cap units.Watts, trials int, seed uint64) (OversubscriptionResult, error) {
	if err := curve.Validate(); err != nil {
		return OversubscriptionResult{}, err
	}
	if n <= 0 || trials <= 0 {
		return OversubscriptionResult{}, fmt.Errorf("power: servers and trials must be positive")
	}
	r := stats.NewRNG(seed)
	totals := make([]float64, trials)
	breaches := 0
	for t := 0; t < trials; t++ {
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(curve.Draw(tdp, dist.Sample(r)))
		}
		totals[t] = sum
		if sum > float64(cap) {
			breaches++
		}
	}
	return OversubscriptionResult{
		MeanPower:  units.Watts(stats.Mean(totals)),
		P99Power:   units.Watts(stats.Percentile(totals, 99)),
		BreachProb: float64(breaches) / float64(trials),
	}, nil
}

// DerateAt40 is the paper's published operating point.
const DerateAt40 = 0.44
