package queueing

// Property tests for the fluid fast path. The acceptance contract has
// three legs: the fluid path is opt-in (default-off configs never see
// it), fluid answers never substitute for discrete evaluations inside
// the knee bracket (the fluid-in-bracket audit canary, exercised here
// under the package recorder), and the fluid-guided knee estimate stays
// within a bounded distance of the purely discrete knee across 35
// seeds.

import (
	"context"
	"math"
	"testing"

	"github.com/greensku/gsf/internal/stats"
)

// fluidKneeConfigs are fluid-eligible shapes (moments and quantiles
// exposed) spanning both server-index structures and service CVs.
func fluidKneeConfigs() []Config {
	return []Config{
		{Servers: 8, Service: LogNormal{0.004, 1}, Requests: 20000},
		{Servers: 8, Service: LogNormal{0.005, 1.5}, Requests: 20000},
		{Servers: 64, Service: Exponential{0.004}, Requests: 20000},
	}
}

// TestFluidKneeBoundedError35Seeds is the acceptance property: across
// 35 seeds, the fluid-guided knee differs from the purely discrete knee
// by at most the bisection resolution on each side, uses at least one
// fluid answer, and never needs more simulations than the discrete
// search.
func TestFluidKneeBoundedError35Seeds(t *testing.T) {
	const (
		loFrac, hiFrac, tolFrac = 0.5, 1.3, 0.02
		// Both searches bisect the same deterministic saturation
		// boundary (common random numbers) to brackets of width
		// <= tolFrac, so their knees can disagree by at most one
		// bracket width on each side.
		maxErr = 2 * tolFrac
	)
	for ci, base := range fluidKneeConfigs() {
		for seed := uint64(1); seed <= 35; seed++ {
			dcfg := base
			dcfg.Seed = seed
			kd, err := KneeSearch(context.Background(), dcfg, loFrac, hiFrac, tolFrac)
			if err != nil {
				t.Fatal(err)
			}
			fcfg := dcfg
			fcfg.FluidApprox = true
			kf, err := KneeSearch(context.Background(), fcfg, loFrac, hiFrac, tolFrac)
			if err != nil {
				t.Fatal(err)
			}
			if kd.FluidEvals != 0 {
				t.Fatalf("config %d seed %d: discrete search reported %d fluid evals", ci, seed, kd.FluidEvals)
			}
			if kf.FluidEvals < 1 {
				t.Fatalf("config %d seed %d: fluid-guided search never used the fluid model", ci, seed)
			}
			if kf.Found != kd.Found {
				t.Fatalf("config %d seed %d: fluid-guided Found=%v, discrete Found=%v", ci, seed, kf.Found, kd.Found)
			}
			if !kd.Found {
				continue
			}
			if diff := math.Abs(kf.KneeFrac - kd.KneeFrac); diff > maxErr {
				t.Errorf("config %d seed %d: fluid-guided knee %.4f vs discrete %.4f (|diff| %.4f > %.4f)",
					ci, seed, kf.KneeFrac, kd.KneeFrac, diff, maxErr)
			}
			if kf.Evals > kd.Evals {
				t.Errorf("config %d seed %d: fluid-guided search used %d discrete evals, discrete search %d",
					ci, seed, kf.Evals, kd.Evals)
			}
			if kf.StableFrac >= kf.KneeFrac {
				t.Errorf("config %d seed %d: stable frac %.4f not below knee frac %.4f",
					ci, seed, kf.StableFrac, kf.KneeFrac)
			}
		}
	}
}

// TestFluidPathIsOptIn pins the default: without Config.FluidApprox no
// Result ever carries Fluid=true and no knee search counts fluid evals,
// even for fluid-eligible distributions at fluid-eligible loads.
func TestFluidPathIsOptIn(t *testing.T) {
	cfg := Config{
		Servers:     8,
		Service:     LogNormal{0.004, 1},
		ArrivalRate: 0.5 * Capacity(8, LogNormal{0.004, 1}),
		Requests:    5000,
		Seed:        3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fluid {
		t.Fatal("Run returned a fluid result without FluidApprox set")
	}
	k, err := KneeSearch(context.Background(), cfg, 0.5, 1.3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if k.FluidEvals != 0 {
		t.Fatalf("default knee search counted %d fluid evals", k.FluidEvals)
	}
}

// TestFluidRespectsReferenceModes pins that the reference modes always
// win: a config asking for the reference event loop or reference
// sampling gets a discrete answer even with FluidApprox set, so the
// differential wall's baseline can never silently become an
// approximation.
func TestFluidRespectsReferenceModes(t *testing.T) {
	base := Config{
		Servers:     8,
		Service:     LogNormal{0.004, 1},
		ArrivalRate: 0.4 * Capacity(8, LogNormal{0.004, 1}),
		Requests:    5000,
		Seed:        3,
		FluidApprox: true,
	}
	for _, mode := range []struct {
		name string
		mut  func(*Config)
	}{
		{"reference-event-loop", func(c *Config) { c.ReferenceEventLoop = true }},
		{"reference-sampling", func(c *Config) { c.ReferenceSampling = true }},
	} {
		cfg := base
		mode.mut(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Fluid {
			t.Fatalf("%s: fluid model answered despite reference mode", mode.name)
		}
	}
}

// TestFluidResultProperties checks the closed-form answers directly:
// eligibility honors the utilization threshold and the optional
// interfaces, results are ordered, never saturated, and track the
// simulated mean within the Allen–Cunneen approximation's error at
// moderate load.
func TestFluidResultProperties(t *testing.T) {
	ln := LogNormal{0.004, 1}
	mkCfg := func(frac float64) Config {
		return Config{
			Servers:     16,
			Service:     ln,
			ArrivalRate: frac * Capacity(16, ln),
			Requests:    30000,
			Seed:        7,
			FluidApprox: true,
		}
	}

	// Above the threshold the fluid model must decline.
	if res, err := Run(mkCfg(0.9)); err != nil {
		t.Fatal(err)
	} else if res.Fluid {
		t.Fatal("fluid model answered above the utilization threshold")
	}
	// A distribution without moment accessors must decline too.
	odd := Config{
		Servers:     8,
		Service:     constDist{0.004},
		ArrivalRate: 0.4 * Capacity(8, constDist{0.004}),
		Requests:    5000,
		Seed:        7,
		FluidApprox: true,
	}
	if res, err := Run(odd); err != nil {
		t.Fatal(err)
	} else if res.Fluid {
		t.Fatal("fluid model answered for a distribution without SCV/Quantile")
	}

	for _, frac := range []float64{0.3, 0.5, 0.65} {
		cfg := mkCfg(frac)
		fl, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !fl.Fluid {
			t.Fatalf("frac %.2f: expected a fluid answer", frac)
		}
		if fl.Saturated {
			t.Fatalf("frac %.2f: fluid result claims saturation", frac)
		}
		if !(fl.P50 <= fl.P95 && fl.P95 <= fl.P99) {
			t.Fatalf("frac %.2f: fluid percentiles unordered: %+v", frac, fl)
		}
		if !(fl.Mean >= ln.Mean()) {
			t.Fatalf("frac %.2f: fluid mean %.6f below mean service time", frac, fl.Mean)
		}
		dcfg := cfg
		dcfg.FluidApprox = false
		sim, err := Run(dcfg)
		if err != nil {
			t.Fatal(err)
		}
		if relErr := math.Abs(fl.Mean-sim.Mean) / sim.Mean; relErr > 0.25 {
			t.Errorf("frac %.2f: fluid mean %.6f vs simulated %.6f (rel err %.3f)",
				frac, fl.Mean, sim.Mean, relErr)
		}
	}
}

// constDist is a minimal ServiceDist that deliberately implements
// neither varianceDist nor quantileDist.
type constDist struct{ v float64 }

func (c constDist) Mean() float64 { return c.v }

func (c constDist) Sample(*stats.RNG) float64 { return c.v }

func (c constDist) Prepare(bool) Sampler { return constSampler(c.v) }

// TestNormQuantile pins the inverse-normal approximation against known
// values and its symmetry.
func TestNormQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.841344746068543, 1},
		{0.975, 1.959963984540054},
		{0.99, 2.3263478740408408},
		{0.001, -3.090232306167813},
	}
	for _, c := range cases {
		if got := normQuantile(c.p); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("normQuantile(%g) = %.9f, want %.9f", c.p, got, c.want)
		}
	}
	for _, p := range []float64{0.01, 0.2, 0.45} {
		if got, mir := normQuantile(p), -normQuantile(1-p); math.Abs(got-mir) > 1e-9 {
			t.Errorf("normQuantile asymmetric at p=%g: %g vs %g", p, got, mir)
		}
	}
	if !math.IsNaN(normQuantile(0)) || !math.IsNaN(normQuantile(1)) {
		t.Error("normQuantile must be NaN outside (0, 1)")
	}
}

// TestFluidKneeFracMonotoneInCV pins the analytic estimate's physics:
// higher service variability moves the knee earlier, and the estimate
// always lands strictly inside (0, 1).
func TestFluidKneeFracMonotoneInCV(t *testing.T) {
	prev := 1.0
	for _, cv := range []float64{0.5, 1, 1.5, 2} {
		cfg := Config{Servers: 16, Service: LogNormal{0.004, cv}}
		est, ok := fluidKneeFrac(cfg)
		if !ok {
			t.Fatalf("cv %.1f: estimate unavailable", cv)
		}
		if !(est > 0 && est < 1) {
			t.Fatalf("cv %.1f: estimate %.4f outside (0, 1)", cv, est)
		}
		if est >= prev {
			t.Errorf("cv %.1f: estimate %.4f did not decrease from %.4f", cv, est, prev)
		}
		prev = est
	}
}
