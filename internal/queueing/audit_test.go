package queueing

import (
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

func TestAuditCleanRun(t *testing.T) {
	rec := audit.NewRecorder()
	res, err := Run(Config{
		Servers:     8,
		ArrivalRate: 100,
		Service:     LogNormal{MeanSeconds: 0.05, CV: 1.2},
		Requests:    20000,
		Seed:        7,
		Audit:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.P95 <= 0 {
		t.Fatalf("P95 = %g, want > 0", res.P95)
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("clean queueing run recorded violations: %v\n%v", err, rec.Violations())
	}
}

func TestAuditCleanSaturatedRun(t *testing.T) {
	// Overload the queue: saturation is a legal regime, not a violation.
	rec := audit.NewRecorder()
	res, err := Run(Config{
		Servers:     2,
		ArrivalRate: 2 * Capacity(2, Exponential{MeanSeconds: 0.1}),
		Service:     Exponential{MeanSeconds: 0.1},
		Requests:    5000,
		Seed:        11,
		Audit:       rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("2x-capacity run not flagged saturated")
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("saturated run recorded violations: %v\n%v", err, rec.Violations())
	}
}

func TestAuditHeapDetectsDisorder(t *testing.T) {
	rec := audit.NewRecorder()
	auditHeap(rec, serverHeap{5, 1, 9}) // parent 5 > child 1
	if rec.Counts()["queueing/heap-order"] == 0 {
		t.Fatalf("broken heap not detected; counts = %v", rec.Counts())
	}
	rec.Reset()
	auditHeap(rec, serverHeap{1, 5, 9, 6, 7})
	if rec.Count() != 0 {
		t.Fatalf("valid heap flagged: %v", rec.Violations())
	}
}
