package queueing

// The event loop's only per-request data-structure work is rewriting
// the free-server heap's root and sifting it down. That operation used
// container/heap.Fix, whose interface indirection allocates; the typed
// siftDown must not. AllocsPerRun pins it, and an ordering test keeps
// the sift honest against the heap invariant auditHeap checks.

import "testing"

func TestServerHeapZeroAllocs(t *testing.T) {
	h := make(serverHeap, 64)
	step := 0.0
	avg := testing.AllocsPerRun(200, func() {
		for i := 0; i < 256; i++ {
			step += 0.75
			h[0] += step
			h.siftDown(0)
		}
	})
	if avg != 0 {
		t.Errorf("server-heap root rewrite allocates %.1f times per cycle, want 0", avg)
	}
}

func TestServerHeapSiftDownKeepsMinHeap(t *testing.T) {
	h := serverHeap{0, 0, 0, 0, 0, 0, 0}
	adds := []float64{5, 3, 9, 1, 7, 2, 8, 6, 4, 2.5, 0.5}
	prevRoot := 0.0
	for _, s := range adds {
		if h[0] < prevRoot {
			t.Fatalf("root went backwards: %g after %g", h[0], prevRoot)
		}
		prevRoot = h[0]
		h[0] += s
		h.siftDown(0)
		for i := 1; i < len(h); i++ {
			if parent := (i - 1) / 2; h[parent] > h[i] {
				t.Fatalf("min-heap violated after adding %g: parent %g > child %g", s, h[parent], h[i])
			}
		}
	}
}
