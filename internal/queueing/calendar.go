package queueing

// calendarQueue is a calendar-queue priority structure over server
// next-free times, replacing the binary heap for large server counts.
// A binary heap pays O(log S) comparisons per dispatch; the calendar
// hashes each time into a ring of buckets ~one event-spacing wide and
// pays O(1) amortized, because the event loop's extract-min sequence is
// monotone non-decreasing (a server is always rebooked at a later
// time), so the scan cursor only ever moves forward through the ring.
//
// The structure stores bare float64 times — exactly what serverHeap
// stores — so it is a multiset with no server identities. Any structure
// that extracts the exact minimum of the same multiset yields the same
// dispatch decisions, which is why swapping it in preserves bit-exact
// Results (the differential wall in batch_test.go proves it).
//
// An entry's home bucket is floor(t * invWidth); the scan uses the same
// expression, so bucket membership is decided by one consistent
// function and the monotone-floor argument applies: if
// floor(a·inv) < floor(b·inv) then a < b, hence the first non-empty
// bucket (in absolute index order) holds the global minimum.
//
// All servers start free at t = 0. A virgin counter stands in for those
// S identical zero entries (the same trick as the allocator's virgin
// frontier) so startup costs O(1) instead of filling one bucket with S
// zeros and scanning it down.

import (
	"math"

	"github.com/greensku/gsf/internal/audit"
)

type calendarQueue struct {
	buckets  [][]float64
	mask     uint64
	width    float64
	invWidth float64
	// cur is the absolute bucket index (floor(t/width), not masked) of
	// the last extracted minimum; the next scan starts there.
	cur uint64
	// virgin counts servers still at their initial zero next-free time.
	virgin int
	// Peek state from the last next() call, consumed by replace().
	lastVirgin bool
	foundSlot  int
	foundIdx   int
}

// calendarSpan estimates the spread of in-flight next-free times: the
// time to cycle through all servers at the offered rate plus the
// service distribution's far tail (so heavy-tailed entries rarely wrap
// past the ring and pollute rescans). Only performance depends on it;
// correctness holds for any positive width.
func calendarSpan(cfg Config) float64 {
	tail := 8 * cfg.Service.Mean()
	if qd, ok := cfg.Service.(quantileDist); ok {
		if q := qd.Quantile(0.9999); q > tail {
			tail = q
		}
	}
	return float64(cfg.Servers)/cfg.ArrivalRate + tail
}

// newCalendarQueue builds the ring. Bucket width targets roughly half
// an event spacing (2·rate·span buckets across the span), so the
// occupancy near the scan cursor — where departures are spaced 1/rate
// apart — stays around one entry per bucket. Buckets are carved from
// one slab with a few slots of headroom each, so steady-state replaces
// allocate nothing; a bucket overflowing its slab segment falls back
// to an ordinary append-grow.
func newCalendarQueue(servers int, span, rate float64, live int) *calendarQueue {
	if live > servers {
		live = servers
	}
	if live < 1 {
		live = 1
	}
	target := 2 * rate * span
	if t2 := float64(2 * live); target < t2 {
		target = t2
	}
	nb := 64
	for float64(nb) < target && nb < 1<<17 {
		nb <<= 1
	}
	w := span / float64(nb)
	if !(w > 0) || math.IsInf(w, 0) {
		w = 1
	}
	const headroom = 4
	slab := make([]float64, nb*headroom)
	buckets := make([][]float64, nb)
	for i := range buckets {
		buckets[i] = slab[i*headroom : i*headroom : (i+1)*headroom]
	}
	return &calendarQueue{
		buckets:  buckets,
		mask:     uint64(nb - 1),
		width:    w,
		invWidth: 1 / w,
		virgin:   servers,
	}
}

// next returns the minimum next-free time without removing it, and
// remembers where it was found for the following replace call. Calling
// next repeatedly without replace is safe and returns the same value.
func (q *calendarQueue) next() float64 {
	if q.virgin > 0 {
		q.lastVirgin = true
		return 0
	}
	q.lastVirgin = false
	abs := q.cur
	for scanned := 0; ; abs++ {
		slot := int(abs & q.mask)
		best, bv := -1, 0.0
		for idx, v := range q.buckets[slot] {
			if uint64(v*q.invWidth) == abs && (best < 0 || v < bv) {
				best, bv = idx, v
			}
		}
		if best >= 0 {
			q.cur = abs
			q.foundSlot, q.foundIdx = slot, best
			return bv
		}
		scanned++
		if scanned > len(q.buckets) {
			// Every remaining entry is more than a full ring ahead of
			// the cursor (a degenerate width for this workload): jump
			// straight to the global minimum instead of walking epochs.
			return q.jumpToMin()
		}
	}
}

// jumpToMin scans every bucket for the global minimum — the fallback
// when the ring scan traverses a full epoch without a hit.
func (q *calendarQueue) jumpToMin() float64 {
	best := math.Inf(1)
	bslot, bidx := -1, -1
	for slot, b := range q.buckets {
		for idx, v := range b {
			if v < best {
				best, bslot, bidx = v, slot, idx
			}
		}
	}
	q.cur = uint64(best * q.invWidth)
	q.foundSlot, q.foundIdx = bslot, bidx
	return best
}

// replace removes the entry the last next() returned and inserts the
// server's new next-free time — the calendar form of the heap's
// "rewrite the root and sift" dispatch step.
func (q *calendarQueue) replace(done float64) {
	if q.lastVirgin {
		q.virgin--
		q.lastVirgin = false
	} else {
		b := q.buckets[q.foundSlot]
		last := len(b) - 1
		b[q.foundIdx] = b[last]
		q.buckets[q.foundSlot] = b[:last]
	}
	slot := int(uint64(done*q.invWidth) & q.mask)
	q.buckets[slot] = append(q.buckets[slot], done)
}

// size returns the number of tracked servers (virgin plus stored).
func (q *calendarQueue) size() int {
	n := q.virgin
	for _, b := range q.buckets {
		n += len(b)
	}
	return n
}

// auditCalendar verifies the calendar still tracks exactly one
// next-free time per server and that its incremental scan agrees with
// a direct full scan for the minimum; called at batch boundaries when
// auditing is on (the calendar's analogue of auditHeap).
func auditCalendar(chk audit.Checker, q *calendarQueue, servers int) {
	if n := q.size(); n != servers {
		audit.Failf(chk, "queueing", "calendar-integrity",
			"calendar holds %d next-free entries for %d servers", n, servers)
		return
	}
	direct := math.Inf(1)
	if q.virgin > 0 {
		direct = 0
	}
	for _, b := range q.buckets {
		for _, v := range b {
			if v < direct {
				direct = v
			}
		}
	}
	if peek := q.next(); peek != direct {
		audit.Failf(chk, "queueing", "calendar-min",
			"calendar scan found minimum %g but direct scan found %g", peek, direct)
	}
}
