package queueing

// Kernel-level equivalence and regression tests for the fast sampling
// path, the pooled latency buffer, and the sweep APIs. Every run here
// executes under the package TestMain's audit.Recorder, so the 35-seed
// sweep below doubles as the audit cross-check the fast samplers must
// stay clean against (sample-domain, clock-monotonicity, heap-order,
// percentile-order).

import (
	"context"
	"math"
	"testing"
)

// TestFastMatchesReferenceAcrossSeeds runs the same stable queue in
// fast and reference sampling mode across 35 seeds. The two modes draw
// different sequences, so per-seed results differ by simulation noise;
// the test pins (a) per-seed agreement within a loose band, (b) the
// across-seed mean P95s within a tight band, and (c) identical
// saturation verdicts at a comfortably stable operating point.
func TestFastMatchesReferenceAcrossSeeds(t *testing.T) {
	base := Config{
		Servers:     8,
		ArrivalRate: 0.7 * Capacity(8, LogNormal{0.004, 1}),
		Service:     LogNormal{MeanSeconds: 0.004, CV: 1},
		Requests:    40000,
	}
	var fastSum, refSum float64
	for seed := uint64(1); seed <= 35; seed++ {
		fcfg, rcfg := base, base
		fcfg.Seed, rcfg.Seed = seed, seed
		rcfg.ReferenceSampling = true
		fast := run(t, fcfg)
		ref := run(t, rcfg)
		if fast.Saturated != ref.Saturated {
			t.Errorf("seed %d: saturation verdicts differ (fast=%v ref=%v)", seed, fast.Saturated, ref.Saturated)
		}
		if rel := math.Abs(fast.P95-ref.P95) / ref.P95; rel > 0.10 {
			t.Errorf("seed %d: fast P95 %.6f vs reference %.6f (%.1f%% apart)", seed, fast.P95, ref.P95, rel*100)
		}
		fastSum += fast.P95
		refSum += ref.P95
	}
	if rel := math.Abs(fastSum-refSum) / refSum; rel > 0.01 {
		t.Errorf("35-seed mean P95: fast %.6f vs reference %.6f (%.2f%% apart, want <1%%)", fastSum/35, refSum/35, rel*100)
	}
}

// TestReferenceSamplingDeterministic pins that the reference path is a
// pure function of the config — the property the differential test
// against the pre-fast-path kernel relies on.
func TestReferenceSamplingDeterministic(t *testing.T) {
	cfg := Config{Servers: 4, ArrivalRate: 800, Service: Exponential{0.004}, Requests: 20000, Seed: 17, ReferenceSampling: true}
	a, b := run(t, cfg), run(t, cfg)
	if a != b {
		t.Fatalf("reference runs diverged: %+v vs %+v", a, b)
	}
}

// TestRunSteadyStateAllocs pins the per-run allocation count once the
// latency pool is warm. The residual allocations are the RNG, the
// free-server heap, and the boxed sampler — not the Requests-sized
// latency buffer or a percentile copy, which the pool and single-sort
// Summarize eliminated.
func TestRunSteadyStateAllocs(t *testing.T) {
	cfg := Config{Servers: 8, ArrivalRate: 1500, Service: LogNormal{0.004, 1}, Requests: 8000, Seed: 21}
	if _, err := Run(cfg); err != nil { // warm the pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// RNG + heap + sampler box + Result plumbing: single digits. The
	// pre-pool kernel allocated the 8000-element latency buffer plus a
	// same-sized percentile copy per percentile call.
	if avg > 8 {
		t.Errorf("steady-state Run allocates %.1f times, want <= 8", avg)
	}
}

func TestTrialsSeedDerivation(t *testing.T) {
	cfg := Config{Servers: 8, ArrivalRate: 1000, Service: LogNormal{0.004, 1}, Requests: 20000, Seed: 100}
	vals, err := Trials(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range vals {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		want := run(t, c)
		if got != want.P95 {
			t.Errorf("trial %d P95 = %v, standalone run with seed %d = %v", i, got, c.Seed, want.P95)
		}
	}
}

func TestCurveContextMatchesCurve(t *testing.T) {
	pts1, err := Curve(8, LogNormal{0.004, 1}, 0.1, 1.0, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	pts2, err := CurveContext(context.Background(), Config{Servers: 8, Service: LogNormal{0.004, 1}, Seed: 7}, 0.1, 1.0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts1) != len(pts2) {
		t.Fatalf("length mismatch: %d vs %d", len(pts1), len(pts2))
	}
	for i := range pts1 {
		if pts1[i] != pts2[i] {
			t.Errorf("point %d: Curve %+v vs CurveContext %+v", i, pts1[i], pts2[i])
		}
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Servers: 8, ArrivalRate: 1000, Service: LogNormal{0.004, 1}, Requests: 20000, Seed: 1}
	if _, err := TrialsContext(ctx, cfg, 3); err == nil {
		t.Error("TrialsContext ignored a cancelled context")
	}
	if _, err := CurveContext(ctx, cfg, 0.1, 1.0, 4); err == nil {
		t.Error("CurveContext ignored a cancelled context")
	}
	if _, err := KneeSearch(ctx, cfg, 0.5, 1.2, 0.05); err == nil {
		t.Error("KneeSearch ignored a cancelled context")
	}
}

func TestKneeSearchFindsKnee(t *testing.T) {
	cfg := Config{Servers: 8, Service: LogNormal{0.004, 1}, Requests: 30000, Seed: 5}
	k, err := KneeSearch(context.Background(), cfg, 0.5, 1.3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Found {
		t.Fatal("knee not found in [0.5, 1.3] although the bracket spans capacity")
	}
	if k.KneeFrac <= k.StableFrac {
		t.Fatalf("knee %.3f not above last stable point %.3f", k.KneeFrac, k.StableFrac)
	}
	if k.KneeFrac-k.StableFrac > 0.02+1e-9 {
		t.Fatalf("bracket width %.4f above tolerance 0.02", k.KneeFrac-k.StableFrac)
	}
	if k.KneeFrac < 0.8 || k.KneeFrac > 1.3 {
		t.Fatalf("knee at %.3f of capacity, expected near 1.0", k.KneeFrac)
	}
	// The adaptive search's point: a fixed-step sweep at the same
	// resolution needs (1.3-0.5)/0.02 = 40 evaluations.
	if fixed := int((1.3 - 0.5) / 0.02); k.Evals >= fixed {
		t.Errorf("knee search used %d evals, fixed-step needs %d", k.Evals, fixed)
	}
	if k.StableP95 <= 0 {
		t.Errorf("stable P95 = %v, want positive", k.StableP95)
	}
}

func TestKneeSearchStableBracket(t *testing.T) {
	cfg := Config{Servers: 8, Service: LogNormal{0.004, 1}, Requests: 30000, Seed: 5}
	k, err := KneeSearch(context.Background(), cfg, 0.2, 0.6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if k.Found {
		t.Fatalf("knee reported at %.3f inside an all-stable bracket", k.KneeFrac)
	}
	if k.StableFrac != 0.6 {
		t.Fatalf("stable frac = %v, want the bracket top 0.6", k.StableFrac)
	}
	if k.Evals != 2 {
		t.Errorf("all-stable bracket took %d evals, want exactly 2 (endpoints)", k.Evals)
	}
}

func TestKneeSearchValidation(t *testing.T) {
	cfg := Config{Servers: 8, Service: LogNormal{0.004, 1}, Seed: 1}
	ctx := context.Background()
	if _, err := KneeSearch(ctx, cfg, 0, 1, 0.05); err == nil {
		t.Error("accepted loFrac = 0")
	}
	if _, err := KneeSearch(ctx, cfg, 0.9, 0.5, 0.05); err == nil {
		t.Error("accepted hiFrac < loFrac")
	}
	if _, err := KneeSearch(ctx, cfg, 0.5, 1.2, 0); err == nil {
		t.Error("accepted zero tolerance")
	}
	if _, err := KneeSearch(ctx, Config{Service: LogNormal{0.004, 1}}, 0.5, 1.2, 0.05); err == nil {
		t.Error("accepted zero servers")
	}
}

func BenchmarkKneeSearch(b *testing.B) {
	cfg := Config{Servers: 8, Service: LogNormal{0.004, 1}, Requests: 20000, Seed: 5}
	for i := 0; i < b.N; i++ {
		if _, err := KneeSearch(context.Background(), cfg, 0.5, 1.3, 0.02); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunReferenceSampling(b *testing.B) {
	cfg := Config{
		Servers:           12,
		ArrivalRate:       2500,
		Service:           LogNormal{MeanSeconds: 0.004, CV: 1},
		Requests:          20000,
		Seed:              2,
		ReferenceSampling: true,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
