// Package queueing implements the discrete-event simulation substrate
// behind GSF's performance component: an open-loop, FCFS, k-server queue
// with Poisson arrivals and a pluggable service-time distribution.
//
// The paper measures 95th-percentile tail latency versus offered load
// (QPS) on physical servers (Figs. 7–8); this simulator reproduces the
// same measurement protocol — sweep offered load, record latency
// percentiles, find the saturation knee — against modelled service
// times. A VM with k cores serving a request-parallel application maps
// onto a k-server queue.
//
// The kernel is built for sweep throughput: service distributions fold
// their constants once per run (Prepare), samples come from ziggurat
// fast paths unless Config.ReferenceSampling asks for the bit-exact
// reference samplers, latency statistics come from a single sort of a
// pooled buffer, and the sweep APIs (CurveContext, TrialsContext,
// KneeSearch) fan out through the shared evaluation engine with
// deterministic, index-slotted results.
package queueing

import (
	"context"
	"fmt"
	"math"
	"sync"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/engine"
	"github.com/greensku/gsf/internal/stats"
)

// Sampler draws service times with all distribution constants already
// folded; the event loop calls nothing else per request.
type Sampler interface {
	Sample(r *stats.RNG) float64
}

// ServiceDist describes a request service-time distribution in seconds.
// Prepare is the once-per-run step that precomputes derived parameters
// (a log-normal's mu/sigma) and selects the sampling implementation:
// reference=true returns a sampler bit-compatible with the original
// per-sample Sample path, reference=false the ziggurat fast path.
type ServiceDist interface {
	Sample(r *stats.RNG) float64
	Mean() float64
	Prepare(reference bool) Sampler
}

// LogNormal is a log-normal service-time distribution specified by its
// mean and coefficient of variation, the common model for request
// service times in interactive cloud services.
type LogNormal struct {
	MeanSeconds float64
	CV          float64 // stddev / mean of the service time
}

// Mean returns the distribution mean in seconds.
func (l LogNormal) Mean() float64 { return l.MeanSeconds }

// params returns the underlying normal's mu and sigma.
func (l LogNormal) params() (mu, sigma float64) {
	sigma2 := math.Log(1 + l.CV*l.CV)
	return math.Log(l.MeanSeconds) - sigma2/2, math.Sqrt(sigma2)
}

// Sample draws one service time.
func (l LogNormal) Sample(r *stats.RNG) float64 {
	if l.CV <= 0 {
		return l.MeanSeconds
	}
	mu, sigma := l.params()
	return r.LogNormal(mu, sigma)
}

// Prepare implements ServiceDist: mu and sigma are computed once here
// instead of once per sample (two logs and a square root per request on
// the old path).
func (l LogNormal) Prepare(reference bool) Sampler {
	if l.CV <= 0 {
		return constSampler(l.MeanSeconds)
	}
	mu, sigma := l.params()
	if reference {
		return refLogNormal{mu: mu, sigma: sigma}
	}
	return fastLogNormal{mu: mu, sigma: sigma}
}

// Exponential is an exponential (M/M/k) service-time distribution.
type Exponential struct{ MeanSeconds float64 }

// Mean returns the distribution mean in seconds.
func (e Exponential) Mean() float64 { return e.MeanSeconds }

// Sample draws one service time.
func (e Exponential) Sample(r *stats.RNG) float64 { return r.Exp(e.MeanSeconds) }

// Prepare implements ServiceDist.
func (e Exponential) Prepare(reference bool) Sampler {
	if reference {
		return refExp(e.MeanSeconds)
	}
	return fastExp(e.MeanSeconds)
}

type constSampler float64

func (c constSampler) Sample(*stats.RNG) float64 { return float64(c) }

type refLogNormal struct{ mu, sigma float64 }

func (s refLogNormal) Sample(r *stats.RNG) float64 { return r.LogNormal(s.mu, s.sigma) }

type fastLogNormal struct{ mu, sigma float64 }

func (s fastLogNormal) Sample(r *stats.RNG) float64 { return r.FastLogNormal(s.mu, s.sigma) }

type refExp float64

func (m refExp) Sample(r *stats.RNG) float64 { return r.Exp(float64(m)) }

type fastExp float64

func (m fastExp) Sample(r *stats.RNG) float64 { return r.FastExp(float64(m)) }

// Config describes one simulation run.
type Config struct {
	Servers     int     // parallel servers (VM cores)
	ArrivalRate float64 // offered load in requests/second
	Service     ServiceDist
	Warmup      int // requests discarded before measurement
	Requests    int // measured requests
	Seed        uint64
	// ReferenceSampling selects the pre-optimization reference kernel:
	// the original per-draw samplers (logarithm per exponential,
	// Box–Muller per normal, distribution parameters recomputed every
	// sample), per-call percentile statistics, and an unpooled latency
	// buffer. Results are bit-identical to the kernel before the fast
	// paths landed — the mode differential tests and the gsfbench gate
	// compare against. The fast path draws a different sequence that is
	// statistically equivalent (KS-tested) but not bit-compatible.
	ReferenceSampling bool
	// ReferenceEventLoop selects the scalar per-request event loop (the
	// PR 5 kernel, retained verbatim) instead of the batched
	// structure-of-arrays loop. It composes with ReferenceSampling: the
	// batched loop interleaves its bulk draws per request in the exact
	// scalar order, so for every (ReferenceSampling, seed) pair the two
	// loops produce bit-identical Results — the differential wall in
	// batch_test.go proves it across 35 seeds.
	ReferenceEventLoop bool
	// FluidApprox opts into the analytic fluid approximation: when the
	// configured load sits at or below FluidThreshold of capacity (and
	// the service distribution exposes its moments), Run answers from a
	// closed-form M/G/k model instead of simulating, and KneeSearch uses
	// the analytic knee estimate to pre-shrink its bracket. Results from
	// the fluid path carry Result.Fluid = true and are approximations,
	// never bit-comparable to discrete-event output; the property tests
	// in fluid_test.go bound the error. Off by default, and ignored when
	// either reference mode is set.
	FluidApprox bool
	// FluidThreshold is the utilization (offered / capacity) at or below
	// which FluidApprox may answer. Zero means the default of 0.7.
	FluidThreshold float64
	// Audit receives invariant violations (event-clock monotonicity,
	// service ordering, heap integrity, percentile ordering, sample
	// domain). Nil falls back to the process default (audit.SetDefault);
	// if that is also nil, checking is disabled and costs nothing.
	Audit audit.Checker
}

// Result summarises one simulation run.
type Result struct {
	Offered     float64 // configured arrival rate
	P50         float64 // seconds
	P95         float64
	P99         float64
	Mean        float64
	Utilization float64 // offered * E[S] / k
	// Saturated reports that the queue was unstable: offered load at
	// or above capacity, detected by latency growth across the run.
	Saturated bool
	// Fluid reports that this result came from the closed-form fluid
	// approximation (Config.FluidApprox) rather than a discrete-event
	// simulation. Always false on the discrete paths.
	Fluid bool
}

// serverHeap is a min-heap over each server's next-free time. The heap
// is fixed-size (one slot per server), so the only operation the event
// loop needs is rewriting the root and sifting it down — done with a
// typed loop rather than container/heap, whose interface-based Fix
// boxes its arguments and allocates on the hot path. The sift mirrors
// container/heap's down exactly, so equal free-times order as before.
type serverHeap []float64

func (h serverHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// latencyPool recycles measurement buffers across runs: a sweep that
// performs thousands of simulations would otherwise allocate (and
// garbage-collect) a Requests-sized float64 slice per run. Buffers are
// stored by pointer so Put itself does not allocate a slice header.
var latencyPool sync.Pool

// getLatencyBuf returns an empty buffer with capacity at least n.
func getLatencyBuf(n int) *[]float64 {
	if p, _ := latencyPool.Get().(*[]float64); p != nil {
		if cap(*p) >= n {
			*p = (*p)[:0]
			return p
		}
	}
	s := make([]float64, 0, n)
	return &s
}

// Run simulates the configured queue and returns latency statistics.
// FCFS dispatch to the earliest-free server is exact for G/G/k: each
// arrival waits until the server that frees first is idle.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the event loop polls ctx every
// 4096 requests — cheap enough to be invisible in profiles — and
// returns the context error once observed.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Servers <= 0 {
		return Result{}, fmt.Errorf("queueing: servers must be positive, got %d", cfg.Servers)
	}
	if cfg.ArrivalRate <= 0 {
		return Result{}, fmt.Errorf("queueing: arrival rate must be positive, got %v", cfg.ArrivalRate)
	}
	if cfg.Service == nil {
		return Result{}, fmt.Errorf("queueing: no service distribution")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 20000
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Requests / 10
	}
	if cfg.FluidApprox && !cfg.ReferenceEventLoop && !cfg.ReferenceSampling {
		if res, ok := fluidResult(cfg); ok {
			return res, nil
		}
	}
	if !cfg.ReferenceEventLoop {
		return runBatched(ctx, cfg)
	}
	return runReference(ctx, cfg)
}

// runReference is the scalar per-request event loop — the PR 5 kernel,
// retained verbatim behind Config.ReferenceEventLoop as the
// bit-identical baseline the batched loop is proven against.
func runReference(ctx context.Context, cfg Config) (Result, error) {
	r := stats.NewRNG(cfg.Seed)
	chk := audit.Resolve(cfg.Audit)
	reference := cfg.ReferenceSampling
	var sampler Sampler
	if !reference {
		sampler = cfg.Service.Prepare(false)
	}

	// All servers start free at t=0; an all-equal slice is already a
	// valid min-heap.
	free := make(serverHeap, cfg.Servers)

	total := cfg.Warmup + cfg.Requests
	var latencies []float64
	if reference {
		// The reference kernel allocates a fresh buffer per run, as the
		// pre-pool implementation did; the benchmark gate times it.
		latencies = make([]float64, 0, cfg.Requests)
	} else {
		buf := getLatencyBuf(cfg.Requests)
		latencies = *buf
		defer func() {
			*buf = latencies[:0]
			latencyPool.Put(buf)
		}()
	}
	now := 0.0
	meanIA := 1 / cfg.ArrivalRate
	for i := 0; i < total; i++ {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			if chk != nil {
				auditHeap(chk, free)
			}
		}
		prev := now
		var s float64
		if reference {
			// Original per-request path: reference samplers, and the
			// distribution re-derives its parameters every sample.
			now += r.Exp(meanIA)
			s = cfg.Service.Sample(r)
		} else {
			now += r.FastExp(meanIA)
			s = sampler.Sample(r)
		}
		freeAt := free[0]
		start := now
		if freeAt > start {
			start = freeAt
		}
		done := start + s
		if chk != nil {
			// Samples must stay in the distributions' domain (a broken
			// fast sampler would surface here), the event clock may
			// only move forward, a request may not start before it
			// arrives or complete before it starts, and its latency
			// includes at least its own service time.
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				audit.Failf(chk, "queueing", "sample-domain",
					"service sample %g outside [0, inf) at request %d", s, i)
			}
			if now < prev || math.IsNaN(now) {
				audit.Failf(chk, "queueing", "clock-monotonicity",
					"arrival clock moved backwards: %g -> %g at request %d", prev, now, i)
			}
			if start < now {
				audit.Failf(chk, "queueing", "start-before-arrival",
					"request %d started at %g before arrival %g", i, start, now)
			}
			if done < start {
				audit.Failf(chk, "queueing", "completion-before-start",
					"request %d completed at %g before start %g", i, done, start)
			}
			if lat := done - now; lat < s-audit.SimTol {
				audit.Failf(chk, "queueing", "latency-below-service",
					"request %d latency %g below service time %g", i, lat, s)
			}
		}
		free[0] = done
		free.siftDown(0)
		if i >= cfg.Warmup {
			latencies = append(latencies, done-now)
		}
	}

	// Saturation: the measured window's tail grows relative to its
	// head, the signature of an unstable queue in a finite run. Read in
	// arrival order, before Summarize sorts the buffer in place.
	var head, tail float64
	q := len(latencies) / 4
	if q > 0 {
		head = stats.Mean(latencies[:q])
		tail = stats.Mean(latencies[len(latencies)-q:])
	}
	var sum stats.Summary
	if reference {
		// Original statistics path: one copy-and-sort per percentile.
		sum = stats.Summary{
			P50:  stats.Percentile(latencies, 50),
			P95:  stats.Percentile(latencies, 95),
			P99:  stats.Percentile(latencies, 99),
			Mean: stats.Mean(latencies),
		}
	} else {
		sum = stats.Summarize(latencies)
	}
	res := Result{
		Offered:     cfg.ArrivalRate,
		P50:         sum.P50,
		P95:         sum.P95,
		P99:         sum.P99,
		Mean:        sum.Mean,
		Utilization: cfg.ArrivalRate * cfg.Service.Mean() / float64(cfg.Servers),
	}
	if q > 0 && (res.Utilization >= 1 || tail > 3*head) {
		res.Saturated = true
	}
	if chk != nil {
		if !(res.P50 <= res.P95+audit.SimTol) || !(res.P95 <= res.P99+audit.SimTol) {
			audit.Failf(chk, "queueing", "percentile-order",
				"latency percentiles unordered: P50=%g P95=%g P99=%g", res.P50, res.P95, res.P99)
		}
	}
	return res, nil
}

// auditHeap verifies the free-server heap still satisfies the min-heap
// property; called periodically from the event loop when auditing is on.
func auditHeap(chk audit.Checker, h serverHeap) {
	for i := 1; i < len(h); i++ {
		if parent := (i - 1) / 2; h[parent] > h[i] {
			audit.Failf(chk, "queueing", "heap-order",
				"free-server heap violated at index %d: parent %g > child %g", i, h[parent], h[i])
			return
		}
	}
}

// Capacity returns the theoretical peak throughput of k servers with
// the given service distribution: k / E[S].
func Capacity(servers int, s ServiceDist) float64 {
	return float64(servers) / s.Mean()
}

// sweepSeed derives the seed of a sweep's i-th run, the convention
// every sweep API in the repository uses (base seed plus index).
func sweepSeed(base uint64, i int) uint64 { return base + uint64(i) }

// Trials runs n independent simulations differing only in seed and
// returns the per-trial P95 values, mirroring the paper's protocol of
// three trials with 99% confidence intervals.
func Trials(cfg Config, n int) ([]float64, error) {
	return TrialsContext(context.Background(), cfg, n)
}

// TrialsContext is Trials with cancellation: trials fan out across the
// evaluation engine (deterministic, index-slotted results, so parallel
// and serial runs agree), the context cancels in-flight simulations,
// and cfg.Audit is threaded through every trial.
func TrialsContext(ctx context.Context, cfg Config, n int) ([]float64, error) {
	res := engine.Map(ctx, 0, n, func(ctx context.Context, i int) (float64, error) {
		c := cfg
		c.Seed = sweepSeed(cfg.Seed, i)
		r, err := RunContext(ctx, c)
		if err != nil {
			return 0, err
		}
		return r.P95, nil
	})
	return engine.Collect(res)
}

// CurvePoint is one point of a latency-versus-load curve.
type CurvePoint struct {
	QPS       float64
	P95       float64
	Saturated bool
}

// Curve sweeps offered load from loFrac to hiFrac of the queue's
// theoretical capacity in the given number of steps and records P95 at
// each point — the measurement behind Figs. 7 and 8.
func Curve(servers int, s ServiceDist, loFrac, hiFrac float64, steps int, seed uint64) ([]CurvePoint, error) {
	return CurveContext(context.Background(), Config{Servers: servers, Service: s, Seed: seed}, loFrac, hiFrac, steps)
}

// CurveContext is Curve with cancellation and full Config control:
// cfg supplies the queue shape, request counts, sampling mode, and the
// audit checker (which the plain Curve API could not thread through);
// cfg.ArrivalRate is overridden per step with the swept load. Steps fan
// out across the evaluation engine with index-slotted results, so the
// curve is identical however many workers run it.
func CurveContext(ctx context.Context, cfg Config, loFrac, hiFrac float64, steps int) ([]CurvePoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("queueing: curve needs at least 2 steps")
	}
	if cfg.Servers <= 0 || cfg.Service == nil {
		return nil, fmt.Errorf("queueing: curve needs positive servers and a service distribution")
	}
	peak := Capacity(cfg.Servers, cfg.Service)
	res := engine.Map(ctx, 0, steps, func(ctx context.Context, i int) (CurvePoint, error) {
		frac := loFrac + (hiFrac-loFrac)*float64(i)/float64(steps-1)
		c := cfg
		c.ArrivalRate = frac * peak
		c.Seed = sweepSeed(cfg.Seed, i)
		r, err := RunContext(ctx, c)
		if err != nil {
			return CurvePoint{}, err
		}
		return CurvePoint{QPS: r.Offered, P95: r.P95, Saturated: r.Saturated}, nil
	})
	return engine.Collect(res)
}

// Knee is the result of a KneeSearch: the saturation boundary of a
// queue, bracketed to the requested resolution.
type Knee struct {
	// KneeFrac and KneeQPS are the lowest load observed saturated
	// (as a fraction of theoretical capacity, and absolute).
	KneeFrac float64
	KneeQPS  float64
	// StableFrac/StableQPS/StableP95 describe the highest load observed
	// stable — the operating point just below the knee.
	StableFrac float64
	StableQPS  float64
	StableP95  float64
	// Found reports that the knee lies inside [loFrac, hiFrac]; false
	// means the queue was still stable at hiFrac (KneeFrac is then
	// meaningless and StableFrac == hiFrac).
	Found bool
	// Evals counts discrete-event simulation runs performed; the
	// adaptive search needs O(log((hi-lo)/tol)) of them where a
	// fixed-step sweep at the same resolution needs (hi-lo)/tol.
	Evals int
	// FluidEvals counts load points answered by the closed-form fluid
	// model instead of simulation (Config.FluidApprox only). Fluid
	// answers are restricted to bracket screening: every bisection
	// probe and the returned stable/knee points are discrete.
	FluidEvals int
}

// KneeSearch locates a queue's saturation knee by bracketing and
// bisection instead of a fixed-step load sweep: it evaluates the two
// endpoints, then halves the bracket until it is narrower than tolFrac
// (of theoretical capacity). All evaluations reuse cfg.Seed, so the
// runs differ only in offered load (common random numbers), and the
// search is fully deterministic. Use it where only the knee is needed;
// CurveContext still serves full-curve measurements.
//
// With Config.FluidApprox set, the search first narrows the bracket
// around the analytic knee estimate and lets the fluid model answer the
// far-from-saturation screening probe; every bisection probe and the
// returned stable/knee points remain discrete-event simulations (a
// fluid-screened stable endpoint is re-simulated before being
// returned, and the search restarts fully discrete if the fluid screen
// disagrees with simulation).
func KneeSearch(ctx context.Context, cfg Config, loFrac, hiFrac, tolFrac float64) (Knee, error) {
	if cfg.Servers <= 0 || cfg.Service == nil {
		return Knee{}, fmt.Errorf("queueing: knee search needs positive servers and a service distribution")
	}
	if !(loFrac > 0) || !(hiFrac > loFrac) {
		return Knee{}, fmt.Errorf("queueing: knee search needs 0 < loFrac < hiFrac, got [%v, %v]", loFrac, hiFrac)
	}
	if !(tolFrac > 0) {
		return Knee{}, fmt.Errorf("queueing: knee search needs a positive tolerance, got %v", tolFrac)
	}
	if cfg.FluidApprox && !cfg.ReferenceEventLoop && !cfg.ReferenceSampling {
		if k, ok, err := kneeSearchFluid(ctx, cfg, loFrac, hiFrac, tolFrac); ok || err != nil {
			return k, err
		}
	}
	return kneeSearchDiscrete(ctx, cfg, loFrac, hiFrac, tolFrac)
}

// kneeSearchDiscrete is the purely discrete-event bracketing search.
func kneeSearchDiscrete(ctx context.Context, cfg Config, loFrac, hiFrac, tolFrac float64) (Knee, error) {
	peak := Capacity(cfg.Servers, cfg.Service)
	var k Knee
	eval := func(frac float64) (Result, error) {
		c := cfg
		c.FluidApprox = false
		c.ArrivalRate = frac * peak
		k.Evals++
		return RunContext(ctx, c)
	}

	lo, err := eval(loFrac)
	if err != nil {
		return Knee{}, err
	}
	if lo.Saturated {
		// The whole bracket is past the knee; report its lower edge.
		k.Found = true
		k.KneeFrac, k.KneeQPS = loFrac, lo.Offered
		return k, nil
	}
	k.StableFrac, k.StableQPS, k.StableP95 = loFrac, lo.Offered, lo.P95
	hi, err := eval(hiFrac)
	if err != nil {
		return Knee{}, err
	}
	if !hi.Saturated {
		// Still stable at the top of the bracket: no knee inside.
		k.StableFrac, k.StableQPS, k.StableP95 = hiFrac, hi.Offered, hi.P95
		return k, nil
	}
	k.Found = true
	k.KneeFrac, k.KneeQPS = hiFrac, hi.Offered

	loF, hiF := loFrac, hiFrac
	for hiF-loF > tolFrac {
		mid := loF + (hiF-loF)/2
		res, err := eval(mid)
		if err != nil {
			return Knee{}, err
		}
		if res.Saturated {
			hiF = mid
			k.KneeFrac, k.KneeQPS = mid, res.Offered
		} else {
			loF = mid
			k.StableFrac, k.StableQPS, k.StableP95 = mid, res.Offered, res.P95
		}
	}
	return k, nil
}

// kneeSearchFluid is the fluid-guided search. ok is false when the
// service distribution hides its moments, in which case the caller
// falls back to the purely discrete search.
func kneeSearchFluid(ctx context.Context, cfg Config, loFrac, hiFrac, tolFrac float64) (Knee, bool, error) {
	est, okEst := fluidKneeFrac(cfg)
	if !okEst {
		return Knee{}, false, nil
	}
	peak := Capacity(cfg.Servers, cfg.Service)
	var k Knee
	evalD := func(frac float64) (Result, error) {
		c := cfg
		c.FluidApprox = false
		c.ArrivalRate = frac * peak
		k.Evals++
		return RunContext(ctx, c)
	}
	stableFluid := false
	setStable := func(frac float64, r Result) {
		k.StableFrac, k.StableQPS, k.StableP95 = frac, r.Offered, r.P95
		stableFluid = r.Fluid
	}
	setKnee := func(frac float64, r Result) {
		k.Found = true
		k.KneeFrac, k.KneeQPS = frac, r.Offered
	}

	// Screening probe at the bracket floor: the fluid model answers it
	// when the load is inside the fluid threshold; otherwise this is an
	// ordinary discrete evaluation.
	lo, err := func() (Result, error) {
		c := cfg
		c.ArrivalRate = loFrac * peak
		r, err := RunContext(ctx, c)
		if err == nil && r.Fluid {
			k.FluidEvals++
		} else if err == nil {
			k.Evals++
		}
		return r, err
	}()
	if err != nil {
		return Knee{}, true, err
	}
	if lo.Saturated {
		// The fluid model never reports saturation, so this verdict is
		// discrete: the whole bracket is past the knee.
		setKnee(loFrac, lo)
		return k, true, nil
	}
	setStable(loFrac, lo)

	// Narrow the bracket around the analytic estimate before paying for
	// endpoint simulations far from the knee.
	margin := 4 * tolFrac
	if margin < 0.05 {
		margin = 0.05
	}
	loF, hiF := loFrac, hiFrac
	haveHi := false
	if ghi := est + margin; ghi > loF && ghi < hiF {
		res, err := evalD(ghi)
		if err != nil {
			return Knee{}, true, err
		}
		if res.Saturated {
			hiF = ghi
			setKnee(ghi, res)
			haveHi = true
		} else {
			loF = ghi
			setStable(ghi, res)
		}
	}
	if haveHi {
		if glo := est - margin; glo > loF {
			res, err := evalD(glo)
			if err != nil {
				return Knee{}, true, err
			}
			if res.Saturated {
				hiF = glo
				setKnee(glo, res)
			} else {
				loF = glo
				setStable(glo, res)
			}
		}
	} else {
		res, err := evalD(hiF)
		if err != nil {
			return Knee{}, true, err
		}
		if !res.Saturated {
			// Still stable at the top of the bracket: no knee inside.
			setStable(hiF, res)
			return k, true, nil
		}
		setKnee(hiF, res)
	}

	for hiF-loF > tolFrac {
		mid := loF + (hiF-loF)/2
		res, err := evalD(mid)
		if err != nil {
			return Knee{}, true, err
		}
		if res.Saturated {
			hiF = mid
			setKnee(mid, res)
		} else {
			loF = mid
			setStable(mid, res)
		}
	}

	if stableFluid {
		// The returned stable point must be simulation-sourced: re-run
		// the fluid-screened endpoint discretely, and if the screen's
		// stability verdict does not survive simulation, discard the
		// guided search entirely.
		res, err := evalD(k.StableFrac)
		if err != nil {
			return Knee{}, true, err
		}
		if res.Saturated {
			kd, err := kneeSearchDiscrete(ctx, cfg, loFrac, hiFrac, tolFrac)
			kd.Evals += k.Evals
			kd.FluidEvals = k.FluidEvals
			return kd, true, err
		}
		setStable(k.StableFrac, res)
	}
	if chk := audit.Resolve(cfg.Audit); chk != nil && k.Found && k.FluidEvals > 0 {
		// Canary for the fluid containment contract: the only fluid
		// answer is the loFrac screen, which must sit at or below the
		// returned stable endpoint, never inside the bracket.
		if loFrac > k.StableFrac && loFrac < k.KneeFrac {
			audit.Failf(chk, "queueing", "fluid-in-bracket",
				"fluid screening eval at %g landed inside the knee bracket (%g, %g)",
				loFrac, k.StableFrac, k.KneeFrac)
		}
	}
	return k, true, nil
}
