// Package queueing implements the discrete-event simulation substrate
// behind GSF's performance component: an open-loop, FCFS, k-server queue
// with Poisson arrivals and a pluggable service-time distribution.
//
// The paper measures 95th-percentile tail latency versus offered load
// (QPS) on physical servers (Figs. 7–8); this simulator reproduces the
// same measurement protocol — sweep offered load, record latency
// percentiles, find the saturation knee — against modelled service
// times. A VM with k cores serving a request-parallel application maps
// onto a k-server queue.
package queueing

import (
	"context"
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/stats"
)

// ServiceDist samples request service times in seconds.
type ServiceDist interface {
	Sample(r *stats.RNG) float64
	Mean() float64
}

// LogNormal is a log-normal service-time distribution specified by its
// mean and coefficient of variation, the common model for request
// service times in interactive cloud services.
type LogNormal struct {
	MeanSeconds float64
	CV          float64 // stddev / mean of the service time
}

// Mean returns the distribution mean in seconds.
func (l LogNormal) Mean() float64 { return l.MeanSeconds }

// Sample draws one service time.
func (l LogNormal) Sample(r *stats.RNG) float64 {
	if l.CV <= 0 {
		return l.MeanSeconds
	}
	sigma2 := math.Log(1 + l.CV*l.CV)
	mu := math.Log(l.MeanSeconds) - sigma2/2
	return r.LogNormal(mu, math.Sqrt(sigma2))
}

// Exponential is an exponential (M/M/k) service-time distribution.
type Exponential struct{ MeanSeconds float64 }

// Mean returns the distribution mean in seconds.
func (e Exponential) Mean() float64 { return e.MeanSeconds }

// Sample draws one service time.
func (e Exponential) Sample(r *stats.RNG) float64 { return r.Exp(e.MeanSeconds) }

// Config describes one simulation run.
type Config struct {
	Servers     int     // parallel servers (VM cores)
	ArrivalRate float64 // offered load in requests/second
	Service     ServiceDist
	Warmup      int // requests discarded before measurement
	Requests    int // measured requests
	Seed        uint64
	// Audit receives invariant violations (event-clock monotonicity,
	// service ordering, heap integrity, percentile ordering). Nil falls
	// back to the process default (audit.SetDefault); if that is also
	// nil, checking is disabled and costs nothing.
	Audit audit.Checker
}

// Result summarises one simulation run.
type Result struct {
	Offered     float64 // configured arrival rate
	P50         float64 // seconds
	P95         float64
	P99         float64
	Mean        float64
	Utilization float64 // offered * E[S] / k
	// Saturated reports that the queue was unstable: offered load at
	// or above capacity, detected by latency growth across the run.
	Saturated bool
}

// serverHeap is a min-heap over each server's next-free time. The heap
// is fixed-size (one slot per server), so the only operation the event
// loop needs is rewriting the root and sifting it down — done with a
// typed loop rather than container/heap, whose interface-based Fix
// boxes its arguments and allocates on the hot path. The sift mirrors
// container/heap's down exactly, so equal free-times order as before.
type serverHeap []float64

func (h serverHeap) siftDown(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h[r] < h[l] {
			m = r
		}
		if h[i] <= h[m] {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// Run simulates the configured queue and returns latency statistics.
// FCFS dispatch to the earliest-free server is exact for G/G/k: each
// arrival waits until the server that frees first is idle.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: the event loop polls ctx every
// 4096 requests — cheap enough to be invisible in profiles — and
// returns the context error once observed.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Servers <= 0 {
		return Result{}, fmt.Errorf("queueing: servers must be positive, got %d", cfg.Servers)
	}
	if cfg.ArrivalRate <= 0 {
		return Result{}, fmt.Errorf("queueing: arrival rate must be positive, got %v", cfg.ArrivalRate)
	}
	if cfg.Service == nil {
		return Result{}, fmt.Errorf("queueing: no service distribution")
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 20000
	}
	if cfg.Warmup <= 0 {
		cfg.Warmup = cfg.Requests / 10
	}
	r := stats.NewRNG(cfg.Seed)
	chk := audit.Resolve(cfg.Audit)

	// All servers start free at t=0; an all-equal slice is already a
	// valid min-heap.
	free := make(serverHeap, cfg.Servers)

	total := cfg.Warmup + cfg.Requests
	latencies := make([]float64, 0, cfg.Requests)
	now := 0.0
	meanIA := 1 / cfg.ArrivalRate
	for i := 0; i < total; i++ {
		if i&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			if chk != nil {
				auditHeap(chk, free)
			}
		}
		prev := now
		now += r.Exp(meanIA)
		s := cfg.Service.Sample(r)
		freeAt := free[0]
		start := now
		if freeAt > start {
			start = freeAt
		}
		done := start + s
		if chk != nil {
			// The event clock may only move forward, a request may not
			// start before it arrives or complete before it starts, and
			// its latency includes at least its own service time.
			if now < prev {
				audit.Failf(chk, "queueing", "clock-monotonicity",
					"arrival clock moved backwards: %g -> %g at request %d", prev, now, i)
			}
			if start < now {
				audit.Failf(chk, "queueing", "start-before-arrival",
					"request %d started at %g before arrival %g", i, start, now)
			}
			if done < start {
				audit.Failf(chk, "queueing", "completion-before-start",
					"request %d completed at %g before start %g", i, done, start)
			}
			if lat := done - now; lat < s-audit.SimTol {
				audit.Failf(chk, "queueing", "latency-below-service",
					"request %d latency %g below service time %g", i, lat, s)
			}
		}
		free[0] = done
		free.siftDown(0)
		if i >= cfg.Warmup {
			latencies = append(latencies, done-now)
		}
	}

	res := Result{
		Offered:     cfg.ArrivalRate,
		P50:         stats.Percentile(latencies, 50),
		P95:         stats.Percentile(latencies, 95),
		P99:         stats.Percentile(latencies, 99),
		Mean:        stats.Mean(latencies),
		Utilization: cfg.ArrivalRate * cfg.Service.Mean() / float64(cfg.Servers),
	}
	// Saturation: the measured window's tail grows relative to its
	// head, the signature of an unstable queue in a finite run.
	q := len(latencies) / 4
	if q > 0 {
		head := stats.Mean(latencies[:q])
		tail := stats.Mean(latencies[len(latencies)-q:])
		if res.Utilization >= 1 || tail > 3*head {
			res.Saturated = true
		}
	}
	if chk != nil {
		if !(res.P50 <= res.P95+audit.SimTol) || !(res.P95 <= res.P99+audit.SimTol) {
			audit.Failf(chk, "queueing", "percentile-order",
				"latency percentiles unordered: P50=%g P95=%g P99=%g", res.P50, res.P95, res.P99)
		}
	}
	return res, nil
}

// auditHeap verifies the free-server heap still satisfies the min-heap
// property; called periodically from the event loop when auditing is on.
func auditHeap(chk audit.Checker, h serverHeap) {
	for i := 1; i < len(h); i++ {
		if parent := (i - 1) / 2; h[parent] > h[i] {
			audit.Failf(chk, "queueing", "heap-order",
				"free-server heap violated at index %d: parent %g > child %g", i, h[parent], h[i])
			return
		}
	}
}

// Capacity returns the theoretical peak throughput of k servers with
// the given service distribution: k / E[S].
func Capacity(servers int, s ServiceDist) float64 {
	return float64(servers) / s.Mean()
}

// Trials runs n independent simulations differing only in seed and
// returns the per-trial P95 values, mirroring the paper's protocol of
// three trials with 99% confidence intervals.
func Trials(cfg Config, n int) ([]float64, error) {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e37
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, res.P95)
	}
	return out, nil
}

// CurvePoint is one point of a latency-versus-load curve.
type CurvePoint struct {
	QPS       float64
	P95       float64
	Saturated bool
}

// Curve sweeps offered load from loFrac to hiFrac of the queue's
// theoretical capacity in the given number of steps and records P95 at
// each point — the measurement behind Figs. 7 and 8.
func Curve(servers int, s ServiceDist, loFrac, hiFrac float64, steps int, seed uint64) ([]CurvePoint, error) {
	if steps < 2 {
		return nil, fmt.Errorf("queueing: curve needs at least 2 steps")
	}
	cap := Capacity(servers, s)
	pts := make([]CurvePoint, 0, steps)
	for i := 0; i < steps; i++ {
		frac := loFrac + (hiFrac-loFrac)*float64(i)/float64(steps-1)
		res, err := Run(Config{
			Servers:     servers,
			ArrivalRate: frac * cap,
			Service:     s,
			Seed:        seed + uint64(i),
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, CurvePoint{QPS: res.Offered, P95: res.P95, Saturated: res.Saturated})
	}
	return pts, nil
}
