package queueing

import "testing"

func BenchmarkRunMMk(b *testing.B) {
	cfg := Config{
		Servers:     8,
		ArrivalRate: 1800,
		Service:     Exponential{MeanSeconds: 0.004},
		Requests:    20000,
		Seed:        1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunLogNormal(b *testing.B) {
	cfg := Config{
		Servers:     12,
		ArrivalRate: 2500,
		Service:     LogNormal{MeanSeconds: 0.004, CV: 1},
		Requests:    20000,
		Seed:        2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Curve(8, LogNormal{0.004, 1}, 0.1, 1.0, 12, 3); err != nil {
			b.Fatal(err)
		}
	}
}
