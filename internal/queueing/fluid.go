package queueing

// The fluid fast path: a closed-form M/G/k approximation for load
// points far from saturation, where discrete-event resolution buys
// nothing. Run answers from it when Config.FluidApprox is set and the
// configured utilization sits at or below Config.FluidThreshold;
// KneeSearch additionally uses the analytic knee estimate to pre-shrink
// its bisection bracket so discrete-event cost concentrates near the
// knee.
//
// The model is Allen–Cunneen's heuristic: the M/M/k mean queueing delay
// (via Erlang C) scaled by (Ca² + Cs²)/2, with Ca² = 1 for the
// simulator's Poisson arrivals. Latency percentiles combine the service
// distribution's exact quantiles with the M/M/k conditional-wait
// exponential, scaled the same way. This is an approximation — results
// carry Result.Fluid = true, are never bit-comparable to discrete-event
// output, and fluid_test.go bounds the error against simulation across
// 35 seeds.

import "math"

// DefaultFluidThreshold is the utilization at or below which
// Config.FluidApprox may answer when Config.FluidThreshold is zero.
const DefaultFluidThreshold = 0.7

// varianceDist is the optional ServiceDist extension the fluid model
// needs: the squared coefficient of variation of service times.
// Distributions that do not implement it never take the fluid path.
type varianceDist interface{ SCV() float64 }

// quantileDist is the optional ServiceDist extension supplying exact
// service-time quantiles (p in (0, 1)) for fluid latency percentiles.
type quantileDist interface{ Quantile(p float64) float64 }

// SCV returns the squared coefficient of variation of the service time.
func (l LogNormal) SCV() float64 {
	if l.CV <= 0 {
		return 0
	}
	return l.CV * l.CV
}

// Quantile returns the p-th quantile (p in (0, 1)) of the service time.
func (l LogNormal) Quantile(p float64) float64 {
	if l.CV <= 0 {
		return l.MeanSeconds
	}
	mu, sigma := l.params()
	return math.Exp(mu + sigma*normQuantile(p))
}

// SCV returns 1: the exponential's coefficient of variation is 1.
func (e Exponential) SCV() float64 { return 1 }

// Quantile returns the p-th quantile of the exponential service time.
func (e Exponential) Quantile(p float64) float64 {
	return -e.MeanSeconds * math.Log(1-p)
}

// normQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9 — far below the fluid
// model's own error).
func normQuantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		return math.NaN()
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00
		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01
		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00
		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00
		pl = 0.02425
	)
	switch {
	case p < pl:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > 1-pl:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}

// erlangC returns the M/M/k probability that an arrival must queue, at
// per-server utilization rho, via the numerically stable Erlang B
// recursion.
func erlangC(k int, rho float64) float64 {
	a := rho * float64(k)
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	return b / (1 - rho*(1-b))
}

// fluidEligible reports whether cfg can be answered by the fluid model:
// the service distribution exposes its moments and quantiles and the
// configured utilization is at or below the threshold.
func fluidEligible(cfg Config) (util, scv float64, qd quantileDist, ok bool) {
	vd, okV := cfg.Service.(varianceDist)
	qd, okQ := cfg.Service.(quantileDist)
	if !okV || !okQ {
		return 0, 0, nil, false
	}
	util = cfg.ArrivalRate * cfg.Service.Mean() / float64(cfg.Servers)
	thr := cfg.FluidThreshold
	if thr <= 0 {
		thr = DefaultFluidThreshold
	}
	if thr >= 1 {
		thr = 1 - 1e-9
	}
	if !(util > 0) || util > thr {
		return 0, 0, nil, false
	}
	return util, vd.SCV(), qd, true
}

// fluidResult evaluates cfg with the closed-form model. ok is false
// when the configuration is not fluid-eligible.
func fluidResult(cfg Config) (Result, bool) {
	util, scv, qd, ok := fluidEligible(cfg)
	if !ok {
		return Result{}, false
	}
	k := float64(cfg.Servers)
	es := cfg.Service.Mean()
	pc := erlangC(cfg.Servers, util)
	// Conditional wait in the M/M/k model, scaled by the Allen–Cunneen
	// variability factor (Ca² = 1 for Poisson arrivals).
	condWait := es / (k * (1 - util)) * (1 + scv) / 2
	waitQ := func(p float64) float64 {
		tailP := 1 - p
		if pc <= tailP {
			return 0
		}
		return condWait * math.Log(pc/tailP)
	}
	return Result{
		Offered:     cfg.ArrivalRate,
		P50:         qd.Quantile(0.50) + waitQ(0.50),
		P95:         qd.Quantile(0.95) + waitQ(0.95),
		P99:         qd.Quantile(0.99) + waitQ(0.99),
		Mean:        es + pc*condWait,
		Utilization: util,
		Fluid:       true,
	}, true
}

// fluidKneeFrac returns the analytic saturation-knee estimate: the
// capacity fraction where the Allen–Cunneen mean queueing delay equals
// one mean service time — the point where waiting stops being
// negligible and the finite-run tail-growth detector fires shortly
// after. ok is false when the distribution hides its moments.
func fluidKneeFrac(cfg Config) (float64, bool) {
	vd, okV := cfg.Service.(varianceDist)
	if !okV {
		return 0, false
	}
	scv := vd.SCV()
	k := cfg.Servers
	// g is monotone increasing in rho and crosses zero at the estimate.
	g := func(rho float64) float64 {
		return erlangC(k, rho)/(float64(k)*(1-rho))*(1+scv)/2 - 1
	}
	lo, hi := 1e-6, 1-1e-9
	if g(hi) < 0 {
		return hi, true
	}
	if g(lo) > 0 {
		return lo, true
	}
	for i := 0; i < 60; i++ {
		mid := lo + (hi-lo)/2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, true
}
