package queueing

// The batched-kernel differential wall: the batched structure-of-arrays
// event loop must produce bit-identical Results to the retained scalar
// loop (Config.ReferenceEventLoop) for every seed, both sampling modes,
// and both server-index structures (heap below calendarMinServers,
// calendar queue above). Every run executes under the package
// TestMain's audit recorder, so the wall doubles as the
// zero-violations audit sweep the acceptance criteria require.

import (
	"context"
	"testing"

	"github.com/greensku/gsf/internal/audit"
)

// batchDiffConfigs are the kernel shapes the differential wall sweeps:
// small and large server counts (heap and calendar index), stable and
// saturated load, log-normal, exponential, and constant service.
func batchDiffConfigs() []Config {
	return []Config{
		{Servers: 8, ArrivalRate: 0.8 * Capacity(8, LogNormal{0.004, 1.5}), Service: LogNormal{0.004, 1.5}, Requests: 20000},
		{Servers: 8, ArrivalRate: 1.05 * Capacity(8, LogNormal{0.004, 1.5}), Service: LogNormal{0.004, 1.5}, Requests: 20000},
		{Servers: 64, ArrivalRate: 0.85 * Capacity(64, LogNormal{0.005, 1.5}), Service: LogNormal{0.005, 1.5}, Requests: 20000},
		{Servers: 512, ArrivalRate: 0.8 * Capacity(512, LogNormal{0.004, 1}), Service: LogNormal{0.004, 1}, Requests: 20000},
		{Servers: 512, ArrivalRate: 1.1 * Capacity(512, LogNormal{0.004, 1}), Service: LogNormal{0.004, 1}, Requests: 20000},
		{Servers: 16, ArrivalRate: 0.7 * Capacity(16, Exponential{0.004}), Service: Exponential{0.004}, Requests: 20000},
		{Servers: 300, ArrivalRate: 0.75 * Capacity(300, Exponential{0.002}), Service: Exponential{0.002}, Requests: 20000},
		{Servers: 8, ArrivalRate: 0.6 * Capacity(8, LogNormal{0.004, 0}), Service: LogNormal{0.004, 0}, Requests: 20000},
		{Servers: 400, ArrivalRate: 0.6 * Capacity(400, LogNormal{0.004, 0}), Service: LogNormal{0.004, 0}, Requests: 20000},
	}
}

// TestBatchedMatchesReferenceEventLoop35Seeds is the acceptance wall:
// batched == scalar, bit for bit, with and without ReferenceSampling,
// across 35 seeds.
func TestBatchedMatchesReferenceEventLoop35Seeds(t *testing.T) {
	for ci, base := range batchDiffConfigs() {
		for _, refSampling := range []bool{false, true} {
			if refSampling && testing.Short() {
				continue
			}
			for seed := uint64(1); seed <= 35; seed++ {
				bcfg := base
				bcfg.Seed = seed
				bcfg.ReferenceSampling = refSampling
				rcfg := bcfg
				rcfg.ReferenceEventLoop = true
				batched := run(t, bcfg)
				scalar := run(t, rcfg)
				if batched != scalar {
					t.Fatalf("config %d seed %d refSampling=%v: batched %+v != scalar %+v",
						ci, seed, refSampling, batched, scalar)
				}
			}
		}
	}
}

// TestBatchedKneeSearchMatchesReference pins that the whole adaptive
// search — not just single runs — is loop-agnostic when the fluid path
// is off.
func TestBatchedKneeSearchMatchesReference(t *testing.T) {
	for _, servers := range []int{8, 512} {
		cfg := Config{Servers: servers, Service: LogNormal{0.004, 1}, Requests: 20000, Seed: 5}
		kb, err := KneeSearch(context.Background(), cfg, 0.5, 1.3, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		rcfg := cfg
		rcfg.ReferenceEventLoop = true
		kr, err := KneeSearch(context.Background(), rcfg, 0.5, 1.3, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if kb != kr {
			t.Fatalf("servers %d: batched knee %+v != reference knee %+v", servers, kb, kr)
		}
	}
}

// TestCalendarQueueCanary feeds the calendar a monotone replace stream
// and cross-checks every extraction against a sorted oracle; then
// corrupts it and verifies auditCalendar notices (the calendar analogue
// of TestAuditHeapDetectsDisorder's heap canary).
func TestCalendarQueueCanary(t *testing.T) {
	const servers = 300
	q := newCalendarQueue(servers, 10, 200, servers)
	oracle := make([]float64, servers)
	r := newTestRNG()
	clock := 0.0
	for i := 0; i < 20000; i++ {
		want := oracleMin(oracle)
		got := q.next()
		if got != want {
			t.Fatalf("event %d: calendar min %g, oracle min %g", i, got, want)
		}
		clock += r.Float64() * 0.01
		start := clock
		if got > start {
			start = got
		}
		done := start + r.Float64()*0.05
		q.replace(done)
		oracleReplace(oracle, want, done)
	}
	if q.size() != servers {
		t.Fatalf("calendar tracks %d entries, want %d", q.size(), servers)
	}
}

func oracleMin(a []float64) float64 {
	m := a[0]
	for _, v := range a[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func oracleReplace(a []float64, old, new float64) {
	for i, v := range a {
		if v == old {
			a[i] = new
			return
		}
	}
	panic("oracle entry not found")
}

// TestAuditCalendarDetectsCorruption pins that the calendar integrity
// sweep actually fires: dropping an entry breaks the per-server count.
func TestAuditCalendarDetectsCorruption(t *testing.T) {
	q := newCalendarQueue(300, 10, 200, 300)
	r := newTestRNG()
	for i := 0; i < 1000; i++ {
		m := q.next()
		d := m + r.Float64()*0.05
		if c := r.Float64() * 0.01; d < c {
			d = c
		}
		q.replace(d)
	}
	rec := audit.NewRecorder()
	auditCalendar(rec, q, 300)
	if rec.Count() != 0 {
		t.Fatalf("clean calendar reported violations: %v", rec.Violations())
	}
	// Drop one stored entry.
	for slot := range q.buckets {
		if len(q.buckets[slot]) > 0 {
			q.buckets[slot] = q.buckets[slot][:len(q.buckets[slot])-1]
			break
		}
	}
	auditCalendar(rec, q, 300)
	if rec.Counts()["queueing/calendar-integrity"] == 0 {
		t.Fatalf("auditCalendar missed a dropped server entry; counts = %v", rec.Counts())
	}
}

// TestBatchedRunSteadyStateAllocs pins the batched loop's per-run
// allocation count with a warm pool, for both index structures. The
// calendar config allows for its bucket ring (allocated per run and
// grown by appends); the heap config stays in single digits like the
// scalar loop.
func TestBatchedRunSteadyStateAllocs(t *testing.T) {
	heapCfg := Config{Servers: 8, ArrivalRate: 1500, Service: LogNormal{0.004, 1}, Requests: 8000, Seed: 21}
	calCfg := Config{Servers: 512, ArrivalRate: 0.8 * Capacity(512, LogNormal{0.004, 1}), Service: LogNormal{0.004, 1}, Requests: 8000, Seed: 21}
	for _, c := range []struct {
		name  string
		cfg   Config
		limit float64
	}{
		{"heap", heapCfg, 8},
		{"calendar", calCfg, 64},
	} {
		if _, err := Run(c.cfg); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			if _, err := Run(c.cfg); err != nil {
				t.Fatal(err)
			}
		})
		if avg > c.limit {
			t.Errorf("%s: steady-state batched Run allocates %.1f times, want <= %.0f", c.name, avg, c.limit)
		}
	}
}

func BenchmarkRunBatched(b *testing.B) {
	cfg := Config{Servers: 8, ArrivalRate: 0.9 * Capacity(8, LogNormal{0.004, 1.5}), Service: LogNormal{0.004, 1.5}, Requests: 30000, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunScalarLoop(b *testing.B) {
	cfg := Config{Servers: 8, ArrivalRate: 0.9 * Capacity(8, LogNormal{0.004, 1.5}), Service: LogNormal{0.004, 1.5}, Requests: 30000, Seed: 1, ReferenceEventLoop: true}
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerIndex compares the two index structures inside the
// batched loop across server counts — the measurement behind the
// calendarMinServers cutoff.
func BenchmarkServerIndex(b *testing.B) {
	for _, servers := range []int{64, 256, 1024, 8192} {
		cfg := Config{
			Servers:     servers,
			Service:     LogNormal{0.004, 1.5},
			ArrivalRate: 0.85 * Capacity(servers, LogNormal{0.004, 1.5}),
			Requests:    30000,
			Seed:        1,
		}
		b.Run(benchName("servers", servers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
