package queueing

import "github.com/greensku/gsf/internal/stats"

func newTestRNG() *stats.RNG                { return stats.NewRNG(12345) }
func newTestRNGSeed(seed uint64) *stats.RNG { return stats.NewRNG(seed) }
