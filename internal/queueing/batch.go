package queueing

// The batched structure-of-arrays event loop. Instead of interleaving
// one RNG draw pair with one heap operation per request, the loop fills
// whole arrival-gap and service-time vectors up front through the
// ziggurat bulk fillers and then sweeps the batch through a tight,
// allocation-free dispatch loop.
//
// Bit-identity with the scalar reference loop (Config.ReferenceEventLoop)
// rests on three facts, each proven by a differential test:
//
//  1. The bulk fillers interleave (gap, service) draws per request in
//     the exact scalar order — the ziggurat consumes a variable number
//     of 64-bit words per sample, so filling all gaps first would
//     permute the stream (stats.TestPairFillsMatchScalarSequence).
//  2. The server index is a multiset of next-free times with no
//     identities: the heap and the calendar queue extract the same
//     minimum values, so dispatch decisions are identical.
//  3. Each percentile is an interpolation of exact order statistics,
//     so the quickselect summary equals the sort-based one bit for bit
//     (stats.TestSummarizeSelectMatchesSummarize).
//
// Context polling and audit sweeps happen at batch boundaries — the
// same i&4095 == 0 cadence the scalar loop uses.

import (
	"context"
	"math"
	"sync"

	"github.com/greensku/gsf/internal/audit"
	"github.com/greensku/gsf/internal/stats"
)

// eventBatch is the SoA batch size. It matches the scalar loop's
// context-poll cadence (i&4095 == 0) so batching changes neither the
// cancellation latency nor the audit sweep frequency.
const eventBatch = 4096

// calendarMinServers is the server count at which the batched loop
// switches its next-free index from the binary heap to the calendar
// queue. Below it the heap's few cache-hot sift levels win; from here
// up the calendar's O(1) amortized extract-min does (measured
// crossover between 16 and 32 servers; see BenchmarkServerIndex in
// batch_test.go).
const calendarMinServers = 64

// eventBuf holds one batch of pre-sampled arrival gaps and service
// times; pooled so steady-state runs allocate nothing per batch.
type eventBuf struct {
	gaps [eventBatch]float64
	svc  [eventBatch]float64
}

var eventBufPool = sync.Pool{New: func() any { return new(eventBuf) }}

// runBatched is the default event loop behind Run/RunContext.
func runBatched(ctx context.Context, cfg Config) (Result, error) {
	r := stats.NewRNG(cfg.Seed)
	chk := audit.Resolve(cfg.Audit)
	var sampler Sampler
	if !cfg.ReferenceSampling {
		sampler = cfg.Service.Prepare(false)
	}

	buf := getLatencyBuf(cfg.Requests)
	latencies := *buf
	defer func() {
		*buf = latencies[:0]
		latencyPool.Put(buf)
	}()

	total := cfg.Warmup + cfg.Requests
	var free serverHeap
	var cal *calendarQueue
	if cfg.Servers >= calendarMinServers {
		cal = newCalendarQueue(cfg.Servers, calendarSpan(cfg), cfg.ArrivalRate, total)
	} else {
		free = make(serverHeap, cfg.Servers)
	}

	eb := eventBufPool.Get().(*eventBuf)
	defer eventBufPool.Put(eb)

	now := 0.0
	meanIA := 1 / cfg.ArrivalRate
	for base := 0; base < total; base += eventBatch {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		if chk != nil {
			if cal != nil {
				auditCalendar(chk, cal, cfg.Servers)
			} else {
				auditHeap(chk, free)
			}
		}
		n := total - base
		if n > eventBatch {
			n = eventBatch
		}
		gaps, svc := eb.gaps[:n:n], eb.svc[:n:n]
		fillEvents(cfg, sampler, r, gaps, svc, meanIA)

		switch {
		case chk == nil && cal != nil:
			for k := 0; k < n; k++ {
				now += gaps[k]
				start := cal.next()
				if now > start {
					start = now
				}
				done := start + svc[k]
				cal.replace(done)
				if base+k >= cfg.Warmup {
					latencies = append(latencies, done-now)
				}
			}
		case chk == nil:
			for k := 0; k < n; k++ {
				now += gaps[k]
				start := free[0]
				if now > start {
					start = now
				}
				done := start + svc[k]
				free[0] = done
				free.siftDown(0)
				if base+k >= cfg.Warmup {
					latencies = append(latencies, done-now)
				}
			}
		case cal != nil:
			for k := 0; k < n; k++ {
				prev := now
				now += gaps[k]
				start := cal.next()
				if now > start {
					start = now
				}
				done := start + svc[k]
				auditEvent(chk, base+k, svc[k], prev, now, start, done)
				cal.replace(done)
				if base+k >= cfg.Warmup {
					latencies = append(latencies, done-now)
				}
			}
		default:
			for k := 0; k < n; k++ {
				prev := now
				now += gaps[k]
				start := free[0]
				if now > start {
					start = now
				}
				done := start + svc[k]
				auditEvent(chk, base+k, svc[k], prev, now, start, done)
				free[0] = done
				free.siftDown(0)
				if base+k >= cfg.Warmup {
					latencies = append(latencies, done-now)
				}
			}
		}
	}

	// Saturation signal: read in arrival order before SummarizeSelect
	// partitions the buffer in place, exactly as the scalar loop reads
	// it before Summarize sorts.
	var head, tail float64
	q := len(latencies) / 4
	if q > 0 {
		head = stats.Mean(latencies[:q])
		tail = stats.Mean(latencies[len(latencies)-q:])
	}
	sum := stats.SummarizeSelect(latencies)
	res := Result{
		Offered:     cfg.ArrivalRate,
		P50:         sum.P50,
		P95:         sum.P95,
		P99:         sum.P99,
		Mean:        sum.Mean,
		Utilization: cfg.ArrivalRate * cfg.Service.Mean() / float64(cfg.Servers),
	}
	if q > 0 && (res.Utilization >= 1 || tail > 3*head) {
		res.Saturated = true
	}
	if chk != nil {
		if !(res.P50 <= res.P95+audit.SimTol) || !(res.P95 <= res.P99+audit.SimTol) {
			audit.Failf(chk, "queueing", "percentile-order",
				"latency percentiles unordered: P50=%g P95=%g P99=%g", res.P50, res.P95, res.P99)
		}
	}
	return res, nil
}

// fillEvents fills one batch of arrival gaps and service times,
// consuming the RNG in exactly the scalar loop's per-request order.
func fillEvents(cfg Config, sampler Sampler, r *stats.RNG, gaps, svc []float64, meanIA float64) {
	if cfg.ReferenceSampling {
		// Reference draw order: one reference Exp then one reference
		// service sample per request, parameters re-derived per sample.
		for k := range gaps {
			gaps[k] = r.Exp(meanIA)
			svc[k] = cfg.Service.Sample(r)
		}
		return
	}
	switch s := sampler.(type) {
	case fastLogNormal:
		r.FillExpLogNormal(gaps, meanIA, svc, s.mu, s.sigma)
	case fastExp:
		r.FillExpExp(gaps, meanIA, svc, float64(s))
	case constSampler:
		// Constant service draws nothing, so a plain gap fill is
		// already in scalar draw order.
		r.FillExp(gaps, meanIA)
		c := float64(s)
		for k := range svc {
			svc[k] = c
		}
	default:
		for k := range gaps {
			gaps[k] = r.FastExp(meanIA)
			svc[k] = s.Sample(r)
		}
	}
}

// auditEvent applies the scalar loop's per-request invariants to one
// batched event, with identical check order and messages.
func auditEvent(chk audit.Checker, i int, s, prev, now, start, done float64) {
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		audit.Failf(chk, "queueing", "sample-domain",
			"service sample %g outside [0, inf) at request %d", s, i)
	}
	if now < prev || math.IsNaN(now) {
		audit.Failf(chk, "queueing", "clock-monotonicity",
			"arrival clock moved backwards: %g -> %g at request %d", prev, now, i)
	}
	if start < now {
		audit.Failf(chk, "queueing", "start-before-arrival",
			"request %d started at %g before arrival %g", i, start, now)
	}
	if done < start {
		audit.Failf(chk, "queueing", "completion-before-start",
			"request %d completed at %g before start %g", i, done, start)
	}
	if lat := done - now; lat < s-audit.SimTol {
		audit.Failf(chk, "queueing", "latency-below-service",
			"request %d latency %g below service time %g", i, lat, s)
	}
}
