package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMM1AgainstTheory(t *testing.T) {
	// M/M/1 at rho=0.5 with E[S]=1ms: mean response time
	// = S/(1-rho) = 2 ms.
	res := run(t, Config{
		Servers:     1,
		ArrivalRate: 500,
		Service:     Exponential{MeanSeconds: 0.001},
		Requests:    200000,
		Seed:        1,
	})
	if math.Abs(res.Mean-0.002) > 0.0002 {
		t.Fatalf("M/M/1 mean = %v s, want ~0.002", res.Mean)
	}
	if res.Saturated {
		t.Fatal("rho=0.5 should not saturate")
	}
	// p95 of M/M/1 response time: -ln(0.05) * mean = 3.0 * 2ms ≈ 6ms.
	if math.Abs(res.P95-0.006) > 0.0008 {
		t.Fatalf("M/M/1 p95 = %v s, want ~0.006", res.P95)
	}
}

func TestMMkLowLoadLatencyNearService(t *testing.T) {
	// At 10% load on 8 servers, waiting is negligible: p50 near the
	// service median.
	res := run(t, Config{
		Servers:     8,
		ArrivalRate: 0.1 * Capacity(8, Exponential{0.005}),
		Service:     Exponential{MeanSeconds: 0.005},
		Requests:    50000,
		Seed:        2,
	})
	// Exponential median = ln(2) * mean ≈ 3.47 ms.
	if math.Abs(res.P50-0.00347) > 0.0005 {
		t.Fatalf("low-load p50 = %v, want ~0.0035", res.P50)
	}
}

func TestLatencyMonotoneInLoad(t *testing.T) {
	// The hockey-stick: p95 grows with offered load.
	s := LogNormal{MeanSeconds: 0.004, CV: 1}
	prev := 0.0
	for _, frac := range []float64{0.3, 0.6, 0.9, 0.98} {
		res := run(t, Config{
			Servers:     8,
			ArrivalRate: frac * Capacity(8, s),
			Service:     s,
			Requests:    60000,
			Seed:        3,
		})
		if res.P95 <= prev {
			t.Fatalf("p95 at %.0f%% load (%v) not above previous (%v)", frac*100, res.P95, prev)
		}
		prev = res.P95
	}
}

func TestSaturationDetected(t *testing.T) {
	s := Exponential{MeanSeconds: 0.002}
	res := run(t, Config{
		Servers:     4,
		ArrivalRate: 1.2 * Capacity(4, s),
		Service:     s,
		Requests:    30000,
		Seed:        4,
	})
	if !res.Saturated {
		t.Fatal("overload at 120% of capacity not flagged as saturated")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Servers: 8, ArrivalRate: 1000, Service: LogNormal{0.004, 0.8}, Requests: 20000, Seed: 5}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.P95 != b.P95 || a.Mean != b.Mean {
		t.Fatal("identical configs diverged")
	}
}

func TestMoreServersLowerLatency(t *testing.T) {
	// The scaling mechanism behind the paper's 8 -> 10 -> 12 core
	// scaling: same offered load, more cores, lower tail latency.
	s := LogNormal{MeanSeconds: 0.004, CV: 1}
	load := 0.92 * Capacity(8, s)
	var prev float64 = math.Inf(1)
	for _, k := range []int{8, 10, 12} {
		res := run(t, Config{Servers: k, ArrivalRate: load, Service: s, Requests: 60000, Seed: 6})
		if res.P95 >= prev {
			t.Fatalf("p95 with %d servers (%v) not below previous (%v)", k, res.P95, prev)
		}
		prev = res.P95
	}
}

func TestLogNormalMoments(t *testing.T) {
	d := LogNormal{MeanSeconds: 0.01, CV: 0.5}
	r := newTestRNG()
	var sum, ss float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := d.Sample(r)
		sum += v
		ss += v * v
	}
	mean := sum / n
	cv := math.Sqrt(ss/n-mean*mean) / mean
	if math.Abs(mean-0.01) > 0.0005 {
		t.Fatalf("LogNormal mean = %v, want 0.01", mean)
	}
	if math.Abs(cv-0.5) > 0.03 {
		t.Fatalf("LogNormal CV = %v, want 0.5", cv)
	}
}

func TestLogNormalZeroCV(t *testing.T) {
	d := LogNormal{MeanSeconds: 0.01, CV: 0}
	if got := d.Sample(newTestRNG()); got != 0.01 {
		t.Fatalf("CV=0 sample = %v, want deterministic 0.01", got)
	}
}

func TestCapacity(t *testing.T) {
	if got := Capacity(8, Exponential{0.004}); got != 2000 {
		t.Fatalf("Capacity = %v, want 2000", got)
	}
}

func TestCurveShape(t *testing.T) {
	pts, err := Curve(8, LogNormal{0.004, 1}, 0.1, 1.0, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	if pts[len(pts)-1].P95 < 3*pts[0].P95 {
		t.Fatalf("curve knee missing: p95 %v -> %v", pts[0].P95, pts[len(pts)-1].P95)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].QPS <= pts[i-1].QPS {
			t.Fatal("QPS not increasing along curve")
		}
	}
}

func TestTrials(t *testing.T) {
	vals, err := Trials(Config{Servers: 8, ArrivalRate: 1000, Service: LogNormal{0.004, 1}, Requests: 20000, Seed: 9}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 {
		t.Fatalf("got %d trials, want 3", len(vals))
	}
	if vals[0] == vals[1] && vals[1] == vals[2] {
		t.Fatal("trials with distinct seeds produced identical p95")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Servers: 0, ArrivalRate: 1, Service: Exponential{0.001}},
		{Servers: 1, ArrivalRate: 0, Service: Exponential{0.001}},
		{Servers: 1, ArrivalRate: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: Run accepted invalid config", i)
		}
	}
	if _, err := Curve(1, Exponential{0.001}, 0.1, 1, 1, 0); err == nil {
		t.Error("Curve accepted a single step")
	}
}

func TestPropertyUtilizationMatchesInputs(t *testing.T) {
	f := func(seed uint64) bool {
		r := newTestRNGSeed(seed)
		k := 1 + r.Intn(16)
		mean := 0.001 + r.Float64()*0.01
		frac := 0.1 + r.Float64()*0.8
		s := Exponential{MeanSeconds: mean}
		res, err := Run(Config{
			Servers:     k,
			ArrivalRate: frac * Capacity(k, s),
			Service:     s,
			Requests:    2000,
			Seed:        seed,
		})
		if err != nil {
			return false
		}
		return math.Abs(res.Utilization-frac) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
