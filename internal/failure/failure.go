// Package failure models component failure rates over deployment time.
// It substitutes for the Azure production failure telemetry behind
// Fig. 2 of the paper: DDR4 DIMM annual failure rates show an initial
// infant-mortality period and then stay flat for at least seven years
// of deployment, which is what justifies reusing old DIMMs in
// GreenSKUs.
//
// The model is a classic bathtub curve with the wear-out wall pushed
// beyond the modelled horizon (the paper's accelerated-aging studies
// show flat AFRs beyond 12 years).
package failure

import (
	"fmt"
	"math"

	"github.com/greensku/gsf/internal/stats"
)

// Curve describes an AFR-versus-deployment-age model. Rates are
// normalised the way Fig. 2 presents them (relative to the steady-state
// rate, so the plateau sits at 1.0).
type Curve struct {
	// Plateau is the steady-state normalised AFR (Fig. 2: 1.0).
	Plateau float64
	// InfantExtra is the additional normalised AFR at age zero.
	InfantExtra float64
	// InfantDecayMonths is the e-folding time of infant mortality.
	InfantDecayMonths float64
	// WearoutOnsetMonths is when wear-out would begin raising rates;
	// for DDR4 the paper's data puts this beyond 144 months.
	WearoutOnsetMonths float64
	// WearoutSlope is the normalised AFR increase per month past
	// onset.
	WearoutSlope float64
}

// DDR4 returns the DIMM curve matching the paper's observations: brief
// infant mortality, then flat through (and past) seven years.
func DDR4() Curve {
	return Curve{
		Plateau:            1.0,
		InfantExtra:        1.2,
		InfantDecayMonths:  4,
		WearoutOnsetMonths: 168, // 14 years: beyond the 12-year aging studies
		WearoutSlope:       0.02,
	}
}

// SSD returns an SSD curve: flash wear-out eventually arrives, but
// after seven years most drives retain over half their erasure cycles
// (§III), so onset sits near the ten-year mark.
func SSD() Curve {
	return Curve{
		Plateau:            1.0,
		InfantExtra:        0.8,
		InfantDecayMonths:  3,
		WearoutOnsetMonths: 120,
		WearoutSlope:       0.05,
	}
}

// At returns the expected normalised AFR at the given deployment age.
func (c Curve) At(months float64) float64 {
	if months < 0 {
		months = 0
	}
	afr := c.Plateau + c.InfantExtra*math.Exp(-months/c.InfantDecayMonths)
	if months > c.WearoutOnsetMonths {
		afr += c.WearoutSlope * (months - c.WearoutOnsetMonths)
	}
	return afr
}

// Series is a sampled failure-rate trace: raw noisy observations and
// their moving average, the two lines of Fig. 2.
type Series struct {
	Months []float64
	Raw    []float64
	Smooth []float64
}

// Sample generates a noisy observation series from the curve over the
// given horizon, mimicking fleet telemetry: each month's observed rate
// is the expected rate perturbed by sampling noise.
func Sample(c Curve, months int, noise float64, seed uint64) (Series, error) {
	if months <= 0 {
		return Series{}, fmt.Errorf("failure: months must be positive")
	}
	if noise < 0 {
		return Series{}, fmt.Errorf("failure: negative noise")
	}
	r := stats.NewRNG(seed)
	s := Series{
		Months: make([]float64, months),
		Raw:    make([]float64, months),
	}
	for i := 0; i < months; i++ {
		m := float64(i)
		s.Months[i] = m
		v := c.At(m) * (1 + r.Normal(0, noise))
		if v < 0 {
			v = 0
		}
		s.Raw[i] = v
	}
	s.Smooth = stats.MovingAverage(s.Raw, 6)
	return s, nil
}

// PlateauStability reports the ratio of the mean smoothed AFR in the
// last year of the series to the mean over months 24..36 (safely past
// infant mortality). A value near 1 is the paper's "failure rates tend
// to stay constant" claim.
func PlateauStability(s Series) float64 {
	if len(s.Smooth) < 48 {
		return 0
	}
	early := stats.Mean(s.Smooth[24:36])
	late := stats.Mean(s.Smooth[len(s.Smooth)-12:])
	if early == 0 {
		return 0
	}
	return late / early
}
