package failure

import (
	"math"
	"testing"
	"testing/quick"
)

// TestDDR4FlatThroughSevenYears encodes Fig. 2's claim: after the
// initial period, DDR4 failure rates stay constant over a 7-year
// deployment.
func TestDDR4FlatThroughSevenYears(t *testing.T) {
	c := DDR4()
	at24 := c.At(24)
	at84 := c.At(84)
	if math.Abs(at84/at24-1) > 0.02 {
		t.Fatalf("AFR at 7y / AFR at 2y = %v, want ~1 (flat)", at84/at24)
	}
	// And beyond: the accelerated-aging claim (flat past 12 years).
	at144 := c.At(144)
	if math.Abs(at144/at24-1) > 0.02 {
		t.Fatalf("AFR at 12y / 2y = %v, want ~1", at144/at24)
	}
}

func TestInfantMortality(t *testing.T) {
	c := DDR4()
	if c.At(0) <= c.At(24)*1.5 {
		t.Fatalf("AFR at deployment (%v) should clearly exceed plateau (%v)", c.At(0), c.At(24))
	}
	// Strictly decreasing through the infant period.
	for m := 0.0; m < 12; m++ {
		if c.At(m+1) >= c.At(m) {
			t.Fatalf("AFR not decreasing at month %v", m)
		}
	}
}

func TestSSDWearout(t *testing.T) {
	c := SSD()
	// Flat at 7 years (reuse is viable)...
	if math.Abs(c.At(84)/c.At(24)-1) > 0.02 {
		t.Fatalf("SSD AFR at 7y should still be flat, got ratio %v", c.At(84)/c.At(24))
	}
	// ...but rising past the wear-out onset.
	if c.At(140) <= c.At(84)*1.2 {
		t.Fatalf("SSD AFR at ~12y (%v) should show wear-out vs 7y (%v)", c.At(140), c.At(84))
	}
}

func TestNegativeAgeClamped(t *testing.T) {
	c := DDR4()
	if c.At(-5) != c.At(0) {
		t.Fatal("negative age should clamp to deployment time")
	}
}

func TestSampleSeries(t *testing.T) {
	s, err := Sample(DDR4(), 84, 0.15, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Months) != 84 || len(s.Raw) != 84 || len(s.Smooth) != 84 {
		t.Fatalf("series lengths = %d/%d/%d, want 84", len(s.Months), len(s.Raw), len(s.Smooth))
	}
	for i, v := range s.Raw {
		if v < 0 {
			t.Fatalf("negative raw AFR at %d", i)
		}
	}
	// The moving average should be less jittery than the raw series.
	var rawVar, smoothVar float64
	for i := 24; i < 83; i++ {
		d1 := s.Raw[i+1] - s.Raw[i]
		d2 := s.Smooth[i+1] - s.Smooth[i]
		rawVar += d1 * d1
		smoothVar += d2 * d2
	}
	if smoothVar >= rawVar {
		t.Fatal("smoothing did not reduce step variance")
	}
}

func TestPlateauStability(t *testing.T) {
	s, err := Sample(DDR4(), 84, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := PlateauStability(s); math.Abs(got-1) > 0.1 {
		t.Fatalf("plateau stability = %v, want within 10%% of 1 (Fig 2)", got)
	}
	if got := PlateauStability(Series{}); got != 0 {
		t.Fatalf("stability of empty series = %v, want 0", got)
	}
}

func TestSampleValidation(t *testing.T) {
	if _, err := Sample(DDR4(), 0, 0.1, 1); err == nil {
		t.Error("Sample accepted zero months")
	}
	if _, err := Sample(DDR4(), 12, -1, 1); err == nil {
		t.Error("Sample accepted negative noise")
	}
}

func TestSampleDeterministic(t *testing.T) {
	a, _ := Sample(DDR4(), 40, 0.2, 99)
	b, _ := Sample(DDR4(), 40, 0.2, 99)
	for i := range a.Raw {
		if a.Raw[i] != b.Raw[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPropertyCurveNonNegative(t *testing.T) {
	f := func(m float64) bool {
		m = math.Mod(math.Abs(m), 600)
		return DDR4().At(m) >= 0 && SSD().At(m) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
